package gesmc

import (
	"io"

	"gesmc/internal/gen"
	"gesmc/internal/graph"
	"gesmc/internal/hashset"
	"gesmc/internal/rng"
)

// Graph is a simple undirected graph with an indexed edge list — the
// state manipulated by the switching Markov chains.
type Graph struct {
	g *graph.Graph
	// idx is the lazily built hash-set index behind HasEdge, dropped
	// whenever the edge list is mutated through this package (Randomize,
	// Sampler advances).
	idx *hashset.Set
}

// NewGraph builds a graph with n nodes from (u, v) pairs. Loops,
// duplicate edges, or out-of-range endpoints are rejected.
func NewGraph(n int, edges [][2]uint32) (*Graph, error) {
	pairs := make([][2]graph.Node, len(edges))
	for i, e := range edges {
		pairs[i] = [2]graph.Node{e[0], e[1]}
	}
	g, err := graph.FromPairs(n, pairs)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// FromDegrees materializes a graph with exactly the given degree
// sequence using Havel-Hakimi, or fails if the sequence is not
// graphical. The result is deterministic; follow with Randomize to
// obtain an approximately uniform sample.
func FromDegrees(degrees []int) (*Graph, error) {
	g, err := gen.GraphFromSequence(degrees)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// IsGraphical reports whether a simple graph with the given degree
// sequence exists (Erdős–Gallai test).
func IsGraphical(degrees []int) bool {
	return gen.ErdosGallai(degrees)
}

// GenerateGNP samples an Erdős–Rényi/Gilbert G(n, p) graph.
func GenerateGNP(n int, p float64, seed uint64) *Graph {
	return &Graph{g: gen.GNP(n, p, rng.NewMT19937(seed))}
}

// GeneratePowerLaw samples a power-law degree sequence with exponent
// gamma and degree range [1, n^{1/(gamma-1)}] (the paper's SynPld
// dataset) and realizes it with Havel-Hakimi.
func GeneratePowerLaw(n int, gamma float64, seed uint64) (*Graph, error) {
	g, err := gen.SynPldGraph(n, gamma, rng.NewMT19937(seed))
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// GenerateRegular returns a deterministic d-regular graph on n nodes.
func GenerateRegular(n, d int) (*Graph, error) {
	g, err := gen.Regular(n, d)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// GenerateGrid returns the rows x cols grid graph.
func GenerateGrid(rows, cols int) *Graph {
	return &Graph{g: gen.Grid2D(rows, cols)}
}

// ReadGraph parses a text edge list (optionally with an "n m" header;
// comments, duplicates and loops are tolerated and cleaned, mirroring
// the paper's preprocessing of network-repository graphs).
func ReadGraph(r io.Reader) (*Graph, error) {
	g, err := graph.ReadEdgeList(r)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// Write writes the graph as a text edge list with an "n m" header.
func (g *Graph) Write(w io.Writer) error {
	return graph.WriteEdgeList(w, g.g)
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.g.N() }

// M returns the number of edges.
func (g *Graph) M() int { return g.g.M() }

// Degrees returns the degree sequence indexed by node.
func (g *Graph) Degrees() []int { return g.g.Degrees() }

// MaxDegree returns the largest degree.
func (g *Graph) MaxDegree() int { return g.g.MaxDegree() }

// Density returns m / C(n, 2).
func (g *Graph) Density() float64 { return g.g.Density() }

// AverageDegree returns 2m/n.
func (g *Graph) AverageDegree() float64 { return g.g.AverageDegree() }

// Edges returns a copy of the edge list as (u, v) pairs with u < v.
func (g *Graph) Edges() [][2]uint32 {
	out := make([][2]uint32, g.g.M())
	for i, e := range g.g.Edges() {
		out[i] = [2]uint32{e.U(), e.V()}
	}
	return out
}

// HasEdge reports whether the edge {u, v} exists. The first query after
// a mutation builds a hash-set index over the edge list (O(m) once);
// subsequent queries are O(1), so scanning pairs against a settled
// graph is cheap. Not safe for concurrent first use.
func (g *Graph) HasEdge(u, v uint32) bool {
	if u == v || int(u) >= g.g.N() || int(v) >= g.g.N() || g.g.M() == 0 {
		return false
	}
	if g.idx == nil {
		g.idx = hashset.FromEdges(g.g.Edges(), 0.5)
	}
	return g.idx.Contains(graph.MakeEdge(u, v))
}

// invalidate drops the HasEdge index; called by every path that mutates
// the edge list in place.
func (g *Graph) invalidate() { g.idx = nil }

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph { return &Graph{g: g.g.Clone()} }

// CheckSimple verifies the simplicity invariant (useful in tests and
// pipelines that mutate graphs).
func (g *Graph) CheckSimple() error { return g.g.CheckSimple() }

// Triangles returns the number of triangles.
func (g *Graph) Triangles() int64 { return graph.Triangles(g.g) }

// ClusteringCoefficient returns the global transitivity.
func (g *Graph) ClusteringCoefficient() float64 {
	return graph.GlobalClusteringCoefficient(g.g)
}

// Assortativity returns Newman's degree assortativity r.
func (g *Graph) Assortativity() float64 { return graph.DegreeAssortativity(g.g) }

// ConnectedComponents returns the number of connected components.
func (g *Graph) ConnectedComponents() int {
	c, _ := graph.ConnectedComponents(g.g)
	return c
}

// IsConnected reports whether the graph is connected (a graph with
// isolated nodes is not; the empty graph is).
func (g *Graph) IsConnected() bool {
	return g.ConnectedComponents() <= 1
}

// LargestComponent returns the node count of the largest connected
// component and the total number of components — the usual summary of
// how far a graph is from connected. Both are 0 for an empty node set.
func (g *Graph) LargestComponent() (size, components int) {
	return graph.LargestComponent(g.g)
}

// internal accessor for sibling files.
func (g *Graph) raw() *graph.Graph { return g.g }
