package gesmc

import (
	"time"

	"gesmc/internal/digraph"
	"gesmc/internal/graph"
)

// DiGraph is a simple directed graph (no loops, no parallel arcs) under
// degree-preserving randomization: the directed edge switch exchanges
// the heads of two arcs, preserving every node's in- and out-degree.
// The paper's global switching and its parallelization carry over
// directly (§1 of the paper; this is the "other graph classes" case).
type DiGraph struct {
	g *digraph.DiGraph
}

// NewDiGraph builds a digraph from (tail, head) pairs.
func NewDiGraph(n int, arcs [][2]uint32) (*DiGraph, error) {
	pairs := make([][2]graph.Node, len(arcs))
	for i, a := range arcs {
		pairs[i] = [2]graph.Node{a[0], a[1]}
	}
	g, err := digraph.FromPairs(n, pairs)
	if err != nil {
		return nil, err
	}
	return &DiGraph{g: g}, nil
}

// IsDigraphical reports whether a simple directed graph with the given
// out-/in-degree bi-sequence exists (Fulkerson–Chen–Anstee test, the
// directed companion of IsGraphical). Mismatched lengths,
// out-of-range degrees, or unequal sums report false.
func IsDigraphical(out, in []int) bool {
	return digraph.IsDigraphical(out, in)
}

// IsBigraphical reports whether a bipartite graph with the given
// degree sequences on the two sides exists (Gale–Ryser test, the
// bipartite companion of IsGraphical).
func IsBigraphical(left, right []int) bool {
	return digraph.IsBigraphical(left, right)
}

// FromInOutDegrees realizes a digraph with the prescribed out- and
// in-degree sequences (Kleitman-Wang), or fails if the bi-sequence is
// not digraphical.
func FromInOutDegrees(out, in []int) (*DiGraph, error) {
	g, err := digraph.KleitmanWang(out, in)
	if err != nil {
		return nil, err
	}
	return &DiGraph{g: g}, nil
}

// FromBipartiteDegrees realizes a bipartite graph with the prescribed
// degree sequences on the two sides, represented as a digraph with arcs
// from left nodes (0..len(left)-1) to right nodes (offset by the left
// side size). Directed switching preserves the bipartition, so
// RandomizeDirected samples bipartite graphs with fixed degrees.
func FromBipartiteDegrees(left, right []int) (*DiGraph, error) {
	g, err := digraph.BipartiteFromDegrees(left, right)
	if err != nil {
		return nil, err
	}
	return &DiGraph{g: g}, nil
}

// N returns the node count.
func (g *DiGraph) N() int { return g.g.N() }

// M returns the arc count.
func (g *DiGraph) M() int { return g.g.M() }

// Arcs returns a copy of the arc list as (tail, head) pairs.
func (g *DiGraph) Arcs() [][2]uint32 {
	out := make([][2]uint32, g.g.M())
	for i, a := range g.g.Arcs() {
		out[i] = [2]uint32{a.Tail(), a.Head()}
	}
	return out
}

// OutDegrees returns the out-degree sequence.
func (g *DiGraph) OutDegrees() []int {
	out, _ := g.g.Degrees()
	return out
}

// InDegrees returns the in-degree sequence.
func (g *DiGraph) InDegrees() []int {
	_, in := g.g.Degrees()
	return in
}

// ConnectedComponents returns the number of weakly connected
// components — components of the underlying undirected graph, the
// connectivity notion the directed constraint layer preserves.
func (g *DiGraph) ConnectedComponents() int {
	c, _ := digraph.ConnectedComponents(g.g)
	return c
}

// IsConnected reports whether the digraph is weakly connected.
func (g *DiGraph) IsConnected() bool {
	return g.ConnectedComponents() <= 1
}

// LargestComponent returns the node count of the largest weakly
// connected component and the total number of components.
func (g *DiGraph) LargestComponent() (size, components int) {
	return graph.LargestOfLabels(digraph.ConnectedComponents(g.g))
}

// Clone returns a deep copy.
func (g *DiGraph) Clone() *DiGraph { return &DiGraph{g: g.g.Clone()} }

// CheckSimple verifies the no-loops/no-parallel-arcs invariant.
func (g *DiGraph) CheckSimple() error { return g.g.CheckSimple() }

// RandomizeDirected runs a directed switching Markov chain on g in
// place. Supported algorithms: SeqES, SeqGlobalES and ParGlobalES
// (directed switches need no direction bit, and ES-MC's other variants
// add nothing in the directed setting).
//
// RandomizeDirected is the one-shot form of NewSampler(g, ...) followed
// by one Step call; directed and bipartite targets sample through the
// same Sampler API as undirected graphs.
func RandomizeDirected(g *DiGraph, opt Options) (Stats, error) {
	start := time.Now()
	s, err := NewSampler(g, opt.samplerOptions()...)
	if err != nil {
		return Stats{}, err
	}
	st, err := s.Step(opt.supersteps())
	// One-shot semantics: release the worker gang immediately (no
	// sampler survives to Close it) and report a duration that includes
	// the engine construction the caller paid for, as it always did.
	s.Close()
	st.Duration = time.Since(start)
	return st, err
}
