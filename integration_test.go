package gesmc

import (
	"bytes"
	"math"
	"testing"
)

// Integration tests exercising complete user workflows through the
// public API only.

// TestPipelineFileRoundTrip: read a dirty edge list, randomize it with
// the headline algorithm, write it out, read it back — degrees must
// survive the whole pipeline.
func TestPipelineFileRoundTrip(t *testing.T) {
	original, err := GeneratePowerLaw(512, 2.4, 77)
	if err != nil {
		t.Fatal(err)
	}
	var file bytes.Buffer
	if err := original.Write(&file); err != nil {
		t.Fatal(err)
	}

	loaded, err := ReadGraph(&file)
	if err != nil {
		t.Fatal(err)
	}
	wantDeg := loaded.Degrees()

	if _, err := Randomize(loaded, Options{Algorithm: ParGlobalES, Workers: 3, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := loaded.Write(&out); err != nil {
		t.Fatal(err)
	}
	final, err := ReadGraph(&out)
	if err != nil {
		t.Fatal(err)
	}
	gotDeg := final.Degrees()
	for v := range wantDeg {
		if gotDeg[v] != wantDeg[v] {
			t.Fatalf("degree of node %d lost in pipeline: %d -> %d", v, wantDeg[v], gotDeg[v])
		}
	}
	if err := final.CheckSimple(); err != nil {
		t.Fatal(err)
	}
}

// TestNullModelDestroysClustering: the end-to-end null-model property
// the paper motivates: randomization with fixed degrees collapses the
// clustering of a clustered graph while keeping degrees intact.
func TestNullModelDestroysClustering(t *testing.T) {
	// Ring of small cliques: heavy clustering.
	const cliques, size = 30, 5
	var edges [][2]uint32
	for c := 0; c < cliques; c++ {
		base := uint32(c * size)
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				edges = append(edges, [2]uint32{base + uint32(i), base + uint32(j)})
			}
		}
		edges = append(edges, [2]uint32{base, uint32(((c + 1) % cliques) * size)})
	}
	g, err := NewGraph(cliques*size, edges)
	if err != nil {
		t.Fatal(err)
	}
	before := g.ClusteringCoefficient()
	if before < 0.5 {
		t.Fatalf("test graph not clustered: %v", before)
	}
	if _, err := Randomize(g, Options{Algorithm: ParGlobalES, Workers: 2, Seed: 9, SwapsPerEdge: 20}); err != nil {
		t.Fatal(err)
	}
	after := g.ClusteringCoefficient()
	if after > before/4 {
		t.Fatalf("clustering survived randomization: %.3f -> %.3f", before, after)
	}
}

// TestAlgorithmsAgreeOnAcceptanceRate: all exact implementations run
// the same chain (ES-MC or G-ES-MC), so their long-run acceptance rates
// on the same graph must agree closely, even though their random
// streams differ. This is a cheap cross-implementation consistency
// check below the bit-exact differential tests.
func TestAlgorithmsAgreeOnAcceptanceRate(t *testing.T) {
	g, err := GeneratePowerLaw(2048, 2.3, 13)
	if err != nil {
		t.Fatal(err)
	}
	rate := func(alg Algorithm) float64 {
		c := g.Clone()
		st, err := Randomize(c, Options{Algorithm: alg, Workers: 2, Seed: 21, SwapsPerEdge: 5})
		if err != nil {
			t.Fatal(err)
		}
		return float64(st.Accepted) / float64(st.Attempted)
	}
	seqES := rate(SeqES)
	for _, alg := range []Algorithm{AdjListES, AdjSortES, ParES} {
		if r := rate(alg); math.Abs(r-seqES) > 0.02 {
			t.Fatalf("%v acceptance %.3f far from SeqES %.3f", alg, r, seqES)
		}
	}
	seqG := rate(SeqGlobalES)
	if r := rate(ParGlobalES); math.Abs(r-seqG) > 0.02 {
		t.Fatalf("ParGlobalES acceptance %.3f far from SeqGlobalES %.3f", r, seqG)
	}
	// The two chains themselves agree on this workload (both reject
	// only loops/conflicts, sampled slightly differently).
	if math.Abs(seqES-seqG) > 0.05 {
		t.Fatalf("chains disagree wildly: ES %.3f vs G-ES %.3f", seqES, seqG)
	}
}

// TestDirectedUndirectedConsistency: a symmetric digraph (both arc
// directions present) keeps its symmetry count... not invariant under
// directed switching, but in/out degrees are; check the public directed
// path end to end.
func TestDirectedEndToEnd(t *testing.T) {
	out := []int{3, 2, 2, 1, 1, 1}
	in := []int{1, 1, 2, 2, 2, 2}
	g, err := FromInOutDegrees(out, in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RandomizeDirected(g, Options{Algorithm: ParGlobalES, Workers: 2, Seed: 4, SwapsPerEdge: 10}); err != nil {
		t.Fatal(err)
	}
	gotOut, gotIn := g.OutDegrees(), g.InDegrees()
	for v := range out {
		if gotOut[v] != out[v] || gotIn[v] != in[v] {
			t.Fatalf("directed degrees broken at node %d", v)
		}
	}
	if err := g.CheckSimple(); err != nil {
		t.Fatal(err)
	}
}

// TestSeedIndependenceAcrossWorkers: different worker counts may give
// different (but individually valid) samples; same workers+seed must
// agree. Guards the determinism contract stated in the docs.
func TestSeedIndependenceAcrossWorkers(t *testing.T) {
	base := GenerateGNP(256, 0.1, 3)
	run := func(workers int, seed uint64) [][2]uint32 {
		c := base.Clone()
		if _, err := Randomize(c, Options{Algorithm: ParGlobalES, Workers: workers, Seed: seed, SwapsPerEdge: 2}); err != nil {
			t.Fatal(err)
		}
		return c.Edges()
	}
	a := run(3, 1)
	b := run(3, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same workers+seed disagree")
		}
	}
	c := run(3, 2)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical samples")
	}
}
