package gesmc

import (
	"context"
	"errors"
	"testing"
)

func TestNewSamplerOptionValidation(t *testing.T) {
	g := GenerateGNP(64, 0.1, 1)
	cases := []struct {
		name string
		opts []Option
		want error
	}{
		{"negative workers", []Option{WithWorkers(-1)}, ErrInvalidWorkers},
		{"zero workers", []Option{WithWorkers(0)}, ErrInvalidWorkers},
		{"loopprob above 1", []Option{WithLoopProb(1.5)}, ErrInvalidLoopProb},
		{"loopprob negative", []Option{WithLoopProb(-0.1)}, ErrInvalidLoopProb},
		{"zero thinning", []Option{WithThinning(0)}, ErrInvalidThinning},
		{"zero burn-in", []Option{WithBurnIn(0)}, ErrInvalidBurnIn},
		{"negative swaps", []Option{WithSwapsPerEdge(-2)}, ErrInvalidSwapsPerEdge},
		{"bogus algorithm", []Option{WithAlgorithm(Algorithm(99))}, ErrUnknownAlgorithm},
	}
	for _, c := range cases {
		if _, err := NewSampler(g, c.opts...); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}

	if _, err := NewSampler(nil); !errors.Is(err, ErrNilTarget) {
		t.Errorf("nil target: err = %v", err)
	}
	tiny, err := NewGraph(3, [][2]uint32{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSampler(tiny); !errors.Is(err, ErrGraphTooSmall) {
		t.Errorf("one-edge graph: err = %v, want ErrGraphTooSmall", err)
	}
	if _, err := NewSampler(tiny, WithAlgorithm(GlobalCurveball)); !errors.Is(err, ErrGraphTooSmall) {
		t.Errorf("one-edge curveball: err = %v, want ErrGraphTooSmall", err)
	}
}

func TestLegacyOptionsValidation(t *testing.T) {
	g := GenerateGNP(64, 0.1, 2)
	if _, err := Randomize(g.Clone(), Options{Workers: -3}); !errors.Is(err, ErrInvalidWorkers) {
		t.Errorf("negative Workers: err = %v", err)
	}
	if _, err := Randomize(g.Clone(), Options{LoopProb: 2}); !errors.Is(err, ErrInvalidLoopProb) {
		t.Errorf("LoopProb=2: err = %v", err)
	}
	if _, err := Randomize(g.Clone(), Options{Algorithm: Algorithm(42)}); !errors.Is(err, ErrUnknownAlgorithm) {
		t.Errorf("bogus algorithm: err = %v", err)
	}
	if _, err := RandomizeDirected(&DiGraph{}, Options{}); !errors.Is(err, ErrNilTarget) {
		t.Errorf("empty DiGraph wrapper: err = %v", err)
	}
}

func TestSamplerUnsupportedDirectedAlgorithms(t *testing.T) {
	g, err := FromInOutDegrees([]int{2, 1, 1, 0}, []int{0, 1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{NaiveParES, ParES, AdjListES, AdjSortES, Curveball, GlobalCurveball} {
		if _, err := NewSampler(g, WithAlgorithm(alg)); !errors.Is(err, ErrUnsupportedAlgorithm) {
			t.Errorf("%v on digraph: err = %v, want ErrUnsupportedAlgorithm", alg, err)
		}
	}
}

// TestSamplerMatchesRandomize: the deprecated one-shot wrapper and an
// explicit Sampler must walk the identical chain.
func TestSamplerMatchesRandomize(t *testing.T) {
	base := GenerateGNP(128, 0.1, 7)
	for _, alg := range []Algorithm{SeqES, SeqGlobalES, ParGlobalES, GlobalCurveball} {
		a := base.Clone()
		if _, err := Randomize(a, Options{Algorithm: alg, Workers: 2, Seed: 5, Supersteps: 8}); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		b := base.Clone()
		s, err := NewSampler(b, WithAlgorithm(alg), WithWorkers(2), WithSeed(5))
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if _, err := s.Step(8); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		ae, be := a.Edges(), b.Edges()
		for i := range ae {
			if ae[i] != be[i] {
				t.Fatalf("%v: Randomize and Sampler.Step diverge at edge %d", alg, i)
			}
		}
	}
}

// TestSamplerDeterminism: equal (target, options) yield identical
// ensembles for a fixed worker count, and the sequential chains are
// additionally invariant under the worker count (it only gates
// parallelism, never the random stream).
func TestSamplerDeterminism(t *testing.T) {
	base := GenerateGNP(128, 0.1, 3)
	draw := func(alg Algorithm, workers int) [][][2]uint32 {
		s, err := NewSampler(base.Clone(),
			WithAlgorithm(alg), WithWorkers(workers), WithSeed(11),
			WithBurnIn(6), WithThinning(2))
		if err != nil {
			t.Fatal(err)
		}
		samples, err := s.Collect(context.Background(), 4)
		if err != nil {
			t.Fatal(err)
		}
		out := make([][][2]uint32, len(samples))
		for i, smp := range samples {
			out[i] = smp.Graph.Edges()
		}
		return out
	}
	same := func(a, b [][][2]uint32) bool {
		for i := range a {
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					return false
				}
			}
		}
		return true
	}
	for _, alg := range []Algorithm{SeqGlobalES, ParGlobalES, GlobalCurveball} {
		if !same(draw(alg, 3), draw(alg, 3)) {
			t.Errorf("%v: repeated run with equal options differs", alg)
		}
	}
	for _, alg := range []Algorithm{SeqES, SeqGlobalES, GlobalCurveball} {
		if !same(draw(alg, 1), draw(alg, 4)) {
			t.Errorf("%v: sequential chain depends on worker count", alg)
		}
	}
}

// TestEnsembleStreams: Ensemble delivers count samples with the right
// cadence (burn-in once, thinning afterwards), pairwise-distinct
// topologies, preserved degrees, and per-sample stats.
func TestEnsembleStreams(t *testing.T) {
	base, err := GeneratePowerLaw(256, 2.4, 9)
	if err != nil {
		t.Fatal(err)
	}
	wantDeg := base.Degrees()
	s, err := NewSampler(base, WithAlgorithm(ParGlobalES), WithWorkers(2), WithSeed(4),
		WithBurnIn(10), WithThinning(3))
	if err != nil {
		t.Fatal(err)
	}
	const count = 5
	var samples []Sample
	for smp := range s.Ensemble(context.Background(), count) {
		if smp.Err != nil {
			t.Fatal(smp.Err)
		}
		samples = append(samples, smp)
	}
	if len(samples) != count {
		t.Fatalf("got %d samples, want %d", len(samples), count)
	}
	if want := 10 + (count-1)*3; s.Supersteps() != want {
		t.Fatalf("supersteps = %d, want %d (one burn-in, then thinning)", s.Supersteps(), want)
	}
	for i, smp := range samples {
		if smp.Index != i {
			t.Fatalf("sample %d has index %d", i, smp.Index)
		}
		if smp.DiGraph != nil || smp.Graph == nil {
			t.Fatal("undirected ensemble must fill Graph only")
		}
		if err := smp.Graph.CheckSimple(); err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		for v, d := range smp.Graph.Degrees() {
			if d != wantDeg[v] {
				t.Fatalf("sample %d changed degree of node %d", i, v)
			}
		}
		if smp.Stats.Attempted == 0 || smp.Stats.Accepted == 0 {
			t.Fatalf("sample %d: empty stats %+v", i, smp.Stats)
		}
		wantSteps := 3
		if i == 0 {
			wantSteps = 10
		}
		if smp.Stats.Supersteps != wantSteps {
			t.Fatalf("sample %d advanced %d supersteps, want %d", i, smp.Stats.Supersteps, wantSteps)
		}
	}
	// Pairwise distinct edge sets (thinning 3 on a 256-node power law
	// rewires far more than enough edges to tell samples apart).
	for i := 0; i < len(samples); i++ {
		for j := i + 1; j < len(samples); j++ {
			if samples[i].Graph.raw().CanonicalKey() == samples[j].Graph.raw().CanonicalKey() {
				t.Fatalf("samples %d and %d are identical", i, j)
			}
		}
	}
	// The samples are snapshots: advancing the sampler must not mutate
	// previously returned graphs.
	key := samples[0].Graph.raw().CanonicalKey()
	if _, err := s.Sample(); err != nil {
		t.Fatal(err)
	}
	if samples[0].Graph.raw().CanonicalKey() != key {
		t.Fatal("later sampling mutated an already-delivered sample")
	}
}

// TestEnsembleDirectedAndBipartite: the same Sampler API drives
// directed and bipartite targets.
func TestEnsembleDirectedAndBipartite(t *testing.T) {
	dg, err := FromInOutDegrees([]int{3, 2, 2, 1, 1, 1}, []int{1, 1, 2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	outDeg, inDeg := dg.OutDegrees(), dg.InDegrees()
	s, err := NewSampler(dg, WithAlgorithm(ParGlobalES), WithWorkers(2), WithSeed(8), WithThinning(4))
	if err != nil {
		t.Fatal(err)
	}
	for smp := range s.Ensemble(context.Background(), 3) {
		if smp.Err != nil {
			t.Fatal(smp.Err)
		}
		if smp.Graph != nil || smp.DiGraph == nil {
			t.Fatal("directed ensemble must fill DiGraph only")
		}
		if err := smp.DiGraph.CheckSimple(); err != nil {
			t.Fatal(err)
		}
		gotOut, gotIn := smp.DiGraph.OutDegrees(), smp.DiGraph.InDegrees()
		for v := range outDeg {
			if gotOut[v] != outDeg[v] || gotIn[v] != inDeg[v] {
				t.Fatalf("sample %d broke directed degrees at node %d", smp.Index, v)
			}
		}
	}

	bp, err := FromBipartiteDegrees([]int{2, 2, 2, 1}, []int{2, 2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := NewSampler(bp, WithAlgorithm(SeqGlobalES), WithSeed(2), WithBurnIn(12), WithThinning(6))
	if err != nil {
		t.Fatal(err)
	}
	for smp := range bs.Ensemble(context.Background(), 3) {
		if smp.Err != nil {
			t.Fatal(smp.Err)
		}
		for _, a := range smp.DiGraph.Arcs() {
			if a[0] >= 4 || a[1] < 4 {
				t.Fatalf("sample %d arc %v broke the bipartition", smp.Index, a)
			}
		}
	}
}

// TestEnsembleCancellation: cancelling the context mid-ensemble closes
// the stream after a terminal Sample carrying the context error.
func TestEnsembleCancellation(t *testing.T) {
	base := GenerateGNP(128, 0.1, 5)
	s, err := NewSampler(base, WithAlgorithm(SeqGlobalES), WithSeed(1), WithBurnIn(4), WithThinning(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var delivered, errored int
	for smp := range s.Ensemble(ctx, 1000) {
		if smp.Err != nil {
			if !errors.Is(smp.Err, context.Canceled) {
				t.Fatalf("terminal err = %v", smp.Err)
			}
			errored++
			continue
		}
		delivered++
		if delivered == 2 {
			cancel()
		}
	}
	cancel()
	if delivered >= 1000 || delivered < 2 {
		t.Fatalf("delivered %d samples despite cancellation", delivered)
	}
	if errored > 1 {
		t.Fatalf("got %d terminal error samples, want at most 1", errored)
	}
	// The target is still a valid graph and the sampler still works.
	if err := base.CheckSimple(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sample(); err != nil {
		t.Fatal(err)
	}
}

// TestStepContextPreCancelled: a cancelled context stops Step before
// any superstep runs.
func TestStepContextPreCancelled(t *testing.T) {
	base := GenerateGNP(64, 0.15, 6)
	before := base.Edges()
	s, err := NewSampler(base, WithAlgorithm(ParGlobalES), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := s.StepContext(ctx, 50)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if st.Supersteps != 0 {
		t.Fatalf("ran %d supersteps after cancellation", st.Supersteps)
	}
	after := base.Edges()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("cancelled step mutated the graph")
		}
	}
}

// TestCurveballPublicEnum: both trade chains are first-class public
// algorithms on undirected targets.
func TestCurveballPublicEnum(t *testing.T) {
	for _, alg := range []Algorithm{Curveball, GlobalCurveball} {
		got, err := ParseAlgorithm(alg.String())
		if err != nil || got != alg {
			t.Fatalf("round trip failed for %v: %v, %v", alg, got, err)
		}
		base := GenerateGNP(96, 0.12, 13)
		wantDeg := base.Degrees()
		stats, err := Randomize(base, Options{Algorithm: alg, Seed: 21, SwapsPerEdge: 3})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if stats.Algorithm != alg.String() {
			t.Fatalf("stats name %q != %q", stats.Algorithm, alg.String())
		}
		if stats.Attempted == 0 || stats.Accepted != stats.Attempted {
			t.Fatalf("%v: trade stats wrong: %+v", alg, stats)
		}
		if err := base.CheckSimple(); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		for v, d := range base.Degrees() {
			if d != wantDeg[v] {
				t.Fatalf("%v changed degree of node %d", alg, v)
			}
		}
	}
}

// TestProgressCallback: WithProgress fires once per superstep with
// monotone counters.
func TestProgressCallback(t *testing.T) {
	base := GenerateGNP(64, 0.15, 4)
	var calls []Progress
	s, err := NewSampler(base,
		WithAlgorithm(SeqGlobalES), WithSeed(9), WithBurnIn(5), WithThinning(2),
		WithProgress(func(p Progress) { calls = append(calls, p) }))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sample(); err != nil { // burn-in: 5 supersteps
		t.Fatal(err)
	}
	if _, err := s.Sample(); err != nil { // thinning: 2 supersteps
		t.Fatal(err)
	}
	if len(calls) != 7 {
		t.Fatalf("progress fired %d times, want 7", len(calls))
	}
	for i, p := range calls {
		if p.Supersteps != i+1 {
			t.Fatalf("call %d reports %d supersteps", i, p.Supersteps)
		}
	}
	if calls[4].Samples != 0 || calls[6].Samples != 1 {
		t.Fatalf("sample counts wrong: %+v", calls)
	}
}

// TestHasEdgeIndexInvalidation: HasEdge answers from the lazy index and
// stays correct across in-place mutation by the sampler.
func TestHasEdgeIndexInvalidation(t *testing.T) {
	g := GenerateGNP(128, 0.08, 17)
	check := func() {
		seen := map[[2]uint32]bool{}
		for _, e := range g.Edges() {
			seen[e] = true
			if !g.HasEdge(e[0], e[1]) || !g.HasEdge(e[1], e[0]) {
				t.Fatalf("HasEdge misses edge %v", e)
			}
		}
		misses := 0
		for u := uint32(0); u < 20; u++ {
			for v := u + 1; v < 20; v++ {
				if !seen[[2]uint32{u, v}] {
					misses++
					if g.HasEdge(u, v) {
						t.Fatalf("HasEdge invents edge {%d,%d}", u, v)
					}
				}
			}
		}
		if misses == 0 {
			t.Fatal("test graph too dense to exercise negatives")
		}
	}
	check()
	if _, err := Randomize(g, Options{Algorithm: ParGlobalES, Workers: 2, Seed: 1, Supersteps: 6}); err != nil {
		t.Fatal(err)
	}
	check() // index must have been invalidated and rebuilt
	if g.HasEdge(0, 0) || g.HasEdge(500, 1) {
		t.Fatal("loop or out-of-range accepted")
	}
}
