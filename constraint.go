package gesmc

import (
	"fmt"

	"gesmc/internal/constraint"
	"gesmc/internal/graph"
)

// Constraint restricts the state space a Sampler draws from: instead of
// all simple graphs with the target's degree sequence, the chain
// samples only the realizations satisfying every constraint passed to
// WithConstraint. Build constraints with the package constructors —
// Connected, ForbiddenEdges, ProtectedEdges, NodeClasses.
//
// Constraints come in two tiers with different costs. Local
// constraints (ForbiddenEdges, ProtectedEdges, NodeClasses) are
// evaluated per proposed switch inside the chains — including the
// parallel superstep kernel's decide phase — and keep constrained
// parallel runs bit-identical across worker counts. The global
// connectivity constraint (Connected) is certified per superstep: the
// sequential chains consult an incremental spanning-forest certificate
// per switch, while the parallel chains apply each superstep
// optimistically and roll disconnecting switches back in reverse
// commit order. When single switches stall under the connectivity
// constraint, the chain escapes with compound k-switches (two switches
// executed atomically, allowed to pass through a disconnected
// intermediate state), keeping the constrained chain irreducible.
//
// Constrained sampling is supported by SeqES, SeqGlobalES, ParES, and
// ParGlobalES on undirected targets and by all directed algorithms;
// other algorithm choices are rejected with ErrUnsupportedConstraint.
type Constraint struct {
	kind    constraintKind
	edges   [][2]uint32
	classes []int
}

type constraintKind uint8

const (
	kindConnected constraintKind = iota + 1
	kindForbidden
	kindProtected
	kindClasses
)

// Connected constrains every sample to be a connected graph (weakly
// connected for directed targets) — the null model of motif
// significance testing on networks whose connectedness is part of the
// observed structure. The target graph must itself be connected;
// NewSampler rejects a disconnected target with ErrConstraintViolated.
func Connected() Constraint {
	return Constraint{kind: kindConnected}
}

// ForbiddenEdges constrains every sample to avoid the given edges
// ((u, v) pairs; (tail, head) for directed targets). The target must
// not contain any forbidden edge. Self-loop pairs are rejected at
// NewSampler with ErrInvalidConstraint.
func ForbiddenEdges(edges [][2]uint32) Constraint {
	return Constraint{kind: kindForbidden, edges: edges}
}

// ProtectedEdges constrains every sample to retain the given edges:
// switches that would rewire them are vetoed. Every protected edge
// must exist in the target.
func ProtectedEdges(edges [][2]uint32) Constraint {
	return Constraint{kind: kindProtected, edges: edges}
}

// NodeClasses partitions the nodes into classes (classes[v] is node
// v's label, one entry per node) and constrains every switch to
// preserve the number of edges between each pair of classes. With
// classes assigned by degree this preserves the joint degree matrix —
// the degree-class partition null model.
func NodeClasses(classes []int) Constraint {
	return Constraint{kind: kindClasses, classes: classes}
}

// compileConstraints resolves the option-level constraints against a
// target with n nodes into the internal spec, validating edge bounds,
// class-array shape, and the target's edge content (forbidden edges
// absent, protected edges present, Connected() over a connected
// start state). directed selects the arc encoding; has answers edge
// membership over the target's current edges and connected reports its
// connectivity.
func compileConstraints(cs []Constraint, n int, directed bool,
	has func(uint64) bool, connected func() bool) (*constraint.Spec, error) {
	if len(cs) == 0 {
		return nil, nil
	}
	spec := &constraint.Spec{}
	for _, c := range cs {
		switch c.kind {
		case kindConnected:
			spec.Connected = true
		case kindForbidden, kindProtected:
			packed, err := packConstraintEdges(c.edges, n, directed)
			if err != nil {
				return nil, err
			}
			if c.kind == kindForbidden {
				for _, e := range packed {
					if has(e) {
						return nil, fmt.Errorf("%w: target contains forbidden edge (%d, %d)",
							ErrConstraintViolated, uint32(e>>32), uint32(e))
					}
				}
				spec.Locals = append(spec.Locals, constraint.NewForbidden(packed))
			} else {
				for _, e := range packed {
					if !has(e) {
						return nil, fmt.Errorf("%w: target is missing protected edge (%d, %d)",
							ErrConstraintViolated, uint32(e>>32), uint32(e))
					}
				}
				spec.Locals = append(spec.Locals, constraint.NewProtected(packed))
			}
		case kindClasses:
			if len(c.classes) != n {
				return nil, fmt.Errorf("%w: NodeClasses needs one class per node (got %d, n=%d)",
					ErrInvalidConstraint, len(c.classes), n)
			}
			labels := make([]int32, n)
			for i, cl := range c.classes {
				labels[i] = int32(cl)
			}
			spec.Locals = append(spec.Locals, constraint.NewClasses(labels))
		default:
			return nil, fmt.Errorf("%w: zero Constraint value", ErrInvalidConstraint)
		}
	}
	if spec.Connected && !connected() {
		return nil, fmt.Errorf("%w: Connected() requires a connected target", ErrConstraintViolated)
	}
	return spec, nil
}

// packConstraintEdges converts public (u, v) pairs to the packed
// 64-bit encoding of the selected target class, rejecting loops and
// out-of-range endpoints.
func packConstraintEdges(edges [][2]uint32, n int, directed bool) ([]uint64, error) {
	packed := make([]uint64, len(edges))
	for i, e := range edges {
		u, v := e[0], e[1]
		if u == v {
			return nil, fmt.Errorf("%w: edge (%d, %d) is a loop", ErrInvalidConstraint, u, v)
		}
		if int(u) >= n || int(v) >= n {
			return nil, fmt.Errorf("%w: edge (%d, %d) references node >= n=%d", ErrInvalidConstraint, u, v, n)
		}
		if directed {
			packed[i] = uint64(u)<<32 | uint64(v)
		} else {
			packed[i] = uint64(graph.MakeEdge(u, v))
		}
	}
	return packed, nil
}

