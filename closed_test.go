package gesmc

import (
	"context"
	"errors"
	"testing"
)

// The engine pool's eviction path double-closes defensively and can
// race a caller holding a stale reference, so closed-sampler behavior
// is part of the public contract: Close is idempotent, and every
// advancing method reports ErrClosed instead of touching the released
// worker gang.
func TestSamplerCloseIdempotent(t *testing.T) {
	for _, workers := range []int{1, 4} {
		g, err := GeneratePowerLaw(1<<9, 2.5, 1)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewSampler(g, WithAlgorithm(ParGlobalES), WithWorkers(workers), WithSeed(1))
		if err != nil {
			t.Fatal(err)
		}
		if s.Closed() {
			t.Fatal("fresh sampler reports Closed")
		}
		s.Close()
		s.Close() // must not panic or disturb the released gang
		if !s.Closed() {
			t.Fatal("Closed() false after Close")
		}
	}
}

func TestSamplerUseAfterClose(t *testing.T) {
	g, err := GeneratePowerLaw(1<<9, 2.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSampler(g, WithAlgorithm(ParGlobalES), WithWorkers(2), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(1); err != nil {
		t.Fatal(err)
	}
	s.Close()

	if _, err := s.Step(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Step after Close: err=%v, want ErrClosed", err)
	}
	if _, err := s.Sample(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sample after Close: err=%v, want ErrClosed", err)
	}
	if _, err := s.Collect(context.Background(), 2); !errors.Is(err, ErrClosed) {
		t.Fatalf("Collect after Close: err=%v, want ErrClosed", err)
	}
	var last Sample
	n := 0
	for smp := range s.Ensemble(context.Background(), 3) {
		last = smp
		n++
	}
	if n != 1 || !errors.Is(last.Err, ErrClosed) {
		t.Fatalf("Ensemble after Close: %d samples, last.Err=%v, want 1 terminal ErrClosed", n, last.Err)
	}
	if last.Graph != nil {
		t.Fatal("terminal sample carries a graph")
	}
}
