package gesmc

import "testing"

func TestNewDiGraphValidation(t *testing.T) {
	if _, err := NewDiGraph(2, [][2]uint32{{0, 0}}); err == nil {
		t.Fatal("loop accepted")
	}
	g, err := NewDiGraph(2, [][2]uint32{{0, 1}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatal("antiparallel arcs should be distinct")
	}
}

func TestFromInOutDegrees(t *testing.T) {
	out := []int{2, 1, 1, 0}
	in := []int{0, 1, 1, 2}
	g, err := FromInOutDegrees(out, in)
	if err != nil {
		t.Fatal(err)
	}
	gotOut, gotIn := g.OutDegrees(), g.InDegrees()
	for v := range out {
		if gotOut[v] != out[v] || gotIn[v] != in[v] {
			t.Fatalf("degree mismatch at node %d", v)
		}
	}
	if _, err := FromInOutDegrees([]int{1}, []int{1}); err == nil {
		t.Fatal("single-node loop sequence accepted")
	}
}

func TestRandomizeDirectedAlgorithms(t *testing.T) {
	// A denser digraph so switches have room.
	var arcs [][2]uint32
	for u := uint32(0); u < 24; u++ {
		for d := uint32(1); d <= 5; d++ {
			arcs = append(arcs, [2]uint32{u, (u + d) % 24})
		}
	}
	base, err := NewDiGraph(24, arcs)
	if err != nil {
		t.Fatal(err)
	}
	wantOut, wantIn := base.OutDegrees(), base.InDegrees()
	for _, alg := range []Algorithm{SeqES, SeqGlobalES, ParGlobalES} {
		g := base.Clone()
		stats, err := RandomizeDirected(g, Options{Algorithm: alg, Workers: 2, Seed: 3, SwapsPerEdge: 3})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if err := g.CheckSimple(); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		gotOut, gotIn := g.OutDegrees(), g.InDegrees()
		for v := range wantOut {
			if gotOut[v] != wantOut[v] || gotIn[v] != wantIn[v] {
				t.Fatalf("%v changed degrees", alg)
			}
		}
		if stats.Accepted == 0 {
			t.Fatalf("%v accepted nothing", alg)
		}
	}
	if _, err := RandomizeDirected(base.Clone(), Options{Algorithm: NaiveParES}); err == nil {
		t.Fatal("unsupported directed algorithm accepted")
	}
}

func TestFromBipartiteDegrees(t *testing.T) {
	g, err := FromBipartiteDegrees([]int{2, 2, 1}, []int{2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 6 || g.M() != 5 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if _, err := RandomizeDirected(g, Options{Algorithm: ParGlobalES, Workers: 2, Seed: 1, SwapsPerEdge: 5}); err != nil {
		t.Fatal(err)
	}
	// Every arc must still cross left -> right.
	for _, a := range g.Arcs() {
		if a[0] >= 3 || a[1] < 3 {
			t.Fatalf("arc %v broke the bipartition", a)
		}
	}
}
