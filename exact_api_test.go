package gesmc

import (
	"context"
	"errors"
	"sort"
	"testing"

	"gesmc/internal/exact"
	"gesmc/internal/graph"
)

// graphKey returns the canonical cell label of a sampled graph: the
// same big-endian encoding of the sorted edge list that
// exact.Enumerate keys its ground-truth realizations with, so sampler
// histograms and the enumeration share a label space.
func graphKey(t *testing.T, g *Graph) string {
	t.Helper()
	edges := make([]graph.Edge, 0, g.M())
	for _, e := range g.Edges() {
		edges = append(edges, graph.MakeEdge(e[0], e[1]))
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
	return exact.Key(edges)
}

// histogram draws count samples from a freshly compiled sampler and
// bins them by canonical key, insisting every draw lands inside the
// enumerated support.
func histogram(t *testing.T, target *Graph, support map[string]bool, count int, opts ...Option) map[string]int {
	t.Helper()
	s, err := NewSampler(target.Clone(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	counts := make(map[string]int, len(support))
	samples, err := s.Collect(context.Background(), count)
	if err != nil {
		t.Fatal(err)
	}
	for _, smp := range samples {
		if err := smp.Graph.CheckSimple(); err != nil {
			t.Fatal(err)
		}
		k := graphKey(t, smp.Graph)
		if !support[k] {
			t.Fatalf("sampler produced a graph outside the enumerated support")
		}
		counts[k]++
	}
	return counts
}

// enumerateSupport lists the realizations of degrees as a key set.
func enumerateSupport(t *testing.T, degrees []int, want int) map[string]bool {
	t.Helper()
	all, err := exact.Enumerate(degrees, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != want {
		t.Fatalf("enumeration found %d realizations, want %d", len(all), want)
	}
	support := make(map[string]bool, len(all))
	for _, edges := range all {
		support[exact.Key(edges)] = true
	}
	return support
}

// twoSampleChiSquare computes the two-sample chi-square statistic of
// two equal-size histograms over the same support (df = cells-1 when
// both histograms cover every cell).
func twoSampleChiSquare(a, b map[string]int, support map[string]bool) float64 {
	var chi float64
	for k := range support {
		na, nb := float64(a[k]), float64(b[k])
		if na+nb == 0 {
			continue
		}
		d := na - nb
		chi += d * d / (na + nb)
	}
	return chi
}

func TestExactSamplerPublicAPI(t *testing.T) {
	target, err := GenerateRegular(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSampler(target, WithAlgorithm(Exact), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Algorithm() != "Exact" {
		t.Fatalf("algorithm name %q", s.Algorithm())
	}
	// i.i.d. draws: the schedule collapses to one superstep per sample.
	if s.BurnIn() != 1 || s.Thinning() != 1 {
		t.Fatalf("exact schedule burnIn=%d thin=%d, want 1/1", s.BurnIn(), s.Thinning())
	}
	wantDeg := append([]int(nil), target.Degrees()...)
	samples, err := s.Collect(context.Background(), 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, smp := range samples {
		if err := smp.Graph.CheckSimple(); err != nil {
			t.Fatal(err)
		}
		for v, d := range smp.Graph.Degrees() {
			if d != wantDeg[v] {
				t.Fatalf("draw %d changed degree of node %d", smp.Index, v)
			}
		}
	}
	st := s.Stats()
	if st.Algorithm != "Exact" {
		t.Fatalf("stats algorithm %q", st.Algorithm)
	}
	// Every attempt either restarts or lands a sample, and every restart
	// is attributed to a defect class.
	if st.Attempted != st.Accepted+st.Restarts {
		t.Fatalf("attempted=%d != accepted=%d + restarts=%d", st.Attempted, st.Accepted, st.Restarts)
	}
	if st.LoopDefects+st.MultiDefects != st.Restarts {
		t.Fatalf("defects %d+%d != restarts %d", st.LoopDefects, st.MultiDefects, st.Restarts)
	}
	if st.Accepted != 40 {
		t.Fatalf("accepted=%d, want 40", st.Accepted)
	}
}

func TestExactDeterminismAndResume(t *testing.T) {
	target, err := GenerateRegular(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	draw := func(seed uint64, skip, count int) [][][2]uint32 {
		s, err := NewSampler(target.Clone(), WithAlgorithm(Exact), WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if skip > 0 {
			if _, err := s.FastForwardTo(context.Background(), skip); err != nil {
				t.Fatal(err)
			}
		}
		samples, err := s.Collect(context.Background(), count)
		if err != nil {
			t.Fatal(err)
		}
		out := make([][][2]uint32, len(samples))
		for i, smp := range samples {
			out[i] = smp.Graph.Edges()
		}
		return out
	}
	full := draw(99, 0, 8)
	again := draw(99, 0, 8)
	suffix := draw(99, 5, 3)
	other := draw(100, 0, 8)
	for i := range full {
		if len(full[i]) != len(again[i]) {
			t.Fatal("same seed diverged")
		}
		for j := range full[i] {
			if full[i][j] != again[i][j] {
				t.Fatal("same seed diverged")
			}
		}
	}
	// Resume semantics: fast-forwarding a fresh sampler to index k and
	// drawing yields exactly the suffix of the uninterrupted stream —
	// the property the service pool and resume cursors rely on.
	for i := range suffix {
		for j := range suffix[i] {
			if suffix[i][j] != full[5+i][j] {
				t.Fatalf("resumed draw %d differs from full stream", 5+i)
			}
		}
	}
	diverged := false
	for i := range full {
		if len(full[i]) != len(other[i]) {
			diverged = true
			break
		}
		for j := range full[i] {
			if full[i][j] != other[i][j] {
				diverged = true
				break
			}
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestExactRejectsScheduleAndConstraints(t *testing.T) {
	target, err := GenerateRegular(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opt  Option
		want error
	}{
		{"burn-in", WithBurnIn(5), ErrExactSchedule},
		{"thinning", WithThinning(5), ErrExactSchedule},
		{"swaps-per-edge", WithSwapsPerEdge(2), ErrExactSchedule},
		{"constraint", WithConstraint(Connected()), ErrUnsupportedConstraint},
	}
	for _, tc := range cases {
		_, err := NewSampler(target.Clone(), WithAlgorithm(Exact), WithSeed(1), tc.opt)
		if !errors.Is(err, tc.want) {
			t.Fatalf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestExactRejectsDirectedTargets(t *testing.T) {
	dg, err := FromInOutDegrees([]int{1, 1, 0}, []int{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSampler(dg, WithAlgorithm(Exact)); !errors.Is(err, ErrUnsupportedAlgorithm) {
		t.Fatalf("directed exact: got %v, want ErrUnsupportedAlgorithm", err)
	}
}

// TestExactRegimeBoundary pins the tractability gate at the public
// API: the GNP base graph used by TestRandomizeAllAlgorithms lies
// outside the rejection regime and must degrade to the typed error,
// never silently fall back to MCMC.
func TestExactRegimeBoundary(t *testing.T) {
	dense := GenerateGNP(128, 0.08, 3)
	_, err := NewSampler(dense, WithAlgorithm(Exact), WithSeed(1))
	if !errors.Is(err, ErrExactUnsupported) {
		t.Fatalf("dense target: got %v, want ErrExactUnsupported", err)
	}
	k20 := make([]int, 20)
	for i := range k20 {
		k20[i] = 19
	}
	if _, _, err := SampleFromDegrees(k20, Options{Algorithm: Exact}); !errors.Is(err, ErrExactUnsupported) {
		t.Fatalf("K20 degrees: got %v, want ErrExactUnsupported", err)
	}
}

// TestExactOracleDifferential is the exact-as-oracle suite: the
// provably uniform sampler pins the target distribution over the
// exhaustively enumerated realizations, and each MCMC chain's
// empirical histogram is compared against it with a two-sample
// chi-square. A biased chain (or a biased exact sampler) fails; two
// uniform samplers agree. Sequences: the hexagon degree sequence
// 2^6 (70 labeled realizations) for the switching and Curveball
// chains, and the perfect-matching sequence 1^6 (15 realizations)
// for the sequential chain.
func TestExactOracleDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("chi-square sampling suite")
	}
	const draws = 7000
	// p = 0.001 critical values: chi2(df=69) = 111.1, chi2(df=14) = 36.1.
	hex := enumerateSupport(t, []int{2, 2, 2, 2, 2, 2}, 70)
	match := enumerateSupport(t, []int{1, 1, 1, 1, 1, 1}, 15)

	hexTarget, err := FromDegrees([]int{2, 2, 2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	matchTarget, err := FromDegrees([]int{1, 1, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}

	oracle := histogram(t, hexTarget, hex, draws, WithAlgorithm(Exact), WithSeed(1001))
	for _, alg := range []Algorithm{ParES, ParGlobalES, GlobalCurveball} {
		mcmc := histogram(t, hexTarget, hex, draws,
			WithAlgorithm(alg), WithSeed(2002), WithWorkers(2),
			WithBurnIn(60), WithThinning(25))
		if chi := twoSampleChiSquare(oracle, mcmc, hex); chi > 120 {
			t.Errorf("%v vs exact oracle on 2^6: chi-square %.1f > 120 (df=69)", alg, chi)
		}
	}

	matchOracle := histogram(t, matchTarget, match, draws, WithAlgorithm(Exact), WithSeed(3003))
	mcmc := histogram(t, matchTarget, match, draws,
		WithAlgorithm(SeqES), WithSeed(4004), WithBurnIn(60), WithThinning(25))
	if chi := twoSampleChiSquare(matchOracle, mcmc, match); chi > 42 {
		t.Errorf("SeqES vs exact oracle on 1^6: chi-square %.1f > 42 (df=14)", chi)
	}
}
