package conc

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunCoversAllWorkers(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		pool := NewPool(p)
		counts := make([]atomic.Int32, p)
		for rep := 0; rep < 3; rep++ { // reuse across dispatches
			pool.Run(func(w int) { counts[w].Add(1) })
		}
		for w := range counts {
			if got := counts[w].Load(); got != 3 {
				t.Fatalf("P=%d: worker %d ran %d times, want 3", p, w, got)
			}
		}
		pool.Close()
	}
}

func TestPoolBlocksPartition(t *testing.T) {
	for _, p := range []int{1, 3, 8} {
		pool := NewPool(p)
		for _, n := range []int{0, 1, 5, 31, 32, 33, 1000} {
			hits := make([]atomic.Int32, n+1)
			pool.Blocks(n, func(w, lo, hi int) {
				if lo >= hi {
					t.Errorf("P=%d n=%d: empty range dispatched [%d,%d)", p, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					hits[i].Add(1)
				}
			})
			for i := 0; i < n; i++ {
				if hits[i].Load() != 1 {
					t.Fatalf("P=%d n=%d: index %d covered %d times", p, n, i, hits[i].Load())
				}
			}
		}
		pool.Close()
	}
}

func TestPoolChunkedCoversAll(t *testing.T) {
	for _, p := range []int{1, 4} {
		pool := NewPool(p)
		const n = 10000
		hits := make([]atomic.Int32, n)
		// Skewed per-item work: chunk claiming must still cover every
		// index exactly once.
		pool.Chunked(n, 64, func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				if i%997 == 0 {
					time.Sleep(time.Microsecond)
				}
				hits[i].Add(1)
			}
		})
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("P=%d: index %d covered %d times", p, i, hits[i].Load())
			}
		}
		pool.Close()
	}
}

func TestPoolPanicPropagation(t *testing.T) {
	for _, culprit := range []int{0, 2} { // coordinator and parked worker
		pool := NewPool(4)
		expectPanic(t, "worker panic", func() {
			pool.Run(func(w int) {
				if w == culprit {
					panic("boom")
				}
			})
		})
		// The pool must stay usable after a propagated panic.
		var ran atomic.Int32
		pool.Run(func(int) { ran.Add(1) })
		if ran.Load() != 4 {
			t.Fatalf("culprit=%d: pool broken after panic: %d workers ran", culprit, ran.Load())
		}
		pool.Close()
	}
}

func TestPoolNestedDispatchPanics(t *testing.T) {
	for _, p := range []int{1, 4} {
		pool := NewPool(p)
		expectPanic(t, "nested dispatch", func() {
			pool.Run(func(w int) {
				if w == 0 {
					pool.Blocks(8, func(int, int, int) {})
				}
			})
		})
		pool.Close()
	}
}

func TestPoolDispatchAfterClosePanics(t *testing.T) {
	pool := NewPool(2)
	pool.Close()
	pool.Close() // idempotent
	expectPanic(t, "dispatch after Close", func() {
		pool.Run(func(int) {})
	})
}

// TestPoolReleaseEndsWorkers asserts Close actually parks the gang for
// good: creating and closing many pools must not accumulate goroutines
// (the reuse-across-engines lifecycle).
func TestPoolReleaseEndsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		pool := NewPool(4)
		pool.Run(func(int) {})
		pool.Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.Gosched()
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(time.Millisecond)
	}
}
