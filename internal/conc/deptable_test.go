package conc

import "testing"

func TestDepTableStoreLookup(t *testing.T) {
	dt := NewDepTable(8)
	dt.Reset(4)

	e := edge(1, 2)
	f := edge(3, 4)
	// Switch 0 erases e; switches 1 and 2 insert e; switch 3 inserts f.
	dt.Store(0, 0, e, KindErase)
	dt.Store(1, 2, e, KindInsert)
	dt.Store(2, 2, e, KindInsert)
	dt.Store(3, 2, f, KindInsert)

	if p, ok := dt.EraseTuple(e); !ok || p != 0 {
		t.Fatalf("EraseTuple(e) = %d, %v", p, ok)
	}
	if _, ok := dt.EraseTuple(f); ok {
		t.Fatal("EraseTuple(f) found phantom eraser")
	}
	if q, st, ok := dt.MinInsert(e); !ok || q != 1 || st != StatusUndecided {
		t.Fatalf("MinInsert(e) = %d, %d, %v", q, st, ok)
	}
	if q, _, ok := dt.MinInsert(f); !ok || q != 3 {
		t.Fatalf("MinInsert(f) = %d, %v", q, ok)
	}
	if _, _, ok := dt.MinInsert(edge(9, 10)); ok {
		t.Fatal("MinInsert of unknown edge found a tuple")
	}
}

func TestDepTableMinInsertSkipsIllegal(t *testing.T) {
	dt := NewDepTable(8)
	dt.Reset(4)
	e := edge(5, 6)
	dt.Store(0, 2, e, KindInsert)
	dt.Store(1, 2, e, KindInsert)
	dt.Store(2, 2, e, KindInsert)

	dt.SetStatus(0, StatusIllegal)
	if q, st, ok := dt.MinInsert(e); !ok || q != 1 || st != StatusUndecided {
		t.Fatalf("MinInsert after illegal[0] = %d, %d, %v", q, st, ok)
	}
	dt.SetStatus(1, StatusLegal)
	if q, st, ok := dt.MinInsert(e); !ok || q != 1 || st != StatusLegal {
		t.Fatalf("MinInsert with legal[1] = %d, %d, %v", q, st, ok)
	}
	dt.SetStatus(1, StatusIllegal)
	dt.SetStatus(2, StatusIllegal)
	if _, _, ok := dt.MinInsert(e); ok {
		t.Fatal("MinInsert found tuple though all inserters illegal")
	}
}

func TestDepTableResetClears(t *testing.T) {
	dt := NewDepTable(8)
	dt.Reset(2)
	e := edge(1, 2)
	dt.Store(0, 0, e, KindErase)
	dt.SetStatus(0, StatusLegal)

	dt.Reset(2)
	if _, ok := dt.EraseTuple(e); ok {
		t.Fatal("tuple survived Reset")
	}
	if dt.StatusOf(0) != StatusUndecided {
		t.Fatal("status survived Reset")
	}
}

func TestDepTableConcurrentStore(t *testing.T) {
	const nSwitches = 4096
	dt := NewDepTable(nSwitches)
	dt.Reset(nSwitches)
	// Every switch k stores four tuples; several switches share target
	// edges to build long chains.
	Blocks(nSwitches, 8, func(_, lo, hi int) {
		for k := lo; k < hi; k++ {
			dt.Store(k, 0, edge(uint32(2*k), uint32(2*k+1)), KindErase)
			dt.Store(k, 1, edge(uint32(2*k+1), uint32(2*k+2)), KindErase)
			dt.Store(k, 2, edge(uint32(k%7), uint32(100+k%7)), KindInsert)
			dt.Store(k, 3, edge(uint32(k%5), uint32(200+k%5)), KindInsert)
		}
	})
	// Every erase tuple must be findable.
	for k := 0; k < nSwitches; k++ {
		if p, ok := dt.EraseTuple(edge(uint32(2*k), uint32(2*k+1))); !ok || p != k {
			t.Fatalf("lost erase tuple of switch %d (got %d, %v)", k, p, ok)
		}
	}
	// The minimum inserter of each shared target must be the smallest k
	// in its residue class.
	for r := 0; r < 7; r++ {
		q, _, ok := dt.MinInsert(edge(uint32(r), uint32(100+r)))
		if !ok || q != r {
			t.Fatalf("MinInsert residue %d = %d, %v", r, q, ok)
		}
	}
}

func TestDepTableCapacityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Reset beyond capacity did not panic")
		}
	}()
	dt := NewDepTable(2)
	dt.Reset(3)
}
