// Package conc provides the shared-memory concurrent building blocks of
// the parallel switching algorithms: a fixed-capacity concurrent edge set
// with per-edge lock bytes (§5.2 of the paper), the per-superstep
// dependency table of Algorithm 1, and small parallel-for helpers.
package conc

import "sync"

// Run executes body on workers goroutines (worker ids 0..workers-1) and
// waits for all of them. workers < 1 is treated as 1.
func Run(workers int, body func(worker int)) {
	if workers <= 1 {
		body(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			body(w)
		}(w)
	}
	wg.Wait()
}

// Blocks partitions [0, n) into workers contiguous blocks and runs fn on
// each block concurrently. Blocks differ in size by at most one.
func Blocks(n, workers int, fn func(worker, lo, hi int)) {
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
		if workers == 0 {
			return
		}
	}
	Run(workers, func(w int) {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		fn(w, lo, hi)
	})
}
