package conc

import (
	"runtime"
	"sync/atomic"
)

// Pool is a persistent gang of worker goroutines parked on a
// channel-based barrier, the replacement for spawn-per-call Run/Blocks
// on hot paths: a kernel superstep issues several parallel-for phases,
// and a chain issues thousands of supersteps, so goroutine creation and
// WaitGroup churn per phase dominates the barrier cost the paper's
// analysis assumes to be cheap. The pool's workers 1..P-1 live as long
// as the pool; the caller participates as worker 0, so a dispatch costs
// one channel send per parked worker plus one receive for the
// completion barrier, and nothing at all at P=1.
//
// Dispatch state (the task and its iteration space) is published via
// plain fields before the wake-up sends; the channel operations order
// them. Bodies passed to Run/Blocks/Chunked/Fused should be long-lived
// function values (fields on the owning engine) — then a steady-state
// dispatch performs zero heap allocations, which the kernel's
// allocation-regression test asserts.
//
// Grain sizing is topology-aware: at construction the pool derives a
// default chunk grain from the per-core L2 share (capped by the LLC
// share per worker), so cursor-claimed chunks keep their working set
// cache-resident instead of using naive n/P-derived sizes. Override
// with WithChunkBytes or SetChunkBytes. Static block boundaries are
// aligned to 16-item multiples so adjacent workers writing item-indexed
// arrays do not false-share the boundary cache lines.
//
// Concurrency contract: a Pool serializes its dispatches. Calling Run,
// Blocks, Chunked, or Fused from inside a body (nested use), or from
// two goroutines at once, panics. Close releases the workers; it is
// idempotent, and a finalizer releases them when a pool owner leaks
// without closing, so parked goroutines never outlive the pool's
// reachability.
type Pool struct {
	sh *poolShared
}

const cacheLine = 64

// poolShared is the worker-visible state. It is split from Pool so the
// parked goroutines keep only poolShared alive: the outer Pool stays
// collectable, letting its finalizer release the gang when the owner
// forgets to Close. The contended atomics (chunk cursor, completion
// count, sub-barrier state) are padded onto private cache lines so the
// cursor traffic of a chunked round does not invalidate the read-mostly
// dispatch fields every worker re-reads.
type poolShared struct {
	workers int
	grain   int // default chunk size in items, topology-derived

	// Dispatch state, written by the coordinator before the wake-up
	// sends and read-only during a dispatch.
	mode    int
	body    func(worker int)
	rangeFn func(worker, lo, hi int)
	n       int
	chunk   int
	plan    *FusedPlan

	start []chan struct{}
	done  chan struct{}

	panicV  atomic.Pointer[poolPanic]
	running atomic.Bool
	closed  atomic.Bool

	_       [cacheLine]byte
	cursor  atomic.Int64 // chunked mode: next unclaimed index
	_       [cacheLine - 8]byte
	pending atomic.Int32
	_       [cacheLine - 4]byte
	barIn   atomic.Int32 // fused sub-barrier: arrivals
	_       [cacheLine - 4]byte
	barGen  atomic.Uint32 // fused sub-barrier: release generation
	_       [cacheLine - 4]byte
}

type poolPanic struct{ v any }

const (
	modeBody = iota
	modeBlocks
	modeChunked
	modeFused
)

// PoolOption configures a Pool at construction.
type PoolOption func(*poolShared)

// WithChunkBytes overrides the topology-derived target working-set size
// of one cursor-claimed chunk. bytes <= 0 keeps the derived default.
func WithChunkBytes(bytes int) PoolOption {
	return func(sh *poolShared) {
		if bytes > 0 {
			sh.grain = grainFromBytes(bytes)
		}
	}
}

// chunkItemBytes is the assumed per-item cache footprint used to convert
// a byte budget into a chunk length: the kernel's decide items touch a
// handful of scattered lines (dependency-table entries plus hash-set
// buckets), of which roughly one line per item is unique to the chunk.
const chunkItemBytes = 64

func grainFromBytes(bytes int) int {
	g := bytes / chunkItemBytes
	if g < serialCutoff {
		g = serialCutoff
	}
	return g
}

// defaultGrain derives the chunk grain from the cache topology: a chunk
// should fill a fraction of the per-core private L2 (staying resident
// across the claim), without the gang's combined claims exceeding their
// LLC share.
func defaultGrain(workers int) int {
	if workers < 1 {
		workers = 1
	}
	t := Topology()
	budget := t.L2Bytes / 4
	if llcShare := t.LLCBytes / (2 * workers); budget > llcShare && llcShare > 0 {
		budget = llcShare
	}
	return grainFromBytes(budget)
}

// NewPool starts a gang of workers goroutines (worker ids 0..workers-1,
// id 0 being the caller of each dispatch). workers < 1 is treated as 1;
// a 1-worker pool spawns no goroutines and dispatches inline.
func NewPool(workers int, opts ...PoolOption) *Pool {
	if workers < 1 {
		workers = 1
	}
	sh := &poolShared{
		workers: workers,
		grain:   defaultGrain(workers),
		done:    make(chan struct{}),
	}
	for _, o := range opts {
		o(sh)
	}
	sh.start = make([]chan struct{}, workers-1)
	for i := range sh.start {
		sh.start[i] = make(chan struct{}, 1)
		go sh.parked(i + 1)
	}
	p := &Pool{sh: sh}
	if workers > 1 {
		runtime.SetFinalizer(p, func(p *Pool) { p.sh.release() })
	}
	return p
}

// Workers returns the gang size P.
func (p *Pool) Workers() int { return p.sh.workers }

// Grain returns the current default chunk size in items.
func (p *Pool) Grain() int { return p.sh.grain }

// SetChunkBytes re-derives the default chunk grain from a target
// working-set byte budget; bytes <= 0 restores the topology-derived
// default. Must not be called during a dispatch.
func (p *Pool) SetChunkBytes(bytes int) {
	if p.sh.running.Load() {
		panic("conc: Pool.SetChunkBytes during dispatch")
	}
	if bytes > 0 {
		p.sh.grain = grainFromBytes(bytes)
	} else {
		p.sh.grain = defaultGrain(p.sh.workers)
	}
}

// Close releases the worker goroutines. Idempotent; dispatching after
// Close panics. Closing is optional (a finalizer releases leaked
// pools), but deterministic release is good hygiene for engines that
// create many pools.
func (p *Pool) Close() {
	if p.sh.running.Load() {
		panic("conc: Pool.Close during dispatch")
	}
	p.sh.release()
	runtime.SetFinalizer(p, nil)
}

func (sh *poolShared) release() {
	if sh.closed.CompareAndSwap(false, true) {
		for _, c := range sh.start {
			close(c)
		}
	}
}

// parked is the worker loop: wait for a wake-up, run the current
// dispatch, signal the barrier if last, park again.
func (sh *poolShared) parked(w int) {
	for range sh.start[w-1] {
		sh.invoke(w)
		if sh.pending.Add(-1) == 0 {
			sh.done <- struct{}{}
		}
	}
}

// invoke runs the current dispatch as worker w, converting panics into
// a recorded first-panic that the coordinator re-raises. Fused
// dispatches recover per pass instead (a worker must keep arriving at
// the sub-barriers after a panic, or the gang would deadlock).
func (sh *poolShared) invoke(w int) {
	if sh.mode == modeFused {
		sh.fusedRun(w)
		return
	}
	defer func() {
		if r := recover(); r != nil {
			sh.panicV.CompareAndSwap(nil, &poolPanic{v: r})
		}
	}()
	sh.dispatch(w)
}

// alignItems is the item granularity static block boundaries snap to:
// 16 items cover a full cache line for 4-byte items, so two workers
// never write the same line at a block boundary.
const alignItems = 16

// blockRange computes worker w's static block of [0, n): contiguous
// blocks differing by at most one, with boundaries aligned to
// alignItems when the blocks are large enough that alignment cannot
// starve a worker.
func blockRange(n, w, workers int) (int, int) {
	lo := n * w / workers
	hi := n * (w + 1) / workers
	if n >= workers*alignItems*4 {
		lo = (lo + alignItems - 1) &^ (alignItems - 1)
		hi = (hi + alignItems - 1) &^ (alignItems - 1)
		if lo > n {
			lo = n
		}
		if hi > n || w == workers-1 {
			hi = n
		}
	}
	return lo, hi
}

func (sh *poolShared) dispatch(w int) {
	switch sh.mode {
	case modeBody:
		sh.body(w)
	case modeBlocks:
		lo, hi := blockRange(sh.n, w, sh.workers)
		if lo < hi {
			sh.rangeFn(w, lo, hi)
		}
	case modeChunked:
		sh.chunkedLoop(w, sh.n, sh.chunk, sh.rangeFn)
	}
}

// chunkedLoop claims chunk-sized ranges of [0, n) from the shared
// cursor until the space is exhausted.
func (sh *poolShared) chunkedLoop(w, n, chunk int, fn func(worker, lo, hi int)) {
	for {
		hi := int(sh.cursor.Add(int64(chunk)))
		lo := hi - chunk
		if lo >= n {
			return
		}
		if hi > n {
			hi = n
		}
		fn(w, lo, hi)
	}
}

// autoChunk sizes a cursor-claimed chunk for an n-item space: the
// topology-derived grain, shrunk so every worker still gets a few
// claims for load balancing, and never below the serial cutoff.
func (sh *poolShared) autoChunk(n int) int {
	g := sh.grain
	if balance := n / (4 * sh.workers); g > balance {
		g = balance
	}
	if g < serialCutoff {
		g = serialCutoff
	}
	return g
}

// acquire takes the dispatch lock before any dispatch state is
// written: nested or concurrent dispatches must be rejected without
// touching fields the parked workers may be reading.
func (sh *poolShared) acquire() {
	if !sh.running.CompareAndSwap(false, true) {
		panic("conc: nested or concurrent Pool dispatch")
	}
	if sh.closed.Load() {
		sh.running.Store(false)
		panic("conc: Pool dispatch after Close")
	}
}

// gang wakes the parked workers, runs the dispatch as worker 0, waits
// for the completion barrier, and re-raises the first recorded panic.
// The caller holds the dispatch lock (acquire) and has published the
// dispatch state.
func (sh *poolShared) gang() {
	sh.pending.Store(int32(sh.workers - 1))
	for _, c := range sh.start {
		c <- struct{}{}
	}
	sh.invoke(0)
	<-sh.done
	sh.body = nil
	sh.rangeFn = nil
	sh.plan = nil
	sh.running.Store(false)
	if pv := sh.panicV.Swap(nil); pv != nil {
		panic(pv.v)
	}
}

// solo runs a dispatch inline on a 1-worker pool (or a small-n
// fast path). The caller holds the dispatch lock (acquire) and has
// published the dispatch state. Panics recorded by the per-pass
// recovery of fused mode are re-raised after cleanup.
func (sh *poolShared) solo() {
	defer func() {
		sh.body = nil
		sh.rangeFn = nil
		sh.plan = nil
		sh.running.Store(false)
	}()
	sh.invoke(0)
	if pv := sh.panicV.Swap(nil); pv != nil {
		panic(pv.v)
	}
}

// Run executes body once per worker id 0..P-1, in parallel, and waits
// for all of them — the pooled equivalent of package-level Run.
func (p *Pool) Run(body func(worker int)) {
	// Pin p: its finalizer must not release the gang mid-dispatch once
	// the method body no longer references p itself.
	defer runtime.KeepAlive(p)
	sh := p.sh
	sh.acquire()
	sh.mode = modeBody
	sh.body = body
	if sh.workers == 1 {
		sh.solo()
		return
	}
	sh.gang()
}

// serialCutoff is the iteration count below which Blocks and Chunked
// run inline on the calling goroutine: waking the gang costs ~µs, which
// dwarfs a handful of items (the typical re-examination rounds of the
// superstep kernel decide only a few delayed switches).
const serialCutoff = 32

// Blocks partitions [0, n) into at most P contiguous blocks differing
// in size by at most one (boundaries aligned to 16 items on large
// inputs) and runs fn on each block in parallel. Workers whose block is
// empty are still woken but skip the call.
func (p *Pool) Blocks(n int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	defer runtime.KeepAlive(p) // see Run
	sh := p.sh
	sh.acquire()
	sh.mode = modeBlocks
	sh.rangeFn = fn
	sh.n = n
	if sh.workers == 1 || n <= serialCutoff {
		sh.mode = modeChunked // single full-range call below
		sh.chunk = n
		sh.cursor.Store(0)
		sh.solo()
		return
	}
	sh.gang()
}

// Chunked runs fn over [0, n) in chunks claimed from an atomic cursor:
// workers grab the next chunk-sized range until the space is exhausted.
// Use it when per-item cost is skewed (the decide rounds, where delayed
// switches cluster) and static blocks would imbalance the gang.
// chunk <= 0 selects the pool's topology-derived grain (see
// WithChunkBytes), shrunk if needed so each worker gets several claims.
func (p *Pool) Chunked(n, chunk int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	defer runtime.KeepAlive(p) // see Run
	sh := p.sh
	sh.acquire()
	if chunk <= 0 {
		chunk = sh.autoChunk(n)
	}
	sh.mode = modeChunked
	sh.rangeFn = fn
	sh.n = n
	sh.chunk = chunk
	sh.cursor.Store(0)
	if sh.workers == 1 || n <= serialCutoff {
		sh.chunk = n
		sh.solo()
		return
	}
	sh.gang()
}

// FusedPass is one pass of a fused dispatch: an iteration space, the
// body to run over it, and how to partition it. After, when non-nil,
// runs on exactly one worker at the pass's trailing sub-barrier —
// after every worker has finished the pass, before any worker starts
// the next — for short serial fix-ups (counter resets) that would
// otherwise cost a full dispatch.
type FusedPass struct {
	// N is the iteration space [0, N). N <= 0 skips the body (After
	// still runs).
	N int
	// Chunk selects the partitioning: 0 = static aligned blocks,
	// > 0 = cursor-claimed chunks of this size, < 0 = cursor-claimed
	// chunks of the pool's topology-derived grain.
	Chunk int
	// Fn is the pass body.
	Fn func(worker, lo, hi int)
	// After runs serially at the pass's sub-barrier.
	After func()
}

// FusedPlan is a reusable sequence of passes executed by one fused
// dispatch. Owners build it once (the passes slice is read, never
// mutated) so steady-state fused dispatches allocate nothing.
type FusedPlan struct {
	Passes []FusedPass
}

// Fused executes the plan's passes in order as ONE dispatch: the gang
// is woken once, passes are separated by internal sense-reversing
// sub-barriers (spin-then-yield), and the completion barrier fires
// after the last pass. Relative to dispatching each pass separately
// this removes a full wake/park cycle per fused boundary — the
// dominant superstep cost once phase bodies are cheap — while
// preserving the all-of-pass-i-before-any-of-pass-i+1 ordering that
// the phases of Algorithm 1 require.
//
// A panic in a pass body or After hook is recorded, the pass is
// abandoned by that worker, sub-barriers continue to operate (so the
// gang cannot deadlock), and the first panic is re-raised at the
// completion barrier.
func (p *Pool) Fused(plan *FusedPlan) {
	if len(plan.Passes) == 0 {
		return
	}
	defer runtime.KeepAlive(p) // see Run
	sh := p.sh
	sh.acquire()
	sh.mode = modeFused
	sh.plan = plan
	sh.cursor.Store(0)
	if sh.workers == 1 {
		sh.solo()
		return
	}
	sh.gang()
}

// fusedRun is the per-worker loop of a fused dispatch.
func (sh *poolShared) fusedRun(w int) {
	passes := sh.plan.Passes
	last := len(passes) - 1
	for pi := range passes {
		ps := &passes[pi]
		if ps.Fn != nil && ps.N > 0 {
			sh.fusedPass(w, ps)
		}
		// The final sub-barrier is subsumed by the completion barrier
		// unless an After hook needs the all-finished point.
		if pi < last || ps.After != nil {
			sh.fusedBarrier(ps.After)
		}
	}
}

// fusedPass runs one pass body, recovering panics so the worker still
// reaches the trailing sub-barrier.
func (sh *poolShared) fusedPass(w int, ps *FusedPass) {
	defer func() {
		if r := recover(); r != nil {
			sh.panicV.CompareAndSwap(nil, &poolPanic{v: r})
		}
	}()
	if ps.Chunk == 0 {
		lo, hi := blockRange(ps.N, w, sh.workers)
		if lo < hi {
			ps.Fn(w, lo, hi)
		}
		return
	}
	chunk := ps.Chunk
	if chunk < 0 {
		chunk = sh.autoChunk(ps.N)
	}
	sh.chunkedLoop(w, ps.N, chunk, ps.Fn)
}

// fusedBarrier is the sense-reversing sub-barrier between fused passes.
// The last arriver (the leader) runs the After hook, resets the shared
// cursor for the next pass, and releases the generation; the others
// spin briefly and then yield, so oversubscribed gangs (P > cores)
// still make progress.
func (sh *poolShared) fusedBarrier(after func()) {
	gen := sh.barGen.Load()
	if sh.barIn.Add(1) == int32(sh.workers) {
		sh.barIn.Store(0)
		if after != nil {
			sh.runAfter(after)
		}
		sh.cursor.Store(0)
		sh.barGen.Add(1)
	} else {
		for spins := 0; sh.barGen.Load() == gen; spins++ {
			if spins > 256 {
				runtime.Gosched()
			}
		}
	}
}

func (sh *poolShared) runAfter(after func()) {
	defer func() {
		if r := recover(); r != nil {
			sh.panicV.CompareAndSwap(nil, &poolPanic{v: r})
		}
	}()
	after()
}
