package conc

import (
	"runtime"
	"sync/atomic"
)

// Pool is a persistent gang of worker goroutines parked on a
// channel-based barrier, the replacement for spawn-per-call Run/Blocks
// on hot paths: a kernel superstep issues ~6 parallel-for phases, and a
// chain issues thousands of supersteps, so goroutine creation and
// WaitGroup churn per phase dominates the barrier cost the paper's
// analysis assumes to be cheap. The pool's workers 1..P-1 live as long
// as the pool; the caller participates as worker 0, so a dispatch costs
// one channel send per parked worker plus one receive for the
// completion barrier, and nothing at all at P=1.
//
// Dispatch state (the task and its iteration space) is published via
// plain fields before the wake-up sends; the channel operations order
// them. Bodies passed to Run/Blocks/Chunked should be long-lived
// function values (fields on the owning engine) — then a steady-state
// dispatch performs zero heap allocations, which the kernel's
// allocation-regression test asserts.
//
// Concurrency contract: a Pool serializes its dispatches. Calling Run,
// Blocks, or Chunked from inside a body (nested use), or from two
// goroutines at once, panics. Close releases the workers; it is
// idempotent, and a finalizer releases them when a pool owner leaks
// without closing, so parked goroutines never outlive the pool's
// reachability.
type Pool struct {
	sh *poolShared
}

// poolShared is the worker-visible state. It is split from Pool so the
// parked goroutines keep only poolShared alive: the outer Pool stays
// collectable, letting its finalizer release the gang when the owner
// forgets to Close.
type poolShared struct {
	workers int

	// Dispatch state, written by the coordinator before the wake-up
	// sends and read-only during a dispatch.
	mode    int
	body    func(worker int)
	rangeFn func(worker, lo, hi int)
	n       int
	chunk   int

	cursor  atomic.Int64 // chunked mode: next unclaimed index
	start   []chan struct{}
	done    chan struct{}
	pending atomic.Int32
	panicV  atomic.Pointer[poolPanic]
	running atomic.Bool
	closed  atomic.Bool
}

type poolPanic struct{ v any }

const (
	modeBody = iota
	modeBlocks
	modeChunked
)

// NewPool starts a gang of workers goroutines (worker ids 0..workers-1,
// id 0 being the caller of each dispatch). workers < 1 is treated as 1;
// a 1-worker pool spawns no goroutines and dispatches inline.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	sh := &poolShared{
		workers: workers,
		done:    make(chan struct{}),
	}
	sh.start = make([]chan struct{}, workers-1)
	for i := range sh.start {
		sh.start[i] = make(chan struct{}, 1)
		go sh.parked(i + 1)
	}
	p := &Pool{sh: sh}
	if workers > 1 {
		runtime.SetFinalizer(p, func(p *Pool) { p.sh.release() })
	}
	return p
}

// Workers returns the gang size P.
func (p *Pool) Workers() int { return p.sh.workers }

// Close releases the worker goroutines. Idempotent; dispatching after
// Close panics. Closing is optional (a finalizer releases leaked
// pools), but deterministic release is good hygiene for engines that
// create many pools.
func (p *Pool) Close() {
	if p.sh.running.Load() {
		panic("conc: Pool.Close during dispatch")
	}
	p.sh.release()
	runtime.SetFinalizer(p, nil)
}

func (sh *poolShared) release() {
	if sh.closed.CompareAndSwap(false, true) {
		for _, c := range sh.start {
			close(c)
		}
	}
}

// parked is the worker loop: wait for a wake-up, run the current
// dispatch, signal the barrier if last, park again.
func (sh *poolShared) parked(w int) {
	for range sh.start[w-1] {
		sh.invoke(w)
		if sh.pending.Add(-1) == 0 {
			sh.done <- struct{}{}
		}
	}
}

// invoke runs the current dispatch as worker w, converting panics into
// a recorded first-panic that the coordinator re-raises.
func (sh *poolShared) invoke(w int) {
	defer func() {
		if r := recover(); r != nil {
			sh.panicV.CompareAndSwap(nil, &poolPanic{v: r})
		}
	}()
	sh.dispatch(w)
}

func (sh *poolShared) dispatch(w int) {
	switch sh.mode {
	case modeBody:
		sh.body(w)
	case modeBlocks:
		lo := sh.n * w / sh.workers
		hi := sh.n * (w + 1) / sh.workers
		if lo < hi {
			sh.rangeFn(w, lo, hi)
		}
	case modeChunked:
		for {
			hi := int(sh.cursor.Add(int64(sh.chunk)))
			lo := hi - sh.chunk
			if lo >= sh.n {
				return
			}
			if hi > sh.n {
				hi = sh.n
			}
			sh.rangeFn(w, lo, hi)
		}
	}
}

// acquire takes the dispatch lock before any dispatch state is
// written: nested or concurrent dispatches must be rejected without
// touching fields the parked workers may be reading.
func (sh *poolShared) acquire() {
	if !sh.running.CompareAndSwap(false, true) {
		panic("conc: nested or concurrent Pool dispatch")
	}
	if sh.closed.Load() {
		sh.running.Store(false)
		panic("conc: Pool dispatch after Close")
	}
}

// gang wakes the parked workers, runs the dispatch as worker 0, waits
// for the completion barrier, and re-raises the first recorded panic.
// The caller holds the dispatch lock (acquire) and has published the
// dispatch state.
func (sh *poolShared) gang() {
	sh.pending.Store(int32(sh.workers - 1))
	for _, c := range sh.start {
		c <- struct{}{}
	}
	sh.invoke(0)
	<-sh.done
	sh.body = nil
	sh.rangeFn = nil
	sh.running.Store(false)
	if pv := sh.panicV.Swap(nil); pv != nil {
		panic(pv.v)
	}
}

// solo runs a dispatch inline on a 1-worker pool (or a small-n
// fast path). The caller holds the dispatch lock (acquire) and has
// published the dispatch state.
func (sh *poolShared) solo() {
	defer func() {
		sh.body = nil
		sh.rangeFn = nil
		sh.running.Store(false)
	}()
	sh.dispatch(0)
}

// Run executes body once per worker id 0..P-1, in parallel, and waits
// for all of them — the pooled equivalent of package-level Run.
func (p *Pool) Run(body func(worker int)) {
	// Pin p: its finalizer must not release the gang mid-dispatch once
	// the method body no longer references p itself.
	defer runtime.KeepAlive(p)
	sh := p.sh
	sh.acquire()
	sh.mode = modeBody
	sh.body = body
	if sh.workers == 1 {
		sh.solo()
		return
	}
	sh.gang()
}

// serialCutoff is the iteration count below which Blocks and Chunked
// run inline on the calling goroutine: waking the gang costs ~µs, which
// dwarfs a handful of items (the typical re-examination rounds of the
// superstep kernel decide only a few delayed switches).
const serialCutoff = 32

// Blocks partitions [0, n) into at most P contiguous blocks differing
// in size by at most one and runs fn on each block in parallel. Workers
// whose block is empty are still woken but skip the call.
func (p *Pool) Blocks(n int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	defer runtime.KeepAlive(p) // see Run
	sh := p.sh
	sh.acquire()
	sh.mode = modeBlocks
	sh.rangeFn = fn
	sh.n = n
	if sh.workers == 1 || n <= serialCutoff {
		sh.mode = modeChunked // single full-range call below
		sh.chunk = n
		sh.cursor.Store(0)
		sh.solo()
		return
	}
	sh.gang()
}

// Chunked runs fn over [0, n) in chunks claimed from an atomic cursor:
// workers grab the next chunk-sized range until the space is exhausted.
// Use it when per-item cost is skewed (the decide rounds, where delayed
// switches cluster) and static blocks would imbalance the gang.
// chunk <= 0 selects a size that gives each worker ~8 claims.
func (p *Pool) Chunked(n, chunk int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	defer runtime.KeepAlive(p) // see Run
	sh := p.sh
	sh.acquire()
	if chunk <= 0 {
		chunk = n / (8 * sh.workers)
		if chunk < serialCutoff {
			chunk = serialCutoff
		}
	}
	sh.mode = modeChunked
	sh.rangeFn = fn
	sh.n = n
	sh.chunk = chunk
	sh.cursor.Store(0)
	if sh.workers == 1 || n <= serialCutoff {
		sh.chunk = n
		sh.solo()
		return
	}
	sh.gang()
}
