package conc

import (
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
)

// CacheTopology describes the cache hierarchy the gang's grain sizing is
// derived from: the per-core private cache (L2 on every mainstream
// x86/ARM part) and the shared last-level cache, with the number of
// logical CPUs sharing the latter. Values are detected from sysfs on
// Linux and fall back to conservative estimates elsewhere, so grain
// sizing degrades gracefully rather than failing.
type CacheTopology struct {
	// L2Bytes is the per-core private cache capacity.
	L2Bytes int
	// LLCBytes is the shared last-level cache capacity.
	LLCBytes int
	// LLCSharers is the number of logical CPUs sharing the LLC.
	LLCSharers int
	// Detected reports whether the values came from the OS rather than
	// the fallback estimates.
	Detected bool
}

// Fallback topology when detection is unavailable: 1 MiB private L2 and
// a 32 MiB LLC shared by every logical CPU — conservative for modern
// server parts, harmless for smaller ones (grains merely end up a bit
// smaller than optimal).
const (
	fallbackL2  = 1 << 20
	fallbackLLC = 32 << 20
)

var (
	topoOnce sync.Once
	topo     CacheTopology
)

// Topology returns the detected cache topology, computing it once.
func Topology() CacheTopology {
	topoOnce.Do(func() { topo = detectTopology() })
	return topo
}

func detectTopology() CacheTopology {
	t := CacheTopology{
		L2Bytes:    fallbackL2,
		LLCBytes:   fallbackLLC,
		LLCSharers: runtime.NumCPU(),
	}
	if runtime.GOOS != "linux" {
		return t
	}
	base := "/sys/devices/system/cpu/cpu0/cache"
	entries, err := os.ReadDir(base)
	if err != nil {
		return t
	}
	maxLevel := 0
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "index") {
			continue
		}
		dir := base + "/" + e.Name()
		if readSysString(dir+"/type") == "Instruction" {
			continue
		}
		level, ok := readSysInt(dir + "/level")
		if !ok {
			continue
		}
		size, ok := parseCacheSize(readSysString(dir + "/size"))
		if !ok {
			continue
		}
		if level == 2 {
			t.L2Bytes = size
			t.Detected = true
		}
		if level > maxLevel {
			maxLevel = level
			t.LLCBytes = size
			if sharers := countSharers(dir + "/shared_cpu_list"); sharers > 0 {
				t.LLCSharers = sharers
			}
			t.Detected = true
		}
	}
	return t
}

func readSysString(path string) string {
	b, err := os.ReadFile(path)
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(b))
}

func readSysInt(path string) (int, bool) {
	v, err := strconv.Atoi(readSysString(path))
	if err != nil {
		return 0, false
	}
	return v, true
}

// parseCacheSize parses sysfs cache sizes like "512K", "8M", "32768K".
func parseCacheSize(s string) (int, bool) {
	if s == "" {
		return 0, false
	}
	mult := 1
	switch s[len(s)-1] {
	case 'K', 'k':
		mult = 1 << 10
		s = s[:len(s)-1]
	case 'M', 'm':
		mult = 1 << 20
		s = s[:len(s)-1]
	case 'G', 'g':
		mult = 1 << 30
		s = s[:len(s)-1]
	}
	v, err := strconv.Atoi(s)
	if err != nil || v <= 0 {
		return 0, false
	}
	return v * mult, true
}

// countSharers counts CPUs in a sysfs cpu list ("0-3,8-11" style).
func countSharers(path string) int {
	s := readSysString(path)
	if s == "" {
		return 0
	}
	n := 0
	for _, part := range strings.Split(s, ",") {
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err1 := strconv.Atoi(lo)
			b, err2 := strconv.Atoi(hi)
			if err1 == nil && err2 == nil && b >= a {
				n += b - a + 1
			}
		} else if part != "" {
			n++
		}
	}
	return n
}
