package conc

import "testing"

// Failure-injection tests: the concurrency contracts are enforced by
// panics, which must actually fire on misuse rather than corrupt state
// silently.

func expectPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

func TestEraseUniqueAbsentPanics(t *testing.T) {
	s := NewEdgeSet(8)
	expectPanic(t, "EraseUnique of absent edge", func() {
		s.EraseUnique(edge(1, 2))
	})
}

func TestUnlockAbsentPanics(t *testing.T) {
	s := NewEdgeSet(8)
	expectPanic(t, "Unlock of absent edge", func() {
		s.Unlock(edge(1, 2), 0)
	})
}

func TestEraseLockedAbsentPanics(t *testing.T) {
	s := NewEdgeSet(8)
	expectPanic(t, "EraseLocked of absent edge", func() {
		s.EraseLocked(edge(1, 2), 0)
	})
}

func TestEdgeSetFullPanics(t *testing.T) {
	s := NewEdgeSet(4) // 16 buckets
	expectPanic(t, "insert beyond capacity", func() {
		for i := uint32(0); i < 64; i++ {
			s.InsertUnique(edge(i, i+100))
		}
	})
}

func TestEraseUniqueLockedPanics(t *testing.T) {
	// EraseUnique requires the edge to be unlocked; a locked edge
	// indicates interleaving unique-path and ticket-path operations.
	s := NewEdgeSet(8)
	e := edge(3, 4)
	s.InsertUnique(e)
	if !s.TryLock(e, 1) {
		t.Fatal("lock failed")
	}
	expectPanic(t, "EraseUnique of locked edge", func() {
		s.EraseUnique(e)
	})
}
