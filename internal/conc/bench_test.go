package conc

import (
	"testing"

	"gesmc/internal/graph"
	"gesmc/internal/rng"
)

func BenchmarkEdgeSetContains(b *testing.B) {
	s := NewEdgeSet(1 << 16)
	for i := uint32(0); i < 1<<15; i++ {
		s.InsertUnique(edge(i, i+1<<16))
	}
	src := rng.NewSplitMix64(1)
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		u := uint32(src.Uint64() & 0xFFFF)
		if s.Contains(edge(u, u+1<<16)) {
			hits++
		}
	}
	_ = hits
}

func BenchmarkEdgeSetInsertEraseUnique(b *testing.B) {
	s := NewEdgeSet(1 << 16)
	src := rng.NewSplitMix64(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := uint32(src.Uint64()&0xFFFF) + 1<<18
		e := edge(u, u+1<<19)
		s.InsertUnique(e)
		s.EraseUnique(e)
	}
}

func BenchmarkEdgeSetTicketCycle(b *testing.B) {
	// The NaiveParES hot path: lock two, insert-lock two, commit.
	s := NewEdgeSet(1 << 16)
	for i := uint32(0); i < 1<<14; i++ {
		s.InsertUnique(edge(i, i+1<<16))
	}
	src := rng.NewSplitMix64(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := uint32(src.Uint64() & 0x3FFF)
		e := edge(u, u+1<<16)
		if s.TryLock(e, 1) {
			s.Unlock(e, 1)
		}
	}
}

func BenchmarkDepTableStoreLookup(b *testing.B) {
	const n = 1 << 12
	dt := NewDepTable(n)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dt.Reset(n)
		for k := 0; k < n; k++ {
			dt.Store(k, 0, edge(uint32(2*k), uint32(2*k+1)), KindErase)
			dt.Store(k, 2, edge(uint32(k%97), uint32(1000+k%97)), KindInsert)
		}
		for k := 0; k < n; k++ {
			dt.EraseTuple(edge(uint32(2*k), uint32(2*k+1)))
			dt.MinInsert(edge(uint32(k%97), uint32(1000+k%97)))
		}
	}
	b.SetBytes(n * 4)
}

func BenchmarkBuildFrom(b *testing.B) {
	var edges []graph.Edge
	for i := uint32(0); i < 1<<15; i++ {
		edges = append(edges, edge(i, i+1<<16))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewEdgeSet(len(edges))
		s.BuildFrom(edges, 4)
	}
	b.SetBytes(int64(len(edges)) * 8)
}
