package conc

import (
	"math/bits"
	"sync/atomic"

	"gesmc/internal/graph"
	"gesmc/internal/rng"
)

// Bucket layout (§5.2 of the paper): 64-bit buckets, the low 56 bits hold
// the packed edge (28 bits per endpoint), the high 8 bits hold a lock
// byte (0 = unlocked, otherwise owner id + 1). Empty and tombstone are
// sentinel values that cannot collide with a packed simple edge, because
// a simple edge never has equal endpoints:
//
//	empty     = 0                  (packed loop {0,0})
//	tombstone = 0x00FFFFFFFFFFFFFF (packed loop {2^28-1, 2^28-1})
const (
	bucketEmpty     = uint64(0)
	bucketTombstone = uint64(0x00FFFFFFFFFFFFFF)
	edgeMask        = uint64(0x00FFFFFFFFFFFFFF)
	lockShift       = 56
)

// packEdge converts the canonical 64-bit edge encoding (32+32) into the
// 56-bit bucket encoding (28+28). Node ids must be below 2^28
// (graph.MaxNodes), which graph.New enforces.
func packEdge(e graph.Edge) uint64 {
	return uint64(e.U())<<28 | uint64(e.V())
}

// unpackEdge inverts packEdge without canonicalizing: the set is also
// used for directed arcs (package digraph), whose orientation must be
// preserved exactly as stored.
func unpackEdge(b uint64) graph.Edge {
	b &= edgeMask
	return graph.Edge(uint64(b>>28)<<32 | b&(1<<28-1))
}

// EdgeSet is a fixed-capacity concurrent open-addressing hash set of
// edges with linear probing and per-edge lock bytes. The capacity is
// fixed at construction: edge switching preserves the edge count, so the
// set never needs to grow mid-run. Deletions write tombstones; the unique
// insert path may reuse them, and Compact rebuilds the table when
// tombstones accumulate.
//
// Concurrency contract, by method:
//
//   - Contains is safe concurrently with everything except Compact.
//   - InsertUnique/EraseUnique require that no two goroutines operate on
//     the same edge concurrently (guaranteed inside a superstep: at most
//     one legal inserter and one eraser per edge, Observation 2).
//   - TryLock/TryInsertLock/Unlock/EraseLocked implement the ticket
//     semantics of NaiveParES and are safe for arbitrary concurrency.
//   - Compact requires external quiescence (superstep boundary).
//
// Sequential mode (SetSequential) replaces the CAS and the counter
// read-modify-writes of the unique insert/erase path with plain
// operations: a 1-worker gang has no concurrency to synchronize, and
// the locked instructions are pure overhead on the apply phase of the
// kernel. The ticket path (TryLock etc.) stays atomic regardless.
type EdgeSet struct {
	buckets    []uint64
	mask       uint64
	seq        bool
	size       int64
	tombstones int64
}

// NewEdgeSet returns a set with room for capacity edges at load factor
// <= 1/2 (the paper's configuration).
func NewEdgeSet(capacity int) *EdgeSet {
	nb := 1 << uint(bits.Len(uint(capacity*2)))
	if nb < 16 {
		nb = 16
	}
	return &EdgeSet{
		buckets: make([]uint64, nb),
		mask:    uint64(nb - 1),
	}
}

// BuildFrom fills the set with the given distinct edges using workers
// goroutines. It must not run concurrently with other operations.
func (s *EdgeSet) BuildFrom(edges []graph.Edge, workers int) {
	Blocks(len(edges), workers, func(_, lo, hi int) {
		for _, e := range edges[lo:hi] {
			s.InsertUnique(e)
		}
	})
}

// SetSequential switches the unique-path write side between the
// concurrent (CAS/atomic-add) and the plain single-goroutine paths.
// Callers set it once, when they know the gang size driving the set.
func (s *EdgeSet) SetSequential(on bool) { s.seq = on }

// Len returns the number of live edges.
func (s *EdgeSet) Len() int { return int(atomic.LoadInt64(&s.size)) }

// Tombstones returns the current tombstone count.
func (s *EdgeSet) Tombstones() int { return int(atomic.LoadInt64(&s.tombstones)) }

// Buckets returns the bucket count.
func (s *EdgeSet) Buckets() int { return len(s.buckets) }

func (s *EdgeSet) home(packed uint64) uint64 {
	return rng.Mix64(packed) & s.mask
}

// Touch loads the home bucket of e, pulling the probe chain's first
// cache line in ahead of a later Contains/insert/erase — the pure-Go
// analogue of §5.4's prefetch instructions, safe under any concurrency
// (it is an atomic load whose value is discarded).
func (s *EdgeSet) Touch(e graph.Edge) {
	_ = atomic.LoadUint64(&s.buckets[s.home(packEdge(e))])
}

// Contains reports whether e is live in the set, ignoring lock bytes.
func (s *EdgeSet) Contains(e graph.Edge) bool {
	p := packEdge(e)
	i := s.home(p)
	for probes := uint64(0); probes <= s.mask; probes++ {
		b := atomic.LoadUint64(&s.buckets[i])
		if b == bucketEmpty {
			return false
		}
		if b&edgeMask == p {
			return true
		}
		i = (i + 1) & s.mask
	}
	panic("conc: EdgeSet probe loop exhausted (tombstone-saturated or misused table)")
}

// InsertUnique inserts e, which must be absent, with no other goroutine
// concurrently inserting or erasing the same edge. Tombstone slots are
// reused. Panics if the table is full (capacity misuse).
func (s *EdgeSet) InsertUnique(e graph.Edge) {
	p := packEdge(e)
	i := s.home(p)
	if s.seq {
		for probes := uint64(0); probes <= s.mask; probes++ {
			b := s.buckets[i]
			if b == bucketEmpty {
				s.buckets[i] = p
				s.size++
				return
			}
			if b == bucketTombstone {
				s.buckets[i] = p
				s.size++
				s.tombstones--
				return
			}
			i = (i + 1) & s.mask
		}
		panic("conc: EdgeSet full")
	}
	for probes := uint64(0); probes <= s.mask; probes++ {
		b := atomic.LoadUint64(&s.buckets[i])
		if b == bucketEmpty {
			if atomic.CompareAndSwapUint64(&s.buckets[i], bucketEmpty, p) {
				atomic.AddInt64(&s.size, 1)
				return
			}
			continue // slot raced away; re-examine it
		}
		if b == bucketTombstone {
			if atomic.CompareAndSwapUint64(&s.buckets[i], bucketTombstone, p) {
				atomic.AddInt64(&s.size, 1)
				atomic.AddInt64(&s.tombstones, -1)
				return
			}
			continue
		}
		i = (i + 1) & s.mask
	}
	panic("conc: EdgeSet full")
}

// EraseUnique removes e, which must be live and unlocked, with no other
// goroutine concurrently operating on the same edge.
func (s *EdgeSet) EraseUnique(e graph.Edge) {
	p := packEdge(e)
	i := s.home(p)
	if s.seq {
		for probes := uint64(0); probes <= s.mask; probes++ {
			b := s.buckets[i]
			if b == bucketEmpty {
				panic("conc: EraseUnique of absent edge")
			}
			if b&edgeMask == p {
				if b != p {
					panic("conc: EraseUnique of locked edge")
				}
				s.buckets[i] = bucketTombstone
				s.size--
				s.tombstones++
				return
			}
			i = (i + 1) & s.mask
		}
		panic("conc: EdgeSet probe loop exhausted (tombstone-saturated or misused table)")
	}
	for probes := uint64(0); probes <= s.mask; probes++ {
		b := atomic.LoadUint64(&s.buckets[i])
		if b == bucketEmpty {
			panic("conc: EraseUnique of absent edge")
		}
		if b&edgeMask == p {
			if !atomic.CompareAndSwapUint64(&s.buckets[i], p, bucketTombstone) {
				panic("conc: EraseUnique raced (edge locked or contended)")
			}
			atomic.AddInt64(&s.size, -1)
			atomic.AddInt64(&s.tombstones, 1)
			return
		}
		i = (i + 1) & s.mask
	}
	panic("conc: EdgeSet probe loop exhausted (tombstone-saturated or misused table)")
}

// TryLock acquires the ticket for an existing unlocked edge by writing
// owner+1 into its lock byte (compare-and-swap). It fails if the edge is
// absent, locked, or contended.
func (s *EdgeSet) TryLock(e graph.Edge, owner uint8) bool {
	p := packEdge(e)
	lockBits := uint64(owner+1) << lockShift
	i := s.home(p)
	for probes := uint64(0); probes <= s.mask; probes++ {
		b := atomic.LoadUint64(&s.buckets[i])
		if b == bucketEmpty {
			return false
		}
		if b&edgeMask == p {
			if b>>lockShift != 0 {
				return false // already locked
			}
			return atomic.CompareAndSwapUint64(&s.buckets[i], p, p|lockBits)
		}
		i = (i + 1) & s.mask
	}
	panic("conc: EdgeSet probe loop exhausted (tombstone-saturated or misused table)")
}

// TryInsertLock inserts e in locked state if it is absent. It fails if e
// is present (locked or not). Unlike InsertUnique it never reuses
// tombstones: concurrent inserters of the same edge may race, and
// claiming only empty chain tails guarantees at most one wins.
func (s *EdgeSet) TryInsertLock(e graph.Edge, owner uint8) bool {
	p := packEdge(e)
	locked := p | uint64(owner+1)<<lockShift
	i := s.home(p)
	for probes := uint64(0); probes <= s.mask; probes++ {
		b := atomic.LoadUint64(&s.buckets[i])
		if b&edgeMask == p && b != bucketTombstone {
			return false // exists (whoever holds it)
		}
		if b == bucketEmpty {
			if atomic.CompareAndSwapUint64(&s.buckets[i], bucketEmpty, locked) {
				atomic.AddInt64(&s.size, 1)
				return true
			}
			continue // re-examine raced slot: may now hold p
		}
		i = (i + 1) & s.mask
	}
	panic("conc: EdgeSet full")
}

// Unlock releases a lock held by owner on live edge e.
func (s *EdgeSet) Unlock(e graph.Edge, owner uint8) {
	p := packEdge(e)
	locked := p | uint64(owner+1)<<lockShift
	i := s.home(p)
	for probes := uint64(0); probes <= s.mask; probes++ {
		b := atomic.LoadUint64(&s.buckets[i])
		if b == locked {
			if !atomic.CompareAndSwapUint64(&s.buckets[i], locked, p) {
				panic("conc: Unlock raced")
			}
			return
		}
		if b == bucketEmpty {
			panic("conc: Unlock of absent edge")
		}
		i = (i + 1) & s.mask
	}
	panic("conc: EdgeSet probe loop exhausted (tombstone-saturated or misused table)")
}

// EraseLocked removes edge e whose lock is held by owner.
func (s *EdgeSet) EraseLocked(e graph.Edge, owner uint8) {
	p := packEdge(e)
	locked := p | uint64(owner+1)<<lockShift
	i := s.home(p)
	for probes := uint64(0); probes <= s.mask; probes++ {
		b := atomic.LoadUint64(&s.buckets[i])
		if b == locked {
			if !atomic.CompareAndSwapUint64(&s.buckets[i], locked, bucketTombstone) {
				panic("conc: EraseLocked raced")
			}
			atomic.AddInt64(&s.size, -1)
			atomic.AddInt64(&s.tombstones, 1)
			return
		}
		if b == bucketEmpty {
			panic("conc: EraseLocked of absent edge")
		}
		i = (i + 1) & s.mask
	}
	panic("conc: EdgeSet probe loop exhausted (tombstone-saturated or misused table)")
}

// NeedsCompact reports whether tombstones occupy more than a quarter of
// the table.
func (s *EdgeSet) NeedsCompact() bool {
	return atomic.LoadInt64(&s.tombstones)*4 > int64(len(s.buckets))
}

// ClearRange empties buckets [lo, hi). The caller must guarantee
// quiescence and, before reusing the set, restore the live edges and
// call ResetCounts — this is the building block of a pooled,
// allocation-free Compact (see switching.Runner).
func (s *EdgeSet) ClearRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		s.buckets[i] = bucketEmpty
	}
}

// ResetCounts zeroes the live and tombstone counters after ClearRange.
func (s *EdgeSet) ResetCounts() {
	atomic.StoreInt64(&s.size, 0)
	atomic.StoreInt64(&s.tombstones, 0)
}

// Compact rebuilds the table from the authoritative edge list, dropping
// all tombstones. The caller must guarantee quiescence.
func (s *EdgeSet) Compact(edges []graph.Edge, workers int) {
	Blocks(len(s.buckets), workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			s.buckets[i] = bucketEmpty
		}
	})
	atomic.StoreInt64(&s.size, 0)
	atomic.StoreInt64(&s.tombstones, 0)
	s.BuildFrom(edges, workers)
}

// ForEach calls fn for every live edge. The caller must guarantee
// quiescence.
func (s *EdgeSet) ForEach(fn func(graph.Edge)) {
	for _, b := range s.buckets {
		if b != bucketEmpty && b != bucketTombstone {
			fn(unpackEdge(b))
		}
	}
}
