package conc

import (
	"sync/atomic"
	"testing"
)

// TestFusedPassOrdering asserts the sub-barrier contract: every item of
// pass i is processed before any item of pass i+1, for every
// partitioning mix and worker count.
func TestFusedPassOrdering(t *testing.T) {
	for _, w := range []int{1, 2, 4, 8} {
		p := NewPool(w)
		const n = 10_000
		var pass1Done atomic.Int64
		var violations atomic.Int64
		marks := make([]int32, n)
		plan := &FusedPlan{Passes: []FusedPass{
			{N: n, Fn: func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.StoreInt32(&marks[i], 1)
				}
				pass1Done.Add(int64(hi - lo))
			}},
			{N: n, Chunk: 64, Fn: func(_, lo, hi int) {
				if pass1Done.Load() != n {
					violations.Add(1)
				}
				for i := lo; i < hi; i++ {
					if atomic.LoadInt32(&marks[i]) != 1 {
						violations.Add(1)
					}
					atomic.AddInt32(&marks[i], 1)
				}
			}},
		}}
		p.Fused(plan)
		if violations.Load() != 0 {
			t.Fatalf("w=%d: pass 2 observed incomplete pass 1 (%d violations)", w, violations.Load())
		}
		for i, m := range marks {
			if m != 2 {
				t.Fatalf("w=%d: item %d processed %d times across passes, want 2", w, i, m)
			}
		}
		p.Close()
	}
}

// TestFusedAfterHook asserts After runs exactly once, after the pass
// completes and before the next pass starts.
func TestFusedAfterHook(t *testing.T) {
	for _, w := range []int{1, 3} {
		p := NewPool(w)
		const n = 4096
		var covered atomic.Int64
		var afterRuns atomic.Int64
		var afterSaw int64
		var lateViolations atomic.Int64
		plan := &FusedPlan{Passes: []FusedPass{
			{N: n, Fn: func(_, lo, hi int) { covered.Add(int64(hi - lo)) },
				After: func() {
					afterRuns.Add(1)
					afterSaw = covered.Load()
				}},
			{N: n, Fn: func(_, lo, hi int) {
				if afterRuns.Load() != 1 {
					lateViolations.Add(1)
				}
			}},
		}}
		p.Fused(plan)
		if afterRuns.Load() != 1 {
			t.Fatalf("w=%d: After ran %d times, want 1", w, afterRuns.Load())
		}
		if afterSaw != n {
			t.Fatalf("w=%d: After observed %d/%d items complete", w, afterSaw, n)
		}
		if lateViolations.Load() != 0 {
			t.Fatalf("w=%d: pass 2 started before After", w)
		}
		p.Close()
	}
}

// TestFusedEmptyAndSkippedPasses: N <= 0 skips the body but still runs
// After; the plan completes without deadlock.
func TestFusedEmptyAndSkippedPasses(t *testing.T) {
	for _, w := range []int{1, 4} {
		p := NewPool(w)
		var ran atomic.Int64
		var after atomic.Int64
		plan := &FusedPlan{Passes: []FusedPass{
			{N: 0, Fn: func(_, _, _ int) { ran.Add(1) }, After: func() { after.Add(1) }},
			{N: 100, Fn: func(_, lo, hi int) { ran.Add(int64(hi - lo)) }},
		}}
		p.Fused(plan)
		if ran.Load() != 100 {
			t.Fatalf("w=%d: ran %d items, want 100", w, ran.Load())
		}
		if after.Load() != 1 {
			t.Fatalf("w=%d: After of empty pass ran %d times, want 1", w, after.Load())
		}
		p.Close()
	}
}

// TestFusedPanicPropagation: a panic in any pass is re-raised to the
// caller and the gang survives for further dispatches.
func TestFusedPanicPropagation(t *testing.T) {
	for _, w := range []int{1, 4} {
		p := NewPool(w)
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Fatalf("w=%d: fused panic not propagated", w)
				}
			}()
			p.Fused(&FusedPlan{Passes: []FusedPass{
				{N: 100, Fn: func(_, lo, hi int) { panic("pass boom") }},
				{N: 100, Fn: func(_, _, _ int) {}},
			}})
		}()
		// The pool must still be usable.
		var n atomic.Int64
		p.Blocks(100, func(_, lo, hi int) { n.Add(int64(hi - lo)) })
		if n.Load() != 100 {
			t.Fatalf("w=%d: pool broken after fused panic", w)
		}
		p.Close()
	}
}

// TestFusedChunkedCursorReset: consecutive chunked passes in one plan
// each see a freshly reset cursor (full coverage of both spaces).
func TestFusedChunkedCursorReset(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var a, b atomic.Int64
	plan := &FusedPlan{Passes: []FusedPass{
		{N: 5000, Chunk: 128, Fn: func(_, lo, hi int) { a.Add(int64(hi - lo)) }},
		{N: 7000, Chunk: -1, Fn: func(_, lo, hi int) { b.Add(int64(hi - lo)) }},
	}}
	for rep := 0; rep < 3; rep++ {
		a.Store(0)
		b.Store(0)
		p.Fused(plan)
		if a.Load() != 5000 || b.Load() != 7000 {
			t.Fatalf("rep %d: covered %d/%d, want 5000/7000", rep, a.Load(), b.Load())
		}
	}
}

// TestBlockRangeAlignedCoverage: aligned block boundaries still tile
// [0, n) exactly, for every (n, workers) shape.
func TestBlockRangeAlignedCoverage(t *testing.T) {
	for _, n := range []int{1, 31, 32, 1000, 1024, 4096, 100_000} {
		for _, w := range []int{1, 2, 3, 4, 7, 8, 16} {
			covered := 0
			prevHi := 0
			for worker := 0; worker < w; worker++ {
				lo, hi := blockRange(n, worker, w)
				if lo < hi {
					if lo != prevHi {
						t.Fatalf("n=%d w=%d worker=%d: gap/overlap at lo=%d prevHi=%d", n, w, worker, lo, prevHi)
					}
					covered += hi - lo
					prevHi = hi
				}
			}
			if covered != n {
				t.Fatalf("n=%d w=%d: covered %d items", n, w, covered)
			}
			if prevHi != n {
				t.Fatalf("n=%d w=%d: last block ends at %d", n, w, prevHi)
			}
		}
	}
}

// TestTopologyDetection sanity-checks the detected (or fallback)
// topology: positive sizes, sane sharer count.
func TestTopologyDetection(t *testing.T) {
	topo := Topology()
	if topo.L2Bytes <= 0 || topo.LLCBytes <= 0 {
		t.Fatalf("non-positive cache sizes: %+v", topo)
	}
	if topo.LLCSharers < 1 {
		t.Fatalf("bad sharer count: %+v", topo)
	}
	if g := NewPool(2).Grain(); g < serialCutoff {
		t.Fatalf("derived grain %d below serial cutoff", g)
	}
}
