package conc

import (
	"fmt"
	"testing"
)

// Dispatch-latency micro-benchmarks: empty or near-empty bodies isolate
// the barrier cost of one gang dispatch (wake + completion) per shape
// and worker count, so barrier-count changes in the kernel (phase
// fusion) are measurable without graph workload noise. ns/op here IS
// the per-dispatch overhead the superstep phases pay.

func benchPoolWorkers() []int { return []int{1, 2, 4, 8} }

func BenchmarkPoolDispatchBlocks(b *testing.B) {
	for _, w := range benchPoolWorkers() {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			p := NewPool(w)
			defer p.Close()
			fn := func(_, _, _ int) {}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Blocks(1<<16, fn)
			}
		})
	}
}

func BenchmarkPoolDispatchChunked(b *testing.B) {
	for _, w := range benchPoolWorkers() {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			p := NewPool(w)
			defer p.Close()
			fn := func(_, _, _ int) {}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Chunked(1<<16, 0, fn)
			}
		})
	}
}

// BenchmarkPoolDispatchFused2 vs BenchmarkPoolDispatchTwoBlocks is the
// fusion payoff in isolation: one fused two-pass dispatch (one wake,
// one spin sub-barrier, one completion) against two back-to-back block
// dispatches (two wakes, two completions).
func BenchmarkPoolDispatchFused2(b *testing.B) {
	for _, w := range benchPoolWorkers() {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			p := NewPool(w)
			defer p.Close()
			fn := func(_, _, _ int) {}
			plan := &FusedPlan{Passes: []FusedPass{
				{N: 1 << 16, Fn: fn},
				{N: 1 << 16, Fn: fn},
			}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Fused(plan)
			}
		})
	}
}

func BenchmarkPoolDispatchTwoBlocks(b *testing.B) {
	for _, w := range benchPoolWorkers() {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			p := NewPool(w)
			defer p.Close()
			fn := func(_, _, _ int) {}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Blocks(1<<16, fn)
				p.Blocks(1<<16, fn)
			}
		})
	}
}

// BenchmarkPoolDispatchFused3 measures the three-pass shape used by the
// fused compaction (snapshot / clear+reset / rebuild).
func BenchmarkPoolDispatchFused3(b *testing.B) {
	for _, w := range benchPoolWorkers() {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			p := NewPool(w)
			defer p.Close()
			fn := func(_, _, _ int) {}
			after := func() {}
			plan := &FusedPlan{Passes: []FusedPass{
				{N: 1 << 16, Fn: fn},
				{N: 1 << 16, Fn: fn, After: after},
				{N: 1 << 16, Fn: fn},
			}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Fused(plan)
			}
		})
	}
}
