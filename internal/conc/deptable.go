package conc

import (
	"math/bits"
	"sync/atomic"

	"gesmc/internal/graph"
	"gesmc/internal/rng"
)

// Switch status values (the s_k of Algorithm 1).
const (
	StatusUndecided uint32 = iota
	StatusLegal
	StatusIllegal
)

// Tuple kinds (the t_{e,k} of Algorithm 1).
const (
	KindErase uint8 = iota
	KindInsert
)

// DepTable is the concurrent dependency table T of Algorithm 1. For every
// switch σ_k of a superstep it stores four tuples — (e1, k, erase),
// (e2, k, erase), (e3, k, insert), (e4, k, insert) — indexed by edge, in
// a lock-free chained hash table. All tuples of σ_k share the single
// status word Status[k], so the "update" of Algorithm 1 (lines 32–33)
// collapses into one atomic store.
//
// The arena is laid out deterministically: the tuples of switch k live at
// positions 4k .. 4k+3, so phase 1 needs no allocation synchronization —
// workers only contend on the bucket head CAS.
type DepTable struct {
	heads   []atomic.Int32 // bucket -> arena index of first entry, -1 if none
	mask    uint64
	keys    []uint64 // arena: edge key per tuple
	meta    []uint32 // arena: switch index (31 bits) | kind (top bit)
	next    []int32  // arena: chain link
	Status  []atomic.Uint32
	nSwitch int
}

const kindInsertBit = uint32(1) << 31

// NewDepTable returns a table with room for maxSwitches switches per
// superstep. The same table is reused across supersteps via Reset.
func NewDepTable(maxSwitches int) *DepTable {
	nb := 1 << uint(bits.Len(uint(maxSwitches*4)))
	if nb < 16 {
		nb = 16
	}
	t := &DepTable{
		heads:  make([]atomic.Int32, nb),
		mask:   uint64(nb - 1),
		keys:   make([]uint64, 4*maxSwitches),
		meta:   make([]uint32, 4*maxSwitches),
		next:   make([]int32, 4*maxSwitches),
		Status: make([]atomic.Uint32, maxSwitches),
	}
	for i := range t.heads {
		t.heads[i].Store(-1)
	}
	return t
}

// Reset prepares the table for a superstep of nSwitches switches,
// clearing bucket heads and statuses with workers goroutines.
func (t *DepTable) Reset(nSwitches, workers int) {
	if nSwitches > len(t.Status) {
		panic("conc: DepTable capacity exceeded")
	}
	t.nSwitch = nSwitches
	Blocks(len(t.heads), workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			t.heads[i].Store(-1)
		}
	})
	Blocks(nSwitches, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			t.Status[i].Store(StatusUndecided)
		}
	})
}

// Key returns the edge key stored in arena position pos (tuple slot
// 4k+s of switch k). Valid after the corresponding Store.
func (t *DepTable) Key(pos int) uint64 { return t.keys[pos] }

func (t *DepTable) bucket(e graph.Edge) uint64 {
	return rng.Mix64(uint64(e)) & t.mask
}

// Store registers tuple slot (0..3) of switch k: an operation of the
// given kind on edge e. Safe for concurrent use by distinct (k, slot)
// pairs.
func (t *DepTable) Store(k int, slot int, e graph.Edge, kind uint8) {
	pos := int32(4*k + slot)
	t.keys[pos] = uint64(e)
	m := uint32(k)
	if kind == KindInsert {
		m |= kindInsertBit
	}
	t.meta[pos] = m
	head := &t.heads[t.bucket(e)]
	for {
		old := head.Load()
		t.next[pos] = old
		if head.CompareAndSwap(old, pos) {
			return
		}
	}
}

// EraseTuple returns the index of the switch that erases e in this
// superstep, or ok=false if no switch sources e. By Observation 2 of the
// paper there is at most one such switch.
func (t *DepTable) EraseTuple(e graph.Edge) (idx int, ok bool) {
	key := uint64(e)
	for pos := t.heads[t.bucket(e)].Load(); pos >= 0; pos = t.next[pos] {
		if t.keys[pos] == key && t.meta[pos]&kindInsertBit == 0 {
			return int(t.meta[pos]), true
		}
	}
	return 0, false
}

// MinInsert returns the smallest switch index q with an insert tuple for
// e whose status is not illegal, together with its status, or ok=false
// if there is no such tuple. This is the lookup_min of Algorithm 1.
//
// The scan is racy with concurrent status updates by design: a tuple
// turning illegal mid-scan may still be reported, in which case the
// caller re-examines the switch in the next round (the delay path),
// which is always sound.
func (t *DepTable) MinInsert(e graph.Edge) (q int, status uint32, ok bool) {
	key := uint64(e)
	best := -1
	var bestStatus uint32
	for pos := t.heads[t.bucket(e)].Load(); pos >= 0; pos = t.next[pos] {
		if t.keys[pos] != key || t.meta[pos]&kindInsertBit == 0 {
			continue
		}
		idx := int(t.meta[pos] &^ kindInsertBit)
		st := t.Status[idx].Load()
		if st == StatusIllegal {
			continue
		}
		if best == -1 || idx < best {
			best = idx
			bestStatus = st
		}
	}
	if best == -1 {
		return 0, 0, false
	}
	return best, bestStatus, true
}
