package conc

import (
	"math/bits"
	"sync/atomic"

	"gesmc/internal/graph"
	"gesmc/internal/rng"
)

// Switch status values (the s_k of Algorithm 1).
const (
	StatusUndecided uint32 = iota
	StatusLegal
	StatusIllegal
)

// Tuple kinds (the t_{e,k} of Algorithm 1).
const (
	KindErase uint8 = iota
	KindInsert
)

// DepTable is the concurrent dependency table T of Algorithm 1. For every
// switch σ_k of a superstep it stores four tuples — (e1, k, erase),
// (e2, k, erase), (e3, k, insert), (e4, k, insert) — indexed by edge, in
// a lock-free chained hash table. All tuples of σ_k share the single
// status word of switch k, so the "update" of Algorithm 1 (lines 32–33)
// collapses into one atomic store.
//
// The arena is laid out deterministically: the tuples of switch k live at
// positions 4k .. 4k+3, so phase 1 needs no allocation synchronization —
// workers only contend on the bucket head CAS.
//
// Epoch-stamped reset: bucket heads pack (epoch, arena index) into one
// word and status words pack (epoch, status); a head or status whose
// epoch differs from the table's current one reads as empty/undecided.
// Reset therefore only bumps the epoch — O(1) instead of O(capacity) —
// and performs a genuine clear only when the epoch tag would wrap
// (every 2^30-1 supersteps). The epoch itself is written only at the
// quiescent superstep boundary and is read-only during a superstep.
//
// Sequential mode (SetSequential) replaces the head CAS loop and the
// status XCHG with plain stores: a 1-worker gang has no concurrency to
// synchronize, and the locked read-modify-writes are pure overhead on
// the hottest loop of the kernel. Loads are unaffected (plain and
// atomic loads cost the same); the mode only changes the write side.
type DepTable struct {
	heads   []uint64 // bucket -> epoch<<32 | arena index of first entry
	mask    uint64
	entries []depEntry // arena, interleaved so one chain hop costs one line
	status  []uint32   // epoch<<2 | status; stale epoch reads undecided
	epoch   uint32     // 1 .. epochMax; stored tags match iff current
	seq     bool
	nSwitch int
}

// depEntry is one arena tuple: the edge key, the switch index (31 bits)
// with the kind in the top bit, and the chain link. The three fields a
// chain walk reads sit in 16 contiguous bytes, so following a chain
// entry costs one cache line instead of the three a split-array layout
// pays.
type depEntry struct {
	key  uint64
	meta uint32 // switch index | kindInsertBit
	next int32  // chain link, -1 terminates
}

const (
	kindInsertBit = uint32(1) << 31
	// statusEpochShift leaves the low 2 bits for the status value.
	statusEpochShift = 2
	// epochMax bounds the epoch tag by the status word's 30 epoch bits
	// (head words have 32 and are never the binding constraint).
	epochMax = 1<<30 - 1
)

// NewDepTable returns a table with room for maxSwitches switches per
// superstep. The same table is reused across supersteps via Reset.
func NewDepTable(maxSwitches int) *DepTable {
	nb := 1 << uint(bits.Len(uint(maxSwitches*4)))
	if nb < 16 {
		nb = 16
	}
	return &DepTable{
		heads:   make([]uint64, nb),
		mask:    uint64(nb - 1),
		entries: make([]depEntry, 4*maxSwitches),
		status:  make([]uint32, maxSwitches),
		epoch:   0, // first Reset moves to 1; zeroed words can never match
	}
}

// SetSequential switches the table's write side between the concurrent
// (CAS/atomic-store) and the plain single-goroutine paths. Callers set
// it once, when they know the gang size that will drive the table.
func (t *DepTable) SetSequential(on bool) { t.seq = on }

// Reset prepares the table for a superstep of nSwitches switches by
// advancing the epoch: all previously stored heads and statuses become
// stale in O(1). The caller must be quiescent (superstep boundary).
func (t *DepTable) Reset(nSwitches int) {
	if nSwitches > len(t.status) {
		panic("conc: DepTable capacity exceeded")
	}
	t.nSwitch = nSwitches
	if t.epoch >= epochMax {
		// Epoch tag wrap: genuinely clear so stale tags cannot alias.
		for i := range t.heads {
			t.heads[i] = 0
		}
		for i := range t.status {
			t.status[i] = 0
		}
		t.epoch = 0
	}
	t.epoch++
}

// Key returns the edge key stored in arena position pos (tuple slot
// 4k+s of switch k). Valid after the corresponding Store.
func (t *DepTable) Key(pos int) uint64 { return t.entries[pos].key }

// StatusOf returns the status of switch k this superstep.
func (t *DepTable) StatusOf(k int) uint32 {
	v := atomic.LoadUint32(&t.status[k])
	if v>>statusEpochShift != t.epoch {
		return StatusUndecided
	}
	return v & 3
}

// SetStatus publishes the status of switch k (the linearization point
// observed by dependent switches).
func (t *DepTable) SetStatus(k int, st uint32) {
	v := t.epoch<<statusEpochShift | st
	if t.seq {
		t.status[k] = v
		return
	}
	atomic.StoreUint32(&t.status[k], v)
}

func (t *DepTable) bucket(e graph.Edge) uint64 {
	return rng.Mix64(uint64(e)) & t.mask
}

// Touch loads the head bucket of e, pulling its cache line in ahead of
// a later Store or Probe — the §5.4 pre-touch hint for the dependency
// table. Purely a memory hint; staleness cannot affect correctness.
func (t *DepTable) Touch(e graph.Edge) {
	_ = atomic.LoadUint64(&t.heads[t.bucket(e)])
}

// headOf decodes a head word: the arena index of the chain's first
// entry, or -1 when the bucket holds no entry of the current epoch.
func (t *DepTable) headOf(h uint64) int32 {
	if uint32(h>>32) != t.epoch {
		return -1
	}
	return int32(uint32(h))
}

// Store registers tuple slot (0..3) of switch k: an operation of the
// given kind on edge e. Safe for concurrent use by distinct (k, slot)
// pairs.
func (t *DepTable) Store(k int, slot int, e graph.Edge, kind uint8) {
	pos := int32(4*k + slot)
	ent := &t.entries[pos]
	ent.key = uint64(e)
	m := uint32(k)
	if kind == KindInsert {
		m |= kindInsertBit
	}
	ent.meta = m
	head := &t.heads[t.bucket(e)]
	tagged := uint64(t.epoch)<<32 | uint64(uint32(pos))
	if t.seq {
		ent.next = t.headOf(*head)
		*head = tagged
		return
	}
	for {
		old := atomic.LoadUint64(head)
		ent.next = t.headOf(old)
		if atomic.CompareAndSwapUint64(head, old, tagged) {
			return
		}
	}
}

// EraseTuple returns the index of the switch that erases e in this
// superstep, or ok=false if no switch sources e. By Observation 2 of the
// paper there is at most one such switch.
func (t *DepTable) EraseTuple(e graph.Edge) (idx int, ok bool) {
	key := uint64(e)
	for pos := t.headOf(atomic.LoadUint64(&t.heads[t.bucket(e)])); pos >= 0; {
		ent := &t.entries[pos]
		if ent.key == key && ent.meta&kindInsertBit == 0 {
			return int(ent.meta), true
		}
		pos = ent.next
	}
	return 0, false
}

// MinInsert returns the smallest switch index q with an insert tuple for
// e whose status is not illegal, together with its status, or ok=false
// if there is no such tuple. This is the lookup_min of Algorithm 1.
//
// The scan is racy with concurrent status updates by design: a tuple
// turning illegal mid-scan may still be reported, in which case the
// caller re-examines the switch in the next round (the delay path),
// which is always sound.
func (t *DepTable) MinInsert(e graph.Edge) (q int, status uint32, ok bool) {
	_, _, q, status, ok = t.Probe(e)
	return q, status, ok
}

// Probe walks the chain of e once and answers both dependency queries
// of Algorithm 1's decide step: the switch erasing e (EraseTuple) and
// the smallest non-illegal inserter of e (MinInsert). The merged walk
// halves the cache-missing chain traversals of the kernel's hottest
// loop; the same raciness caveat as MinInsert applies.
func (t *DepTable) Probe(e graph.Edge) (eraseIdx int, eraseOK bool, minQ int, minStatus uint32, minOK bool) {
	key := uint64(e)
	best := -1
	var bestStatus uint32
	for pos := t.headOf(atomic.LoadUint64(&t.heads[t.bucket(e)])); pos >= 0; {
		ent := &t.entries[pos]
		pos = ent.next
		if ent.key != key {
			continue
		}
		m := ent.meta
		if m&kindInsertBit == 0 {
			eraseIdx, eraseOK = int(m), true
			continue
		}
		idx := int(m &^ kindInsertBit)
		st := t.StatusOf(idx)
		if st == StatusIllegal {
			continue
		}
		if best == -1 || idx < best {
			best = idx
			bestStatus = st
		}
	}
	if best == -1 {
		return eraseIdx, eraseOK, 0, 0, false
	}
	return eraseIdx, eraseOK, best, bestStatus, true
}
