package conc

import (
	"sync"
	"sync/atomic"
	"testing"

	"gesmc/internal/graph"
)

func edge(u, v uint32) graph.Edge { return graph.MakeEdge(u, v) }

func TestPackUnpackRoundTrip(t *testing.T) {
	cases := []graph.Edge{
		edge(0, 1),
		edge(5, 9),
		edge(1<<28-2, 1<<28-1),
		edge(0, 1<<28-1),
	}
	for _, e := range cases {
		if got := unpackEdge(packEdge(e)); got != e {
			t.Fatalf("roundtrip %v -> %v", e, got)
		}
	}
}

func TestSentinelsAreNotEdges(t *testing.T) {
	// empty and tombstone decode to loops, which are never stored.
	if !unpackEdge(bucketEmpty).IsLoop() || !unpackEdge(bucketTombstone).IsLoop() {
		t.Fatal("sentinel collides with a storable edge")
	}
}

func TestInsertContainsEraseUnique(t *testing.T) {
	s := NewEdgeSet(16)
	e := edge(3, 4)
	if s.Contains(e) {
		t.Fatal("empty set contains edge")
	}
	s.InsertUnique(e)
	if !s.Contains(e) || s.Len() != 1 {
		t.Fatal("insert failed")
	}
	s.EraseUnique(e)
	if s.Contains(e) || s.Len() != 0 || s.Tombstones() != 1 {
		t.Fatal("erase failed")
	}
	// Reinsert reuses the tombstone.
	s.InsertUnique(e)
	if !s.Contains(e) || s.Tombstones() != 0 {
		t.Fatal("tombstone not reused")
	}
}

func TestBuildFromParallel(t *testing.T) {
	var edges []graph.Edge
	for i := uint32(0); i < 5000; i++ {
		edges = append(edges, edge(i, i+10000))
	}
	s := NewEdgeSet(len(edges))
	s.BuildFrom(edges, 4)
	if s.Len() != len(edges) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(edges))
	}
	for _, e := range edges {
		if !s.Contains(e) {
			t.Fatalf("missing %v", e)
		}
	}
}

func TestConcurrentDisjointInsertErase(t *testing.T) {
	// Workers operate on disjoint edges: the unique-path contract.
	const perWorker = 2000
	const workers = 8
	s := NewEdgeSet(perWorker * workers)
	Run(workers, func(w int) {
		base := uint32(w * perWorker)
		for i := uint32(0); i < perWorker; i++ {
			s.InsertUnique(edge(base+i, base+i+1<<20))
		}
	})
	if s.Len() != perWorker*workers {
		t.Fatalf("Len = %d after parallel insert", s.Len())
	}
	Run(workers, func(w int) {
		base := uint32(w * perWorker)
		for i := uint32(0); i < perWorker; i += 2 {
			s.EraseUnique(edge(base+i, base+i+1<<20))
		}
	})
	if s.Len() != perWorker*workers/2 {
		t.Fatalf("Len = %d after parallel erase", s.Len())
	}
	count := 0
	s.ForEach(func(graph.Edge) { count++ })
	if count != s.Len() {
		t.Fatalf("ForEach visited %d, Len = %d", count, s.Len())
	}
}

func TestTryLockSemantics(t *testing.T) {
	s := NewEdgeSet(16)
	e := edge(1, 2)
	if s.TryLock(e, 0) {
		t.Fatal("locked an absent edge")
	}
	s.InsertUnique(e)
	if !s.TryLock(e, 0) {
		t.Fatal("failed to lock unlocked edge")
	}
	if s.TryLock(e, 1) {
		t.Fatal("double lock")
	}
	if !s.Contains(e) {
		t.Fatal("locked edge invisible to Contains")
	}
	s.Unlock(e, 0)
	if !s.TryLock(e, 1) {
		t.Fatal("failed to relock after unlock")
	}
	s.EraseLocked(e, 1)
	if s.Contains(e) {
		t.Fatal("erased edge still present")
	}
}

func TestTryInsertLock(t *testing.T) {
	s := NewEdgeSet(16)
	e := edge(7, 9)
	if !s.TryInsertLock(e, 3) {
		t.Fatal("insert-lock of fresh edge failed")
	}
	if s.TryInsertLock(e, 4) {
		t.Fatal("insert-lock of existing edge succeeded")
	}
	if s.TryLock(e, 4) {
		t.Fatal("insert-locked edge lockable by another owner")
	}
	s.Unlock(e, 3)
	if !s.TryLock(e, 4) {
		t.Fatal("unlock after insert-lock broken")
	}
}

func TestConcurrentLockMutualExclusion(t *testing.T) {
	// Many goroutines fight over a handful of edges; at most one may
	// hold each lock at a time, checked with an owner shadow array.
	const nEdges = 8
	const workers = 8
	const iters = 5000
	s := NewEdgeSet(64)
	for i := uint32(0); i < nEdges; i++ {
		s.InsertUnique(edge(i, i+100))
	}
	var holders [nEdges]atomic.Int32
	var violations atomic.Int32
	Run(workers, func(w int) {
		state := uint64(w)*2654435761 + 1
		for it := 0; it < iters; it++ {
			state = state*6364136223846793005 + 1442695040888963407
			i := uint32(state>>33) % nEdges
			e := edge(i, i+100)
			if s.TryLock(e, uint8(w)) {
				if !holders[i].CompareAndSwap(0, int32(w+1)) {
					violations.Add(1)
				}
				if !holders[i].CompareAndSwap(int32(w+1), 0) {
					violations.Add(1)
				}
				s.Unlock(e, uint8(w))
			}
		}
	})
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d mutual-exclusion violations", v)
	}
}

func TestConcurrentTryInsertLockUniqueWinner(t *testing.T) {
	// Racing inserters of the same edge: exactly one must win per round.
	const workers = 8
	const rounds = 2000
	s := NewEdgeSet(1 << 12)
	for r := 0; r < rounds; r++ {
		e := edge(uint32(r), uint32(r)+1<<20)
		var winners atomic.Int32
		winner := atomic.Int32{}
		winner.Store(-1)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				if s.TryInsertLock(e, uint8(w)) {
					winners.Add(1)
					winner.Store(int32(w))
				}
			}(w)
		}
		wg.Wait()
		if got := winners.Load(); got != 1 {
			t.Fatalf("round %d: %d winners, want exactly 1", r, got)
		}
		s.EraseLocked(e, uint8(winner.Load()))
		if s.NeedsCompact() {
			s.Compact(nil, 2)
		}
	}
}

func TestCompact(t *testing.T) {
	s := NewEdgeSet(256)
	var live []graph.Edge
	for i := uint32(0); i < 200; i++ {
		e := edge(i, i+1000)
		s.InsertUnique(e)
		if i%2 == 0 {
			s.EraseUnique(e)
		} else {
			live = append(live, e)
		}
	}
	if s.Tombstones() == 0 {
		t.Fatal("expected tombstones before compaction")
	}
	s.Compact(live, 4)
	if s.Tombstones() != 0 || s.Len() != len(live) {
		t.Fatalf("after compact: %d tombstones, %d live", s.Tombstones(), s.Len())
	}
	for _, e := range live {
		if !s.Contains(e) {
			t.Fatalf("compact lost %v", e)
		}
	}
}

func TestNeedsCompactThreshold(t *testing.T) {
	s := NewEdgeSet(16)
	if s.NeedsCompact() {
		t.Fatal("fresh set wants compaction")
	}
	// Insert/erase cycles accumulate tombstones (modulo incidental
	// reuse); the threshold must trigger well before the table fills.
	for i := uint32(0); i < uint32(s.Buckets()); i++ {
		e := edge(i, i+1<<20)
		s.InsertUnique(e)
		s.EraseUnique(e)
		if s.NeedsCompact() {
			return
		}
	}
	t.Fatalf("threshold never triggered: tombstones=%d of %d buckets",
		s.Tombstones(), s.Buckets())
}
