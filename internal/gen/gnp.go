// Package gen generates the input graphs of the paper's evaluation:
// G(n,p) Gilbert graphs (SynGnp), power-law degree sequences realized by
// Havel-Hakimi (SynPld), regular and grid graphs for controlled
// experiments, and a synthetic corpus standing in for the network
// repository dataset (NetRep); see DESIGN.md for the substitution
// rationale.
package gen

import (
	"math"

	"gesmc/internal/graph"
	"gesmc/internal/rng"
)

// GNP samples a G(n, p) graph — every possible edge present
// independently with probability p — in expected O(n + m) time using
// geometric gap skipping over the lexicographic edge enumeration.
func GNP(n int, p float64, src rng.Source) *graph.Graph {
	if n < 0 || n > graph.MaxNodes {
		panic("gen: GNP node count out of range")
	}
	if p < 0 || p > 1 {
		panic("gen: GNP probability out of range")
	}
	total := int64(n) * int64(n-1) / 2
	if p == 0 || total == 0 {
		return graph.NewUnchecked(n, nil)
	}
	var edges []graph.Edge
	if p == 1 {
		edges = make([]graph.Edge, 0, total)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				edges = append(edges, graph.MakeEdge(graph.Node(u), graph.Node(v)))
			}
		}
		return graph.NewUnchecked(n, edges)
	}

	edges = make([]graph.Edge, 0, int(float64(total)*p*1.1)+16)
	logq := math.Log1p(-p)
	pos := int64(-1)
	for {
		u := rng.Float64(src)
		skip := int64(math.Log1p(-u)/logq) + 1
		if skip <= 0 { // extreme p close to 1: guard against overflow
			skip = 1
		}
		pos += skip
		if pos >= total {
			break
		}
		u32, v32 := pairFromIndex(pos, n)
		edges = append(edges, graph.MakeEdge(u32, v32))
	}
	return graph.NewUnchecked(n, edges)
}

// pairFromIndex maps a lexicographic index in [0, C(n,2)) to the pair
// (u, v) with u < v. Row u starts at offset u*n - u*(u+1)/2 - u... we
// solve the quadratic directly and fix up rounding.
func pairFromIndex(idx int64, n int) (graph.Node, graph.Node) {
	nf := float64(n)
	// Solve idx >= rowStart(u) where rowStart(u) = u*(2n-u-1)/2.
	u := int64((2*nf - 1 - math.Sqrt((2*nf-1)*(2*nf-1)-8*float64(idx))) / 2)
	if u < 0 {
		u = 0
	}
	rowStart := func(u int64) int64 { return u * (2*int64(n) - u - 1) / 2 }
	for u > 0 && rowStart(u) > idx {
		u--
	}
	for rowStart(u+1) <= idx {
		u++
	}
	v := u + 1 + (idx - rowStart(u))
	return graph.Node(u), graph.Node(v)
}

// GNPWithEdges returns a G(n,p)-like graph with approximately m edges by
// setting p = m / C(n,2). It is the workload of Figure 7 (fixed edge
// budget, varying average degree).
func GNPWithEdges(n int, m int, src rng.Source) *graph.Graph {
	total := float64(n) * float64(n-1) / 2
	if total <= 0 {
		return graph.NewUnchecked(n, nil)
	}
	p := float64(m) / total
	if p > 1 {
		p = 1
	}
	return GNP(n, p, src)
}
