package gen

import (
	"testing"

	"gesmc/internal/rng"
)

func BenchmarkGNP(b *testing.B) {
	src := rng.NewMT19937(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := GNP(1<<16, 8.0/float64(1<<16), src)
		if g.M() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkPowerLawSequence(b *testing.B) {
	src := rng.NewMT19937(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = SynPldSequence(1<<16, 2.2, src)
	}
}

func BenchmarkHavelHakimi(b *testing.B) {
	src := rng.NewMT19937(3)
	seq := SynPldSequence(1<<14, 2.3, src)
	if !ErdosGallai(seq) {
		b.Skip("sampled sequence not graphical")
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := HavelHakimi(seq); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkErdosGallai(b *testing.B) {
	src := rng.NewMT19937(4)
	seq := SynPldSequence(1<<16, 2.2, src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ErdosGallai(seq)
	}
}
