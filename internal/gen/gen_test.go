package gen

import (
	"math"
	"testing"

	"gesmc/internal/graph"
	"gesmc/internal/rng"
)

func TestGNPEdgeCount(t *testing.T) {
	src := rng.NewMT19937(1)
	const n = 500
	const p = 0.05
	g := GNP(n, p, src)
	if err := g.CheckSimple(); err != nil {
		t.Fatal(err)
	}
	want := p * float64(n) * float64(n-1) / 2
	sd := math.Sqrt(want * (1 - p))
	if d := math.Abs(float64(g.M()) - want); d > 5*sd {
		t.Fatalf("G(n,p) edge count %d too far from %.0f (sd %.1f)", g.M(), want, sd)
	}
}

func TestGNPExtremes(t *testing.T) {
	src := rng.NewMT19937(2)
	if g := GNP(100, 0, src); g.M() != 0 {
		t.Fatalf("p=0 produced %d edges", g.M())
	}
	g := GNP(30, 1, src)
	if g.M() != 30*29/2 {
		t.Fatalf("p=1 produced %d edges, want %d", g.M(), 30*29/2)
	}
	if err := g.CheckSimple(); err != nil {
		t.Fatal(err)
	}
	if g := GNP(0, 0.5, src); g.N() != 0 || g.M() != 0 {
		t.Fatal("empty node set mishandled")
	}
	if g := GNP(1, 0.5, src); g.M() != 0 {
		t.Fatal("single node produced edges")
	}
}

func TestPairFromIndexBijective(t *testing.T) {
	const n = 37
	seen := map[graph.Edge]bool{}
	total := int64(n * (n - 1) / 2)
	for idx := int64(0); idx < total; idx++ {
		u, v := pairFromIndex(idx, n)
		if u >= v || int(v) >= n {
			t.Fatalf("index %d -> invalid pair (%d, %d)", idx, u, v)
		}
		e := graph.MakeEdge(u, v)
		if seen[e] {
			t.Fatalf("index %d -> duplicate pair (%d, %d)", idx, u, v)
		}
		seen[e] = true
	}
	if int64(len(seen)) != total {
		t.Fatalf("covered %d pairs, want %d", len(seen), total)
	}
}

func TestGNPUniformEdgeMarginals(t *testing.T) {
	// Each possible edge should appear with probability p.
	src := rng.NewMT19937(77)
	const n = 12
	const p = 0.3
	const runs = 20000
	counts := map[graph.Edge]int{}
	for r := 0; r < runs; r++ {
		for _, e := range GNP(n, p, src).Edges() {
			counts[e]++
		}
	}
	want := float64(runs) * p
	sd := math.Sqrt(float64(runs) * p * (1 - p))
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			c := float64(counts[graph.MakeEdge(graph.Node(u), graph.Node(v))])
			if math.Abs(c-want) > 5*sd {
				t.Fatalf("edge (%d,%d) appeared %v times, want %.0f±%.0f", u, v, c, want, sd)
			}
		}
	}
}

func TestErdosGallai(t *testing.T) {
	cases := []struct {
		deg  []int
		want bool
	}{
		{[]int{3, 3, 3, 3}, true},       // K4
		{[]int{1, 1}, true},             // single edge
		{[]int{1, 1, 1}, false},         // odd sum
		{[]int{3, 1, 1, 1}, true},       // star
		{[]int{4, 1, 1, 1, 1}, true},    // star K1,4
		{[]int{5, 1, 1, 1, 1}, false},   // degree exceeds n-1
		{[]int{2, 2, 2}, true},          // triangle
		{[]int{3, 3, 1, 1}, false},      // classic non-graphical
		{[]int{0, 0, 0}, true},          // empty graph
		{[]int{}, true},                 // empty sequence
		{[]int{2, 2, 2, 2, 2, 2}, true}, // cycle
		{[]int{6, 5, 4, 3, 2, 1}, false},
		{[]int{5, 5, 4, 3, 2, 1}, false}, // odd sum
		{[]int{5, 5, 5, 5, 5, 5}, true},  // K6
	}
	for _, c := range cases {
		if got := ErdosGallai(c.deg); got != c.want {
			t.Errorf("ErdosGallai(%v) = %v, want %v", c.deg, got, c.want)
		}
	}
}

func TestHavelHakimiRealizesDegrees(t *testing.T) {
	cases := [][]int{
		{3, 3, 3, 3},
		{1, 1},
		{2, 2, 2},
		{3, 1, 1, 1},
		{4, 4, 4, 4, 4},          // K5
		{2, 2, 2, 2, 2, 2, 2, 2}, // cycle
		{5, 4, 3, 2, 2, 2, 1, 1},
		{0, 0, 2, 2, 2},
	}
	for _, deg := range cases {
		g, err := HavelHakimi(deg)
		if err != nil {
			t.Fatalf("HavelHakimi(%v): %v", deg, err)
		}
		if err := g.CheckSimple(); err != nil {
			t.Fatalf("HavelHakimi(%v) not simple: %v", deg, err)
		}
		got := g.Degrees()
		for v, d := range deg {
			if got[v] != d {
				t.Fatalf("HavelHakimi(%v): node %d has degree %d, want %d", deg, v, got[v], d)
			}
		}
	}
}

func TestHavelHakimiRejectsNonGraphical(t *testing.T) {
	for _, deg := range [][]int{
		{1, 1, 1},
		{3, 3, 1, 1},
		{5, 1, 1, 1, 1},
		{-1, 1},
	} {
		if _, err := HavelHakimi(deg); err == nil {
			t.Fatalf("HavelHakimi(%v) accepted non-graphical sequence", deg)
		}
	}
}

func TestHavelHakimiAgreesWithErdosGallai(t *testing.T) {
	// Random sequences: HH succeeds iff EG says graphical.
	src := rng.NewMT19937(4)
	for trial := 0; trial < 500; trial++ {
		n := 2 + rng.IntN(src, 12)
		deg := make([]int, n)
		for i := range deg {
			deg[i] = rng.IntN(src, n)
		}
		eg := ErdosGallai(deg)
		_, err := HavelHakimi(deg)
		if eg != (err == nil) {
			t.Fatalf("disagreement on %v: EG=%v, HH err=%v", deg, eg, err)
		}
	}
}

func TestPowerLawSequenceProperties(t *testing.T) {
	src := rng.NewMT19937(5)
	deg := PowerLawSequence(5000, 1, 70, 2.1, src)
	sum := 0
	for _, d := range deg {
		if d < 1 || d > 70 {
			t.Fatalf("degree %d outside [1, 70]", d)
		}
		sum += d
	}
	if sum%2 != 0 {
		t.Fatal("degree sum not even")
	}
	// Power law: degree-1 nodes must dominate degree-2 nodes roughly by
	// factor 2^2.1 ≈ 4.3.
	c1, c2 := 0, 0
	for _, d := range deg {
		if d == 1 {
			c1++
		} else if d == 2 {
			c2++
		}
	}
	ratio := float64(c1) / float64(c2)
	if ratio < 3 || ratio > 6 {
		t.Fatalf("degree-1/degree-2 ratio %.2f outside power-law band", ratio)
	}
}

func TestSynPldRealizable(t *testing.T) {
	src := rng.NewMT19937(6)
	for _, gamma := range []float64{2.01, 2.1, 2.5, 3.0} {
		g, err := SynPldGraph(1<<10, gamma, src)
		if err != nil {
			t.Fatalf("SynPld gamma=%v not realizable: %v", gamma, err)
		}
		if err := g.CheckSimple(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPaperMaxDegree(t *testing.T) {
	if d := PaperMaxDegree(1<<10, 3.0); d != 32-0 {
		// n^(1/2) = 32
		if d != 32 {
			t.Fatalf("PaperMaxDegree(1024, 3) = %d, want 32", d)
		}
	}
	if d := PaperMaxDegree(100, 2.0); d != 99 {
		t.Fatalf("PaperMaxDegree(100, 2) = %d, want 99 (clamped)", d)
	}
}

func TestRegular(t *testing.T) {
	for _, c := range []struct{ n, d int }{{16, 4}, {16, 5}, {100, 3}, {64, 8}} {
		g, err := Regular(c.n, c.d)
		if err != nil {
			t.Fatalf("Regular(%d, %d): %v", c.n, c.d, err)
		}
		if err := g.CheckSimple(); err != nil {
			t.Fatal(err)
		}
		for v, d := range g.Degrees() {
			if d != c.d {
				t.Fatalf("Regular(%d,%d): node %d has degree %d", c.n, c.d, v, d)
			}
		}
	}
	if _, err := Regular(5, 3); err == nil {
		t.Fatal("odd n*d accepted")
	}
}

func TestGrid2D(t *testing.T) {
	g := Grid2D(4, 5)
	if g.N() != 20 {
		t.Fatalf("grid nodes = %d", g.N())
	}
	if g.M() != 4*4+3*5 { // horizontal + vertical edges
		t.Fatalf("grid edges = %d, want %d", g.M(), 4*4+3*5)
	}
	if err := g.CheckSimple(); err != nil {
		t.Fatal(err)
	}
	comps, _ := graph.ConnectedComponents(g)
	if comps != 1 {
		t.Fatalf("grid has %d components", comps)
	}
}

func TestTable4Corpus(t *testing.T) {
	corpus, err := Table4Corpus(0.25, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) != len(table4Specs) {
		t.Fatalf("corpus has %d graphs, want %d", len(corpus), len(table4Specs))
	}
	for _, c := range corpus {
		if err := c.G.CheckSimple(); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if c.G.M() == 0 {
			t.Fatalf("%s is empty", c.Name)
		}
	}
}

func TestSweepCorpus(t *testing.T) {
	corpus, err := SweepCorpus(100, 1<<20, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) < 10 {
		t.Fatalf("sweep corpus too small: %d", len(corpus))
	}
	for _, c := range corpus {
		if err := c.G.CheckSimple(); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if c.G.M() < 100 {
			t.Fatalf("%s below requested minimum", c.Name)
		}
	}
}
