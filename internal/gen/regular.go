package gen

import (
	"fmt"

	"gesmc/internal/graph"
)

// Circulant returns the circulant graph on n nodes where every node v is
// adjacent to v±s (mod n) for each offset s in offsets. With distinct
// offsets 1 <= s <= n/2 this yields a regular graph; it is the
// deterministic d-regular workload of the round-count experiments
// (Corollary 2: regular graphs need O(1) rounds).
func Circulant(n int, offsets []int) (*graph.Graph, error) {
	if n < 2 {
		return graph.NewUnchecked(n, nil), nil
	}
	seen := map[graph.Edge]struct{}{}
	var edges []graph.Edge
	for _, s := range offsets {
		if s < 1 || s > n/2 {
			return nil, fmt.Errorf("gen: circulant offset %d out of range [1, %d]", s, n/2)
		}
		for v := 0; v < n; v++ {
			w := (v + s) % n
			if v == w {
				continue
			}
			e := graph.MakeEdge(graph.Node(v), graph.Node(w))
			if _, dup := seen[e]; dup {
				continue
			}
			seen[e] = struct{}{}
			edges = append(edges, e)
		}
	}
	return graph.NewUnchecked(n, edges), nil
}

// Regular returns a d-regular graph on n nodes built from the circulant
// construction (offsets 1..d/2, plus the antipodal matching when d is
// odd, requiring even n).
func Regular(n, d int) (*graph.Graph, error) {
	if d < 0 || d >= n {
		return nil, fmt.Errorf("gen: degree %d impossible on %d nodes", d, n)
	}
	if (n*d)%2 != 0 {
		return nil, fmt.Errorf("gen: no %d-regular graph on %d nodes (odd product)", d, n)
	}
	offsets := make([]int, 0, d/2+1)
	for s := 1; s <= d/2; s++ {
		offsets = append(offsets, s)
	}
	if d%2 == 1 {
		offsets = append(offsets, n/2) // antipodal perfect matching
	}
	g, err := Circulant(n, offsets)
	if err != nil {
		return nil, err
	}
	// The construction can silently merge offsets on tiny n; verify.
	for v, deg := range g.Degrees() {
		if deg != d {
			return nil, fmt.Errorf("gen: circulant degree %d at node %d, want %d (n too small for d)", deg, v, d)
		}
	}
	return g, nil
}

// Grid2D returns the rows x cols grid graph (each node adjacent to its
// horizontal and vertical neighbors) — the road-network-like workload of
// the corpus (low, near-uniform degree, huge diameter).
func Grid2D(rows, cols int) *graph.Graph {
	n := rows * cols
	edges := make([]graph.Edge, 0, 2*n)
	id := func(r, c int) graph.Node { return graph.Node(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, graph.MakeEdge(id(r, c), id(r, c+1)))
			}
			if r+1 < rows {
				edges = append(edges, graph.MakeEdge(id(r, c), id(r+1, c)))
			}
		}
	}
	return graph.NewUnchecked(n, edges)
}
