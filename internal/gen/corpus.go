package gen

import (
	"fmt"
	"math"

	"gesmc/internal/graph"
	"gesmc/internal/rng"
)

// Named is a corpus instance: a graph plus its provenance.
type Named struct {
	Name  string
	Class string // "social", "web", "bio", "road", "collab", "regular", "gnp"
	G     *graph.Graph
}

// powerLawWithMean samples a power-law sequence over [a..Delta] choosing
// the minimum degree a so the mean degree approximately reaches target.
func powerLawWithMean(n int, gamma float64, target float64, src rng.Source) []int {
	delta := PaperMaxDegree(n, gamma)
	// Heavily downscaled corpora can request means the node count cannot
	// support; cap at a quarter of n so the sequence stays graphical.
	if cap := float64(n) / 4; target > cap {
		target = cap
	}
	if cap := float64(delta) * 0.75; target > cap {
		target = cap
	}
	mean := func(a int) float64 {
		var num, den float64
		for k := a; k <= delta; k++ {
			w := math.Pow(float64(k), -gamma)
			num += float64(k) * w
			den += w
		}
		return num / den
	}
	a := 1
	for a < delta && mean(a) < target {
		a++
	}
	return PowerLawSequence(n, a, delta, gamma, src)
}

// corpusSpec describes one synthetic stand-in for a NetRep graph family.
type corpusSpec struct {
	name   string
	class  string
	n      int     // nodes at scale 1
	avgDeg float64 // target average degree
	gamma  float64 // power-law exponent (0 = not power law)
}

// table4Specs mirrors the rows of the paper's Table 4 (Figure 4): same
// relative ordering of sizes, average degrees, and skews, shrunk to run
// on one machine. Scale multiplies node counts.
var table4Specs = []corpusSpec{
	{"soc-twitter-like", "social", 1 << 15, 24, 2.0},
	{"bn-human-like", "bio", 1 << 13, 48, 2.4},
	{"tech-p2p-like", "social", 1 << 14, 24, 2.05},
	{"socfb-like", "social", 1 << 15, 8, 2.3},
	{"ca-hollywood-like", "collab", 1 << 12, 32, 2.2},
	{"inf-road-like", "road", 1 << 15, 0, 0},
	{"bio-gene-like", "bio", 1 << 10, 64, 2.6},
	{"web-wikipedia-like", "web", 1 << 13, 5, 2.2},
	{"cit-hepth-like", "collab", 1 << 9, 48, 2.5},
	{"email-enron-like", "social", 1 << 10, 10, 2.3},
	{"rec-amazon-like", "road", 1 << 10, 0, 0},
}

// buildSpec materializes one spec at the given node scale factor.
func buildSpec(s corpusSpec, scale float64, src rng.Source) (Named, error) {
	n := int(float64(s.n) * scale)
	if n < 16 {
		n = 16
	}
	var g *graph.Graph
	var err error
	switch {
	case s.class == "road":
		side := int(math.Sqrt(float64(n)))
		g = Grid2D(side, side)
	case s.gamma > 0:
		seq := powerLawWithMean(n, s.gamma, s.avgDeg, src)
		g, err = GraphFromSequence(seq)
		if err != nil {
			// Skewed sequences occasionally overshoot feasibility;
			// retry with a fresh sample, then fall back to halving
			// the largest degrees.
			for try := 0; try < 8 && err != nil; try++ {
				seq = powerLawWithMean(n, s.gamma, s.avgDeg, src)
				g, err = GraphFromSequence(seq)
			}
			if err != nil {
				return Named{}, fmt.Errorf("gen: spec %s: %w", s.name, err)
			}
		}
	default:
		g = GNP(n, s.avgDeg/float64(n-1), src)
	}
	return Named{Name: s.name, Class: s.class, G: g}, nil
}

// Table4Corpus returns the synthetic sample mirroring Table 4, largest
// first. Scale stretches node counts (1.0 = default benchmark size).
func Table4Corpus(scale float64, seed uint64) ([]Named, error) {
	src := rng.NewMT19937(seed)
	out := make([]Named, 0, len(table4Specs))
	for _, s := range table4Specs {
		g, err := buildSpec(s, scale, src)
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	return out, nil
}

// SweepCorpus returns a larger family of graphs spanning edge counts and
// densities, standing in for the NetRep sweep of Figures 3 and 5. It
// interleaves power-law graphs of several exponents, G(n,p) at several
// densities, grids, and regular graphs.
func SweepCorpus(minEdges, maxEdges int, seed uint64) ([]Named, error) {
	src := rng.NewMT19937(seed)
	var out []Named
	add := func(name, class string, g *graph.Graph) {
		if g.M() >= minEdges && g.M() <= maxEdges {
			out = append(out, Named{Name: name, Class: class, G: g})
		}
	}
	for _, n := range []int{1 << 9, 1 << 11, 1 << 13, 1 << 15} {
		for _, gamma := range []float64{2.05, 2.3, 2.8} {
			g, err := SynPldGraph(n, gamma, src)
			if err != nil {
				return nil, fmt.Errorf("gen: sweep pld n=%d gamma=%.2f: %w", n, gamma, err)
			}
			add(fmt.Sprintf("pld-n%d-g%.2f", n, gamma), "social", g)
		}
		for _, avg := range []float64{4, 16, 64} {
			p := avg / float64(n-1)
			if p > 1 {
				continue
			}
			g := GNP(n, p, src)
			add(fmt.Sprintf("gnp-n%d-d%.0f", n, avg), "gnp", g)
		}
		side := int(math.Sqrt(float64(n)))
		add(fmt.Sprintf("grid-%dx%d", side, side), "road", Grid2D(side, side))
		if reg, err := Regular(n, 8); err == nil {
			add(fmt.Sprintf("reg8-n%d", n), "regular", reg)
		}
	}
	// A couple of very dense small graphs (the "moderately dense"
	// outliers of Figure 3).
	for _, n := range []int{64, 128, 256} {
		g := GNP(n, 0.5, src)
		add(fmt.Sprintf("dense-n%d", n), "gnp", g)
	}
	return out, nil
}
