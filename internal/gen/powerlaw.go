package gen

import (
	"fmt"

	"gesmc/internal/graph"
	"math"

	"gesmc/internal/rng"
)

// PowerLawSequence samples n degrees from the integer power-law
// distribution Pld([a..b], gamma): P[X = k] proportional to k^-gamma for
// a <= k <= b (§2.1 of the paper). The sum is made even by incrementing
// one node's degree if necessary, so the sequence always has a chance of
// being graphical.
func PowerLawSequence(n int, a, b int, gamma float64, src rng.Source) []int {
	if n < 0 || a < 1 || b < a {
		panic("gen: invalid power-law parameters")
	}
	weights := make([]float64, b-a+1)
	for k := a; k <= b; k++ {
		weights[k-a] = math.Pow(float64(k), -gamma)
	}
	alias := rng.NewAlias(weights)
	deg := make([]int, n)
	sum := 0
	for i := range deg {
		deg[i] = a + alias.Sample(src)
		sum += deg[i]
	}
	if sum%2 == 1 {
		// Bump a node that can still grow.
		for i := range deg {
			if deg[i] < b {
				deg[i]++
				break
			}
		}
	}
	return deg
}

// PaperMaxDegree returns the maximum degree Delta = n^{1/(gamma-1)} used
// by the paper's SynPld dataset (matching the analytic bound of Gao and
// Wormald).
func PaperMaxDegree(n int, gamma float64) int {
	d := int(math.Pow(float64(n), 1/(gamma-1)))
	if d < 1 {
		d = 1
	}
	if d > n-1 {
		d = n - 1
	}
	return d
}

// SynPldSequence samples a SynPld degree sequence for node count n and
// exponent gamma with the paper's degree range [1, n^{1/(gamma-1)}].
func SynPldSequence(n int, gamma float64, src rng.Source) []int {
	return PowerLawSequence(n, 1, PaperMaxDegree(n, gamma), gamma, src)
}

// SynPldGraph samples SynPld sequences until one is graphical (highly
// skewed exponents occasionally produce non-graphical samples on small n)
// and realizes it with Havel-Hakimi, mirroring the paper's SynPld
// pipeline. It gives up after a fixed number of attempts.
func SynPldGraph(n int, gamma float64, src rng.Source) (*graph.Graph, error) {
	var err error
	for try := 0; try < 64; try++ {
		seq := SynPldSequence(n, gamma, src)
		var g *graph.Graph
		if g, err = GraphFromSequence(seq); err == nil {
			return g, nil
		}
	}
	return nil, fmt.Errorf("gen: SynPld n=%d gamma=%v: %w", n, gamma, err)
}
