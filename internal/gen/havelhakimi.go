package gen

import (
	"errors"
	"fmt"
	"sort"

	"gesmc/internal/graph"
)

// ErrNotGraphical is returned when no simple graph realizes the degree
// sequence.
var ErrNotGraphical = errors.New("gen: degree sequence is not graphical")

// ErdosGallai reports whether the degree sequence is graphical, using the
// Erdős–Gallai characterization: the sum must be even and for every k,
// sum of the k largest degrees <= k(k-1) + sum_{i>k} min(d_i, k).
func ErdosGallai(degrees []int) bool {
	n := len(degrees)
	d := make([]int, n)
	copy(d, degrees)
	sort.Sort(sort.Reverse(sort.IntSlice(d)))

	var sum int64
	for _, v := range d {
		if v < 0 || v >= n {
			return false // degrees must lie in [0, n-1]
		}
		sum += int64(v)
	}
	if sum%2 != 0 {
		return false
	}
	// Prefix sums and the standard O(n) evaluation with a pointer for
	// the min(d_i, k) split.
	prefix := make([]int64, n+1)
	for i, v := range d {
		prefix[i+1] = prefix[i] + int64(v)
	}
	for k := 1; k <= n; k++ {
		lhs := prefix[k]
		rhs := int64(k) * int64(k-1)
		// Split the tail at the first index i >= k with d[i] <= k.
		split := sort.Search(n-k, func(i int) bool { return d[k+i] <= k }) + k
		rhs += int64(split-k) * int64(k)
		rhs += prefix[n] - prefix[split]
		if lhs > rhs {
			return false
		}
	}
	return true
}

// hhNode is a heap element: a node with its residual degree.
type hhNode struct {
	deg  int
	node graph.Node
}

type hhHeap []hhNode

func (h hhHeap) Len() int { return len(h) }
func (h hhHeap) Less(i, j int) bool {
	if h[i].deg != h[j].deg {
		return h[i].deg > h[j].deg // max-heap by residual degree
	}
	return h[i].node < h[j].node
}
func (h hhHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *hhHeap) push(x hhNode) {
	*h = append(*h, x)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.Less(i, parent) {
			break
		}
		h.Swap(i, parent)
		i = parent
	}
}

func (h *hhHeap) pop() hhNode {
	top := (*h)[0]
	last := len(*h) - 1
	(*h)[0] = (*h)[last]
	*h = (*h)[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(*h) && h.Less(l, smallest) {
			smallest = l
		}
		if r < len(*h) && h.Less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.Swap(i, smallest)
		i = smallest
	}
	return top
}

// HavelHakimi materializes a simple graph with exactly the prescribed
// degrees (the deterministic generator of Havel 1955 / Hakimi 1962, used
// by the paper to realize SynPld sequences). It returns ErrNotGraphical
// if the sequence cannot be realized.
func HavelHakimi(degrees []int) (*graph.Graph, error) {
	n := len(degrees)
	if n > graph.MaxNodes {
		return nil, fmt.Errorf("gen: %d nodes exceed the 2^28 limit", n)
	}
	var m int64
	h := make(hhHeap, 0, n)
	for v, d := range degrees {
		if d < 0 || d >= n {
			return nil, fmt.Errorf("%w: degree %d at node %d out of range", ErrNotGraphical, d, v)
		}
		m += int64(d)
		if d > 0 {
			h.push(hhNode{deg: d, node: graph.Node(v)})
		}
	}
	if m%2 != 0 {
		return nil, fmt.Errorf("%w: odd degree sum", ErrNotGraphical)
	}
	m /= 2

	edges := make([]graph.Edge, 0, m)
	targets := make([]hhNode, 0, 64)
	for len(h) > 0 {
		v := h.pop()
		if v.deg > len(h) {
			return nil, fmt.Errorf("%w: node %d needs %d neighbors, %d available",
				ErrNotGraphical, v.node, v.deg, len(h))
		}
		targets = targets[:0]
		for i := 0; i < v.deg; i++ {
			targets = append(targets, h.pop())
		}
		for _, t := range targets {
			edges = append(edges, graph.MakeEdge(v.node, t.node))
			if t.deg > 1 {
				h.push(hhNode{deg: t.deg - 1, node: t.node})
			}
		}
	}
	return graph.NewUnchecked(n, edges), nil
}

// GraphFromSequence realizes a degree sequence, first validating it with
// Erdős–Gallai so callers get a fast, precise error for non-graphical
// input.
func GraphFromSequence(degrees []int) (*graph.Graph, error) {
	if !ErdosGallai(degrees) {
		return nil, ErrNotGraphical
	}
	return HavelHakimi(degrees)
}
