// Package hashset implements the sequential open-addressing edge set of
// §5.2 of the paper: linear probing over a power-of-two bucket array with
// a maximum load factor of 1/2, constant-time insert/erase/contains, and
// optional direct sampling of a uniformly random element by probing
// random buckets (the §5.3 trade-off).
//
// Deletions use backward-shift compaction instead of tombstones, so
// lookup cost never degrades no matter how many switches are performed.
package hashset

import (
	"math/bits"

	"gesmc/internal/graph"
	"gesmc/internal/rng"
)

const empty = ^uint64(0) // sentinel: not a canonical edge (u would exceed v)

// Set is an open-addressing hash set of edges. The zero value is not
// usable; create sets with New.
type Set struct {
	buckets []uint64
	mask    uint64
	size    int
	maxLoad float64
}

// New returns a set sized for capacity elements at the given maximum load
// factor (0 < maxLoad <= 0.9). The paper's configuration is maxLoad=0.5.
func New(capacity int, maxLoad float64) *Set {
	if maxLoad <= 0 || maxLoad > 0.9 {
		panic("hashset: max load factor out of range")
	}
	s := &Set{maxLoad: maxLoad}
	s.init(capacity)
	return s
}

// NewDefault returns a set with the paper's default load factor 1/2.
func NewDefault(capacity int) *Set { return New(capacity, 0.5) }

func (s *Set) init(capacity int) {
	want := int(float64(capacity)/s.maxLoad) + 1
	nb := 1 << uint(bits.Len(uint(want)))
	if nb < 16 {
		nb = 16
	}
	s.buckets = make([]uint64, nb)
	for i := range s.buckets {
		s.buckets[i] = empty
	}
	s.mask = uint64(nb - 1)
	s.size = 0
}

// FromEdges builds a set containing the edges of the slice.
func FromEdges(edges []graph.Edge, maxLoad float64) *Set {
	s := New(len(edges), maxLoad)
	for _, e := range edges {
		s.Insert(e)
	}
	return s
}

// Len returns the number of stored edges.
func (s *Set) Len() int { return s.size }

// Buckets returns the number of buckets (for load-factor diagnostics).
func (s *Set) Buckets() int { return len(s.buckets) }

func (s *Set) slot(e graph.Edge) uint64 {
	return rng.Mix64(uint64(e)) & s.mask
}

// Contains reports whether e is in the set.
func (s *Set) Contains(e graph.Edge) bool {
	i := s.slot(e)
	for {
		b := s.buckets[i]
		if b == uint64(e) {
			return true
		}
		if b == empty {
			return false
		}
		i = (i + 1) & s.mask
	}
}

// Insert adds e and reports whether it was absent. The set grows
// automatically when the load factor would be exceeded.
func (s *Set) Insert(e graph.Edge) bool {
	if float64(s.size+1) > s.maxLoad*float64(len(s.buckets)) {
		s.grow()
	}
	i := s.slot(e)
	for {
		b := s.buckets[i]
		if b == uint64(e) {
			return false
		}
		if b == empty {
			s.buckets[i] = uint64(e)
			s.size++
			return true
		}
		i = (i + 1) & s.mask
	}
}

// Erase removes e and reports whether it was present. Removal compacts
// the probe chain by backward shifting, leaving no tombstones.
func (s *Set) Erase(e graph.Edge) bool {
	i := s.slot(e)
	for {
		b := s.buckets[i]
		if b == empty {
			return false
		}
		if b == uint64(e) {
			break
		}
		i = (i + 1) & s.mask
	}
	// Backward-shift deletion: scan forward, moving back any element
	// whose ideal slot is outside the gap's cyclic range.
	j := i
	for {
		j = (j + 1) & s.mask
		b := s.buckets[j]
		if b == empty {
			break
		}
		home := rng.Mix64(b) & s.mask
		// Move b back iff its home position does not lie in the
		// cyclic interval (i, j].
		if cyclicBetween(home, i, j) {
			continue
		}
		s.buckets[i] = b
		i = j
	}
	s.buckets[i] = empty
	s.size--
	return true
}

// cyclicBetween reports whether home lies in the half-open cyclic
// interval (gap, pos] — if so, the element at pos may not be moved into
// the gap.
func cyclicBetween(home, gap, pos uint64) bool {
	if gap < pos {
		return gap < home && home <= pos
	}
	return gap < home || home <= pos
}

func (s *Set) grow() {
	old := s.buckets
	s.init(2 * len(s.buckets))
	for _, b := range old {
		if b == empty {
			continue
		}
		i := rng.Mix64(b) & s.mask
		for s.buckets[i] != empty {
			i = (i + 1) & s.mask
		}
		s.buckets[i] = b
		s.size++
	}
}

// SampleBucket returns a uniformly random stored edge by repeatedly
// probing random buckets until a non-empty one is hit (the second edge
// sampling option of §5.3: memory-free but geometric in the load factor).
// It panics on an empty set.
func (s *Set) SampleBucket(src rng.Source) graph.Edge {
	if s.size == 0 {
		panic("hashset: sampling from empty set")
	}
	for {
		i := src.Uint64() & s.mask
		if b := s.buckets[i]; b != empty {
			return graph.Edge(b)
		}
	}
}

// touchSink defeats dead-load elimination in Touch.
var touchSink uint64

// Touch reads the home bucket of e (and its successor), pulling the probe
// chain's first cache lines into the cache ahead of a later operation.
// It is the pure-Go analogue of the prefetch instructions of §5.4: a
// hint only, with no effect on semantics.
func (s *Set) Touch(e graph.Edge) {
	i := s.slot(e)
	touchSink += s.buckets[i] + s.buckets[(i+1)&s.mask]
}

// ForEach calls fn for every stored edge in unspecified order.
func (s *Set) ForEach(fn func(graph.Edge)) {
	for _, b := range s.buckets {
		if b != empty {
			fn(graph.Edge(b))
		}
	}
}
