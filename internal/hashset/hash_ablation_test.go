package hashset

import (
	"hash/crc32"
	"testing"

	"gesmc/internal/rng"
)

// The paper hashes edges with the x64 crc32 instruction (§5.2); our
// implementation substitutes the SplitMix64 finalizer (DESIGN.md). These
// tests quantify the substitution: both hashes must spread canonical
// edges uniformly over power-of-two bucket ranges, and the benchmark
// compares their cost (stdlib crc32/Castagnoli is hardware-accelerated
// on this ISA, like the paper's instruction).

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func crcHash(key uint64) uint64 {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(key >> (8 * i))
	}
	return uint64(crc32.Checksum(b[:], castagnoli))
}

// bucketChiSquare hashes structured edge keys (the adversarial case:
// sequential node ids) into nBuckets and returns the chi-square of the
// bucket occupancy.
func bucketChiSquare(hash func(uint64) uint64, nBuckets int) float64 {
	counts := make([]int, nBuckets)
	mask := uint64(nBuckets - 1)
	const samples = 1 << 16
	for i := 0; i < samples; i++ {
		u := uint32(i % 1024)
		v := uint32(i/1024) + 1024
		key := uint64(u)<<32 | uint64(v)
		counts[hash(key)&mask]++
	}
	expected := float64(samples) / float64(nBuckets)
	var x2 float64
	for _, c := range counts {
		d := float64(c) - expected
		x2 += d * d / expected
	}
	return x2
}

func TestHashQualityMix64(t *testing.T) {
	const buckets = 1 << 10
	// df = 1023; mean 1023, sd ~ 45; allow 6 sigma.
	if x2 := bucketChiSquare(rng.Mix64, buckets); x2 > 1023+6*45 {
		t.Fatalf("Mix64 bucket chi-square %.0f too large", x2)
	}
}

func TestHashQualityCRC32(t *testing.T) {
	const buckets = 1 << 10
	if x2 := bucketChiSquare(crcHash, buckets); x2 > 1023+6*45 {
		t.Fatalf("crc32 bucket chi-square %.0f too large", x2)
	}
}

func BenchmarkHashMix64(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += rng.Mix64(uint64(i) * 0x9E3779B97F4A7C15)
	}
	_ = sink
}

func BenchmarkHashCRC32(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += crcHash(uint64(i) * 0x9E3779B97F4A7C15)
	}
	_ = sink
}
