package hashset

import (
	"testing"

	"gesmc/internal/graph"
	"gesmc/internal/rng"
)

func edge(u, v uint32) graph.Edge { return graph.MakeEdge(u, v) }

func TestInsertContainsErase(t *testing.T) {
	s := NewDefault(4)
	e := edge(1, 2)
	if s.Contains(e) {
		t.Fatal("empty set contains edge")
	}
	if !s.Insert(e) {
		t.Fatal("first insert reported duplicate")
	}
	if s.Insert(e) {
		t.Fatal("duplicate insert reported fresh")
	}
	if !s.Contains(e) || s.Len() != 1 {
		t.Fatal("edge lost after insert")
	}
	if !s.Erase(e) {
		t.Fatal("erase of present edge failed")
	}
	if s.Erase(e) {
		t.Fatal("erase of absent edge succeeded")
	}
	if s.Contains(e) || s.Len() != 0 {
		t.Fatal("edge still present after erase")
	}
}

// TestModelEquivalence drives the set with a long random operation
// sequence and compares every answer against a map-based model.
func TestModelEquivalence(t *testing.T) {
	src := rng.NewMT19937(555)
	s := NewDefault(8) // deliberately small: forces growth
	model := map[graph.Edge]struct{}{}
	const universe = 64 // few distinct keys: plenty of collisions
	for op := 0; op < 200000; op++ {
		u := uint32(rng.IntN(src, universe))
		v := uint32(rng.IntN(src, universe))
		if u == v {
			v = (v + 1) % universe
		}
		e := edge(u, v)
		switch rng.IntN(src, 3) {
		case 0:
			_, inModel := model[e]
			if got := s.Insert(e); got == inModel {
				t.Fatalf("op %d: Insert(%v) = %v, model has=%v", op, e, got, inModel)
			}
			model[e] = struct{}{}
		case 1:
			_, inModel := model[e]
			if got := s.Erase(e); got != inModel {
				t.Fatalf("op %d: Erase(%v) = %v, model has=%v", op, e, got, inModel)
			}
			delete(model, e)
		case 2:
			_, inModel := model[e]
			if got := s.Contains(e); got != inModel {
				t.Fatalf("op %d: Contains(%v) = %v, model has=%v", op, e, got, inModel)
			}
		}
		if s.Len() != len(model) {
			t.Fatalf("op %d: Len=%d, model=%d", op, s.Len(), len(model))
		}
	}
}

func TestBackwardShiftChains(t *testing.T) {
	// Build a long collision chain, delete from its middle, and verify
	// every remaining element is still reachable.
	s := NewDefault(1024)
	edges := make([]graph.Edge, 0, 300)
	for i := uint32(0); i < 300; i++ {
		e := edge(i, i+1000)
		edges = append(edges, e)
		s.Insert(e)
	}
	for i := 0; i < len(edges); i += 3 {
		if !s.Erase(edges[i]) {
			t.Fatalf("erase %v failed", edges[i])
		}
	}
	for i, e := range edges {
		want := i%3 != 0
		if got := s.Contains(e); got != want {
			t.Fatalf("after deletions, Contains(%v) = %v, want %v", e, got, want)
		}
	}
}

func TestGrowPreservesContent(t *testing.T) {
	s := New(2, 0.5)
	var edges []graph.Edge
	for i := uint32(0); i < 5000; i++ {
		e := edge(i, i+1)
		edges = append(edges, e)
		s.Insert(e)
	}
	for _, e := range edges {
		if !s.Contains(e) {
			t.Fatalf("edge %v lost during growth", e)
		}
	}
	if s.Len() != len(edges) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(edges))
	}
}

func TestFromEdges(t *testing.T) {
	edges := []graph.Edge{edge(0, 1), edge(2, 3), edge(1, 2)}
	s := FromEdges(edges, 0.5)
	for _, e := range edges {
		if !s.Contains(e) {
			t.Fatalf("missing %v", e)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestSampleBucketUniform(t *testing.T) {
	s := NewDefault(64)
	k := 16
	for i := 0; i < k; i++ {
		s.Insert(edge(uint32(i), uint32(i+100)))
	}
	src := rng.NewMT19937(9)
	counts := map[graph.Edge]int{}
	const samples = 160000
	for i := 0; i < samples; i++ {
		counts[s.SampleBucket(src)]++
	}
	expected := float64(samples) / float64(k)
	var x2 float64
	for _, c := range counts {
		d := float64(c) - expected
		x2 += d * d / expected
	}
	if len(counts) != k {
		t.Fatalf("sampled %d distinct edges, want %d", len(counts), k)
	}
	if x2 > 50 { // df = 15
		t.Fatalf("bucket sampling chi-square too large: %.1f", x2)
	}
}

func TestForEach(t *testing.T) {
	s := NewDefault(16)
	want := map[graph.Edge]bool{edge(0, 1): true, edge(5, 9): true}
	for e := range want {
		s.Insert(e)
	}
	got := map[graph.Edge]bool{}
	s.ForEach(func(e graph.Edge) { got[e] = true })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d edges, want %d", len(got), len(want))
	}
	for e := range want {
		if !got[e] {
			t.Fatalf("ForEach missed %v", e)
		}
	}
}

func TestLoadFactorRespected(t *testing.T) {
	s := New(100, 0.5)
	for i := uint32(0); i < 100; i++ {
		s.Insert(edge(i, i+1))
	}
	if load := float64(s.Len()) / float64(s.Buckets()); load > 0.5 {
		t.Fatalf("load factor %.3f exceeds 0.5", load)
	}
}

func BenchmarkInsertEraseCycle(b *testing.B) {
	s := NewDefault(1 << 16)
	for i := uint32(0); i < 1<<15; i++ {
		s.Insert(edge(i, i+1<<16))
	}
	src := rng.NewSplitMix64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := uint32(src.Uint64() & 0xFFFF)
		e := edge(u, u+1<<17)
		s.Insert(e)
		s.Erase(e)
	}
}

func BenchmarkContains(b *testing.B) {
	s := NewDefault(1 << 16)
	for i := uint32(0); i < 1<<15; i++ {
		s.Insert(edge(i, i+1<<16))
	}
	src := rng.NewSplitMix64(1)
	b.ResetTimer()
	var hits int
	for i := 0; i < b.N; i++ {
		u := uint32(src.Uint64() & 0xFFFF)
		if s.Contains(edge(u, u+1<<16)) {
			hits++
		}
	}
	_ = hits
}

func BenchmarkSampleBucket(b *testing.B) {
	s := NewDefault(1 << 16)
	for i := uint32(0); i < 1<<15; i++ {
		s.Insert(edge(i, i+1<<16))
	}
	src := rng.NewSplitMix64(1)
	b.ResetTimer()
	var sink graph.Edge
	for i := 0; i < b.N; i++ {
		sink = s.SampleBucket(src)
	}
	_ = sink
}
