package curveball

import (
	"sort"
	"testing"

	"gesmc/internal/gen"
	"gesmc/internal/graph"
	"gesmc/internal/rng"
)

func sortedEdges(es []graph.Edge) []graph.Edge {
	out := append([]graph.Edge(nil), es...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func engineEdges(e *Engine, m int) []graph.Edge {
	dst := make([]graph.Edge, m)
	e.WriteEdges(dst)
	return dst
}

// drawBatches replays the exact pairing and seed streams an engine with
// the given seed draws for `steps` global trades, so the sequential
// Reference can be driven with identical inputs.
func drawGlobalBatches(n int, steps int, seed uint64) ([][][2]uint32, []uint64) {
	src := rng.NewMT19937(seed)
	seedSrc := rng.NewSplitMix64(seed ^ 0xC3B5507A6F7C8E21)
	batches := make([][][2]uint32, steps)
	seeds := make([]uint64, steps)
	for s := 0; s < steps; s++ {
		perm := rng.Perm(src, n)
		var pairs [][2]uint32
		for k := 0; k+1 < n; k += 2 {
			pairs = append(pairs, [2]uint32{perm[k], perm[k+1]})
		}
		batches[s] = pairs
		seeds[s] = seedSrc.Uint64()
	}
	return batches, seeds
}

func TestGlobalTradeBatchMatchesReferenceAcrossWorkers(t *testing.T) {
	src := rng.NewMT19937(7101)
	for trial := 0; trial < 8; trial++ {
		g := gen.GNP(40+rng.IntN(src, 60), 0.15, src)
		if g.M() < 4 {
			continue
		}
		const steps = 5
		seed := uint64(1000 + trial)
		batches, seeds := drawGlobalBatches(g.N(), steps, seed)

		ref := NewReference(g)
		for s := range batches {
			ref.TradeBatch(batches[s], seeds[s])
		}
		want := ref.Edges()

		for _, w := range []int{1, 2, 4, 8} {
			e := NewEngine(g, w, seed)
			for s := 0; s < steps; s++ {
				e.GlobalStep()
			}
			got := engineEdges(e, g.M())
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d: edge %d diverges from sequential reference", w, i)
				}
			}
			if err := e.Graph().CheckSimple(); err != nil {
				t.Fatalf("workers=%d: %v", w, err)
			}
		}
	}
}

func TestLocalTradesMatchAcrossWorkers(t *testing.T) {
	src := rng.NewMT19937(7102)
	g := gen.GNP(80, 0.12, src)
	var want []graph.Edge
	for _, w := range []int{1, 2, 4, 8} {
		e := NewEngine(g, w, 77)
		for s := 0; s < 6; s++ {
			e.LocalStep()
		}
		got := engineEdges(e, g.M())
		if want == nil {
			want = got
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: local trades diverge at edge %d", w, i)
			}
		}
	}
}

func TestEngineResumedSplitsBitIdentical(t *testing.T) {
	src := rng.NewMT19937(7103)
	g := gen.GNP(64, 0.15, src)

	one := NewEngine(g, 4, 5)
	for s := 0; s < 8; s++ {
		one.GlobalStep()
	}
	// "Resumed" engine: same construction, steps split across bursts —
	// the stream state must carry over exactly.
	split := NewEngine(g, 4, 5)
	for _, k := range []int{3, 1, 4} {
		for s := 0; s < k; s++ {
			split.GlobalStep()
		}
	}
	a, b := engineEdges(one, g.M()), engineEdges(split, g.M())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("split runs diverge at edge %d", i)
		}
	}
	if one.Attempted != split.Attempted || one.Stats().Legal != split.Stats().Legal {
		t.Fatal("counters diverge between split runs")
	}
}

func TestEnginePreservesInvariants(t *testing.T) {
	src := rng.NewMT19937(7104)
	g, err := gen.SynPldGraph(256, 2.2, src)
	if err != nil {
		t.Fatal(err)
	}
	wantDeg := g.Degrees()
	e := NewEngine(g, 4, 11)
	for s := 0; s < 12; s++ {
		if s%2 == 0 {
			e.GlobalStep()
		} else {
			e.LocalStep()
		}
	}
	h := e.Graph()
	if err := h.CheckSimple(); err != nil {
		t.Fatal(err)
	}
	gotDeg := h.Degrees()
	for v := range wantDeg {
		if gotDeg[v] != wantDeg[v] {
			t.Fatalf("degree of %d changed: %d -> %d", v, wantDeg[v], gotDeg[v])
		}
	}
	if graph.SameEdgeSet(g, h) {
		t.Fatal("trades did not randomize the graph")
	}
	st := e.Stats()
	if st.InternalSupersteps == 0 || st.Legal == 0 || st.TotalRounds < int64(st.InternalSupersteps) {
		t.Fatalf("kernel stats broken: %+v", st)
	}
}

func TestParallelGlobalCurveballUniformOverMatchings(t *testing.T) {
	// The 15-state enumeration used by the other chains: the superstep
	// trade semantics must also converge to uniform over the perfect
	// matchings of K6.
	base, err := graph.FromPairs(6, [][2]graph.Node{{0, 1}, {2, 3}, {4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const runs = 3000
	for r := 0; r < runs; r++ {
		e := NewEngine(base, 2, uint64(r)*2654435761+13)
		for s := 0; s < 20; s++ {
			e.GlobalStep()
		}
		edges := sortedEdges(engineEdges(e, base.M()))
		key := ""
		for _, ed := range edges {
			key += ed.String()
		}
		counts[key]++
	}
	if len(counts) != 15 {
		t.Fatalf("reached %d of 15 states", len(counts))
	}
	expected := float64(runs) / 15
	var x2 float64
	for _, c := range counts {
		d := float64(c) - expected
		x2 += d * d / expected
	}
	if x2 > 60 { // df = 14
		t.Fatalf("chi-square %.1f too large", x2)
	}
}
