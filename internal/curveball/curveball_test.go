package curveball

import (
	"sort"
	"testing"

	"gesmc/internal/gen"
	"gesmc/internal/graph"
	"gesmc/internal/rng"
)

func checkInvariants(t *testing.T, before, after *graph.Graph) {
	t.Helper()
	if err := after.CheckSimple(); err != nil {
		t.Fatal(err)
	}
	a := before.Degrees()
	b := after.Degrees()
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("degree of %d changed: %d -> %d", v, a[v], b[v])
		}
	}
}

func TestTradePreservesInvariants(t *testing.T) {
	src := rng.NewMT19937(1)
	g := gen.GNP(64, 0.15, src)
	s := NewState(g)
	for i := 0; i < 500; i++ {
		u, v := rng.TwoDistinct(src, g.N())
		s.Trade(graph.Node(u), graph.Node(v), src)
	}
	checkInvariants(t, g, s.Graph())
}

func TestTradeFixedSharedNeighbors(t *testing.T) {
	// Shared neighbors and the edge {u,v} itself must never move.
	g, err := graph.FromPairs(5, [][2]graph.Node{{0, 1}, {0, 2}, {1, 2}, {0, 3}, {1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.NewMT19937(2)
	s := NewState(g)
	for i := 0; i < 50; i++ {
		s.Trade(0, 1, src)
		if !s.Contains(0, 1) {
			t.Fatal("edge {0,1} vanished")
		}
		if !s.Contains(0, 2) || !s.Contains(1, 2) {
			t.Fatal("shared neighbor 2 was traded")
		}
	}
}

func TestTradeReachesBothAssignments(t *testing.T) {
	// u=0 with exclusive neighbor 3, v=1 with exclusive neighbor 4:
	// trades must eventually realize both assignments.
	base, err := graph.FromPairs(5, [][2]graph.Node{{0, 3}, {1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.NewMT19937(3)
	seen := map[string]bool{}
	for trial := 0; trial < 200; trial++ {
		s := NewState(base)
		s.Trade(0, 1, src)
		g := s.Graph()
		edges := append([]graph.Edge(nil), g.Edges()...)
		sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
		key := ""
		for _, e := range edges {
			key += e.String()
		}
		seen[key] = true
	}
	if len(seen) < 2 {
		t.Fatalf("trades never moved the exclusive neighbors: %v", seen)
	}
}

func TestGlobalTradeInvariants(t *testing.T) {
	src := rng.NewMT19937(4)
	g, err := gen.SynPldGraph(128, 2.3, src)
	if err != nil {
		t.Fatal(err)
	}
	s := NewState(g)
	for i := 0; i < 20; i++ {
		s.GlobalTrade(src)
	}
	checkInvariants(t, g, s.Graph())
}

func TestRunnersRandomize(t *testing.T) {
	src := rng.NewMT19937(5)
	g := gen.GNP(64, 0.2, src)
	cb := RunCurveball(g, 500, 7)
	checkInvariants(t, g, cb)
	if graph.SameEdgeSet(g, cb) {
		t.Fatal("Curveball left the graph unchanged")
	}
	gcb := RunGlobalCurveball(g, 10, 8)
	checkInvariants(t, g, gcb)
	if graph.SameEdgeSet(g, gcb) {
		t.Fatal("Global Curveball left the graph unchanged")
	}
}

func TestCurveballUniformOverMatchings(t *testing.T) {
	// Same 15-state enumeration as the core chains: Curveball on the
	// perfect matchings of K6 must also converge to uniform.
	base, err := graph.FromPairs(6, [][2]graph.Node{{0, 1}, {2, 3}, {4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const runs = 3000
	for r := 0; r < runs; r++ {
		g := RunGlobalCurveball(base, 20, uint64(r)*2654435761+3)
		edges := append([]graph.Edge(nil), g.Edges()...)
		sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
		key := ""
		for _, e := range edges {
			key += e.String()
		}
		counts[key]++
	}
	if len(counts) != 15 {
		t.Fatalf("reached %d of 15 states", len(counts))
	}
	expected := float64(runs) / 15
	var x2 float64
	for _, c := range counts {
		d := float64(c) - expected
		x2 += d * d / expected
	}
	if x2 > 60 { // df = 14
		t.Fatalf("chi-square %.1f too large", x2)
	}
}
