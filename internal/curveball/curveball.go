// Package curveball implements the Curveball Markov chain and its Global
// Curveball variant for simple undirected graphs — the related sampling
// chain the paper compares against conceptually (§1.1; Carstens, Berger
// & Strona 2016, and the Global Curveball of Carstens et al., ESA 2018).
// A trade between two nodes shuffles their disjoint neighborhoods; a
// global trade pairs every node exactly once via a random permutation.
//
// Two implementations coexist. State (this file) is the classic
// sequential formulation — trades in strict order, each observing all
// previous trades — kept as the mixing comparator used by
// internal/autocorr. Engine (parallel.go) is the superstep formulation
// built on the unified switching kernel: global trades (and batched
// local trades) execute as conflict-free parallel supersteps under a
// per-batch edge ownership discipline, bit-identical for every worker
// count (DESIGN.md §4). The public Sampler's Curveball chains run on
// Engine.
package curveball

import (
	"gesmc/internal/graph"
	"gesmc/internal/hashset"
	"gesmc/internal/rng"
)

// State is a graph under Curveball trades: adjacency lists plus an edge
// set for O(1) membership tests.
type State struct {
	n   int
	adj [][]graph.Node
	set *hashset.Set
}

// NewState builds the trade state from a simple graph.
func NewState(g *graph.Graph) *State {
	n := g.N()
	s := &State{
		n:   n,
		adj: make([][]graph.Node, n),
		set: hashset.FromEdges(g.Edges(), 0.5),
	}
	deg := g.Degrees()
	for v := 0; v < n; v++ {
		s.adj[v] = make([]graph.Node, 0, deg[v])
	}
	for _, e := range g.Edges() {
		s.adj[e.U()] = append(s.adj[e.U()], e.V())
		s.adj[e.V()] = append(s.adj[e.V()], e.U())
	}
	return s
}

// Graph materializes the current state as a graph (fresh edge list).
func (s *State) Graph() *graph.Graph {
	var edges []graph.Edge
	s.set.ForEach(func(e graph.Edge) { edges = append(edges, e) })
	return graph.NewUnchecked(s.n, edges)
}

// WriteEdges writes the current edge set into dst, which must have
// length equal to the state's edge count (trades preserve it). The
// order is the set's deterministic iteration order, so resumed runs
// with the same seed produce identical edge lists.
func (s *State) WriteEdges(dst []graph.Edge) {
	i := 0
	s.set.ForEach(func(e graph.Edge) {
		dst[i] = e
		i++
	})
	if i != len(dst) {
		panic("curveball: edge count drifted")
	}
}

// Contains reports whether the edge {u, v} currently exists.
func (s *State) Contains(u, v graph.Node) bool {
	return s.set.Contains(graph.MakeEdge(u, v))
}

// Trade performs one Curveball trade between distinct nodes u and v:
// the neighbors exclusive to u and exclusive to v (excluding u, v
// themselves) are pooled, shuffled, and redealt in the original counts.
// Degrees and simplicity are preserved by construction.
func (s *State) Trade(u, v graph.Node, src rng.Source) {
	if u == v {
		panic("curveball: trade requires distinct nodes")
	}
	// Partition u's neighborhood into fixed (shared with v, or v
	// itself) and tradeable.
	pool := make([]graph.Node, 0, len(s.adj[u])+len(s.adj[v]))
	fixedU := s.adj[u][:0]
	for _, w := range s.adj[u] {
		if w == v || s.Contains(v, w) {
			fixedU = append(fixedU, w)
		} else {
			pool = append(pool, w)
		}
	}
	nu := len(pool)
	fixedV := s.adj[v][:0]
	for _, w := range s.adj[v] {
		if w == u || s.Contains(u, w) {
			fixedV = append(fixedV, w)
		} else {
			pool = append(pool, w)
		}
	}

	// Shuffle the pooled disjoint neighbors and redeal.
	for i := len(pool) - 1; i > 0; i-- {
		j := rng.IntN(src, i+1)
		pool[i], pool[j] = pool[j], pool[i]
	}

	// Rewire: first nu go to u, the rest to v.
	for i, w := range pool {
		var from, to graph.Node
		if i < nu {
			to = u
			from = v
		} else {
			to = v
			from = u
		}
		old := graph.MakeEdge(from, w)
		if s.set.Contains(old) {
			// w moved between endpoints: update the edge set and w's
			// adjacency entry.
			s.set.Erase(old)
			s.set.Insert(graph.MakeEdge(to, w))
			replaceNeighbor(s.adj[w], from, to)
		}
	}
	s.adj[u] = append(fixedU, pool[:nu]...)
	s.adj[v] = append(fixedV, pool[nu:]...)
}

func replaceNeighbor(nb []graph.Node, from, to graph.Node) {
	for i, w := range nb {
		if w == from {
			nb[i] = to
			return
		}
	}
	panic("curveball: adjacency inconsistent")
}

// GlobalTrade performs one global trade: nodes are paired by a uniform
// permutation and every pair trades once (⌊n/2⌋ trades touching each
// node exactly once).
func (s *State) GlobalTrade(src rng.Source) {
	perm := rng.Perm(src, s.n)
	for k := 0; k+1 < s.n; k += 2 {
		s.Trade(graph.Node(perm[k]), graph.Node(perm[k+1]), src)
	}
}

// RunCurveball performs r uniformly random trades.
func RunCurveball(g *graph.Graph, trades int, seed uint64) *graph.Graph {
	s := NewState(g)
	src := rng.NewMT19937(seed)
	for i := 0; i < trades; i++ {
		u, v := rng.TwoDistinct(src, s.n)
		s.Trade(graph.Node(u), graph.Node(v), src)
	}
	return s.Graph()
}

// RunGlobalCurveball performs the given number of global trades.
func RunGlobalCurveball(g *graph.Graph, globalTrades int, seed uint64) *graph.Graph {
	s := NewState(g)
	src := rng.NewMT19937(seed)
	for i := 0; i < globalTrades; i++ {
		s.GlobalTrade(src)
	}
	return s.Graph()
}
