package curveball

import (
	"math"
	"sync/atomic"

	"gesmc/internal/conc"
	"gesmc/internal/graph"
	"gesmc/internal/rng"
	"gesmc/internal/switching"
)

// This file implements the parallel trade kernel: a superstep
// formulation of Curveball trades that runs global trades (and batched
// local trades) through the same round driver as the edge-switching
// chains, with bit-identical results for every worker count.
//
// Superstep semantics (DESIGN.md §4). A batch pairs disjoint nodes;
// trade k = (u_k, v_k) and rank(w) = index of the trade containing w
// (+∞ for unpaired nodes). Every edge {a, b} is owned by the
// earlier-ranked endpoint's trade: trade k may only reassign edges to
// partners w with rank(w) > k, edges to earlier-ranked partners are
// held fixed for this batch. Under this ownership discipline each edge
// belongs to exactly one trade per batch — the global-trade property
// "every edge trades at most once" becomes exact — and a short
// induction shows every trade's candidate pool, disjointness tests, and
// write locations are fully determined by the batch-start state:
//
//   - candidate edges {u, w}, rank(w) > k, are owned by trade k itself,
//     so no other trade rewires them;
//   - a trade j rewiring an edge {u, y} with rank(y) = j < k replaces
//     u's neighbor y by j's co-member (same rank), so the rank profile
//     of every neighborhood is invariant;
//   - the disjointness test {v, w} ∈ E (rank k vs rank > k) concerns an
//     edge owned by trade k, which no earlier trade can erase or
//     create.
//
// The dependency table of Algorithm 1 therefore degenerates: every
// contested resource has a statically known unique owner, all trades
// decide Legal in round one, and the batch is one conflict-free
// parallel superstep. Each trade shuffles its pooled disjoint neighbors
// with a private SplitMix64 stream derived from (batch seed, k), so the
// result is independent of scheduling and worker count, and a
// sequential in-order replay (Reference) produces the identical graph.
//
// The move is symmetric (the reverse redeal has the same pool and the
// same probability), so uniformity of the stationary distribution is
// preserved; irreducibility follows because any single trade with an
// unrestricted pool occurs with positive probability as trade 0 of a
// global batch.

// unranked marks nodes outside the current batch: later than every
// trade, so their edges are always owned by the paired endpoint.
const unranked = int32(math.MaxInt32)

// originV flags pool entries collected from the v side. Neighbor ids
// stay below 2^28, leaving the top bits of the packed slot free.
const originV = uint64(1) << 63

// tradeScratch is per-worker pool state, padded to keep the slice
// headers of different workers off one cache line.
type tradeScratch struct {
	pool []uint64 // packed slot values, v-side entries tagged originV
	tgt  []int32  // slot indices being redealt (u's slots, then v's)
	_    [4]uint64
}

// Engine is the parallel trade state: a cross-indexed CSR adjacency —
// each slot packs (neighbor, position of the reverse slot), so redeals
// update both endpoints by direct indexing without scans — plus the
// concurrent edge set for disjointness tests, and the shared round
// driver for scheduling and stats. One GlobalStep is one global trade;
// one LocalStep is ⌊n/2⌋ uniform trades executed as node-disjoint
// batches. All randomness derives from the construction seed; results
// are bit-identical for every worker count.
type Engine struct {
	n    int
	offs []int32  // CSR offsets, len n+1
	slot []uint64 // neighbor<<32 | reverse-slot index; atomic access
	set  *conc.EdgeSet
	rank []int32

	// Prefetch enables the §5.4 pre-touch pipeline in the trade pool
	// collection: the disjointness-test bucket of a neighbor a few
	// slots ahead is touched before it is probed. Results are
	// bit-identical with the pipeline on or off.
	Prefetch bool

	drv     switching.RoundDriver
	src     rng.Source      // pairing permutations and local pair draws
	seedSrc *rng.SplitMix64 // per-batch trade-seed bases
	sc      []tradeScratch

	pairs   [][2]uint32 // batch buffer
	scratch []graph.Edge
	used    []bool

	// Per-batch dispatch state and the persistent bodies reading it,
	// created once so batches allocate nothing in steady state.
	curPairs    [][2]uint32
	curSeed     uint64
	rankSetFn   func(worker, lo, hi int)
	rankClearFn func(worker, lo, hi int)
	clearFn     func(worker, lo, hi int)
	rebuildFn   func(worker, lo, hi int)
	tradeFn     switching.Decide
	compactPlan conc.FusedPlan

	// Attempted counts trades performed (trades are never rejected, so
	// it equals the kernel's Legal counter).
	Attempted int64
}

// NewEngine compiles a simple graph into the parallel trade state.
func NewEngine(g *graph.Graph, workers int, seed uint64) *Engine {
	n := g.N()
	m := g.M()
	deg := g.Degrees()
	offs := make([]int32, n+1)
	for v := 0; v < n; v++ {
		offs[v+1] = offs[v] + int32(deg[v])
	}
	slot := make([]uint64, 2*m)
	cursor := make([]int32, n)
	copy(cursor, offs[:n])
	for _, e := range g.Edges() {
		u, v := e.U(), e.V()
		su, sv := cursor[u], cursor[v]
		cursor[u]++
		cursor[v]++
		slot[su] = uint64(v)<<32 | uint64(uint32(sv))
		slot[sv] = uint64(u)<<32 | uint64(uint32(su))
	}
	set := conc.NewEdgeSet(m)
	set.BuildFrom(g.Edges(), workers)
	e := &Engine{
		n:       n,
		offs:    offs,
		slot:    slot,
		set:     set,
		rank:    make([]int32, n),
		src:     rng.NewMT19937(seed),
		seedSrc: rng.NewSplitMix64(seed ^ 0xC3B5507A6F7C8E21),
		used:    make([]bool, n),
	}
	for i := range e.rank {
		e.rank[i] = unranked
	}
	e.drv.Init(workers)
	// A 1-worker gang drives the disjointness set from one goroutine:
	// drop the CAS/counter read-modify-writes for plain stores.
	e.set.SetSequential(e.drv.Workers() == 1)
	e.sc = make([]tradeScratch, e.drv.Workers())
	e.rankSetFn = func(_, lo, hi int) {
		for k := lo; k < hi; k++ {
			e.rank[e.curPairs[k][0]] = int32(k)
			e.rank[e.curPairs[k][1]] = int32(k)
		}
	}
	e.rankClearFn = func(_, lo, hi int) {
		for k := lo; k < hi; k++ {
			e.rank[e.curPairs[k][0]] = unranked
			e.rank[e.curPairs[k][1]] = unranked
		}
	}
	e.clearFn = func(_, lo, hi int) { e.set.ClearRange(lo, hi) }
	e.rebuildFn = func(_, lo, hi int) {
		for _, ed := range e.scratch[lo:hi] {
			e.set.InsertUnique(ed)
		}
	}
	e.tradeFn = func(worker int, k int32) uint32 {
		e.trade(worker, e.curPairs[k][0], e.curPairs[k][1], k, e.curSeed)
		return conc.StatusLegal
	}
	// Compaction clear+rebuild on one gang wake; the serial counter
	// reset runs as the sub-barrier hook between the passes.
	e.compactPlan.Passes = []conc.FusedPass{
		{Fn: e.clearFn, After: e.set.ResetCounts},
		{Fn: e.rebuildFn},
	}
	return e
}

// SetChunkBytes overrides the topology-derived dynamic-chunk grain of
// the trade rounds (zero or negative restores the default). Results
// are bit-identical for any grain.
func (e *Engine) SetChunkBytes(bytes int) { e.drv.Pool().SetChunkBytes(bytes) }

// Close releases the engine's persistent worker gang. The engine must
// not be used afterwards.
func (e *Engine) Close() { e.drv.Release() }

// Stats returns the kernel counters accumulated over the engine's
// lifetime (Legal counts trades performed).
func (e *Engine) Stats() switching.Stats { return e.drv.Stats }

// GlobalStep performs one global trade: a uniform permutation pairs
// every node exactly once and the resulting ⌊n/2⌋ trades execute as one
// batch. The pairing is drawn from the sequential stream, so the whole
// step is invariant under the worker count.
func (e *Engine) GlobalStep() {
	perm := rng.Perm(e.src, e.n)
	pairs := e.pairs[:0]
	for k := 0; k+1 < e.n; k += 2 {
		pairs = append(pairs, [2]uint32{perm[k], perm[k+1]})
	}
	e.pairs = pairs
	e.TradeBatch(pairs, e.seedSrc.Uint64())
}

// LocalStep performs ⌊n/2⌋ uniformly random trades (the Curveball
// chain's superstep normalization). The trade sequence is drawn up
// front from the sequential stream, then executed as maximal
// node-disjoint batches, so batching — and therefore the result — is
// independent of the worker count.
func (e *Engine) LocalStep() {
	total := e.n / 2
	pairs := e.pairs[:0]
	for i := 0; i < total; i++ {
		u, v := rng.TwoDistinct(e.src, e.n)
		pairs = append(pairs, [2]uint32{uint32(u), uint32(v)})
	}
	e.pairs = pairs
	i := 0
	for i < total {
		j := i
		for j < total && !e.used[pairs[j][0]] && !e.used[pairs[j][1]] {
			e.used[pairs[j][0]] = true
			e.used[pairs[j][1]] = true
			j++
		}
		e.TradeBatch(pairs[i:j], e.seedSrc.Uint64())
		for _, p := range pairs[i:j] {
			e.used[p[0]] = false
			e.used[p[1]] = false
		}
		i = j
	}
}

// tradeSeed derives the private shuffle seed of trade k within a batch.
// The full mixer decorrelates the per-trade SplitMix64 streams (a plain
// additive offset would make consecutive trades replay shifted copies
// of one stream).
func tradeSeed(stepSeed uint64, k int32) uint64 {
	return rng.Mix64(stepSeed ^ (uint64(uint32(k))+1)*0xD1B54A32D192ED03)
}

// TradeBatch executes one batch of node-disjoint trades under the
// ownership discipline. Exposed so differential tests can drive the
// engine and the sequential Reference with identical inputs.
func (e *Engine) TradeBatch(pairs [][2]uint32, stepSeed uint64) {
	nt := len(pairs)
	if nt == 0 {
		return
	}
	pool := e.drv.Pool()
	e.curPairs, e.curSeed = pairs, stepSeed
	// Rank registration is the prologue of the fused first trade round
	// (one gang wake instead of two); trades always decide in round
	// one, so the whole batch is prologue + one round + rank clear.
	e.drv.RunFused(nt, e.rankSetFn, nt, e.tradeFn, nil)
	pool.Blocks(nt, e.rankClearFn)
	e.curPairs = nil
	e.Attempted += int64(nt)

	if e.set.NeedsCompact() {
		m := len(e.slot) / 2
		if cap(e.scratch) < m {
			e.scratch = make([]graph.Edge, m)
		}
		e.scratch = e.scratch[:m]
		e.WriteEdges(e.scratch)
		e.compactPlan.Passes[0].N = e.set.Buckets()
		e.compactPlan.Passes[1].N = m
		pool.Fused(&e.compactPlan)
	}
}

// trade decides and applies trade k = (u, v): pool the neighbors
// exclusive to one side and owned by this trade (rank > k), shuffle
// them with the trade's private stream, and redeal — the first nu into
// u's slots, the rest into v's. Slot reads and writes are atomic
// because neighboring trades concurrently scan the same adjacency
// arrays (always slots of a different rank, so decisions are
// unaffected; the atomics only order the memory accesses).
func (e *Engine) trade(worker int, u, v uint32, k int32, stepSeed uint64) {
	sc := &e.sc[worker]
	pool := sc.pool[:0]
	tgt := sc.tgt[:0]
	// tradeTouchDist is the trade-loop pre-touch distance: the
	// disjointness-test bucket of the neighbor a few slots ahead is
	// pulled in before the Contains that probes it (§5.4).
	const tradeTouchDist = int32(4)
	pf := e.Prefetch
	for i := e.offs[u]; i < e.offs[u+1]; i++ {
		if pf && i+tradeTouchDist < e.offs[u+1] {
			ahead := atomic.LoadUint64(&e.slot[i+tradeTouchDist])
			e.set.Touch(graph.MakeEdge(v, uint32(ahead>>32)))
		}
		s := atomic.LoadUint64(&e.slot[i])
		w := uint32(s >> 32)
		if e.rank[w] <= k {
			continue // earlier-ranked partner (fixed) or v itself
		}
		if e.set.Contains(graph.MakeEdge(v, w)) {
			continue // shared neighbor: fixed on both sides
		}
		pool = append(pool, s)
		tgt = append(tgt, i)
	}
	nu := len(pool)
	for i := e.offs[v]; i < e.offs[v+1]; i++ {
		if pf && i+tradeTouchDist < e.offs[v+1] {
			ahead := atomic.LoadUint64(&e.slot[i+tradeTouchDist])
			e.set.Touch(graph.MakeEdge(u, uint32(ahead>>32)))
		}
		s := atomic.LoadUint64(&e.slot[i])
		w := uint32(s >> 32)
		if e.rank[w] <= k {
			continue
		}
		if e.set.Contains(graph.MakeEdge(u, w)) {
			continue
		}
		pool = append(pool, s|originV)
		tgt = append(tgt, i)
	}
	sc.pool, sc.tgt = pool, tgt // keep grown capacity

	if len(pool) < 2 {
		return // nothing can move
	}
	src := rng.NewSplitMix64(tradeSeed(stepSeed, k))
	for i := len(pool) - 1; i > 0; i-- {
		j := src.IntN(i + 1) // concrete call: src stays on this stack
		pool[i], pool[j] = pool[j], pool[i]
	}
	for i, s := range pool {
		w := uint32((s &^ originV) >> 32)
		back := uint32(s)
		oldOwner, newOwner := u, u
		if s&originV != 0 {
			oldOwner = v
		}
		if i >= nu {
			newOwner = v
		}
		atomic.StoreUint64(&e.slot[tgt[i]], uint64(w)<<32|uint64(back))
		atomic.StoreUint64(&e.slot[back], uint64(newOwner)<<32|uint64(uint32(tgt[i])))
		if oldOwner != newOwner {
			e.set.EraseUnique(graph.MakeEdge(oldOwner, w))
			e.set.InsertUnique(graph.MakeEdge(newOwner, w))
		}
	}
}

// WriteEdges writes the current edge list into dst, which must have
// length m. The order (node-major, slot order) is deterministic and
// independent of the worker count.
func (e *Engine) WriteEdges(dst []graph.Edge) {
	i := 0
	for u := 0; u < e.n; u++ {
		for s := e.offs[u]; s < e.offs[u+1]; s++ {
			w := uint32(e.slot[s] >> 32)
			if uint32(u) < w {
				dst[i] = graph.MakeEdge(uint32(u), w)
				i++
			}
		}
	}
	if i != len(dst) {
		panic("curveball: edge count drifted")
	}
}

// Graph materializes the current state as a fresh graph.
func (e *Engine) Graph() *graph.Graph {
	dst := make([]graph.Edge, len(e.slot)/2)
	e.WriteEdges(dst)
	return graph.NewUnchecked(e.n, dst)
}

// Reference is the sequential reference implementation of the superstep
// trade semantics: trades of a batch execute one after another in index
// order on plain data structures (adjacency slices updated in place, a
// map-backed edge set). The parallel Engine must produce bit-identical
// edge sets for every worker count; the differential tests drive both
// with the same batches and seeds.
type Reference struct {
	n    int
	adj  [][]uint32
	set  map[graph.Edge]struct{}
	rank []int32
}

// NewReference builds the reference state from a simple graph.
func NewReference(g *graph.Graph) *Reference {
	n := g.N()
	r := &Reference{
		n:    n,
		adj:  make([][]uint32, n),
		set:  make(map[graph.Edge]struct{}, g.M()),
		rank: make([]int32, n),
	}
	deg := g.Degrees()
	for v := 0; v < n; v++ {
		r.adj[v] = make([]uint32, 0, deg[v])
	}
	for _, e := range g.Edges() {
		r.adj[e.U()] = append(r.adj[e.U()], e.V())
		r.adj[e.V()] = append(r.adj[e.V()], e.U())
		r.set[e] = struct{}{}
	}
	for i := range r.rank {
		r.rank[i] = unranked
	}
	return r
}

// TradeBatch executes the batch sequentially in trade order with the
// same ownership rule and per-trade seeds as the parallel engine.
func (r *Reference) TradeBatch(pairs [][2]uint32, stepSeed uint64) {
	for k := range pairs {
		r.rank[pairs[k][0]] = int32(k)
		r.rank[pairs[k][1]] = int32(k)
	}
	for k, p := range pairs {
		r.trade(p[0], p[1], int32(k), stepSeed)
	}
	for k := range pairs {
		r.rank[pairs[k][0]] = unranked
		r.rank[pairs[k][1]] = unranked
	}
}

func (r *Reference) has(u, w uint32) bool {
	_, ok := r.set[graph.MakeEdge(u, w)]
	return ok
}

func (r *Reference) trade(u, v uint32, k int32, stepSeed uint64) {
	type cand struct {
		w    uint32
		pos  int
		side uint32 // owning node before the redeal
	}
	var pool []cand
	for i, w := range r.adj[u] {
		if r.rank[w] <= k || r.has(v, w) {
			continue
		}
		pool = append(pool, cand{w: w, pos: i, side: u})
	}
	nu := len(pool)
	for i, w := range r.adj[v] {
		if r.rank[w] <= k || r.has(u, w) {
			continue
		}
		pool = append(pool, cand{w: w, pos: i, side: v})
	}
	if len(pool) < 2 {
		return
	}
	// The slot positions are redealt in collection order; only the
	// occupants shuffle, exactly as in the parallel engine.
	slots := make([]cand, len(pool))
	copy(slots, pool)
	src := rng.NewSplitMix64(tradeSeed(stepSeed, k))
	for i := len(pool) - 1; i > 0; i-- {
		j := src.IntN(i + 1)
		pool[i], pool[j] = pool[j], pool[i]
	}
	for i, c := range pool {
		newOwner := u
		if i >= nu {
			newOwner = v
		}
		slotOwner := slots[i].side
		r.adj[slotOwner][slots[i].pos] = c.w
		if c.side != newOwner {
			delete(r.set, graph.MakeEdge(c.side, c.w))
			r.set[graph.MakeEdge(newOwner, c.w)] = struct{}{}
			// Update w's view of the edge in place (unique occurrence).
			for j, x := range r.adj[c.w] {
				if x == c.side {
					r.adj[c.w][j] = newOwner
					break
				}
			}
		}
	}
}

// Edges returns the reference's current edges sorted canonically.
func (r *Reference) Edges() []graph.Edge {
	out := make([]graph.Edge, 0, len(r.set))
	for u := 0; u < r.n; u++ {
		for _, w := range r.adj[u] {
			if uint32(u) < w {
				out = append(out, graph.MakeEdge(uint32(u), w))
			}
		}
	}
	return out
}
