package switching

import (
	"time"

	"gesmc/internal/conc"
)

// Stats aggregates the kernel's observable behaviour across supersteps.
// The field names follow Figure 9 of the paper: InternalSupersteps
// counts kernel invocations, TotalRounds/MaxRounds the decision rounds
// they needed, Legal the accepted items, and the two durations split
// round time into the first round (where almost all work happens under
// the natural scheduler) and the re-examination tail.
type Stats struct {
	InternalSupersteps int
	TotalRounds        int64
	MaxRounds          int
	Legal              int64
	FirstRoundTime     time.Duration
	LaterRoundsTime    time.Duration

	// Constraint instrumentation (zero without an active constraint):
	// Vetoed counts switches rejected by the runner's local veto hook,
	// RolledBack counts accepted switches undone by a post-superstep
	// Rollback (the speculate-then-recertify mode of global
	// constraints). Legal is net of rollbacks.
	Vetoed     int64
	RolledBack int64
}

// Sub returns the field-wise increment from prev to s, so callers can
// carve per-Steps deltas out of a runner's cumulative totals. MaxRounds
// does not decompose into increments and is carried over cumulatively.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		InternalSupersteps: s.InternalSupersteps - prev.InternalSupersteps,
		TotalRounds:        s.TotalRounds - prev.TotalRounds,
		MaxRounds:          s.MaxRounds,
		Legal:              s.Legal - prev.Legal,
		FirstRoundTime:     s.FirstRoundTime - prev.FirstRoundTime,
		LaterRoundsTime:    s.LaterRoundsTime - prev.LaterRoundsTime,
		Vetoed:             s.Vetoed - prev.Vetoed,
		RolledBack:         s.RolledBack - prev.RolledBack,
	}
}

// paddedCounter is a per-worker counter padded to its own cache line.
type paddedCounter struct {
	v int64
	_ [7]int64
}

// decision is a deferred status store used by the pessimistic scheduler.
type decision struct {
	k  int32
	st uint32
}

// driverScratch is the per-worker round state. Each worker's slice
// headers and counter live in its own padded struct: an append to a
// delay buffer writes the header back every push, and with plain
// []delayed slices those headers pack several workers to a cache line —
// measured false sharing in multi-worker decide rounds. Padding to two
// cache lines also defeats the adjacent-line prefetcher.
type driverScratch struct {
	delayed  []int32
	deferred []decision
	legal    int64
	_        [128 - 56]byte
}

// Decide attempts to decide item k and returns conc.StatusLegal,
// conc.StatusIllegal, or conc.StatusUndecided (delay to the next
// round). worker identifies the calling goroutine for per-worker
// scratch state. A Legal decision may apply its effects immediately;
// the driver publishes the status separately so the linearization point
// other items observe stays under scheduler control.
type Decide func(worker int, k int32) uint32

// Publish makes a decision visible to other items' Decide calls —
// typically an atomic store into a status table. Chains whose items
// never consult each other's statuses pass nil.
type Publish func(k int32, st uint32)

// PreTouch is a cache pre-touch hook invoked preTouchDist items ahead
// of the decide cursor — the §5.4 software-prefetch pipeline of the
// decide rounds. It must be a pure memory hint (loads only).
type PreTouch func(worker int, k int32)

// preTouchDist is the pipeline distance of the decide-round pre-touch:
// far enough ahead to cover a memory round-trip, near enough that the
// touched lines survive until use.
const preTouchDist = 8

// RoundDriver executes the round loop of Algorithm 1 (phase 2, lines
// 7-35) for any decision kind: items start undecided, each round
// attempts every still-undecided item in parallel, and items that
// depend on a same-batch decision not yet published delay to the next
// round. The driver owns the persistent worker gang (a conc.Pool shared
// with the embedding runner's other phases) and the scratch state
// reused across supersteps; steady-state supersteps perform no heap
// allocations.
//
// Rounds dispatch through the pool's atomic-cursor chunked mode rather
// than static blocks: delayed switches cluster (they share contested
// edges), so fixed per-worker blocks of the undecided list can be
// heavily skewed in re-examination rounds.
type RoundDriver struct {
	workers int
	pool    *conc.Pool

	// Pessimistic simulates the worst-case scheduler of Theorems 2-3:
	// status publications become visible only at round barriers, so
	// every dependency on a same-round item forces a delay. Rounds
	// counted in this mode are the quantity the paper's theory bounds
	// (expected <= 4*Delta^2/m, O(1) for regular graphs). Decisions are
	// identical either way; only the round structure differs.
	Pessimistic bool

	// PreTouch, when non-nil, is invoked preTouchDist items ahead of
	// the decide cursor within each chunk. Owners set it per superstep
	// (the kernel enables it under its Prefetch flag).
	PreTouch PreTouch

	// Per-round dispatch state read by roundBody.
	cur     []int32
	decide  Decide
	publish Publish
	roundFn func(worker, lo, hi int)

	// plan is the fused prologue+first-round dispatch (RunFused):
	// pass 0 is the caller's registration phase, pass 1 the first
	// decide round, separated by a sub-barrier instead of a full
	// park/wake cycle.
	plan conc.FusedPlan

	undecided []int32
	scratch   []driverScratch

	// Stats accumulated across supersteps.
	Stats
}

// Init prepares the driver for the given parallelism degree, creating
// the persistent worker gang. It must be called once before Run;
// workers < 1 is treated as 1. Release the gang with Release when the
// owning engine is closed (leaked drivers are reclaimed by the pool's
// finalizer).
func (d *RoundDriver) Init(workers int) {
	if workers < 1 {
		workers = 1
	}
	d.workers = workers
	d.pool = conc.NewPool(workers)
	d.scratch = make([]driverScratch, workers)
	d.roundFn = d.roundBody
	d.plan.Passes = make([]conc.FusedPass, 2)
	d.plan.Passes[1] = conc.FusedPass{Chunk: -1, Fn: d.roundFn}
}

// Workers returns the parallelism degree the driver was initialized
// with.
func (d *RoundDriver) Workers() int { return d.workers }

// Pool returns the persistent worker gang, so the embedding engine can
// run its other phases (tuple registration, apply, compaction) on the
// same long-lived goroutines.
func (d *RoundDriver) Pool() *conc.Pool { return d.pool }

// Release closes the worker gang. The driver must not be used
// afterwards. Idempotent.
func (d *RoundDriver) Release() {
	if d.pool != nil {
		d.pool.Close()
	}
}

// roundBody decides one claimed chunk of the current undecided list.
// It is created once (Init) and re-dispatched every round, so rounds
// allocate nothing.
func (d *RoundDriver) roundBody(worker, lo, hi int) {
	cur := d.cur
	touch := d.PreTouch
	sc := &d.scratch[worker]
	var legal int64
	for i := lo; i < hi; i++ {
		if touch != nil && i+preTouchDist < hi {
			touch(worker, cur[i+preTouchDist])
		}
		k := cur[i]
		st := d.decide(worker, k)
		switch st {
		case conc.StatusLegal:
			legal++
		case conc.StatusUndecided:
			sc.delayed = append(sc.delayed, k)
		}
		if st != conc.StatusUndecided && d.publish != nil {
			if d.Pessimistic {
				// Defer visibility to the round barrier: the
				// worst-case scheduler of the analysis.
				sc.deferred = append(sc.deferred, decision{k: k, st: st})
			} else {
				d.publish(k, st)
			}
		}
	}
	sc.legal += legal
}

// Run decides one superstep of n items through the round loop. decide
// is invoked at most once per item and round; publish (if non-nil)
// makes non-delayed decisions visible — immediately under the natural
// scheduler, at the round barrier under the pessimistic one. Pass
// long-lived function values (fields of the owning engine) to keep
// supersteps allocation-free.
func (d *RoundDriver) Run(n int, decide Decide, publish Publish) {
	d.run(0, nil, n, decide, publish)
}

// RunFused is Run with the caller's per-superstep prologue (phase-1
// tuple registration in Algorithm 1) folded into the first decide-round
// dispatch: both run on one gang wake separated by an in-dispatch
// sub-barrier, cutting a full park/wake cycle per superstep. The
// prologue covers [0, prologueN) in static blocks and is guaranteed
// complete on all workers before any decide executes — the same
// ordering the separate dispatches gave. prologue must be a long-lived
// function value to keep supersteps allocation-free.
func (d *RoundDriver) RunFused(prologueN int, prologue func(worker, lo, hi int), n int, decide Decide, publish Publish) {
	d.run(prologueN, prologue, n, decide, publish)
}

func (d *RoundDriver) run(proN int, proFn func(worker, lo, hi int), n int, decide Decide, publish Publish) {
	if n == 0 && proN > 0 && proFn != nil {
		// Degenerate superstep: registration with nothing to decide.
		d.pool.Blocks(proN, proFn)
		return
	}
	if n == 0 {
		return
	}
	d.decide = decide
	d.publish = publish
	undecided := d.undecided[:0]
	for k := 0; k < n; k++ {
		undecided = append(undecided, int32(k))
	}
	rounds := 0
	for len(undecided) > 0 {
		roundStart := time.Now()
		rounds++
		for i := range d.scratch {
			sc := &d.scratch[i]
			sc.delayed = sc.delayed[:0]
			sc.deferred = sc.deferred[:0]
		}
		d.cur = undecided
		if rounds == 1 && proN > 0 && proFn != nil {
			d.plan.Passes[0] = conc.FusedPass{N: proN, Fn: proFn}
			d.plan.Passes[1].N = len(undecided)
			d.pool.Fused(&d.plan)
			d.plan.Passes[0] = conc.FusedPass{}
		} else {
			d.pool.Chunked(len(undecided), 0, d.roundFn)
		}
		if d.Pessimistic && publish != nil {
			for i := range d.scratch {
				for _, dec := range d.scratch[i].deferred {
					publish(dec.k, dec.st)
				}
			}
		}
		undecided = undecided[:0]
		for i := range d.scratch {
			undecided = append(undecided, d.scratch[i].delayed...)
		}
		if rounds == 1 {
			d.FirstRoundTime += time.Since(roundStart)
		} else {
			d.LaterRoundsTime += time.Since(roundStart)
		}
	}
	d.undecided = undecided
	d.cur = nil
	d.decide = nil
	d.publish = nil

	for i := range d.scratch {
		d.Legal += d.scratch[i].legal
		d.scratch[i].legal = 0
	}
	d.InternalSupersteps++
	d.TotalRounds += int64(rounds)
	if rounds > d.MaxRounds {
		d.MaxRounds = rounds
	}
}
