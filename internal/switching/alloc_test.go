package switching_test

import (
	"fmt"
	"runtime"
	"testing"

	"gesmc/internal/gen"
	"gesmc/internal/graph"
	"gesmc/internal/rng"
	"gesmc/internal/switching"
)

// globalSwitchStep builds one full global-switch superstep (⌊m/2⌋
// source-independent switches from a fresh permutation).
func globalSwitchStep(m int, src rng.Source) []switching.Switch {
	perm := rng.Perm(src, m)
	out := make([]switching.Switch, 0, m/2)
	for k := 0; k+1 < m; k += 2 {
		i, j := perm[k], perm[k+1]
		out = append(out, switching.Switch{I: i, J: j, G: i < j})
	}
	return out
}

// TestRunnerSuperstepAllocs is the allocation-regression gate of the
// gang-scheduled kernel: after warm-up (scratch grown, compaction path
// exercised), a superstep must perform (almost) no heap allocations —
// the phase bodies, driver hooks, and pool dispatches are all
// persistent. The bound of 1 tolerates rare runtime-internal
// allocations (e.g. a goroutine stack growth); the historical
// spawn-per-phase kernel sat at ~15+ per superstep before counting
// goroutine churn.
func TestRunnerSuperstepAllocs(t *testing.T) {
	src := rng.NewMT19937(1234)
	g, err := gen.SynPldGraph(1<<12, 2.2, src)
	if err != nil {
		t.Fatal(err)
	}
	m := g.M()
	for _, workers := range []int{1, 2, 4} {
		for _, prefetch := range []bool{false, true} {
			t.Run(fmt.Sprintf("workers=%d/prefetch=%v", workers, prefetch), func(t *testing.T) {
				E := append([]graph.Edge(nil), g.Edges()...)
				r := switching.NewRunner(E, m/2, workers)
				r.Prefetch = prefetch
				defer r.Release()
				// Warm up: grows the undecided list, the per-worker
				// delay buffers, and the compaction scratch, and lets
				// worker stacks reach steady state.
				for i := 0; i < 6; i++ {
					r.Run(globalSwitchStep(m, src))
				}
				switches := globalSwitchStep(m, src)
				allocs := testing.AllocsPerRun(10, func() {
					r.Run(switches)
				})
				if allocs > 1 {
					t.Fatalf("superstep allocates %.1f objects in steady state, want ~0", allocs)
				}
			})
		}
	}
}

// TestRunnerPrefetchParity asserts the §5.4 pre-touch pipeline is a
// pure memory hint: for every worker count, the decided edge list with
// prefetch on is bit-identical to prefetch off.
func TestRunnerPrefetchParity(t *testing.T) {
	src := rng.NewMT19937(4321)
	for trial := 0; trial < 10; trial++ {
		g := gen.GNP(16+rng.IntN(src, 48), 0.2, src)
		if g.M() < 4 {
			continue
		}
		switches := globalBatch(g.M(), src)
		base := append([]graph.Edge(nil), g.Edges()...)
		r0 := switching.NewRunner(base, maxi(len(switches), 1), 1)
		r0.Run(switches)
		r0.Release()
		for _, w := range []int{1, 2, 4, 8} {
			for _, prefetch := range []bool{false, true} {
				E := append([]graph.Edge(nil), g.Edges()...)
				r := switching.NewRunner(E, maxi(len(switches), 1), w)
				r.Prefetch = prefetch
				r.Run(switches)
				if r.Legal != r0.Legal {
					t.Fatalf("workers=%d prefetch=%v: accepted %d, want %d", w, prefetch, r.Legal, r0.Legal)
				}
				for i := range base {
					if E[i] != base[i] {
						t.Fatalf("workers=%d prefetch=%v: edge list diverges at %d", w, prefetch, i)
					}
				}
				r.Release()
			}
		}
	}
}

// TestRunnerReleaseAndRecreate exercises the engine lifecycle: many
// runners created and released in sequence must not accumulate parked
// goroutines.
func TestRunnerReleaseAndRecreate(t *testing.T) {
	src := rng.NewMT19937(777)
	g := gen.GNP(64, 0.2, src)
	switches := globalBatch(g.M(), src)
	before := runtime.NumGoroutine()
	for i := 0; i < 30; i++ {
		E := append([]graph.Edge(nil), g.Edges()...)
		r := switching.NewRunner(E, maxi(len(switches), 1), 4)
		r.Run(switches)
		r.Release()
	}
	// Workers exit asynchronously after the close; poll briefly.
	for i := 0; i < 200; i++ {
		if runtime.NumGoroutine() <= before+3 {
			return
		}
		runtime.Gosched()
	}
	t.Fatalf("goroutines grew from %d to %d across released runners", before, runtime.NumGoroutine())
}
