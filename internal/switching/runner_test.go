package switching_test

import (
	"testing"

	"gesmc/internal/conc"
	"gesmc/internal/digraph"
	"gesmc/internal/gen"
	"gesmc/internal/graph"
	"gesmc/internal/rng"
	"gesmc/internal/switching"
)

// seqUndirected executes switches per Definition 1 on a copy of E with
// a map-backed set: the sequential reference for the undirected
// instantiation, independent of the production hash set.
func seqUndirected(E []graph.Edge, switches []switching.Switch) ([]graph.Edge, int64) {
	out := append([]graph.Edge(nil), E...)
	set := make(map[graph.Edge]struct{}, len(out))
	for _, e := range out {
		set[e] = struct{}{}
	}
	var legal int64
	for _, sw := range switches {
		e1, e2 := out[sw.I], out[sw.J]
		t3, t4 := graph.SwitchTargets(e1, e2, sw.G)
		if t3.IsLoop() || t4.IsLoop() {
			continue
		}
		if _, ok := set[t3]; ok {
			continue
		}
		if _, ok := set[t4]; ok {
			continue
		}
		delete(set, e1)
		delete(set, e2)
		set[t3] = struct{}{}
		set[t4] = struct{}{}
		out[sw.I], out[sw.J] = t3, t4
		legal++
	}
	return out, legal
}

// seqDirected is the directed analogue over arcs.
func seqDirected(A []digraph.Arc, switches []switching.Switch) ([]digraph.Arc, int64) {
	out := append([]digraph.Arc(nil), A...)
	set := make(map[digraph.Arc]struct{}, len(out))
	for _, a := range out {
		set[a] = struct{}{}
	}
	var legal int64
	for _, sw := range switches {
		a1, a2 := out[sw.I], out[sw.J]
		t1, t2 := digraph.SwitchTargets(a1, a2)
		if t1.IsLoop() || t2.IsLoop() {
			continue
		}
		if _, ok := set[t1]; ok {
			continue
		}
		if _, ok := set[t2]; ok {
			continue
		}
		delete(set, a1)
		delete(set, a2)
		set[t1] = struct{}{}
		set[t2] = struct{}{}
		out[sw.I], out[sw.J] = t1, t2
		legal++
	}
	return out, legal
}

func globalBatch(m int, src rng.Source) []switching.Switch {
	perm := rng.Perm(src, m)
	l := rng.IntN(src, m/2+1)
	out := make([]switching.Switch, 0, l)
	for k := 0; k < l; k++ {
		i, j := perm[2*k], perm[2*k+1]
		out = append(out, switching.Switch{I: i, J: j, G: i < j})
	}
	return out
}

func randomArcs(n int, p float64, src rng.Source) []digraph.Arc {
	var arcs []digraph.Arc
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64(src) < p {
				arcs = append(arcs, digraph.MakeArc(graph.Node(u), graph.Node(v)))
			}
		}
	}
	return arcs
}

func TestRunnerUndirectedMatchesSequential(t *testing.T) {
	src := rng.NewMT19937(9001)
	for trial := 0; trial < 25; trial++ {
		g := gen.GNP(12+rng.IntN(src, 40), 0.2, src)
		if g.M() < 4 {
			continue
		}
		switches := globalBatch(g.M(), src)
		wantE, wantLegal := seqUndirected(g.Edges(), switches)
		for _, w := range []int{1, 2, 4, 8} {
			E := append([]graph.Edge(nil), g.Edges()...)
			r := switching.NewRunner(E, maxi(len(switches), 1), w)
			r.Run(switches)
			if r.Legal != wantLegal {
				t.Fatalf("workers=%d: accepted %d, sequential %d", w, r.Legal, wantLegal)
			}
			for i := range wantE {
				if E[i] != wantE[i] {
					t.Fatalf("workers=%d: edge list diverges at %d", w, i)
				}
			}
			if r.Set.Len() != len(E) {
				t.Fatalf("workers=%d: edge set size %d, want %d", w, r.Set.Len(), len(E))
			}
		}
	}
}

func TestRunnerDirectedMatchesSequential(t *testing.T) {
	src := rng.NewMT19937(9002)
	for trial := 0; trial < 25; trial++ {
		arcs := randomArcs(10+rng.IntN(src, 30), 0.2, src)
		if len(arcs) < 4 {
			continue
		}
		switches := globalBatch(len(arcs), src)
		wantA, wantLegal := seqDirected(arcs, switches)
		for _, w := range []int{1, 2, 4, 8} {
			A := append([]digraph.Arc(nil), arcs...)
			r := switching.NewRunner(A, maxi(len(switches), 1), w)
			r.Run(switches)
			if r.Legal != wantLegal {
				t.Fatalf("workers=%d: accepted %d, sequential %d", w, r.Legal, wantLegal)
			}
			for i := range wantA {
				if A[i] != wantA[i] {
					t.Fatalf("workers=%d: arc list diverges at %d", w, i)
				}
			}
		}
	}
}

func TestRunnerPessimisticParity(t *testing.T) {
	// The worst-case scheduler may only change round counts, never the
	// decided lists — for both instantiations.
	src := rng.NewMT19937(9003)
	g, err := gen.SynPldGraph(128, 2.05, src)
	if err != nil {
		t.Fatal(err)
	}
	switches := globalBatch(g.M(), src)

	nat := append([]graph.Edge(nil), g.Edges()...)
	rn := switching.NewRunner(nat, maxi(len(switches), 1), 4)
	rn.Run(switches)

	pes := append([]graph.Edge(nil), g.Edges()...)
	rp := switching.NewRunner(pes, maxi(len(switches), 1), 4)
	rp.Pessimistic = true
	rp.Run(switches)

	if rn.Legal != rp.Legal {
		t.Fatalf("pessimistic accepted %d, natural %d", rp.Legal, rn.Legal)
	}
	for i := range nat {
		if nat[i] != pes[i] {
			t.Fatalf("pessimistic mode diverges at edge %d", i)
		}
	}
	if rp.TotalRounds < rn.TotalRounds {
		t.Fatalf("pessimistic rounds %d < natural %d", rp.TotalRounds, rn.TotalRounds)
	}
}

// TestRoundDriverChain drives the bare round loop with a synthetic
// dependency chain: item k delays until item k-1 publishes. Under the
// natural scheduler with one worker the chain resolves in one round
// (statuses publish immediately, items are visited in order); under the
// pessimistic scheduler every link costs a round barrier, so n items
// need exactly n rounds.
func TestRoundDriverChain(t *testing.T) {
	const n = 17
	run := func(pessimistic bool) *switching.RoundDriver {
		var d switching.RoundDriver
		d.Init(1)
		d.Pessimistic = pessimistic
		status := make([]uint32, n)
		d.Run(n,
			func(_ int, k int32) uint32 {
				if k == 0 || status[k-1] != conc.StatusUndecided {
					return conc.StatusLegal
				}
				return conc.StatusUndecided
			},
			func(k int32, st uint32) { status[k] = st },
		)
		return &d
	}
	nat := run(false)
	if nat.Legal != n || nat.TotalRounds != 1 {
		t.Fatalf("natural: legal=%d rounds=%d, want %d/1", nat.Legal, nat.TotalRounds, n)
	}
	pes := run(true)
	if pes.Legal != n || pes.TotalRounds != n {
		t.Fatalf("pessimistic: legal=%d rounds=%d, want %d/%d", pes.Legal, pes.TotalRounds, n, n)
	}
	if pes.MaxRounds != n || pes.InternalSupersteps != 1 {
		t.Fatalf("pessimistic stats broken: %+v", pes.Stats)
	}
}

func TestStatsSub(t *testing.T) {
	a := switching.Stats{InternalSupersteps: 5, TotalRounds: 9, MaxRounds: 3, Legal: 100}
	b := switching.Stats{InternalSupersteps: 7, TotalRounds: 12, MaxRounds: 4, Legal: 160}
	d := b.Sub(a)
	if d.InternalSupersteps != 2 || d.TotalRounds != 3 || d.Legal != 60 {
		t.Fatalf("bad delta: %+v", d)
	}
	if d.MaxRounds != 4 {
		t.Fatalf("MaxRounds must carry over cumulatively, got %d", d.MaxRounds)
	}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
