// Package switching implements the paper's parallel superstep
// discipline (Algorithm 1) exactly once, generically over the edge
// type, so that every switching chain in the repository — undirected
// (core), directed and bipartite (digraph), and the trade chains
// (curveball) — executes through a single kernel instead of hand-rolled
// copies.
//
// The kernel splits into two layers:
//
//   - RoundDriver (rounds.go): the chain-agnostic round loop of
//     Algorithm 1's phase 2 — undecided lists, per-worker delay
//     buffers, cache-line-padded legal counters, the pessimistic
//     worst-case scheduler of Theorems 2-3 (decisions published only at
//     round barriers), and the first-round/later-rounds timing split of
//     Figure 9. Any batch of items whose decisions may depend on
//     earlier items' decisions can run through it.
//
//   - Runner[E] (runner.go): the edge-switch instantiation — the
//     dependency-table phases (tuple registration, round-based
//     decisions, erase/insert application, compaction) over a
//     concurrent edge set, parameterized by the 64-bit edge encoding E.
//     graph.Edge (canonical undirected edges) and digraph.Arc
//     (orientation-preserving directed arcs) both instantiate it; the
//     only chain-specific ingredient is the Targets method computing
//     the two target edges of a switch.
//
// The curveball package plugs a third decision kind into the
// RoundDriver: disjoint-neighborhood trades whose per-superstep edge
// ownership discipline makes every trade decidable in the first round
// (see DESIGN.md §4).
package switching

// Switch is one edge switch σ = (i, j, g): two edge-list indices plus a
// direction bit (Definition 1). Directed chains ignore the direction
// bit: exchanging tails instead of heads yields the same unordered pair
// of target arcs.
type Switch struct {
	I, J uint32
	G    bool
}

// EdgeKind constrains the 64-bit edge encodings the kernel is generic
// over. Targets computes the two target edges of the switch (e, other,
// g) — the function τ of Definition 1 for undirected edges, the head
// exchange for directed arcs.
type EdgeKind[E any] interface {
	~uint64
	Targets(other E, g bool) (E, E)
}

// isLoop reports whether both endpoints of e coincide. Canonical edges
// and directed arcs pack their endpoints identically (32 bits each), so
// one implementation serves every instantiation.
func isLoop[E EdgeKind[E]](e E) bool {
	x := uint64(e)
	return uint32(x>>32) == uint32(x)
}
