package switching

import (
	"gesmc/internal/conc"
	"gesmc/internal/graph"
)

// pipelineDepth is the batch size of the §5.4-style software pipeline
// in the register and apply phases: hash buckets of the next switches
// are touched ahead of the operations that probe them. Touching is only
// a memory hint — staleness cannot affect correctness, exactly as with
// hardware prefetches.
const pipelineDepth = 8

// Runner executes supersteps of source-independent switches in parallel
// (Algorithm 1, ParallelSuperstep), generically over the edge encoding:
// Runner[graph.Edge] is the paper's undirected kernel, Runner[digraph.Arc]
// the directed/bipartite one. It owns the concurrent edge set and the
// dependency table, both reused across supersteps; the round loop,
// pessimistic scheduler, and padded counters come from the embedded
// RoundDriver, so every instantiation gets identical scheduling and
// observability. All phases dispatch on the driver's persistent worker
// gang through function values created once at construction, so a
// steady-state superstep performs zero heap allocations (asserted by
// the allocation-regression test).
//
// Semantics refinement over the printed pseudocode (see DESIGN.md §2):
// a switch whose target coincides with one of its own source edges is
// decided illegal, matching Definition 1 exactly ("already exists in
// E"). The printed Algorithm 1 would accept such switches as no-ops;
// both choices yield the same graphs, but ours additionally makes the
// edge list bit-identical to sequential execution, which the
// differential tests exploit.
type Runner[E EdgeKind[E]] struct {
	RoundDriver

	// E is the authoritative edge (or arc) list, rewired in place.
	E   []E
	Set *conc.EdgeSet

	// Prefetch enables the §5.4 pre-touch pipeline in every phase:
	// batched bucket touches ahead of the phase-1 tuple stores and the
	// phase-3 applies, and the round driver's decide-cursor pre-touch.
	// Results are bit-identical with the pipeline on or off.
	Prefetch bool

	// Veto is the local-constraint hook of the constraint subsystem:
	// when non-nil, a switch whose (sources, targets) it reports true
	// for is decided illegal. The hook runs concurrently from every
	// worker and must be a pure function of its arguments — all four
	// are pre-superstep snapshot values, so vetoes are deterministic
	// and constrained runs stay bit-identical for every worker count.
	Veto func(e1, e2, t3, t4 E) bool

	table    *conc.DepTable
	scratch  []graph.Edge
	switches []Switch
	vetoTot  []paddedCounter

	// Phase bodies and driver hooks, created once so supersteps
	// allocate nothing.
	phase1Fn   func(worker, lo, hi int)
	eraseFn    func(worker, lo, hi int)
	insertFn   func(worker, lo, hi int)
	snapshotFn func(worker, lo, hi int)
	clearFn    func(worker, lo, hi int)
	rebuildFn  func(worker, lo, hi int)
	decideFn   Decide
	publishFn  Publish
	preTouchFn PreTouch

	// Fused dispatch plans, built once; only the pass lengths mutate
	// per superstep. applyPlan runs phase 3's erase and insert on a
	// single gang wake (the erase-before-insert order is preserved by
	// the plan's sub-barrier); compactPlan collapses the three
	// compaction sweeps — snapshot, clear (with the serial counter
	// reset as its barrier hook), rebuild — into one dispatch.
	applyPlan   conc.FusedPlan
	compactPlan conc.FusedPlan
}

// NewRunner prepares a runner for edge list E, supporting supersteps of
// up to maxSwitches switches. The edge set is built in parallel with
// workers goroutines (the persistent gang owned by the embedded
// driver). Call Release when done with the runner to park the gang.
func NewRunner[E EdgeKind[E]](edges []E, maxSwitches, workers int) *Runner[E] {
	r := &Runner[E]{
		E:     edges,
		Set:   conc.NewEdgeSet(len(edges) * 2),
		table: conc.NewDepTable(maxSwitches),
	}
	r.RoundDriver.Init(workers)
	r.vetoTot = make([]paddedCounter, r.Workers())
	// A 1-worker gang drives the table and set from a single goroutine:
	// drop the CAS/XCHG write paths for plain stores.
	seq := r.Workers() == 1
	r.table.SetSequential(seq)
	r.Set.SetSequential(seq)
	r.pool.Blocks(len(edges), func(_, lo, hi int) {
		for _, e := range edges[lo:hi] {
			r.Set.InsertUnique(graph.Edge(e))
		}
	})
	r.phase1Fn = r.phase1
	r.eraseFn = r.phase3Erase
	r.insertFn = r.phase3Insert
	r.snapshotFn = r.compactSnapshot
	r.clearFn = r.compactClear
	r.rebuildFn = r.compactRebuild
	r.decideFn = r.decideItem
	r.publishFn = r.publishItem
	r.preTouchFn = r.preTouchItem
	r.applyPlan.Passes = []conc.FusedPass{
		{Fn: r.eraseFn},
		{Fn: r.insertFn},
	}
	r.compactPlan.Passes = []conc.FusedPass{
		{Fn: r.snapshotFn},
		{Fn: r.clearFn, After: r.Set.ResetCounts},
		{Fn: r.rebuildFn},
	}
	return r
}

// Run performs one superstep: the switches must be free of source
// dependencies (each edge index appears at most once). The edge list
// and edge set are updated to the post-superstep state.
func (r *Runner[E]) Run(switches []Switch) {
	n := len(switches)
	if n == 0 {
		return
	}
	r.switches = switches
	t := r.table
	t.Reset(n)

	// Phases 1+2 on one gang wake (Algorithm 1, lines 1-35): the fused
	// dispatch runs the tuple registration sweep (keys[4k]=e1, +1=e2,
	// +2=e3, +3=e4, deterministic slots which decide() reads back) as
	// pass 0, sub-barriers, then starts the first decide round; later
	// rounds dispatch individually. Statuses publish into the
	// dependency table, the linearization point observed by dependent
	// switches.
	if r.Prefetch {
		r.PreTouch = r.preTouchFn
	} else {
		r.PreTouch = nil
	}
	r.RoundDriver.RunFused(n, r.phase1Fn, n, r.decideFn, r.publishFn)
	for i := range r.vetoTot {
		r.Stats.Vetoed += r.vetoTot[i].v
		r.vetoTot[i].v = 0
	}

	// Phase 3: apply the accepted switches to the edge set, erasures
	// before insertions (sub-barrier) so an edge that is erased by one
	// switch and re-inserted by another nets out present.
	r.applyPlan.Passes[0].N = n
	r.applyPlan.Passes[1].N = n
	r.pool.Fused(&r.applyPlan)
	if r.Set.NeedsCompact() {
		if cap(r.scratch) < len(r.E) {
			r.scratch = make([]graph.Edge, len(r.E))
		}
		r.compactPlan.Passes[0].N = len(r.E)
		r.compactPlan.Passes[1].N = r.Set.Buckets()
		r.compactPlan.Passes[2].N = len(r.E)
		r.pool.Fused(&r.compactPlan)
	}
	r.switches = nil
}

// phase1 registers the dependency tuples of switches [lo, hi). With
// Prefetch on, the table buckets of a batch are touched before the
// batch's stores (the targets are recomputed in the store pass — two
// cheap ALU evaluations beat spilling them through memory).
func (r *Runner[E]) phase1(_, lo, hi int) {
	t := r.table
	sw := r.switches
	if r.Prefetch {
		for base := lo; base < hi; base += pipelineDepth {
			bh := base + pipelineDepth
			if bh > hi {
				bh = hi
			}
			for k := base; k < bh; k++ {
				s := sw[k]
				e1 := r.E[s.I]
				e2 := r.E[s.J]
				t3, t4 := e1.Targets(e2, s.G)
				t.Touch(graph.Edge(e1))
				t.Touch(graph.Edge(e2))
				t.Touch(graph.Edge(t3))
				t.Touch(graph.Edge(t4))
			}
			for k := base; k < bh; k++ {
				r.storeTuples(k)
			}
		}
		return
	}
	for k := lo; k < hi; k++ {
		r.storeTuples(k)
	}
}

func (r *Runner[E]) storeTuples(k int) {
	sw := r.switches[k]
	t := r.table
	e1 := r.E[sw.I]
	e2 := r.E[sw.J]
	t3, t4 := e1.Targets(e2, sw.G)
	t.Store(k, 0, graph.Edge(e1), conc.KindErase)
	t.Store(k, 1, graph.Edge(e2), conc.KindErase)
	t.Store(k, 2, graph.Edge(t3), conc.KindInsert)
	t.Store(k, 3, graph.Edge(t4), conc.KindInsert)
}

// decideItem adapts decide to the driver's item signature.
func (r *Runner[E]) decideItem(worker int, k int32) uint32 {
	return r.decide(r.switches[k], int(k), worker)
}

// publishItem publishes a decision into the dependency table.
func (r *Runner[E]) publishItem(k int32, st uint32) {
	r.table.SetStatus(int(k), st)
}

// preTouchItem pre-touches the table chains and edge-set buckets that
// deciding switch k will probe (its two target edges).
func (r *Runner[E]) preTouchItem(_ int, k int32) {
	t := r.table
	base := 4 * int(k)
	t3 := graph.Edge(t.Key(base + 2))
	t4 := graph.Edge(t.Key(base + 3))
	t.Touch(t3)
	t.Touch(t4)
	r.Set.Touch(t3)
	r.Set.Touch(t4)
}

// phase3Erase applies the accepted erasures of switches [lo, hi).
func (r *Runner[E]) phase3Erase(_, lo, hi int) {
	t := r.table
	pf := r.Prefetch
	for k := lo; k < hi; k++ {
		if pf && k+pipelineDepth < hi && t.StatusOf(k+pipelineDepth) == conc.StatusLegal {
			b := 4 * (k + pipelineDepth)
			r.Set.Touch(graph.Edge(t.Key(b)))
			r.Set.Touch(graph.Edge(t.Key(b + 1)))
		}
		if t.StatusOf(k) != conc.StatusLegal {
			continue
		}
		base := 4 * k
		r.Set.EraseUnique(graph.Edge(t.Key(base)))
		r.Set.EraseUnique(graph.Edge(t.Key(base + 1)))
	}
}

// phase3Insert applies the accepted insertions of switches [lo, hi).
func (r *Runner[E]) phase3Insert(_, lo, hi int) {
	t := r.table
	pf := r.Prefetch
	for k := lo; k < hi; k++ {
		if pf && k+pipelineDepth < hi && t.StatusOf(k+pipelineDepth) == conc.StatusLegal {
			b := 4 * (k + pipelineDepth)
			r.Set.Touch(graph.Edge(t.Key(b + 2)))
			r.Set.Touch(graph.Edge(t.Key(b + 3)))
		}
		if t.StatusOf(k) != conc.StatusLegal {
			continue
		}
		base := 4 * k
		r.Set.InsertUnique(graph.Edge(t.Key(base + 2)))
		r.Set.InsertUnique(graph.Edge(t.Key(base + 3)))
	}
}

// compactSnapshot copies the authoritative edge list into the scratch
// buffer (phase bodies cannot take parameters, so the buffer length is
// re-derived from E).
func (r *Runner[E]) compactSnapshot(_, lo, hi int) {
	s := r.scratch[:len(r.E)]
	for i := lo; i < hi; i++ {
		s[i] = graph.Edge(r.E[i])
	}
}

func (r *Runner[E]) compactClear(_, lo, hi int) {
	r.Set.ClearRange(lo, hi)
}

func (r *Runner[E]) compactRebuild(_, lo, hi int) {
	s := r.scratch[:len(r.E)]
	for i := lo; i < hi; i++ {
		r.Set.InsertUnique(s[i])
	}
}

// decide attempts to decide switch k (Algorithm 1, lines 10-33) and
// returns its resulting status. Legal switches rewire the edge list
// immediately; the driver publishes the status (immediately, or at the
// round barrier under the pessimistic scheduler).
func (r *Runner[E]) decide(sw Switch, k int, worker int) uint32 {
	t := r.table
	base := 4 * k
	e1 := E(t.Key(base))
	e2 := E(t.Key(base + 1))
	t3 := E(t.Key(base + 2))
	t4 := E(t.Key(base + 3))

	st := conc.StatusLegal
	if isLoop(t3) || isLoop(t4) || e1 == e2 ||
		t3 == e1 || t3 == e2 || t4 == e1 || t4 == e2 {
		// Loops, or targets equal to own sources ("already exists in
		// E" per Definition 1); e1 == e2 can only arise from a caller
		// bug but is rejected defensively.
		st = conc.StatusIllegal
	} else if r.Veto != nil && r.Veto(e1, e2, t3, t4) {
		// Local constraint veto: snapshot-determined, so the decision
		// is final in the first round and identical on every schedule.
		r.vetoTot[worker].v++
		st = conc.StatusIllegal
	} else {
		// Issue the four bucket loads the loop below depends on before
		// walking any of them: the two table chains and the two set
		// probes then overlap their leading cache misses instead of
		// serializing four memory round-trips.
		t.Touch(graph.Edge(t3))
		t.Touch(graph.Edge(t4))
		r.Set.Touch(graph.Edge(t3))
		r.Set.Touch(graph.Edge(t4))
		delay := false
		for _, target := range [2]E{t3, t4} {
			key := graph.Edge(target)
			// One chain walk answers both dependency queries: the
			// switch erasing the target and its minimum inserter.
			p, pOK, q, sq, qOK := t.Probe(key)
			if pOK {
				if p == k {
					// Own source: already handled above; unreachable.
					st = conc.StatusIllegal
					break
				}
				if k < p {
					// Erased only by a later switch: the target
					// exists at σ_k's turn (line 19, k < p).
					st = conc.StatusIllegal
					break
				}
				switch t.StatusOf(p) {
				case conc.StatusIllegal:
					// σ_p did not erase the target after all.
					st = conc.StatusIllegal
				case conc.StatusUndecided:
					delay = true // line 24
				}
				if st == conc.StatusIllegal {
					break
				}
			} else if r.Set.Contains(key) {
				// In the graph and not sourced by this superstep:
				// the implicit (e, ∞, erase, illegal) tuple.
				st = conc.StatusIllegal
				break
			}
			if qOK && q < k {
				if sq == conc.StatusLegal {
					st = conc.StatusIllegal // line 21
					break
				}
				if sq == conc.StatusUndecided {
					delay = true // line 26
				}
			}
		}
		if st != conc.StatusIllegal && delay {
			return conc.StatusUndecided // re-examined next round
		}
	}

	if st == conc.StatusLegal {
		r.E[sw.I] = t3
		r.E[sw.J] = t4
	}
	return st
}

// Accepted reports whether switch k of the superstep most recently
// executed by Run was decided legal. Valid until the next Run call
// resets the dependency table.
func (r *Runner[E]) Accepted(k int) bool {
	return r.table.StatusOf(k) == conc.StatusLegal
}

// Rollback undoes accepted switch k of the superstep most recently
// executed by Run: the source edges return to the edge list and the
// edge set, the targets are erased, and the switch is re-marked
// illegal. It is the primitive of the speculate-then-recertify mode
// for global constraints (constraint.Recertify) and must be applied in
// reverse commit order — undoing the highest accepted k first — so
// that each undo reverts exactly the last step of the equivalent
// sequential application. Single-goroutine, between supersteps only.
func (r *Runner[E]) Rollback(k int, sw Switch) {
	t := r.table
	base := 4 * k
	e1 := E(t.Key(base))
	e2 := E(t.Key(base + 1))
	t3 := E(t.Key(base + 2))
	t4 := E(t.Key(base + 3))
	r.Set.EraseUnique(graph.Edge(t3))
	r.Set.EraseUnique(graph.Edge(t4))
	r.Set.InsertUnique(graph.Edge(e1))
	r.Set.InsertUnique(graph.Edge(e2))
	r.E[sw.I] = e1
	r.E[sw.J] = e2
	t.SetStatus(k, conc.StatusIllegal)
	r.Stats.Legal--
	r.Stats.RolledBack++
}
