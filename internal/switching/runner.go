package switching

import (
	"gesmc/internal/conc"
	"gesmc/internal/graph"
)

// Runner executes supersteps of source-independent switches in parallel
// (Algorithm 1, ParallelSuperstep), generically over the edge encoding:
// Runner[graph.Edge] is the paper's undirected kernel, Runner[digraph.Arc]
// the directed/bipartite one. It owns the concurrent edge set and the
// dependency table, both reused across supersteps; the round loop,
// pessimistic scheduler, and padded counters come from the embedded
// RoundDriver, so every instantiation gets identical scheduling and
// observability.
//
// Semantics refinement over the printed pseudocode (see DESIGN.md §2):
// a switch whose target coincides with one of its own source edges is
// decided illegal, matching Definition 1 exactly ("already exists in
// E"). The printed Algorithm 1 would accept such switches as no-ops;
// both choices yield the same graphs, but ours additionally makes the
// edge list bit-identical to sequential execution, which the
// differential tests exploit.
type Runner[E EdgeKind[E]] struct {
	RoundDriver

	// E is the authoritative edge (or arc) list, rewired in place.
	E   []E
	Set *conc.EdgeSet

	table   *conc.DepTable
	scratch []graph.Edge // compaction buffer, lazily allocated
}

// NewRunner prepares a runner for edge list E, supporting supersteps of
// up to maxSwitches switches. The edge set is built in parallel with
// workers goroutines.
func NewRunner[E EdgeKind[E]](edges []E, maxSwitches, workers int) *Runner[E] {
	set := conc.NewEdgeSet(len(edges) * 2)
	conc.Blocks(len(edges), workers, func(_, lo, hi int) {
		for _, e := range edges[lo:hi] {
			set.InsertUnique(graph.Edge(e))
		}
	})
	r := &Runner[E]{
		E:     edges,
		Set:   set,
		table: conc.NewDepTable(maxSwitches),
	}
	r.RoundDriver.Init(workers)
	return r
}

// Run performs one superstep: the switches must be free of source
// dependencies (each edge index appears at most once). The edge list
// and edge set are updated to the post-superstep state.
func (r *Runner[E]) Run(switches []Switch) {
	n := len(switches)
	if n == 0 {
		return
	}
	w := r.workers
	t := r.table
	t.Reset(n, w)

	// Phase 1 (Algorithm 1, lines 1-6): store the four dependency
	// tuples of every switch. Tuple slots are deterministic (4k..4k+3):
	// keys[4k]=e1, +1=e2, +2=e3, +3=e4, which decide() reads back.
	conc.Blocks(n, w, func(_, lo, hi int) {
		for k := lo; k < hi; k++ {
			sw := switches[k]
			e1 := r.E[sw.I]
			e2 := r.E[sw.J]
			t3, t4 := e1.Targets(e2, sw.G)
			t.Store(k, 0, graph.Edge(e1), conc.KindErase)
			t.Store(k, 1, graph.Edge(e2), conc.KindErase)
			t.Store(k, 2, graph.Edge(t3), conc.KindInsert)
			t.Store(k, 3, graph.Edge(t4), conc.KindInsert)
		}
	})

	// Phase 2 (lines 7-35): decide switches in rounds via the shared
	// driver; statuses publish into the dependency table, which is the
	// linearization point observed by dependent switches.
	r.RoundDriver.Run(n,
		func(_ int, k int32) uint32 { return r.decide(switches[k], int(k)) },
		func(k int32, st uint32) { t.Status[int(k)].Store(st) },
	)

	// Phase 3: apply the accepted switches to the edge set. Erasures
	// first, then insertions, so an edge that is erased by one switch
	// and re-inserted by another nets out present.
	conc.Blocks(n, w, func(_, lo, hi int) {
		for k := lo; k < hi; k++ {
			if t.Status[k].Load() != conc.StatusLegal {
				continue
			}
			base := 4 * k
			r.Set.EraseUnique(graph.Edge(t.Key(base)))
			r.Set.EraseUnique(graph.Edge(t.Key(base + 1)))
		}
	})
	conc.Blocks(n, w, func(_, lo, hi int) {
		for k := lo; k < hi; k++ {
			if t.Status[k].Load() != conc.StatusLegal {
				continue
			}
			base := 4 * k
			r.Set.InsertUnique(graph.Edge(t.Key(base + 2)))
			r.Set.InsertUnique(graph.Edge(t.Key(base + 3)))
		}
	})
	if r.Set.NeedsCompact() {
		if cap(r.scratch) < len(r.E) {
			r.scratch = make([]graph.Edge, len(r.E))
		}
		s := r.scratch[:len(r.E)]
		conc.Blocks(len(r.E), w, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				s[i] = graph.Edge(r.E[i])
			}
		})
		r.Set.Compact(s, w)
	}
}

// decide attempts to decide switch k (Algorithm 1, lines 10-33) and
// returns its resulting status. Legal switches rewire the edge list
// immediately; the driver publishes the status (immediately, or at the
// round barrier under the pessimistic scheduler).
func (r *Runner[E]) decide(sw Switch, k int) uint32 {
	t := r.table
	base := 4 * k
	e1 := E(t.Key(base))
	e2 := E(t.Key(base + 1))
	t3 := E(t.Key(base + 2))
	t4 := E(t.Key(base + 3))

	st := conc.StatusLegal
	if isLoop(t3) || isLoop(t4) || e1 == e2 ||
		t3 == e1 || t3 == e2 || t4 == e1 || t4 == e2 {
		// Loops, or targets equal to own sources ("already exists in
		// E" per Definition 1); e1 == e2 can only arise from a caller
		// bug but is rejected defensively.
		st = conc.StatusIllegal
	} else {
		delay := false
		for _, target := range [2]E{t3, t4} {
			key := graph.Edge(target)
			if p, ok := t.EraseTuple(key); ok {
				if p == k {
					// Own source: already handled above; unreachable.
					st = conc.StatusIllegal
					break
				}
				if k < p {
					// Erased only by a later switch: the target
					// exists at σ_k's turn (line 19, k < p).
					st = conc.StatusIllegal
					break
				}
				switch t.Status[p].Load() {
				case conc.StatusIllegal:
					// σ_p did not erase the target after all.
					st = conc.StatusIllegal
				case conc.StatusUndecided:
					delay = true // line 24
				}
				if st == conc.StatusIllegal {
					break
				}
			} else if r.Set.Contains(key) {
				// In the graph and not sourced by this superstep:
				// the implicit (e, ∞, erase, illegal) tuple.
				st = conc.StatusIllegal
				break
			}
			if q, sq, ok := t.MinInsert(key); ok && q < k {
				if sq == conc.StatusLegal {
					st = conc.StatusIllegal // line 21
					break
				}
				if sq == conc.StatusUndecided {
					delay = true // line 26
				}
			}
		}
		if st != conc.StatusIllegal && delay {
			return conc.StatusUndecided // re-examined next round
		}
	}

	if st == conc.StatusLegal {
		r.E[sw.I] = t3
		r.E[sw.J] = t4
	}
	return st
}
