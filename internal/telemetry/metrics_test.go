package telemetry

import (
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_seconds", "test", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.005, 0.05, 0.5, 0.05} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`t_seconds_bucket{le="0.001"} 1`,
		`t_seconds_bucket{le="0.01"} 2`,
		`t_seconds_bucket{le="0.1"} 4`,
		`t_seconds_bucket{le="+Inf"} 5`,
		`t_seconds_count 5`,
		`# TYPE t_seconds histogram`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// promLine accepts the exposition-format lines this registry emits.
var promLine = regexp.MustCompile(`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.e+-]+|\+Inf|NaN))$`)

func TestExpositionFormatValid(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a counter").Add(3)
	r.Histogram("b_seconds", "a histogram", LatencyBuckets).Observe(0.02)
	r.GaugeFunc("c_gauge", "a gauge", func() float64 { return 1.5 })
	r.CounterFunc("d_total", "a func counter", func() float64 { return 9 })
	r.LabeledFunc("e_state", "a labeled gauge", "gauge", func(emit func(string, float64)) {
		emit(Labels("shard", "s-1", "state", "closed"), 1)
		emit(Labels("shard", "s-1", "state", "open"), 0)
	})
	r.CounterVec("f_total", "a vec").With(Labels("to", "open")).Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimRight(b.String(), "\n"), "\n") {
		if !promLine.MatchString(line) {
			t.Errorf("invalid exposition line: %q", line)
		}
	}
	if !strings.Contains(b.String(), `e_state{shard="s-1",state="closed"} 1`) {
		t.Errorf("labeled gauge series missing:\n%s", b.String())
	}
	if !strings.Contains(b.String(), `f_total{to="open"} 1`) {
		t.Errorf("vec counter series missing:\n%s", b.String())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc_seconds", "", LatencyBuckets)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%100) * 1e-4)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("Count = %d, want %d", got, workers*per)
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), "conc_seconds_count 8000") {
		t.Errorf("count series wrong:\n%s", b.String())
	}
}

func TestNilInstrumentsNoOp(t *testing.T) {
	var r *Registry
	h := r.Histogram("x", "", LatencyBuckets)
	c := r.Counter("y", "")
	v := r.CounterVec("z", "")
	r.CounterFunc("f", "", func() float64 { t.Fatal("must not be called"); return 0 })
	r.GaugeFunc("g", "", func() float64 { t.Fatal("must not be called"); return 0 })
	r.LabeledFunc("l", "", "gauge", func(func(string, float64)) { t.Fatal("must not be called") })

	h.Observe(1)
	h.ObserveDuration(0)
	c.Inc()
	c.Add(5)
	v.With("a=\"b\"").Inc()
	if h.Count() != 0 || c.Value() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate metric name")
		}
	}()
	r := NewRegistry()
	r.Counter("dup_total", "")
	r.Counter("dup_total", "")
}
