package telemetry

import (
	"context"
	"fmt"
	"testing"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTracer()
	ctx, root := tr.StartSpan(context.Background(), "root")
	if root.Parent != 0 {
		t.Fatalf("root parent = %x, want 0", root.Parent)
	}
	_, child := tr.StartSpan(ctx, "child")
	if child.Trace != root.Trace {
		t.Fatalf("child trace %x != root trace %x", child.Trace, root.Trace)
	}
	if child.Parent != root.ID {
		t.Fatalf("child parent %x != root id %x", child.Parent, root.ID)
	}
	child.SetAttr("k", "v")
	child.SetInt("n", 7)
	child.End()
	root.End()

	id := TraceIDString(ctx)
	if id == "" {
		t.Fatal("TraceIDString empty on traced context")
	}
	spans, ok := tr.Dump(id)
	if !ok || len(spans) != 2 {
		t.Fatalf("Dump(%q) = %d spans, ok=%v; want 2, true", id, len(spans), ok)
	}
	// Completion order: child ended first.
	if spans[0].Name != "child" || spans[1].Name != "root" {
		t.Fatalf("span order = %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].Attrs["k"] != "v" || spans[0].Attrs["n"] != "7" {
		t.Fatalf("child attrs = %v", spans[0].Attrs)
	}
	if spans[1].ParentID != "" {
		t.Fatalf("root ParentID = %q, want empty", spans[1].ParentID)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	tr := NewTracer()
	ctx, sp := tr.StartSpan(context.Background(), "upstream")
	hv := HeaderValue(ctx)
	trace, parent, ok := ParseTraceHeader(hv)
	if !ok {
		t.Fatalf("ParseTraceHeader(%q) not ok", hv)
	}
	if trace != sp.Trace || parent != sp.ID {
		t.Fatalf("round trip = (%x, %x), want (%x, %x)", trace, parent, sp.Trace, sp.ID)
	}

	// A downstream tracer joining the header extends the same trace.
	down := NewTracer()
	dctx := down.Join(context.Background(), trace, parent)
	if got := TraceIDString(dctx); got != TraceIDString(ctx) {
		t.Fatalf("joined trace id %q != upstream %q", got, TraceIDString(ctx))
	}
	_, child := down.StartSpan(dctx, "downstream")
	if child.Trace != sp.Trace || child.Parent != sp.ID {
		t.Fatalf("joined child = (%x parent %x), want (%x parent %x)", child.Trace, child.Parent, sp.Trace, sp.ID)
	}

	for _, bad := range []string{"", "zzz", "123", "0-5", "12-zz", "-"} {
		if _, _, ok := ParseTraceHeader(bad); ok {
			t.Errorf("ParseTraceHeader(%q) ok, want malformed", bad)
		}
	}
}

func TestTracerEviction(t *testing.T) {
	tr := NewTracer()
	var first string
	for i := 0; i < maxTraces+1; i++ {
		ctx, sp := tr.StartSpan(context.Background(), "op")
		sp.End()
		if i == 0 {
			first = TraceIDString(ctx)
		}
	}
	if _, ok := tr.Dump(first); ok {
		t.Fatal("oldest trace should have been evicted")
	}
	tr.mu.Lock()
	n := len(tr.traces)
	tr.mu.Unlock()
	if n > maxTraces {
		t.Fatalf("store holds %d traces, cap %d", n, maxTraces)
	}
}

func TestIDUniqueness(t *testing.T) {
	seen := make(map[uint64]bool, 10000)
	for i := 0; i < 10000; i++ {
		id := newID()
		if id == 0 || seen[id] {
			t.Fatalf("id %x duplicate or zero at i=%d", id, i)
		}
		seen[id] = true
	}
}

func TestNilTracerNoOp(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.StartSpan(context.Background(), "op")
	if sp != nil {
		t.Fatal("nil tracer must return nil span")
	}
	sp.SetAttr("k", "v")
	sp.End()
	if got := TraceIDString(ctx); got != "" {
		t.Fatalf("TraceIDString = %q on untraced context", got)
	}
	if got := HeaderValue(ctx); got != "" {
		t.Fatalf("HeaderValue = %q on untraced context", got)
	}
	if ctx2 := tr.Join(ctx, 1, 2); ctx2 != ctx {
		t.Fatal("nil Join must pass the context through")
	}
	if _, ok := tr.Dump(fmt.Sprintf("%016x", 42)); ok {
		t.Fatal("nil Dump must report not found")
	}
}
