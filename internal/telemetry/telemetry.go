// Package telemetry is the zero-dependency observability layer of the
// gesmc serving stack: request tracing (lightweight spans threaded
// through context and propagated coordinator→shard over an HTTP
// header), a counter/gauge/histogram registry with Prometheus text
// exposition, and slog conventions for structured request logging.
//
// Everything is nil-safe by design: a disabled tier holds nil *Tracer
// and *Registry values and every method on nil receivers (and the nil
// *Span / *Histogram / *Counter instruments they hand out) is a no-op.
// Call sites therefore never branch on "telemetry enabled" — the
// instruments themselves carry the on/off decision, which is what
// keeps the disabled path at zero cost and the enabled path within the
// benched ≤3% ns/switch overhead budget.
package telemetry

import (
	"log/slog"
)

// Logger returns l, or a discard logger when l is nil, so holders can
// log unconditionally.
func Logger(l *slog.Logger) *slog.Logger {
	if l == nil {
		return slog.New(slog.DiscardHandler)
	}
	return l
}
