package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// LatencyBuckets is the shared fixed-bucket policy for every latency
// histogram in the stack: a 1-2.5-5 ladder from 1µs (a warm pool
// checkout) to 60s (a large-graph burn-in), 24 bounds plus +Inf. One
// policy everywhere keeps cross-histogram ratios (queue wait vs engine
// time) directly comparable at scrape time.
var LatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60,
}

// Registry holds a process tier's metric families and renders them in
// Prometheus text exposition format (version 0.0.4). Families expose in
// registration order. A nil *Registry is the disabled tier: every
// constructor returns a nil instrument whose methods no-op.
type Registry struct {
	mu      sync.Mutex
	entries []exposer
	names   map[string]bool
}

// exposer is one metric family's contribution to a scrape.
type exposer interface {
	expose(w *bufio.Writer)
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) register(name string, e exposer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic("telemetry: duplicate metric " + name)
	}
	r.names[name] = true
	r.entries = append(r.entries, e)
}

// WritePrometheus renders every registered family in text exposition
// format. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	entries := make([]exposer, len(r.entries))
	copy(entries, r.entries)
	r.mu.Unlock()
	for _, e := range entries {
		e.expose(bw)
	}
	return bw.Flush()
}

func header(w *bufio.Writer, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, strings.NewReplacer("\\", `\\`, "\n", `\n`).Replace(help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Labels renders a label set for CounterVec.With and LabeledFunc emit
// callbacks: Labels("shard", "a", "state", "open") → `shard="a",state="open"`.
// Values are escaped per the exposition format.
func Labels(kv ...string) string {
	if len(kv)%2 != 0 {
		panic("telemetry: Labels requires key/value pairs")
	}
	esc := strings.NewReplacer("\\", `\\`, "\n", `\n`, `"`, `\"`)
	var b strings.Builder
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(esc.Replace(kv[i+1]))
		b.WriteString(`"`)
	}
	return b.String()
}

// Counter is a monotonically increasing metric. The zero-cost disabled
// form is a nil pointer.
type Counter struct {
	name, help, labels string
	v                  atomic.Int64
}

// Counter registers a counter family with one unlabeled series.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{name: name, help: help}
	r.register(name, c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil || n == 0 {
		return
	}
	c.v.Add(n)
}

// Value reads the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) expose(w *bufio.Writer) {
	header(w, c.name, c.help, "counter")
	if c.labels == "" {
		fmt.Fprintf(w, "%s %d\n", c.name, c.v.Load())
	} else {
		fmt.Fprintf(w, "%s{%s} %d\n", c.name, c.labels, c.v.Load())
	}
}

// CounterVec is a counter family with one series per label set.
type CounterVec struct {
	name, help string

	mu       sync.Mutex
	children []*Counter
	index    map[string]*Counter
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string) *CounterVec {
	if r == nil {
		return nil
	}
	v := &CounterVec{name: name, help: help, index: make(map[string]*Counter)}
	r.register(name, v)
	return v
}

// With returns the child counter for the rendered label set (use
// Labels), creating it on first touch. Nil-safe.
func (v *CounterVec) With(labels string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.index[labels]; ok {
		return c
	}
	c := &Counter{name: v.name, labels: labels}
	v.index[labels] = c
	v.children = append(v.children, c)
	return c
}

func (v *CounterVec) expose(w *bufio.Writer) {
	v.mu.Lock()
	children := make([]*Counter, len(v.children))
	copy(children, v.children)
	v.mu.Unlock()
	header(w, v.name, v.help, "counter")
	sort.Slice(children, func(i, j int) bool { return children[i].labels < children[j].labels })
	for _, c := range children {
		fmt.Fprintf(w, "%s{%s} %d\n", v.name, c.labels, c.v.Load())
	}
}

// funcMetric exposes series computed at scrape time from state the
// process already maintains (service atomics, pool snapshots, breaker
// states) — no double bookkeeping on hot paths.
type funcMetric struct {
	name, help, typ string
	collect         func(emit func(labels string, v float64))
}

func (f *funcMetric) expose(w *bufio.Writer) {
	header(w, f.name, f.help, f.typ)
	f.collect(func(labels string, v float64) {
		if labels == "" {
			fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(v))
		} else {
			fmt.Fprintf(w, "%s{%s} %s\n", f.name, labels, formatFloat(v))
		}
	})
}

// CounterFunc registers a counter whose single series is read at scrape
// time.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, &funcMetric{name: name, help: help, typ: "counter",
		collect: func(emit func(string, float64)) { emit("", fn()) }})
}

// GaugeFunc registers a gauge whose single series is read at scrape
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, &funcMetric{name: name, help: help, typ: "gauge",
		collect: func(emit func(string, float64)) { emit("", fn()) }})
}

// LabeledFunc registers a family (typ "counter" or "gauge") whose
// series are enumerated at scrape time; collect calls emit once per
// series with a Labels-rendered label set.
func (r *Registry) LabeledFunc(name, help, typ string, collect func(emit func(labels string, v float64))) {
	if r == nil {
		return
	}
	r.register(name, &funcMetric{name: name, help: help, typ: typ, collect: collect})
}

// atomicFloat is a float64 with atomic add, for histogram sums.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram is a fixed-bucket latency histogram. Observations are two
// atomic adds plus a bounded linear bucket scan — cheap enough for
// per-sample hot paths. Bounds must be sorted ascending; the exposition
// renders cumulative bucket counts per the Prometheus convention.
type Histogram struct {
	name, help string
	bounds     []float64
	counts     []atomic.Int64 // len(bounds)+1; last is the +Inf overflow
	sum        atomicFloat
	count      atomic.Int64
}

// Histogram registers a histogram family with the given bucket upper
// bounds (usually LatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	h := &Histogram{name: name, help: help, bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	r.register(name, h)
	return h
}

// Observe records one value (seconds, for latency histograms).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count reads the total number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

func (h *Histogram) expose(w *bufio.Writer) {
	header(w, h.name, h.help, "histogram")
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", h.name, formatFloat(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", h.name, formatFloat(h.sum.load()))
	// _count repeats the +Inf cumulative count so the scrape is
	// internally consistent even when observations race the scan.
	fmt.Fprintf(w, "%s_count %d\n", h.name, cum)
}
