package telemetry

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader carries trace context across tiers: the coordinator sets
// it on every shard request ("<trace>-<parent span>", both %016x), the
// shard's HTTP layer joins the incoming trace, and the shard stamps the
// same trace ID into every line it streams back — one coherent trace
// per coordinated request.
const TraceHeader = "X-Gesmc-Trace"

const (
	// maxTraces bounds the in-memory trace store; the oldest trace is
	// evicted FIFO when a new one arrives at capacity. At typical span
	// counts this keeps the store well under a megabyte.
	maxTraces = 512
	// maxSpansPerTrace drops further spans of one trace (a runaway
	// retry loop must not grow the store unboundedly).
	maxSpansPerTrace = 256
)

// Attr is one span attribute.
type Attr struct {
	Key   string
	Value string
}

// Span is one timed operation inside a trace. Spans are written by the
// owner goroutine and published to the tracer only at End, so they need
// no internal locking. A nil *Span (disabled tracer) no-ops everywhere.
type Span struct {
	tracer *Tracer

	Trace    uint64
	ID       uint64
	Parent   uint64
	Name     string
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr
}

// SetAttr attaches a string attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, value int64) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: strconv.FormatInt(value, 10)})
}

// End stamps the duration and publishes the span to its tracer's store.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.Duration = time.Since(s.Start)
	s.tracer.record(s)
}

// Tracer mints spans and keeps a bounded in-memory store of finished
// traces for the /v1/trace span-dump endpoint. A nil *Tracer is the
// disabled form: StartSpan passes the context through untouched and
// returns a nil span.
type Tracer struct {
	mu     sync.Mutex
	traces map[uint64][]Span
	order  []uint64 // insertion order, for FIFO eviction
}

// NewTracer builds an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{traces: make(map[uint64][]Span)}
}

// idCounter seeds span/trace IDs: a process-start nonce plus a counter,
// mixed through SplitMix64 so IDs look random, never collide within a
// process, and need no locking.
var (
	idCounter atomic.Uint64
	idSeed    = uint64(time.Now().UnixNano())
)

func newID() uint64 {
	x := idSeed + idCounter.Add(1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

type ctxKey struct{}

// spanRef is the context-carried trace position: the active trace and
// the span new children parent under.
type spanRef struct {
	trace uint64
	span  uint64
}

// StartSpan opens a span named name under the context's current span
// (or as a trace root when the context carries none) and returns the
// child context for further nesting. End publishes it.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	ref, _ := ctx.Value(ctxKey{}).(spanRef)
	if ref.trace == 0 {
		ref.trace = newID()
	}
	sp := &Span{tracer: t, Trace: ref.trace, ID: newID(), Parent: ref.span, Name: name, Start: time.Now()}
	return context.WithValue(ctx, ctxKey{}, spanRef{trace: ref.trace, span: sp.ID}), sp
}

// Join adopts an upstream trace position (from ParseTraceHeader) so
// spans opened under the returned context extend the caller's trace
// instead of starting a new one.
func (t *Tracer) Join(ctx context.Context, trace, parent uint64) context.Context {
	if t == nil || trace == 0 {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, spanRef{trace: trace, span: parent})
}

func (t *Tracer) record(s *Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	buf, ok := t.traces[s.Trace]
	if !ok {
		if len(t.order) >= maxTraces {
			delete(t.traces, t.order[0])
			t.order = t.order[1:]
		}
		t.order = append(t.order, s.Trace)
	}
	if len(buf) < maxSpansPerTrace {
		t.traces[s.Trace] = append(buf, *s)
	}
}

// TraceIDString reads the context's trace ID in its wire form (%016x),
// or "" when the context carries no trace.
func TraceIDString(ctx context.Context) string {
	ref, _ := ctx.Value(ctxKey{}).(spanRef)
	if ref.trace == 0 {
		return ""
	}
	return fmt.Sprintf("%016x", ref.trace)
}

// HeaderValue renders the context's trace position as the TraceHeader
// value ("<trace>-<span>"), or "" when the context carries no trace.
func HeaderValue(ctx context.Context) string {
	ref, _ := ctx.Value(ctxKey{}).(spanRef)
	if ref.trace == 0 {
		return ""
	}
	return fmt.Sprintf("%016x-%016x", ref.trace, ref.span)
}

// ParseTraceHeader decodes a TraceHeader value; ok is false on any
// malformed input (the request then simply starts its own trace).
func ParseTraceHeader(v string) (trace, parent uint64, ok bool) {
	t, p, found := strings.Cut(v, "-")
	if !found {
		return 0, 0, false
	}
	trace, err := strconv.ParseUint(t, 16, 64)
	if err != nil || trace == 0 {
		return 0, 0, false
	}
	parent, err = strconv.ParseUint(p, 16, 64)
	if err != nil {
		return 0, 0, false
	}
	return trace, parent, true
}

// SpanDump is the JSON form of one stored span, served by /v1/trace.
type SpanDump struct {
	TraceID     string            `json:"trace_id"`
	SpanID      string            `json:"span_id"`
	ParentID    string            `json:"parent_id,omitempty"`
	Name        string            `json:"name"`
	StartUnixNS int64             `json:"start_unix_ns"`
	DurationNS  int64             `json:"duration_ns"`
	Attrs       map[string]string `json:"attrs,omitempty"`
}

// Dump returns the stored spans of the trace with the given %016x ID,
// in completion order; ok is false when the ID is malformed, unknown,
// or already evicted. Nil-safe.
func (t *Tracer) Dump(id string) ([]SpanDump, bool) {
	if t == nil {
		return nil, false
	}
	trace, err := strconv.ParseUint(id, 16, 64)
	if err != nil {
		return nil, false
	}
	t.mu.Lock()
	spans, ok := t.traces[trace]
	if ok {
		spans = append([]Span(nil), spans...)
	}
	t.mu.Unlock()
	if !ok {
		return nil, false
	}
	out := make([]SpanDump, len(spans))
	for i, s := range spans {
		d := SpanDump{
			TraceID:     fmt.Sprintf("%016x", s.Trace),
			SpanID:      fmt.Sprintf("%016x", s.ID),
			Name:        s.Name,
			StartUnixNS: s.Start.UnixNano(),
			DurationNS:  s.Duration.Nanoseconds(),
		}
		if s.Parent != 0 {
			d.ParentID = fmt.Sprintf("%016x", s.Parent)
		}
		if len(s.Attrs) > 0 {
			d.Attrs = make(map[string]string, len(s.Attrs))
			for _, a := range s.Attrs {
				d.Attrs[a.Key] = a.Value
			}
		}
		out[i] = d
	}
	return out, true
}
