package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"gesmc/internal/service"
	"gesmc/wire"
)

// testShard boots one real sampling daemon (service + HTTP) and
// returns its server; cleanup shuts both down.
func testShard(t *testing.T, id string) *httptest.Server {
	t.Helper()
	svc := service.New(service.Config{ID: id, WorkerBudget: 4, PoolCapacity: 4})
	ts := httptest.NewServer(service.NewHandler(svc))
	t.Cleanup(func() {
		ts.Close()
		svc.Shutdown(context.Background())
	})
	return ts
}

// testCoordinator builds a coordinator over the given shard servers
// with the background health loop disabled (tests drive CheckHealth
// explicitly for determinism). Ring shard IDs are shard-0, shard-1, …
// in argument order; real daemons stamp their own service ID into
// Stats.Backend, so tests that assert placement must boot daemons
// whose IDs match their ring position.
func testCoordinator(t *testing.T, cfg Config, shards ...*httptest.Server) *Coordinator {
	t.Helper()
	for i, ts := range shards {
		cfg.Shards = append(cfg.Shards, ShardConfig{ID: fmt.Sprintf("shard-%d", i), URL: ts.URL})
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = -1
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func collect(t *testing.T, b service.Backend, req *wire.SampleRequest) []wire.Line {
	t.Helper()
	lines, err := collectErr(b, req)
	if err != nil {
		t.Fatal(err)
	}
	return lines
}

func collectErr(b service.Backend, req *wire.SampleRequest) ([]wire.Line, error) {
	var lines []wire.Line
	err := b.Sample(context.Background(), req, func(ln wire.Line) error {
		lines = append(lines, ln)
		return nil
	})
	return lines, err
}

// payload reduces lines to their sample content for bit-identity
// comparison (stats carry durations and placement).
func payload(lines []wire.Line) string {
	s := ""
	for _, ln := range lines {
		s += fmt.Sprintf("%d/%d/%v/%v/%s;", ln.Index, ln.Nodes, ln.Directed, ln.Edges, ln.Error)
	}
	return s
}

// seedOwnedBy searches for a request seed whose pool key hashes onto
// the given shard (with every shard alive).
func seedOwnedBy(t *testing.T, c *Coordinator, shardIdx int, req wire.SampleRequest) wire.SampleRequest {
	t.Helper()
	for seed := uint64(1); seed < 4096; seed++ {
		req.Seed = seed
		key, err := service.PoolKey(&req)
		if err != nil {
			t.Fatal(err)
		}
		if owners := c.ring.owners(key, 1, nil); len(owners) == 1 && owners[0] == shardIdx {
			return req
		}
	}
	t.Fatalf("no seed found owned by shard %d", shardIdx)
	return req
}

// TestDifferentialAcrossTiers is the acceptance gate: one seeded
// request served (a) in-process via LocalBackend, (b) through one
// remote gesmcd, and (c) through a coordinator over two backends
// yields bit-identical NDJSON sample lines.
func TestDifferentialAcrossTiers(t *testing.T) {
	req := &wire.SampleRequest{Degrees: []int{4, 3, 3, 2, 2, 2, 1, 1}, Samples: 5, Seed: 7, Workers: 2}

	// (a) Local.
	svc := service.New(service.Config{WorkerBudget: 4})
	defer svc.Shutdown(context.Background())
	local := collect(t, service.NewLocalBackend(svc), req)

	// (b) One remote daemon (fresh service: same cold-pool chain).
	remote := collect(t, service.NewRemoteBackend(testShard(t, "solo").URL, nil), req)

	// (c) Coordinator over two fresh daemons.
	coord := testCoordinator(t, Config{}, testShard(t, "a"), testShard(t, "b"))
	viaCoord := collect(t, coord, req)

	if payload(local) != payload(remote) {
		t.Fatalf("local vs remote:\n%s\n%s", payload(local), payload(remote))
	}
	if payload(local) != payload(viaCoord) {
		t.Fatalf("local vs coordinator:\n%s\n%s", payload(local), payload(viaCoord))
	}
	if len(viaCoord) != 5 {
		t.Fatalf("%d lines", len(viaCoord))
	}
	// Placement is observable on every coordinated line, and constant
	// within a stream (one request never splits across shards).
	first := viaCoord[0].Stats.Backend
	if first == "" {
		t.Fatal("no backend identity on coordinated line")
	}
	for _, ln := range viaCoord {
		if ln.Stats.Backend != first {
			t.Fatalf("stream split across shards: %s vs %s", ln.Stats.Backend, first)
		}
	}
}

// TestExactDifferentialAcrossTiers extends the acceptance gate to the
// exact-uniformity tier: a seeded uniformity:"exact" request served
// in-process, through one remote gesmcd, and through a coordinator
// yields bit-identical sample lines, and every line is labeled with
// the tier that served it.
func TestExactDifferentialAcrossTiers(t *testing.T) {
	req := &wire.SampleRequest{Degrees: []int{3, 3, 3, 3, 3, 3, 3, 3},
		Uniformity: "exact", Samples: 5, Seed: 23}

	svc := service.New(service.Config{WorkerBudget: 4})
	defer svc.Shutdown(context.Background())
	local := collect(t, service.NewLocalBackend(svc), req)

	remote := collect(t, service.NewRemoteBackend(testShard(t, "solo").URL, nil), req)

	coord := testCoordinator(t, Config{}, testShard(t, "a"), testShard(t, "b"))
	viaCoord := collect(t, coord, req)

	if payload(local) != payload(remote) {
		t.Fatalf("exact local vs remote:\n%s\n%s", payload(local), payload(remote))
	}
	if payload(local) != payload(viaCoord) {
		t.Fatalf("exact local vs coordinator:\n%s\n%s", payload(local), payload(viaCoord))
	}
	for _, lines := range [][]wire.Line{local, remote, viaCoord} {
		if len(lines) != 5 {
			t.Fatalf("%d lines, want 5", len(lines))
		}
		for _, ln := range lines {
			if ln.Stats == nil || ln.Stats.Uniformity != "exact" || ln.Stats.Algorithm != "Exact" {
				t.Fatalf("line not labeled as exact tier: %+v", ln.Stats)
			}
		}
	}
}

// TestCoordinatorDeterministicRouting: placement is a pure function of
// the pool key and the live shard set — two coordinators over the same
// shard IDs agree on every request, and repeat requests stick to their
// shard (that is what makes pooled engines reusable cluster-wide).
func TestCoordinatorDeterministicRouting(t *testing.T) {
	sa, sb := testShard(t, "shard-0"), testShard(t, "shard-1")
	c1 := testCoordinator(t, Config{}, sa, sb)
	c2 := testCoordinator(t, Config{}, sa, sb)

	base := wire.SampleRequest{Degrees: []int{3, 2, 2, 1}, Samples: 1}
	for seed := uint64(1); seed <= 10; seed++ {
		req := base
		req.Seed = seed
		b1 := collect(t, c1, &req)[0].Stats.Backend
		b2 := collect(t, c2, &req)[0].Stats.Backend
		if b1 == "" || b1 != b2 {
			t.Fatalf("seed %d: coordinators disagree: %q vs %q", seed, b1, b2)
		}
		// Same key again → same shard (pool hit on that shard).
		if again := collect(t, c1, &req)[0].Stats.Backend; again != b1 {
			t.Fatalf("seed %d: repeat request moved %q → %q", seed, b1, again)
		}
		// And the placement matches the ring prediction.
		key, err := service.PoolKey(&req)
		if err != nil {
			t.Fatal(err)
		}
		want := c1.shards[c1.ring.owners(key, 1, nil)[0]].id
		if b1 != want {
			t.Fatalf("seed %d: served by %q, ring owner %q", seed, b1, want)
		}
	}
	m, _ := c1.Metrics(context.Background())
	if m.Cluster == nil || m.Cluster.RoutedOwner != 20 || m.Cluster.RoutedSpill != 0 {
		t.Fatalf("cluster metrics: %+v", m.Cluster)
	}
}

// dyingShard is a fake daemon that streams okLines sample lines and
// then resets the connection — the mid-stream backend kill.
func dyingShard(t *testing.T, okLines int) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sample", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for i := 0; i < okLines; i++ {
			enc.Encode(wire.Line{Index: i, Nodes: 3, Edges: [][2]uint32{{0, 1}, {1, 2}}, Stats: &wire.Stats{}})
		}
		w.(http.Flusher).Flush()
		panic(http.ErrAbortHandler)
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(wire.Health{Status: "ok"})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestCoordinatorFailoverMidStream: kill a backend mid-stream and
// assert the client sees one unbroken stream — the delivered prefix
// from the dying shard spliced with the resumed suffix from the live
// one, no in-band error — plus the eviction, and that subsequent
// requests re-hash to the live shard deterministically.
func TestCoordinatorFailoverMidStream(t *testing.T) {
	dying := dyingShard(t, 2)
	live := testShard(t, "shard-1")
	// Shard order: 0 = dying, 1 = live.
	c := testCoordinator(t, Config{}, dying, live)
	liveID, dyingID := c.shards[1].id, c.shards[0].id

	req := seedOwnedBy(t, c, 0, wire.SampleRequest{Degrees: []int{2, 2, 1, 1}, Samples: 5})
	lines, err := collectErr(c, &req)
	if err != nil {
		t.Fatalf("failover stream err=%v, want transparent recovery", err)
	}
	if len(lines) != 5 {
		t.Fatalf("%d lines, want 5 (2 from dying + 3 resumed): %+v", len(lines), lines)
	}
	for i, ln := range lines {
		if ln.Error != "" || ln.Index != i || ln.Stats == nil {
			t.Fatalf("line %d: %+v", i, ln)
		}
		want := dyingID
		if i >= 2 {
			want = liveID
		}
		if ln.Stats.Backend != want {
			t.Fatalf("line %d served by %q, want %q", i, ln.Stats.Backend, want)
		}
	}
	// The resumed suffix carries cursors (the dying shard's canned
	// lines predate them, which also exercises the Index+1 fallback).
	for _, ln := range lines[2:] {
		if ln.Cursor != ln.Index+1 {
			t.Fatalf("resumed line cursor: %+v", ln)
		}
	}

	// The transport failure evicted the shard and was recovered by one
	// mid-stream failover (no terminal midstream failure); everything
	// the shard owned re-hashes to the live shard — deterministically,
	// repeat runs agree.
	m, _ := c.Metrics(context.Background())
	if m.Cluster.Evictions != 1 || m.Cluster.MidstreamFailovers != 1 || m.Cluster.MidstreamFailures != 0 {
		t.Fatalf("cluster metrics after kill: %+v", m.Cluster)
	}
	if m.Cluster.Shards[0].Breaker != "open" || m.Cluster.Shards[1].Breaker != "closed" {
		t.Fatalf("breaker states: %+v", m.Cluster.Shards)
	}
	for round := 0; round < 2; round++ {
		for seed := uint64(1); seed <= 6; seed++ {
			r := req
			r.Seed = seed
			got := collect(t, c, &r)
			if len(got) != 5 {
				t.Fatalf("seed %d: %d lines", seed, len(got))
			}
			for _, ln := range got {
				if ln.Error != "" || ln.Stats.Backend != liveID {
					t.Fatalf("seed %d after eviction: %+v", seed, ln)
				}
			}
		}
	}
}

// fixedStatusShard always answers /v1/sample with one HTTP status —
// the overloaded (429) and draining (503) owners of the spill policy.
func fixedStatusShard(t *testing.T, code int) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sample", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(wire.Error{Error: "synthetic", Code: "overloaded"})
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(wire.Health{Status: "ok"})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestCoordinatorSpillOnOverload: a 429 from the owner spills the
// request to another live shard without evicting the owner.
func TestCoordinatorSpillOnOverload(t *testing.T) {
	for _, code := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable} {
		busy := fixedStatusShard(t, code)
		live := testShard(t, "shard-1")
		c := testCoordinator(t, Config{}, busy, live)

		req := seedOwnedBy(t, c, 0, wire.SampleRequest{Degrees: []int{2, 2, 1, 1}, Samples: 2})
		lines := collect(t, c, &req)
		if len(lines) != 2 || lines[0].Stats.Backend != c.shards[1].id {
			t.Fatalf("status %d: spilled lines: %+v", code, lines)
		}
		m, _ := c.Metrics(context.Background())
		if m.Cluster.RoutedSpill != 1 {
			t.Fatalf("status %d: routed_spill=%d, want 1", code, m.Cluster.RoutedSpill)
		}
		// Overload is not death: the shard stays in the ring.
		if !m.Cluster.Shards[0].Alive || m.Cluster.Evictions != 0 {
			t.Fatalf("status %d: overloaded shard evicted: %+v", code, m.Cluster)
		}
	}
}

// TestCoordinatorHotKeyReplication: a key routed past HotThreshold is
// served round-robin by its replica set, spreading one hot target over
// R shards.
func TestCoordinatorHotKeyReplication(t *testing.T) {
	sa, sb := testShard(t, "a"), testShard(t, "b")
	c := testCoordinator(t, Config{Replication: 2, HotThreshold: 3}, sa, sb)

	req := wire.SampleRequest{Degrees: []int{3, 2, 2, 1}, Samples: 1, Seed: 42}
	served := map[string]int{}
	for i := 0; i < 8; i++ {
		served[collect(t, c, &req)[0].Stats.Backend]++
	}
	if len(served) != 2 {
		t.Fatalf("hot key stayed on one shard: %v", served)
	}
	m, _ := c.Metrics(context.Background())
	if m.Cluster.RoutedReplica == 0 {
		t.Fatalf("no replica-routed requests: %+v", m.Cluster)
	}
	if len(m.Cluster.HotKeys) != 1 || m.Cluster.HotKeys[0].Hits != 8 {
		t.Fatalf("hot keys: %+v", m.Cluster.HotKeys)
	}
	// Cold keys stayed deterministic all along: below the threshold a
	// second coordinator agrees with the first on a fresh key.
	cold := wire.SampleRequest{Degrees: []int{2, 1, 1}, Samples: 1, Seed: 5}
	c2 := testCoordinator(t, Config{Replication: 2, HotThreshold: 3}, sa, sb)
	if b1, b2 := collect(t, c, &cold)[0].Stats.Backend, collect(t, c2, &cold)[0].Stats.Backend; b1 != b2 {
		t.Fatalf("cold key diverged: %q vs %q", b1, b2)
	}
}

// TestCoordinatorHealthEviction: a dead backend is evicted by the
// health check, the coordinator stays healthy on the survivors, and a
// request for a key owned by the dead shard is served (the single-
// backend-eviction half of the acceptance gate). All shards dead →
// 502-class error and "unavailable" health.
func TestCoordinatorHealthEviction(t *testing.T) {
	dead := testShard(t, "shard-0")
	live := testShard(t, "shard-1")
	c := testCoordinator(t, Config{}, dead, live)
	c.CheckHealth(context.Background())
	if h, _ := c.Health(context.Background()); h.Status != "ok" {
		t.Fatalf("health %+v", h)
	}

	req := seedOwnedBy(t, c, 0, wire.SampleRequest{Degrees: []int{2, 2, 1, 1}, Samples: 2})
	dead.Close() // kill shard 0 entirely
	c.CheckHealth(context.Background())
	m, _ := c.Metrics(context.Background())
	if m.Cluster.Shards[0].Alive || !m.Cluster.Shards[1].Alive {
		t.Fatalf("live set after kill: %+v", m.Cluster.Shards)
	}
	if h, _ := c.Health(context.Background()); h.Status != "ok" {
		t.Fatalf("coordinator unhealthy with a live shard: %+v", h)
	}

	lines := collect(t, c, &req)
	if len(lines) != 2 || lines[0].Stats.Backend != c.shards[1].id {
		t.Fatalf("post-eviction lines: %+v", lines)
	}

	live.Close()
	c.CheckHealth(context.Background())
	if h, _ := c.Health(context.Background()); h.Status == "ok" {
		t.Fatal("healthy with zero live shards")
	}
	if _, err := collectErr(c, &req); !errors.Is(err, service.ErrBackend) {
		t.Fatalf("all-dead err=%v, want ErrBackend", err)
	}
}

// TestCoordinatorOverHTTP serves the coordinator through the same
// NewBackendHandler the daemons use and checks the full wire surface:
// streamed placement-stamped lines, 400 passthrough, cluster metrics.
func TestCoordinatorOverHTTP(t *testing.T) {
	c := testCoordinator(t, Config{ID: "coord"}, testShard(t, "a"), testShard(t, "b"))
	front := httptest.NewServer(service.NewBackendHandler(c))
	defer front.Close()
	client := service.NewRemoteBackend(front.URL, nil)

	req := &wire.SampleRequest{Degrees: []int{3, 2, 2, 1}, Samples: 3, Seed: 4}
	lines, err := collectErr(client, req)
	if err != nil || len(lines) != 3 {
		t.Fatalf("lines=%d err=%v", len(lines), err)
	}
	if lines[0].Stats.Backend == "" {
		t.Fatal("no placement identity through HTTP front")
	}
	if _, err := collectErr(client, &wire.SampleRequest{Degrees: []int{3, 1}}); !errors.Is(err, service.ErrBadRequest) {
		t.Fatalf("bad request through front: %v", err)
	}
	m, err := client.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Backend != "coord" || m.Cluster == nil || len(m.Cluster.Shards) != 2 {
		t.Fatalf("front metrics: %+v", m)
	}
	h, err := client.Health(context.Background())
	if err != nil || h.Status != "ok" {
		t.Fatalf("front health %+v err %v", h, err)
	}
}
