package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"gesmc/internal/faultinject"
	"gesmc/internal/service"
	"gesmc/wire"
)

// TestCoordinatorChaosDifferential is the chaos acceptance gate: a
// coordinated stream whose owning shard is cut mid-stream (via the
// fault-injection registry — the same path a SIGKILL takes on the
// wire) is bit-identical to the uninterrupted single-backend stream,
// and the failover is visible in the cluster metrics.
func TestCoordinatorChaosDifferential(t *testing.T) {
	// Reference: the canonical stream from one fresh daemon, collected
	// before any fault is armed.
	svc := service.New(service.Config{WorkerBudget: 4})
	defer svc.Shutdown(context.Background())
	c0 := testCoordinator(t, Config{}, testShard(t, "shard-0"), testShard(t, "shard-1"))
	req := seedOwnedBy(t, c0, 0, wire.SampleRequest{Degrees: []int{4, 3, 3, 2, 2, 2, 1, 1}, Samples: 6, Workers: 2})
	ref, err := collectErr(service.NewLocalBackend(svc), &req)
	if err != nil {
		t.Fatal(err)
	}

	// Chaos run: fresh shards (cold pools, same canonical chains), cut
	// the stream after 3 lines. The owner serves first, so the single
	// charge lands on it; the failover target finds the fault spent.
	c := testCoordinator(t, Config{}, testShard(t, "shard-0"), testShard(t, "shard-1"))
	faultinject.Enable(faultinject.Fault{Point: faultinject.ServerStream, Mode: faultinject.Cut, AfterLines: 3, Hits: 1})
	defer faultinject.Reset()

	lines, err := collectErr(c, &req)
	if err != nil {
		t.Fatalf("chaos stream err=%v, want transparent failover", err)
	}
	// payload comparison strips Stats (durations and placement differ).
	if a, b := payload(lines), payload(ref); a != b {
		t.Fatalf("chaos stream diverged from reference:\n%s\n%s", a, b)
	}
	for i, ln := range lines {
		want := "shard-0"
		if i >= 3 {
			want = "shard-1"
		}
		if ln.Stats == nil || ln.Stats.Backend != want {
			t.Fatalf("line %d placement: %+v", i, ln.Stats)
		}
	}
	m, _ := c.Metrics(context.Background())
	if m.Cluster.MidstreamFailovers != 1 || m.Cluster.Evictions != 1 || m.Cluster.MidstreamFailures != 0 {
		t.Fatalf("cluster metrics: %+v", m.Cluster)
	}
}

// TestCoordinatorExhaustedFailoverTerminatesInBand: when every
// candidate dies mid-stream, the stream ends with one honest in-band
// error line at the cursor instead of pretending to recover.
func TestCoordinatorExhaustedFailoverTerminatesInBand(t *testing.T) {
	dying0 := dyingShard(t, 2)
	dying1 := dyingShard(t, 0)
	c := testCoordinator(t, Config{}, dying0, dying1)

	req := seedOwnedBy(t, c, 0, wire.SampleRequest{Degrees: []int{2, 2, 1, 1}, Samples: 5})
	lines, err := collectErr(c, &req)
	if err == nil {
		t.Fatal("want terminal error when every shard dies")
	}
	if len(lines) != 3 {
		t.Fatalf("%d lines, want 2 samples + 1 terminator: %+v", len(lines), lines)
	}
	last := lines[2]
	if last.Error == "" || last.Code != "backend" || last.Index != 2 || last.Cursor != 2 {
		t.Fatalf("in-band terminator: %+v", last)
	}
	m, _ := c.Metrics(context.Background())
	if m.Cluster.MidstreamFailovers != 1 || m.Cluster.MidstreamFailures != 1 || m.Cluster.Evictions != 2 {
		t.Fatalf("cluster metrics: %+v", m.Cluster)
	}
}

// flappingShard alternates dead and ok health probes, starting dead —
// the scenario the single-bit alive flag was fooled by.
func flappingShard(t *testing.T) *httptest.Server {
	t.Helper()
	var n atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%2 == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(wire.Health{Status: "ok"})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestCoordinatorBreakerHoldsOutFlappingShard: a shard whose probes
// alternate dead/ok is evicted on the first bad probe and never
// re-admitted — half-open demands BreakerProbes consecutive
// successes, and a flapper never strings two together.
func TestCoordinatorBreakerHoldsOutFlappingShard(t *testing.T) {
	flap := flappingShard(t)
	live := testShard(t, "shard-1")
	c := testCoordinator(t, Config{BreakerCooldown: time.Nanosecond}, flap, live)

	for i := 0; i < 8; i++ {
		c.CheckHealth(context.Background())
	}
	m, _ := c.Metrics(context.Background())
	if m.Cluster.Shards[0].Alive || m.Cluster.Revivals != 0 {
		t.Fatalf("flapping shard re-admitted: %+v", m.Cluster)
	}
	if m.Cluster.Evictions != 1 {
		t.Fatalf("evictions=%d, want 1 (one trip, no churn)", m.Cluster.Evictions)
	}
}

// TestCoordinatorBreakerReadmitsAfterRecovery: a shard that dies,
// trips, and then answers good probes again is re-admitted after the
// cooldown plus BreakerProbes consecutive successes — and takes its
// ring arcs back.
func TestCoordinatorBreakerReadmitsAfterRecovery(t *testing.T) {
	var dead atomic.Bool
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		if dead.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(wire.Health{Status: "ok"})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	live := testShard(t, "shard-1")
	c := testCoordinator(t, Config{BreakerCooldown: time.Nanosecond, BreakerProbes: 2}, ts, live)

	dead.Store(true)
	c.CheckHealth(context.Background())
	if m, _ := c.Metrics(context.Background()); m.Cluster.Shards[0].Alive || m.Cluster.Shards[0].Breaker != "open" {
		t.Fatalf("after death: %+v", m.Cluster.Shards[0])
	}

	dead.Store(false)
	c.CheckHealth(context.Background()) // cooldown elapsed → half-open, 1/2
	if m, _ := c.Metrics(context.Background()); m.Cluster.Shards[0].Alive || m.Cluster.Shards[0].Breaker != "half_open" {
		t.Fatalf("after first good probe: %+v", m.Cluster.Shards[0])
	}
	c.CheckHealth(context.Background()) // 2/2 → closed
	m, _ := c.Metrics(context.Background())
	if !m.Cluster.Shards[0].Alive || m.Cluster.Shards[0].Breaker != "closed" || m.Cluster.Revivals != 1 {
		t.Fatalf("after re-admission: %+v", m.Cluster)
	}
}

// TestBreakerStateMachine pins the automaton itself: threshold
// accumulation, cooldown gating, half-open re-trip, and probe-counted
// closure.
func TestBreakerStateMachine(t *testing.T) {
	b := newBreaker(2, 10*time.Millisecond, 2)
	if !b.available() {
		t.Fatal("new breaker must start closed")
	}
	if b.onFailure() {
		t.Fatal("first failure below threshold must not trip")
	}
	if b.onSuccess() {
		t.Fatal("success while closed is not a revival")
	}
	if b.onFailure() {
		t.Fatal("counter must reset on success")
	}
	if !b.onFailure() {
		t.Fatal("threshold consecutive failures must trip")
	}
	if b.available() || b.stateName() != "open" {
		t.Fatalf("tripped breaker: %s", b.stateName())
	}
	if b.onSuccess() {
		t.Fatal("success inside cooldown must not open the trial")
	}
	time.Sleep(15 * time.Millisecond)
	if b.onSuccess() {
		t.Fatal("first trial success must not yet close (probes=2)")
	}
	if b.available() || b.stateName() != "half_open" {
		t.Fatalf("trial state: %s", b.stateName())
	}
	if b.onFailure() {
		t.Fatal("half-open failure re-trips without a new eviction")
	}
	if b.stateName() != "open" {
		t.Fatalf("re-tripped state: %s", b.stateName())
	}
	time.Sleep(15 * time.Millisecond)
	b.onSuccess()
	if !b.onSuccess() {
		t.Fatal("probes consecutive successes must close and revive")
	}
	if !b.available() {
		t.Fatal("closed breaker must admit")
	}
}
