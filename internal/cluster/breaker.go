package cluster

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit-breaker automaton.
type breakerState uint8

const (
	// breakerClosed admits traffic; consecutive failures accumulate.
	breakerClosed breakerState = iota
	// breakerOpen refuses traffic until the cooldown elapses.
	breakerOpen
	// breakerHalfOpen is the re-admission trial: health probes reach
	// the shard, routed traffic does not, and only a run of consecutive
	// probe successes closes the breaker again.
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half_open"
	}
	return "unknown"
}

// breaker is one shard's circuit breaker. It replaces the previous
// single-bit alive flag, which had a flapping failure mode: a shard
// whose health endpoint alternated ok/dead was re-admitted on every
// good probe and handed real requests it then dropped. The breaker
// demands a cooldown plus `probes` consecutive successes before a
// tripped shard serves again, so a flapping backend stays out.
//
// Successes and failures arrive from two sources — health probes and
// routed request outcomes — and are treated identically: any failure
// in half-open re-trips, any failure in closed counts toward the
// threshold.
type breaker struct {
	threshold int           // consecutive failures that trip closed → open
	cooldown  time.Duration // open → half-open no sooner than this
	probes    int           // consecutive successes that close half-open

	// notify observes state transitions (from, to) — the coordinator
	// wires it to structured logging and the transition counter. Called
	// outside the breaker lock, after the transition committed; may be
	// nil. Set before the breaker sees traffic.
	notify func(from, to breakerState)

	mu        sync.Mutex
	state     breakerState
	failures  int       // consecutive, while closed
	successes int       // consecutive, while half-open
	openedAt  time.Time // last trip (or failure refresh) while open
}

func newBreaker(threshold int, cooldown time.Duration, probes int) *breaker {
	if threshold < 1 {
		threshold = 1
	}
	if probes < 1 {
		probes = 1
	}
	return &breaker{threshold: threshold, cooldown: cooldown, probes: probes}
}

// available reports whether the shard may be routed traffic: only a
// closed breaker admits. Half-open shards receive health probes (which
// bypass available) but no requests.
func (b *breaker) available() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == breakerClosed
}

// onFailure records a probe or request failure, reporting whether this
// failure tripped the breaker (closed/half-open → open) — the caller's
// eviction event.
func (b *breaker) onFailure() (tripped bool) {
	b.mu.Lock()
	from := b.state
	switch b.state {
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = breakerOpen
			b.openedAt = time.Now()
			tripped = true
		}
	case breakerHalfOpen:
		// The trial failed; back to open for a fresh cooldown. Not a
		// new eviction — the shard never re-admitted traffic.
		b.state = breakerOpen
		b.openedAt = time.Now()
		b.successes = 0
	case breakerOpen:
		// Still failing: keep the cooldown clock pinned so a shard
		// that fails every probe never even reaches half-open.
		b.openedAt = time.Now()
	}
	to := b.state
	b.mu.Unlock()
	if b.notify != nil && from != to {
		b.notify(from, to)
	}
	return tripped
}

// onSuccess records a probe or request success, reporting whether it
// closed the breaker (completed re-admission) — the caller's revival
// event.
func (b *breaker) onSuccess() (revived bool) {
	b.mu.Lock()
	from := b.state
	switch b.state {
	case breakerClosed:
		b.failures = 0
	case breakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			b.mu.Unlock()
			return false // too soon; stay open
		}
		b.state = breakerHalfOpen
		b.successes = 1
		if b.successes >= b.probes {
			b.state = breakerClosed
			b.failures = 0
			revived = true
		}
	case breakerHalfOpen:
		b.successes++
		if b.successes >= b.probes {
			b.state = breakerClosed
			b.failures = 0
			b.successes = 0
			revived = true
		}
	}
	to := b.state
	b.mu.Unlock()
	if b.notify != nil && from != to {
		b.notify(from, to)
	}
	return revived
}

// stateName snapshots the state for metrics.
func (b *breaker) stateName() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String()
}
