package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gesmc/internal/service"
	"gesmc/wire"
)

// ShardConfig names one gesmcd backend.
type ShardConfig struct {
	// ID is the shard's ring identity; it must be stable across
	// coordinator restarts for keys to keep their owners. Empty
	// defaults to URL.
	ID string
	// URL is the backend's base URL ("host:port" gets http://).
	URL string
}

// Config sizes the coordinator. Zero values select the defaults.
type Config struct {
	// Shards is the backend set; at least one is required.
	Shards []ShardConfig
	// ID is the coordinator's own identity, exported in Metrics.
	ID string
	// Replication R is the maximum number of shards serving one hot
	// key (default 2). Cold keys always route to their single ring
	// owner, keeping placement deterministic.
	Replication int
	// HotThreshold is the routed-request count at which a key is
	// promoted to replicated service (default 16).
	HotThreshold int64
	// VNodes is the number of ring points per shard (default 64).
	VNodes int
	// HealthInterval is the background health-check period (default
	// 2s; negative disables the loop — CheckHealth can still be called
	// explicitly).
	HealthInterval time.Duration
	// ProbeTimeout bounds one health probe (default 1s).
	ProbeTimeout time.Duration
	// Client issues all backend requests (nil = http.DefaultClient).
	// Streams live as long as their request contexts, so it must not
	// carry a global timeout.
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.Replication <= 0 {
		c.Replication = 2
	}
	if c.HotThreshold <= 0 {
		c.HotThreshold = 16
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	return c
}

// shard is one backend plus its routing state.
type shard struct {
	id      string
	backend *service.RemoteBackend

	alive    atomic.Bool
	inflight atomic.Int64
	requests atomic.Int64
	errors   atomic.Int64
}

// Coordinator routes sampling requests across a ring of remote gesmcd
// backends by engine-pool key and implements service.Backend, so it
// serves the same HTTP/NDJSON protocol via service.NewBackendHandler.
//
// Routing policy, in order:
//
//  1. Cold keys go to their ring owner — deterministic placement, so
//     every same-key request finds the shard holding its burned-in
//     pooled engine.
//  2. Keys routed HotThreshold+ times are served by their first R ring
//     successors round-robin, trading a little pool locality (each
//     replica burns in its own engine once) for R-way throughput on
//     the keys that dominate traffic.
//  3. A dead owner is skipped by the ring itself (keys re-hash to the
//     next live successor); an owner answering 429/503 — or dying
//     before its first line — spills to the remaining candidates:
//     first the other replicas in ring order, then every other live
//     shard, least-loaded first.
//
// Lines stream through transparently; a backend that dies after its
// first line cannot be failed over (the client already holds a prefix
// of that engine's chain), so the failure is surfaced as the protocol's
// in-band error line and the shard is marked dead for later requests.
type Coordinator struct {
	cfg    Config
	ring   *ring
	shards []*shard
	start  time.Time

	hotMu   sync.Mutex
	hotKeys map[uint64]int64

	routedOwner   atomic.Int64
	routedReplica atomic.Int64
	routedSpill   atomic.Int64
	midstream     atomic.Int64
	evictions     atomic.Int64
	revivals      atomic.Int64
	failed        atomic.Int64
	samples       atomic.Int64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// maxHotKeys bounds the promotion counter map, like the engine pool's
// tracker: on saturation it resets and re-warms on the actually hot
// keys.
const maxHotKeys = 65536

// New builds a Coordinator and, unless disabled, starts its health
// loop. All shards start alive; the first health round (run CheckHealth
// for a synchronous one) corrects that optimism.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Shards) == 0 {
		return nil, errors.New("cluster: no shards configured")
	}
	c := &Coordinator{
		cfg:     cfg,
		start:   time.Now(),
		hotKeys: make(map[uint64]int64),
		stop:    make(chan struct{}),
	}
	ids := make([]string, len(cfg.Shards))
	seen := make(map[string]bool, len(cfg.Shards))
	for i, sc := range cfg.Shards {
		b := service.NewRemoteBackend(sc.URL, cfg.Client)
		id := sc.ID
		if id == "" {
			id = b.URL()
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate shard id %q", id)
		}
		seen[id] = true
		ids[i] = id
		sh := &shard{id: id, backend: b}
		sh.alive.Store(true)
		c.shards = append(c.shards, sh)
	}
	c.ring = newRing(ids, cfg.VNodes)
	if cfg.HealthInterval > 0 {
		c.wg.Add(1)
		go c.healthLoop()
	}
	return c, nil
}

// Close stops the health loop. In-flight streams are unaffected (they
// run on the caller's contexts).
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

func (c *Coordinator) healthLoop() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.cfg.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			c.CheckHealth(context.Background())
		}
	}
}

// CheckHealth probes every shard once (bounded by ProbeTimeout each)
// and updates the live set: a shard is alive when /v1/healthz answers
// "ok" — a draining daemon (503) is routed around just like a dead
// one, since it refuses new work anyway. Evicting a shard re-hashes
// its keys to their next live ring successor; a recovered shard takes
// its arcs back on revival.
func (c *Coordinator) CheckHealth(ctx context.Context) {
	var wg sync.WaitGroup
	for _, sh := range c.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
			defer cancel()
			h, err := sh.backend.Health(pctx)
			c.setAlive(sh, err == nil && h.Status == "ok")
		}(sh)
	}
	wg.Wait()
}

func (c *Coordinator) setAlive(sh *shard, alive bool) {
	if alive {
		if sh.alive.CompareAndSwap(false, true) {
			c.revivals.Add(1)
		}
	} else if sh.alive.CompareAndSwap(true, false) {
		c.evictions.Add(1)
	}
}

// noteKey bumps the key's routed count and reports whether the key is
// hot (at or beyond the promotion threshold) plus the count, which
// rotates the replica choice.
func (c *Coordinator) noteKey(key uint64) (int64, bool) {
	c.hotMu.Lock()
	defer c.hotMu.Unlock()
	if len(c.hotKeys) >= maxHotKeys {
		c.hotKeys = make(map[uint64]int64)
	}
	c.hotKeys[key]++
	n := c.hotKeys[key]
	return n, n >= c.cfg.HotThreshold
}

// routeClass labels how a request reached its serving shard.
type routeClass uint8

const (
	routeOwner routeClass = iota
	routeReplica
	routeSpill
)

type candidate struct {
	sh    *shard
	class routeClass
}

// candidates orders the shards to try for key: the owner (or the hot
// key's rotated replica set), then every other live shard as spill
// targets, least-loaded first.
func (c *Coordinator) candidates(key uint64, seq int64, hot bool) []candidate {
	aliveFn := func(i int) bool { return c.shards[i].alive.Load() }
	want := 1
	if hot {
		want = c.cfg.Replication
	}
	owners := c.ring.owners(key, want, aliveFn)
	out := make([]candidate, 0, len(c.shards))
	inOwners := make(map[*shard]bool, len(owners))
	// Rotate the replica set by the routed count so a hot key's
	// requests round-robin across its replicas; with one owner the
	// rotation is the identity.
	for i := range owners {
		sh := c.shards[owners[(int(seq)+i)%len(owners)]]
		class := routeOwner
		if hot && len(owners) > 1 && i != 0 {
			// Positions after the rotated head are fallbacks; the head
			// itself is the replica this request is assigned to.
			class = routeSpill
		}
		if i == 0 && hot && len(owners) > 1 {
			class = routeReplica
		}
		inOwners[sh] = true
		out = append(out, candidate{sh: sh, class: class})
	}
	var rest []candidate
	for i, sh := range c.shards {
		if !inOwners[sh] && aliveFn(i) {
			rest = append(rest, candidate{sh: sh, class: routeSpill})
		}
	}
	sort.SliceStable(rest, func(a, b int) bool {
		return rest[a].sh.inflight.Load() < rest[b].sh.inflight.Load()
	})
	return append(out, rest...)
}

// Sample routes one request: hash the engine-pool key onto the ring,
// then try candidates in order until one streams the ensemble. Only
// pre-stream failures fail over; see the type comment for the policy.
func (c *Coordinator) Sample(ctx context.Context, req *wire.SampleRequest, emit func(wire.Line) error) error {
	key, err := service.PoolKey(req)
	if err != nil {
		return err
	}
	seq, hot := c.noteKey(key)
	cands := c.candidates(key, seq-1, hot)
	if len(cands) == 0 {
		c.failed.Add(1)
		return &service.BackendError{Backend: c.cfg.ID, Op: "route", Err: errors.New("no live shards")}
	}

	delivered := 0
	var lastErr error
	for _, cand := range cands {
		sh := cand.sh
		sh.requests.Add(1)
		sh.inflight.Add(1)
		err := sh.backend.Sample(ctx, req, func(ln wire.Line) error {
			if ln.Stats != nil && ln.Stats.Backend == "" {
				ln.Stats.Backend = sh.id
			}
			if ln.Error == "" {
				c.samples.Add(1)
			}
			delivered++
			return emit(ln)
		})
		sh.inflight.Add(-1)
		if err == nil {
			switch cand.class {
			case routeOwner:
				c.routedOwner.Add(1)
			case routeReplica:
				c.routedReplica.Add(1)
			default:
				c.routedSpill.Add(1)
			}
			return nil
		}
		lastErr = err

		// The caller's own cancellation (or its emit failing) is not a
		// shard fault; a bad request would be rejected identically
		// everywhere.
		if ctx.Err() != nil || errors.Is(err, service.ErrBadRequest) {
			c.failed.Add(1)
			return err
		}
		var se *service.StreamError
		if errors.As(err, &se) {
			// The backend terminated in-band (its line is already
			// forwarded): the stream is complete as far as the protocol
			// goes; do not re-route, do not double-terminate.
			sh.errors.Add(1)
			c.failed.Add(1)
			return err
		}
		if errors.Is(err, service.ErrBackend) {
			// Transport failure: the shard is gone until a health probe
			// says otherwise; its keys re-hash to live successors.
			sh.errors.Add(1)
			c.setAlive(sh, false)
		} else if errors.Is(err, service.ErrOverloaded) || errors.Is(err, service.ErrShuttingDown) {
			// Skew or drain on the owner: spill without evicting.
			sh.errors.Add(1)
		} else {
			// Unclassified failure (backend bug): count it and try the
			// next candidate anyway.
			sh.errors.Add(1)
		}
		if delivered > 0 {
			// Mid-stream death: the client already holds a prefix of
			// this engine's chain, so failover would splice two
			// different chains. Terminate in-band instead, exactly as a
			// single daemon's Service does.
			c.midstream.Add(1)
			c.failed.Add(1)
			emit(wire.Line{
				Index: delivered,
				Error: fmt.Sprintf("backend %s failed mid-stream: %v", sh.id, err),
				Code:  "backend",
			})
			return err
		}
	}
	c.failed.Add(1)
	return lastErr
}

// Health reports "ok" while at least one shard is live.
func (c *Coordinator) Health(context.Context) (wire.Health, error) {
	status := "unavailable"
	for _, sh := range c.shards {
		if sh.alive.Load() {
			status = "ok"
			break
		}
	}
	return wire.Health{Status: status, UptimeMS: time.Since(c.start).Milliseconds()}, nil
}

// Metrics exports the coordinator's routing counters and per-shard
// placement view. Shard-local detail (pool hit rates, queue depths)
// stays on the shards' own /v1/metrics endpoints.
func (c *Coordinator) Metrics(context.Context) (wire.Metrics, error) {
	cm := &wire.ClusterMetrics{
		RoutedOwner:       c.routedOwner.Load(),
		RoutedReplica:     c.routedReplica.Load(),
		RoutedSpill:       c.routedSpill.Load(),
		MidstreamFailures: c.midstream.Load(),
		Evictions:         c.evictions.Load(),
		Revivals:          c.revivals.Load(),
	}
	var inflight int64
	for _, sh := range c.shards {
		infl := sh.inflight.Load()
		inflight += infl
		cm.Shards = append(cm.Shards, wire.ShardMetrics{
			ID:       sh.id,
			URL:      sh.backend.URL(),
			Alive:    sh.alive.Load(),
			Inflight: infl,
			Requests: sh.requests.Load(),
			Errors:   sh.errors.Load(),
		})
	}
	c.hotMu.Lock()
	for key, n := range c.hotKeys {
		if n >= c.cfg.HotThreshold {
			cm.HotKeys = append(cm.HotKeys, wire.KeyHits{Key: fmt.Sprintf("%016x", key), Hits: n})
		}
	}
	c.hotMu.Unlock()
	sort.Slice(cm.HotKeys, func(i, j int) bool {
		if cm.HotKeys[i].Hits != cm.HotKeys[j].Hits {
			return cm.HotKeys[i].Hits > cm.HotKeys[j].Hits
		}
		return cm.HotKeys[i].Key < cm.HotKeys[j].Key
	})
	if len(cm.HotKeys) > 8 {
		cm.HotKeys = cm.HotKeys[:8]
	}
	routed := cm.RoutedOwner + cm.RoutedReplica + cm.RoutedSpill
	return wire.Metrics{
		Backend:          c.cfg.ID,
		RequestsTotal:    routed,
		RequestsInflight: inflight,
		RequestsFailed:   c.failed.Load(),
		SamplesTotal:     c.samples.Load(),
		UptimeMS:         time.Since(c.start).Milliseconds(),
		Cluster:          cm,
	}, nil
}
