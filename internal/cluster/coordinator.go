package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gesmc/internal/service"
	"gesmc/internal/telemetry"
	"gesmc/wire"
)

// ShardConfig names one gesmcd backend.
type ShardConfig struct {
	// ID is the shard's ring identity; it must be stable across
	// coordinator restarts for keys to keep their owners. Empty
	// defaults to URL.
	ID string
	// URL is the backend's base URL ("host:port" gets http://).
	URL string
}

// Config sizes the coordinator. Zero values select the defaults.
type Config struct {
	// Shards is the backend set; at least one is required.
	Shards []ShardConfig
	// ID is the coordinator's own identity, exported in Metrics.
	ID string
	// Replication R is the maximum number of shards serving one hot
	// key (default 2). Cold keys always route to their single ring
	// owner, keeping placement deterministic.
	Replication int
	// HotThreshold is the routed-request count at which a key is
	// promoted to replicated service (default 16).
	HotThreshold int64
	// VNodes is the number of ring points per shard (default 64).
	VNodes int
	// HealthInterval is the background health-check period (default
	// 2s, jittered ±20% per round; negative disables the loop —
	// CheckHealth can still be called explicitly).
	HealthInterval time.Duration
	// ProbeTimeout bounds one health probe (default 1s).
	ProbeTimeout time.Duration
	// MaxAttempts bounds how many shards one request may be issued to,
	// counting the first (default 4). Mid-stream failovers that make
	// progress re-issue with a resume cursor and count against this
	// bound.
	MaxAttempts int
	// BreakerThreshold is the consecutive-failure count that trips a
	// shard's circuit breaker open (default 1: the first transport or
	// probe failure evicts).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open before
	// health probes may begin re-admission (default 3s).
	BreakerCooldown time.Duration
	// BreakerProbes is the consecutive probe successes half-open
	// requires before the shard serves again (default 2 — a flapping
	// backend that alternates good and bad probes never re-admits).
	BreakerProbes int
	// Client issues all backend requests (nil selects RemoteBackend's
	// default client with dial and header timeouts). Streams live as
	// long as their request contexts, so it must not carry a global
	// timeout.
	Client *http.Client
	// NoTelemetry disables tracing, latency histograms, and Prometheus
	// exposition for this coordinator (on by default).
	NoTelemetry bool
	// Logger receives structured request, failover, and breaker-
	// transition logs with trace IDs. Nil discards them.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Replication <= 0 {
		c.Replication = 2
	}
	if c.HotThreshold <= 0 {
		c.HotThreshold = 16
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 1
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 3 * time.Second
	}
	if c.BreakerProbes <= 0 {
		c.BreakerProbes = 2
	}
	return c
}

// shard is one backend plus its routing state. Liveness is the shard's
// circuit breaker: closed admits traffic, open/half-open routes around
// it.
type shard struct {
	id      string
	backend *service.RemoteBackend
	brk     *breaker

	inflight atomic.Int64
	requests atomic.Int64
	errors   atomic.Int64
}

// Coordinator routes sampling requests across a ring of remote gesmcd
// backends by engine-pool key and implements service.Backend, so it
// serves the same HTTP/NDJSON protocol via service.NewBackendHandler.
//
// Routing policy, in order:
//
//  1. Cold keys go to their ring owner — deterministic placement, so
//     every same-key request finds the shard holding its burned-in
//     pooled engine.
//  2. Keys routed HotThreshold+ times are served by their first R ring
//     successors round-robin, trading a little pool locality (each
//     replica burns in its own engine once) for R-way throughput on
//     the keys that dominate traffic.
//  3. A dead owner is skipped by the ring itself (keys re-hash to the
//     next live successor); an owner answering 429/503 — or dying
//     before its first line — spills to the remaining candidates:
//     first the other replicas in ring order, then every other live
//     shard, least-loaded first.
//
// Mid-stream failures fail over transparently: chains are bit-exact
// functions of (request, seed), so when a shard dies after delivering
// k lines the coordinator re-issues the request to the next candidate
// with ResumeFrom = k and the replacement fast-forwards its own chain
// to the same superstep, continuing the identical stream. The client
// sees one unbroken ensemble. Only when every candidate (bounded by
// MaxAttempts) has failed does the coordinator terminate the stream
// with an in-band error line, exactly as a single daemon would.
//
// Shard liveness is a per-shard circuit breaker: consecutive failures
// (transport errors or failed health probes) trip it open, a cooldown
// later health probes drive it through half-open, and only
// BreakerProbes consecutive good probes re-admit the shard — so a
// flapping backend stays out of the ring instead of dropping every
// other request routed to it.
type Coordinator struct {
	cfg    Config
	ring   *ring
	shards []*shard
	start  time.Time
	tm     *coordTelemetry

	hotMu   sync.Mutex
	hotKeys map[uint64]int64

	routedOwner        atomic.Int64
	routedReplica      atomic.Int64
	routedSpill        atomic.Int64
	midstream          atomic.Int64
	midstreamFailovers atomic.Int64
	evictions          atomic.Int64
	revivals           atomic.Int64
	failed             atomic.Int64
	samples            atomic.Int64

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// maxHotKeys bounds the promotion counter map, like the engine pool's
// tracker: on saturation it resets and re-warms on the actually hot
// keys.
const maxHotKeys = 65536

// New builds a Coordinator and, unless disabled, starts its health
// loop. All shards start alive; the first health round (run CheckHealth
// for a synchronous one) corrects that optimism.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Shards) == 0 {
		return nil, errors.New("cluster: no shards configured")
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		cfg:     cfg,
		start:   time.Now(),
		tm:      newCoordTelemetry(!cfg.NoTelemetry, cfg.Logger),
		hotKeys: make(map[uint64]int64),
		ctx:     ctx,
		cancel:  cancel,
	}
	ids := make([]string, len(cfg.Shards))
	seen := make(map[string]bool, len(cfg.Shards))
	for i, sc := range cfg.Shards {
		b := service.NewRemoteBackend(sc.URL, cfg.Client).WithMetrics(c.tm.roundTrip, c.tm.backoff)
		id := sc.ID
		if id == "" {
			id = b.URL()
		}
		if seen[id] {
			cancel()
			return nil, fmt.Errorf("cluster: duplicate shard id %q", id)
		}
		seen[id] = true
		ids[i] = id
		brk := newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.BreakerProbes)
		// Breaker transitions were previously silent; surface every one
		// with the shard ID, through the structured logger and the
		// labeled transition counter.
		shardID := id
		brk.notify = func(from, to breakerState) {
			c.tm.log.Warn("breaker transition",
				slog.String("shard", shardID),
				slog.String("from", from.String()),
				slog.String("to", to.String()))
			c.tm.breakerTransitions.With(telemetry.Labels("shard", shardID, "to", to.String())).Inc()
		}
		c.shards = append(c.shards, &shard{
			id:      id,
			backend: b,
			brk:     brk,
		})
	}
	c.ring = newRing(ids, cfg.VNodes)
	c.registerFuncMetrics()
	if cfg.HealthInterval > 0 {
		c.wg.Add(1)
		go c.healthLoop()
	}
	return c, nil
}

// Close stops the health loop (cancelling any probe in flight).
// In-flight streams are unaffected (they run on the caller's
// contexts).
func (c *Coordinator) Close() {
	c.cancel()
	c.wg.Wait()
}

func (c *Coordinator) healthLoop() {
	defer c.wg.Done()
	for {
		// ±20% jitter per round decorrelates probe bursts when a fleet
		// of coordinators watches the same shards.
		d := time.Duration(float64(c.cfg.HealthInterval) * (0.8 + 0.4*rand.Float64()))
		t := time.NewTimer(d)
		select {
		case <-c.ctx.Done():
			t.Stop()
			return
		case <-t.C:
		}
		c.CheckHealth(c.ctx)
	}
}

// CheckHealth probes every shard once (bounded by ProbeTimeout each)
// and feeds the outcomes to the shards' circuit breakers: a probe
// succeeds when /v1/healthz answers "ok" — a draining daemon (503) is
// routed around just like a dead one, since it refuses new work
// anyway. Tripping a breaker re-hashes the shard's keys to their next
// live ring successor; a recovered shard takes its arcs back once the
// breaker closes again (cooldown + BreakerProbes consecutive good
// probes).
func (c *Coordinator) CheckHealth(ctx context.Context) {
	var wg sync.WaitGroup
	for _, sh := range c.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
			defer cancel()
			h, err := sh.backend.Health(pctx)
			if err == nil && h.Status == "ok" {
				if sh.brk.onSuccess() {
					c.revivals.Add(1)
				}
			} else if sh.brk.onFailure() {
				c.evictions.Add(1)
			}
		}(sh)
	}
	wg.Wait()
}

// noteKey bumps the key's routed count and reports whether the key is
// hot (at or beyond the promotion threshold) plus the count, which
// rotates the replica choice.
func (c *Coordinator) noteKey(key uint64) (int64, bool) {
	c.hotMu.Lock()
	defer c.hotMu.Unlock()
	if len(c.hotKeys) >= maxHotKeys {
		c.hotKeys = make(map[uint64]int64)
	}
	c.hotKeys[key]++
	n := c.hotKeys[key]
	return n, n >= c.cfg.HotThreshold
}

// routeClass labels how a request reached its serving shard.
type routeClass uint8

const (
	routeOwner routeClass = iota
	routeReplica
	routeSpill
)

type candidate struct {
	sh    *shard
	class routeClass
}

// candidates orders the shards to try for key: the owner (or the hot
// key's rotated replica set), then every other live shard as spill
// targets, least-loaded first.
func (c *Coordinator) candidates(key uint64, seq int64, hot bool) []candidate {
	aliveFn := func(i int) bool { return c.shards[i].brk.available() }
	want := 1
	if hot {
		want = c.cfg.Replication
	}
	owners := c.ring.owners(key, want, aliveFn)
	out := make([]candidate, 0, len(c.shards))
	inOwners := make(map[*shard]bool, len(owners))
	// Rotate the replica set by the routed count so a hot key's
	// requests round-robin across its replicas; with one owner the
	// rotation is the identity.
	for i := range owners {
		sh := c.shards[owners[(int(seq)+i)%len(owners)]]
		class := routeOwner
		if hot && len(owners) > 1 && i != 0 {
			// Positions after the rotated head are fallbacks; the head
			// itself is the replica this request is assigned to.
			class = routeSpill
		}
		if i == 0 && hot && len(owners) > 1 {
			class = routeReplica
		}
		inOwners[sh] = true
		out = append(out, candidate{sh: sh, class: class})
	}
	var rest []candidate
	for i, sh := range c.shards {
		if !inOwners[sh] && aliveFn(i) {
			rest = append(rest, candidate{sh: sh, class: routeSpill})
		}
	}
	sort.SliceStable(rest, func(a, b int) bool {
		return rest[a].sh.inflight.Load() < rest[b].sh.inflight.Load()
	})
	return append(out, rest...)
}

// Sample routes one request: hash the engine-pool key onto the ring,
// then try candidates in order until one streams the ensemble.
// Pre-stream failures simply move to the next candidate; a shard that
// dies after delivering lines is failed over transparently by
// re-issuing the request to the next candidate with ResumeFrom set to
// the cursor of the last delivered line — determinism makes the
// replacement's suffix bit-identical, so the client sees one unbroken
// stream. Only when MaxAttempts shards have failed does the stream
// terminate with an in-band error line.
func (c *Coordinator) Sample(ctx context.Context, req *wire.SampleRequest, emit func(wire.Line) error) error {
	key, err := service.PoolKey(req)
	if err != nil {
		return err
	}
	// Root span of the coordinated request (or a child, when an
	// upstream tier propagated a trace). Shard attempts hang off it and
	// carry the trace to the shards over the wire header.
	ctx, span := c.tm.trc.StartSpan(ctx, "coordinator.route")
	span.SetAttr("key", fmt.Sprintf("%016x", key))
	start := time.Now()
	err = c.sample(ctx, req, emit, key)
	if err != nil {
		span.SetAttr("error", err.Error())
	}
	span.End()
	level := slog.LevelInfo
	if err != nil && ctx.Err() == nil && !errors.Is(err, service.ErrBadRequest) {
		level = slog.LevelWarn
	}
	c.tm.log.LogAttrs(ctx, level, "coordinated request",
		slog.String("trace", telemetry.TraceIDString(ctx)),
		slog.String("key", fmt.Sprintf("%016x", key)),
		slog.Int("samples", req.Samples),
		slog.Duration("duration", time.Since(start)),
		slog.Bool("ok", err == nil))
	return err
}

func (c *Coordinator) sample(ctx context.Context, req *wire.SampleRequest, emit func(wire.Line) error, key uint64) error {
	traceID := telemetry.TraceIDString(ctx)
	samples := req.Samples
	if samples <= 0 {
		samples = 1
	}
	base := req.ResumeFrom
	cursor := base

	seq, hot := c.noteKey(key)
	cands := c.candidates(key, seq-1, hot)
	if len(cands) == 0 {
		c.failed.Add(1)
		return &service.BackendError{Backend: c.cfg.ID, Op: "route", Err: errors.New("no live shards")}
	}

	attempts := 0
	var lastErr error
	lastShard := cands[0].sh.id
	for _, cand := range cands {
		if attempts >= c.cfg.MaxAttempts {
			break
		}
		sh := cand.sh
		if attempts > 0 && !sh.brk.available() {
			// Tripped since the candidate list was computed (possibly by
			// this very request's previous attempt).
			continue
		}
		attempts++
		if cursor > base {
			// Re-issuing mid-stream: the replacement shard fast-forwards
			// its chain to the cursor; the client never notices. The
			// splice is its own (instant) span so the trace records
			// where the stream changed shards, and it is logged with
			// the trace ID.
			c.midstreamFailovers.Add(1)
			_, sspan := c.tm.trc.StartSpan(ctx, "coordinator.splice")
			sspan.SetAttr("from", lastShard)
			sspan.SetAttr("to", sh.id)
			sspan.SetInt("cursor", int64(cursor))
			sspan.End()
			c.tm.log.Warn("mid-stream failover",
				slog.String("trace", traceID),
				slog.String("from", lastShard),
				slog.String("to", sh.id),
				slog.Int("cursor", cursor))
		}
		creq := *req
		creq.ResumeFrom = cursor

		var held *wire.Line
		var emitFailed error
		sh.requests.Add(1)
		sh.inflight.Add(1)
		// The attempt span's context carries the trace to the shard:
		// RemoteBackend stamps it into the wire header, the shard joins
		// it, and every line the shard streams back carries the same
		// trace ID — one coherent trace across the failover.
		attemptCtx, aspan := c.tm.trc.StartSpan(ctx, "shard.attempt")
		aspan.SetAttr("shard", sh.id)
		aspan.SetInt("resume_from", int64(cursor))
		err := sh.backend.Sample(attemptCtx, &creq, func(ln wire.Line) error {
			if ln.Error != "" {
				// Hold the shard's in-band terminator back: if failover
				// succeeds the client must never see it; if the failure
				// is genuinely terminal it is re-emitted below.
				cp := ln
				held = &cp
				return nil
			}
			if ln.Stats != nil && ln.Stats.Backend == "" {
				ln.Stats.Backend = sh.id
			}
			if ln.Stats != nil && ln.Stats.TraceID == "" {
				// A shard without telemetry streamed this line; stamp
				// the coordinator's trace so the stream stays coherent.
				ln.Stats.TraceID = traceID
			}
			if err := emit(ln); err != nil {
				emitFailed = err
				return err
			}
			c.samples.Add(1)
			if nc := ln.Cursor; nc > cursor {
				cursor = nc
			} else if ln.Index+1 > cursor {
				cursor = ln.Index + 1
			}
			return nil
		})
		sh.inflight.Add(-1)
		if err != nil {
			aspan.SetAttr("error", err.Error())
		}
		aspan.End()
		if err == nil {
			if sh.brk.onSuccess() {
				c.revivals.Add(1)
			}
			switch cand.class {
			case routeOwner:
				c.routedOwner.Add(1)
			case routeReplica:
				c.routedReplica.Add(1)
			default:
				c.routedSpill.Add(1)
			}
			return nil
		}
		lastErr = err
		lastShard = sh.id

		// The consumer's own failure, its cancellation, and a request
		// every shard rejects identically are terminal — no candidate
		// fixes them.
		if emitFailed != nil || ctx.Err() != nil || errors.Is(err, service.ErrBadRequest) {
			c.failed.Add(1)
			return err
		}
		var se *service.StreamError
		switch {
		case errors.As(err, &se):
			sh.errors.Add(1)
			if se.Line.Code == "canceled" || se.Line.Code == "deadline" {
				// The request's own timeout_ms budget expired mid-chain;
				// a fresh shard would burn the same budget again. Forward
				// the held terminator and give up.
				c.failed.Add(1)
				if held != nil {
					c.midstream.Add(1)
					if held.TraceID == "" {
						held.TraceID = traceID
					}
					emit(*held)
				}
				return err
			}
			// The shard reported an internal failure in-band ("backend",
			// "closed", "internal"): treat it like a transport death and
			// fail over from the cursor.
			if sh.brk.onFailure() {
				c.evictions.Add(1)
			}
		case errors.Is(err, service.ErrBackend):
			// Transport failure — refused dial, reset mid-body: trip
			// toward eviction; keys re-hash to live successors.
			sh.errors.Add(1)
			if sh.brk.onFailure() {
				c.evictions.Add(1)
			}
		case errors.Is(err, service.ErrOverloaded), errors.Is(err, service.ErrShuttingDown):
			// Skew or drain on the owner: spill without touching the
			// breaker — refusing load is not failing it.
			sh.errors.Add(1)
		default:
			// Unclassified failure (backend bug): count it and try the
			// next candidate anyway.
			sh.errors.Add(1)
		}
		if cursor >= samples {
			// The failure landed between the last sample line and the
			// clean EOF: the ensemble was fully delivered.
			return nil
		}
	}

	c.failed.Add(1)
	if cursor > base {
		// Every candidate is gone and the client holds a prefix:
		// terminate in-band, exactly as a single daemon's Service does.
		c.midstream.Add(1)
		emit(wire.Line{
			Index:   cursor,
			Cursor:  cursor,
			Error:   fmt.Sprintf("backend %s failed mid-stream: %v", lastShard, lastErr),
			Code:    "backend",
			TraceID: traceID,
		})
	}
	return lastErr
}

// Health reports "ok" while at least one shard is live.
func (c *Coordinator) Health(context.Context) (wire.Health, error) {
	status := "unavailable"
	for _, sh := range c.shards {
		if sh.brk.available() {
			status = "ok"
			break
		}
	}
	return wire.Health{Status: status, UptimeMS: time.Since(c.start).Milliseconds()}, nil
}

// Metrics exports the coordinator's routing counters and per-shard
// placement view. Shard-local detail (pool hit rates, queue depths)
// stays on the shards' own /v1/metrics endpoints.
func (c *Coordinator) Metrics(context.Context) (wire.Metrics, error) {
	cm := &wire.ClusterMetrics{
		RoutedOwner:        c.routedOwner.Load(),
		RoutedReplica:      c.routedReplica.Load(),
		RoutedSpill:        c.routedSpill.Load(),
		MidstreamFailovers: c.midstreamFailovers.Load(),
		MidstreamFailures:  c.midstream.Load(),
		Evictions:          c.evictions.Load(),
		Revivals:           c.revivals.Load(),
	}
	var inflight int64
	for _, sh := range c.shards {
		infl := sh.inflight.Load()
		inflight += infl
		cm.Shards = append(cm.Shards, wire.ShardMetrics{
			ID:       sh.id,
			URL:      sh.backend.URL(),
			Alive:    sh.brk.available(),
			Breaker:  sh.brk.stateName(),
			Inflight: infl,
			Requests: sh.requests.Load(),
			Errors:   sh.errors.Load(),
		})
	}
	c.hotMu.Lock()
	for key, n := range c.hotKeys {
		if n >= c.cfg.HotThreshold {
			cm.HotKeys = append(cm.HotKeys, wire.KeyHits{Key: fmt.Sprintf("%016x", key), Hits: n})
		}
	}
	c.hotMu.Unlock()
	sort.Slice(cm.HotKeys, func(i, j int) bool {
		if cm.HotKeys[i].Hits != cm.HotKeys[j].Hits {
			return cm.HotKeys[i].Hits > cm.HotKeys[j].Hits
		}
		return cm.HotKeys[i].Key < cm.HotKeys[j].Key
	})
	if len(cm.HotKeys) > 8 {
		cm.HotKeys = cm.HotKeys[:8]
	}
	routed := cm.RoutedOwner + cm.RoutedReplica + cm.RoutedSpill
	return wire.Metrics{
		Backend:          c.cfg.ID,
		RequestsTotal:    routed,
		RequestsInflight: inflight,
		RequestsFailed:   c.failed.Load(),
		SamplesTotal:     c.samples.Load(),
		UptimeMS:         time.Since(c.start).Milliseconds(),
		StartedAtMS:      c.start.UnixMilli(),
		Cluster:          cm,
	}, nil
}
