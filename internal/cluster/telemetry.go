package cluster

import (
	"io"
	"log/slog"

	"gesmc/internal/telemetry"
)

// coordTelemetry bundles the coordinator's observability instruments;
// all instruments are nil (no-op) when Config.NoTelemetry is set.
type coordTelemetry struct {
	reg *telemetry.Registry
	trc *telemetry.Tracer
	log *slog.Logger

	// roundTrip observes every backend request's wall time (shared
	// across shards via RemoteBackend.WithMetrics); backoff the retry
	// sleeps; attempt the per-candidate stream attempts.
	roundTrip *telemetry.Histogram
	backoff   *telemetry.Histogram

	// breakerTransitions counts per-shard breaker state changes,
	// labeled {shard, to}.
	breakerTransitions *telemetry.CounterVec
}

func newCoordTelemetry(enabled bool, logger *slog.Logger) *coordTelemetry {
	tm := &coordTelemetry{log: telemetry.Logger(logger)}
	if !enabled {
		return tm
	}
	tm.reg = telemetry.NewRegistry()
	tm.trc = telemetry.NewTracer()
	tm.roundTrip = tm.reg.Histogram("gesmc_backend_roundtrip_seconds",
		"Backend request wall time (streams included), per shard attempt.", telemetry.LatencyBuckets)
	tm.backoff = tm.reg.Histogram("gesmc_retry_backoff_seconds",
		"Retry backoff sleeps before re-issuing a backend request.", telemetry.LatencyBuckets)
	tm.breakerTransitions = tm.reg.CounterVec("gesmc_cluster_breaker_transitions_total",
		"Circuit-breaker state transitions, labeled by shard and destination state.")
	return tm
}

// registerFuncMetrics exposes the routing counters the coordinator
// already keeps as scrape-time func metrics, plus per-shard series and
// the breaker state.
func (c *Coordinator) registerFuncMetrics() {
	reg := c.tm.reg
	if reg == nil {
		return
	}
	counter := func(name, help string, v interface{ Load() int64 }) {
		reg.CounterFunc(name, help, func() float64 { return float64(v.Load()) })
	}
	counter("gesmc_cluster_routed_owner_total", "Requests served by their key's ring owner.", &c.routedOwner)
	counter("gesmc_cluster_routed_replica_total", "Requests served by a hot-key replica.", &c.routedReplica)
	counter("gesmc_cluster_routed_spill_total", "Requests spilled to a non-owner.", &c.routedSpill)
	counter("gesmc_cluster_midstream_failovers_total", "Mid-stream failures transparently failed over.", &c.midstreamFailovers)
	counter("gesmc_cluster_midstream_failures_total", "Streams terminated in-band after exhausting failover.", &c.midstream)
	counter("gesmc_cluster_evictions_total", "Shard breaker trips (alive → evicted).", &c.evictions)
	counter("gesmc_cluster_revivals_total", "Shard breaker re-admissions (evicted → alive).", &c.revivals)
	counter("gesmc_cluster_requests_failed_total", "Coordinated requests that terminated with an error.", &c.failed)
	counter("gesmc_cluster_samples_total", "Sample lines streamed through the coordinator.", &c.samples)
	reg.GaugeFunc("gesmc_started_at_seconds", "Process start, Unix seconds.",
		func() float64 { return float64(c.start.UnixMilli()) / 1e3 })
	reg.LabeledFunc("gesmc_cluster_shard_inflight", "Streams currently routed through each shard.", "gauge",
		func(emit func(string, float64)) {
			for _, sh := range c.shards {
				emit(telemetry.Labels("shard", sh.id), float64(sh.inflight.Load()))
			}
		})
	reg.LabeledFunc("gesmc_cluster_shard_requests_total", "Attempts routed to each shard.", "counter",
		func(emit func(string, float64)) {
			for _, sh := range c.shards {
				emit(telemetry.Labels("shard", sh.id), float64(sh.requests.Load()))
			}
		})
	reg.LabeledFunc("gesmc_cluster_shard_errors_total", "Failed attempts per shard.", "counter",
		func(emit func(string, float64)) {
			for _, sh := range c.shards {
				emit(telemetry.Labels("shard", sh.id), float64(sh.errors.Load()))
			}
		})
	reg.LabeledFunc("gesmc_cluster_breaker_state",
		"Circuit-breaker state per shard, one-hot over {closed, open, half_open}.", "gauge",
		func(emit func(string, float64)) {
			for _, sh := range c.shards {
				state := sh.brk.stateName()
				for _, s := range []string{"closed", "open", "half_open"} {
					v := 0.0
					if s == state {
						v = 1
					}
					emit(telemetry.Labels("shard", sh.id, "state", s), v)
				}
			}
		})
}

// WritePrometheus renders the coordinator's metric families; false
// means telemetry is disabled (serve the JSON document instead).
func (c *Coordinator) WritePrometheus(w io.Writer) bool {
	if c.tm.reg == nil {
		return false
	}
	c.tm.reg.WritePrometheus(w)
	return true
}

// TraceDump returns the stored spans of one coordinated request trace.
func (c *Coordinator) TraceDump(id string) ([]telemetry.SpanDump, bool) {
	return c.tm.trc.Dump(id)
}

// Tracer exposes the coordinator's tracer so the HTTP layer can join
// traces propagated by upstream tiers.
func (c *Coordinator) Tracer() *telemetry.Tracer {
	return c.tm.trc
}
