package cluster

import (
	"bytes"
	"context"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gesmc/internal/faultinject"
	"gesmc/wire"
)

// TestFailoverStreamOneCoherentTrace is the tracing acceptance gate: a
// coordinated stream that fails over mid-flight still yields ONE trace
// — every line (from both shards) stamped with the same trace ID, and
// the coordinator's span dump covering both shard attempts plus the
// splice between them.
func TestFailoverStreamOneCoherentTrace(t *testing.T) {
	c := testCoordinator(t, Config{}, testShard(t, "shard-0"), testShard(t, "shard-1"))
	req := seedOwnedBy(t, c, 0, wire.SampleRequest{Degrees: []int{4, 3, 3, 2, 2, 2, 1, 1}, Samples: 6, Workers: 2})
	faultinject.Enable(faultinject.Fault{Point: faultinject.ServerStream, Mode: faultinject.Cut, AfterLines: 3, Hits: 1})
	defer faultinject.Reset()

	lines, err := collectErr(c, &req)
	if err != nil {
		t.Fatalf("chaos stream err=%v, want transparent failover", err)
	}
	if len(lines) != 6 {
		t.Fatalf("%d lines, want 6", len(lines))
	}
	traceID := lines[0].Stats.TraceID
	if traceID == "" {
		t.Fatal("no trace ID on first line")
	}
	for i, ln := range lines {
		if ln.Stats == nil || ln.Stats.TraceID != traceID {
			t.Fatalf("line %d: trace ID %q, want %q on every line across the failover", i, ln.Stats.TraceID, traceID)
		}
	}

	spans, ok := c.TraceDump(traceID)
	if !ok {
		t.Fatalf("coordinator has no spans for trace %s", traceID)
	}
	attempts := map[string]bool{} // shard attr → seen
	var sawRoute, sawSplice bool
	for _, s := range spans {
		switch s.Name {
		case "coordinator.route":
			sawRoute = true
		case "shard.attempt":
			attempts[s.Attrs["shard"]] = true
		case "coordinator.splice":
			sawSplice = true
			if s.Attrs["from"] != "shard-0" || s.Attrs["to"] != "shard-1" || s.Attrs["cursor"] != "3" {
				t.Fatalf("splice span attrs: %+v", s.Attrs)
			}
		}
	}
	if !sawRoute || !sawSplice || !attempts["shard-0"] || !attempts["shard-1"] {
		t.Fatalf("trace incomplete: route=%v splice=%v attempts=%v (spans: %+v)",
			sawRoute, sawSplice, attempts, spans)
	}

	// A second stream gets its own trace: IDs are per-request.
	req2 := req
	req2.Seed++
	lines2, err := collectErr(c, &req2)
	if err != nil {
		t.Fatal(err)
	}
	if lines2[0].Stats.TraceID == traceID {
		t.Fatalf("second stream reused trace ID %s", traceID)
	}
}

// TestBreakerTransitionsLoggedAndCounted: tripping and reviving a
// shard's breaker emits structured log lines naming the shard and the
// destination state, and increments the labeled transition counter in
// the Prometheus exposition — the events were previously silent.
func TestBreakerTransitionsLoggedAndCounted(t *testing.T) {
	var logBuf bytes.Buffer
	// A shard whose health endpoint always answers 503: the first probe
	// trips its breaker.
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	dead := httptest.NewServer(mux)
	t.Cleanup(dead.Close)
	live := testShard(t, "shard-1")
	c := testCoordinator(t, Config{
		BreakerCooldown: time.Nanosecond,
		Logger:          slog.New(slog.NewTextHandler(&logBuf, nil)),
	}, dead, live)

	c.CheckHealth(context.Background()) // probe failure trips shard-0: closed → open
	out := logBuf.String()
	if !strings.Contains(out, "breaker transition") ||
		!strings.Contains(out, "shard=shard-0") ||
		!strings.Contains(out, "to=open") {
		t.Fatalf("trip not logged:\n%s", out)
	}

	var prom bytes.Buffer
	if !c.WritePrometheus(&prom) {
		t.Fatal("telemetry unexpectedly disabled")
	}
	text := prom.String()
	if !strings.Contains(text, `gesmc_cluster_breaker_transitions_total{shard="shard-0",to="open"} 1`) {
		t.Fatalf("transition counter missing:\n%s", text)
	}
	if !strings.Contains(text, `gesmc_cluster_breaker_state{shard="shard-0",state="open"} 1`) ||
		!strings.Contains(text, `gesmc_cluster_breaker_state{shard="shard-1",state="closed"} 1`) {
		t.Fatalf("breaker state gauges wrong:\n%s", text)
	}
}
