package cluster

import (
	"testing"
)

func keysFor(n int) []uint64 {
	keys := make([]uint64, n)
	// SplitMix64-style sequence: well-spread, deterministic.
	x := uint64(0x9e3779b97f4a7c15)
	for i := range keys {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		keys[i] = z ^ (z >> 31)
	}
	return keys
}

func TestRingDeterministicAndBalanced(t *testing.T) {
	ids := []string{"a", "b", "c", "d"}
	r1 := newRing(ids, 64)
	r2 := newRing(ids, 64)
	counts := make([]int, len(ids))
	for _, k := range keysFor(4000) {
		o1 := r1.owners(k, 1, nil)
		o2 := r2.owners(k, 1, nil)
		if len(o1) != 1 || len(o2) != 1 || o1[0] != o2[0] {
			t.Fatalf("key %x: owners %v vs %v", k, o1, o2)
		}
		counts[o1[0]]++
	}
	// 64 vnodes keep the split rough but nobody starves or hogs.
	for i, c := range counts {
		if c < 400 || c > 2200 {
			t.Fatalf("shard %d owns %d of 4000 keys: %v", i, c, counts)
		}
	}
}

// TestRingRehashOnEviction is the consistency property the engine-pool
// locality rides on: killing one shard moves only its own keys (to
// their next live successor) — every other key keeps its owner.
func TestRingRehashOnEviction(t *testing.T) {
	ids := []string{"a", "b", "c"}
	r := newRing(ids, 64)
	keys := keysFor(2000)
	before := make([]int, len(keys))
	for i, k := range keys {
		before[i] = r.owners(k, 1, nil)[0]
	}
	const dead = 1
	alive := func(i int) bool { return i != dead }
	moved := 0
	for i, k := range keys {
		o := r.owners(k, 1, alive)
		if len(o) != 1 {
			t.Fatalf("key %x: no owner with one shard dead", k)
		}
		if o[0] == dead {
			t.Fatalf("key %x routed to the dead shard", k)
		}
		if before[i] != dead && o[0] != before[i] {
			t.Fatalf("key %x moved from live shard %d to %d", k, before[i], o[0])
		}
		if before[i] == dead {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("dead shard owned no keys; test is vacuous")
	}
}

func TestRingOwnersDistinctAndOrdered(t *testing.T) {
	ids := []string{"a", "b", "c"}
	r := newRing(ids, 32)
	for _, k := range keysFor(200) {
		owners := r.owners(k, 3, nil)
		if len(owners) != 3 {
			t.Fatalf("key %x: owners %v", k, owners)
		}
		seen := map[int]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("key %x: duplicate owner in %v", k, owners)
			}
			seen[o] = true
		}
		// Asking for more than exist caps at the shard count.
		if got := r.owners(k, 5, nil); len(got) != 3 {
			t.Fatalf("key %x: want capped owners, got %v", k, got)
		}
		// Replica sets are prefixes: the 2-owner list is the head of
		// the 3-owner list, so promotion only adds shards.
		two := r.owners(k, 2, nil)
		if two[0] != owners[0] || two[1] != owners[1] {
			t.Fatalf("key %x: replica prefix broken: %v vs %v", k, two, owners)
		}
	}
	// No live shards → no owners.
	if got := newRing(ids, 8).owners(42, 2, func(int) bool { return false }); len(got) != 0 {
		t.Fatalf("owners with all dead: %v", got)
	}
}
