// Package cluster is the horizontal scale-out tier of the sampling
// service: a coordinator that consistent-hashes requests by their
// engine-pool key onto a ring of gesmcd backends, so pooled burned-in
// engines are reused cluster-wide — the 0.94 single-process pool hit
// rate is the asset the routing protects. Hot keys are replicated
// across up to R shards, dead backends are health-checked out of the
// ring (their keys re-hash to the next live successor), and overloaded
// or draining owners spill to the least-loaded live shard. The
// coordinator implements service.Backend, so service.NewBackendHandler
// serves it over the exact HTTP/NDJSON protocol the daemons speak —
// coordinators stack transparently in front of daemons (and, in
// principle, of other coordinators).
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring: every shard contributes vnodes
// points hashed from "id#vnode", and a key is owned by the first live
// shard at or clockwise-after the key's position. Removing a shard
// moves only its own arcs to their successors — every other key keeps
// its owner, which is what preserves pooled-engine locality across
// membership changes.
type ring struct {
	points []ringPoint // sorted by hash
	shards int
}

type ringPoint struct {
	hash  uint64
	shard int
}

// mix64 is the SplitMix64 finalizer: FNV over short strings with
// sequential vnode suffixes leaves the high bits clustered, which
// skews arc lengths badly; the finalizer spreads the points evenly.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func hashPoint(id string, vnode int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s#%d", id, vnode)
	return mix64(h.Sum64())
}

// newRing builds the ring from the shard IDs, vnodes points each.
// Ties (FNV collisions between points) break by shard index so the
// ring is identical on every coordinator given the same ID list.
func newRing(ids []string, vnodes int) *ring {
	r := &ring{points: make([]ringPoint, 0, len(ids)*vnodes), shards: len(ids)}
	for i, id := range ids {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hashPoint(id, v), shard: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].shard < r.points[b].shard
	})
	return r
}

// owners walks clockwise from key's successor point and returns the
// first want distinct shards passing alive, in ring order. Dead shards
// are skipped entirely — that is the deterministic re-hash on
// eviction — and fewer than want shards come back when the live set is
// smaller.
func (r *ring) owners(key uint64, want int, alive func(int) bool) []int {
	if len(r.points) == 0 || want <= 0 {
		return nil
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	seen := make([]bool, r.shards)
	out := make([]int, 0, want)
	for k := 0; k < len(r.points) && len(out) < want; k++ {
		p := r.points[(start+k)%len(r.points)]
		if seen[p.shard] {
			continue
		}
		seen[p.shard] = true
		if alive == nil || alive(p.shard) {
			out = append(out, p.shard)
		}
	}
	return out
}
