// Package faultinject is the chaos-injection registry of the sampling
// service: named fault points compiled into the daemon handler and the
// RemoteBackend transport, armed at runtime by tests (or the gesmcd
// -faults flag) to simulate the failures the recovery layer must
// survive — a backend killed mid-stream, a stalled response, a 503
// burst, a refused dial, a flapping health endpoint.
//
// The registry is build-safe: the fault points ship in production
// binaries, but an unarmed registry costs one atomic load per check
// (Lookup returns nil without taking a lock while nothing is armed),
// so the hooks are free until a chaos harness arms them.
//
// Faults are identified by point name. Arming a point replaces any
// fault already armed there; Hits bounds how many times the fault
// fires before it exhausts in place (0 = unlimited). Typical test use:
//
//	faultinject.Enable(faultinject.Fault{
//	        Point: faultinject.ServerStream, Mode: faultinject.Cut,
//	        AfterLines: 4, Hits: 1,
//	})
//	defer faultinject.Reset()
package faultinject

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects the failure behavior of an armed fault. The meaning is
// interpreted by the fault point: Cut severs a response stream without
// a clean EOF, Stall sleeps Delay before proceeding, Deny fails the
// operation outright (an HTTP point answers Status, a transport point
// synthesizes a connection refusal), and Flap alternates Deny and
// success on consecutive triggers (the probe-flap scenario a circuit
// breaker must not be fooled by).
type Mode uint8

const (
	// Cut severs the stream after AfterLines lines, with no clean EOF —
	// the wire image of a daemon killed mid-stream.
	Cut Mode = iota + 1
	// Stall sleeps Delay at the fault point before proceeding.
	Stall
	// Deny fails the operation: HTTP points answer Status (default
	// 503), the transport point reports a refused connection.
	Deny
	// Flap alternates Deny and success per trigger, starting with Deny.
	Flap
)

func (m Mode) String() string {
	switch m {
	case Cut:
		return "cut"
	case Stall:
		return "stall"
	case Deny:
		return "deny"
	case Flap:
		return "flap"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// The named fault points wired into the service.
const (
	// ServerSample fires in the daemon handler before a sampling
	// request is admitted (Deny = pre-stream 503/429 burst).
	ServerSample = "server.sample"
	// ServerStream fires in the daemon handler per streamed line, once
	// AfterLines lines have been written (Cut = kill mid-stream).
	ServerStream = "server.stream"
	// ServerHealth fires in the /v1/healthz handler (Deny = dead probe,
	// Flap = probe flapping).
	ServerHealth = "server.health"
	// RemoteRequest fires in RemoteBackend before the HTTP request is
	// issued (Deny = dial refusal, Stall = slow connect).
	RemoteRequest = "remote.request"
)

// Fault is the configuration of one armed fault.
type Fault struct {
	// Point names the fault point (one of the constants above, or any
	// string a custom integration checks).
	Point string
	// Mode selects the behavior.
	Mode Mode
	// AfterLines delays a ServerStream fault until that many lines have
	// been streamed (0 = fire on the first line).
	AfterLines int
	// Status is the HTTP status a Deny/Flap fault answers (0 = 503).
	Status int
	// Delay is the Stall duration.
	Delay time.Duration
	// Hits bounds how many times the fault fires before exhausting
	// (0 = unlimited).
	Hits int64
}

// Armed is a Fault armed in the registry, carrying its trigger
// counters. Fault points interrogate it with Spend and Fail.
type Armed struct {
	Fault
	spent atomic.Int64
	calls atomic.Int64
}

// Spend consumes one trigger charge, reporting whether the fault still
// fires. With Hits == 0 it always fires; otherwise the first Hits
// calls fire and later ones do not (the fault exhausts in place).
func (a *Armed) Spend() bool {
	if a.Hits <= 0 {
		return true
	}
	return a.spent.Add(1) <= a.Hits
}

// Fail reports whether a Deny-class trigger should fail this call:
// Deny fails every (non-exhausted) call, Flap fails every other one,
// starting with a failure. Other modes never Fail.
func (a *Armed) Fail() bool {
	switch a.Mode {
	case Deny:
		return a.Spend()
	case Flap:
		if a.calls.Add(1)%2 == 1 {
			return a.Spend()
		}
		return false
	}
	return false
}

// DenyStatus is the HTTP status a Deny/Flap fault answers.
func (a *Armed) DenyStatus() int {
	if a.Status != 0 {
		return a.Status
	}
	return 503
}

var (
	mu     sync.RWMutex
	armed  map[string]*Armed
	active atomic.Int32 // len(armed), read lock-free on the fast path
)

// Enable arms f at its point, replacing any fault armed there.
func Enable(f Fault) {
	mu.Lock()
	defer mu.Unlock()
	if armed == nil {
		armed = make(map[string]*Armed)
	}
	armed[f.Point] = &Armed{Fault: f}
	active.Store(int32(len(armed)))
}

// Disable disarms the fault at point, if any.
func Disable(point string) {
	mu.Lock()
	defer mu.Unlock()
	delete(armed, point)
	active.Store(int32(len(armed)))
}

// Reset disarms every fault.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed = nil
	active.Store(0)
}

// Lookup returns the fault armed at point, or nil. The nothing-armed
// fast path is one atomic load; production traffic never takes the
// registry lock.
func Lookup(point string) *Armed {
	if active.Load() == 0 {
		return nil
	}
	mu.RLock()
	defer mu.RUnlock()
	return armed[point]
}

// Sleep blocks for d or until ctx is done — the Stall implementation,
// shared by the fault points so a stalled handler still honors
// cancellation.
func Sleep(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// ParseSpec parses the -faults flag grammar: comma-separated faults,
// each "point:mode[:key=value...]" with keys after, status, delay,
// hits. Example:
//
//	server.stream:cut:after=5:hits=1,server.health:flap
func ParseSpec(spec string) ([]Fault, error) {
	var out []Fault
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		parts := strings.Split(item, ":")
		if len(parts) < 2 {
			return nil, fmt.Errorf("faultinject: %q: want point:mode[:key=value...]", item)
		}
		f := Fault{Point: parts[0]}
		switch parts[1] {
		case "cut":
			f.Mode = Cut
		case "stall":
			f.Mode = Stall
		case "deny":
			f.Mode = Deny
		case "flap":
			f.Mode = Flap
		default:
			return nil, fmt.Errorf("faultinject: %q: unknown mode %q", item, parts[1])
		}
		for _, kv := range parts[2:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("faultinject: %q: malformed parameter %q", item, kv)
			}
			switch k {
			case "after":
				n, err := strconv.Atoi(v)
				if err != nil {
					return nil, fmt.Errorf("faultinject: %q: after=%q: %v", item, v, err)
				}
				f.AfterLines = n
			case "status":
				n, err := strconv.Atoi(v)
				if err != nil {
					return nil, fmt.Errorf("faultinject: %q: status=%q: %v", item, v, err)
				}
				f.Status = n
			case "delay":
				d, err := time.ParseDuration(v)
				if err != nil {
					return nil, fmt.Errorf("faultinject: %q: delay=%q: %v", item, v, err)
				}
				f.Delay = d
			case "hits":
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("faultinject: %q: hits=%q: %v", item, v, err)
				}
				f.Hits = n
			default:
				return nil, fmt.Errorf("faultinject: %q: unknown parameter %q", item, k)
			}
		}
		out = append(out, f)
	}
	return out, nil
}
