package faultinject

import (
	"testing"
	"time"
)

func TestLookupUnarmedIsNil(t *testing.T) {
	Reset()
	if Lookup(ServerStream) != nil {
		t.Fatal("unarmed registry returned a fault")
	}
	Enable(Fault{Point: ServerStream, Mode: Cut, AfterLines: 3})
	defer Reset()
	if f := Lookup(ServerStream); f == nil || f.AfterLines != 3 {
		t.Fatalf("armed fault: %+v", f)
	}
	if Lookup(ServerHealth) != nil {
		t.Fatal("different point returned the armed fault")
	}
	Disable(ServerStream)
	if Lookup(ServerStream) != nil {
		t.Fatal("disabled fault still armed")
	}
}

func TestSpendHonorsHitBudget(t *testing.T) {
	defer Reset()
	Enable(Fault{Point: ServerSample, Mode: Deny, Hits: 2})
	f := Lookup(ServerSample)
	if !f.Spend() || !f.Spend() {
		t.Fatal("budgeted hits must fire")
	}
	if f.Spend() {
		t.Fatal("exhausted fault still fires")
	}
	Enable(Fault{Point: ServerSample, Mode: Deny}) // Hits 0 = unlimited
	f = Lookup(ServerSample)
	for i := 0; i < 10; i++ {
		if !f.Spend() {
			t.Fatal("unlimited fault stopped firing")
		}
	}
}

func TestFailModes(t *testing.T) {
	defer Reset()
	deny := &Armed{Fault: Fault{Mode: Deny}}
	for i := 0; i < 3; i++ {
		if !deny.Fail() {
			t.Fatal("Deny must fail every call")
		}
	}
	if deny.DenyStatus() != 503 {
		t.Fatalf("default deny status %d", deny.DenyStatus())
	}
	burst := &Armed{Fault: Fault{Mode: Deny, Status: 429}}
	if burst.DenyStatus() != 429 {
		t.Fatalf("deny status %d", burst.DenyStatus())
	}
	flap := &Armed{Fault: Fault{Mode: Flap}}
	want := []bool{true, false, true, false}
	for i, w := range want {
		if got := flap.Fail(); got != w {
			t.Fatalf("flap call %d: %v, want %v", i, got, w)
		}
	}
	cut := &Armed{Fault: Fault{Mode: Cut}}
	if cut.Fail() {
		t.Fatal("Cut is not a Deny-class mode")
	}
}

func TestParseSpec(t *testing.T) {
	faults, err := ParseSpec("server.stream:cut:after=5:hits=1, server.health:flap, remote.request:stall:delay=20ms, server.sample:deny:status=429")
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) != 4 {
		t.Fatalf("%d faults", len(faults))
	}
	if f := faults[0]; f.Point != ServerStream || f.Mode != Cut || f.AfterLines != 5 || f.Hits != 1 {
		t.Fatalf("fault 0: %+v", f)
	}
	if f := faults[1]; f.Point != ServerHealth || f.Mode != Flap {
		t.Fatalf("fault 1: %+v", f)
	}
	if f := faults[2]; f.Mode != Stall || f.Delay != 20*time.Millisecond {
		t.Fatalf("fault 2: %+v", f)
	}
	if f := faults[3]; f.Mode != Deny || f.Status != 429 {
		t.Fatalf("fault 3: %+v", f)
	}

	for _, bad := range []string{
		"server.stream",           // no mode
		"server.stream:explode",   // unknown mode
		"server.stream:cut:after", // malformed kv
		"server.stream:cut:after=x",
		"server.stream:cut:color=red",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", bad)
		}
	}
}
