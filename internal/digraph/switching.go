package digraph

import (
	"context"
	"errors"
	"time"

	"gesmc/internal/switching"
)

// Switch is one directed edge switch: two arc-list indices. It is the
// kernel's switch type; the direction bit is ignored by directed chains
// (Definition 1 adapted; exchanging tails instead of heads yields the
// same unordered pair of target arcs).
type Switch = switching.Switch

// ErrTooSmall is returned for digraphs with fewer than two arcs.
var ErrTooSmall = errors.New("digraph: graph has fewer than 2 arcs")

// ExecuteSequential performs the switches in order on arc list A with
// membership set S (a map-backed set): a switch is rejected iff a target
// arc is a loop or already exists. Reference semantics for the parallel
// runner.
func ExecuteSequential(A []Arc, S map[Arc]struct{}, switches []Switch) int64 {
	var legal int64
	for _, sw := range switches {
		a1, a2 := A[sw.I], A[sw.J]
		t1, t2 := SwitchTargets(a1, a2)
		if t1.IsLoop() || t2.IsLoop() {
			continue
		}
		if _, ok := S[t1]; ok {
			continue
		}
		if _, ok := S[t2]; ok {
			continue
		}
		delete(S, a1)
		delete(S, a2)
		S[t1] = struct{}{}
		S[t2] = struct{}{}
		A[sw.I] = t1
		A[sw.J] = t2
		legal++
	}
	return legal
}

// SuperstepRunner decides batches of source-independent directed
// switches in parallel. It is the directed instantiation of the generic
// kernel in internal/switching — identical round structure, pessimistic
// scheduler, and padded counters as the undirected Algorithm 1; the arc
// type's Targets method (head exchange) is the only directed
// ingredient. Arcs pack (tail, head) in 32+32 bits exactly like
// canonical edges pack (min, max); the conc containers never
// canonicalize, so the reuse is sound as long as nodes stay below 2^28
// (checked at graph construction).
type SuperstepRunner = switching.Runner[Arc]

// NewSuperstepRunner prepares a runner over the arc list A.
func NewSuperstepRunner(A []Arc, maxSwitches, workers int) *SuperstepRunner {
	return switching.NewRunner(A, maxSwitches, workers)
}

// GlobalSwitches pairs a permutation prefix into directed switches.
func GlobalSwitches(perm []uint32, l int, buf []Switch) []Switch {
	buf = buf[:0]
	for k := 0; k < l; k++ {
		buf = append(buf, Switch{I: perm[2*k], J: perm[2*k+1]})
	}
	return buf
}

// RunStats reports a directed randomization run.
type RunStats struct {
	Supersteps int
	Attempted  int64
	Legal      int64
	// Parallel superstep instrumentation (zero for sequential chains).
	InternalSupersteps int
	TotalRounds        int64
	AvgRounds          float64
	MaxRounds          int
	FirstRoundTime     time.Duration
	LaterRoundsTime    time.Duration
	// Constraint instrumentation (zero without an active constraint).
	Vetoed         int64
	EscapeAttempts int64
	EscapeMoves    int64
	Duration       time.Duration
}

// run is the shared one-shot wrapper over NewEngine + Steps.
func run(g *DiGraph, alg Algorithm, supersteps int, cfg Config) (*RunStats, error) {
	start := time.Now()
	e, err := NewEngine(g, alg, cfg)
	if err != nil {
		return nil, err
	}
	stats, err := e.Steps(context.Background(), supersteps)
	if err != nil {
		return nil, err
	}
	stats.Duration = time.Since(start)
	return &stats, nil
}

// ParGlobalES runs the directed G-ES-MC in parallel: per superstep a
// parallel random permutation pairs all arcs, ℓ ~ Binom(⌊m/2⌋, 1−P_L)
// switches execute as one parallel superstep. One-shot form of
// NewEngine(g, AlgParGlobalES, ...) + Steps.
func ParGlobalES(g *DiGraph, supersteps, workers int, loopProb float64, seed uint64) (*RunStats, error) {
	return run(g, AlgParGlobalES, supersteps, Config{Workers: workers, LoopProb: loopProb, Seed: seed})
}

// SeqGlobalES is the sequential directed G-ES-MC reference.
func SeqGlobalES(g *DiGraph, supersteps int, loopProb float64, seed uint64) (*RunStats, error) {
	return run(g, AlgSeqGlobalES, supersteps, Config{LoopProb: loopProb, Seed: seed})
}

// SeqES is the sequential directed ES-MC: supersteps × ⌊m/2⌋ uniform
// switches.
func SeqES(g *DiGraph, supersteps int, seed uint64) (*RunStats, error) {
	return run(g, AlgSeqES, supersteps, Config{Seed: seed})
}
