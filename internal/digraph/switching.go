package digraph

import (
	"context"
	"errors"
	"time"

	"gesmc/internal/conc"
	"gesmc/internal/graph"
)

// Switch is one directed edge switch: two arc-list indices. Directed
// switches need no direction bit (Definition 1 adapted; exchanging tails
// instead of heads yields the same unordered pair of target arcs).
type Switch struct {
	I, J uint32
}

// ErrTooSmall is returned for digraphs with fewer than two arcs.
var ErrTooSmall = errors.New("digraph: graph has fewer than 2 arcs")

// ExecuteSequential performs the switches in order on arc list A with
// membership set S (a map-backed set): a switch is rejected iff a target
// arc is a loop or already exists. Reference semantics for the parallel
// runner.
func ExecuteSequential(A []Arc, S map[Arc]struct{}, switches []Switch) int64 {
	var legal int64
	for _, sw := range switches {
		a1, a2 := A[sw.I], A[sw.J]
		t1, t2 := SwitchTargets(a1, a2)
		if t1.IsLoop() || t2.IsLoop() {
			continue
		}
		if _, ok := S[t1]; ok {
			continue
		}
		if _, ok := S[t2]; ok {
			continue
		}
		delete(S, a1)
		delete(S, a2)
		S[t1] = struct{}{}
		S[t2] = struct{}{}
		A[sw.I] = t1
		A[sw.J] = t2
		legal++
	}
	return legal
}

// arcEdge reinterprets an arc as a conc key. Arcs pack (tail, head) in
// 32+32 bits exactly like canonical edges pack (min, max); the conc
// containers never canonicalize, so the reuse is sound as long as nodes
// stay below 2^28 (checked at graph construction).
func arcEdge(a Arc) graph.Edge { return graph.Edge(a) }

// SuperstepRunner decides batches of source-independent directed
// switches in parallel with the same round structure as the undirected
// Algorithm 1: erase tuples for the two source arcs, insert tuples for
// the two target arcs, delays on undecided earlier switches.
type SuperstepRunner struct {
	A       []Arc
	Set     *conc.EdgeSet
	table   *conc.DepTable
	workers int

	undecided []int32
	delayed   [][]int32

	InternalSupersteps int
	TotalRounds        int64
	MaxRounds          int
	Legal              int64
	FirstRoundTime     time.Duration
	LaterRoundsTime    time.Duration
}

// NewSuperstepRunner prepares a runner over the arc list A.
func NewSuperstepRunner(A []Arc, maxSwitches, workers int) *SuperstepRunner {
	if workers < 1 {
		workers = 1
	}
	set := conc.NewEdgeSet(len(A) * 2)
	conc.Blocks(len(A), workers, func(_, lo, hi int) {
		for _, a := range A[lo:hi] {
			set.InsertUnique(arcEdge(a))
		}
	})
	return &SuperstepRunner{
		A:       A,
		Set:     set,
		table:   conc.NewDepTable(maxSwitches),
		workers: workers,
		delayed: make([][]int32, workers),
	}
}

// Run performs one superstep of switches without source dependencies.
func (r *SuperstepRunner) Run(switches []Switch) {
	n := len(switches)
	if n == 0 {
		return
	}
	w := r.workers
	t := r.table
	t.Reset(n, w)

	conc.Blocks(n, w, func(_, lo, hi int) {
		for k := lo; k < hi; k++ {
			sw := switches[k]
			a1, a2 := r.A[sw.I], r.A[sw.J]
			t1, t2 := SwitchTargets(a1, a2)
			t.Store(k, 0, arcEdge(a1), conc.KindErase)
			t.Store(k, 1, arcEdge(a2), conc.KindErase)
			t.Store(k, 2, arcEdge(t1), conc.KindInsert)
			t.Store(k, 3, arcEdge(t2), conc.KindInsert)
		}
	})

	undecided := r.undecided[:0]
	for k := 0; k < n; k++ {
		undecided = append(undecided, int32(k))
	}
	rounds := 0
	var legalCount int64
	for len(undecided) > 0 {
		roundStart := time.Now()
		rounds++
		for i := range r.delayed {
			r.delayed[i] = r.delayed[i][:0]
		}
		legals := make([]int64, w)
		conc.Blocks(len(undecided), w, func(worker, lo, hi int) {
			for _, k := range undecided[lo:hi] {
				st := r.decide(switches[k], int(k))
				switch st {
				case conc.StatusLegal:
					legals[worker]++
				case conc.StatusUndecided:
					r.delayed[worker] = append(r.delayed[worker], k)
				}
				if st != conc.StatusUndecided {
					t.Status[int(k)].Store(st)
				}
			}
		})
		for _, l := range legals {
			legalCount += l
		}
		undecided = undecided[:0]
		for _, d := range r.delayed {
			undecided = append(undecided, d...)
		}
		if rounds == 1 {
			r.FirstRoundTime += time.Since(roundStart)
		} else {
			r.LaterRoundsTime += time.Since(roundStart)
		}
	}
	r.undecided = undecided

	conc.Blocks(n, w, func(_, lo, hi int) {
		for k := lo; k < hi; k++ {
			if t.Status[k].Load() != conc.StatusLegal {
				continue
			}
			base := 4 * k
			r.Set.EraseUnique(graph.Edge(t.Key(base)))
			r.Set.EraseUnique(graph.Edge(t.Key(base + 1)))
		}
	})
	conc.Blocks(n, w, func(_, lo, hi int) {
		for k := lo; k < hi; k++ {
			if t.Status[k].Load() != conc.StatusLegal {
				continue
			}
			base := 4 * k
			r.Set.InsertUnique(graph.Edge(t.Key(base + 2)))
			r.Set.InsertUnique(graph.Edge(t.Key(base + 3)))
		}
	})
	if r.Set.NeedsCompact() {
		edges := make([]graph.Edge, len(r.A))
		for i, a := range r.A {
			edges[i] = arcEdge(a)
		}
		r.Set.Compact(edges, w)
	}

	r.Legal += legalCount
	r.InternalSupersteps++
	r.TotalRounds += int64(rounds)
	if rounds > r.MaxRounds {
		r.MaxRounds = rounds
	}
}

func (r *SuperstepRunner) decide(sw Switch, k int) uint32 {
	t := r.table
	base := 4 * k
	a1 := Arc(t.Key(base))
	a2 := Arc(t.Key(base + 1))
	t1 := Arc(t.Key(base + 2))
	t2 := Arc(t.Key(base + 3))

	st := conc.StatusLegal
	if t1.IsLoop() || t2.IsLoop() || a1 == a2 ||
		t1 == a1 || t1 == a2 || t2 == a1 || t2 == a2 {
		st = conc.StatusIllegal
	} else {
		delay := false
		for _, target := range [2]Arc{t1, t2} {
			key := arcEdge(target)
			if p, ok := t.EraseTuple(key); ok {
				if k < p {
					st = conc.StatusIllegal
					break
				}
				switch t.Status[p].Load() {
				case conc.StatusIllegal:
					st = conc.StatusIllegal
				case conc.StatusUndecided:
					delay = true
				}
				if st == conc.StatusIllegal {
					break
				}
			} else if r.Set.Contains(key) {
				st = conc.StatusIllegal
				break
			}
			if q, sq, ok := t.MinInsert(key); ok && q < k {
				if sq == conc.StatusLegal {
					st = conc.StatusIllegal
					break
				}
				if sq == conc.StatusUndecided {
					delay = true
				}
			}
		}
		if st != conc.StatusIllegal && delay {
			return conc.StatusUndecided
		}
	}
	if st == conc.StatusLegal {
		r.A[sw.I] = t1
		r.A[sw.J] = t2
	}
	return st
}

// GlobalSwitches pairs a permutation prefix into directed switches.
func GlobalSwitches(perm []uint32, l int, buf []Switch) []Switch {
	buf = buf[:0]
	for k := 0; k < l; k++ {
		buf = append(buf, Switch{I: perm[2*k], J: perm[2*k+1]})
	}
	return buf
}

// RunStats reports a directed randomization run.
type RunStats struct {
	Supersteps int
	Attempted  int64
	Legal      int64
	// Parallel superstep instrumentation (zero for sequential chains).
	InternalSupersteps int
	TotalRounds        int64
	AvgRounds          float64
	MaxRounds          int
	Duration           time.Duration
}

// run is the shared one-shot wrapper over NewEngine + Steps.
func run(g *DiGraph, alg Algorithm, supersteps int, cfg Config) (*RunStats, error) {
	start := time.Now()
	e, err := NewEngine(g, alg, cfg)
	if err != nil {
		return nil, err
	}
	stats, err := e.Steps(context.Background(), supersteps)
	if err != nil {
		return nil, err
	}
	stats.Duration = time.Since(start)
	return &stats, nil
}

// ParGlobalES runs the directed G-ES-MC in parallel: per superstep a
// parallel random permutation pairs all arcs, ℓ ~ Binom(⌊m/2⌋, 1−P_L)
// switches execute as one parallel superstep. One-shot form of
// NewEngine(g, AlgParGlobalES, ...) + Steps.
func ParGlobalES(g *DiGraph, supersteps, workers int, loopProb float64, seed uint64) (*RunStats, error) {
	return run(g, AlgParGlobalES, supersteps, Config{Workers: workers, LoopProb: loopProb, Seed: seed})
}

// SeqGlobalES is the sequential directed G-ES-MC reference.
func SeqGlobalES(g *DiGraph, supersteps int, loopProb float64, seed uint64) (*RunStats, error) {
	return run(g, AlgSeqGlobalES, supersteps, Config{LoopProb: loopProb, Seed: seed})
}

// SeqES is the sequential directed ES-MC: supersteps × ⌊m/2⌋ uniform
// switches.
func SeqES(g *DiGraph, supersteps int, seed uint64) (*RunStats, error) {
	return run(g, AlgSeqES, supersteps, Config{Seed: seed})
}
