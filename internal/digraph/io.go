package digraph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gesmc/internal/graph"
)

// WriteArcList writes g in a plain text format: a "% directed" marker
// line, a header line "n m", then one "tail head" pair per line. The
// marker makes arc-list files self-describing: graph.ReadEdgeList
// rejects a file that leads with it instead of silently collapsing
// reciprocal arc pairs into undirected edges. (ReadArcList stays
// permissive the other way — an unmarked file reads as one arc per
// line, which is the only sensible directed interpretation.)
func WriteArcList(w io.Writer, g *DiGraph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%% directed\n%d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	for _, a := range g.Arcs() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", a.Tail(), a.Head()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadArcList parses the format written by WriteArcList, tolerating the
// same loose variants as the undirected reader: '#'/'%' comment lines,
// a missing "n m" header (node count inferred), loops and duplicate
// arcs (dropped). Unlike the undirected reader, (u,v) and (v,u) are
// distinct arcs and both survive.
func ReadArcList(r io.Reader) (*DiGraph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)

	var pairs [][2]int64
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("digraph: malformed line %q", line)
		}
		a, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("digraph: bad node id %q: %v", fields[0], err)
		}
		b, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("digraph: bad node id %q: %v", fields[1], err)
		}
		pairs = append(pairs, [2]int64{a, b})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	// Header detection, mirroring graph.ReadEdgeList: the first line
	// "n m" is a header iff m matches the number of remaining lines and
	// no later line references a node >= n.
	declaredN := int64(-1)
	data := pairs
	if len(pairs) > 0 && int64(len(pairs)-1) == pairs[0][1] {
		header := pairs[0]
		isHeader := true
		for _, p := range pairs[1:] {
			if p[0] >= header[0] || p[1] >= header[0] {
				isHeader = false
				break
			}
		}
		if isHeader {
			declaredN = header[0]
			data = pairs[1:]
		}
	}

	arcs := make([]Arc, 0, len(data))
	seen := make(map[Arc]struct{}, len(data))
	maxNode := int64(-1)
	for _, p := range data {
		a, b := p[0], p[1]
		if a < 0 || b < 0 || a >= graph.MaxNodes || b >= graph.MaxNodes {
			return nil, fmt.Errorf("digraph: node id out of range: %d %d", a, b)
		}
		if a == b {
			continue // drop loops
		}
		arc := MakeArc(graph.Node(a), graph.Node(b))
		if _, dup := seen[arc]; dup {
			continue // drop parallel arcs
		}
		seen[arc] = struct{}{}
		arcs = append(arcs, arc)
		if a > maxNode {
			maxNode = a
		}
		if b > maxNode {
			maxNode = b
		}
	}
	n := maxNode + 1
	if declaredN > n {
		n = declaredN
	}
	if n < 0 {
		n = 0
	}
	return New(int(n), arcs)
}
