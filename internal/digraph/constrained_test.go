package digraph

import (
	"context"
	"errors"
	"testing"

	"gesmc/internal/constraint"
	"gesmc/internal/graph"
)

// dirCycle builds the directed n-cycle 0->1->...->n-1->0 with a few
// extra chords, weakly connected with plenty of near-bridges.
func dirCycle(t *testing.T, n int) *DiGraph {
	t.Helper()
	var pairs [][2]graph.Node
	for v := 0; v < n; v++ {
		pairs = append(pairs, [2]graph.Node{graph.Node(v), graph.Node((v + 1) % n)})
	}
	pairs = append(pairs, [2]graph.Node{0, graph.Node(n / 2)})
	g, err := FromPairs(n, pairs)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestWeakComponents(t *testing.T) {
	// Two directed triangles, no connection: 2 weak components.
	g, err := FromPairs(6, [][2]graph.Node{
		{0, 1}, {1, 2}, {2, 0},
		{3, 4}, {4, 5}, {5, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	n, labels := ConnectedComponents(g)
	if n != 2 {
		t.Fatalf("components = %d, want 2", n)
	}
	if labels[0] != labels[1] || labels[0] == labels[3] {
		t.Fatalf("labels = %v", labels)
	}
	// Orientation must not matter: a path 0->1<-2 is weakly connected.
	p, err := FromPairs(3, [][2]graph.Node{{0, 1}, {2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := ConnectedComponents(p); n != 1 {
		t.Fatalf("anti-oriented path: %d weak components", n)
	}
}

func TestDirectedConstraintDisconnectedTarget(t *testing.T) {
	g, err := FromPairs(6, [][2]graph.Node{{0, 1}, {1, 2}, {3, 4}, {4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	spec := &constraint.Spec{Connected: true}
	for _, alg := range []Algorithm{AlgSeqES, AlgSeqGlobalES, AlgParGlobalES} {
		if _, err := NewEngine(g.Clone(), alg, Config{Constraint: spec}); !errors.Is(err, ErrDisconnected) {
			t.Fatalf("%v: err = %v, want ErrDisconnected", alg, err)
		}
	}
}

// TestDirectedConnectedInvariants: every post-superstep state stays
// weakly connected, simple, and in/out-degree-preserving for all three
// chains at workers {1, 2, 4, 8}; runs are deterministic per (seed,
// workers); and ParGlobalES is worker-count invariant.
func TestDirectedConnectedInvariants(t *testing.T) {
	base := dirCycle(t, 14)
	wantOut, wantIn := base.Degrees()
	spec := func() *constraint.Spec { return &constraint.Spec{Connected: true} }

	var ref []Arc
	for _, alg := range []Algorithm{AlgSeqES, AlgSeqGlobalES, AlgParGlobalES} {
		for _, w := range []int{1, 2, 4, 8} {
			if alg != AlgParGlobalES && w > 1 {
				continue
			}
			g := base.Clone()
			eng, err := NewEngine(g, alg, Config{Workers: w, Seed: 11, Constraint: spec()})
			if err != nil {
				t.Fatal(err)
			}
			for s := 0; s < 8; s++ {
				if _, err := eng.Steps(context.Background(), 1); err != nil {
					t.Fatal(err)
				}
				if c, _ := ConnectedComponents(g); c != 1 {
					t.Fatalf("%v w=%d superstep %d: weakly disconnected", alg, w, s)
				}
				if err := g.CheckSimple(); err != nil {
					t.Fatalf("%v w=%d superstep %d: %v", alg, w, s, err)
				}
			}
			out, in := g.Degrees()
			for v := range out {
				if out[v] != wantOut[v] || in[v] != wantIn[v] {
					t.Fatalf("%v w=%d: degrees of %d changed", alg, w, v)
				}
			}
			eng.Close()
			if alg == AlgParGlobalES {
				if w == 1 {
					ref = append([]Arc(nil), g.Arcs()...)
				} else {
					for i := range ref {
						if g.Arcs()[i] != ref[i] {
							t.Fatalf("ParGlobalES w=%d: arc %d differs from w=1", w, i)
						}
					}
				}
			}
		}
	}
}

// TestDirectedForbiddenArcs: a local forbidden-arc constraint holds in
// every sampled state and is worker-count invariant.
func TestDirectedForbiddenArcs(t *testing.T) {
	base := dirCycle(t, 12)
	forbidden := []Arc{MakeArc(0, 5), MakeArc(3, 9), MakeArc(7, 2)}
	spec := func() *constraint.Spec {
		packed := make([]uint64, len(forbidden))
		for i, a := range forbidden {
			packed[i] = uint64(a)
		}
		return &constraint.Spec{Locals: []constraint.Local{constraint.NewForbidden(packed)}}
	}
	var ref []Arc
	var refVetoed int64
	for _, w := range []int{1, 2, 4, 8} {
		g := base.Clone()
		eng, err := NewEngine(g, AlgParGlobalES, Config{Workers: w, Seed: 2, Constraint: spec()})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := eng.Steps(context.Background(), 12)
		if err != nil {
			t.Fatal(err)
		}
		eng.Close()
		for _, a := range g.Arcs() {
			for _, f := range forbidden {
				if a == f {
					t.Fatalf("w=%d: forbidden arc %v present", w, a)
				}
			}
		}
		if w == 1 {
			ref = append([]Arc(nil), g.Arcs()...)
			refVetoed = stats.Vetoed
			if stats.Vetoed == 0 {
				t.Fatal("no vetoes fired; constraint untested")
			}
			continue
		}
		if stats.Vetoed != refVetoed {
			t.Fatalf("w=%d: vetoed %d != %d at w=1", w, stats.Vetoed, refVetoed)
		}
		for i := range ref {
			if g.Arcs()[i] != ref[i] {
				t.Fatalf("w=%d: arc %d differs from w=1", w, i)
			}
		}
	}
}
