// Package digraph extends the switching machinery to simple directed
// graphs, one of the further graph classes of Carstens' taxonomy that
// the paper notes its findings adopt to directly (§1: "It is, however,
// straight-forward to adopt our findings to the other cases"). A
// directed edge switch takes two arcs (u→v), (x→y) and rewires them to
// (u→y), (x→v), rejecting loops and parallel arcs; in- and out-degrees
// of all nodes are preserved. Because bipartite graphs are exactly the
// digraphs from left nodes to right nodes, this package also provides
// degree-preserving randomization of bipartite graphs.
package digraph

import (
	"errors"
	"fmt"

	"gesmc/internal/graph"
)

// Arc is a directed edge (u → v), packed with the tail in the high and
// the head in the low 32 bits. Unlike undirected edges there is no
// canonicalization: (u,v) and (v,u) are distinct arcs.
type Arc uint64

// MakeArc returns the arc u → v.
func MakeArc(u, v graph.Node) Arc {
	return Arc(uint64(u)<<32 | uint64(v))
}

// Tail returns the source node.
func (a Arc) Tail() graph.Node { return graph.Node(a >> 32) }

// Head returns the target node.
func (a Arc) Head() graph.Node { return graph.Node(a & 0xFFFFFFFF) }

// IsLoop reports whether the arc starts and ends at the same node.
func (a Arc) IsLoop() bool { return a.Tail() == a.Head() }

// String renders the arc as "(u->v)".
func (a Arc) String() string { return fmt.Sprintf("(%d->%d)", a.Tail(), a.Head()) }

// SwitchTargets computes the directed switch of two arcs: the heads are
// exchanged, (u→v), (x→y) becoming (u→y), (x→v). There is no direction
// bit: exchanging tails instead yields the same pair of arcs with the
// roles of the two switches swapped.
func SwitchTargets(a1, a2 Arc) (Arc, Arc) {
	return MakeArc(a1.Tail(), a2.Head()), MakeArc(a2.Tail(), a1.Head())
}

// Targets is the method form of SwitchTargets satisfying the generic
// kernel's edge constraint (switching.EdgeKind). The direction bit is
// ignored: directed switches have none.
func (a Arc) Targets(other Arc, _ bool) (Arc, Arc) {
	return SwitchTargets(a, other)
}

// DiGraph is a simple directed graph (no loops, no parallel arcs) with
// an indexed arc list.
type DiGraph struct {
	n    int
	arcs []Arc
}

// ErrNotSimple is returned for arc lists with loops or duplicates.
var ErrNotSimple = errors.New("digraph: arc list is not simple")

// New validates and wraps an arc list. The slice is retained.
func New(n int, arcs []Arc) (*DiGraph, error) {
	if n < 0 || n > graph.MaxNodes {
		return nil, fmt.Errorf("digraph: node count %d out of range", n)
	}
	seen := make(map[Arc]struct{}, len(arcs))
	for _, a := range arcs {
		if int(a.Tail()) >= n || int(a.Head()) >= n {
			return nil, fmt.Errorf("digraph: arc %v out of node range", a)
		}
		if a.IsLoop() {
			return nil, fmt.Errorf("%w: loop %v", ErrNotSimple, a)
		}
		if _, dup := seen[a]; dup {
			return nil, fmt.Errorf("%w: duplicate arc %v", ErrNotSimple, a)
		}
		seen[a] = struct{}{}
	}
	return &DiGraph{n: n, arcs: arcs}, nil
}

// NewUnchecked wraps an arc list that is simple by construction.
func NewUnchecked(n int, arcs []Arc) *DiGraph { return &DiGraph{n: n, arcs: arcs} }

// FromPairs builds a digraph from (tail, head) pairs.
func FromPairs(n int, pairs [][2]graph.Node) (*DiGraph, error) {
	arcs := make([]Arc, len(pairs))
	for i, p := range pairs {
		arcs[i] = MakeArc(p[0], p[1])
	}
	return New(n, arcs)
}

// N returns the node count.
func (g *DiGraph) N() int { return g.n }

// M returns the arc count.
func (g *DiGraph) M() int { return len(g.arcs) }

// Arcs exposes the internal arc list (mutated in place by switching).
func (g *DiGraph) Arcs() []Arc { return g.arcs }

// Clone returns a deep copy.
func (g *DiGraph) Clone() *DiGraph {
	a := make([]Arc, len(g.arcs))
	copy(a, g.arcs)
	return &DiGraph{n: g.n, arcs: a}
}

// Degrees returns the out- and in-degree sequences.
func (g *DiGraph) Degrees() (out, in []int) {
	out = make([]int, g.n)
	in = make([]int, g.n)
	for _, a := range g.arcs {
		out[a.Tail()]++
		in[a.Head()]++
	}
	return out, in
}

// CheckSimple verifies the invariant.
func (g *DiGraph) CheckSimple() error {
	seen := make(map[Arc]struct{}, len(g.arcs))
	for i, a := range g.arcs {
		if a.IsLoop() {
			return fmt.Errorf("%w: loop %v at index %d", ErrNotSimple, a, i)
		}
		if _, dup := seen[a]; dup {
			return fmt.Errorf("%w: duplicate arc %v at index %d", ErrNotSimple, a, i)
		}
		seen[a] = struct{}{}
	}
	return nil
}

// ArcSet returns the arcs as a set.
func (g *DiGraph) ArcSet() map[Arc]struct{} {
	s := make(map[Arc]struct{}, len(g.arcs))
	for _, a := range g.arcs {
		s[a] = struct{}{}
	}
	return s
}

// SameArcSet reports whether two digraphs hold identical arc sets.
func SameArcSet(a, b *DiGraph) bool {
	if a.M() != b.M() {
		return false
	}
	set := a.ArcSet()
	for _, x := range b.arcs {
		if _, ok := set[x]; !ok {
			return false
		}
	}
	return true
}
