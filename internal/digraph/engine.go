package digraph

import (
	"context"
	"errors"
	"time"

	"gesmc/internal/constraint"
	"gesmc/internal/rng"
	"gesmc/internal/switching"
)

// Algorithm selects a directed switching implementation. Directed
// switches need no direction bit, and ES-MC's data-structure ablations
// add nothing in the directed setting, so only three chains exist.
type Algorithm int

const (
	// AlgSeqES is the sequential directed ES-MC.
	AlgSeqES Algorithm = iota
	// AlgSeqGlobalES is the sequential directed G-ES-MC.
	AlgSeqGlobalES
	// AlgParGlobalES is the parallel directed G-ES-MC.
	AlgParGlobalES
)

// ErrUnknownAlgorithm is returned by NewEngine for an Algorithm value
// outside the defined enum.
var ErrUnknownAlgorithm = errors.New("digraph: unknown algorithm")

// Config carries the tuning knobs shared by the directed chains.
type Config struct {
	// Workers is the parallelism degree of AlgParGlobalES; zero means 1.
	Workers int
	// Seed seeds all randomness.
	Seed uint64
	// LoopProb is P_L of G-ES-MC; zero selects the default 1e-6.
	LoopProb float64
	// Prefetch enables the §5.4 pre-touch pipeline inside the parallel
	// superstep kernel (AlgParGlobalES only; the sequential chains use
	// map-backed sets with no probe chains to pre-touch). Results are
	// bit-identical with the pipeline on or off.
	Prefetch bool
	// ChunkBytes overrides the topology-derived dynamic-chunk grain of
	// the parallel kernel's phases (AlgParGlobalES only); zero keeps
	// the cache-aware default. Results are bit-identical for any value.
	ChunkBytes int
	// PessimisticRounds makes the parallel superstep publish decisions
	// only at round barriers, simulating the worst-case scheduler
	// analyzed in Theorems 2-3 (the directed mirror of core's flag,
	// inherited from the unified kernel). Results are identical; only
	// round counts change.
	PessimisticRounds bool
	// Constraint restricts the chain's state space (see the constraint
	// package): local vetoes per proposed switch, connectivity meaning
	// weak connectivity of the underlying undirected graph. All three
	// directed chains support it. Nil constrains nothing.
	Constraint *constraint.Spec
}

func (c Config) loopProb() float64 {
	if c.LoopProb <= 0 {
		return 1e-6
	}
	return c.LoopProb
}

// stepper is the per-algorithm resumable state behind an Engine, the
// directed mirror of core's stepper.
type stepper interface {
	step(stats *RunStats)
}

// Engine is a resumable directed randomization run: NewEngine compiles
// the digraph once into the chain's working state (arc set, dependency
// table, RNG streams); Steps advances the chain in arbitrarily many
// increments without rebuilding it. A single Steps(ctx, k) call is
// bit-identical to the one-shot SeqES/SeqGlobalES/ParGlobalES with the
// same parameters.
type Engine struct {
	alg   Algorithm
	st    stepper
	stats RunStats
}

// NewEngine compiles the digraph into the working state of the selected
// algorithm. The digraph is retained and mutated in place by Steps.
func NewEngine(g *DiGraph, alg Algorithm, cfg Config) (*Engine, error) {
	if g.M() < 2 {
		return nil, ErrTooSmall
	}
	var cons *constrainedRuntime
	if cfg.Constraint.Active() {
		var err error
		cons, err = newConstrainedRuntime(g, cfg.Constraint)
		if err != nil {
			return nil, err
		}
	}
	var st stepper
	switch alg {
	case AlgSeqES:
		S := g.ArcSet()
		if cons != nil {
			bindMap(cons, S)
		}
		st = &dirSeqESStepper{
			m: g.M(), A: g.Arcs(), S: S,
			src:  rng.NewMT19937(cfg.Seed),
			cons: cons,
		}
	case AlgSeqGlobalES:
		S := g.ArcSet()
		if cons != nil {
			bindMap(cons, S)
		}
		st = &dirSeqGlobalStepper{
			m: g.M(), A: g.Arcs(), S: S,
			src:  rng.NewMT19937(cfg.Seed),
			pl:   cfg.loopProb(),
			cons: cons,
		}
	case AlgParGlobalES:
		w := cfg.Workers
		if w < 1 {
			w = 1
		}
		runner := NewSuperstepRunner(g.Arcs(), g.M()/2, w)
		runner.Pessimistic = cfg.PessimisticRounds
		runner.Prefetch = cfg.Prefetch
		if cfg.ChunkBytes > 0 {
			runner.Pool().SetChunkBytes(cfg.ChunkBytes)
		}
		if cons != nil {
			bindRunner(cons, runner)
		}
		st = &dirParGlobalStepper{
			m: g.M(), w: w,
			src:      rng.NewMT19937(cfg.Seed),
			seedSrc:  rng.NewSplitMix64(cfg.Seed ^ 0x5DEECE66D),
			runner:   runner,
			perm:     rng.NewPermGen(g.M()),
			dispatch: runner.Pool().Blocks,
			pl:       cfg.loopProb(),
			cons:     cons,
		}
	default:
		return nil, ErrUnknownAlgorithm
	}
	return &Engine{alg: alg, st: st}, nil
}

// releaser is implemented by steppers that own a persistent worker
// gang (the parallel chain).
type releaser interface{ release() }

// Close releases the engine's persistent worker gang, if the selected
// algorithm owns one. The engine must not be used afterwards.
func (e *Engine) Close() {
	if r, ok := e.st.(releaser); ok {
		r.release()
	}
}

// Algorithm returns the algorithm the engine runs.
func (e *Engine) Algorithm() Algorithm { return e.alg }

// Stats returns the counters accumulated over the engine's lifetime.
func (e *Engine) Stats() RunStats { return e.stats }

// Steps advances the chain by k supersteps and returns the statistics
// of exactly this increment. Cancellation is honored at superstep
// boundaries, leaving the digraph in the valid state after the last
// completed superstep.
func (e *Engine) Steps(ctx context.Context, k int) (RunStats, error) {
	start := time.Now()
	var delta RunStats
	var err error
	for i := 0; i < k; i++ {
		if cerr := ctx.Err(); cerr != nil {
			err = cerr
			break
		}
		e.st.step(&delta)
		delta.Supersteps++
	}
	if delta.InternalSupersteps > 0 {
		delta.AvgRounds = float64(delta.TotalRounds) / float64(delta.InternalSupersteps)
	}
	delta.Duration = time.Since(start)
	e.stats.Supersteps += delta.Supersteps
	e.stats.Attempted += delta.Attempted
	e.stats.Legal += delta.Legal
	e.stats.InternalSupersteps += delta.InternalSupersteps
	e.stats.TotalRounds += delta.TotalRounds
	if delta.MaxRounds > e.stats.MaxRounds {
		e.stats.MaxRounds = delta.MaxRounds
	}
	if e.stats.InternalSupersteps > 0 {
		e.stats.AvgRounds = float64(e.stats.TotalRounds) / float64(e.stats.InternalSupersteps)
	}
	e.stats.FirstRoundTime += delta.FirstRoundTime
	e.stats.LaterRoundsTime += delta.LaterRoundsTime
	e.stats.Vetoed += delta.Vetoed
	e.stats.EscapeAttempts += delta.EscapeAttempts
	e.stats.EscapeMoves += delta.EscapeMoves
	e.stats.Duration += delta.Duration
	return delta, err
}

// dirSeqESStepper: one superstep = ⌊m/2⌋ uniform directed switches.
type dirSeqESStepper struct {
	m    int
	A    []Arc
	S    map[Arc]struct{}
	src  rng.Source
	one  [1]Switch
	cons *constrainedRuntime
}

func (s *dirSeqESStepper) step(stats *RunStats) {
	perStep := int64(s.m / 2)
	for a := int64(0); a < perStep; a++ {
		i, j := rng.TwoDistinct(s.src, s.m)
		s.one[0] = Switch{I: uint32(i), J: uint32(j)}
		if s.cons != nil {
			var cc constraint.Counters
			s.cons.ExecuteSequential(s.A, s.one[:], s.src, &cc)
			addCounters(stats, &cc)
		} else {
			stats.Legal += ExecuteSequential(s.A, s.S, s.one[:])
		}
	}
	stats.Attempted += perStep
}

// dirSeqGlobalStepper: one superstep = one global switch, sequentially.
type dirSeqGlobalStepper struct {
	m    int
	A    []Arc
	S    map[Arc]struct{}
	src  rng.Source
	pl   float64
	buf  []Switch
	cons *constrainedRuntime
}

func (s *dirSeqGlobalStepper) step(stats *RunStats) {
	perm := rng.Perm(s.src, s.m)
	l := int(rng.BinomialComplementSmall(s.src, int64(s.m/2), s.pl))
	s.buf = GlobalSwitches(perm, l, s.buf)
	if s.cons != nil {
		var cc constraint.Counters
		s.cons.ExecuteSequential(s.A, s.buf, s.src, &cc)
		addCounters(stats, &cc)
	} else {
		stats.Legal += ExecuteSequential(s.A, s.S, s.buf)
	}
	stats.Attempted += int64(l)
}

// dirParGlobalStepper: one superstep = one global switch decided by the
// parallel superstep runner. Permutation seeds are drawn lazily from
// the same SplitMix64 stream ParGlobalES pre-computed.
type dirParGlobalStepper struct {
	m, w     int
	src      rng.Source
	seedSrc  *rng.SplitMix64
	runner   *SuperstepRunner
	perm     *rng.PermGen
	dispatch rng.Dispatch
	buf      []Switch
	pl       float64
	prev     switching.Stats
	cons     *constrainedRuntime
}

func (s *dirParGlobalStepper) release() { s.runner.Release() }

func (s *dirParGlobalStepper) step(stats *RunStats) {
	perm := s.perm.Generate(s.seedSrc.Uint64(), s.dispatch)
	l := int(rng.BinomialComplementSmall(s.src, int64(s.m/2), s.pl))
	s.buf = GlobalSwitches(perm, l, s.buf)
	s.runner.Run(s.buf)
	stats.Attempted += int64(l)
	if s.cons != nil {
		var cc constraint.Counters
		s.cons.AfterSuperstep(s.runner, s.buf, s.src, &cc)
		addCounters(stats, &cc)
	}
	d := s.runner.Stats.Sub(s.prev)
	s.prev = s.runner.Stats
	stats.Legal += d.Legal
	stats.InternalSupersteps += d.InternalSupersteps
	stats.TotalRounds += d.TotalRounds
	if d.MaxRounds > stats.MaxRounds {
		stats.MaxRounds = d.MaxRounds
	}
	stats.FirstRoundTime += d.FirstRoundTime
	stats.LaterRoundsTime += d.LaterRoundsTime
	stats.Vetoed += d.Vetoed + d.RolledBack
}
