package digraph

import (
	"gesmc/internal/constraint"
	"gesmc/internal/graph"
)

// ErrDisconnected is returned by NewEngine when the connectivity
// constraint is configured over a digraph that is not weakly connected
// (alias of the constraint package's sentinel).
var ErrDisconnected = constraint.ErrDisconnected

// ConnectedComponents returns the number of weakly connected components
// and the component label of every node — connectivity of the
// underlying undirected graph, the certificate the directed constraint
// layer checks. It mirrors graph.ConnectedComponents for digraphs.
func ConnectedComponents(g *DiGraph) (int, []int32) {
	return constraint.Components(g.n, g.arcs)
}

// constrainedRuntime is the directed instantiation of the shared
// constraint runtime. Weak connectivity falls out of the shared
// tracker directly — it unions the packed endpoints of every arc,
// which is exactly the underlying undirected graph.
type constrainedRuntime = constraint.Runtime[Arc]

func newConstrainedRuntime(g *DiGraph, spec *constraint.Spec) (*constrainedRuntime, error) {
	return constraint.NewRuntime(spec, g.N(), g.Arcs())
}

// bindMap points the runtime's graph ops at a sequential chain's
// map-backed arc set.
func bindMap(c *constrainedRuntime, S map[Arc]struct{}) {
	c.Ops = constraint.GraphOps[Arc]{
		Contains: func(a Arc) bool { _, ok := S[a]; return ok },
		Insert:   func(a Arc) { S[a] = struct{}{} },
		Erase:    func(a Arc) { delete(S, a) },
	}
}

// bindRunner installs the local veto on the parallel runner and points
// the graph ops at its concurrent edge set. The set stores arcs
// bit-cast to graph.Edge, exactly as the runner's own phases do (arcs
// pack (tail, head) like edges pack (min, max); the set never
// canonicalizes).
func bindRunner(c *constrainedRuntime, r *SuperstepRunner) {
	r.Veto = c.Veto
	c.Ops = constraint.GraphOps[Arc]{
		Contains: func(a Arc) bool { return r.Set.Contains(graph.Edge(a)) },
		Insert:   func(a Arc) { r.Set.InsertUnique(graph.Edge(a)) },
		Erase:    func(a Arc) { r.Set.EraseUnique(graph.Edge(a)) },
	}
}

// addCounters folds one constrained execution's counters into the run
// statistics.
func addCounters(stats *RunStats, c *constraint.Counters) {
	stats.Legal += c.Legal
	stats.Vetoed += c.Vetoed
	stats.EscapeAttempts += c.EscapeAttempts
	stats.EscapeMoves += c.EscapeMoves
}
