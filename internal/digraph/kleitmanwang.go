package digraph

import (
	"fmt"
	"sort"

	"gesmc/internal/graph"
)

// KleitmanWang materializes a simple directed graph with the prescribed
// out- and in-degree sequences (Kleitman & Wang 1973, the directed
// analogue of Havel-Hakimi). At each step one node's remaining in-degree
// b_i is satisfied completely by drawing arcs from the nodes with
// lexicographically largest residual pairs (out, in) — the tie-break on
// the in-degree component is essential for the theorem to hold. Returns
// an error if the bi-sequence is not digraphical.
func KleitmanWang(out, in []int) (*DiGraph, error) {
	n := len(out)
	if len(in) != n {
		return nil, fmt.Errorf("digraph: sequence lengths differ (%d vs %d)", len(out), n)
	}
	var sumOut, sumIn int64
	for v := 0; v < n; v++ {
		if out[v] < 0 || in[v] < 0 || out[v] >= n || in[v] >= n {
			return nil, fmt.Errorf("digraph: degree out of range at node %d", v)
		}
		sumOut += int64(out[v])
		sumIn += int64(in[v])
	}
	if sumOut != sumIn {
		return nil, fmt.Errorf("digraph: out-degree sum %d != in-degree sum %d", sumOut, sumIn)
	}

	a := append([]int(nil), out...) // residual out-degrees
	b := append([]int(nil), in...)  // residual in-degrees
	arcs := make([]Arc, 0, sumOut)
	order := make([]int, n)

	for i := 0; i < n; i++ {
		k := b[i]
		if k == 0 {
			continue
		}
		b[i] = 0
		// Candidate sources, lexicographically largest (a_j, b_j) first.
		for j := range order {
			order[j] = j
		}
		sort.Slice(order, func(x, y int) bool {
			jx, jy := order[x], order[y]
			if a[jx] != a[jy] {
				return a[jx] > a[jy]
			}
			if b[jx] != b[jy] {
				return b[jx] > b[jy]
			}
			return jx < jy
		})
		filled := 0
		for _, j := range order {
			if filled == k {
				break
			}
			if j == i || a[j] == 0 {
				continue
			}
			arcs = append(arcs, MakeArc(graph.Node(j), graph.Node(i)))
			a[j]--
			filled++
		}
		if filled < k {
			return nil, fmt.Errorf("digraph: bi-sequence not digraphical (node %d short %d arcs)", i, k-filled)
		}
	}
	g, err := New(n, arcs)
	if err != nil {
		return nil, fmt.Errorf("digraph: internal realization error: %w", err)
	}
	return g, nil
}
