package digraph

import (
	"fmt"

	"gesmc/internal/graph"
)

// Bipartite graphs are digraphs whose arcs all run from left nodes
// (0..left-1) to right nodes (left..left+right-1): the directed switch
// (u→v),(x→y) ⇒ (u→y),(x→v) keeps every arc crossing the partition, so
// the directed chains double as degree-preserving samplers of bipartite
// graphs (the setting of Carstens & Kleer's bipartite comparison cited
// in §3.1).

// NewBipartite builds the digraph representation of a bipartite graph
// from (leftNode, rightNode) pairs with leftNode < left and
// rightNode < right; right nodes are offset by left internally.
func NewBipartite(left, right int, pairs [][2]graph.Node) (*DiGraph, error) {
	arcs := make([]Arc, len(pairs))
	for i, p := range pairs {
		if int(p[0]) >= left {
			return nil, fmt.Errorf("digraph: left node %d out of range", p[0])
		}
		if int(p[1]) >= right {
			return nil, fmt.Errorf("digraph: right node %d out of range", p[1])
		}
		arcs[i] = MakeArc(p[0], graph.Node(left)+p[1])
	}
	return New(left+right, arcs)
}

// BipartiteFromDegrees realizes a bipartite graph with the prescribed
// left (out) and right (in) degree sequences via Kleitman-Wang (the
// bipartite case is the Gale-Ryser setting: no loops can arise since
// tails and heads live in disjoint ranges).
func BipartiteFromDegrees(leftDeg, rightDeg []int) (*DiGraph, error) {
	left := len(leftDeg)
	right := len(rightDeg)
	out := make([]int, left+right)
	in := make([]int, left+right)
	copy(out, leftDeg)
	copy(in[left:], rightDeg)
	g, err := KleitmanWang(out, in)
	if err != nil {
		return nil, err
	}
	// Kleitman-Wang may in principle route arcs within the right side
	// when degrees permit; with out-degrees zero outside the left side
	// it cannot, but verify the bipartition for safety.
	if err := CheckBipartite(g, left); err != nil {
		return nil, err
	}
	return g, nil
}

// CheckBipartite verifies that every arc crosses from [0, left) into
// [left, n).
func CheckBipartite(g *DiGraph, left int) error {
	for _, a := range g.Arcs() {
		if int(a.Tail()) >= left || int(a.Head()) < left {
			return fmt.Errorf("digraph: arc %v violates the bipartition at %d", a, left)
		}
	}
	return nil
}
