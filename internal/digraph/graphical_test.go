package digraph

import (
	"testing"

	"gesmc/internal/rng"
)

func TestIsDigraphicalKnownCases(t *testing.T) {
	cases := []struct {
		name string
		out  []int
		in   []int
		want bool
	}{
		{"empty", nil, nil, true},
		{"zeros", []int{0, 0}, []int{0, 0}, true},
		{"2cycle", []int{1, 1}, []int{1, 1}, true},
		{"k3-tournamentish", []int{2, 1, 0}, []int{0, 1, 2}, true},
		{"length-mismatch", []int{1}, []int{1, 0}, false},
		{"sum-mismatch", []int{1, 0}, []int{0, 0}, false},
		{"degree-too-large", []int{2, 0}, []int{1, 1}, false},
		{"negative", []int{-1, 1}, []int{0, 0}, false},
		// Sum and range fine, but two nodes both need out-degree 2
		// toward only one other high-in node: FCA prefix k=2 fails.
		{"infeasible-concentration", []int{2, 2, 0}, []int{0, 1, 3}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := IsDigraphical(tc.out, tc.in); got != tc.want {
				t.Fatalf("IsDigraphical(%v, %v) = %v, want %v", tc.out, tc.in, got, tc.want)
			}
		})
	}
}

// TestIsDigraphicalMatchesKleitmanWang cross-validates the FCA
// predicate against the constructive realization on random
// bi-sequences: the two must agree exactly (Kleitman-Wang succeeds
// iff the bi-sequence is digraphical).
func TestIsDigraphicalMatchesKleitmanWang(t *testing.T) {
	r := rng.NewSplitMix64(2026)
	agreeTrue, agreeFalse := 0, 0
	for trial := 0; trial < 400; trial++ {
		n := 2 + r.IntN(9)
		out := make([]int, n)
		in := make([]int, n)
		var diff int
		for v := range out {
			out[v] = r.IntN(n)
			in[v] = r.IntN(n)
			diff += out[v] - in[v]
		}
		// Half the trials get their sums balanced (mostly feasible),
		// half stay as drawn (mostly infeasible), covering both sides.
		if trial%2 == 0 {
			for v := 0; diff != 0 && v < n; v++ {
				adj := diff
				if adj > 0 {
					if take := min(adj, in[v]+(n-1-in[v])); take > 0 {
						add := min(adj, n-1-in[v])
						in[v] += add
						diff -= add
					}
				} else if out[v] < n-1 {
					add := min(-adj, n-1-out[v])
					out[v] += add
					diff += add
				}
			}
		}
		pred := IsDigraphical(out, in)
		g, err := KleitmanWang(out, in)
		if pred != (err == nil) {
			t.Fatalf("trial %d: IsDigraphical(%v, %v) = %v but KleitmanWang err = %v",
				trial, out, in, pred, err)
		}
		if pred {
			agreeTrue++
			gOut, gIn := g.Degrees()
			for v := range out {
				if gOut[v] != out[v] || gIn[v] != in[v] {
					t.Fatalf("trial %d: realization degrees diverge at node %d", trial, v)
				}
			}
		} else {
			agreeFalse++
		}
	}
	if agreeTrue == 0 || agreeFalse == 0 {
		t.Fatalf("degenerate coverage: %d digraphical, %d not", agreeTrue, agreeFalse)
	}
}

func TestIsBigraphicalKnownCases(t *testing.T) {
	cases := []struct {
		name  string
		left  []int
		right []int
		want  bool
	}{
		{"empty", nil, nil, true},
		{"zeros", []int{0}, []int{0, 0}, true},
		{"complete-2x3", []int{3, 3}, []int{2, 2, 2}, true},
		{"sum-mismatch", []int{2}, []int{1}, false},
		{"degree-exceeds-side", []int{3}, []int{1, 1, 1}, true},
		{"degree-too-large", []int{4}, []int{2, 2}, false},
		{"negative", []int{-1}, []int{1}, false},
		// Gale-Ryser violation with matching sums: two left nodes of
		// degree 2 cannot both attach to a right side concentrated on
		// one node.
		{"infeasible-concentration", []int{2, 2}, []int{3, 1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := IsBigraphical(tc.left, tc.right); got != tc.want {
				t.Fatalf("IsBigraphical(%v, %v) = %v, want %v", tc.left, tc.right, got, tc.want)
			}
		})
	}
}

// TestIsBigraphicalMatchesConstruction cross-validates Gale-Ryser
// against the constructive bipartite realization.
func TestIsBigraphicalMatchesConstruction(t *testing.T) {
	r := rng.NewSplitMix64(77)
	agreeTrue, agreeFalse := 0, 0
	for trial := 0; trial < 400; trial++ {
		nl := 1 + r.IntN(6)
		nr := 1 + r.IntN(6)
		left := make([]int, nl)
		right := make([]int, nr)
		sum := 0
		for i := range left {
			left[i] = r.IntN(nr + 1)
			sum += left[i]
		}
		for i := range right {
			right[i] = r.IntN(nl + 1)
			sum -= right[i]
		}
		if trial%2 == 0 {
			for i := 0; sum != 0 && i < nr; i++ {
				if sum > 0 {
					add := min(sum, nl-right[i])
					right[i] += add
					sum -= add
				} else {
					take := min(-sum, right[i])
					right[i] -= take
					sum += take
				}
			}
		}
		pred := IsBigraphical(left, right)
		_, err := BipartiteFromDegrees(left, right)
		if pred != (err == nil) {
			t.Fatalf("trial %d: IsBigraphical(%v, %v) = %v but construction err = %v",
				trial, left, right, pred, err)
		}
		if pred {
			agreeTrue++
		} else {
			agreeFalse++
		}
	}
	if agreeTrue == 0 || agreeFalse == 0 {
		t.Fatalf("degenerate coverage: %d bigraphical, %d not", agreeTrue, agreeFalse)
	}
}
