package digraph

import (
	"sort"
	"testing"

	"gesmc/internal/graph"
	"gesmc/internal/rng"
)

// randomDigraph samples a simple digraph by thinning the complete
// digraph.
func randomDigraph(n int, p float64, src rng.Source) *DiGraph {
	var arcs []Arc
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64(src) < p {
				arcs = append(arcs, MakeArc(graph.Node(u), graph.Node(v)))
			}
		}
	}
	return NewUnchecked(n, arcs)
}

func globalBatch(m int, src rng.Source) []Switch {
	perm := rng.Perm(src, m)
	l := rng.IntN(src, m/2+1)
	return GlobalSwitches(perm, l, nil)
}

func TestDirectedSuperstepMatchesSequential(t *testing.T) {
	src := rng.NewMT19937(101)
	for trial := 0; trial < 40; trial++ {
		g := randomDigraph(12+rng.IntN(src, 30), 0.2, src)
		if g.M() < 4 {
			continue
		}
		switches := globalBatch(g.M(), src)

		seq := g.Clone()
		S := seq.ArcSet()
		seqLegal := ExecuteSequential(seq.Arcs(), S, switches)

		for _, w := range []int{1, 2, 4} {
			par := g.Clone()
			r := NewSuperstepRunner(par.Arcs(), maxi(len(switches), 1), w)
			r.Run(switches)
			if r.Legal != seqLegal {
				t.Fatalf("workers=%d: accepted %d, sequential %d", w, r.Legal, seqLegal)
			}
			for i := range seq.Arcs() {
				if seq.Arcs()[i] != par.Arcs()[i] {
					t.Fatalf("workers=%d: divergence at arc %d", w, i)
				}
			}
		}
	}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestDirectedChainsPreserveInvariants(t *testing.T) {
	src := rng.NewMT19937(102)
	g := randomDigraph(64, 0.1, src)
	wantOut, wantIn := g.Degrees()

	check := func(name string, h *DiGraph) {
		t.Helper()
		if err := h.CheckSimple(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		gotOut, gotIn := h.Degrees()
		for v := range wantOut {
			if gotOut[v] != wantOut[v] || gotIn[v] != wantIn[v] {
				t.Fatalf("%s changed degrees of node %d", name, v)
			}
		}
	}

	seq := g.Clone()
	if _, err := SeqES(seq, 5, 3); err != nil {
		t.Fatal(err)
	}
	check("SeqES", seq)

	sgl := g.Clone()
	if _, err := SeqGlobalES(sgl, 5, 0.01, 3); err != nil {
		t.Fatal(err)
	}
	check("SeqGlobalES", sgl)

	par := g.Clone()
	stats, err := ParGlobalES(par, 5, 4, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	check("ParGlobalES", par)
	if stats.Legal == 0 || stats.Legal > stats.Attempted {
		t.Fatalf("stats broken: %+v", stats)
	}
	if SameArcSet(g, par) {
		t.Fatal("ParGlobalES did not randomize")
	}
}

// Uniformity over an enumerable directed state space: out = in =
// (1,1,1,1) on 4 nodes; the simple 1-regular digraphs are exactly the
// derangements of 4 elements (9 states). Directed switches reject often
// here (every shared-node pair loops), so the chain needs more
// supersteps than the undirected analogue to mix.
func TestDirectedUniformity(t *testing.T) {
	base, err := KleitmanWang([]int{1, 1, 1, 1}, []int{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const runs = 4000
	for r := 0; r < runs; r++ {
		g := base.Clone()
		if _, err := SeqGlobalES(g, 100, 0.05, uint64(r)*2654435761+7); err != nil {
			t.Fatal(err)
		}
		arcs := append([]Arc(nil), g.Arcs()...)
		sort.Slice(arcs, func(i, j int) bool { return arcs[i] < arcs[j] })
		key := ""
		for _, a := range arcs {
			key += a.String()
		}
		counts[key]++
	}
	// 1-regular simple digraphs on 4 labeled nodes = permutations of
	// {0..3} with no fixed point = derangements of 4 elements = 9.
	if len(counts) != 9 {
		t.Fatalf("reached %d states, want 9 derangements", len(counts))
	}
	expected := float64(runs) / 9
	var x2 float64
	for _, c := range counts {
		d := float64(c) - expected
		x2 += d * d / expected
	}
	if x2 > 40 { // df = 8, p < 1e-5
		t.Fatalf("chi-square %.1f too large", x2)
	}
}

func TestDirectedParallelMatchesSequentialEndToEnd(t *testing.T) {
	// With one worker and the same seed structure, ParGlobalES and a
	// manual sequential replay of the same (perm, l) stream agree.
	src := rng.NewMT19937(103)
	g := randomDigraph(40, 0.15, src)
	m := g.M()

	par := g.Clone()
	r := NewSuperstepRunner(par.Arcs(), m/2, 2)
	seq := g.Clone()
	S := seq.ArcSet()
	var buf []Switch
	for step := 0; step < 10; step++ {
		perm := rng.Perm(src, m)
		l := m / 2
		buf = GlobalSwitches(perm, l, buf)
		ExecuteSequential(seq.Arcs(), S, buf)
		r.Run(buf)
		for i := range seq.Arcs() {
			if seq.Arcs()[i] != par.Arcs()[i] {
				t.Fatalf("step %d: divergence at arc %d", step, i)
			}
		}
	}
}

func TestBipartite(t *testing.T) {
	g, err := NewBipartite(3, 2, [][2]graph.Node{{0, 0}, {1, 1}, {2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckBipartite(g, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := NewBipartite(2, 2, [][2]graph.Node{{2, 0}}); err == nil {
		t.Fatal("left overflow accepted")
	}
}

func TestBipartiteFromDegreesAndRandomize(t *testing.T) {
	leftDeg := []int{3, 2, 2, 1}
	rightDeg := []int{2, 2, 2, 1, 1}
	g, err := BipartiteFromDegrees(leftDeg, rightDeg)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckBipartite(g, len(leftDeg)); err != nil {
		t.Fatal(err)
	}
	// Randomizing preserves the bipartition (heads swap among right
	// nodes only).
	if _, err := ParGlobalES(g, 10, 2, 0.01, 9); err != nil {
		t.Fatal(err)
	}
	if err := CheckBipartite(g, len(leftDeg)); err != nil {
		t.Fatalf("switching broke the bipartition: %v", err)
	}
	out, in := g.Degrees()
	for v, d := range leftDeg {
		if out[v] != d {
			t.Fatalf("left degree changed at %d", v)
		}
	}
	for v, d := range rightDeg {
		if in[len(leftDeg)+v] != d {
			t.Fatalf("right degree changed at %d", v)
		}
	}
}

func TestBipartiteFromDegreesRejects(t *testing.T) {
	if _, err := BipartiteFromDegrees([]int{3}, []int{1, 1}); err == nil {
		t.Fatal("infeasible bipartite degrees accepted")
	}
}
