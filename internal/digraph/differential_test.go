package digraph

import (
	"context"
	"testing"

	"gesmc/internal/rng"
)

// replayParGlobalSequentially reproduces the exact switch sequence the
// parallel directed G-ES-MC engine draws for a given (seed, workers)
// pair — ParallelPerm seeds from the SplitMix64 stream, ℓ from the
// MT19937 stream — and executes it with the map-backed sequential
// reference. This is the ground truth the parallel engine must hit
// bit-identically.
func replayParGlobalSequentially(g *DiGraph, supersteps, workers int, loopProb float64, seed uint64) *DiGraph {
	c := g.Clone()
	A := c.Arcs()
	S := c.ArcSet()
	m := c.M()
	src := rng.NewMT19937(seed)
	seedSrc := rng.NewSplitMix64(seed ^ 0x5DEECE66D)
	var buf []Switch
	for step := 0; step < supersteps; step++ {
		perm := rng.ParallelPerm(seedSrc.Uint64(), m, workers)
		l := int(rng.BinomialComplementSmall(src, int64(m/2), loopProb))
		buf = GlobalSwitches(perm, l, buf)
		ExecuteSequential(A, S, buf)
	}
	return c
}

func TestDirectedParGlobalBitIdenticalAcrossWorkers(t *testing.T) {
	// For every worker count, the parallel engine must reproduce the
	// sequential reference executing the same switch stream. (Different
	// worker counts draw different parallel permutations, so each w is
	// checked against its own replay.)
	src := rng.NewMT19937(8701)
	g := randomDigraph(72, 0.12, src)
	const supersteps = 8
	const pl = 0.01
	const seed = 42
	for _, w := range []int{1, 2, 4, 8} {
		want := replayParGlobalSequentially(g, supersteps, w, pl, seed)
		got := g.Clone()
		if _, err := ParGlobalES(got, supersteps, w, pl, seed); err != nil {
			t.Fatal(err)
		}
		for i := range want.Arcs() {
			if want.Arcs()[i] != got.Arcs()[i] {
				t.Fatalf("workers=%d: arc %d diverges from sequential replay", w, i)
			}
		}
	}
}

func TestDirectedEngineResumedSplitsBitIdentical(t *testing.T) {
	// Splitting the same superstep budget across Steps calls must not
	// change the trajectory.
	src := rng.NewMT19937(8702)
	g := randomDigraph(64, 0.12, src)
	cfg := Config{Workers: 4, Seed: 9, LoopProb: 0.01}

	oneShot := g.Clone()
	e1, err := NewEngine(oneShot, AlgParGlobalES, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Steps(context.Background(), 10); err != nil {
		t.Fatal(err)
	}

	split := g.Clone()
	e2, err := NewEngine(split, AlgParGlobalES, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 3, 0, 4, 2} {
		if _, err := e2.Steps(context.Background(), k); err != nil {
			t.Fatal(err)
		}
	}

	for i := range oneShot.Arcs() {
		if oneShot.Arcs()[i] != split.Arcs()[i] {
			t.Fatalf("resumed split diverges at arc %d", i)
		}
	}
	s1, s2 := e1.Stats(), e2.Stats()
	if s1.Legal != s2.Legal || s1.Attempted != s2.Attempted || s1.Supersteps != s2.Supersteps {
		t.Fatalf("stats diverge: one-shot %+v, split %+v", s1, s2)
	}
}
