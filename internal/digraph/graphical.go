package digraph

import "sort"

// This file holds the existence predicates companion to the
// constructive realizations (KleitmanWang, BipartiteFromDegrees): the
// Fulkerson–Chen–Anstee test for digraphical bi-sequences and the
// Gale–Ryser test for bigraphical sequence pairs. The service layer
// runs them before target compilation so a non-realizable request is
// answered by an O(n log n) predicate instead of a failed O(n² log n)
// construction.

// fenwick is a pair of Fenwick trees over degree values, answering
// "how many inserted values are ≤ t" and "what do they sum to" in
// O(log n) — together Σ min(value, t) over the inserted multiset.
type fenwick struct {
	count []int64
	sum   []int64
}

func newFenwick(n int) *fenwick {
	return &fenwick{count: make([]int64, n+1), sum: make([]int64, n+1)}
}

// insert adds value v (0-based) to the multiset.
func (f *fenwick) insert(v int) {
	for i := v + 1; i < len(f.count); i += i & (-i) {
		f.count[i]++
		f.sum[i] += int64(v)
	}
}

// le returns the count and sum of inserted values ≤ t.
func (f *fenwick) le(t int) (count, sum int64) {
	if t < 0 {
		return 0, 0
	}
	if t >= len(f.count)-1 {
		t = len(f.count) - 2
	}
	for i := t + 1; i > 0; i -= i & (-i) {
		count += f.count[i]
		sum += f.sum[i]
	}
	return count, sum
}

// minSum returns Σ min(value, t) over the inserted multiset of size
// inserted.
func (f *fenwick) minSum(t int, inserted int64) int64 {
	count, sum := f.le(t)
	return sum + int64(t)*(inserted-count)
}

// IsDigraphical reports whether a simple directed graph (no loops, no
// parallel arcs) with the given out-/in-degree bi-sequence exists —
// the Fulkerson–Chen–Anstee condition, the directed analogue of
// Erdős–Gallai. Mismatched lengths, out-of-range degrees, or unequal
// sums are not digraphical. O(n log n).
func IsDigraphical(out, in []int) bool {
	n := len(out)
	if len(in) != n {
		return false
	}
	var sumOut, sumIn int64
	for v := 0; v < n; v++ {
		if out[v] < 0 || in[v] < 0 || out[v] >= n || in[v] >= n {
			return false
		}
		sumOut += int64(out[v])
		sumIn += int64(in[v])
	}
	if sumOut != sumIn {
		return false
	}
	if n == 0 {
		return true
	}

	// Pairs in non-increasing lexicographic order of (out, in).
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool {
		ix, iy := idx[x], idx[y]
		if out[ix] != out[iy] {
			return out[ix] > out[iy]
		}
		return in[ix] > in[iy]
	})

	// allB sorted ascending with prefix sums: Σ_j min(in_j, t) over
	// the whole sequence in O(log n) per query.
	allB := make([]int, n)
	for i, j := range idx {
		allB[i] = in[j]
	}
	sort.Ints(allB)
	prefixB := make([]int64, n+1)
	for i, b := range allB {
		prefixB[i+1] = prefixB[i] + int64(b)
	}
	minSumAll := func(t int) int64 {
		// First index with value > t.
		i := sort.SearchInts(allB, t+1)
		return prefixB[i] + int64(t)*int64(n-i)
	}

	// Check Σ_{i≤k} out_i ≤ Σ_{i≤k} min(in_i, k-1) + Σ_{i>k} min(in_i, k)
	// for every k, growing a Fenwick multiset of the prefix's in-degrees.
	prefix := newFenwick(n)
	var lhs int64
	for k := 1; k <= n; k++ {
		j := idx[k-1]
		lhs += int64(out[j])
		prefix.insert(in[j])
		rhs := prefix.minSum(k-1, int64(k)) + minSumAll(k) - prefix.minSum(k, int64(k))
		if lhs > rhs {
			return false
		}
	}
	return true
}

// IsBigraphical reports whether a bipartite graph with the given
// degree sequences on the two sides exists — the Gale–Ryser
// condition. Out-of-range degrees (a left degree exceeding the right
// side's size, or vice versa) or unequal sums are not bigraphical.
// O((l+r) log r).
func IsBigraphical(left, right []int) bool {
	var sumL, sumR int64
	for _, d := range left {
		if d < 0 || d > len(right) {
			return false
		}
		sumL += int64(d)
	}
	for _, d := range right {
		if d < 0 || d > len(left) {
			return false
		}
		sumR += int64(d)
	}
	if sumL != sumR {
		return false
	}

	l := append([]int(nil), left...)
	sort.Sort(sort.Reverse(sort.IntSlice(l)))
	r := append([]int(nil), right...)
	sort.Ints(r)
	prefixR := make([]int64, len(r)+1)
	for i, d := range r {
		prefixR[i+1] = prefixR[i] + int64(d)
	}

	// Σ_{i≤k} left_i ≤ Σ_j min(right_j, k) for every prefix of the
	// non-increasing left side.
	var lhs int64
	for k := 1; k <= len(l); k++ {
		lhs += int64(l[k-1])
		i := sort.SearchInts(r, k+1)
		rhs := prefixR[i] + int64(k)*int64(len(r)-i)
		if lhs > rhs {
			return false
		}
	}
	return true
}
