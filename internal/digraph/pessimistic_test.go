package digraph

import (
	"context"
	"testing"

	"gesmc/internal/rng"
)

// The directed mirror of core/pessimistic_test.go: the worst-case
// scheduler of Theorems 2-3 now reaches the directed runner through the
// unified kernel.

func TestDirectedPessimisticSameResults(t *testing.T) {
	src := rng.NewMT19937(8801)
	for trial := 0; trial < 20; trial++ {
		g := randomDigraph(12+rng.IntN(src, 40), 0.2, src)
		if g.M() < 4 {
			continue
		}
		switches := globalBatch(g.M(), src)

		seq := g.Clone()
		S := seq.ArcSet()
		seqLegal := ExecuteSequential(seq.Arcs(), S, switches)

		par := g.Clone()
		r := NewSuperstepRunner(par.Arcs(), maxi(len(switches), 1), 4)
		r.Pessimistic = true
		r.Run(switches)
		if r.Legal != seqLegal {
			t.Fatalf("pessimistic accepted %d, sequential %d", r.Legal, seqLegal)
		}
		for i := range seq.Arcs() {
			if seq.Arcs()[i] != par.Arcs()[i] {
				t.Fatalf("pessimistic mode diverges at arc %d", i)
			}
		}
	}
}

func TestDirectedPessimisticRoundsAtLeastNatural(t *testing.T) {
	src := rng.NewMT19937(8802)
	g := randomDigraph(64, 0.15, src)
	switches := globalBatch(g.M(), src)

	nat := NewSuperstepRunner(g.Clone().Arcs(), maxi(len(switches), 1), 1)
	nat.Run(switches)

	pes := NewSuperstepRunner(g.Clone().Arcs(), maxi(len(switches), 1), 1)
	pes.Pessimistic = true
	pes.Run(switches)

	if pes.TotalRounds < nat.TotalRounds {
		t.Fatalf("pessimistic rounds %d < natural rounds %d", pes.TotalRounds, nat.TotalRounds)
	}
}

func TestDirectedPessimisticRoundsBounded(t *testing.T) {
	// The round bound of the analysis carries over to directed
	// switching: several full global switches under the worst-case
	// scheduler stay within single-digit average rounds on a moderately
	// dense digraph.
	src := rng.NewMT19937(8803)
	g := randomDigraph(128, 0.08, src)
	m := g.M()
	r := NewSuperstepRunner(g.Arcs(), m/2, 2)
	r.Pessimistic = true
	var buf []Switch
	for step := 0; step < 8; step++ {
		perm := rng.Perm(src, m)
		buf = GlobalSwitches(perm, m/2, buf)
		r.Run(buf)
	}
	if avg := float64(r.TotalRounds) / float64(r.InternalSupersteps); avg > 10 {
		t.Fatalf("average pessimistic rounds %.2f unreasonably high", avg)
	}
}

func TestDirectedPessimisticViaConfig(t *testing.T) {
	// The config plumbing: results identical to the default scheduler.
	src := rng.NewMT19937(8804)
	g := randomDigraph(48, 0.15, src)
	a, b := g.Clone(), g.Clone()

	ea, err := NewEngine(a, AlgParGlobalES, Config{Workers: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ea.Steps(context.Background(), 5); err != nil {
		t.Fatal(err)
	}
	eb, err := NewEngine(b, AlgParGlobalES, Config{Workers: 3, Seed: 4, PessimisticRounds: true})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := eb.Steps(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Arcs() {
		if a.Arcs()[i] != b.Arcs()[i] {
			t.Fatal("pessimistic config changed results")
		}
	}
	if sb.TotalRounds < int64(sb.InternalSupersteps) {
		t.Fatal("round accounting broken in pessimistic mode")
	}
}
