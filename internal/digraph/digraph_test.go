package digraph

import (
	"testing"
	"testing/quick"

	"gesmc/internal/graph"
	"gesmc/internal/rng"
)

func TestArcRoundTrip(t *testing.T) {
	f := func(u, v graph.Node) bool {
		a := MakeArc(u, v)
		return a.Tail() == u && a.Head() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestArcNotCanonicalized(t *testing.T) {
	if MakeArc(5, 3) == MakeArc(3, 5) {
		t.Fatal("arcs must be direction sensitive")
	}
}

func TestSwitchTargets(t *testing.T) {
	t1, t2 := SwitchTargets(MakeArc(0, 1), MakeArc(2, 3))
	if t1 != MakeArc(0, 3) || t2 != MakeArc(2, 1) {
		t.Fatalf("targets = %v, %v", t1, t2)
	}
}

func TestSwitchPreservesDegreeSequences(t *testing.T) {
	f := func(a, b, c, d graph.Node) bool {
		if a == b || c == d {
			return true
		}
		a1, a2 := MakeArc(a, b), MakeArc(c, d)
		t1, t2 := SwitchTargets(a1, a2)
		// Multisets of tails and of heads are preserved separately.
		return t1.Tail() == a1.Tail() && t2.Tail() == a2.Tail() &&
			((t1.Head() == a2.Head() && t2.Head() == a1.Head()) ||
				(t1.Head() == a1.Head() && t2.Head() == a2.Head()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(3, []Arc{MakeArc(1, 1)}); err == nil {
		t.Fatal("loop accepted")
	}
	if _, err := New(3, []Arc{MakeArc(0, 1), MakeArc(0, 1)}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := New(2, []Arc{MakeArc(0, 2)}); err == nil {
		t.Fatal("out-of-range accepted")
	}
	// Antiparallel arcs are distinct and both allowed.
	g, err := New(2, []Arc{MakeArc(0, 1), MakeArc(1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatal("antiparallel arcs lost")
	}
}

func TestDegrees(t *testing.T) {
	g, err := FromPairs(3, [][2]graph.Node{{0, 1}, {0, 2}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	out, in := g.Degrees()
	if out[0] != 2 || out[1] != 1 || out[2] != 0 {
		t.Fatalf("out = %v", out)
	}
	if in[0] != 1 || in[1] != 1 || in[2] != 1 {
		t.Fatalf("in = %v", in)
	}
}

func TestKleitmanWangRealizes(t *testing.T) {
	cases := []struct{ out, in []int }{
		{[]int{1, 1, 1}, []int{1, 1, 1}}, // directed triangle
		{[]int{2, 0, 0}, []int{0, 1, 1}}, // out-star
		{[]int{0, 1, 1}, []int{2, 0, 0}}, // in-star
		{[]int{2, 2, 2}, []int{2, 2, 2}}, // complete digraph K3
		{[]int{3, 2, 1, 0}, []int{0, 1, 2, 3}},
		{[]int{0, 0}, []int{0, 0}}, // empty
	}
	for _, c := range cases {
		g, err := KleitmanWang(c.out, c.in)
		if err != nil {
			t.Fatalf("KleitmanWang(%v, %v): %v", c.out, c.in, err)
		}
		if err := g.CheckSimple(); err != nil {
			t.Fatal(err)
		}
		gotOut, gotIn := g.Degrees()
		for v := range c.out {
			if gotOut[v] != c.out[v] || gotIn[v] != c.in[v] {
				t.Fatalf("degrees wrong for %v/%v: got %v/%v", c.out, c.in, gotOut, gotIn)
			}
		}
	}
}

func TestKleitmanWangRejects(t *testing.T) {
	cases := []struct{ out, in []int }{
		{[]int{1, 0}, []int{0, 0}},       // sum mismatch
		{[]int{2, 0}, []int{0, 2}},       // would need parallel arcs
		{[]int{1}, []int{1}},             // single node needs a loop
		{[]int{3, 0, 0}, []int{1, 1, 1}}, // out-degree 3 > n-1... (equals n-1=2? no, 3 > 2)
	}
	for _, c := range cases {
		if _, err := KleitmanWang(c.out, c.in); err == nil {
			t.Fatalf("KleitmanWang(%v, %v) accepted", c.out, c.in)
		}
	}
}

func TestKleitmanWangRandomAgainstFeasibility(t *testing.T) {
	// Randomized: whenever KW succeeds the degrees must match exactly;
	// whenever it fails on sums-equal input, verify by brute force on
	// tiny instances that no realization exists.
	src := rng.NewMT19937(5)
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.IntN(src, 3) // n <= 4 keeps brute force fast
		out := make([]int, n)
		in := make([]int, n)
		total := 0
		for v := 0; v < n; v++ {
			out[v] = rng.IntN(src, n)
			total += out[v]
		}
		// Distribute the same total over in-degrees.
		rem := total
		for v := 0; v < n-1 && rem > 0; v++ {
			d := rng.IntN(src, min(rem, n-1)+1)
			in[v] = d
			rem -= d
		}
		in[n-1] = rem
		if in[n-1] >= n {
			continue
		}
		g, err := KleitmanWang(out, in)
		feasible := bruteForceDigraphical(out, in)
		if (err == nil) != feasible {
			t.Fatalf("KW disagreement on out=%v in=%v: err=%v, brute=%v", out, in, err, feasible)
		}
		if err == nil {
			gotOut, gotIn := g.Degrees()
			for v := 0; v < n; v++ {
				if gotOut[v] != out[v] || gotIn[v] != in[v] {
					t.Fatalf("degree mismatch on %v/%v", out, in)
				}
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// bruteForceDigraphical enumerates all arc subsets of tiny complete
// digraphs to decide realizability (n <= 5 keeps this tractable).
func bruteForceDigraphical(out, in []int) bool {
	n := len(out)
	type arc struct{ u, v int }
	var arcs []arc
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				arcs = append(arcs, arc{u, v})
			}
		}
	}
	var rec func(idx int, ro, ri []int) bool
	rec = func(idx int, ro, ri []int) bool {
		if idx == len(arcs) {
			for v := 0; v < n; v++ {
				if ro[v] != 0 || ri[v] != 0 {
					return false
				}
			}
			return true
		}
		// Prune: remaining arcs can cover at most len(arcs)-idx.
		if rec(idx+1, ro, ri) {
			return true
		}
		a := arcs[idx]
		if ro[a.u] > 0 && ri[a.v] > 0 {
			ro[a.u]--
			ri[a.v]--
			ok := rec(idx+1, ro, ri)
			ro[a.u]++
			ri[a.v]++
			if ok {
				return true
			}
		}
		return false
	}
	ro := append([]int(nil), out...)
	ri := append([]int(nil), in...)
	return rec(0, ro, ri)
}
