package constraint

// edge64 constrains the packed 64-bit edge encodings the tracker is
// generic over (graph.Edge and digraph.Arc).
type edge64 interface{ ~uint64 }

// Tracker is the incremental connectivity certificate of the global
// constraint tier: a spanning forest over the current edge list,
// maintained so that the common case — a switch deleting only non-tree
// edges — is certified connectivity-preserving in O(1) map lookups.
// Switches that delete a tree edge take the slow path (CheckSwitch): a
// union-find pass over the edge list minus the deleted edges, deciding
// exactly whether the rewired graph stays connected.
//
// Certificate lifecycle: Certify builds the forest (and the tree-edge
// marks) from scratch. A fast-path switch keeps the certificate valid
// without any update — the deleted edges were not in the forest, and
// the inserted edges are simply absent from the tree marks, i.e.
// treated as non-tree, which is sound because the old forest still
// spans the graph. A slow-path acceptance invalidates the forest, so
// the executor re-certifies immediately after applying the switch.
//
// The tracker is single-goroutine state: sequential chains own one
// directly; parallel chains use it only between supersteps
// (speculate-then-recertify, see Recertify).
type Tracker struct {
	n    int
	uf   *UnionFind
	tree map[uint64]struct{}
}

// NewTracker prepares a tracker for graphs on n nodes.
func NewTracker(n int) *Tracker {
	return &Tracker{
		n:    n,
		uf:   NewUnionFind(n),
		tree: make(map[uint64]struct{}, n),
	}
}

// Certify rebuilds the spanning-forest certificate from the edge list
// and reports whether the graph is connected (a graph with isolated
// nodes is not). The tree marks are valid only when it returns true;
// constrained chains maintain connectivity as an invariant, so a false
// return is a construction-time rejection, not a runtime state.
func Certify[E edge64](t *Tracker, edges []E) bool {
	t.uf.Reset(t.n)
	clear(t.tree)
	for _, e := range edges {
		u, v := endpoints(uint64(e))
		if t.uf.Union(int32(u), int32(v)) {
			t.tree[uint64(e)] = struct{}{}
		}
	}
	return t.uf.Sets() <= 1
}

// Connected reports whether the edge list is connected without touching
// the tree marks, so speculative states can be checked and rolled back
// with the certificate of the last committed state intact.
func Connected[E edge64](t *Tracker, edges []E) bool {
	t.uf.Reset(t.n)
	for _, e := range edges {
		u, v := endpoints(uint64(e))
		t.uf.Union(int32(u), int32(v))
	}
	return t.uf.Sets() <= 1
}

// FastErasable reports whether deleting edges e1 and e2 is certified
// connectivity-preserving: neither is a tree edge of the current
// certificate, so the spanning forest survives the deletion. A false
// return does not mean the switch disconnects — it means the
// certificate cannot tell, and CheckSwitch must decide.
func (t *Tracker) FastErasable(e1, e2 uint64) bool {
	if _, ok := t.tree[e1]; ok {
		return false
	}
	_, ok := t.tree[e2]
	return !ok
}

// CheckSwitch decides the slow path exactly: does replacing the edges
// at positions i and j (values e1, e2) by targets t3, t4 keep the
// graph connected? It runs one union-find pass over the edge list
// minus the two deleted positions, then merges the target endpoints.
// Because the pre-switch graph is connected (chain invariant), every
// component of G − {e1, e2} contains an endpoint of a deleted edge,
// and those four endpoints are exactly the endpoints of t3 and t4 —
// so the rewired graph is connected iff the four endpoints end up in
// one set.
func CheckSwitch[E edge64](t *Tracker, edges []E, i, j int, t3, t4 E) bool {
	t.uf.Reset(t.n)
	for k, e := range edges {
		if k == i || k == j {
			continue
		}
		u, v := endpoints(uint64(e))
		t.uf.Union(int32(u), int32(v))
	}
	a, b := endpoints(uint64(t3))
	c, d := endpoints(uint64(t4))
	t.uf.Union(int32(a), int32(b))
	t.uf.Union(int32(c), int32(d))
	root := t.uf.Find(int32(a))
	return t.uf.Find(int32(b)) == root &&
		t.uf.Find(int32(c)) == root &&
		t.uf.Find(int32(d)) == root
}

// Components labels the connected components of an edge list over n
// nodes: it returns the number of components and a label per node
// (labels are assigned in order of first appearance, so they are
// deterministic). It is the union-find mirror of the DFS-based
// undirected implementation, shared by the directed (weak
// connectivity) metrics.
func Components[E edge64](n int, edges []E) (int, []int32) {
	uf := NewUnionFind(n)
	for _, e := range edges {
		u, v := endpoints(uint64(e))
		uf.Union(int32(u), int32(v))
	}
	labels := make([]int32, n)
	next := int32(0)
	remap := make(map[int32]int32, 8)
	for v := 0; v < n; v++ {
		r := uf.Find(int32(v))
		l, ok := remap[r]
		if !ok {
			l = next
			next++
			remap[r] = l
		}
		labels[v] = l
	}
	return int(next), labels
}
