package constraint

// UnionFind is a reusable disjoint-set forest over node ids, the
// primitive behind the connectivity certificate. Reset reinitializes it
// in O(n); Union/Find use union by size with path halving.
type UnionFind struct {
	parent []int32
	size   []int32
	sets   int
}

// NewUnionFind returns a forest over n singleton nodes.
func NewUnionFind(n int) *UnionFind {
	u := &UnionFind{}
	u.Reset(n)
	return u
}

// Reset reinitializes the forest to n singletons, growing the backing
// arrays if needed.
func (u *UnionFind) Reset(n int) {
	if cap(u.parent) < n {
		u.parent = make([]int32, n)
		u.size = make([]int32, n)
	}
	u.parent = u.parent[:n]
	u.size = u.size[:n]
	for i := range u.parent {
		u.parent[i] = int32(i)
		u.size[i] = 1
	}
	u.sets = n
}

// Find returns the representative of x's set, halving the path.
func (u *UnionFind) Find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// Union merges the sets of a and b, returning true if they were
// distinct.
func (u *UnionFind) Union(a, b int32) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
	u.sets--
	return true
}

// Sets returns the current number of disjoint sets.
func (u *UnionFind) Sets() int { return u.sets }
