package constraint

import "gesmc/internal/switching"

// Recertify is the parallel chains' speculate-then-recertify mode: the
// superstep just executed by the runner applied its switches
// optimistically (local constraints were enforced in the decide phase;
// connectivity was not). Recertify checks the certificate on the
// resulting edge list and, if it broke, rolls accepted switches back in
// reverse commit order — the inverse of the sequential application
// order the kernel's exactness guarantees — until connectivity is
// restored. Termination is guaranteed because the pre-superstep state
// was connected (chain invariant).
//
// It returns the number of switches rolled back (0 in the common case
// of a superstep that kept the graph connected). The tracker's
// certificate is rebuilt over the committed state in every case, so
// the next superstep starts certified.
//
// Rolling back in reverse commit order is exact: the kernel's edge
// list after the superstep is bit-identical to sequentially applying
// the accepted switches in index order, so undoing switch k restores
// precisely the sequential state after switches 0..k-1. The resulting
// chain differs from the sequential constrained chain (which rejects
// the first disconnecting switch and keeps evaluating against the
// repaired state), but it is deterministic per seed and — because the
// accepted set and the rollback order are both worker-count
// independent — identical for every worker count.
func Recertify[E switching.EdgeKind[E]](r *switching.Runner[E], switches []switching.Switch, t *Tracker) int {
	if Certify(t, r.E) {
		return 0
	}
	rolled := 0
	for k := len(switches) - 1; k >= 0; k-- {
		if !r.Accepted(k) {
			continue
		}
		r.Rollback(k, switches[k])
		rolled++
		if Connected(t, r.E) {
			break
		}
	}
	Certify(t, r.E)
	return rolled
}
