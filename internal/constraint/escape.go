package constraint

import (
	"gesmc/internal/rng"
	"gesmc/internal/switching"
)

// GraphOps is the minimal edge-set interface Escape needs to execute
// switches: membership, insertion, and erasure over the chain's
// authoritative set. Chains adapt their own set type (hashset.Set,
// conc.EdgeSet, map[Arc]struct{}) with three closures built once at
// engine construction.
type GraphOps[E any] struct {
	Contains func(E) bool
	Insert   func(E)
	Erase    func(E)
}

// isLoop reports whether both endpoints of the packed edge coincide.
func isLoop[E edge64](e E) bool {
	u, v := endpoints(uint64(e))
	return u == v
}

// Escape attempts up to tries compound k-switch escape moves (k = 2,
// Tabourier's double switch): two uniformly drawn switches executed
// atomically. Each component switch must satisfy Definition-1
// simplicity against the state it sees and pass the local veto, but
// the intermediate graph may be disconnected — only the final state
// must be connected. That relaxation is exactly what restores
// irreducibility when every single switch out of the current state
// disconnects the graph.
//
// The compound proposal is symmetric (the reverse move traverses the
// same intermediate graph with the same per-switch probabilities), so
// mixing it into the constrained chain preserves the uniform
// stationary distribution over connected realizations.
//
// On success the edge list and set hold the post-escape state and the
// tracker is re-certified over it; on failure every speculative
// application has been undone and the tracker's certificate is
// untouched. Returns the number of proposals attempted and the number
// accepted (0 or 1 — Escape stops at the first accepted move).
func Escape[E switching.EdgeKind[E]](edges []E, ops GraphOps[E], veto func(e1, e2, t3, t4 E) bool,
	t *Tracker, src rng.Source, tries int) (attempts, moves int64) {
	m := len(edges)
	if m < 2 {
		return 0, 0
	}
	for try := 0; try < tries; try++ {
		attempts++
		i1, j1, a1, a2, b1, b2, ok := applySwitch(edges, ops, veto, src)
		if !ok {
			continue
		}
		i2, j2, c1, c2, d1, d2, ok := applySwitch(edges, ops, veto, src)
		if !ok {
			undoSwitch(edges, ops, i1, j1, a1, a2, b1, b2)
			continue
		}
		if Connected(t, edges) {
			Certify(t, edges)
			moves++
			return attempts, moves
		}
		undoSwitch(edges, ops, i2, j2, c1, c2, d1, d2)
		undoSwitch(edges, ops, i1, j1, a1, a2, b1, b2)
	}
	return attempts, moves
}

// applySwitch draws one uniform switch and applies it if it is simple
// and passes the local veto, returning the positions, sources, and
// targets needed to undo it.
func applySwitch[E switching.EdgeKind[E]](edges []E, ops GraphOps[E], veto func(e1, e2, t3, t4 E) bool,
	src rng.Source) (i, j int, e1, e2, t3, t4 E, ok bool) {
	i, j = rng.TwoDistinct(src, len(edges))
	g := rng.Bool(src)
	e1, e2 = edges[i], edges[j]
	t3, t4 = e1.Targets(e2, g)
	if isLoop(t3) || isLoop(t4) || t3 == e1 || t3 == e2 || t4 == e1 || t4 == e2 {
		return i, j, e1, e2, t3, t4, false
	}
	if ops.Contains(t3) || ops.Contains(t4) {
		return i, j, e1, e2, t3, t4, false
	}
	if veto != nil && veto(e1, e2, t3, t4) {
		return i, j, e1, e2, t3, t4, false
	}
	ops.Erase(e1)
	ops.Erase(e2)
	ops.Insert(t3)
	ops.Insert(t4)
	edges[i], edges[j] = t3, t4
	return i, j, e1, e2, t3, t4, true
}

// undoSwitch reverts an applied switch.
func undoSwitch[E edge64](edges []E, ops GraphOps[E], i, j int, e1, e2, t3, t4 E) {
	ops.Erase(t3)
	ops.Erase(t4)
	ops.Insert(e1)
	ops.Insert(e2)
	edges[i], edges[j] = e1, e2
}
