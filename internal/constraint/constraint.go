// Package constraint restricts the switching Markov chains to a
// constrained state space, the null-model setting of Tabourier et al.
// ("Generating constrained random graphs using multiple edge switches")
// and Milo et al. ("On the uniform generation of random graphs with
// prescribed degree sequences"): sample uniformly not over all simple
// graphs with the prescribed degrees, but over the subset satisfying
// additional structural predicates.
//
// The package splits constraints into two tiers:
//
//   - Local constraints (Local) are pure functions of one proposed
//     switch — its two source edges and two target edges, all taken
//     from the pre-superstep snapshot. Forbidden-edge sets, protected
//     (keep-edge) masks, and degree-class partitions are local. Because
//     they depend on nothing decided concurrently, they evaluate
//     safely inside the parallel superstep kernel's decide phase, and
//     constrained parallel runs stay bit-identical to sequential
//     execution for every worker count.
//
//   - Global constraints (connectivity, via Tracker) depend on the
//     whole evolving graph. Sequential chains consult the tracker per
//     switch: a spanning-forest certificate answers most erasures in
//     O(1) (deleting only non-tree edges cannot disconnect), and a
//     union-find recheck decides switches that delete certificate tree
//     edges. Parallel chains run in speculate-then-recertify mode
//     (Recertify): a superstep's switches are applied optimistically
//     and rolled back in reverse commit order until the certificate
//     holds again.
//
// When single switches stall under the connectivity constraint — every
// proposal near the current state disconnects the graph — the chain
// escapes with a compound k-switch (Escape, k = 2 following Tabourier):
// two switches executed atomically, required to be individually simple
// and jointly connectivity-preserving, with the intermediate graph
// allowed to be disconnected. This keeps the constrained chain
// irreducible on state spaces where single switches are not.
//
// Everything is generic over the 64-bit edge encoding (endpoints packed
// 32+32), so the same machinery serves undirected edges and directed
// arcs; directed connectivity is weak connectivity (orientation
// ignored), which the packed representation gives for free.
package constraint

// Local is a snapshot-determined per-switch veto: Veto reports whether
// replacing source edges (e1, e2) by target edges (t3, t4) is
// forbidden. Implementations must be pure functions of their arguments
// (plus immutable configuration) — the parallel kernel evaluates them
// concurrently from many workers with no synchronization, and
// determinism across worker counts depends on it.
type Local interface {
	Veto(e1, e2, t3, t4 uint64) bool
}

// endpoints unpacks the two endpoints of a 64-bit edge encoding. Both
// canonical undirected edges (min, max) and directed arcs (tail, head)
// pack their endpoints in the high and low 32 bits.
func endpoints(e uint64) (uint32, uint32) {
	return uint32(e >> 32), uint32(e)
}

// Forbidden vetoes every switch whose target edges include a forbidden
// edge: graphs sampled under it never contain those edges. The caller
// must separately ensure the starting graph contains none of them.
type Forbidden struct {
	set map[uint64]struct{}
}

// NewForbidden builds the forbidden-edge constraint from packed edge
// encodings (canonicalized by the caller for undirected use).
func NewForbidden(edges []uint64) *Forbidden {
	f := &Forbidden{set: make(map[uint64]struct{}, len(edges))}
	for _, e := range edges {
		f.set[e] = struct{}{}
	}
	return f
}

// Len returns the number of forbidden edges.
func (f *Forbidden) Len() int { return len(f.set) }

// Contains reports whether e is forbidden.
func (f *Forbidden) Contains(e uint64) bool {
	_, ok := f.set[e]
	return ok
}

// Veto implements Local.
func (f *Forbidden) Veto(_, _, t3, t4 uint64) bool {
	if _, ok := f.set[t3]; ok {
		return true
	}
	_, ok := f.set[t4]
	return ok
}

// Protected vetoes every switch that would erase a protected edge:
// graphs sampled under it always contain those edges. The caller must
// separately ensure the starting graph contains all of them.
type Protected struct {
	set map[uint64]struct{}
}

// NewProtected builds the keep-edge constraint from packed encodings.
func NewProtected(edges []uint64) *Protected {
	p := &Protected{set: make(map[uint64]struct{}, len(edges))}
	for _, e := range edges {
		p.set[e] = struct{}{}
	}
	return p
}

// Len returns the number of protected edges.
func (p *Protected) Len() int { return len(p.set) }

// Contains reports whether e is protected.
func (p *Protected) Contains(e uint64) bool {
	_, ok := p.set[e]
	return ok
}

// Veto implements Local.
func (p *Protected) Veto(e1, e2, _, _ uint64) bool {
	if _, ok := p.set[e1]; ok {
		return true
	}
	_, ok := p.set[e2]
	return ok
}

// Classes vetoes switches that change the number of edges between any
// two node classes: with classes assigned by degree, the chain
// preserves the joint degree matrix (degree-class partition
// constraint). A switch replaces the class pairs of its sources by
// those of its targets; it is allowed iff the two multisets coincide.
type Classes struct {
	class []int32
}

// NewClasses builds the partition constraint; class[v] is node v's
// class label.
func NewClasses(class []int32) *Classes {
	return &Classes{class: class}
}

// pair returns the unordered class pair of edge e, packed so that
// pairs compare with ==.
func (c *Classes) pair(e uint64) uint64 {
	u, v := endpoints(e)
	a, b := c.class[u], c.class[v]
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// Veto implements Local: the class-pair multiset {t3, t4} must equal
// {e1, e2}.
func (c *Classes) Veto(e1, e2, t3, t4 uint64) bool {
	p1, p2 := c.pair(e1), c.pair(e2)
	q1, q2 := c.pair(t3), c.pair(t4)
	return !(p1 == q1 && p2 == q2 || p1 == q2 && p2 == q1)
}

// Spec bundles a constraint configuration for an engine: the local veto
// tier, whether connectivity must be preserved, and the k-switch escape
// trigger. The zero Spec constrains nothing.
type Spec struct {
	// Locals are evaluated per proposed switch; any veto rejects it.
	Locals []Local
	// Connected requires every sampled graph to be connected (weakly
	// connected for directed targets). The starting graph must be
	// connected.
	Connected bool
	// Stall is the number of consecutive connectivity rejections after
	// which the chain attempts a compound k-switch escape move; 0
	// selects DefaultStall. Only meaningful with Connected.
	Stall int
}

// DefaultStall is the default escape trigger: this many consecutive
// connectivity vetoes mark the chain as stalled.
const DefaultStall = 32

// EscapeTries is the number of compound-switch proposals attempted per
// stall before the chain falls back to regular single switches.
const EscapeTries = 8

// StallLimit resolves the escape trigger.
func (s *Spec) StallLimit() int {
	if s.Stall > 0 {
		return s.Stall
	}
	return DefaultStall
}

// Active reports whether the spec constrains anything.
func (s *Spec) Active() bool {
	return s != nil && (len(s.Locals) > 0 || s.Connected)
}

// Veto evaluates the local tier, returning a nil function when no
// local constraints exist so hot paths can skip the call entirely.
func (s *Spec) Veto() func(e1, e2, t3, t4 uint64) bool {
	if s == nil || len(s.Locals) == 0 {
		return nil
	}
	if len(s.Locals) == 1 {
		l := s.Locals[0]
		return l.Veto
	}
	locals := s.Locals
	return func(e1, e2, t3, t4 uint64) bool {
		for _, l := range locals {
			if l.Veto(e1, e2, t3, t4) {
				return true
			}
		}
		return false
	}
}
