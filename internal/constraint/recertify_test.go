package constraint

import (
	"testing"

	"gesmc/internal/graph"
	"gesmc/internal/rng"
	"gesmc/internal/switching"
)

// hexagon returns the 6-cycle edge list.
func hexagon() []graph.Edge {
	return []graph.Edge{
		graph.MakeEdge(0, 1), graph.MakeEdge(1, 2), graph.MakeEdge(2, 3),
		graph.MakeEdge(3, 4), graph.MakeEdge(4, 5), graph.MakeEdge(5, 0),
	}
}

// findDisconnectingSwitch returns the g bit for which the switch on
// edge indices (i, j) of E splits the hexagon, by trying both.
func disconnectingBit(E []graph.Edge, i, j uint32) (bool, bool) {
	for _, g := range []bool{false, true} {
		t3, t4 := E[i].Targets(E[j], g)
		tr := NewTracker(6)
		if !CheckSwitch(tr, E, int(i), int(j), t3, t4) && !t3.IsLoop() && !t4.IsLoop() {
			return g, true
		}
	}
	return false, false
}

// TestRecertifyRollsBackBridgeDeletingSuperstep forces a superstep that
// disconnects the graph and asserts the speculate-then-recertify pass
// undoes exactly the disconnecting switch, restores the edge list, and
// leaves the certificate valid — the rollback unit test of the issue.
func TestRecertifyRollsBackBridgeDeletingSuperstep(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		E := hexagon()
		before := append([]graph.Edge(nil), E...)
		g, ok := disconnectingBit(E, 0, 3)
		if !ok {
			t.Fatal("no disconnecting switch on antipodal hexagon edges?")
		}
		r := switching.NewRunner(E, 4, workers)
		tr := NewTracker(6)
		if !Certify(tr, E) {
			t.Fatal("hexagon not certified")
		}

		// One superstep: a harmless switch pair would also do, but the
		// single disconnecting switch isolates the rollback path.
		sw := []switching.Switch{{I: 0, J: 3, G: g}}
		r.Run(sw)
		if !r.Accepted(0) {
			t.Fatalf("workers=%d: disconnecting switch not accepted by unconstrained kernel", workers)
		}
		if Connected(tr, E) {
			t.Fatalf("workers=%d: switch did not disconnect (test setup broken)", workers)
		}

		rolled := Recertify(r, sw, tr)
		if rolled != 1 {
			t.Fatalf("workers=%d: rolled back %d switches, want 1", workers, rolled)
		}
		for i := range before {
			if E[i] != before[i] {
				t.Fatalf("workers=%d: edge %d not restored: %v != %v", workers, i, E[i], before[i])
			}
		}
		if r.Accepted(0) {
			t.Fatalf("workers=%d: rolled-back switch still marked legal", workers)
		}
		if !Connected(tr, E) {
			t.Fatalf("workers=%d: graph not connected after rollback", workers)
		}
		if r.Stats.RolledBack != 1 || r.Stats.Legal != 0 {
			t.Fatalf("workers=%d: stats legal=%d rolledback=%d", workers, r.Stats.Legal, r.Stats.RolledBack)
		}
		// The edge set must match the restored edge list.
		for _, e := range before {
			if !r.Set.Contains(e) {
				t.Fatalf("workers=%d: edge %v missing from set after rollback", workers, e)
			}
		}
		r.Release()
	}
}

// TestRecertifyKeepsConnectedSuperstep: a superstep whose certificate
// holds is not rolled back at all.
func TestRecertifyKeepsConnectedSuperstep(t *testing.T) {
	E := hexagon()
	g, ok := disconnectingBit(E, 0, 3)
	if !ok {
		t.Fatal("setup")
	}
	// The opposite bit re-pairs across the cut: connected.
	r := switching.NewRunner(E, 4, 2)
	defer r.Release()
	tr := NewTracker(6)
	Certify(tr, E)
	sw := []switching.Switch{{I: 0, J: 3, G: !g}}
	r.Run(sw)
	if !r.Accepted(0) {
		t.Fatal("cross switch rejected")
	}
	if rolled := Recertify(r, sw, tr); rolled != 0 {
		t.Fatalf("rolled back %d switches of a connected superstep", rolled)
	}
	if r.Stats.Legal != 1 || r.Stats.RolledBack != 0 {
		t.Fatalf("stats legal=%d rolledback=%d", r.Stats.Legal, r.Stats.RolledBack)
	}
}

// TestRecertifyPartialRollback: a superstep mixing harmless switches
// with a disconnecting one rolls back only the suffix needed to
// restore the certificate.
func TestRecertifyPartialRollback(t *testing.T) {
	// Two hexagons sharing no nodes would be disconnected; instead use
	// one hexagon plus a chord pair that switches harmlessly among
	// nodes 6,7: hexagon 0..5 with a pendant square 0-6-7-1 (edges
	// (0,6),(6,7),(7,1)). Switch A rewires within the square region
	// keeping connectivity; switch B disconnects the hexagon part.
	E := []graph.Edge{
		graph.MakeEdge(0, 1), graph.MakeEdge(1, 2), graph.MakeEdge(2, 3),
		graph.MakeEdge(3, 4), graph.MakeEdge(4, 5), graph.MakeEdge(5, 0),
		graph.MakeEdge(0, 6), graph.MakeEdge(6, 7), graph.MakeEdge(7, 1),
	}
	n := 8
	tr := NewTracker(n)
	if !Certify(tr, E) {
		t.Fatal("setup: not connected")
	}

	// Find a harmless switch on (2,3)x(4,5)... their rewires stay
	// within the cycle and may disconnect; search instead for any
	// (i, j, g) over the square edges that keeps connectivity and
	// simplicity, then pair it with the antipodal hexagon switch that
	// disconnects.
	gBit, ok := disconnectingBitN(E, n, 1, 4)
	if !ok {
		t.Skip("no disconnecting switch on (1,2)x(4,5) in this topology")
	}
	var harmless *switching.Switch
	for _, g := range []bool{false, true} {
		t3, t4 := E[6].Targets(E[8], g) // (0,6) x (7,1)
		if t3.IsLoop() || t4.IsLoop() {
			continue
		}
		dup := false
		for _, e := range E {
			if e == t3 || e == t4 {
				dup = true
			}
		}
		if dup {
			continue
		}
		trx := NewTracker(n)
		if CheckSwitch(trx, E, 6, 8, t3, t4) {
			harmless = &switching.Switch{I: 6, J: 8, G: g}
			break
		}
	}
	if harmless == nil {
		t.Skip("no harmless square switch found")
	}

	r := switching.NewRunner(E, 4, 2)
	defer r.Release()
	sw := []switching.Switch{*harmless, {I: 1, J: 4, G: gBit}}
	r.Run(sw)
	if !r.Accepted(0) || !r.Accepted(1) {
		t.Fatalf("kernel rejected switches: %v %v", r.Accepted(0), r.Accepted(1))
	}
	rolled := Recertify(r, sw, tr)
	if rolled != 1 {
		t.Fatalf("rolled back %d, want exactly the disconnecting suffix (1)", rolled)
	}
	if r.Accepted(1) || !r.Accepted(0) {
		t.Fatal("wrong switch rolled back")
	}
	if !Connected(tr, r.E) {
		t.Fatal("not connected after partial rollback")
	}
}

func disconnectingBitN(E []graph.Edge, n int, i, j uint32) (bool, bool) {
	for _, g := range []bool{false, true} {
		t3, t4 := E[i].Targets(E[j], g)
		if t3.IsLoop() || t4.IsLoop() {
			continue
		}
		tr := NewTracker(n)
		if !CheckSwitch(tr, E, int(i), int(j), t3, t4) {
			return g, true
		}
	}
	return false, false
}

// TestEscapeFromStalledState: on the two-triangle state of the all-2
// degree sequence, every single switch either breaks simplicity or
// disconnects — but a compound double switch reaches a connected
// 6-cycle. Escape must find it, preserve degrees and simplicity, and
// leave the tracker certified.
func TestEscapeFromStalledState(t *testing.T) {
	// Two triangles: the disconnected state is not reachable by the
	// constrained chain, but it IS the intermediate state the compound
	// escape is allowed to pass through; start instead from a hexagon
	// and check escapes work at all (accepted move, invariants hold).
	E := hexagon()
	tr := NewTracker(6)
	Certify(tr, E)
	set := map[graph.Edge]struct{}{}
	for _, e := range E {
		set[e] = struct{}{}
	}
	ops := GraphOps[graph.Edge]{
		Contains: func(e graph.Edge) bool { _, ok := set[e]; return ok },
		Insert:   func(e graph.Edge) { set[e] = struct{}{} },
		Erase:    func(e graph.Edge) { delete(set, e) },
	}
	src := rng.NewMT19937(7)
	var attempts, moves int64
	for try := 0; try < 50 && moves == 0; try++ {
		a, m := Escape(E, ops, nil, tr, src, EscapeTries)
		attempts += a
		moves += m
	}
	if moves == 0 {
		t.Fatalf("no escape accepted in %d attempts", attempts)
	}
	// Invariants: 6 edges, all degree 2, connected, set matches list.
	if len(set) != 6 {
		t.Fatalf("set size %d", len(set))
	}
	deg := make(map[uint32]int)
	for _, e := range E {
		if _, ok := set[e]; !ok {
			t.Fatalf("edge list / set mismatch at %v", e)
		}
		deg[e.U()]++
		deg[e.V()]++
	}
	for v, d := range deg {
		if d != 2 {
			t.Fatalf("degree of %d changed to %d", v, d)
		}
	}
	if !Connected(tr, E) {
		t.Fatal("escape left a disconnected graph")
	}
	if !Certify(tr, E) {
		t.Fatal("tracker not certified after escape")
	}
}

// TestEscapeRespectsVeto: escapes must consult the local tier too — a
// forbidden-edge veto is never violated by a compound move.
func TestEscapeRespectsVeto(t *testing.T) {
	E := hexagon()
	tr := NewTracker(6)
	Certify(tr, E)
	set := map[graph.Edge]struct{}{}
	for _, e := range E {
		set[e] = struct{}{}
	}
	ops := GraphOps[graph.Edge]{
		Contains: func(e graph.Edge) bool { _, ok := set[e]; return ok },
		Insert:   func(e graph.Edge) { set[e] = struct{}{} },
		Erase:    func(e graph.Edge) { delete(set, e) },
	}
	// Forbid everything that is not a current edge: no escape can move.
	veto := func(_, _, t3, t4 graph.Edge) bool {
		_, ok3 := set[t3]
		_, ok4 := set[t4]
		return !ok3 || !ok4
	}
	src := rng.NewMT19937(3)
	before := append([]graph.Edge(nil), E...)
	attempts, moves := Escape(E, ops, veto, tr, src, 64)
	if moves != 0 {
		t.Fatalf("escape accepted %d moves through a total veto (%d attempts)", moves, attempts)
	}
	for i := range before {
		if E[i] != before[i] {
			t.Fatal("vetoed escape mutated the edge list")
		}
	}
}
