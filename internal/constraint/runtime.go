package constraint

import (
	"errors"

	"gesmc/internal/rng"
	"gesmc/internal/switching"
)

// ErrDisconnected is returned by NewRuntime when the connectivity
// constraint is configured over a graph that is not connected: the
// constrained chain's state space is the connected realizations, and
// the start state must belong to it. core and digraph re-export it.
var ErrDisconnected = errors.New("constraint: connectivity requires a connected graph")

// ParStallSupersteps is the escape trigger of the parallel constrained
// chains: this many consecutive supersteps whose accepted switches
// were all rolled back by recertification mark the chain as stalled.
const ParStallSupersteps = 2

// Counters accumulates what one constrained execution did; chains fold
// them into their own stats types.
type Counters struct {
	Legal          int64
	Vetoed         int64
	EscapeAttempts int64
	EscapeMoves    int64
}

// Runtime is the compiled form of a Spec for one chain, generic over
// the edge encoding so the undirected (graph.Edge + hashset/EdgeSet)
// and directed (Arc + map/EdgeSet) chains share one implementation:
// the fused local veto, the connectivity tracker (nil without
// Connected), the escape graph ops, and the stall state. Ops must be
// bound (via the owning chain's set adapter) before the first
// ExecuteSequential or AfterSuperstep call when connectivity is
// active.
type Runtime[E switching.EdgeKind[E]] struct {
	Veto    func(e1, e2, t3, t4 E) bool
	Tracker *Tracker
	Ops     GraphOps[E]

	stallLimit int
	stall      int
	lastLegal  int64
}

// NewRuntime compiles the spec against a target with n nodes and the
// given edge list, certifying the initial state when connectivity is
// required (ErrDisconnected otherwise).
func NewRuntime[E switching.EdgeKind[E]](spec *Spec, n int, edges []E) (*Runtime[E], error) {
	c := &Runtime[E]{stallLimit: spec.StallLimit()}
	if raw := spec.Veto(); raw != nil {
		c.Veto = func(e1, e2, t3, t4 E) bool {
			return raw(uint64(e1), uint64(e2), uint64(t3), uint64(t4))
		}
	}
	if spec.Connected {
		c.Tracker = NewTracker(n)
		if !Certify(c.Tracker, edges) {
			return nil, ErrDisconnected
		}
	}
	return c, nil
}

// ExecuteSequential executes the switches in order under the full
// constraint stack: the Definition-1 simplicity checks first, then the
// local veto, then (when connectivity is required) the certificate —
// the O(1) non-tree fast path when it can certify the erasure, the
// exact union-find recheck when a certificate tree edge is deleted.
// Connectivity rejections accumulate the stall counter; at the stall
// limit the chain attempts compound k-switch escapes.
func (c *Runtime[E]) ExecuteSequential(edges []E, switches []switching.Switch, src rng.Source, cnt *Counters) {
	for _, sw := range switches {
		e1 := edges[sw.I]
		e2 := edges[sw.J]
		t3, t4 := e1.Targets(e2, sw.G)
		if isLoop(t3) || isLoop(t4) || t3 == e1 || t3 == e2 || t4 == e1 || t4 == e2 {
			continue
		}
		if c.Veto != nil && c.Veto(e1, e2, t3, t4) {
			cnt.Vetoed++
			continue
		}
		if c.Ops.Contains(t3) || c.Ops.Contains(t4) {
			continue
		}
		slow := false
		if c.Tracker != nil && !c.Tracker.FastErasable(uint64(e1), uint64(e2)) {
			if !CheckSwitch(c.Tracker, edges, int(sw.I), int(sw.J), t3, t4) {
				cnt.Vetoed++
				c.stall++
				if c.stall >= c.stallLimit {
					c.escape(edges, src, cnt)
				}
				continue
			}
			slow = true
		}
		c.Ops.Erase(e1)
		c.Ops.Erase(e2)
		c.Ops.Insert(t3)
		c.Ops.Insert(t4)
		edges[sw.I] = t3
		edges[sw.J] = t4
		cnt.Legal++
		if c.Tracker != nil {
			c.stall = 0
			if slow {
				// The deleted tree edge invalidated the forest;
				// re-certify over the committed state.
				Certify(c.Tracker, edges)
			}
		}
	}
}

// escape runs up to EscapeTries compound double-switch proposals
// through the bound graph ops, resetting the stall counter on success.
// The tracker is re-certified by the escape itself.
func (c *Runtime[E]) escape(edges []E, src rng.Source, cnt *Counters) {
	attempts, moves := Escape(edges, c.Ops, c.Veto, c.Tracker, src, EscapeTries)
	cnt.EscapeAttempts += attempts
	cnt.EscapeMoves += moves
	if moves > 0 {
		c.stall = 0
	}
}

// AfterSuperstep is the speculate-then-recertify step of the parallel
// constrained chains: recertify the superstep the runner just applied,
// roll back in reverse commit order if the certificate broke, and run
// escape moves when recertification has zeroed out ParStallSupersteps
// whole supersteps in a row.
func (c *Runtime[E]) AfterSuperstep(r *switching.Runner[E], switches []switching.Switch, src rng.Source, cnt *Counters) {
	if c.Tracker == nil {
		return
	}
	rolled := Recertify(r, switches, c.Tracker)
	if rolled > 0 && r.Stats.Legal == c.lastLegal {
		// Everything the superstep accepted was rolled back.
		c.stall++
		if c.stall >= ParStallSupersteps {
			c.escape(r.E, src, cnt)
		}
	} else if r.Stats.Legal > c.lastLegal {
		c.stall = 0
	}
	c.lastLegal = r.Stats.Legal
}
