package constraint

import (
	"testing"

	"gesmc/internal/graph"
)

func edge(u, v uint32) uint64 { return uint64(graph.MakeEdge(u, v)) }

func TestForbiddenVeto(t *testing.T) {
	f := NewForbidden([]uint64{edge(0, 1), edge(2, 3)})
	if f.Len() != 2 {
		t.Fatalf("Len = %d", f.Len())
	}
	// Vetoes only on targets.
	if !f.Veto(edge(4, 5), edge(6, 7), edge(0, 1), edge(6, 5)) {
		t.Fatal("forbidden target t3 not vetoed")
	}
	if !f.Veto(edge(4, 5), edge(6, 7), edge(4, 7), edge(2, 3)) {
		t.Fatal("forbidden target t4 not vetoed")
	}
	if f.Veto(edge(0, 1), edge(2, 3), edge(4, 5), edge(6, 7)) {
		t.Fatal("forbidden sources must not veto (they are being erased)")
	}
}

func TestProtectedVeto(t *testing.T) {
	p := NewProtected([]uint64{edge(0, 1)})
	if !p.Veto(edge(0, 1), edge(2, 3), edge(0, 3), edge(2, 1)) {
		t.Fatal("protected source e1 not vetoed")
	}
	if !p.Veto(edge(2, 3), edge(0, 1), edge(2, 1), edge(0, 3)) {
		t.Fatal("protected source e2 not vetoed")
	}
	if p.Veto(edge(2, 3), edge(4, 5), edge(2, 5), edge(4, 3)) {
		t.Fatal("untouched protected edge vetoed")
	}
}

func TestClassesVeto(t *testing.T) {
	// Classes by parity of node id.
	class := make([]int32, 8)
	for i := range class {
		class[i] = int32(i % 2)
	}
	c := NewClasses(class)
	// (0,2),(4,6) -> (0,6),(4,2): all even-even pairs; preserved.
	if c.Veto(edge(0, 2), edge(4, 6), edge(0, 6), edge(4, 2)) {
		t.Fatal("class-preserving switch vetoed")
	}
	// (0,1),(2,3) -> (0,3),(2,1): even-odd everywhere; preserved.
	if c.Veto(edge(0, 1), edge(2, 3), edge(0, 3), edge(2, 1)) {
		t.Fatal("class-preserving switch vetoed")
	}
	// (0,1),(2,3) -> (0,2),(1,3): even-odd pair becomes even-even +
	// odd-odd; class matrix changes.
	if !c.Veto(edge(0, 1), edge(2, 3), edge(0, 2), edge(1, 3)) {
		t.Fatal("class-changing switch not vetoed")
	}
}

func TestSpecVeto(t *testing.T) {
	var s *Spec
	if s.Active() {
		t.Fatal("nil spec active")
	}
	s = &Spec{}
	if s.Active() || s.Veto() != nil {
		t.Fatal("empty spec must be inert")
	}
	s = &Spec{Locals: []Local{
		NewForbidden([]uint64{edge(0, 1)}),
		NewProtected([]uint64{edge(2, 3)}),
	}}
	veto := s.Veto()
	if !s.Active() || veto == nil {
		t.Fatal("spec with locals must be active")
	}
	if !veto(edge(4, 5), edge(6, 7), edge(0, 1), edge(6, 5)) {
		t.Fatal("combined veto missed forbidden edge")
	}
	if !veto(edge(2, 3), edge(4, 5), edge(2, 5), edge(4, 3)) {
		t.Fatal("combined veto missed protected edge")
	}
	if veto(edge(4, 5), edge(6, 7), edge(4, 7), edge(6, 5)) {
		t.Fatal("clean switch vetoed")
	}
}

func TestUnionFind(t *testing.T) {
	u := NewUnionFind(5)
	if u.Sets() != 5 {
		t.Fatalf("Sets = %d", u.Sets())
	}
	if !u.Union(0, 1) || !u.Union(1, 2) {
		t.Fatal("fresh unions reported no-op")
	}
	if u.Union(0, 2) {
		t.Fatal("redundant union reported merge")
	}
	if u.Sets() != 3 {
		t.Fatalf("Sets = %d after merges", u.Sets())
	}
	if u.Find(0) != u.Find(2) {
		t.Fatal("0 and 2 not merged")
	}
	if u.Find(3) == u.Find(4) {
		t.Fatal("3 and 4 merged spuriously")
	}
	u.Reset(3)
	if u.Sets() != 3 || u.Find(0) == u.Find(1) {
		t.Fatal("reset did not restore singletons")
	}
}

// twoTrianglesBridge is the canonical bridge graph: triangles 0-1-2 and
// 3-4-5 joined by the bridge 2-3.
func twoTrianglesBridge() []graph.Edge {
	return []graph.Edge{
		graph.MakeEdge(0, 1), graph.MakeEdge(1, 2), graph.MakeEdge(0, 2),
		graph.MakeEdge(2, 3),
		graph.MakeEdge(3, 4), graph.MakeEdge(4, 5), graph.MakeEdge(3, 5),
	}
}

func TestTrackerCertifyAndFastPath(t *testing.T) {
	E := twoTrianglesBridge()
	tr := NewTracker(6)
	if !Certify(tr, E) {
		t.Fatal("connected graph failed certification")
	}
	// The bridge must be a tree edge: deleting it is never fast-path.
	if tr.FastErasable(uint64(graph.MakeEdge(2, 3)), uint64(graph.MakeEdge(0, 1))) {
		t.Fatal("bridge deletion certified as safe")
	}
	// Exactly m - (n-1) = 2 non-tree edges exist; the pair of them is
	// fast-erasable.
	var nonTree []uint64
	for _, e := range E {
		if _, ok := tr.tree[uint64(e)]; !ok {
			nonTree = append(nonTree, uint64(e))
		}
	}
	if len(nonTree) != 2 {
		t.Fatalf("expected 2 non-tree edges, got %d", len(nonTree))
	}
	if !tr.FastErasable(nonTree[0], nonTree[1]) {
		t.Fatal("non-tree pair not fast-erasable")
	}

	// Disconnected graph: certification fails.
	if Certify(NewTracker(6), E[:3]) {
		t.Fatal("triangle on 6 nodes certified connected (isolated nodes)")
	}
	if !Connected(NewTracker(3), E[:3]) {
		t.Fatal("triangle on its own nodes reported disconnected")
	}
}

func TestTrackerCheckSwitch(t *testing.T) {
	// Hexagon 0-1-2-3-4-5-0: the canonical disconnecting switch erases
	// the antipodal edges {0,1}, {3,4} and re-pairs the endpoints
	// within the two remaining paths, splitting the cycle into two
	// triangles.
	E := []graph.Edge{
		graph.MakeEdge(0, 1), graph.MakeEdge(1, 2), graph.MakeEdge(2, 3),
		graph.MakeEdge(3, 4), graph.MakeEdge(4, 5), graph.MakeEdge(5, 0),
	}
	tr := NewTracker(6)
	if !Certify(tr, E) {
		t.Fatal("hexagon failed certification")
	}
	// In a cycle every edge but one is a tree edge, so this pair takes
	// the slow path.
	if tr.FastErasable(uint64(graph.MakeEdge(0, 1)), uint64(graph.MakeEdge(3, 4))) {
		t.Fatal("cycle-edge pair certified as fast-erasable")
	}
	// Cross pairing (0,3),(1,4) reconnects the two paths: accepted.
	if !CheckSwitch(tr, E, 0, 3, graph.MakeEdge(0, 3), graph.MakeEdge(1, 4)) {
		t.Fatal("connectivity-preserving rewire rejected")
	}
	// Same-side pairing (0,4),(1,3) makes two triangles: rejected.
	if CheckSwitch(tr, E, 0, 3, graph.MakeEdge(0, 4), graph.MakeEdge(1, 3)) {
		t.Fatal("disconnecting rewire accepted")
	}
}

func TestComponents(t *testing.T) {
	E := twoTrianglesBridge()
	n, labels := Components(6, E)
	if n != 1 {
		t.Fatalf("connected graph: %d components", n)
	}
	// Drop the bridge: two components, labels split 0/1 by side.
	var noBridge []graph.Edge
	for _, e := range E {
		if e != graph.MakeEdge(2, 3) {
			noBridge = append(noBridge, e)
		}
	}
	n, labels = Components(6, noBridge)
	if n != 2 {
		t.Fatalf("bridge removed: %d components", n)
	}
	if labels[0] != labels[1] || labels[0] != labels[2] {
		t.Fatal("left triangle split")
	}
	if labels[3] != labels[4] || labels[3] != labels[5] {
		t.Fatal("right triangle split")
	}
	if labels[0] == labels[3] {
		t.Fatal("components merged")
	}
	// Isolated nodes are their own components.
	n, _ = Components(8, noBridge)
	if n != 4 {
		t.Fatalf("with 2 isolated nodes: %d components", n)
	}
}
