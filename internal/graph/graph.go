package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Graph is a simple undirected graph stored as an indexed edge list, the
// representation manipulated by all switching Markov chains (E[i] in the
// paper's notation). The edge list order is significant: switches address
// edges by index.
type Graph struct {
	n     int
	edges []Edge
}

// ErrNotSimple is returned when an edge list contains loops or duplicate
// edges.
var ErrNotSimple = errors.New("graph: edge list is not simple")

// New builds a graph with n nodes from the given canonical edges. It
// validates simplicity (no loops, no multi-edges) and node bounds. The
// slice is retained by the graph.
func New(n int, edges []Edge) (*Graph, error) {
	if n < 0 || n > MaxNodes {
		return nil, fmt.Errorf("graph: node count %d out of range [0, 2^28]", n)
	}
	seen := make(map[Edge]struct{}, len(edges))
	for _, e := range edges {
		u, v := e.Endpoints()
		if u > v {
			return nil, fmt.Errorf("graph: edge %v not canonical", e)
		}
		if int(v) >= n {
			return nil, fmt.Errorf("graph: edge %v references node >= n=%d", e, n)
		}
		if e.IsLoop() {
			return nil, fmt.Errorf("%w: loop %v", ErrNotSimple, e)
		}
		if _, dup := seen[e]; dup {
			return nil, fmt.Errorf("%w: duplicate edge %v", ErrNotSimple, e)
		}
		seen[e] = struct{}{}
	}
	return &Graph{n: n, edges: edges}, nil
}

// FromPairs builds a graph from (u, v) pairs, canonicalizing each pair.
func FromPairs(n int, pairs [][2]Node) (*Graph, error) {
	edges := make([]Edge, len(pairs))
	for i, p := range pairs {
		if p[0] == p[1] {
			return nil, fmt.Errorf("%w: loop at node %d", ErrNotSimple, p[0])
		}
		edges[i] = MakeEdge(p[0], p[1])
	}
	return New(n, edges)
}

// NewUnchecked builds a graph without validation. It is intended for
// generators that construct simple edge lists by design; tests assert the
// invariant separately.
func NewUnchecked(n int, edges []Edge) *Graph {
	return &Graph{n: n, edges: edges}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Edges exposes the internal edge list. Switching algorithms mutate it in
// place; other callers must treat it as read-only.
func (g *Graph) Edges() []Edge { return g.edges }

// Edge returns the i-th edge.
func (g *Graph) Edge(i int) Edge { return g.edges[i] }

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	e := make([]Edge, len(g.edges))
	copy(e, g.edges)
	return &Graph{n: g.n, edges: e}
}

// Degrees returns the degree sequence indexed by node.
func (g *Graph) Degrees() []int {
	deg := make([]int, g.n)
	for _, e := range g.edges {
		deg[e.U()]++
		deg[e.V()]++
	}
	return deg
}

// MaxDegree returns the largest degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for _, d := range g.Degrees() {
		if d > max {
			max = d
		}
	}
	return max
}

// AverageDegree returns 2m/n, or 0 for an empty node set.
func (g *Graph) AverageDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(len(g.edges)) / float64(g.n)
}

// Density returns m / C(n,2).
func (g *Graph) Density() float64 {
	if g.n < 2 {
		return 0
	}
	return float64(len(g.edges)) / (float64(g.n) * float64(g.n-1) / 2)
}

// CheckSimple verifies the simplicity invariant, returning a descriptive
// error on the first violation. It is O(m) time and memory.
func (g *Graph) CheckSimple() error {
	seen := make(map[Edge]struct{}, len(g.edges))
	for i, e := range g.edges {
		if e.IsLoop() {
			return fmt.Errorf("%w: loop %v at index %d", ErrNotSimple, e, i)
		}
		if int(e.V()) >= g.n {
			return fmt.Errorf("graph: edge %v at index %d out of node range", e, i)
		}
		if _, dup := seen[e]; dup {
			return fmt.Errorf("%w: duplicate edge %v at index %d", ErrNotSimple, e, i)
		}
		seen[e] = struct{}{}
	}
	return nil
}

// EdgeSet returns the set of edges as a map, independent of list order.
func (g *Graph) EdgeSet() map[Edge]struct{} {
	s := make(map[Edge]struct{}, len(g.edges))
	for _, e := range g.edges {
		s[e] = struct{}{}
	}
	return s
}

// SameEdgeSet reports whether two graphs contain exactly the same edges,
// ignoring edge-list order.
func SameEdgeSet(a, b *Graph) bool {
	if a.M() != b.M() {
		return false
	}
	set := a.EdgeSet()
	for _, e := range b.edges {
		if _, ok := set[e]; !ok {
			return false
		}
	}
	return true
}

// CanonicalKey returns a deterministic string key identifying the graph's
// edge set (used to count state visits in uniformity tests).
func (g *Graph) CanonicalKey() string {
	sorted := make([]Edge, len(g.edges))
	copy(sorted, g.edges)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	buf := make([]byte, 0, len(sorted)*8)
	for _, e := range sorted {
		for s := 56; s >= 0; s -= 8 {
			buf = append(buf, byte(e>>uint(s)))
		}
	}
	return string(buf)
}
