package graph

import (
	"testing"
	"testing/quick"
)

func TestMakeEdgeCanonical(t *testing.T) {
	e1 := MakeEdge(5, 3)
	e2 := MakeEdge(3, 5)
	if e1 != e2 {
		t.Fatalf("MakeEdge not canonical: %v vs %v", e1, e2)
	}
	if u, v := e1.Endpoints(); u != 3 || v != 5 {
		t.Fatalf("Endpoints = (%d, %d), want (3, 5)", u, v)
	}
}

func TestEdgeRoundTrip(t *testing.T) {
	f := func(u, v Node) bool {
		e := MakeEdge(u, v)
		a, b := e.Endpoints()
		if u <= v {
			return a == u && b == v
		}
		return a == v && b == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeOrderingMatchesLexicographic(t *testing.T) {
	// The uint64 order of canonical edges is the lexicographic order of
	// (u, v); several data structures rely on this.
	f := func(a, b, c, d Node) bool {
		e1 := MakeEdge(a, b)
		e2 := MakeEdge(c, d)
		u1, v1 := e1.Endpoints()
		u2, v2 := e2.Endpoints()
		lex := u1 < u2 || (u1 == u2 && v1 < v2)
		return (e1 < e2) == lex
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsLoop(t *testing.T) {
	if !MakeEdge(7, 7).IsLoop() {
		t.Fatal("loop not detected")
	}
	if MakeEdge(7, 8).IsLoop() {
		t.Fatal("non-loop flagged as loop")
	}
}

func TestSwitchTargetsDefinition(t *testing.T) {
	// Figure 1 of the paper: e1 = (A,B), e2 = (X,Y).
	const A, B, X, Y = 0, 1, 2, 3
	e1 := MakeEdge(A, B)
	e2 := MakeEdge(X, Y)

	t3, t4 := SwitchTargets(e1, e2, false) // g=0: (u,x), (v,y)
	if t3 != MakeEdge(A, X) || t4 != MakeEdge(B, Y) {
		t.Fatalf("g=0 targets wrong: %v, %v", t3, t4)
	}
	t3, t4 = SwitchTargets(e1, e2, true) // g=1: (u,y), (v,x)
	if t3 != MakeEdge(A, Y) || t4 != MakeEdge(B, X) {
		t.Fatalf("g=1 targets wrong: %v, %v", t3, t4)
	}
}

func TestSwitchTargetsPreserveDegrees(t *testing.T) {
	f := func(a, b, c, d Node, g bool) bool {
		if a == b || c == d {
			return true
		}
		e1, e2 := MakeEdge(a, b), MakeEdge(c, d)
		t3, t4 := SwitchTargets(e1, e2, g)
		// Multisets of endpoints must coincide.
		count := map[Node]int{}
		for _, e := range []Edge{e1, e2} {
			count[e.U()]++
			count[e.V()]++
		}
		for _, e := range []Edge{t3, t4} {
			count[e.U()]--
			count[e.V()]--
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSwitchTargetsSharedNodeYieldsLoopOrSource(t *testing.T) {
	// When the source edges share a node, the switch either produces a
	// loop or reproduces its own source edges (§2/§3 discussion; our
	// Definition-1 semantics reject both).
	nodes := []Node{0, 1, 2}
	for _, g := range []bool{false, true} {
		e1 := MakeEdge(nodes[0], nodes[1])
		e2 := MakeEdge(nodes[1], nodes[2])
		t3, t4 := SwitchTargets(e1, e2, g)
		selfTarget := t3 == e1 || t3 == e2 || t4 == e1 || t4 == e2
		loop := t3.IsLoop() || t4.IsLoop()
		if !selfTarget && !loop {
			t.Fatalf("shared-node switch g=%v produced fresh targets %v, %v", g, t3, t4)
		}
	}
}
