package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes g in a plain text format: a header line "n m"
// followed by one "u v" pair per line (canonical orientation).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U(), e.V()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format written by WriteEdgeList. It also
// tolerates the common loose variants: comment lines starting with '#'
// or '%', a missing header (node count inferred), directed duplicates,
// loops and multi-edges — the latter are dropped, mirroring the paper's
// NetRep preprocessing ("all directed edges (u,v) are replaced by
// undirected {u,v}, and self-loops and multi-edges are removed").
// Files that lead with the "% directed" marker (the arc-list format of
// digraph.WriteArcList) are rejected: silently collapsing reciprocal
// arc pairs would "preserve" the wrong degree sequence.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)

	var pairs [][2]int64
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if first && strings.EqualFold(line, "% directed") {
			return nil, fmt.Errorf("graph: %q is a directed arc list; read it with ReadArcList", line)
		}
		first = false
		if line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: malformed line %q", line)
		}
		a, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: bad node id %q: %v", fields[0], err)
		}
		b, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: bad node id %q: %v", fields[1], err)
		}
		pairs = append(pairs, [2]int64{a, b})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	// Header detection: the first line "n m" is a header iff m matches
	// the number of remaining lines and no later line references a node
	// >= n. Otherwise every line is an edge.
	declaredN := int64(-1)
	data := pairs
	if len(pairs) > 0 && int64(len(pairs)-1) == pairs[0][1] {
		header := pairs[0]
		isHeader := true
		for _, p := range pairs[1:] {
			if p[0] >= header[0] || p[1] >= header[0] {
				isHeader = false
				break
			}
		}
		if isHeader {
			declaredN = header[0]
			data = pairs[1:]
		}
	}

	edges := make([]Edge, 0, len(data))
	seen := make(map[Edge]struct{}, len(data))
	maxNode := int64(-1)
	for _, p := range data {
		a, b := p[0], p[1]
		if a < 0 || b < 0 || a >= MaxNodes || b >= MaxNodes {
			return nil, fmt.Errorf("graph: node id out of range: %d %d", a, b)
		}
		if a == b {
			continue // drop loops
		}
		e := MakeEdge(Node(a), Node(b))
		if _, dup := seen[e]; dup {
			continue // drop multi-edges
		}
		seen[e] = struct{}{}
		edges = append(edges, e)
		if a > maxNode {
			maxNode = a
		}
		if b > maxNode {
			maxNode = b
		}
	}
	n := maxNode + 1
	if declaredN > n {
		n = declaredN
	}
	if n < 0 {
		n = 0
	}
	return New(int(n), edges)
}
