package graph

import (
	"math"
	"sort"
	"testing"
)

func TestTrianglesK4(t *testing.T) {
	if got := Triangles(k4(t)); got != 4 {
		t.Fatalf("K4 has %d triangles, want 4", got)
	}
}

func TestTrianglesPath(t *testing.T) {
	g := mustGraph(t, 4, [][2]Node{{0, 1}, {1, 2}, {2, 3}})
	if got := Triangles(g); got != 0 {
		t.Fatalf("path has %d triangles, want 0", got)
	}
}

func TestTrianglesBruteForceAgreement(t *testing.T) {
	// Pseudo-random graph on 20 nodes, compared against O(n^3) brute force.
	var pairs [][2]Node
	state := uint64(12345)
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 33
	}
	seen := map[Edge]bool{}
	for len(pairs) < 60 {
		u := Node(next() % 20)
		v := Node(next() % 20)
		if u == v {
			continue
		}
		e := MakeEdge(u, v)
		if seen[e] {
			continue
		}
		seen[e] = true
		pairs = append(pairs, [2]Node{u, v})
	}
	g := mustGraph(t, 20, pairs)
	adj := make([][20]bool, 20)
	for _, e := range g.Edges() {
		adj[e.U()][e.V()] = true
		adj[e.V()][e.U()] = true
	}
	var brute int64
	for i := 0; i < 20; i++ {
		for j := i + 1; j < 20; j++ {
			if !adj[i][j] {
				continue
			}
			for k := j + 1; k < 20; k++ {
				if adj[i][k] && adj[j][k] {
					brute++
				}
			}
		}
	}
	if got := Triangles(g); got != brute {
		t.Fatalf("Triangles = %d, brute force = %d", got, brute)
	}
}

func TestGlobalClusteringCoefficient(t *testing.T) {
	if c := GlobalClusteringCoefficient(k4(t)); math.Abs(c-1) > 1e-12 {
		t.Fatalf("K4 transitivity = %v, want 1", c)
	}
	star := mustGraph(t, 5, [][2]Node{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	if c := GlobalClusteringCoefficient(star); c != 0 {
		t.Fatalf("star transitivity = %v, want 0", c)
	}
}

func TestDegreeAssortativityStar(t *testing.T) {
	// A star is maximally disassortative: r = -1 exactly.
	star := mustGraph(t, 6, [][2]Node{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}})
	r := DegreeAssortativity(star)
	if math.Abs(r+1) > 1e-12 {
		t.Fatalf("star assortativity = %v, want -1", r)
	}
	// A path of 4 nodes has proper variance.
	path := mustGraph(t, 4, [][2]Node{{0, 1}, {1, 2}, {2, 3}})
	r = DegreeAssortativity(path)
	if math.IsNaN(r) || r > 0 {
		t.Fatalf("path assortativity = %v, want negative", r)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := mustGraph(t, 7, [][2]Node{{0, 1}, {1, 2}, {3, 4}})
	count, labels := ConnectedComponents(g)
	if count != 4 { // {0,1,2}, {3,4}, {5}, {6}
		t.Fatalf("components = %d, want 4", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("nodes 0,1,2 not in one component")
	}
	if labels[3] == labels[0] || labels[5] == labels[6] {
		t.Fatal("wrong component merging")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := mustGraph(t, 5, [][2]Node{{0, 1}, {1, 2}, {1, 3}})
	h := DegreeHistogram(g)
	want := []int{1, 3, 0, 1} // one deg-0 node, three deg-1, one deg-3
	if len(h) != len(want) {
		t.Fatalf("histogram length %d, want %d", len(h), len(want))
	}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("histogram[%d] = %d, want %d", i, h[i], want[i])
		}
	}
}

func TestAdjacencyBasics(t *testing.T) {
	g := mustGraph(t, 4, [][2]Node{{0, 1}, {0, 2}, {1, 2}, {2, 3}})
	adj := BuildAdjacency(g)
	if adj.N() != 4 {
		t.Fatalf("adjacency N = %d", adj.N())
	}
	if adj.Degree(2) != 3 {
		t.Fatalf("degree(2) = %d, want 3", adj.Degree(2))
	}
	nb := append([]Node(nil), adj.Neighbors(2)...)
	sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
	want := []Node{0, 1, 3}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("neighbors(2) = %v", nb)
		}
	}
}

func TestAdjacencySortedSearch(t *testing.T) {
	g := mustGraph(t, 6, [][2]Node{{5, 0}, {5, 2}, {5, 4}, {5, 1}, {0, 3}})
	adj := BuildAdjacency(g)
	adj.SortNeighborhoods()
	if !adj.HasEdgeSorted(5, 2) || adj.HasEdgeSorted(5, 3) {
		t.Fatal("HasEdgeSorted wrong")
	}
	if !adj.HasEdgeScan(0, 3) || adj.HasEdgeScan(0, 2) {
		t.Fatal("HasEdgeScan wrong")
	}
	nb := adj.Neighbors(5)
	for i := 1; i < len(nb); i++ {
		if nb[i-1] > nb[i] {
			t.Fatalf("neighborhood not sorted: %v", nb)
		}
	}
}

func TestQuickSortNodesLarge(t *testing.T) {
	// Exercise the quicksort path (> 48 elements) with adversarial input.
	s := make([]Node, 500)
	for i := range s {
		s[i] = Node((i * 7919) % 501)
	}
	insertionSortNodes(s) // dispatches to quicksort for large slices
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			t.Fatalf("not sorted at %d", i)
		}
	}
}
