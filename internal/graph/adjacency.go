package graph

// Adjacency is a compressed sparse row (CSR) view of a graph: the
// neighborhood of node v is Nodes[Offsets[v]:Offsets[v+1]]. It is the
// representation used by the adjacency-list baselines and by the metric
// computations; switching algorithms on the hash-set representation do
// not use it.
type Adjacency struct {
	Offsets []int
	Nodes   []Node
}

// BuildAdjacency constructs the CSR adjacency of g. Each undirected edge
// appears twice (once per endpoint). Neighborhoods preserve edge-list
// order and are not sorted; call SortNeighborhoods for binary-searchable
// neighborhoods.
func BuildAdjacency(g *Graph) *Adjacency {
	n := g.N()
	deg := g.Degrees()
	offsets := make([]int, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + deg[v]
	}
	nodes := make([]Node, offsets[n])
	fill := make([]int, n)
	for _, e := range g.Edges() {
		u, v := e.Endpoints()
		nodes[offsets[u]+fill[u]] = v
		fill[u]++
		nodes[offsets[v]+fill[v]] = u
		fill[v]++
	}
	return &Adjacency{Offsets: offsets, Nodes: nodes}
}

// Neighbors returns the neighborhood slice of v.
func (a *Adjacency) Neighbors(v Node) []Node {
	return a.Nodes[a.Offsets[v]:a.Offsets[v+1]]
}

// Degree returns the degree of v.
func (a *Adjacency) Degree(v Node) int {
	return a.Offsets[v+1] - a.Offsets[v]
}

// N returns the number of nodes.
func (a *Adjacency) N() int { return len(a.Offsets) - 1 }

// SortNeighborhoods sorts every neighborhood ascending, enabling binary
// search existence queries (the "gengraph-style" baseline).
func (a *Adjacency) SortNeighborhoods() {
	for v := 0; v < a.N(); v++ {
		nb := a.Neighbors(Node(v))
		insertionSortNodes(nb)
	}
}

func insertionSortNodes(s []Node) {
	if len(s) > 48 {
		// Median-of-three quicksort for large neighborhoods, falling
		// back to insertion sort for small partitions.
		quickSortNodes(s)
		return
	}
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

func quickSortNodes(s []Node) {
	for len(s) > 48 {
		lo, hi := 0, len(s)-1
		mid := (lo + hi) / 2
		if s[mid] < s[lo] {
			s[mid], s[lo] = s[lo], s[mid]
		}
		if s[hi] < s[lo] {
			s[hi], s[lo] = s[lo], s[hi]
		}
		if s[hi] < s[mid] {
			s[hi], s[mid] = s[mid], s[hi]
		}
		pivot := s[mid]
		i, j := lo, hi
		for i <= j {
			for s[i] < pivot {
				i++
			}
			for s[j] > pivot {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		if j-lo < hi-i {
			quickSortNodes(s[lo : j+1])
			s = s[i:]
		} else {
			quickSortNodes(s[i : hi+1])
			s = s[lo : j+1]
		}
	}
	insertionSortNodes(s)
}

// HasEdgeSorted reports whether the sorted neighborhood of u contains v.
func (a *Adjacency) HasEdgeSorted(u, v Node) bool {
	nb := a.Neighbors(u)
	lo, hi := 0, len(nb)
	for lo < hi {
		mid := (lo + hi) / 2
		if nb[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(nb) && nb[lo] == v
}

// HasEdgeScan reports whether the (unsorted) neighborhood of u contains
// v by linear scan, the O(deg) existence check of adjacency-list ES-MC
// implementations.
func (a *Adjacency) HasEdgeScan(u, v Node) bool {
	for _, w := range a.Neighbors(u) {
		if w == v {
			return true
		}
	}
	return false
}
