package graph

import (
	"bytes"
	"strings"
	"testing"
)

func mustGraph(t *testing.T, n int, pairs [][2]Node) *Graph {
	t.Helper()
	g, err := FromPairs(n, pairs)
	if err != nil {
		t.Fatalf("FromPairs: %v", err)
	}
	return g
}

// k4 returns the complete graph on 4 nodes.
func k4(t *testing.T) *Graph {
	return mustGraph(t, 4, [][2]Node{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
}

func TestNewRejectsLoop(t *testing.T) {
	if _, err := New(3, []Edge{MakeEdge(1, 1)}); err == nil {
		t.Fatal("loop accepted")
	}
}

func TestNewRejectsDuplicate(t *testing.T) {
	if _, err := New(3, []Edge{MakeEdge(0, 1), MakeEdge(1, 0)}); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestNewRejectsOutOfRange(t *testing.T) {
	if _, err := New(3, []Edge{MakeEdge(0, 3)}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

func TestDegrees(t *testing.T) {
	g := mustGraph(t, 5, [][2]Node{{0, 1}, {1, 2}, {1, 3}})
	want := []int{1, 3, 1, 1, 0}
	got := g.Degrees()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("degree[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if g.MaxDegree() != 3 {
		t.Fatalf("MaxDegree = %d", g.MaxDegree())
	}
}

func TestCloneIndependent(t *testing.T) {
	g := k4(t)
	c := g.Clone()
	c.Edges()[0] = MakeEdge(2, 3)
	if g.Edges()[0] == c.Edges()[0] {
		t.Fatal("Clone shares edge storage")
	}
}

func TestCheckSimple(t *testing.T) {
	g := k4(t)
	if err := g.CheckSimple(); err != nil {
		t.Fatalf("K4 flagged non-simple: %v", err)
	}
	g.Edges()[1] = g.Edges()[0]
	if err := g.CheckSimple(); err == nil {
		t.Fatal("duplicate not detected")
	}
}

func TestSameEdgeSet(t *testing.T) {
	a := mustGraph(t, 4, [][2]Node{{0, 1}, {2, 3}})
	b := mustGraph(t, 4, [][2]Node{{3, 2}, {1, 0}})
	if !SameEdgeSet(a, b) {
		t.Fatal("identical edge sets not recognized")
	}
	c := mustGraph(t, 4, [][2]Node{{0, 1}, {1, 3}})
	if SameEdgeSet(a, c) {
		t.Fatal("different edge sets reported equal")
	}
}

func TestCanonicalKeyOrderIndependent(t *testing.T) {
	a := mustGraph(t, 4, [][2]Node{{0, 1}, {2, 3}, {1, 2}})
	b := mustGraph(t, 4, [][2]Node{{1, 2}, {0, 1}, {2, 3}})
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Fatal("CanonicalKey depends on edge order")
	}
}

func TestDensityAndAverageDegree(t *testing.T) {
	g := k4(t)
	if d := g.Density(); d != 1 {
		t.Fatalf("K4 density = %v", d)
	}
	if ad := g.AverageDegree(); ad != 3 {
		t.Fatalf("K4 average degree = %v", ad)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	g := mustGraph(t, 6, [][2]Node{{0, 5}, {1, 2}, {3, 4}, {0, 1}})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != g.N() || !SameEdgeSet(g, h) {
		t.Fatal("round trip changed the graph")
	}
}

func TestReadEdgeListNoHeader(t *testing.T) {
	in := "# comment\n0 1\n1 2\n2 0\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("got n=%d m=%d, want 3, 3", g.N(), g.M())
	}
}

func TestReadEdgeListCleansDirtyInput(t *testing.T) {
	// Directed duplicates, loops and multi-edges must be dropped.
	in := "0 1\n1 0\n2 2\n0 1\n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("got m=%d, want 2 after cleaning", g.M())
	}
	if err := g.CheckSimple(); err != nil {
		t.Fatal(err)
	}
}

func TestReadEdgeListHeaderWithIsolatedNodes(t *testing.T) {
	in := "10 2\n0 1\n2 3\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 10 {
		t.Fatalf("declared node count ignored: n=%d", g.N())
	}
}

func TestReadEdgeListMalformed(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("0 x\n")); err == nil {
		t.Fatal("malformed input accepted")
	}
	if _, err := ReadEdgeList(strings.NewReader("42\n")); err == nil {
		t.Fatal("single-field line accepted")
	}
}

func TestReadEdgeListEmpty(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty input: n=%d m=%d", g.N(), g.M())
	}
}
