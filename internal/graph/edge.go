// Package graph provides the graph representation shared by all edge
// switching algorithms: a canonical 64-bit edge encoding, an edge-list
// based Graph type with degree bookkeeping, CSR adjacency views, simple
// structural metrics, and text I/O.
//
// Following §5.2 of the paper, an undirected edge {u, v} with u < v is
// identified by a single 64-bit integer whose high 32 bits hold u and
// whose low 32 bits hold v. The concurrent edge set reserves the top
// 8 bits for a lock byte, so node identifiers must fit in 28 bits
// (n ≤ 2^28), exactly the restriction of the paper's implementation.
package graph

import "fmt"

// Node is a vertex identifier in [0, n).
type Node = uint32

// MaxNodes is the largest supported node count. The concurrent edge set
// packs an edge into 56 bits (28 per endpoint) next to an 8-bit lock, as
// in the paper (§5.2).
const MaxNodes = 1 << 28

// Edge is the canonical encoding of an undirected edge {u, v}: the
// smaller endpoint in the high 32 bits, the larger one in the low 32
// bits. A loop (v, v) is representable (and used transiently when
// inspecting switch targets) but never stored in a simple graph.
type Edge uint64

// MakeEdge returns the canonical encoding of {u, v}.
func MakeEdge(u, v Node) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge(uint64(u)<<32 | uint64(v))
}

// Endpoints returns the two endpoints, smaller first.
func (e Edge) Endpoints() (Node, Node) {
	return Node(e >> 32), Node(e & 0xFFFFFFFF)
}

// U returns the smaller endpoint.
func (e Edge) U() Node { return Node(e >> 32) }

// V returns the larger endpoint.
func (e Edge) V() Node { return Node(e & 0xFFFFFFFF) }

// IsLoop reports whether both endpoints coincide.
func (e Edge) IsLoop() bool { return e.U() == e.V() }

// String renders the edge as "{u,v}".
func (e Edge) String() string {
	return fmt.Sprintf("{%d,%d}", e.U(), e.V())
}

// DirectedEdge is an ordered pair of endpoints. Definition 1 of the paper
// rewires a pair of directed representations; the direction matters for
// computing switch targets but edges are always stored canonically.
type DirectedEdge struct {
	Tail, Head Node
}

// Directed returns the canonical orientation (smaller node first), the
// default orientation of the paper's Definition 1.
func (e Edge) Directed() DirectedEdge {
	return DirectedEdge{Tail: e.U(), Head: e.V()}
}

// Reversed returns the opposite orientation.
func (d DirectedEdge) Reversed() DirectedEdge {
	return DirectedEdge{Tail: d.Head, Head: d.Tail}
}

// Canonical returns the undirected canonical encoding.
func (d DirectedEdge) Canonical() Edge {
	return MakeEdge(d.Tail, d.Head)
}

// Targets computes the two target edges of the switch (e, other, g);
// it is the method form of SwitchTargets satisfying the generic
// kernel's edge constraint (switching.EdgeKind).
func (e Edge) Targets(other Edge, g bool) (Edge, Edge) {
	return SwitchTargets(e, other, g)
}

// SwitchTargets computes the two target edges of an edge switch with
// direction bit g applied to the directed representations of e1 and e2
// (the function τ of Definition 1):
//
//	g = 0:  (u,v), (x,y)  ->  (u,x), (v,y)
//	g = 1:  (u,v), (x,y)  ->  (u,y), (v,x)
//
// The results are returned canonically; either may be a loop, which the
// caller must reject.
func SwitchTargets(e1, e2 Edge, g bool) (Edge, Edge) {
	u, v := e1.Endpoints()
	x, y := e2.Endpoints()
	if g {
		return MakeEdge(u, y), MakeEdge(v, x)
	}
	return MakeEdge(u, x), MakeEdge(v, y)
}
