package graph

import "math"

// Triangles counts the triangles of g using the standard forward
// (degree-ordered) algorithm in O(m^{3/2}). Triangle counts are the
// motif statistic used by the null-model example.
func Triangles(g *Graph) int64 {
	adj := BuildAdjacency(g)
	n := g.N()
	deg := g.Degrees()
	// rank orders nodes by (degree, id); edges are oriented from lower
	// to higher rank so every triangle is counted exactly once.
	less := func(u, v Node) bool {
		if deg[u] != deg[v] {
			return deg[u] < deg[v]
		}
		return u < v
	}
	forward := make([][]Node, n)
	for v := 0; v < n; v++ {
		for _, w := range adj.Neighbors(Node(v)) {
			if less(Node(v), w) {
				forward[v] = append(forward[v], w)
			}
		}
		insertionSortNodes(forward[v])
	}
	var count int64
	for v := 0; v < n; v++ {
		fv := forward[v]
		for _, w := range fv {
			fw := forward[w]
			// Merge-intersect the two sorted forward lists.
			i, j := 0, 0
			for i < len(fv) && j < len(fw) {
				switch {
				case fv[i] < fw[j]:
					i++
				case fv[i] > fw[j]:
					j++
				default:
					count++
					i++
					j++
				}
			}
		}
	}
	return count
}

// GlobalClusteringCoefficient returns 3*triangles / #wedges (the
// transitivity of the graph), or 0 if the graph has no wedges.
func GlobalClusteringCoefficient(g *Graph) float64 {
	var wedges float64
	for _, d := range g.Degrees() {
		wedges += float64(d) * float64(d-1) / 2
	}
	if wedges == 0 {
		return 0
	}
	return 3 * float64(Triangles(g)) / wedges
}

// DegreeAssortativity returns the Pearson correlation of degrees across
// edges (Newman's assortativity coefficient r). Returns NaN for graphs
// where the variance vanishes (e.g. regular graphs).
func DegreeAssortativity(g *Graph) float64 {
	deg := g.Degrees()
	m := float64(g.M())
	if m == 0 {
		return math.NaN()
	}
	var sumProd, sumHalf, sumSqHalf float64
	for _, e := range g.Edges() {
		du := float64(deg[e.U()])
		dv := float64(deg[e.V()])
		sumProd += du * dv
		sumHalf += 0.5 * (du + dv)
		sumSqHalf += 0.5 * (du*du + dv*dv)
	}
	num := sumProd/m - (sumHalf/m)*(sumHalf/m)
	den := sumSqHalf/m - (sumHalf/m)*(sumHalf/m)
	return num / den
}

// ConnectedComponents returns the number of connected components and the
// component label of every node, via iterative DFS.
func ConnectedComponents(g *Graph) (int, []int32) {
	adj := BuildAdjacency(g)
	n := g.N()
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var stack []Node
	comp := int32(0)
	for v := 0; v < n; v++ {
		if labels[v] != -1 {
			continue
		}
		stack = append(stack[:0], Node(v))
		labels[v] = comp
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range adj.Neighbors(u) {
				if labels[w] == -1 {
					labels[w] = comp
					stack = append(stack, w)
				}
			}
		}
		comp++
	}
	return int(comp), labels
}

// LargestComponent returns the node count of the largest connected
// component and the total number of components (0, 0 for an empty node
// set). A graph is connected iff components <= 1.
func LargestComponent(g *Graph) (size, components int) {
	return LargestOfLabels(ConnectedComponents(g))
}

// LargestOfLabels reduces a (component count, per-node labels) pair —
// as produced by ConnectedComponents here or its weak-connectivity
// mirror in the digraph package — to the largest component's node
// count plus the component count.
func LargestOfLabels(comp int, labels []int32) (size, components int) {
	if comp == 0 {
		return 0, 0
	}
	counts := make([]int, comp)
	for _, l := range labels {
		counts[l]++
	}
	for _, c := range counts {
		if c > size {
			size = c
		}
	}
	return size, comp
}

// DegreeHistogram returns counts[d] = number of nodes of degree d.
func DegreeHistogram(g *Graph) []int {
	deg := g.Degrees()
	max := 0
	for _, d := range deg {
		if d > max {
			max = d
		}
	}
	counts := make([]int, max+1)
	for _, d := range deg {
		counts[d]++
	}
	return counts
}
