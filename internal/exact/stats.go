package exact

// Stats counts the work behind a Sampler's draws. Where the MCMC tiers
// report switch attempts and acceptances, the exact tier's unit of
// work is the configuration (pairing) attempt; the defect counters
// split the restarts by cause, the observable the regime gate's
// λ (loops) + λ² (multi-edges) prediction speaks about.
type Stats struct {
	// Samples counts accepted draws; Attempts counts configurations
	// generated. Samples/Attempts is the empirical acceptance rate,
	// converging to exp(-λ-λ²).
	Samples  int64
	Attempts int64
	// Restarts = Attempts - Samples: configurations rejected for a
	// defect, each answered by a full restart (the tier's uniformity
	// argument permits no repair).
	Restarts int64
	// LoopDefects and MultiDefects count rejections by first defect
	// found: a stub paired with its own node vs. a duplicate edge.
	LoopDefects  int64
	MultiDefects int64
}

// Add accumulates b into s.
func (s *Stats) Add(b Stats) {
	s.Samples += b.Samples
	s.Attempts += b.Attempts
	s.Restarts += b.Restarts
	s.LoopDefects += b.LoopDefects
	s.MultiDefects += b.MultiDefects
}
