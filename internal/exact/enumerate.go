package exact

import (
	"fmt"
	"sort"

	"gesmc/internal/graph"
)

// Enumerate lists every labeled simple graph realizing the degree
// sequence, each as a sorted edge list — the exhaustive ground truth
// the uniformity tests chi-square samplers against (sacorg-style).
// It is meant for tiny sequences; limit bounds the number of
// realizations (and so the work) and Enumerate fails once exceeded,
// rather than silently truncating a "ground truth". limit <= 0 means
// no bound.
//
// The recursion saturates the smallest node with residual degree: its
// whole neighborhood is chosen as one subset of the still-unsaturated
// nodes, so each realization is produced exactly once (a graph
// determines that neighborhood uniquely at every step).
func Enumerate(degrees []int, limit int) ([][]graph.Edge, error) {
	residual := make([]int, len(degrees))
	total := 0
	for v, d := range degrees {
		if d < 0 || d >= len(degrees) {
			return nil, fmt.Errorf("exact: degree %d at node %d out of range", d, v)
		}
		residual[v] = d
		total += d
	}
	if total%2 != 0 {
		return nil, fmt.Errorf("exact: odd degree sum %d", total)
	}
	var out [][]graph.Edge
	edges := make([]graph.Edge, 0, total/2)
	var fill func() error
	fill = func() error {
		// Smallest unsaturated node; all realizations of the residual
		// sequence extend the edges chosen so far.
		v := -1
		for u, r := range residual {
			if r > 0 {
				v = u
				break
			}
		}
		if v < 0 {
			if limit > 0 && len(out) >= limit {
				return fmt.Errorf("exact: more than %d realizations", limit)
			}
			realization := make([]graph.Edge, len(edges))
			copy(realization, edges)
			sort.Slice(realization, func(i, j int) bool { return realization[i] < realization[j] })
			out = append(out, realization)
			return nil
		}
		need := residual[v]
		residual[v] = 0
		var cands []int
		for u := v + 1; u < len(residual); u++ {
			if residual[u] > 0 {
				cands = append(cands, u)
			}
		}
		var choose func(from, picked int) error
		choose = func(from, picked int) error {
			if picked == need {
				return fill()
			}
			// Not enough candidates left to saturate v.
			if need-picked > len(cands)-from {
				return nil
			}
			for i := from; i < len(cands); i++ {
				u := cands[i]
				residual[u]--
				edges = append(edges, graph.MakeEdge(graph.Node(v), graph.Node(u)))
				if err := choose(i+1, picked+1); err != nil {
					return err
				}
				edges = edges[:len(edges)-1]
				residual[u]++
			}
			return nil
		}
		err := choose(0, 0)
		residual[v] = need
		return err
	}
	if err := fill(); err != nil {
		return nil, err
	}
	return out, nil
}

// Key returns the canonical string key of a sorted edge list, the cell
// label shared by the enumeration and the uniformity tests (the same
// encoding as graph.CanonicalKey).
func Key(edges []graph.Edge) string {
	buf := make([]byte, 0, len(edges)*8)
	for _, e := range edges {
		for s := 56; s >= 0; s -= 8 {
			buf = append(buf, byte(e>>uint(s)))
		}
	}
	return string(buf)
}
