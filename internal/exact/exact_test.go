package exact

import (
	"errors"
	"sync"
	"testing"

	"gesmc/internal/gen"
	"gesmc/internal/graph"
)

// TestEnumerateCounts pins the exhaustive enumeration against closed-
// form realization counts: the all-2 hexagon has 70 labeled
// realizations (60 six-cycles + 10 triangle pairs), the all-1 sequence
// on 6 nodes the 15 perfect matchings of K6, and the small extremes
// have one (or three) realizations each.
func TestEnumerateCounts(t *testing.T) {
	cases := []struct {
		name    string
		degrees []int
		want    int
	}{
		{"hexagon-2regular", []int{2, 2, 2, 2, 2, 2}, 70},
		{"k6-matchings", []int{1, 1, 1, 1, 1, 1}, 15},
		{"k4", []int{3, 3, 3, 3}, 1},
		{"triangle", []int{2, 2, 2}, 1},
		{"two-pairs", []int{1, 1, 1, 1}, 3},
		{"empty", []int{0, 0, 0}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			states, err := Enumerate(tc.degrees, 1000)
			if err != nil {
				t.Fatalf("Enumerate: %v", err)
			}
			if len(states) != tc.want {
				t.Fatalf("got %d realizations, want %d", len(states), tc.want)
			}
			seen := make(map[string]struct{}, len(states))
			for _, st := range states {
				g := graph.NewUnchecked(len(tc.degrees), st)
				if err := g.CheckSimple(); err != nil {
					t.Fatalf("realization not simple: %v", err)
				}
				for v, d := range g.Degrees() {
					if d != tc.degrees[v] {
						t.Fatalf("degree[%d] = %d, want %d", v, d, tc.degrees[v])
					}
				}
				k := Key(st)
				if _, dup := seen[k]; dup {
					t.Fatalf("duplicate realization %x", k)
				}
				seen[k] = struct{}{}
			}
		})
	}
}

func TestEnumerateLimit(t *testing.T) {
	if _, err := Enumerate([]int{2, 2, 2, 2, 2, 2}, 10); err == nil {
		t.Fatal("expected limit error for 70 realizations with limit 10")
	}
}

// chiSquareDraws draws `draws` samples and returns the chi-square
// statistic against the uniform distribution over the enumerated
// realizations, failing the test on an unknown state.
func chiSquareDraws(t *testing.T, s *Sampler, degrees []int, draws int) (chi2 float64, cells int) {
	t.Helper()
	states, err := Enumerate(degrees, 10_000)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	counts := make(map[string]int, len(states))
	for _, st := range states {
		counts[Key(st)] = 0
	}
	for i := 0; i < draws; i++ {
		edges, err := s.Draw()
		if err != nil {
			t.Fatalf("Draw %d: %v", i, err)
		}
		k := Key(edges)
		if _, ok := counts[k]; !ok {
			t.Fatalf("draw %d produced a state outside the enumeration", i)
		}
		counts[k]++
	}
	expected := float64(draws) / float64(len(states))
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	return chi2, len(states)
}

// TestUniformHexagon chi-squares the sampler against the known uniform
// expectation over the hexagon sequence's 70 realizations. Unlike the
// MCMC uniformity tests this compares to exact ground truth: df=69,
// mean 69, sd ~11.7, so 135 is a ~5.6σ bound.
func TestUniformHexagon(t *testing.T) {
	degrees := []int{2, 2, 2, 2, 2, 2}
	s, err := New(degrees, 0xC0FFEE)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	chi2, cells := chiSquareDraws(t, s, degrees, 14000)
	if cells != 70 {
		t.Fatalf("cells = %d, want 70", cells)
	}
	if chi2 > 135 {
		t.Fatalf("chi-square %.1f over %d cells exceeds threshold 135", chi2, cells)
	}
	st := s.Stats()
	if st.Samples != 14000 || st.Attempts != st.Samples+st.Restarts {
		t.Fatalf("inconsistent stats: %+v", st)
	}
	if st.Restarts == 0 {
		t.Fatal("hexagon sequence (λ+λ² = 0.75) should reject some configurations")
	}
	if st.LoopDefects+st.MultiDefects != st.Restarts {
		t.Fatalf("defect split %d+%d != restarts %d", st.LoopDefects, st.MultiDefects, st.Restarts)
	}
}

// TestUniformMatchings covers a second sequence: all-1 on 6 nodes (15
// perfect matchings of K6). λ = 0, so every configuration is simple
// and accepted; uniformity is purely the shuffle's.
func TestUniformMatchings(t *testing.T) {
	degrees := []int{1, 1, 1, 1, 1, 1}
	s, err := New(degrees, 42)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	chi2, cells := chiSquareDraws(t, s, degrees, 6000)
	if cells != 15 {
		t.Fatalf("cells = %d, want 15", cells)
	}
	// df=14: mean 14, sd ~5.3; 50 is a ~6.8σ bound.
	if chi2 > 50 {
		t.Fatalf("chi-square %.1f over %d cells exceeds threshold 50", chi2, cells)
	}
	if st := s.Stats(); st.Restarts != 0 {
		t.Fatalf("degree-1 sequence cannot produce defects, got %+v", st)
	}
}

// TestSeedDeterminism pins the i.i.d. draw stream as a pure function
// of the seed: the resume and failover machinery of the serving layer
// depends on it.
func TestSeedDeterminism(t *testing.T) {
	degrees := []int{3, 3, 2, 2, 2, 2, 1, 1}
	a, err := New(degrees, 7)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	b, _ := New(degrees, 7)
	c, _ := New(degrees, 8)
	diverged := false
	for i := 0; i < 50; i++ {
		ea, err := a.Draw()
		if err != nil {
			t.Fatalf("Draw: %v", err)
		}
		eb, _ := b.Draw()
		ec, _ := c.Draw()
		if Key(ea) != Key(eb) {
			t.Fatalf("draw %d differs between equal seeds", i)
		}
		if Key(ea) != Key(ec) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("50 draws identical across different seeds")
	}
}

func TestDrawGraphValid(t *testing.T) {
	degrees := []int{4, 3, 3, 2, 2, 2, 1, 1}
	s, err := New(degrees, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 200; i++ {
		g, err := s.DrawGraph()
		if err != nil {
			t.Fatalf("DrawGraph: %v", err)
		}
		if err := g.CheckSimple(); err != nil {
			t.Fatalf("draw %d not simple: %v", i, err)
		}
		for v, d := range g.Degrees() {
			if d != degrees[v] {
				t.Fatalf("draw %d: degree[%d] = %d, want %d", i, v, d, degrees[v])
			}
		}
	}
}

// TestUnsupportedBoundary pins the regime gate: dense sequences are
// refused with the typed *UnsupportedError (carrying the score), and
// non-graphical sequences fail the graphicality check instead.
func TestUnsupportedBoundary(t *testing.T) {
	dense := make([]int, 20)
	for i := range dense {
		dense[i] = 19 // K20: λ = 9, score 90
	}
	if err := Supported(dense); err == nil {
		t.Fatal("K20 sequence should be outside the regime")
	}
	_, err := New(dense, 0)
	var ue *UnsupportedError
	if !errors.As(err, &ue) {
		t.Fatalf("New(K20) = %v, want *UnsupportedError", err)
	}
	if ue.Score <= maxLambdaScore {
		t.Fatalf("score %v should exceed the gate %v", ue.Score, float64(maxLambdaScore))
	}

	if err := Supported([]int{2, 2, 2, 2}); err != nil {
		t.Fatalf("cycle sequence should be supported: %v", err)
	}
	if _, err := New([]int{3, 3, 1, 1}, 0); !errors.Is(err, gen.ErrNotGraphical) {
		t.Fatalf("non-graphical sequence: got %v, want ErrNotGraphical", err)
	}

	// Degenerate sequences inside the regime: empty and single-edge.
	for _, degrees := range [][]int{{}, {0, 0}, {1, 1}} {
		s, err := New(degrees, 0)
		if err != nil {
			t.Fatalf("New(%v): %v", degrees, err)
		}
		if _, err := s.Draw(); err != nil {
			t.Fatalf("Draw(%v): %v", degrees, err)
		}
	}
}

// TestConcurrentSamplers races independent samplers on shared seeds:
// the package holds no global state, so per-goroutine samplers must
// be exactly reproducible regardless of interleaving (-race backs
// this in CI at -cpu=1,2,4).
func TestConcurrentSamplers(t *testing.T) {
	degrees := []int{2, 2, 2, 2, 2, 2}
	ref, err := New(degrees, 99)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	want := make([]string, 40)
	for i := range want {
		edges, err := ref.Draw()
		if err != nil {
			t.Fatalf("Draw: %v", err)
		}
		want[i] = Key(edges)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := New(degrees, 99)
			if err != nil {
				errs <- err
				return
			}
			for i := range want {
				edges, err := s.Draw()
				if err != nil {
					errs <- err
					return
				}
				if Key(edges) != want[i] {
					errs <- errors.New("draw diverged across goroutines")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
