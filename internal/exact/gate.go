package exact

import "fmt"

// maxLambdaScore gates the tractable rejection regime. The asymptotic
// acceptance probability of a configuration is exp(-λ-λ²) with
// λ = Σd(d-1)/(2Σd), so λ+λ² ≤ maxLambdaScore keeps the expected
// restarts per draw at or below exp(maxLambdaScore) ≈ 400 — cheap for
// the bounded-degree sequences this tier targets, and far enough from
// maxAttemptsPerDraw that budget exhaustion is evidence of a bug.
// Sequences beyond the gate need the switching-correction tier
// (DESIGN.md §14) and are refused with a typed error instead of
// being served slowly or, worse, silently rerouted to MCMC.
const maxLambdaScore = 6.0

// UnsupportedError reports a degree sequence outside the exact tier's
// tractable regime. It carries the regime score so callers (and error
// messages) can show how far outside the sequence falls.
type UnsupportedError struct {
	// Score is λ+λ² for the sequence; the gate admits Score ≤ 6.
	Score float64
}

func (e *UnsupportedError) Error() string {
	return fmt.Sprintf("exact: degree sequence outside the tractable rejection regime (λ+λ² = %.2f, limit %g); use the MCMC tier",
		e.Score, float64(maxLambdaScore))
}

// lambdaScore computes λ+λ², λ = Σd(d-1)/(2Σd): the exponent of the
// expected restart count. Zero for sequences with no stub pairs
// (including the empty and all-degree-≤1 sequences, which every
// pairing realizes simply).
func lambdaScore(degrees []int) float64 {
	var sum, pairs float64
	for _, d := range degrees {
		sum += float64(d)
		pairs += float64(d) * float64(d-1)
	}
	if sum == 0 {
		return 0
	}
	lambda := pairs / (2 * sum)
	return lambda + lambda*lambda
}

// Supported reports whether the degree sequence lies inside the exact
// tier's tractable regime, returning nil or a *UnsupportedError. It
// does not test graphicality (New does, separately): the two failure
// modes are distinct — an unsupported sequence has realizations the
// tier cannot reach efficiently, a non-graphical one has none at all.
func Supported(degrees []int) error {
	if score := lambdaScore(degrees); score > maxLambdaScore {
		return &UnsupportedError{Score: score}
	}
	return nil
}
