// Package exact draws exactly uniform samples of simple undirected
// graphs with a prescribed degree sequence — no Markov chain, no
// mixing-time assumption. It is the first tier of the exact-uniformity
// roadmap item, in the rejection regime of Arman, Gao & Wormald's
// switching-based generators: generate a uniformly random
// configuration (pairing) of the degree stubs, accept if the induced
// multigraph is simple, and restart from a fresh pairing otherwise.
//
// Uniformity is exact by a symmetry argument rather than by
// convergence: a uniformly random perfect matching of the 2m stubs
// induces every simple graph with the prescribed degrees through
// exactly ∏_v d_v! distinct matchings (one per way of assigning each
// node's edges to its labeled stubs), so conditioning on simplicity —
// which is all rejection does — leaves the uniform distribution over
// the simple realizations. There is no burn-in and no thinning; every
// accepted draw is independent of every other.
//
// The price is the acceptance probability, which for degree sequences
// with Σd(d-1) = O(Σd) converges to exp(-λ-λ²) with
// λ = Σd(d-1)/(2Σd) (Bender–Canfield; Bollobás). New therefore gates
// on λ+λ²: sequences beyond the threshold would need too many
// restarts per draw and are rejected up front with a typed
// *UnsupportedError, so callers can degrade to the MCMC tier
// explicitly — never silently. AGW's switching corrections, which
// repair defects instead of restarting and extend the tractable
// regime to much heavier tails, are the next tier (DESIGN.md §14).
package exact

import (
	"fmt"

	"gesmc/internal/gen"
	"gesmc/internal/graph"
	"gesmc/internal/rng"
)

// Sampler draws i.i.d. exactly uniform simple graphs with a fixed
// degree sequence. The draw sequence is deterministic per seed. A
// Sampler is not safe for concurrent use; concurrent callers hold one
// Sampler each (draws from distinct seeds are independent).
type Sampler struct {
	degrees []int
	n       int
	m       int // edges per realization: Σd/2

	// stubs holds node v repeated degrees[v] times; each attempt
	// shuffles it in place and pairs consecutive entries.
	stubs []graph.Node
	// mark is the per-attempt adjacency scratch used to detect
	// multi-edges, reset incrementally (O(edges seen), not O(n²)).
	mark    map[graph.Edge]struct{}
	scratch []graph.Edge

	rng   *rng.SplitMix64
	stats Stats
}

// New builds a sampler for the degree sequence, validating that the
// sequence is graphical (gen.ErdosGallai; non-graphical sequences
// wrap gen.ErrNotGraphical) and inside the tractable rejection regime
// (see Supported; sequences beyond it return a *UnsupportedError).
// The sequence is copied.
func New(degrees []int, seed uint64) (*Sampler, error) {
	if !gen.ErdosGallai(degrees) {
		return nil, fmt.Errorf("%w: no simple graph realizes the sequence", gen.ErrNotGraphical)
	}
	if err := Supported(degrees); err != nil {
		return nil, err
	}
	d := make([]int, len(degrees))
	copy(d, degrees)
	sum := 0
	for _, dv := range d {
		sum += dv
	}
	s := &Sampler{
		degrees: d,
		n:       len(d),
		m:       sum / 2,
		rng:     rng.NewSplitMix64(seed),
	}
	s.stubs = make([]graph.Node, 0, sum)
	for v, dv := range d {
		for i := 0; i < dv; i++ {
			s.stubs = append(s.stubs, graph.Node(v))
		}
	}
	s.mark = make(map[graph.Edge]struct{}, s.m)
	s.scratch = make([]graph.Edge, 0, s.m)
	return s, nil
}

// N returns the node count of every drawn realization.
func (s *Sampler) N() int { return s.n }

// M returns the edge count of every drawn realization.
func (s *Sampler) M() int { return s.m }

// Degrees returns the sampler's degree sequence (shared; do not
// mutate).
func (s *Sampler) Degrees() []int { return s.degrees }

// Stats returns the rejection counters accumulated so far.
func (s *Sampler) Stats() Stats { return s.stats }

// Draw returns one exactly uniform realization as a sorted edge list
// (a fresh slice, canonical (min,max) endpoint order). Draws are
// i.i.d.; the k-th draw from a given seed is always the same graph.
// Within the supported regime exhaustion of the restart budget has
// vanishing probability; it is reported as an error rather than a
// panic so a corrupted state never masquerades as a sample.
func (s *Sampler) Draw() ([]graph.Edge, error) {
	for attempt := 0; attempt < maxAttemptsPerDraw; attempt++ {
		s.stats.Attempts++
		if edges, ok := s.pairing(); ok {
			s.stats.Samples++
			out := make([]graph.Edge, len(edges))
			copy(out, edges)
			return out, nil
		}
		s.stats.Restarts++
	}
	return nil, fmt.Errorf("exact: restart budget (%d) exhausted for one draw; sequence λ+λ² = %.3f",
		maxAttemptsPerDraw, lambdaScore(s.degrees))
}

// DrawGraph is Draw returning a *graph.Graph (the edge list is
// sorted, so graph.NewUnchecked's invariants hold).
func (s *Sampler) DrawGraph() (*graph.Graph, error) {
	edges, err := s.Draw()
	if err != nil {
		return nil, err
	}
	return graph.NewUnchecked(s.n, edges), nil
}
