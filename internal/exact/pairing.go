package exact

import (
	"sort"

	"gesmc/internal/graph"
)

// maxAttemptsPerDraw bounds the restarts of one Draw. With the regime
// gate holding the expected attempts per draw at exp(λ+λ²) ≤
// maxExpectedAttempts, the probability of a draw exhausting this
// budget is below (1-1/maxExpectedAttempts)^maxAttemptsPerDraw —
// astronomically small — so hitting it signals a bug, not bad luck.
const maxAttemptsPerDraw = 200_000

// pairing generates one uniformly random configuration: a perfect
// matching of the degree stubs, realized by Fisher-Yates shuffling the
// stub array and pairing consecutive entries (a uniformly random
// permutation induces a uniformly random matching). It returns the
// sorted edge list and true iff the configuration is simple, aborting
// at the first defect (loop or multi-edge) without finishing the scan.
func (s *Sampler) pairing() ([]graph.Edge, bool) {
	stubs := s.stubs
	for i := len(stubs) - 1; i > 0; i-- {
		j := s.rng.IntN(i + 1)
		stubs[i], stubs[j] = stubs[j], stubs[i]
	}
	edges := s.scratch[:0]
	defer s.clearMark()
	for i := 0; i+1 < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v {
			s.stats.LoopDefects++
			s.scratch = edges
			return nil, false
		}
		e := graph.MakeEdge(u, v)
		if _, dup := s.mark[e]; dup {
			s.stats.MultiDefects++
			s.scratch = edges
			return nil, false
		}
		s.mark[e] = struct{}{}
		edges = append(edges, e)
	}
	s.scratch = edges
	sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
	return edges, true
}

// clearMark empties the multi-edge scratch set by deleting exactly the
// edges inserted this attempt (s.scratch is updated before every
// return of pairing), so an aborted attempt costs O(edges seen)
// rather than a fresh map allocation.
func (s *Sampler) clearMark() {
	for _, e := range s.scratch {
		delete(s.mark, e)
	}
}
