package service

import (
	"context"
	"errors"
	"strings"
	"testing"

	"gesmc"
	"gesmc/wire"
)

// exactReq is a small exact-tier request over a 3-regular sequence.
func exactReq(samples int) *wire.SampleRequest {
	return &wire.SampleRequest{
		Degrees:    []int{3, 3, 3, 3, 3, 3, 3, 3},
		Uniformity: "exact",
		Samples:    samples,
		Seed:       17,
	}
}

// TestFromWireUniformity pins the routing table of the uniformity
// knob: "exact" normalizes into the Exact algorithm, contradictions
// and unsupported request shapes 400 with field-level errors.
func TestFromWireUniformity(t *testing.T) {
	deg := []int{2, 2, 2}
	ok := []struct {
		name string
		req  wire.SampleRequest
		want gesmc.Algorithm
	}{
		{"default-mcmc", wire.SampleRequest{Degrees: deg}, gesmc.ParGlobalES},
		{"explicit-mcmc", wire.SampleRequest{Degrees: deg, Uniformity: "mcmc", Algorithm: "SeqES"}, gesmc.SeqES},
		{"exact", wire.SampleRequest{Degrees: deg, Uniformity: "exact"}, gesmc.Exact},
		{"exact-redundant-algo", wire.SampleRequest{Degrees: deg, Uniformity: "exact", Algorithm: "Exact"}, gesmc.Exact},
		{"algo-only", wire.SampleRequest{Degrees: deg, Algorithm: "Exact"}, gesmc.Exact},
	}
	for _, tc := range ok {
		r, err := FromWire(&tc.req)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if r.Algorithm != tc.want {
			t.Fatalf("%s: algorithm %v, want %v", tc.name, r.Algorithm, tc.want)
		}
	}

	bad := []struct {
		name  string
		req   wire.SampleRequest
		field string
	}{
		{"unknown-tier", wire.SampleRequest{Degrees: deg, Uniformity: "approximate"}, "uniformity"},
		{"exact-vs-algo", wire.SampleRequest{Degrees: deg, Uniformity: "exact", Algorithm: "ParES"}, "uniformity"},
		{"mcmc-vs-exact-algo", wire.SampleRequest{Degrees: deg, Uniformity: "mcmc", Algorithm: "Exact"}, "uniformity"},
		{"exact-burnin", wire.SampleRequest{Degrees: deg, Uniformity: "exact", BurnIn: 10}, "burn_in"},
		{"exact-thinning", wire.SampleRequest{Degrees: deg, Uniformity: "exact", Thinning: 5}, "thinning"},
		{"exact-swaps", wire.SampleRequest{Degrees: deg, Uniformity: "exact", SwapsPerEdge: 2}, "swaps_per_edge"},
		{"exact-connected", wire.SampleRequest{Degrees: deg, Uniformity: "exact", Connected: true}, "connected"},
		{"exact-forbidden", wire.SampleRequest{Degrees: deg, Uniformity: "exact",
			ForbiddenEdges: [][2]uint32{{0, 1}}}, "forbidden_edges"},
		{"exact-directed", wire.SampleRequest{OutDegrees: []int{1, 1, 0}, InDegrees: []int{0, 1, 1},
			Uniformity: "exact"}, "uniformity"},
		{"exact-bipartite", wire.SampleRequest{BipartiteLeft: []int{1, 1}, BipartiteRight: []int{1, 1},
			Uniformity: "exact"}, "uniformity"},
		{"exact-arcs", wire.SampleRequest{Edges: [][2]uint32{{0, 1}, {1, 2}}, Directed: true,
			Uniformity: "exact"}, "uniformity"},
	}
	for _, tc := range bad {
		_, err := FromWire(&tc.req)
		if !errors.Is(err, ErrBadRequest) {
			t.Fatalf("%s: err=%v, want ErrBadRequest", tc.name, err)
		}
		var re *RequestError
		if !errors.As(err, &re) || !strings.Contains(re.Field, tc.field) {
			t.Fatalf("%s: error %v does not name field %q", tc.name, err, tc.field)
		}
	}
}

// TestExactStreamUniformityStats: an exact stream labels every line
// with stats.uniformity "exact" and the rejection counters, an MCMC
// stream with "mcmc" — the in-band signal clients use to tell which
// tier actually served them.
func TestExactStreamUniformityStats(t *testing.T) {
	svc := New(Config{WorkerBudget: 4})
	defer svc.Shutdown(context.Background())
	b := NewLocalBackend(svc)

	lines, err := collect(b, exactReq(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 5 {
		t.Fatalf("%d lines, want 5", len(lines))
	}
	for _, ln := range lines {
		if ln.Stats == nil || ln.Stats.Uniformity != "exact" {
			t.Fatalf("exact line without uniformity label: %+v", ln)
		}
		if ln.Stats.Algorithm != "Exact" {
			t.Fatalf("exact line algorithm %q", ln.Stats.Algorithm)
		}
		// Per-line restart accounting: attempts = the landed draw plus
		// the rejected pairings, each attributed to a defect class.
		if ln.Stats.Attempted != ln.Stats.Accepted+ln.Stats.Restarts {
			t.Fatalf("line %d: attempted=%d accepted=%d restarts=%d",
				ln.Index, ln.Stats.Attempted, ln.Stats.Accepted, ln.Stats.Restarts)
		}
		if ln.Stats.LoopDefects+ln.Stats.MultiDefects != ln.Stats.Restarts {
			t.Fatalf("line %d: defect classes do not sum to restarts: %+v", ln.Index, ln.Stats)
		}
	}

	mcmc, err := collect(b, &wire.SampleRequest{Degrees: []int{3, 3, 3, 3, 3, 3, 3, 3}, Samples: 2, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	for _, ln := range mcmc {
		if ln.Stats == nil || ln.Stats.Uniformity != "mcmc" {
			t.Fatalf("mcmc line mislabeled: %+v", ln.Stats)
		}
	}
}

// TestExactResumeSuffixIdentity: the acceptance gate extended to the
// exact tier — a resumed exact stream is bit-identical to the suffix
// of the uninterrupted stream, because the only chain state is the
// RNG stream position and fast-forward replays it draw by draw.
func TestExactResumeSuffixIdentity(t *testing.T) {
	full := coldStream(t, exactReq(8))
	if len(full) != 8 {
		t.Fatalf("%d lines, want 8", len(full))
	}
	for _, k := range []int{1, 4, 7} {
		req := exactReq(8)
		req.ResumeFrom = k
		got := coldStream(t, req)
		if err := sameSamples(got, full[k:]); err != nil {
			t.Fatalf("exact resume at %d: %v", k, err)
		}
	}
}

// TestExactPoolReuse: exact engines pool like chains do — the
// algorithm in the engine key separates them from MCMC engines for
// the same target, a repeat request reuses the compiled engine, and a
// pooled engine resumed mid-stream serves the canonical suffix.
func TestExactPoolReuse(t *testing.T) {
	full := coldStream(t, exactReq(6))

	svc := New(Config{WorkerBudget: 4, PoolCapacity: 4})
	defer svc.Shutdown(context.Background())
	b := NewLocalBackend(svc)

	pre := exactReq(6)
	pre.Samples = 3
	got, err := collect(b, pre)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameSamples(got, full[:3]); err != nil {
		t.Fatalf("prefix: %v", err)
	}

	cont := exactReq(6)
	cont.ResumeFrom = 3
	got, err = collect(b, cont)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameSamples(got, full[3:]); err != nil {
		t.Fatalf("pooled exact resume: %v", err)
	}
	if pm := svc.Metrics(); pm.Pool.Hits == 0 {
		t.Fatalf("exact resume did not reuse the pooled engine: %+v", pm.Pool)
	}

	// Same request, different tier → different engine key: the MCMC
	// request must not check out the parked exact engine.
	k1, err := PoolKey(exactReq(6))
	if err != nil {
		t.Fatal(err)
	}
	k2, err := PoolKey(&wire.SampleRequest{Degrees: []int{3, 3, 3, 3, 3, 3, 3, 3}, Samples: 6, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Fatal("exact and mcmc requests share a pool key")
	}
}

// TestExactUnsupportedIsTyped: a degree sequence outside the
// rejection regime answers with a bad_request naming the uniformity
// knob and the fallback — never a silent reroute to an MCMC chain.
func TestExactUnsupportedIsTyped(t *testing.T) {
	svc := New(Config{})
	defer svc.Shutdown(context.Background())

	k20 := make([]int, 20)
	for i := range k20 {
		k20[i] = 19
	}
	req := &wire.SampleRequest{Degrees: k20, Uniformity: "exact", Samples: 1, Seed: 1}
	lines, err := collect(NewLocalBackend(svc), req)
	if len(lines) != 0 {
		t.Fatalf("unsupported request streamed %d lines", len(lines))
	}
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("err=%v, want ErrBadRequest", err)
	}
	var re *RequestError
	if !errors.As(err, &re) || re.Field != "uniformity" {
		t.Fatalf("error %v does not name the uniformity field", err)
	}
	if !strings.Contains(re.Reason, `"mcmc"`) {
		t.Fatalf("error %v does not name the mcmc fallback", err)
	}
	if errCode(err) != "bad_request" {
		t.Fatalf("wire code %q, want bad_request", errCode(err))
	}
}
