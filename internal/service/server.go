package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"

	"gesmc/internal/faultinject"
	"gesmc/internal/telemetry"
	"gesmc/wire"
)

// maxRequestBody bounds POST bodies (64 MiB holds explicit edge lists
// of tens of millions of edges; degree-sequence requests are tiny).
const maxRequestBody = 64 << 20

// NewHandler wraps the service in its HTTP API:
//
//	POST /v1/sample   — stream an ensemble as NDJSON, one line per
//	                    sample, flushed as produced
//	GET  /v1/healthz  — liveness (503 while draining)
//	GET  /v1/metrics  — counters (JSON)
func NewHandler(svc *Service) http.Handler {
	return NewBackendHandler(NewLocalBackend(svc))
}

// Optional Backend capabilities, asserted by the handler: a backend
// with telemetry additionally serves Prometheus text on /v1/metrics
// (content-negotiated), span dumps on /v1/trace, and joins upstream
// traces propagated in the telemetry.TraceHeader.
type (
	// promBackend renders Prometheus text exposition; false means
	// telemetry is disabled and the JSON document should serve instead.
	promBackend interface {
		WritePrometheus(w io.Writer) bool
	}
	// traceBackend dumps one stored trace by %016x ID.
	traceBackend interface {
		TraceDump(id string) ([]telemetry.SpanDump, bool)
	}
	// tracerBackend exposes the tracer used to join propagated traces.
	tracerBackend interface {
		Tracer() *telemetry.Tracer
	}
)

// wantsPrometheus reports whether the Accept header asks for text
// exposition rather than the default JSON document.
func wantsPrometheus(accept string) bool {
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

// NewBackendHandler serves the same HTTP API over any Backend: a
// LocalBackend for the plain daemon, a cluster coordinator for the
// front tier. The transport is identical either way — that is what
// lets coordinators stack in front of daemons transparently.
//
// Backends with telemetry get two extensions: GET /v1/metrics answers
// Prometheus text exposition when the request Accepts text/plain (the
// JSON body is unchanged and stays the default), and GET /v1/trace?id=
// dumps a request trace's spans.
func NewBackendHandler(b Backend) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sample", func(w http.ResponseWriter, r *http.Request) {
		handleSample(b, w, r)
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		if f := faultinject.Lookup(faultinject.ServerHealth); f != nil {
			if f.Mode == faultinject.Stall && f.Spend() {
				faultinject.Sleep(r.Context(), f.Delay)
			}
			if f.Fail() {
				writeJSON(w, f.DenyStatus(), wire.Error{Error: "faultinject: health denied", Code: "internal"})
				return
			}
		}
		h, err := b.Health(r.Context())
		if err != nil {
			writeJSON(w, http.StatusServiceUnavailable, wire.Error{Error: err.Error(), Code: errCode(err)})
			return
		}
		code := http.StatusOK
		if h.Status != "ok" {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, h)
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		if pb, ok := b.(promBackend); ok && wantsPrometheus(r.Header.Get("Accept")) {
			var buf strings.Builder
			if pb.WritePrometheus(&buf) {
				w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
				w.WriteHeader(http.StatusOK)
				io.WriteString(w, buf.String())
				return
			}
			// Telemetry disabled: fall through to the JSON document.
		}
		m, err := b.Metrics(r.Context())
		if err != nil {
			writeJSON(w, statusFor(err), wire.Error{Error: err.Error(), Code: errCode(err)})
			return
		}
		writeJSON(w, http.StatusOK, m)
	})
	mux.HandleFunc("GET /v1/trace", func(w http.ResponseWriter, r *http.Request) {
		tb, ok := b.(traceBackend)
		if !ok {
			writeJSON(w, http.StatusNotFound, wire.Error{Error: "tracing not supported by this backend", Code: "not_found"})
			return
		}
		id := r.URL.Query().Get("id")
		spans, ok := tb.TraceDump(id)
		if !ok {
			writeJSON(w, http.StatusNotFound, wire.Error{Error: "unknown, evicted, or malformed trace id", Code: "not_found"})
			return
		}
		writeJSON(w, http.StatusOK, struct {
			TraceID string               `json:"trace_id"`
			Spans   []telemetry.SpanDump `json:"spans"`
		}{TraceID: id, Spans: spans})
	})
	return mux
}

// statusFor maps service errors to HTTP statuses for failures that
// precede the first streamed line.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrBackend):
		// Every shard unreachable, or the one owning the key died
		// before its first line: the fault is behind this proxy tier.
		return http.StatusBadGateway
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client's own cancellation or timeout_ms deadline, not a
		// server fault: a 5xx here would trip retry policies against
		// an already-loaded server.
		return http.StatusRequestTimeout
	default:
		return http.StatusInternalServerError
	}
}

// errInjectedCut is the sentinel an armed ServerStream Cut fault
// returns from the emit callback. It must travel back through
// Backend.Sample rather than panic inside emit: the Backend owns a
// producer goroutine and a pooled engine, and only its own return path
// tears those down safely. handleSample converts the sentinel into a
// connection abort once the Backend has cleaned up.
var errInjectedCut = errors.New("faultinject: stream cut")

func handleSample(b Backend, w http.ResponseWriter, r *http.Request) {
	if f := faultinject.Lookup(faultinject.ServerSample); f != nil {
		if f.Mode == faultinject.Stall && f.Spend() {
			faultinject.Sleep(r.Context(), f.Delay)
		}
		if f.Fail() {
			writeJSON(w, f.DenyStatus(), wire.Error{Error: "faultinject: sample denied", Code: "overloaded"})
			return
		}
	}

	var wreq wire.SampleRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err := dec.Decode(&wreq); err != nil {
		writeJSON(w, http.StatusBadRequest, wire.Error{Error: "malformed JSON: " + err.Error(), Code: "bad_request"})
		return
	}

	// Join a propagated upstream trace (coordinator→shard) so the spans
	// this request produces — and the trace ID stamped into its lines —
	// extend the caller's trace instead of starting a fresh one.
	ctx := r.Context()
	if tb, ok := b.(tracerBackend); ok {
		if trace, parent, ok := telemetry.ParseTraceHeader(r.Header.Get(telemetry.TraceHeader)); ok {
			ctx = tb.Tracer().Join(ctx, trace, parent)
		}
	}

	// The NDJSON stream: headers go out with the first line, so
	// pre-stream failures (overload, infeasible degree sequence) still
	// get a proper status code. After the first line the status is
	// committed and terminal errors travel in-band as error lines
	// (the Backend emits them).
	cut := faultinject.Lookup(faultinject.ServerStream)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	streaming := false
	written := 0
	err := b.Sample(ctx, &wreq, func(ln wire.Line) error {
		if cut != nil && cut.Mode == faultinject.Cut && written >= cut.AfterLines && cut.Spend() {
			return errInjectedCut
		}
		if !streaming {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			streaming = true
		}
		if err := enc.Encode(ln); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		written++
		return nil
	})
	if errors.Is(err, errInjectedCut) {
		// The Backend has drained its producer and returned its engine;
		// now sever the connection without a clean EOF — the wire image
		// of a daemon killed mid-stream.
		panic(http.ErrAbortHandler)
	}
	if err != nil && !streaming {
		writeJSON(w, statusFor(err), wire.Error{Error: err.Error(), Code: errCode(err)})
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
