package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"gesmc/wire"
)

// maxRequestBody bounds POST bodies (64 MiB holds explicit edge lists
// of tens of millions of edges; degree-sequence requests are tiny).
const maxRequestBody = 64 << 20

// NewHandler wraps the service in its HTTP API:
//
//	POST /v1/sample   — stream an ensemble as NDJSON, one line per
//	                    sample, flushed as produced
//	GET  /v1/healthz  — liveness (503 while draining)
//	GET  /v1/metrics  — counters (JSON)
func NewHandler(svc *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sample", func(w http.ResponseWriter, r *http.Request) {
		handleSample(svc, w, r)
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := svc.Health()
		code := http.StatusOK
		if h.Status != "ok" {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, h)
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Metrics())
	})
	return mux
}

// statusFor maps service errors to HTTP statuses for failures that
// precede the first streamed line.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client's own cancellation or timeout_ms deadline, not a
		// server fault: a 5xx here would trip retry policies against
		// an already-loaded server.
		return http.StatusRequestTimeout
	default:
		return http.StatusInternalServerError
	}
}

func handleSample(svc *Service, w http.ResponseWriter, r *http.Request) {
	var wreq wire.SampleRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err := dec.Decode(&wreq); err != nil {
		writeJSON(w, http.StatusBadRequest, wire.Error{Error: "malformed JSON: " + err.Error(), Code: "bad_request"})
		return
	}
	req, err := FromWire(&wreq)
	if err != nil {
		writeJSON(w, statusFor(err), wire.Error{Error: err.Error(), Code: errCode(err)})
		return
	}

	// The NDJSON stream: headers go out with the first line, so
	// pre-stream failures (overload, infeasible degree sequence) still
	// get a proper status code. After the first line the status is
	// committed and terminal errors travel in-band as error lines
	// (Service.Sample emits them).
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	streaming := false
	err = svc.Sample(r.Context(), req, func(ln wire.Line) error {
		if !streaming {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			streaming = true
		}
		if err := enc.Encode(ln); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err != nil && !streaming {
		writeJSON(w, statusFor(err), wire.Error{Error: err.Error(), Code: errCode(err)})
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
