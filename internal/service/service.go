package service

import (
	"context"
	"errors"
	"log/slog"
	"runtime"
	"sync"
	"time"

	"gesmc"
	"gesmc/internal/telemetry"
	"gesmc/wire"
)

// Config sizes the service. Zero values select the defaults.
type Config struct {
	// ID is the backend identity stamped on every streamed line's
	// Stats.Backend and on Metrics.Backend, so clients (and the
	// cluster coordinator) can observe which shard served them. Empty
	// leaves the fields unset.
	ID string
	// WorkerBudget is the global parallelism bound: the sum of the
	// Workers of all running jobs never exceeds it. Default:
	// GOMAXPROCS.
	WorkerBudget int
	// QueueLimit bounds the admission queue; arrivals beyond it are
	// rejected with ErrOverloaded. Default: 64.
	QueueLimit int
	// PoolCapacity bounds the engine pool (idle compiled samplers kept
	// for reuse); 0 disables pooling. Default: 8. Use NoPooling for an
	// explicit zero.
	PoolCapacity int
	// NoPooling disables the engine pool (every request compiles and
	// closes its own sampler); it exists because PoolCapacity == 0
	// means "default".
	NoPooling bool
	// NoTelemetry disables tracing, latency histograms, and the
	// Prometheus exposition (GET /v1/metrics keeps its JSON view).
	// Telemetry is on by default — the benched overhead budget is ≤3%
	// ns/switch — so the knob exists for benchmark baselines and
	// minimal embeddings.
	NoTelemetry bool
	// Logger receives structured request logs (one line per request,
	// with trace IDs). Nil discards them.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.WorkerBudget <= 0 {
		c.WorkerBudget = runtime.GOMAXPROCS(0)
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 64
	}
	if c.PoolCapacity <= 0 {
		c.PoolCapacity = 8
	}
	if c.NoPooling {
		c.PoolCapacity = 0
	}
	return c
}

// Service executes sampling jobs: validation, admission against the
// worker budget, engine checkout (pool hit) or compilation (miss),
// NDJSON-friendly streaming via an emit callback, and check-in. It is
// safe for concurrent use; Shutdown drains in-flight jobs and closes
// every pooled worker gang.
type Service struct {
	cfg   Config
	sched *scheduler
	pool  *enginePool
	met   serviceMetrics
	tm    *svcTelemetry

	mu       sync.Mutex
	closing  bool
	inflight int
	drained  chan struct{}
}

// New builds a Service from cfg (zero value = defaults).
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:     cfg,
		sched:   newScheduler(cfg.WorkerBudget, cfg.QueueLimit),
		pool:    newEnginePool(cfg.PoolCapacity),
		met:     serviceMetrics{start: time.Now()},
		tm:      newSvcTelemetry(!cfg.NoTelemetry, cfg.Logger),
		drained: make(chan struct{}),
	}
	s.registerFuncMetrics()
	return s
}

// begin registers an in-flight job, refusing new work once Shutdown
// has started.
func (s *Service) begin() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return ErrShuttingDown
	}
	s.inflight++
	return nil
}

func (s *Service) end() {
	s.mu.Lock()
	s.inflight--
	if s.closing && s.inflight == 0 {
		close(s.drained)
	}
	s.mu.Unlock()
}

// errCode classifies a terminal error for the wire Code field.
func errCode(err error) string {
	switch {
	case errors.Is(err, context.Canceled):
		return "canceled"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, gesmc.ErrClosed):
		return "closed"
	case errors.Is(err, ErrBadRequest):
		return "bad_request"
	case errors.Is(err, ErrOverloaded):
		return "overloaded"
	case errors.Is(err, ErrShuttingDown):
		return "shutting_down"
	case errors.Is(err, ErrBackend):
		return "backend"
	default:
		return "internal"
	}
}

// Sample runs one job: it validates req, waits for req.Workers tokens
// of the global budget (FIFO, bounded queue), obtains an engine from
// the pool or compiles one, and streams req.Samples ensemble draws
// through emit as they are produced — emit is called once per sample
// with at most one sample buffered, so a slow consumer backpressures
// the chain instead of accumulating the ensemble in memory.
//
// A nil return means the full ensemble was delivered. On a terminal
// error after the first delivered sample, Sample additionally emits a
// final error Line (best effort) so stream consumers see the
// termination in-band. The engine is returned to the pool in every
// case — cancellation stops chains at superstep boundaries, leaving
// the sampler valid for the next request.
func (s *Service) Sample(ctx context.Context, req *Request, emit func(wire.Line) error) error {
	if err := s.begin(); err != nil {
		s.met.requestsRejected.Add(1)
		return err
	}
	defer s.end()

	if err := req.Validate(); err != nil {
		s.met.requestsFailed.Add(1)
		return err
	}
	if req.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.Timeout)
		defer cancel()
	}

	// Root span: extends a joined upstream trace (coordinator→shard
	// header) or starts a fresh one. Its trace ID is stamped into every
	// streamed line.
	ctx, span := s.tm.trc.StartSpan(ctx, "service.sample")
	span.SetAttr("algorithm", req.Algorithm.String())
	span.SetInt("samples", int64(req.Samples))
	start := time.Now()
	err := s.sample(ctx, req, emit, telemetry.TraceIDString(ctx))
	dur := time.Since(start)
	s.tm.requestDur.Observe(dur.Seconds())
	if err != nil {
		span.SetAttr("error", errCode(err))
	}
	span.End()
	s.tm.log.LogAttrs(ctx, requestLogLevel(err), "sample request",
		slog.String("trace", telemetry.TraceIDString(ctx)),
		slog.String("backend", s.cfg.ID),
		slog.String("algorithm", req.Algorithm.String()),
		slog.Int("samples", req.Samples),
		slog.Int("resume_from", req.ResumeFrom),
		slog.Duration("duration", dur),
		slog.String("code", errCodeOrOK(err)))
	return err
}

// requestLogLevel maps a request outcome to its log level: client-side
// outcomes (success, cancellation, bad request) log at Info, server
// faults at Warn.
func requestLogLevel(err error) slog.Level {
	switch {
	case err == nil, errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded), errors.Is(err, ErrBadRequest):
		return slog.LevelInfo
	default:
		return slog.LevelWarn
	}
}

func errCodeOrOK(err error) string {
	if err == nil {
		return "ok"
	}
	return errCode(err)
}

// sample runs the admitted, validated request; traceID is stamped into
// every streamed line.
func (s *Service) sample(ctx context.Context, req *Request, emit func(wire.Line) error, traceID string) error {
	// Admission: FIFO behind earlier jobs, bounded waiting line.
	_, qspan := s.tm.trc.StartSpan(ctx, "queue.wait")
	qstart := time.Now()
	if err := s.sched.acquire(ctx, req.Workers); err != nil {
		qspan.End()
		if errors.Is(err, ErrOverloaded) {
			s.met.requestsRejected.Add(1)
		} else {
			s.met.requestsFailed.Add(1)
		}
		return err
	}
	qspan.End()
	s.tm.queueWait.Observe(time.Since(qstart).Seconds())
	defer s.sched.release(req.Workers)
	s.met.requestsTotal.Add(1)
	s.met.requestsInflight.Add(1)
	defer s.met.requestsInflight.Add(-1)

	// Engine: pool hit skips target realization and sampler
	// compilation entirely.
	key := req.engineKey()
	sampler, hit := s.pool.checkout(key)
	_, cospan := s.tm.trc.StartSpan(ctx, "pool.checkout")
	if hit {
		cospan.SetAttr("outcome", "hit")
	} else {
		cospan.SetAttr("outcome", "miss")
	}
	cospan.End()
	if hit && req.ResumeFrom > 0 {
		// A resumed stream must be the canonical chain suffix, so the
		// pooled engine has to fast-forward to the resume point. A
		// chain that already overshot it (it served a longer stream)
		// cannot rewind — return it and compile a fresh chain below.
		_, ffspan := s.tm.trc.StartSpan(ctx, "pool.fast_forward")
		ffspan.SetInt("to", int64(req.ResumeFrom))
		s.tm.fastForwards.Inc()
		_, err := sampler.FastForwardTo(ctx, req.ResumeFrom)
		ffspan.End()
		if err != nil {
			s.pool.checkin(key, sampler)
			if !errors.Is(err, gesmc.ErrResumeBehind) {
				// Cancellation mid-fast-forward: the chain stopped at a
				// superstep boundary and stays poolable.
				s.met.requestsFailed.Add(1)
				return err
			}
			sampler, hit = nil, false
		}
	}
	if !hit {
		_, cspan := s.tm.trc.StartSpan(ctx, "engine.compile")
		target, err := req.buildTarget()
		if err != nil {
			cspan.End()
			s.met.requestsFailed.Add(1)
			return err
		}
		sampler, err = gesmc.NewSampler(target, req.samplerOptions()...)
		cspan.End()
		if err != nil {
			s.met.requestsFailed.Add(1)
			if errors.Is(err, gesmc.ErrExactUnsupported) {
				// The typed degradation path of the exact tier: a 400
				// naming the knob and the fallback, never a silent
				// reroute to MCMC.
				return &RequestError{Field: "uniformity",
					Reason: err.Error() + `; retry with uniformity "mcmc"`}
			}
			return &RequestError{Field: "options", Reason: err.Error()}
		}
		if req.ResumeFrom > 0 {
			// Fresh chain: burn-in + ResumeFrom·thinning supersteps
			// reconstruct the stream position deterministically.
			_, ffspan := s.tm.trc.StartSpan(ctx, "pool.fast_forward")
			ffspan.SetInt("to", int64(req.ResumeFrom))
			_, err := sampler.FastForwardTo(ctx, req.ResumeFrom)
			ffspan.End()
			if err != nil {
				s.pool.checkin(key, sampler)
				s.met.requestsFailed.Add(1)
				return err
			}
		}
	}
	defer s.pool.checkin(key, sampler)

	// Stream. The derived cancel tears the producing goroutine down
	// when the consumer fails mid-stream; the range always runs to
	// channel close, which is the producer's exit — only then may the
	// sampler go back into the pool (it is not safe for concurrent
	// use, and the producer advances it).
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var terminal error
	delivered := 0
	resume := req.ResumeFrom
	_, stspan := s.tm.trc.StartSpan(ctx, "engine.stream")
	for smp := range sampler.Ensemble(cctx, req.Samples-resume) {
		if terminal != nil {
			continue // draining after a terminal error
		}
		if smp.Err != nil {
			terminal = smp.Err
			// In-band error marker, but only mid-stream: a failure
			// before the first sample surfaces as the return error, so
			// the HTTP layer can still send a real status code. Cursor
			// carries the index of the sample that failed — resuming
			// there retries it.
			if delivered > 0 {
				idx := smp.Index + resume
				emit(wire.Line{Index: idx, Cursor: idx, Error: smp.Err.Error(),
					Code: errCode(smp.Err), TraceID: traceID})
			}
			continue
		}
		s.met.observeSample(smp.Stats.Supersteps, smp.Stats.Attempted)
		s.tm.sampleDur.Observe(smp.Stats.Duration.Seconds())
		s.tm.firstRound.Observe(smp.Stats.FirstRoundTime.Seconds())
		s.tm.laterRounds.Observe(smp.Stats.LaterRoundsTime.Seconds())
		s.tm.exactRestarts.Add(smp.Stats.Restarts)
		ln := wire.FromSample(smp)
		// Index is absolute within the requested ensemble; a resumed
		// stream numbers its lines as the suffix of the original.
		ln.Index += resume
		ln.Cursor = ln.Index + 1
		if ln.Stats != nil {
			ln.Stats.TraceID = traceID
		}
		if s.cfg.ID != "" && ln.Stats != nil {
			ln.Stats.Backend = s.cfg.ID
		}
		if err := emit(ln); err != nil {
			terminal = err
			cancel()
			continue
		}
		delivered++
	}
	stspan.SetInt("delivered", int64(delivered))
	stspan.End()
	if terminal != nil {
		s.met.requestsFailed.Add(1)
	}
	return terminal
}

// Metrics snapshots the service counters.
func (s *Service) Metrics() wire.Metrics {
	m := s.met.snapshot(s.sched, s.pool)
	m.Backend = s.cfg.ID
	return m
}

// Health reports liveness ("ok", or "draining" once Shutdown started).
func (s *Service) Health() wire.Health {
	s.mu.Lock()
	closing := s.closing
	s.mu.Unlock()
	status := "ok"
	if closing {
		status = "draining"
	}
	return wire.Health{Status: status, UptimeMS: time.Since(s.met.start).Milliseconds()}
}

// Shutdown stops admitting jobs, waits for in-flight jobs to finish
// (or ctx to expire), then closes every pooled sampler, parking all
// persistent worker gangs. It is idempotent; concurrent calls share
// the drain.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closing {
		s.closing = true
		if s.inflight == 0 {
			close(s.drained)
		}
	}
	s.mu.Unlock()

	var err error
	select {
	case <-s.drained:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.pool.close()
	return err
}
