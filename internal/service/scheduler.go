package service

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// scheduler is the job admission layer: a weighted, strictly-FIFO
// semaphore over the service's global worker budget. A request with
// WithWorkers(P) engines acquires P tokens, so the total parallelism of
// all running jobs never exceeds the budget regardless of the request
// mix. Admission control is a bound on the *waiting* line: when
// queueLimit requests are already parked, further arrivals are rejected
// immediately with ErrOverloaded instead of building an unbounded
// backlog (fail fast beats queueing beyond the latency any client
// would wait).
//
// Fairness is strict FIFO: a wide request at the head of the line
// blocks narrower later arrivals until it gets its tokens. That wastes
// a little capacity but prevents the starvation a "first fit" policy
// inflicts on wide requests under a stream of narrow ones.
type scheduler struct {
	mu      sync.Mutex
	free    int
	budget  int
	qLimit  int
	waiters list.List // of *waiter, front = oldest

	depth atomic.Int64 // waiters count, exported as queue_depth
	busy  atomic.Int64 // tokens currently held, exported as workers_busy
}

type waiter struct {
	need  int
	ready chan struct{} // closed by release when tokens are assigned
}

func newScheduler(budget, queueLimit int) *scheduler {
	return &scheduler{free: budget, budget: budget, qLimit: queueLimit}
}

// acquire obtains need worker tokens, waiting FIFO behind earlier
// requests. It fails fast with ErrOverloaded when the waiting line is
// full, with a *RequestError when need can never be satisfied, and
// with ctx.Err() if the caller's context expires while queued.
func (s *scheduler) acquire(ctx context.Context, need int) error {
	if need < 1 {
		need = 1
	}
	if need > s.budget {
		return &RequestError{Field: "workers",
			Reason: fmt.Sprintf("request needs %d workers, budget is %d", need, s.budget)}
	}
	s.mu.Lock()
	if s.waiters.Len() == 0 && s.free >= need {
		s.free -= need
		s.mu.Unlock()
		s.busy.Add(int64(need))
		return nil
	}
	if s.waiters.Len() >= s.qLimit {
		s.mu.Unlock()
		return ErrOverloaded
	}
	w := &waiter{need: need, ready: make(chan struct{})}
	elem := s.waiters.PushBack(w)
	s.depth.Store(int64(s.waiters.Len()))
	s.mu.Unlock()

	select {
	case <-w.ready:
		s.busy.Add(int64(need))
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		select {
		case <-w.ready:
			// release granted our tokens in the race window: take the
			// cancellation, but hand the tokens on.
			s.mu.Unlock()
			s.busy.Add(int64(need))
			s.release(need)
		default:
			s.waiters.Remove(elem)
			s.depth.Store(int64(s.waiters.Len()))
			// Our departure may unblock a narrower successor.
			s.grantLocked()
			s.mu.Unlock()
		}
		return ctx.Err()
	}
}

// release returns need tokens and hands them to queued waiters in FIFO
// order.
func (s *scheduler) release(need int) {
	if need < 1 {
		need = 1
	}
	s.busy.Add(int64(-need))
	s.mu.Lock()
	s.free += need
	s.grantLocked()
	s.mu.Unlock()
}

// grantLocked assigns free tokens to the front of the line for as long
// as the head waiter fits.
func (s *scheduler) grantLocked() {
	for s.waiters.Len() > 0 {
		w := s.waiters.Front().Value.(*waiter)
		if s.free < w.need {
			break
		}
		s.free -= w.need
		s.waiters.Remove(s.waiters.Front())
		close(w.ready)
	}
	s.depth.Store(int64(s.waiters.Len()))
}
