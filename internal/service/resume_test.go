package service

import (
	"context"
	"errors"
	"testing"

	"gesmc/wire"
)

// coldStream serves req on a fresh service (cold engine pool), so the
// stream is the canonical chain for (request, seed).
func coldStream(t *testing.T, req *wire.SampleRequest) []wire.Line {
	t.Helper()
	svc := New(Config{WorkerBudget: 4})
	defer svc.Shutdown(context.Background())
	lines, err := collect(NewLocalBackend(svc), req)
	if err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestResumeSuffixIdentity is the resume acceptance gate: a stream
// resumed at index k is bit-identical to the suffix of the
// uninterrupted stream, for k at the start, middle, and end of the
// ensemble. This is what makes the coordinator's mid-stream failover
// invisible.
func TestResumeSuffixIdentity(t *testing.T) {
	base := wire.SampleRequest{Degrees: []int{4, 3, 3, 2, 2, 2, 1, 1}, Samples: 8, Seed: 11, Workers: 2}
	full := coldStream(t, &base)
	if len(full) != 8 {
		t.Fatalf("%d lines, want 8", len(full))
	}
	for i, ln := range full {
		if ln.Index != i || ln.Cursor != i+1 {
			t.Fatalf("line %d: index/cursor %d/%d", i, ln.Index, ln.Cursor)
		}
	}
	for _, k := range []int{1, 4, 7} {
		req := base
		req.ResumeFrom = k
		got := coldStream(t, &req)
		if err := sameSamples(got, full[k:]); err != nil {
			t.Fatalf("resume at %d is not the canonical suffix: %v", k, err)
		}
		if got[0].Cursor != k+1 {
			t.Fatalf("resume at %d: first cursor %d", k, got[0].Cursor)
		}
	}
}

// TestResumePooledFastForward: a pooled engine that has not yet
// reached the resume point rolls forward and serves the identical
// suffix; one that overshot it (ErrResumeBehind internally) is
// replaced by a fresh chain — either way the bytes match the
// uninterrupted stream.
func TestResumePooledFastForward(t *testing.T) {
	base := wire.SampleRequest{Degrees: []int{3, 2, 2, 1}, Samples: 6, Seed: 3}
	full := coldStream(t, &base)

	svc := New(Config{WorkerBudget: 4, PoolCapacity: 4})
	defer svc.Shutdown(context.Background())
	b := NewLocalBackend(svc)

	// Serve the prefix; the engine parks in the pool mid-chain.
	pre := base
	pre.Samples = 3
	got, err := collect(b, &pre)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameSamples(got, full[:3]); err != nil {
		t.Fatalf("prefix: %v", err)
	}

	// Resume exactly where the prefix stopped: the pooled engine fast-
	// forwards zero supersteps and continues the same chain.
	cont := base
	cont.ResumeFrom = 3
	got, err = collect(b, &cont)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameSamples(got, full[3:]); err != nil {
		t.Fatalf("pooled resume: %v", err)
	}
	pm := svc.Metrics()
	if pm.Pool.Hits == 0 {
		t.Fatalf("resume did not reuse the pooled engine: %+v", pm.Pool)
	}

	// Resume behind the pooled chain's position: the engine cannot
	// rewind, so a fresh chain serves the canonical suffix.
	back := base
	back.ResumeFrom = 1
	got, err = collect(b, &back)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameSamples(got, full[1:]); err != nil {
		t.Fatalf("resume behind pooled chain: %v", err)
	}
}

// TestResumeValidation: the cursor must address a sample inside the
// ensemble.
func TestResumeValidation(t *testing.T) {
	svc := New(Config{})
	defer svc.Shutdown(context.Background())
	b := NewLocalBackend(svc)
	for _, rf := range []int{-1, 5, 9} {
		req := wire.SampleRequest{Degrees: []int{2, 1, 1}, Samples: 5, Seed: 1, ResumeFrom: rf}
		if _, err := collect(b, &req); !errors.Is(err, ErrBadRequest) {
			t.Fatalf("resume_from=%d: err=%v, want ErrBadRequest", rf, err)
		}
	}
}
