package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"gesmc/internal/telemetry"
	"gesmc/wire"
)

// TestTelemetryConcurrentStreamConsistency is the metrics-snapshot
// consistency gate: N concurrent streams later, the latency histograms
// must agree exactly with the request/sample counters (one queue-wait
// observation per admitted request, one duration observation per
// streamed sample), every line must carry its request's trace ID, and
// the N trace IDs must be distinct.
func TestTelemetryConcurrentStreamConsistency(t *testing.T) {
	const requests = 8
	const samples = 3
	svc := New(Config{WorkerBudget: 4, PoolCapacity: 4})
	defer svc.Shutdown(context.Background())
	b := NewLocalBackend(svc)

	var mu sync.Mutex
	traceOf := make(map[int]string) // request index → its (single) trace ID
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := &wire.SampleRequest{Degrees: []int{3, 2, 2, 1}, Samples: samples, Seed: uint64(100 + i), Workers: 1}
			lines, err := collect(b, req)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			for j, ln := range lines {
				if ln.Stats == nil || ln.Stats.TraceID == "" {
					t.Errorf("request %d line %d: no trace ID: %+v", i, j, ln.Stats)
					return
				}
				mu.Lock()
				if prev, ok := traceOf[i]; ok && prev != ln.Stats.TraceID {
					t.Errorf("request %d: trace ID changed mid-stream: %s vs %s", i, prev, ln.Stats.TraceID)
				}
				traceOf[i] = ln.Stats.TraceID
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()

	seen := make(map[string]bool)
	for i, id := range traceOf {
		if seen[id] {
			t.Fatalf("request %d: trace ID %s reused across streams", i, id)
		}
		seen[id] = true
	}
	if len(seen) != requests {
		t.Fatalf("%d distinct trace IDs, want %d", len(seen), requests)
	}

	// Histogram counts must agree with the counters the JSON metrics
	// already expose: no lost or double observations under concurrency.
	m := svc.Metrics()
	if m.RequestsTotal != requests {
		t.Fatalf("requests_total=%d, want %d", m.RequestsTotal, requests)
	}
	if got := svc.tm.queueWait.Count(); got != requests {
		t.Fatalf("queue-wait histogram count=%d, want one per request (%d)", got, requests)
	}
	if got := svc.tm.requestDur.Count(); got != requests {
		t.Fatalf("request-duration histogram count=%d, want %d", got, requests)
	}
	if got := svc.tm.sampleDur.Count(); got != requests*samples {
		t.Fatalf("sample-duration histogram count=%d, want one per sample (%d)", got, requests*samples)
	}
	if got := svc.tm.firstRound.Count(); got != requests*samples {
		t.Fatalf("first-round histogram count=%d, want %d", got, requests*samples)
	}
}

// TestMetricsContentNegotiation pins the /v1/metrics contract: JSON by
// default (unchanged shape, now with started_at_ms), Prometheus text
// exposition under "Accept: text/plain", and a clean JSON fallback when
// telemetry is disabled.
func TestMetricsContentNegotiation(t *testing.T) {
	svc := New(Config{WorkerBudget: 2})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	defer svc.Shutdown(context.Background())

	resp := postSample(t, ts.URL, wire.SampleRequest{Degrees: []int{3, 2, 2, 1}, Samples: 2, Seed: 5, Workers: 1})
	decodeAll(t, resp.Body)
	resp.Body.Close()

	// Default: JSON, as before.
	var m wire.Metrics
	jr, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := jr.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("default content type %q, want JSON", ct)
	}
	if err := json.NewDecoder(jr.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	jr.Body.Close()
	if m.RequestsTotal != 1 || m.StartedAtMS <= 0 {
		t.Fatalf("JSON metrics: requests_total=%d started_at_ms=%d", m.RequestsTotal, m.StartedAtMS)
	}

	// Negotiated: Prometheus text exposition with the histogram series.
	preq, _ := http.NewRequest("GET", ts.URL+"/v1/metrics", nil)
	preq.Header.Set("Accept", "text/plain")
	pr, err := http.DefaultClient.Do(preq)
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, pr)
	if ct := pr.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain; version=0.0.4") {
		t.Fatalf("negotiated content type %q", ct)
	}
	for _, want := range []string{
		`gesmc_queue_wait_seconds_bucket{le="+Inf"} 1`,
		"gesmc_superstep_first_round_seconds_bucket",
		"gesmc_superstep_later_rounds_seconds_count 2",
		"gesmc_requests_total 1",
		"gesmc_samples_total 2",
		"gesmc_started_at_seconds",
		"# TYPE gesmc_queue_wait_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, body)
		}
	}

	// Telemetry off: the same Accept header falls back to JSON.
	svcOff := New(Config{WorkerBudget: 2, NoTelemetry: true})
	tsOff := httptest.NewServer(NewHandler(svcOff))
	defer tsOff.Close()
	defer svcOff.Shutdown(context.Background())
	oreq, _ := http.NewRequest("GET", tsOff.URL+"/v1/metrics", nil)
	oreq.Header.Set("Accept", "text/plain")
	or, err := http.DefaultClient.Do(oreq)
	if err != nil {
		t.Fatal(err)
	}
	defer or.Body.Close()
	if ct := or.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("disabled-telemetry content type %q, want JSON fallback", ct)
	}
	var moff wire.Metrics
	if err := json.NewDecoder(or.Body).Decode(&moff); err != nil {
		t.Fatal(err)
	}
}

// TestTraceEndpoint drives a request over HTTP and retrieves its span
// dump via /v1/trace: the trace ID stamped on the streamed lines must
// resolve to the request's span tree, and unknown IDs must 404 with a
// typed error body.
func TestTraceEndpoint(t *testing.T) {
	svc := New(Config{WorkerBudget: 2})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	defer svc.Shutdown(context.Background())

	resp := postSample(t, ts.URL, wire.SampleRequest{Degrees: []int{3, 2, 2, 1}, Samples: 2, Seed: 3, Workers: 1})
	lines := decodeAll(t, resp.Body)
	resp.Body.Close()
	if len(lines) != 2 || lines[0].Stats == nil || lines[0].Stats.TraceID == "" {
		t.Fatalf("no trace ID on streamed lines: %+v", lines)
	}
	traceID := lines[0].Stats.TraceID

	tr, err := http.Get(ts.URL + "/v1/trace?id=" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", tr.StatusCode)
	}
	var dump struct {
		TraceID string               `json:"trace_id"`
		Spans   []telemetry.SpanDump `json:"spans"`
	}
	if err := json.NewDecoder(tr.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	tr.Body.Close()
	if dump.TraceID != traceID {
		t.Fatalf("dump trace ID %s, want %s", dump.TraceID, traceID)
	}
	names := make(map[string]telemetry.SpanDump)
	var root telemetry.SpanDump
	for _, s := range dump.Spans {
		names[s.Name] = s
		if s.ParentID == "" {
			root = s
		}
	}
	for _, want := range []string{"service.sample", "queue.wait", "pool.checkout", "engine.stream"} {
		if _, ok := names[want]; !ok {
			t.Fatalf("span %q missing from dump: %+v", want, dump.Spans)
		}
	}
	if root.Name != "service.sample" {
		t.Fatalf("root span %q, want service.sample", root.Name)
	}
	if names["queue.wait"].ParentID != root.SpanID {
		t.Fatalf("queue.wait parent %s, want root %s", names["queue.wait"].ParentID, root.SpanID)
	}
	if got := names["engine.stream"].Attrs["delivered"]; got != "2" {
		t.Fatalf("engine.stream delivered=%q, want 2", got)
	}

	// Unknown ID: 404 with the wire error shape.
	nf, err := http.Get(ts.URL + "/v1/trace?id=00000000deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	defer nf.Body.Close()
	if nf.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace status %d, want 404", nf.StatusCode)
	}
	var we wire.Error
	if err := json.NewDecoder(nf.Body).Decode(&we); err != nil || we.Code != "not_found" {
		t.Fatalf("unknown trace body: %+v err=%v", we, err)
	}
}

// TestTraceHeaderJoin: a request carrying X-Gesmc-Trace joins the
// caller's trace instead of starting its own — the daemon's spans land
// under the propagated trace ID with the propagated span as parent.
// This is the propagation contract the coordinator relies on.
func TestTraceHeaderJoin(t *testing.T) {
	svc := New(Config{WorkerBudget: 2})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	defer svc.Shutdown(context.Background())

	const upstream = "00000000cafed00d-00000000feedface"
	body := jsonBody(t, wire.SampleRequest{Degrees: []int{2, 1, 1}, Samples: 1, Seed: 2, Workers: 1})
	hreq, _ := http.NewRequest("POST", ts.URL+"/v1/sample", body)
	hreq.Header.Set(telemetry.TraceHeader, upstream)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	lines := decodeAll(t, resp.Body)
	resp.Body.Close()
	if len(lines) != 1 || lines[0].Stats.TraceID != "00000000cafed00d" {
		t.Fatalf("joined trace ID not stamped: %+v", lines[0].Stats)
	}
	spans, ok := svc.TraceDump("00000000cafed00d")
	if !ok {
		t.Fatal("joined trace not stored")
	}
	for _, s := range spans {
		if s.Name == "service.sample" {
			if s.ParentID != "00000000feedface" {
				t.Fatalf("service.sample parent %s, want propagated span", s.ParentID)
			}
			return
		}
	}
	t.Fatalf("service.sample span missing: %+v", spans)
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}
