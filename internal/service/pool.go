package service

import (
	"container/list"
	"fmt"
	"sort"
	"sync"

	"gesmc"
	"gesmc/wire"
)

// enginePool caches idle compiled Samplers between requests. Compiling
// a sampler is the expensive part of a small request — building the
// hash-based edge set, dependency table, and adjacency state, spinning
// up the persistent worker gang, and paying the burn-in — so a pool hit
// skips construction entirely and, because a pooled sampler is already
// burned in, its first sample costs one thinning interval instead of a
// full burn-in.
//
// Checkout is exclusive: a pooled sampler is removed from the pool
// while a request drives it (Samplers are not safe for concurrent use),
// and checked back in afterwards. Concurrent requests with the same key
// therefore miss and compile their own engines; the surplus copies pool
// on check-in and age out by LRU. Eviction closes the sampler
// (Sampler.Close is idempotent, and a closed sampler's methods return
// gesmc.ErrClosed, so a stale reference fails loudly instead of
// corrupting a released gang).
//
// Keying includes the seed and chain schedule (see engineKey), so a
// request with an explicit seed is deterministic against a cold pool;
// a pool hit resumes the same chain where the previous same-key request
// left it — the samples remain valid draws from the same stationary
// distribution, advanced further.
//
// All counters — hits, misses, evictions, the per-key hit counts
// behind hot-target promotion — are mutated and snapshotted under the
// one pool mutex, so a /v1/metrics read taken during concurrent
// checkouts is a consistent cut: hits + misses always equals the
// number of completed checkouts, and the hit rate can never be
// computed from a torn pair.
type enginePool struct {
	mu     sync.Mutex
	cap    int
	closed bool
	lru    list.List // of *poolEntry, front = most recently used
	byKey  map[engineKey][]*list.Element

	hits      int64
	misses    int64
	evictions int64
	// hitsByKey counts reuse per pool-key digest: the hot-target
	// promotion signal a cluster coordinator reads via
	// PoolMetrics.HotKeys.
	hitsByKey map[uint64]int64
}

// maxTrackedKeys bounds hitsByKey. Hot-key tracking is a heavy-hitter
// signal, not an exact ledger: when the map saturates (a pathological
// churn of distinct targets), it is reset and re-warms on the keys
// that are actually hot.
const maxTrackedKeys = 4096

type poolEntry struct {
	key engineKey
	s   *gesmc.Sampler
}

func newEnginePool(capacity int) *enginePool {
	if capacity < 0 {
		capacity = 0
	}
	return &enginePool{
		cap:       capacity,
		byKey:     make(map[engineKey][]*list.Element),
		hitsByKey: make(map[uint64]int64),
	}
}

// checkout removes and returns an idle sampler for key, or (nil, false)
// on a miss. The caller owns the sampler until checkin.
func (p *enginePool) checkout(key engineKey) (*gesmc.Sampler, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	elems := p.byKey[key]
	if len(elems) == 0 {
		p.misses++
		return nil, false
	}
	elem := elems[len(elems)-1]
	p.removeLocked(elem)
	entry := elem.Value.(*poolEntry)
	p.hits++
	if len(p.hitsByKey) >= maxTrackedKeys {
		p.hitsByKey = make(map[uint64]int64)
	}
	p.hitsByKey[key.digest()]++
	return entry.s, true
}

// checkin returns a sampler to the pool, evicting least-recently-used
// entries (closing their gangs) beyond capacity. With capacity 0 the
// sampler is closed immediately — the cold-path configuration the
// service_throughput benchmark compares against.
func (p *enginePool) checkin(key engineKey, s *gesmc.Sampler) {
	var evicted []*gesmc.Sampler
	p.mu.Lock()
	if p.closed {
		// A job that outlived a timed-out Shutdown drain checks in
		// after close(): the pool stays empty and the gang is parked
		// now, or nobody ever would.
		p.mu.Unlock()
		s.Close()
		return
	}
	elem := p.lru.PushFront(&poolEntry{key: key, s: s})
	p.byKey[key] = append(p.byKey[key], elem)
	for p.lru.Len() > p.cap {
		back := p.lru.Back()
		p.removeLocked(back)
		evicted = append(evicted, back.Value.(*poolEntry).s)
	}
	p.evictions += int64(len(evicted))
	p.mu.Unlock()
	// Close outside the lock: parking a gang synchronizes with its
	// worker goroutines.
	for _, ev := range evicted {
		ev.Close()
	}
}

// removeLocked unlinks elem from both indexes.
func (p *enginePool) removeLocked(elem *list.Element) {
	entry := elem.Value.(*poolEntry)
	p.lru.Remove(elem)
	elems := p.byKey[entry.key]
	for i, e := range elems {
		if e == elem {
			elems[i] = elems[len(elems)-1]
			elems = elems[:len(elems)-1]
			break
		}
	}
	if len(elems) == 0 {
		delete(p.byKey, entry.key)
	} else {
		p.byKey[entry.key] = elems
	}
}

// close closes every pooled sampler and marks the pool closed, so a
// late checkin (a job that outlived a timed-out shutdown drain) closes
// its sampler instead of resurrecting the pool.
func (p *enginePool) close() {
	p.mu.Lock()
	p.closed = true
	var all []*gesmc.Sampler
	for elem := p.lru.Front(); elem != nil; elem = elem.Next() {
		all = append(all, elem.Value.(*poolEntry).s)
	}
	p.lru.Init()
	p.byKey = make(map[engineKey][]*list.Element)
	p.mu.Unlock()
	for _, s := range all {
		s.Close()
	}
}

// hotKeyLimit caps the hot-keys list exported in metrics.
const hotKeyLimit = 8

// metrics takes one consistent snapshot of every pool counter under
// the pool mutex.
func (p *enginePool) metrics() wire.PoolMetrics {
	p.mu.Lock()
	m := wire.PoolMetrics{
		Engines:   p.lru.Len(),
		Capacity:  p.cap,
		Hits:      p.hits,
		Misses:    p.misses,
		Evictions: p.evictions,
	}
	for key, hits := range p.hitsByKey {
		m.HotKeys = append(m.HotKeys, wire.KeyHits{Key: fmt.Sprintf("%016x", key), Hits: hits})
	}
	p.mu.Unlock()
	if total := m.Hits + m.Misses; total > 0 {
		m.HitRate = float64(m.Hits) / float64(total)
	}
	sort.Slice(m.HotKeys, func(i, j int) bool {
		if m.HotKeys[i].Hits != m.HotKeys[j].Hits {
			return m.HotKeys[i].Hits > m.HotKeys[j].Hits
		}
		return m.HotKeys[i].Key < m.HotKeys[j].Key
	})
	if len(m.HotKeys) > hotKeyLimit {
		m.HotKeys = m.HotKeys[:hotKeyLimit]
	}
	return m
}
