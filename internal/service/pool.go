package service

import (
	"container/list"
	"sync"
	"sync/atomic"

	"gesmc"
	"gesmc/wire"
)

// enginePool caches idle compiled Samplers between requests. Compiling
// a sampler is the expensive part of a small request — building the
// hash-based edge set, dependency table, and adjacency state, spinning
// up the persistent worker gang, and paying the burn-in — so a pool hit
// skips construction entirely and, because a pooled sampler is already
// burned in, its first sample costs one thinning interval instead of a
// full burn-in.
//
// Checkout is exclusive: a pooled sampler is removed from the pool
// while a request drives it (Samplers are not safe for concurrent use),
// and checked back in afterwards. Concurrent requests with the same key
// therefore miss and compile their own engines; the surplus copies pool
// on check-in and age out by LRU. Eviction closes the sampler
// (Sampler.Close is idempotent, and a closed sampler's methods return
// gesmc.ErrClosed, so a stale reference fails loudly instead of
// corrupting a released gang).
//
// Keying includes the seed and chain schedule (see engineKey), so a
// request with an explicit seed is deterministic against a cold pool;
// a pool hit resumes the same chain where the previous same-key request
// left it — the samples remain valid draws from the same stationary
// distribution, advanced further.
type enginePool struct {
	mu     sync.Mutex
	cap    int
	closed bool
	lru    list.List // of *poolEntry, front = most recently used
	byKey  map[engineKey][]*list.Element

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type poolEntry struct {
	key engineKey
	s   *gesmc.Sampler
}

func newEnginePool(capacity int) *enginePool {
	if capacity < 0 {
		capacity = 0
	}
	return &enginePool{cap: capacity, byKey: make(map[engineKey][]*list.Element)}
}

// checkout removes and returns an idle sampler for key, or (nil, false)
// on a miss. The caller owns the sampler until checkin.
func (p *enginePool) checkout(key engineKey) (*gesmc.Sampler, bool) {
	p.mu.Lock()
	elems := p.byKey[key]
	if len(elems) == 0 {
		p.mu.Unlock()
		p.misses.Add(1)
		return nil, false
	}
	elem := elems[len(elems)-1]
	p.removeLocked(elem)
	entry := elem.Value.(*poolEntry)
	p.mu.Unlock()
	p.hits.Add(1)
	return entry.s, true
}

// checkin returns a sampler to the pool, evicting least-recently-used
// entries (closing their gangs) beyond capacity. With capacity 0 the
// sampler is closed immediately — the cold-path configuration the
// service_throughput benchmark compares against.
func (p *enginePool) checkin(key engineKey, s *gesmc.Sampler) {
	var evicted []*gesmc.Sampler
	p.mu.Lock()
	if p.closed {
		// A job that outlived a timed-out Shutdown drain checks in
		// after close(): the pool stays empty and the gang is parked
		// now, or nobody ever would.
		p.mu.Unlock()
		s.Close()
		return
	}
	elem := p.lru.PushFront(&poolEntry{key: key, s: s})
	p.byKey[key] = append(p.byKey[key], elem)
	for p.lru.Len() > p.cap {
		back := p.lru.Back()
		p.removeLocked(back)
		evicted = append(evicted, back.Value.(*poolEntry).s)
	}
	p.mu.Unlock()
	// Close outside the lock: parking a gang synchronizes with its
	// worker goroutines.
	for _, ev := range evicted {
		p.evictions.Add(1)
		ev.Close()
	}
}

// removeLocked unlinks elem from both indexes.
func (p *enginePool) removeLocked(elem *list.Element) {
	entry := elem.Value.(*poolEntry)
	p.lru.Remove(elem)
	elems := p.byKey[entry.key]
	for i, e := range elems {
		if e == elem {
			elems[i] = elems[len(elems)-1]
			elems = elems[:len(elems)-1]
			break
		}
	}
	if len(elems) == 0 {
		delete(p.byKey, entry.key)
	} else {
		p.byKey[entry.key] = elems
	}
}

// close closes every pooled sampler and marks the pool closed, so a
// late checkin (a job that outlived a timed-out shutdown drain) closes
// its sampler instead of resurrecting the pool.
func (p *enginePool) close() {
	p.mu.Lock()
	p.closed = true
	var all []*gesmc.Sampler
	for elem := p.lru.Front(); elem != nil; elem = elem.Next() {
		all = append(all, elem.Value.(*poolEntry).s)
	}
	p.lru.Init()
	p.byKey = make(map[engineKey][]*list.Element)
	p.mu.Unlock()
	for _, s := range all {
		s.Close()
	}
}

// metrics snapshots the pool counters.
func (p *enginePool) metrics() wire.PoolMetrics {
	p.mu.Lock()
	engines := p.lru.Len()
	p.mu.Unlock()
	hits, misses := p.hits.Load(), p.misses.Load()
	m := wire.PoolMetrics{
		Engines:   engines,
		Capacity:  p.cap,
		Hits:      hits,
		Misses:    misses,
		Evictions: p.evictions.Load(),
	}
	if total := hits + misses; total > 0 {
		m.HitRate = float64(hits) / float64(total)
	}
	return m
}
