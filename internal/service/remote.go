package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"gesmc/internal/faultinject"
	"gesmc/internal/telemetry"
	"gesmc/wire"
)

// RemoteBackend speaks the daemon's existing HTTP/NDJSON protocol as a
// Backend: POST /v1/sample streamed line by line, GET /v1/healthz and
// /v1/metrics for the rest of the surface. It is the client half of
// the cluster coordinator (one RemoteBackend per shard) and of the
// CLI's -server mode.
//
// Error round-tripping: a pre-stream HTTP failure status is decoded
// back into the matching typed sentinel (400 → ErrBadRequest, 429 →
// ErrOverloaded, 503 → ErrShuttingDown, 408 → context.DeadlineExceeded),
// so a proxy tier re-maps it to the same status it came from.
// Transport failures — unreachable peer, reset mid-stream, malformed
// lines — wrap ErrBackend. An in-band error line is forwarded to emit
// and reported as *StreamError, telling proxies the terminator has
// already been delivered.
type RemoteBackend struct {
	base   string
	client *http.Client
	retry  RetryPolicy

	// Telemetry instruments (nil no-ops): roundTrip observes each
	// backend request's wall time, backoff the retry sleeps.
	roundTrip *telemetry.Histogram
	backoff   *telemetry.Histogram
}

// defaultClient builds the client used when NewRemoteBackend is handed
// nil. Unlike http.DefaultClient it bounds the phases that can hang on
// a dead peer — dialing and waiting for response headers — while
// leaving the body unbounded, because a streaming response legitimately
// lives as long as its request context. The header timeout is generous:
// the daemon sends no bytes until the first sample clears burn-in,
// which on a large graph takes real time.
func defaultClient() *http.Client {
	return &http.Client{Transport: &http.Transport{
		DialContext:           (&net.Dialer{Timeout: 5 * time.Second, KeepAlive: 30 * time.Second}).DialContext,
		TLSHandshakeTimeout:   5 * time.Second,
		ResponseHeaderTimeout: 2 * time.Minute,
		MaxIdleConnsPerHost:   8,
		IdleConnTimeout:       90 * time.Second,
	}}
}

// NewRemoteBackend targets a daemon at baseURL (scheme defaults to
// http://, a trailing slash is trimmed). client nil selects a default
// client with dial and response-header timeouts but no whole-request
// timeout — streaming requests live as long as their context, so a
// caller-supplied client should not carry a global timeout either.
func NewRemoteBackend(baseURL string, client *http.Client) *RemoteBackend {
	if !strings.Contains(baseURL, "://") {
		baseURL = "http://" + baseURL
	}
	if client == nil {
		client = defaultClient()
	}
	return &RemoteBackend{base: strings.TrimRight(baseURL, "/"), client: client}
}

// WithRetry enables automatic retry with policy p (zero-valued fields
// take the documented defaults; MaxAttempts <= 0 selects 3) and returns
// the backend for chaining. Only errors classified by Retryable are
// retried; with p.Resume, a mid-stream transport cut is additionally
// re-issued from the cursor of the last delivered line. The cluster
// coordinator does not use this — its cross-shard failover is the
// retry tier there — but the CLI's -server mode does.
func (b *RemoteBackend) WithRetry(p RetryPolicy) *RemoteBackend {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	b.retry = p.withDefaults()
	return b
}

// URL returns the backend's base URL.
func (b *RemoteBackend) URL() string { return b.base }

// WithMetrics attaches round-trip and retry-backoff histograms (either
// may be nil) and returns the backend for chaining. The cluster
// coordinator registers these in its own registry, one shared family
// across shards.
func (b *RemoteBackend) WithMetrics(roundTrip, backoff *telemetry.Histogram) *RemoteBackend {
	b.roundTrip, b.backoff = roundTrip, backoff
	return b
}

// remoteError is a backend-reported application error resurrected as
// its typed sentinel, preserving the backend's message.
type remoteError struct {
	msg      string
	sentinel error
}

func (e *remoteError) Error() string { return e.msg }
func (e *remoteError) Unwrap() error { return e.sentinel }

// mapStatus converts a pre-stream HTTP failure into the typed error
// the backend's own service layer returned.
func (b *RemoteBackend) mapStatus(code int, we wire.Error) error {
	msg := we.Error
	if msg == "" {
		msg = fmt.Sprintf("HTTP %d", code)
	}
	msg = fmt.Sprintf("backend %s: %s", b.base, msg)
	switch code {
	case http.StatusBadRequest:
		return &remoteError{msg: msg, sentinel: ErrBadRequest}
	case http.StatusTooManyRequests:
		return &remoteError{msg: msg, sentinel: ErrOverloaded}
	case http.StatusServiceUnavailable:
		return &remoteError{msg: msg, sentinel: ErrShuttingDown}
	case http.StatusRequestTimeout:
		return &remoteError{msg: msg, sentinel: context.DeadlineExceeded}
	default:
		return &BackendError{Backend: b.base, Op: "request", Err: errors.New(msg)}
	}
}

// emitError tags a consumer (emit) failure so Sample can tell it apart
// from a backend stream failure: the former is the caller's problem,
// the latter is the backend's.
type emitError struct{ err error }

func (e *emitError) Error() string { return e.err.Error() }

// Sample posts req and forwards every NDJSON line to emit verbatim,
// including a terminal in-band error line (reported as *StreamError).
// With a WithRetry policy, retryable pre-stream failures are re-issued
// after backoff, and (if the policy enables Resume) a mid-stream
// transport cut is re-issued with ResumeFrom set to the cursor of the
// last delivered line — the consumer sees one contiguous stream.
func (b *RemoteBackend) Sample(ctx context.Context, req *wire.SampleRequest, emit func(wire.Line) error) error {
	if b.retry.MaxAttempts <= 1 {
		return b.sampleOnce(ctx, req, emit)
	}

	samples := req.Samples
	if samples <= 0 {
		samples = 1
	}
	cur := *req // private copy; only ResumeFrom is rewritten
	cursor := req.ResumeFrom
	track := func(ln wire.Line) error {
		if err := emit(ln); err != nil {
			return err
		}
		// Advance the resume cursor past delivered samples. Cursor is
		// authoritative when stamped; fall back to Index+1 for sample
		// lines from a daemon predating cursors.
		if c := ln.Cursor; c > cursor {
			cursor = c
		} else if ln.Error == "" && ln.Index+1 > cursor {
			cursor = ln.Index + 1
		}
		return nil
	}
	for attempt := 1; ; attempt++ {
		before := cursor
		err := b.sampleOnce(ctx, &cur, track)
		if err == nil {
			return nil
		}
		var be *BackendError
		midCut := errors.As(err, &be) && be.Op == "stream"
		switch {
		case midCut && b.retry.Resume:
			if cursor >= samples {
				// The cut landed between the last sample line and EOF:
				// everything was delivered, so the stream is complete.
				return nil
			}
			cur.ResumeFrom = cursor
			// A cut that made progress refreshes the attempt budget:
			// the bound is on consecutive fruitless attempts, not on
			// how many times a long stream may fail over.
			if cursor > before {
				attempt = 1
			}
		case Retryable(err):
			// Pre-stream failure (refused dial, overload): the attempt
			// delivered nothing, so re-issuing cur — which already
			// carries any resume progress — is invisible to the
			// consumer.
		default:
			return err
		}
		if attempt >= b.retry.MaxAttempts {
			return err
		}
		d := b.retry.delay(attempt)
		b.backoff.ObserveDuration(d)
		if serr := sleepFor(ctx, d); serr != nil {
			return err
		}
	}
}

func (b *RemoteBackend) sampleOnce(ctx context.Context, req *wire.SampleRequest, emit func(wire.Line) error) error {
	body, err := json.Marshal(req)
	if err != nil {
		return &RequestError{Field: "body", Reason: err.Error()}
	}
	if f := faultinject.Lookup(faultinject.RemoteRequest); f != nil {
		if f.Mode == faultinject.Stall && f.Spend() {
			faultinject.Sleep(ctx, f.Delay)
		}
		if f.Fail() {
			return &BackendError{Backend: b.base, Op: "request",
				Err: errors.New("faultinject: connection refused")}
		}
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, b.base+"/v1/sample", bytes.NewReader(body))
	if err != nil {
		return &BackendError{Backend: b.base, Op: "request", Err: err}
	}
	hreq.Header.Set("Content-Type", "application/json")
	// Propagate the caller's trace position so the backend's spans and
	// line stamps extend the same trace (the coordinator→shard leg of a
	// coordinated request's single coherent trace).
	if hv := telemetry.HeaderValue(ctx); hv != "" {
		hreq.Header.Set(telemetry.TraceHeader, hv)
	}
	if b.roundTrip != nil {
		defer func(t0 time.Time) { b.roundTrip.ObserveDuration(time.Since(t0)) }(time.Now())
	}
	resp, err := b.client.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return &BackendError{Backend: b.base, Op: "request", Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var we wire.Error
		json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&we)
		return b.mapStatus(resp.StatusCode, we)
	}

	var inband *wire.Line
	err = wire.DecodeLines(resp.Body, func(ln wire.Line) error {
		if err := emit(ln); err != nil {
			return &emitError{err: err}
		}
		if ln.Error != "" {
			inband = &ln
		}
		return nil
	})
	switch {
	case err != nil:
		var ee *emitError
		if errors.As(err, &ee) {
			return ee.err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		// The response body broke before a clean EOF: the backend died
		// (or was killed) mid-stream.
		return &BackendError{Backend: b.base, Op: "stream", Err: err}
	case inband != nil:
		return &StreamError{Line: *inband}
	default:
		return nil
	}
}

// Health fetches /v1/healthz. A 503 with a parseable body (a draining
// daemon) is not a transport error: the document is returned with a
// nil error and the caller inspects Status.
func (b *RemoteBackend) Health(ctx context.Context) (wire.Health, error) {
	var h wire.Health
	err := b.getJSON(ctx, "/v1/healthz", "health", &h)
	return h, err
}

// Metrics fetches /v1/metrics.
func (b *RemoteBackend) Metrics(ctx context.Context) (wire.Metrics, error) {
	var m wire.Metrics
	err := b.getJSON(ctx, "/v1/metrics", "metrics", &m)
	return m, err
}

func (b *RemoteBackend) getJSON(ctx context.Context, path, op string, out any) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+path, nil)
	if err != nil {
		return &BackendError{Backend: b.base, Op: op, Err: err}
	}
	if b.roundTrip != nil {
		defer func(t0 time.Time) { b.roundTrip.ObserveDuration(time.Since(t0)) }(time.Now())
	}
	resp, err := b.client.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return &BackendError{Backend: b.base, Op: op, Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return &BackendError{Backend: b.base, Op: op, Err: fmt.Errorf("HTTP %d", resp.StatusCode)}
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(out); err != nil {
		return &BackendError{Backend: b.base, Op: op, Err: err}
	}
	return nil
}
