package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"gesmc/wire"
)

func postSample(t *testing.T, url string, req wire.SampleRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/sample", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeAll(t *testing.T, r io.Reader) []wire.Line {
	t.Helper()
	var lines []wire.Line
	if err := wire.DecodeLines(r, func(ln wire.Line) error {
		lines = append(lines, ln)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return lines
}

// degreesOf recomputes the (sorted) degree sequence of an edge list.
func degreesOf(nodes int, edges [][2]uint32) []int {
	deg := make([]int, nodes)
	for _, e := range edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	sort.Ints(deg)
	return deg
}

func TestServerStreamsEnsembleNDJSON(t *testing.T) {
	svc := New(Config{WorkerBudget: 2})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	defer svc.Shutdown(context.Background())

	want := []int{4, 3, 3, 2, 2, 2, 1, 1}
	resp := postSample(t, ts.URL, wire.SampleRequest{
		Degrees: want, Samples: 5, Seed: 11, Algorithm: "ParGlobalES",
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	lines := decodeAll(t, resp.Body)
	if len(lines) != 5 {
		t.Fatalf("%d lines, want 5", len(lines))
	}
	sorted := append([]int(nil), want...)
	sort.Ints(sorted)
	for i, ln := range lines {
		if ln.Error != "" {
			t.Fatalf("line %d: error %q", i, ln.Error)
		}
		if ln.Index != i {
			t.Fatalf("line %d has index %d", i, ln.Index)
		}
		got := degreesOf(ln.Nodes, ln.Edges)
		for j := range sorted {
			if got[j] != sorted[j] {
				t.Fatalf("line %d: degree sequence %v, want %v", i, got, sorted)
			}
		}
		if ln.Stats == nil || ln.Stats.Supersteps == 0 {
			t.Fatalf("line %d: missing stats", i)
		}
		// Every sampled graph must rebuild as a simple graph.
		g, _, err := ln.Graph()
		if err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if err := g.CheckSimple(); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
	}
}

// TestServerConcurrentMixedTargets drives undirected, directed,
// bipartite, and explicit-edge-list requests concurrently against one
// server; under -race this is the service's main concurrency gate.
func TestServerConcurrentMixedTargets(t *testing.T) {
	svc := New(Config{WorkerBudget: 4, QueueLimit: 64, PoolCapacity: 4})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	defer svc.Shutdown(context.Background())

	reqs := []wire.SampleRequest{
		{Degrees: []int{3, 3, 2, 2, 2, 2}, Samples: 3, Seed: 1},
		{OutDegrees: []int{2, 2, 1, 0}, InDegrees: []int{1, 1, 1, 2}, Samples: 3, Seed: 2},
		{BipartiteLeft: []int{2, 2, 1}, BipartiteRight: []int{2, 2, 1}, Samples: 3, Seed: 3},
		{Edges: [][2]uint32{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}}, Samples: 3, Seed: 4},
		{Edges: [][2]uint32{{0, 1}, {1, 0}, {1, 2}, {2, 0}}, Directed: true, Samples: 3, Seed: 5},
		{Degrees: []int{3, 3, 2, 2, 2, 2}, Samples: 3, Seed: 1, Algorithm: "GlobalCurveball"},
	}
	var wg sync.WaitGroup
	for round := 0; round < 3; round++ {
		for i, req := range reqs {
			wg.Add(1)
			go func(i int, req wire.SampleRequest) {
				defer wg.Done()
				resp := postSample(t, ts.URL, req)
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					msg, _ := io.ReadAll(resp.Body)
					t.Errorf("req %d: status %d: %s", i, resp.StatusCode, msg)
					return
				}
				lines := decodeAll(t, resp.Body)
				if len(lines) != 3 {
					t.Errorf("req %d: %d lines", i, len(lines))
					return
				}
				for _, ln := range lines {
					if ln.Error != "" {
						t.Errorf("req %d: %s", i, ln.Error)
						return
					}
					g, dg, err := ln.Graph()
					if err != nil {
						t.Errorf("req %d: %v", i, err)
						return
					}
					if g != nil {
						err = g.CheckSimple()
					} else {
						err = dg.CheckSimple()
					}
					if err != nil {
						t.Errorf("req %d: %v", i, err)
					}
				}
			}(i, req)
		}
	}
	wg.Wait()

	m := svc.Metrics()
	if m.RequestsTotal != int64(3*len(reqs)) {
		t.Fatalf("requests_total=%d", m.RequestsTotal)
	}
	if m.RequestsInflight != 0 || m.WorkersBusy != 0 || m.QueueDepth != 0 {
		t.Fatalf("leaked accounting: %+v", m)
	}
	if m.SamplesTotal != int64(3*len(reqs)*3) {
		t.Fatalf("samples_total=%d", m.SamplesTotal)
	}
}

// TestPoolHitRateRises is the engine-reuse gate: repeated identical
// requests must hit the pool (skipping sampler construction), and the
// hit-rate metric must rise.
func TestPoolHitRateRises(t *testing.T) {
	svc := New(Config{WorkerBudget: 2, PoolCapacity: 4})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	defer svc.Shutdown(context.Background())

	req := wire.SampleRequest{Degrees: []int{3, 2, 2, 2, 1}, Samples: 2, Seed: 5}
	var prevRate float64
	for i := 0; i < 4; i++ {
		resp := postSample(t, ts.URL, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d: status %d", i, resp.StatusCode)
		}
		if lines := decodeAll(t, resp.Body); len(lines) != 2 {
			t.Fatalf("round %d: %d lines", i, len(lines))
		}
		resp.Body.Close()

		m := svc.Metrics()
		if i == 0 {
			if m.Pool.Misses != 1 || m.Pool.Hits != 0 {
				t.Fatalf("cold request: hits=%d misses=%d", m.Pool.Hits, m.Pool.Misses)
			}
		} else {
			// Every warm request reuses the single compiled engine:
			// misses stay at 1, hits (and the rate) keep rising.
			if m.Pool.Misses != 1 {
				t.Fatalf("round %d recompiled: misses=%d", i, m.Pool.Misses)
			}
			if m.Pool.Hits != int64(i) {
				t.Fatalf("round %d: hits=%d", i, m.Pool.Hits)
			}
			if m.Pool.HitRate <= prevRate {
				t.Fatalf("round %d: hit rate %v did not rise above %v", i, m.Pool.HitRate, prevRate)
			}
			prevRate = m.Pool.HitRate
		}
		if m.Pool.Engines != 1 {
			t.Fatalf("round %d: %d pooled engines", i, m.Pool.Engines)
		}
	}
}

// TestDeterministicSeeds: against a cold service, a request's seed
// fully determines the sampled edge lists; different seeds diverge.
func TestDeterministicSeeds(t *testing.T) {
	run := func(seed uint64) [][][2]uint32 {
		svc := New(Config{WorkerBudget: 2})
		ts := httptest.NewServer(NewHandler(svc))
		defer ts.Close()
		defer svc.Shutdown(context.Background())
		resp := postSample(t, ts.URL, wire.SampleRequest{
			Degrees: []int{4, 3, 3, 2, 2, 2, 1, 1}, Samples: 3, Seed: seed, Workers: 2,
		})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var out [][][2]uint32
		for _, ln := range decodeAll(t, resp.Body) {
			if ln.Error != "" {
				t.Fatal(ln.Error)
			}
			out = append(out, ln.Edges)
		}
		return out
	}
	a, b, c := run(7), run(7), run(8)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("same seed produced different ensembles on fresh services")
	}
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical ensembles")
	}
}

// TestCancelMidStream: a client that walks away mid-ensemble must not
// leak the job — the worker tokens return to the budget and the engine
// returns to the pool, still usable.
func TestCancelMidStream(t *testing.T) {
	svc := New(Config{WorkerBudget: 1, PoolCapacity: 2})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	defer svc.Shutdown(context.Background())

	req := wire.SampleRequest{Degrees: []int{3, 2, 2, 2, 1}, Samples: 1_000_000, Seed: 3, Thinning: 1, BurnIn: 1}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	hreq, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/sample", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(resp.Body)
	for i := 0; i < 2; i++ {
		var ln wire.Line
		if err := dec.Decode(&ln); err != nil {
			t.Fatal(err)
		}
		if ln.Error != "" {
			t.Fatal(ln.Error)
		}
	}
	cancel()
	resp.Body.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		m := svc.Metrics()
		if m.RequestsInflight == 0 && m.WorkersBusy == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job leaked after client cancellation: %+v", m)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The interrupted engine went back to the pool and serves the next
	// request (budget 1: a leaked token would deadlock this).
	resp2 := postSample(t, ts.URL, wire.SampleRequest{Degrees: []int{3, 2, 2, 2, 1}, Samples: 1, Seed: 3, Thinning: 1, BurnIn: 1})
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-cancel request: status %d", resp2.StatusCode)
	}
	if lines := decodeAll(t, resp2.Body); len(lines) != 1 || lines[0].Error != "" {
		t.Fatalf("post-cancel request: %+v", lines)
	}
	if m := svc.Metrics(); m.Pool.Hits < 1 {
		t.Fatalf("interrupted engine was not reused: %+v", m.Pool)
	}
}

// TestOverloadRejection saturates a budget-1, queue-1 service with a
// blocked job and checks the admission ladder: one waiter queues, the
// next caller is rejected typed (and mapped to HTTP 429).
func TestOverloadRejection(t *testing.T) {
	svc := New(Config{WorkerBudget: 1, QueueLimit: 1, PoolCapacity: 2})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	defer svc.Shutdown(context.Background())

	mkReq := func(samples int) *Request {
		r, err := FromWire(&wire.SampleRequest{Degrees: []int{3, 2, 2, 2, 1}, Samples: samples, Seed: 1, BurnIn: 1, Thinning: 1})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	// Job 1 holds the single worker token until released.
	gate := make(chan struct{})
	started := make(chan struct{})
	job1 := make(chan error, 1)
	go func() {
		var once sync.Once
		job1 <- svc.Sample(context.Background(), mkReq(2), func(wire.Line) error {
			once.Do(func() { close(started) })
			<-gate
			return nil
		})
	}()
	<-started

	// Job 2 fills the one queue slot.
	job2 := make(chan error, 1)
	go func() {
		job2 <- svc.Sample(context.Background(), mkReq(1), func(wire.Line) error { return nil })
	}()
	waitFor(t, func() bool { return svc.Metrics().QueueDepth == 1 })

	// Job 3 (direct): typed overload error.
	if err := svc.Sample(context.Background(), mkReq(1), func(wire.Line) error { return nil }); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err=%v, want ErrOverloaded", err)
	}
	// Job 4 (HTTP): 429 with a machine-readable code.
	resp := postSample(t, ts.URL, wire.SampleRequest{Degrees: []int{3, 2, 2, 2, 1}, Samples: 1})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	var we wire.Error
	if err := json.NewDecoder(resp.Body).Decode(&we); err != nil || we.Code != "overloaded" {
		t.Fatalf("body %+v err %v", we, err)
	}
	if m := svc.Metrics(); m.RequestsRejected != 2 {
		t.Fatalf("requests_rejected=%d, want 2", m.RequestsRejected)
	}

	close(gate)
	if err := <-job1; err != nil {
		t.Fatalf("job1: %v", err)
	}
	if err := <-job2; err != nil {
		t.Fatalf("job2: %v", err)
	}
}

// TestShutdownDrains: Shutdown lets the in-flight stream finish, then
// refuses new work and closes every pooled gang.
func TestShutdownDrains(t *testing.T) {
	svc := New(Config{WorkerBudget: 2, PoolCapacity: 4})

	req, err := FromWire(&wire.SampleRequest{Degrees: []int{3, 2, 2, 2, 1}, Samples: 3, Seed: 2, BurnIn: 1, Thinning: 1})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	gate := make(chan struct{})
	var got []wire.Line
	jobDone := make(chan error, 1)
	go func() {
		var once sync.Once
		jobDone <- svc.Sample(context.Background(), req, func(ln wire.Line) error {
			once.Do(func() { close(started) })
			<-gate
			got = append(got, ln)
			return nil
		})
	}()
	<-started

	shutDone := make(chan error, 1)
	go func() { shutDone <- svc.Shutdown(context.Background()) }()
	waitFor(t, func() bool { return svc.Health().Status == "draining" })

	// New work is refused while draining.
	if err := svc.Sample(context.Background(), req, func(wire.Line) error { return nil }); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("err=%v, want ErrShuttingDown", err)
	}

	close(gate)
	if err := <-jobDone; err != nil {
		t.Fatalf("in-flight job: %v", err)
	}
	if err := <-shutDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("drained job delivered %d samples, want 3", len(got))
	}
	if m := svc.Metrics(); m.Pool.Engines != 0 {
		t.Fatalf("%d pooled engines survived shutdown", m.Pool.Engines)
	}
}

func TestHealthAndMetricsEndpoints(t *testing.T) {
	svc := New(Config{WorkerBudget: 2})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	defer svc.Shutdown(context.Background())

	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h wire.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil || h.Status != "ok" {
		t.Fatalf("health %+v err %v", h, err)
	}

	postSample(t, ts.URL, wire.SampleRequest{Degrees: []int{2, 1, 1}, Samples: 1}).Body.Close()
	resp2, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var m wire.Metrics
	if err := json.NewDecoder(resp2.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.WorkerBudget != 2 || m.RequestsTotal < 1 || m.SuperstepsTotal < 1 {
		t.Fatalf("metrics %+v", m)
	}
}

func TestRequestValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		req  wire.SampleRequest
	}{
		{"no target", wire.SampleRequest{Samples: 1}},
		{"two targets", wire.SampleRequest{Degrees: []int{1, 1}, Edges: [][2]uint32{{0, 1}}}},
		{"inout mismatch", wire.SampleRequest{OutDegrees: []int{1}, InDegrees: []int{1, 0}}},
		{"bad algorithm", wire.SampleRequest{Degrees: []int{1, 1}, Algorithm: "Metropolis"}},
		{"negative samples", wire.SampleRequest{Degrees: []int{1, 1}, Samples: -1}},
		{"negative timeout", wire.SampleRequest{Degrees: []int{1, 1}, TimeoutMS: -5}},
		{"negative degree", wire.SampleRequest{Degrees: []int{2, -1, 1}}},
		{"half bipartite", wire.SampleRequest{BipartiteLeft: []int{1}}},
	}
	for _, c := range cases {
		if _, err := FromWire(&c.req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: err=%v, want ErrBadRequest", c.name, err)
		}
	}
	// Infeasible-but-well-formed specs are caught by the realizability
	// gates at validation time — before target compilation — for every
	// sequence-target class.
	for _, c := range []struct {
		name string
		req  wire.SampleRequest
	}{
		{"non-graphical", wire.SampleRequest{Degrees: []int{3, 1}}},
		{"non-digraphical", wire.SampleRequest{OutDegrees: []int{2, 0}, InDegrees: []int{1, 1}}},
		{"non-bigraphical", wire.SampleRequest{BipartiteLeft: []int{2, 2}, BipartiteRight: []int{3, 1}}},
	} {
		if _, err := FromWire(&c.req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: err=%v, want ErrBadRequest", c.name, err)
		}
	}
	// And over HTTP they map to 400.
	svc := New(Config{WorkerBudget: 1})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	defer svc.Shutdown(context.Background())
	resp := postSample(t, ts.URL, wire.SampleRequest{Degrees: []int{3, 1}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}
