package service

import (
	"context"
	"net/http/httptest"
	"testing"

	"gesmc"
	"gesmc/wire"
)

// cycleEdges returns the n-cycle edge list (connected, fragile).
func cycleEdges(n int) [][2]uint32 {
	edges := make([][2]uint32, n)
	for v := 0; v < n; v++ {
		edges[v] = [2]uint32{uint32(v), uint32((v + 1) % n)}
	}
	return edges
}

// TestServerConnectedEnsemble: a connected-constrained request streams
// an ensemble in which every line decodes to a connected graph.
func TestServerConnectedEnsemble(t *testing.T) {
	svc := New(Config{WorkerBudget: 2})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	defer svc.Shutdown(context.Background())

	resp := postSample(t, ts.URL, wire.SampleRequest{
		Edges:     cycleEdges(10),
		Connected: true,
		Samples:   25,
		Seed:      4,
		Thinning:  2,
	})
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	lines := decodeAll(t, resp.Body)
	if len(lines) != 25 {
		t.Fatalf("got %d lines", len(lines))
	}
	for _, ln := range lines {
		if ln.Error != "" {
			t.Fatalf("line %d: %s", ln.Index, ln.Error)
		}
		g, _, err := ln.Graph()
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsConnected() {
			t.Fatalf("line %d: disconnected sample", ln.Index)
		}
		if ln.Stats == nil {
			t.Fatalf("line %d: missing stats", ln.Index)
		}
	}
}

// TestServerConnectedRejectsDisconnectedTarget: a disconnected explicit
// target under connected:true is a 400, not a stream.
func TestServerConnectedRejectsDisconnectedTarget(t *testing.T) {
	svc := New(Config{WorkerBudget: 2})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	defer svc.Shutdown(context.Background())

	resp := postSample(t, ts.URL, wire.SampleRequest{
		Edges:     [][2]uint32{{0, 1}, {1, 2}, {3, 4}, {4, 5}},
		Connected: true,
		Samples:   2,
	})
	defer resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

// TestConstraintInEngineKey: requests differing only in constraints
// must compile distinct engines — a connected-ensemble request can
// never resume an unconstrained pooled chain.
func TestConstraintInEngineKey(t *testing.T) {
	mk := func(mut func(*wire.SampleRequest)) engineKey {
		wr := &wire.SampleRequest{Edges: cycleEdges(8), Samples: 1}
		mut(wr)
		req, err := FromWire(wr)
		if err != nil {
			t.Fatal(err)
		}
		return req.engineKey()
	}
	plain := mk(func(*wire.SampleRequest) {})
	conn := mk(func(wr *wire.SampleRequest) { wr.Connected = true })
	forb := mk(func(wr *wire.SampleRequest) { wr.ForbiddenEdges = [][2]uint32{{0, 3}} })
	forb2 := mk(func(wr *wire.SampleRequest) { wr.ForbiddenEdges = [][2]uint32{{0, 4}} })
	if plain == conn {
		t.Fatal("connected flag not part of engine identity")
	}
	if plain == forb || forb == forb2 {
		t.Fatal("forbidden edges not part of engine identity")
	}
	if mk(func(wr *wire.SampleRequest) { wr.Connected = true }) != conn {
		t.Fatal("engine key not stable")
	}
	// Equivalent forbidden sets share a pooled engine: pair orientation
	// and list order are canonicalized before hashing (undirected).
	if mk(func(wr *wire.SampleRequest) { wr.ForbiddenEdges = [][2]uint32{{3, 0}} }) != forb {
		t.Fatal("pair orientation changes the engine key")
	}
	both := mk(func(wr *wire.SampleRequest) { wr.ForbiddenEdges = [][2]uint32{{0, 3}, {0, 4}} })
	if mk(func(wr *wire.SampleRequest) { wr.ForbiddenEdges = [][2]uint32{{4, 0}, {3, 0}} }) != both {
		t.Fatal("list order changes the engine key")
	}
}

// TestForbiddenEdgesValidation: loops in forbidden_edges are a
// validation error; a forbidden edge present in the target is a 400 at
// compile time.
func TestForbiddenEdgesValidation(t *testing.T) {
	if _, err := FromWire(&wire.SampleRequest{
		Edges:          cycleEdges(6),
		ForbiddenEdges: [][2]uint32{{2, 2}},
	}); err == nil {
		t.Fatal("loop forbidden edge accepted")
	}

	svc := New(Config{WorkerBudget: 2})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	defer svc.Shutdown(context.Background())
	resp := postSample(t, ts.URL, wire.SampleRequest{
		Edges:          cycleEdges(6),
		ForbiddenEdges: [][2]uint32{{0, 1}}, // present in the cycle
		Samples:        1,
	})
	defer resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

// TestConnectedPoolReuse: repeated identical connected requests reuse
// the pooled constrained engine and keep streaming connected samples.
func TestConnectedPoolReuse(t *testing.T) {
	svc := New(Config{WorkerBudget: 2, PoolCapacity: 4})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	defer svc.Shutdown(context.Background())

	req := wire.SampleRequest{Edges: cycleEdges(10), Connected: true, Samples: 10, Seed: 9, Thinning: 2}
	for round := 0; round < 3; round++ {
		resp := postSample(t, ts.URL, req)
		lines := decodeAll(t, resp.Body)
		resp.Body.Close()
		if len(lines) != 10 {
			t.Fatalf("round %d: %d lines", round, len(lines))
		}
		for _, ln := range lines {
			g, _, err := ln.Graph()
			if err != nil {
				t.Fatal(err)
			}
			if !g.IsConnected() {
				t.Fatalf("round %d line %d: disconnected", round, ln.Index)
			}
		}
	}
	m := svc.Metrics()
	if m.Pool.Hits < 2 {
		t.Fatalf("pool hits = %d, want >= 2", m.Pool.Hits)
	}
}

// TestRequestConstraintOptions: the request's constraint fields map to
// sampler options that actually constrain (unit check against the
// public API, no HTTP).
func TestRequestConstraintOptions(t *testing.T) {
	req, err := FromWire(&wire.SampleRequest{
		Edges:     cycleEdges(8),
		Connected: true,
		Samples:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	target, err := req.buildTarget()
	if err != nil {
		t.Fatal(err)
	}
	s, err := gesmc.NewSampler(target, req.samplerOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Step(6); err != nil {
		t.Fatal(err)
	}
	g := target.(*gesmc.Graph)
	if !g.IsConnected() {
		t.Fatal("constrained sampler left a disconnected state")
	}
}
