package service

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// RetryPolicy drives RemoteBackend's automatic retry of transient
// failures. The zero value disables retries (MaxAttempts <= 1 means a
// single attempt); WithRetry applies the defaults for the rest.
type RetryPolicy struct {
	// MaxAttempts bounds the total number of request attempts,
	// including the first. <= 1 disables retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further
	// retry doubles it, capped at MaxDelay. Defaults: 50ms base, 2s
	// cap.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Jitter scales a uniform random factor applied to each delay:
	// the slept duration is d * (1 - Jitter/2 + Jitter*rand). 0.5
	// (the default) spreads sleeps over [0.75d, 1.25d), decorrelating
	// retry storms across concurrent clients.
	Jitter float64
	// Resume additionally re-issues a request after a mid-stream
	// transport cut, setting ResumeFrom to the cursor of the last
	// delivered line so the spliced stream is the exact continuation.
	// Only safe when the consumer tolerates a request being issued
	// more than once (the stream content is deterministic, so the
	// suffix is bit-identical — but the backend does the fast-forward
	// work again).
	Resume bool
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Jitter <= 0 {
		p.Jitter = 0.5
	}
	return p
}

// delay computes the backoff before retry attempt n (n = 1 for the
// first retry), with exponential growth, a cap, and jitter.
func (p RetryPolicy) delay(n int) time.Duration {
	d := p.BaseDelay << (n - 1)
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	f := 1 - p.Jitter/2 + p.Jitter*rand.Float64()
	return time.Duration(float64(d) * f)
}

// sleep waits out the backoff, aborting early on context cancellation.
func (p RetryPolicy) sleep(ctx context.Context, n int) error {
	return sleepFor(ctx, p.delay(n))
}

// sleepFor waits out d, aborting early on context cancellation. Split
// from sleep so callers that observe the delay (backoff histograms)
// compute it once.
func sleepFor(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Retryable classifies an error from a Backend call as safe to retry.
// Retryable failures are those where either no work was accepted by the
// backend (pre-first-byte transport failures) or the backend explicitly
// refused load it may accept later (overload, drain). Terminal
// failures — the caller's own cancellation, a request the backend will
// always reject, and streams whose terminator was already delivered —
// must never be retried.
func Retryable(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return false // the caller gave up; retrying fights the caller
	case errors.Is(err, ErrBadRequest):
		return false // deterministic rejection: identical on every retry
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrShuttingDown):
		return true // explicit backpressure: the backend may admit later
	}
	var se *StreamError
	if errors.As(err, &se) {
		return false // terminator already delivered in-band
	}
	var be *BackendError
	if errors.As(err, &be) {
		// "request" failed before the first byte arrived: connection
		// refused, reset during headers, DNS failure. Nothing was
		// delivered, so a retry is invisible to the consumer.
		// "stream" broke mid-body — re-issuing verbatim would replay
		// delivered lines; only the Resume path may recover it.
		return be.Op == "request"
	}
	return false
}
