package service

import (
	"context"
	"fmt"
	"io"

	"gesmc/internal/telemetry"
	"gesmc/wire"
)

// Backend is the serving abstraction the HTTP layer, the CLI's -server
// mode, and the cluster coordinator compose over: anything that can
// execute one wire sampling request and stream its NDJSON lines.
//
// Sample invokes emit once per line, in order, as lines are produced;
// emit returning an error aborts the stream. The contract matches
// Service.Sample: a nil return means the full ensemble was delivered;
// a failure before the first line surfaces only as the returned error
// (so an HTTP front end can still send a real status code), while a
// failure after the first line is additionally emitted as an in-band
// error line. Implementations preserve the typed sentinels
// (ErrBadRequest, ErrOverloaded, ErrShuttingDown, context errors,
// ErrBackend) under errors.Is so error handling composes across
// local, remote, and coordinated tiers.
type Backend interface {
	Sample(ctx context.Context, req *wire.SampleRequest, emit func(wire.Line) error) error
	Health(ctx context.Context) (wire.Health, error)
	Metrics(ctx context.Context) (wire.Metrics, error)
}

// LocalBackend adapts a Service to the Backend interface: the
// composition the plain daemon serves, and the in-process baseline the
// differential tests compare the remote and coordinated tiers against.
type LocalBackend struct {
	svc *Service
}

// NewLocalBackend wraps svc. The Service keeps its own lifecycle
// (Shutdown is not part of the Backend surface).
func NewLocalBackend(svc *Service) *LocalBackend { return &LocalBackend{svc: svc} }

// Sample validates the wire request and runs it on the wrapped
// service.
func (b *LocalBackend) Sample(ctx context.Context, req *wire.SampleRequest, emit func(wire.Line) error) error {
	r, err := FromWire(req)
	if err != nil {
		return err
	}
	return b.svc.Sample(ctx, r, emit)
}

// Health reports the wrapped service's liveness.
func (b *LocalBackend) Health(context.Context) (wire.Health, error) { return b.svc.Health(), nil }

// Metrics snapshots the wrapped service's counters.
func (b *LocalBackend) Metrics(context.Context) (wire.Metrics, error) { return b.svc.Metrics(), nil }

// WritePrometheus forwards the service's Prometheus exposition (the
// handler's content-negotiation hook).
func (b *LocalBackend) WritePrometheus(w io.Writer) bool { return b.svc.WritePrometheus(w) }

// TraceDump forwards the service's span store (the /v1/trace hook).
func (b *LocalBackend) TraceDump(id string) ([]telemetry.SpanDump, bool) {
	return b.svc.TraceDump(id)
}

// Tracer forwards the service's tracer so the HTTP layer can join
// propagated traces.
func (b *LocalBackend) Tracer() *telemetry.Tracer { return b.svc.Tracer() }

// BackendError marks a backend transport failure — unreachable peer,
// connection reset mid-stream, malformed response — as opposed to an
// application error the backend itself reported. It matches ErrBackend
// under errors.Is; the HTTP layer maps it to 502.
type BackendError struct {
	// Backend names the failing peer (base URL or shard ID); Op is the
	// phase that failed ("request", "stream", "health", "metrics").
	Backend string
	Op      string
	Err     error
}

func (e *BackendError) Error() string {
	return fmt.Sprintf("service: backend %s: %s: %v", e.Backend, e.Op, e.Err)
}

func (e *BackendError) Unwrap() error { return e.Err }

// Is reports ErrBackend identity so errors.Is(err, ErrBackend) holds
// while Unwrap still exposes the transport cause.
func (e *BackendError) Is(target error) bool { return target == ErrBackend }

// StreamError reports a stream that terminated with an in-band error
// line which has already been delivered to emit — the caller must not
// emit a second terminator, only propagate the failure.
type StreamError struct {
	Line wire.Line
}

func (e *StreamError) Error() string {
	return fmt.Sprintf("service: stream terminated in-band: %s (%s)", e.Line.Error, e.Line.Code)
}
