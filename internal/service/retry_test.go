package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"gesmc/internal/faultinject"
	"gesmc/wire"
)

// testPolicy keeps retry tests fast.
func testPolicy(resume bool) RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Resume: resume}
}

// TestRetryableClassification pins the retry taxonomy: transient
// transport and backpressure failures retry; the caller's own
// cancellation, deterministic rejections, and streams already
// terminated in-band never do.
func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"dial refused", &BackendError{Backend: "x", Op: "request", Err: errors.New("connection refused")}, true},
		{"overloaded", &remoteError{msg: "q full", sentinel: ErrOverloaded}, true},
		{"shutting down", &remoteError{msg: "draining", sentinel: ErrShuttingDown}, true},
		{"bad request", &RequestError{Field: "degrees", Reason: "odd sum"}, false},
		{"canceled", context.Canceled, false},
		{"deadline", context.DeadlineExceeded, false},
		{"in-band terminator", &StreamError{Line: wire.Line{Error: "x", Code: "backend"}}, false},
		{"mid-body cut", &BackendError{Backend: "x", Op: "stream", Err: errors.New("unexpected EOF")}, false},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("%s: Retryable=%v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestRemoteBackendRetriesRefusedDial: a transient connection refusal
// (injected at the transport fault point) is retried and the stream
// completes as if nothing happened.
func TestRemoteBackendRetriesRefusedDial(t *testing.T) {
	svc := New(Config{WorkerBudget: 2})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	defer svc.Shutdown(context.Background())

	faultinject.Enable(faultinject.Fault{Point: faultinject.RemoteRequest, Mode: faultinject.Deny, Hits: 1})
	defer faultinject.Reset()

	rb := NewRemoteBackend(ts.URL, nil).WithRetry(testPolicy(false))
	req := &wire.SampleRequest{Degrees: []int{3, 2, 2, 1}, Samples: 2, Seed: 9}
	lines, err := collect(rb, req)
	if err != nil {
		t.Fatalf("retried stream err=%v", err)
	}
	if len(lines) != 2 || lines[0].Error != "" {
		t.Fatalf("lines after retry: %+v", lines)
	}
}

// TestRemoteBackendRetries503Burst: a one-shot 503 burst at the
// daemon's admission fault point is absorbed by the retry policy.
func TestRemoteBackendRetries503Burst(t *testing.T) {
	svc := New(Config{WorkerBudget: 2})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	defer svc.Shutdown(context.Background())

	faultinject.Enable(faultinject.Fault{Point: faultinject.ServerSample, Mode: faultinject.Deny, Status: 503, Hits: 1})
	defer faultinject.Reset()

	rb := NewRemoteBackend(ts.URL, nil).WithRetry(testPolicy(false))
	req := &wire.SampleRequest{Degrees: []int{3, 2, 2, 1}, Samples: 2, Seed: 9}
	lines, err := collect(rb, req)
	if err != nil {
		t.Fatalf("retried stream err=%v", err)
	}
	if len(lines) != 2 {
		t.Fatalf("%d lines", len(lines))
	}
}

// TestRemoteBackendResumesMidStreamCut: with Resume enabled, a stream
// cut mid-body is re-issued from the cursor of the last delivered line
// and the spliced stream is bit-identical to an uninterrupted one.
func TestRemoteBackendResumesMidStreamCut(t *testing.T) {
	req := &wire.SampleRequest{Degrees: []int{4, 3, 3, 2, 2, 2, 1, 1}, Samples: 5, Seed: 7}
	full := coldStream(t, req)

	svc := New(Config{WorkerBudget: 2})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	defer svc.Shutdown(context.Background())

	faultinject.Enable(faultinject.Fault{Point: faultinject.ServerStream, Mode: faultinject.Cut, AfterLines: 2, Hits: 1})
	defer faultinject.Reset()

	rb := NewRemoteBackend(ts.URL, nil).WithRetry(testPolicy(true))
	lines, err := collect(rb, req)
	if err != nil {
		t.Fatalf("spliced stream err=%v", err)
	}
	if err := sameSamples(lines, full); err != nil {
		t.Fatalf("spliced stream is not the canonical ensemble: %v", err)
	}
}

// TestRemoteBackendMidStreamCutNotResumedByDefault: without Resume the
// cut stays a terminal ErrBackend — re-issuing would replay delivered
// lines.
func TestRemoteBackendMidStreamCutNotResumedByDefault(t *testing.T) {
	svc := New(Config{WorkerBudget: 2})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	defer svc.Shutdown(context.Background())

	faultinject.Enable(faultinject.Fault{Point: faultinject.ServerStream, Mode: faultinject.Cut, AfterLines: 2, Hits: 1})
	defer faultinject.Reset()

	rb := NewRemoteBackend(ts.URL, nil).WithRetry(testPolicy(false))
	req := &wire.SampleRequest{Degrees: []int{3, 2, 2, 1}, Samples: 5, Seed: 9}
	lines, err := collect(rb, req)
	if !errors.Is(err, ErrBackend) {
		t.Fatalf("err=%v, want ErrBackend", err)
	}
	if len(lines) != 2 {
		t.Fatalf("%d lines delivered before the cut", len(lines))
	}
}

// TestRemoteBackendNeverRetriesTerminal: a 400 is issued exactly once
// regardless of the retry policy, and a pre-cancelled context is never
// sent at all.
func TestRemoteBackendNeverRetriesTerminal(t *testing.T) {
	var calls atomic.Int32
	ts := fakeDaemon(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(wire.Error{Error: "no", Code: "bad_request"})
	})
	defer ts.Close()

	rb := NewRemoteBackend(ts.URL, nil).WithRetry(testPolicy(true))
	req := &wire.SampleRequest{Degrees: []int{2, 1, 1}, Samples: 1, Seed: 1}
	if _, err := collect(rb, req); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("err=%v, want ErrBadRequest", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("400 request issued %d times, want 1", n)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := rb.Sample(ctx, req, func(wire.Line) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("cancelled request reached the backend (%d calls)", n)
	}
}
