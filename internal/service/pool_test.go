package service

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"gesmc"
)

func testSampler(t *testing.T, seed uint64) (*gesmc.Sampler, engineKey) {
	t.Helper()
	r := &Request{
		kind:      targetDegrees,
		degrees:   []int{3, 2, 2, 2, 1},
		Algorithm: gesmc.ParGlobalES,
		Workers:   1,
		Seed:      seed,
		Samples:   1,
	}
	target, err := r.buildTarget()
	if err != nil {
		t.Fatal(err)
	}
	s, err := gesmc.NewSampler(target, r.samplerOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	return s, r.engineKey()
}

func TestPoolCheckoutHitAndMiss(t *testing.T) {
	p := newEnginePool(4)
	s, key := testSampler(t, 1)
	if _, hit := p.checkout(key); hit {
		t.Fatal("hit on empty pool")
	}
	p.checkin(key, s)
	got, hit := p.checkout(key)
	if !hit || got != s {
		t.Fatalf("hit=%v got=%p want=%p", hit, got, s)
	}
	// Checkout is exclusive: a second checkout of the same key misses.
	if _, hit := p.checkout(key); hit {
		t.Fatal("double checkout of one pooled engine")
	}
	m := p.metrics()
	if m.Hits != 1 || m.Misses != 2 {
		t.Fatalf("hits=%d misses=%d", m.Hits, m.Misses)
	}
	if m.HitRate <= 0.32 || m.HitRate >= 0.34 {
		t.Fatalf("hit rate %v", m.HitRate)
	}
	got.Close()
}

func TestPoolLRUEvictionClosesSampler(t *testing.T) {
	p := newEnginePool(2)
	s1, k1 := testSampler(t, 1)
	s2, k2 := testSampler(t, 2)
	s3, k3 := testSampler(t, 3)
	p.checkin(k1, s1)
	p.checkin(k2, s2)
	p.checkin(k3, s3) // capacity 2: s1 is the LRU victim
	if m := p.metrics(); m.Engines != 2 || m.Evictions != 1 {
		t.Fatalf("engines=%d evictions=%d", m.Engines, m.Evictions)
	}
	// The evicted sampler's gang is released: a stale reference fails
	// loudly instead of driving freed state.
	if _, err := s1.Step(1); !errors.Is(err, gesmc.ErrClosed) {
		t.Fatalf("evicted sampler Step: %v, want ErrClosed", err)
	}
	if _, hit := p.checkout(k1); hit {
		t.Fatal("evicted key still pooled")
	}
	if _, hit := p.checkout(k2); !hit {
		t.Fatal("survivor k2 missing")
	}
	if _, hit := p.checkout(k3); !hit {
		t.Fatal("survivor k3 missing")
	}
	s2.Close()
	s3.Close()
}

func TestPoolZeroCapacityClosesImmediately(t *testing.T) {
	p := newEnginePool(0)
	s, key := testSampler(t, 1)
	p.checkin(key, s)
	if !s.Closed() {
		t.Fatal("capacity-0 checkin left the sampler open")
	}
	if m := p.metrics(); m.Engines != 0 || m.Evictions != 1 {
		t.Fatalf("engines=%d evictions=%d", m.Engines, m.Evictions)
	}
}

func TestPoolCheckinAfterClose(t *testing.T) {
	p := newEnginePool(4)
	p.close()
	// A job that outlives a timed-out shutdown drain checks its engine
	// in late: the sampler must be closed, not resurrect the pool.
	s, key := testSampler(t, 1)
	p.checkin(key, s)
	if !s.Closed() {
		t.Fatal("late checkin left the sampler open")
	}
	if m := p.metrics(); m.Engines != 0 {
		t.Fatalf("closed pool holds %d engines", m.Engines)
	}
}

func TestPoolCloseClosesAll(t *testing.T) {
	p := newEnginePool(4)
	s1, k1 := testSampler(t, 1)
	s2, k2 := testSampler(t, 2)
	p.checkin(k1, s1)
	p.checkin(k2, s2)
	p.close()
	if !s1.Closed() || !s2.Closed() {
		t.Fatal("pool close left samplers open")
	}
	if m := p.metrics(); m.Engines != 0 {
		t.Fatalf("engines=%d after close", m.Engines)
	}
}

// TestPoolHotKeyCounts: per-key hit counts back hot-target promotion —
// the most-reused key leads PoolMetrics.HotKeys with its exact count.
func TestPoolHotKeyCounts(t *testing.T) {
	p := newEnginePool(4)
	hotS, hotK := testSampler(t, 1)
	coldS, coldK := testSampler(t, 2)
	p.checkin(hotK, hotS)
	p.checkin(coldK, coldS)
	for i := 0; i < 3; i++ {
		s, hit := p.checkout(hotK)
		if !hit {
			t.Fatalf("round %d: hot key missed", i)
		}
		p.checkin(hotK, s)
	}
	s, hit := p.checkout(coldK)
	if !hit {
		t.Fatal("cold key missed")
	}
	p.checkin(coldK, s)

	m := p.metrics()
	if m.Hits != 4 || m.Misses != 0 {
		t.Fatalf("hits=%d misses=%d", m.Hits, m.Misses)
	}
	if len(m.HotKeys) != 2 {
		t.Fatalf("hot keys: %+v", m.HotKeys)
	}
	wantHot := fmt.Sprintf("%016x", hotK.digest())
	if m.HotKeys[0].Key != wantHot || m.HotKeys[0].Hits != 3 {
		t.Fatalf("hottest key %+v, want %s x3", m.HotKeys[0], wantHot)
	}
	if m.HotKeys[1].Hits != 1 {
		t.Fatalf("cold key count %+v", m.HotKeys[1])
	}
	p.close()
}

// TestPoolMetricsConsistentUnderConcurrency: the snapshot is taken
// under the pool lock, so hits + misses always equals the number of
// completed checkouts — no torn reads while checkouts race.
func TestPoolMetricsConsistentUnderConcurrency(t *testing.T) {
	p := newEnginePool(2)
	s, key := testSampler(t, 1)
	p.checkin(key, s)

	const workers, rounds = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if s, hit := p.checkout(key); hit {
					p.checkin(key, s)
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		m := p.metrics()
		if total := m.Hits + m.Misses; total > 0 {
			if want := float64(m.Hits) / float64(total); m.HitRate != want {
				t.Fatalf("torn snapshot: hits=%d misses=%d rate=%v, want %v",
					m.Hits, m.Misses, m.HitRate, want)
			}
		}
		select {
		case <-done:
			// Quiesced: every loop iteration performed exactly one
			// checkout, so the counters must add up exactly.
			m := p.metrics()
			if m.Hits+m.Misses != int64(workers*rounds) {
				t.Fatalf("hits=%d + misses=%d != %d checkouts", m.Hits, m.Misses, workers*rounds)
			}
			p.close()
			return
		default:
		}
	}
}

func TestEngineKeySensitivity(t *testing.T) {
	base := &Request{kind: targetDegrees, degrees: []int{2, 2, 1, 1}, Algorithm: gesmc.ParGlobalES, Workers: 2, Seed: 9, Samples: 1}
	same := *base
	if base.engineKey() != same.engineKey() {
		t.Fatal("identical requests hash differently")
	}
	cases := map[string]*Request{}
	{
		r := *base
		r.Seed = 10
		cases["seed"] = &r
	}
	{
		r := *base
		r.Workers = 4
		cases["workers"] = &r
	}
	{
		r := *base
		r.Algorithm = gesmc.SeqES
		cases["algorithm"] = &r
	}
	{
		r := *base
		r.degrees = []int{2, 1, 2, 1}
		cases["degree order"] = &r
	}
	{
		r := *base
		r.Thinning = 3
		cases["thinning"] = &r
	}
	{
		r := *base
		r.kind, r.degrees, r.outDegrees, r.inDegrees = targetInOut, nil, []int{1, 1}, []int{1, 1}
		cases["target kind"] = &r
	}
	for name, r := range cases {
		if r.engineKey() == base.engineKey() {
			t.Errorf("%s change did not change the engine key", name)
		}
	}

	// Regression: slice boundaries are length-prefixed, so shifting a
	// value across the left/right split must change the key (an
	// in-band separator word collided with a degree of its own value).
	a := &Request{kind: targetBipartite, left: []int{47, 1}, right: []int{47, 1}, Algorithm: gesmc.ParGlobalES, Workers: 1, Samples: 1}
	b := &Request{kind: targetBipartite, left: []int{47, 1, 47}, right: []int{1}, Algorithm: gesmc.ParGlobalES, Workers: 1, Samples: 1}
	if a.engineKey() == b.engineKey() {
		t.Fatal("different bipartite splits share an engine key")
	}
}
