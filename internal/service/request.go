// Package service is the sampling service subsystem: a request model
// with typed validation, an engine pool that reuses compiled Samplers
// (and their persistent worker gangs) across requests, a job scheduler
// with a global worker budget and admission control, and an HTTP layer
// streaming ensembles as NDJSON. cmd/gesmcd is the daemon wrapping this
// package; the wire package defines the JSON formats.
package service

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"slices"
	"time"

	"gesmc"
	"gesmc/wire"
)

// Typed service errors. The HTTP layer maps them to status codes
// (ErrBadRequest → 400, ErrOverloaded → 429, ErrShuttingDown → 503);
// embedded callers classify them with errors.Is.
var (
	// ErrBadRequest is the sentinel wrapped by every request
	// validation failure.
	ErrBadRequest = errors.New("service: invalid request")
	// ErrOverloaded is returned when the admission queue is full; the
	// client should back off and retry.
	ErrOverloaded = errors.New("service: overloaded, admission queue full")
	// ErrShuttingDown is returned for requests arriving after Shutdown
	// began.
	ErrShuttingDown = errors.New("service: shutting down")
	// ErrBackend is the sentinel matched by backend transport failures
	// (RemoteBackend, the cluster coordinator); the HTTP layer maps it
	// to 502.
	ErrBackend = errors.New("service: backend unavailable")
)

// RequestError is a validation failure for one request field. It wraps
// ErrBadRequest.
type RequestError struct {
	Field  string
	Reason string
}

func (e *RequestError) Error() string {
	return fmt.Sprintf("service: invalid request: %s: %s", e.Field, e.Reason)
}

func (e *RequestError) Unwrap() error { return ErrBadRequest }

// targetKind enumerates the supported target specifications.
type targetKind uint8

const (
	targetDegrees targetKind = iota + 1
	targetInOut
	targetBipartite
	targetEdges
	targetArcs
)

// Request is the validated, resolved form of one sampling job: a
// target specification plus the sampler options. Build one from the
// wire form with FromWire, or fill it directly for embedded use.
type Request struct {
	kind targetKind

	degrees    []int
	outDegrees []int
	inDegrees  []int
	left       []int
	right      []int
	nodes      int
	edges      [][2]uint32

	// Algorithm, Workers, Seed, Samples, BurnIn, Thinning,
	// SwapsPerEdge mirror the Sampler options; Timeout bounds the
	// whole job including queue wait.
	Algorithm    gesmc.Algorithm
	Workers      int
	Seed         uint64
	Samples      int
	BurnIn       int
	Thinning     int
	SwapsPerEdge float64
	Timeout      time.Duration

	// ResumeFrom starts the stream at this sample index instead of 0:
	// the engine is fast-forwarded to the canonical position of sample
	// ResumeFrom (burn-in + ResumeFrom·thinning supersteps from the
	// compiled target), so the response is bit-identical to the suffix
	// of the uninterrupted stream. It does not change the engine-pool
	// key — a resumed stream is the same chain.
	ResumeFrom int

	// Connected and ForbiddenEdges map to gesmc.WithConstraint on the
	// compiled sampler: every streamed sample is connected and avoids
	// the forbidden pairs. A target outside the constrained space
	// (disconnected, or containing a forbidden edge) fails validation
	// at compile time and surfaces as a 400.
	Connected      bool
	ForbiddenEdges [][2]uint32
}

// FromWire validates a wire request and resolves defaults. All
// failures wrap ErrBadRequest.
func FromWire(wr *wire.SampleRequest) (*Request, error) {
	if wr == nil {
		return nil, &RequestError{Field: "body", Reason: "missing request body"}
	}
	r := &Request{
		Workers:        wr.Workers,
		Seed:           wr.Seed,
		Samples:        wr.Samples,
		BurnIn:         wr.BurnIn,
		Thinning:       wr.Thinning,
		SwapsPerEdge:   wr.SwapsPerEdge,
		ResumeFrom:     wr.ResumeFrom,
		nodes:          wr.Nodes,
		Connected:      wr.Connected,
		ForbiddenEdges: wr.ForbiddenEdges,
	}
	if wr.TimeoutMS < 0 {
		return nil, &RequestError{Field: "timeout_ms", Reason: "must be non-negative"}
	}
	r.Timeout = time.Duration(wr.TimeoutMS) * time.Millisecond

	// Exactly one target spec.
	specs := 0
	if len(wr.Degrees) > 0 {
		r.kind, r.degrees = targetDegrees, wr.Degrees
		specs++
	}
	if len(wr.OutDegrees) > 0 || len(wr.InDegrees) > 0 {
		if len(wr.OutDegrees) != len(wr.InDegrees) {
			return nil, &RequestError{Field: "out_degrees/in_degrees",
				Reason: fmt.Sprintf("length mismatch: %d vs %d", len(wr.OutDegrees), len(wr.InDegrees))}
		}
		r.kind, r.outDegrees, r.inDegrees = targetInOut, wr.OutDegrees, wr.InDegrees
		specs++
	}
	if len(wr.BipartiteLeft) > 0 || len(wr.BipartiteRight) > 0 {
		if len(wr.BipartiteLeft) == 0 || len(wr.BipartiteRight) == 0 {
			return nil, &RequestError{Field: "bipartite_left/bipartite_right",
				Reason: "both sides must be non-empty"}
		}
		r.kind, r.left, r.right = targetBipartite, wr.BipartiteLeft, wr.BipartiteRight
		specs++
	}
	if len(wr.Edges) > 0 {
		if wr.Directed {
			r.kind = targetArcs
		} else {
			r.kind = targetEdges
		}
		r.edges = wr.Edges
		specs++
	}
	switch {
	case specs == 0:
		return nil, &RequestError{Field: "target",
			Reason: "one of degrees, out_degrees+in_degrees, bipartite_left+bipartite_right, or edges is required"}
	case specs > 1:
		return nil, &RequestError{Field: "target", Reason: "multiple target specifications"}
	}

	if wr.Algorithm == "" {
		r.Algorithm = gesmc.ParGlobalES
	} else {
		alg, err := gesmc.ParseAlgorithm(wr.Algorithm)
		if err != nil {
			return nil, &RequestError{Field: "algorithm", Reason: fmt.Sprintf("unknown %q", wr.Algorithm)}
		}
		r.Algorithm = alg
	}
	// The uniformity knob routes between tiers by normalizing into the
	// algorithm: "exact" selects gesmc.Exact (so the engine-pool key —
	// which already folds in the algorithm — separates exact engines
	// from chains with no extra field), "mcmc"/"" keeps the chain the
	// algorithm picked. Contradictions are rejected rather than
	// resolved: a caller naming both tiers has a confused request.
	switch wr.Uniformity {
	case "":
	case "mcmc":
		if r.Algorithm == gesmc.Exact {
			return nil, &RequestError{Field: "uniformity",
				Reason: `algorithm "Exact" contradicts uniformity "mcmc"`}
		}
	case "exact":
		if wr.Algorithm != "" && r.Algorithm != gesmc.Exact {
			return nil, &RequestError{Field: "uniformity",
				Reason: fmt.Sprintf("uniformity %q contradicts algorithm %q", wr.Uniformity, wr.Algorithm)}
		}
		r.Algorithm = gesmc.Exact
	default:
		return nil, &RequestError{Field: "uniformity",
			Reason: fmt.Sprintf("unknown %q (want \"exact\" or \"mcmc\")", wr.Uniformity)}
	}
	if r.Workers == 0 {
		r.Workers = 1
	}
	if r.Samples == 0 {
		r.Samples = 1
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// Validate checks the resolved request. It is called by FromWire and
// again by Service.Sample, so directly-constructed Requests get the
// same screening.
func (r *Request) Validate() error {
	if r.kind == 0 {
		return &RequestError{Field: "target", Reason: "no target specification"}
	}
	if r.Workers < 1 {
		return &RequestError{Field: "workers", Reason: "must be at least 1"}
	}
	if r.Samples < 1 {
		return &RequestError{Field: "samples", Reason: "must be at least 1"}
	}
	if r.BurnIn < 0 {
		return &RequestError{Field: "burn_in", Reason: "must be non-negative"}
	}
	if r.Thinning < 0 {
		return &RequestError{Field: "thinning", Reason: "must be non-negative"}
	}
	if r.SwapsPerEdge < 0 || math.IsInf(r.SwapsPerEdge, 0) || math.IsNaN(r.SwapsPerEdge) {
		return &RequestError{Field: "swaps_per_edge", Reason: "must be finite and non-negative"}
	}
	if r.ResumeFrom < 0 {
		return &RequestError{Field: "resume_from", Reason: "must be non-negative"}
	}
	if r.ResumeFrom >= r.Samples {
		return &RequestError{Field: "resume_from",
			Reason: fmt.Sprintf("resume point %d at or past ensemble size %d", r.ResumeFrom, r.Samples)}
	}
	for i, d := range r.degrees {
		if d < 0 {
			return &RequestError{Field: "degrees", Reason: fmt.Sprintf("degree[%d] = %d is negative", i, d)}
		}
	}
	for i, e := range r.ForbiddenEdges {
		if e[0] == e[1] {
			return &RequestError{Field: "forbidden_edges",
				Reason: fmt.Sprintf("edge[%d] = (%d, %d) is a loop", i, e[0], e[1])}
		}
	}
	// Realizability gates: a non-realizable sequence is answered by an
	// O(n log n) predicate here, before target compilation, so every
	// target class 400s the same way the undirected path always has
	// (the constructions would fail too, but only after their
	// O(n² log n) attempt).
	switch r.kind {
	case targetDegrees:
		if !gesmc.IsGraphical(r.degrees) {
			return &RequestError{Field: "degrees",
				Reason: "degree sequence is not graphical (Erdős–Gallai)"}
		}
	case targetInOut:
		if !gesmc.IsDigraphical(r.outDegrees, r.inDegrees) {
			return &RequestError{Field: "out_degrees/in_degrees",
				Reason: "bi-sequence is not digraphical (Fulkerson–Chen–Anstee)"}
		}
	case targetBipartite:
		if !gesmc.IsBigraphical(r.left, r.right) {
			return &RequestError{Field: "bipartite_left/bipartite_right",
				Reason: "sequence pair is not bigraphical (Gale–Ryser)"}
		}
	}
	if r.Algorithm == gesmc.Exact {
		if err := r.validateExact(); err != nil {
			return err
		}
	}
	return nil
}

// validateExact rejects the request shapes the exact tier cannot
// serve, with field-level errors naming the offending knob — the
// sampler would reject them too (ErrExactSchedule and friends), but
// by then the request has consumed a queue slot and compiled a
// target.
func (r *Request) validateExact() error {
	switch r.kind {
	case targetInOut, targetBipartite, targetArcs:
		return &RequestError{Field: "uniformity",
			Reason: "exact sampling supports undirected targets only; use uniformity \"mcmc\""}
	}
	if r.BurnIn != 0 {
		return &RequestError{Field: "burn_in",
			Reason: "exact draws are i.i.d.; burn-in does not apply"}
	}
	if r.Thinning != 0 {
		return &RequestError{Field: "thinning",
			Reason: "exact draws are i.i.d.; thinning does not apply"}
	}
	if r.SwapsPerEdge != 0 {
		return &RequestError{Field: "swaps_per_edge",
			Reason: "exact draws are i.i.d.; swaps-per-edge does not apply"}
	}
	if r.Connected || len(r.ForbiddenEdges) > 0 {
		return &RequestError{Field: "connected/forbidden_edges",
			Reason: "constraints are not supported by the exact tier; use uniformity \"mcmc\""}
	}
	return nil
}

// buildTarget materializes the request's target graph. Infeasible
// specifications (non-graphical sequences, malformed edge lists)
// surface as *RequestError.
func (r *Request) buildTarget() (gesmc.Target, error) {
	wrap := func(field string, err error) error {
		return &RequestError{Field: field, Reason: err.Error()}
	}
	switch r.kind {
	case targetDegrees:
		g, err := gesmc.FromDegrees(r.degrees)
		if err != nil {
			return nil, wrap("degrees", err)
		}
		return g, nil
	case targetInOut:
		g, err := gesmc.FromInOutDegrees(r.outDegrees, r.inDegrees)
		if err != nil {
			return nil, wrap("out_degrees/in_degrees", err)
		}
		return g, nil
	case targetBipartite:
		g, err := gesmc.FromBipartiteDegrees(r.left, r.right)
		if err != nil {
			return nil, wrap("bipartite_left/bipartite_right", err)
		}
		return g, nil
	case targetEdges:
		g, err := gesmc.NewGraph(r.edgeNodes(), r.edges)
		if err != nil {
			return nil, wrap("edges", err)
		}
		return g, nil
	case targetArcs:
		g, err := gesmc.NewDiGraph(r.edgeNodes(), r.edges)
		if err != nil {
			return nil, wrap("edges", err)
		}
		return g, nil
	}
	return nil, &RequestError{Field: "target", Reason: "no target specification"}
}

// edgeNodes resolves the node count of an explicit edge list: the
// declared count when given, otherwise max endpoint + 1.
func (r *Request) edgeNodes() int {
	n := r.nodes
	for _, e := range r.edges {
		if int(e[0]) >= n {
			n = int(e[0]) + 1
		}
		if int(e[1]) >= n {
			n = int(e[1]) + 1
		}
	}
	return n
}

// samplerOptions converts the request to Sampler options.
func (r *Request) samplerOptions() []gesmc.Option {
	opts := []gesmc.Option{
		gesmc.WithAlgorithm(r.Algorithm),
		gesmc.WithWorkers(r.Workers),
		gesmc.WithSeed(r.Seed),
	}
	if r.SwapsPerEdge > 0 {
		opts = append(opts, gesmc.WithSwapsPerEdge(r.SwapsPerEdge))
	}
	if r.BurnIn > 0 {
		opts = append(opts, gesmc.WithBurnIn(r.BurnIn))
	}
	if r.Thinning > 0 {
		opts = append(opts, gesmc.WithThinning(r.Thinning))
	}
	if r.Connected {
		opts = append(opts, gesmc.WithConstraint(gesmc.Connected()))
	}
	if len(r.ForbiddenEdges) > 0 {
		opts = append(opts, gesmc.WithConstraint(gesmc.ForbiddenEdges(r.ForbiddenEdges)))
	}
	return opts
}

// engineKey identifies a compiled sampler for pooling: two requests
// share a pooled engine only if the compiled state would be identical —
// same target specification, algorithm, workers, seed, and chain
// schedule. Everything is folded into a 64-bit FNV-1a target digest
// plus the comparable option fields.
type engineKey struct {
	targetHash uint64
	algorithm  gesmc.Algorithm
	workers    int
	seed       uint64
	burnIn     int
	thinning   int
	swapsBits  uint64
}

func (r *Request) engineKey() engineKey {
	h := fnv.New64a()
	buf := make([]byte, 8)
	put := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf)
	}
	// Every slice is length-prefixed: an in-band separator word would
	// collide with a degree of the same value, letting two different
	// targets share a pool key.
	putInts := func(vals []int) {
		put(uint64(len(vals)))
		for _, v := range vals {
			put(uint64(v))
		}
	}
	put(uint64(r.kind))
	put(uint64(r.nodes))
	putInts(r.degrees)
	putInts(r.outDegrees)
	putInts(r.inDegrees)
	putInts(r.left)
	putInts(r.right)
	put(uint64(len(r.edges)))
	for _, e := range r.edges {
		put(uint64(e[0])<<32 | uint64(e[1]))
	}
	// Constraints change the compiled chain, so they are part of the
	// engine identity: a connected-ensemble request must never resume
	// an unconstrained pooled engine (or vice versa). Forbidden edges
	// are hashed in the same canonical form the sampler compiles them
	// to — (min, max) for undirected targets — and sorted, so requests
	// that differ only in pair orientation or list order share a
	// pooled engine.
	if r.Connected {
		put(1)
	} else {
		put(0)
	}
	put(uint64(len(r.ForbiddenEdges)))
	if len(r.ForbiddenEdges) > 0 {
		directed := r.kind == targetArcs || r.kind == targetInOut || r.kind == targetBipartite
		packed := make([]uint64, len(r.ForbiddenEdges))
		for i, e := range r.ForbiddenEdges {
			u, v := e[0], e[1]
			if !directed && u > v {
				u, v = v, u
			}
			packed[i] = uint64(u)<<32 | uint64(v)
		}
		slices.Sort(packed)
		for _, p := range packed {
			put(p)
		}
	}
	return engineKey{
		targetHash: h.Sum64(),
		algorithm:  r.Algorithm,
		workers:    r.Workers,
		seed:       r.Seed,
		burnIn:     r.BurnIn,
		thinning:   r.Thinning,
		swapsBits:  math.Float64bits(r.SwapsPerEdge),
	}
}

// digest folds the full engine identity into one 64-bit value: the
// consistent-hash ring key of the cluster coordinator and the hot-key
// label of pool metrics. Two requests share a digest exactly when they
// would share a pooled engine (modulo FNV collisions).
func (k engineKey) digest() uint64 {
	h := fnv.New64a()
	buf := make([]byte, 8)
	put := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf)
	}
	put(k.targetHash)
	put(uint64(k.algorithm))
	put(uint64(k.workers))
	put(k.seed)
	put(uint64(k.burnIn))
	put(uint64(k.thinning))
	put(k.swapsBits)
	return h.Sum64()
}

// PoolKey computes the engine-pool identity digest of a wire request:
// the value a cluster coordinator consistent-hashes onto its shard
// ring so same-key requests land on the shard holding their burned-in
// engine. Validation failures wrap ErrBadRequest, exactly as FromWire
// reports them.
func PoolKey(wr *wire.SampleRequest) (uint64, error) {
	r, err := FromWire(wr)
	if err != nil {
		return 0, err
	}
	return r.engineKey().digest(), nil
}
