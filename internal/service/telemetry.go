package service

import (
	"io"
	"log/slog"

	"gesmc/internal/telemetry"
)

// svcTelemetry bundles the service's observability instruments. Every
// instrument is nil when telemetry is disabled (Config.NoTelemetry),
// and nil instruments no-op, so the hot path never branches on an
// enabled flag.
type svcTelemetry struct {
	reg *telemetry.Registry
	trc *telemetry.Tracer
	log *slog.Logger

	// Latency histograms (seconds, LatencyBuckets):
	queueWait   *telemetry.Histogram // admission to budget grant
	sampleDur   *telemetry.Histogram // engine wall time per streamed sample
	firstRound  *telemetry.Histogram // kernel phase: first rounds, per sample
	laterRounds *telemetry.Histogram // kernel phase: conflict-resolution rounds
	requestDur  *telemetry.Histogram // whole request, admission to last line

	fastForwards  *telemetry.Counter // pooled-engine resume fast-forwards
	exactRestarts *telemetry.Counter // exact-tier rejected configurations
}

func newSvcTelemetry(enabled bool, logger *slog.Logger) *svcTelemetry {
	tm := &svcTelemetry{log: telemetry.Logger(logger)}
	if !enabled {
		return tm
	}
	tm.reg = telemetry.NewRegistry()
	tm.trc = telemetry.NewTracer()
	b := telemetry.LatencyBuckets
	tm.queueWait = tm.reg.Histogram("gesmc_queue_wait_seconds",
		"Time sampling requests wait for worker-budget tokens.", b)
	tm.sampleDur = tm.reg.Histogram("gesmc_sample_seconds",
		"Engine wall time per streamed sample.", b)
	tm.firstRound = tm.reg.Histogram("gesmc_superstep_first_round_seconds",
		"Kernel phase time per sample: first dependency-free rounds.", b)
	tm.laterRounds = tm.reg.Histogram("gesmc_superstep_later_rounds_seconds",
		"Kernel phase time per sample: conflict-resolution rounds after the first.", b)
	tm.requestDur = tm.reg.Histogram("gesmc_request_seconds",
		"Whole-request latency, admission through last streamed line.", b)
	tm.fastForwards = tm.reg.Counter("gesmc_pool_fast_forwards_total",
		"Pooled engines fast-forwarded to a resume cursor.")
	tm.exactRestarts = tm.reg.Counter("gesmc_exact_restarts_total",
		"Exact-tier configurations rejected for a defect and regenerated.")
	return tm
}

// registerFuncMetrics exposes the counters the service already keeps
// (request/queue/pool atomics) as scrape-time func metrics, so the JSON
// and Prometheus views of /v1/metrics read the same state with no
// double bookkeeping.
func (s *Service) registerFuncMetrics() {
	reg := s.tm.reg
	if reg == nil {
		return
	}
	reg.CounterFunc("gesmc_requests_total", "Accepted sampling requests.",
		func() float64 { return float64(s.met.requestsTotal.Load()) })
	reg.GaugeFunc("gesmc_requests_inflight", "Requests currently executing.",
		func() float64 { return float64(s.met.requestsInflight.Load()) })
	reg.CounterFunc("gesmc_requests_rejected_total", "Admission-control rejections.",
		func() float64 { return float64(s.met.requestsRejected.Load()) })
	reg.CounterFunc("gesmc_requests_failed_total", "Requests terminated by an error.",
		func() float64 { return float64(s.met.requestsFailed.Load()) })
	reg.GaugeFunc("gesmc_queue_depth", "Requests waiting for worker-budget tokens.",
		func() float64 { return float64(s.sched.depth.Load()) })
	reg.GaugeFunc("gesmc_worker_budget", "Global worker budget.",
		func() float64 { return float64(s.sched.budget) })
	reg.GaugeFunc("gesmc_workers_busy", "Worker-budget tokens currently held.",
		func() float64 { return float64(s.sched.busy.Load()) })
	reg.CounterFunc("gesmc_samples_total", "Streamed sample lines.",
		func() float64 { return float64(s.met.samplesTotal.Load()) })
	reg.CounterFunc("gesmc_supersteps_total", "Supersteps run across all requests.",
		func() float64 { return float64(s.met.superstepsTotal.Load()) })
	reg.CounterFunc("gesmc_switches_total", "Switches attempted across all requests.",
		func() float64 { return float64(s.met.switchesTotal.Load()) })
	reg.GaugeFunc("gesmc_pool_engines", "Idle compiled samplers pooled.",
		func() float64 { return float64(s.pool.metrics().Engines) })
	reg.CounterFunc("gesmc_pool_hits_total", "Checkouts that reused a pooled engine.",
		func() float64 { return float64(s.pool.metrics().Hits) })
	reg.CounterFunc("gesmc_pool_misses_total", "Checkouts that compiled a fresh engine.",
		func() float64 { return float64(s.pool.metrics().Misses) })
	reg.CounterFunc("gesmc_pool_evictions_total", "Pooled engines closed by LRU eviction.",
		func() float64 { return float64(s.pool.metrics().Evictions) })
	reg.GaugeFunc("gesmc_started_at_seconds", "Process start, Unix seconds.",
		func() float64 { return float64(s.met.start.UnixMilli()) / 1e3 })
}

// WritePrometheus renders the service's metric families in Prometheus
// text exposition format; false means telemetry is disabled and the
// caller should fall back to the JSON document.
func (s *Service) WritePrometheus(w io.Writer) bool {
	if s.tm.reg == nil {
		return false
	}
	s.tm.reg.WritePrometheus(w)
	return true
}

// TraceDump returns the stored spans of one request trace, by %016x ID.
func (s *Service) TraceDump(id string) ([]telemetry.SpanDump, bool) {
	return s.tm.trc.Dump(id)
}

// Tracer exposes the service's tracer (nil when disabled) so the HTTP
// layer can join a propagated upstream trace before calling Sample.
func (s *Service) Tracer() *telemetry.Tracer {
	return s.tm.trc
}
