package service

import (
	"sync/atomic"
	"time"

	"gesmc/wire"
)

// serviceMetrics aggregates the counters behind GET /v1/metrics. All
// fields are atomics: the hot path (one update per streamed sample)
// must not serialize concurrent jobs.
type serviceMetrics struct {
	start time.Time

	requestsTotal    atomic.Int64
	requestsInflight atomic.Int64
	requestsRejected atomic.Int64
	requestsFailed   atomic.Int64

	samplesTotal    atomic.Int64
	superstepsTotal atomic.Int64
	switchesTotal   atomic.Int64
}

// observeSample records one streamed sample line's engine work.
func (m *serviceMetrics) observeSample(supersteps int, attempted int64) {
	m.samplesTotal.Add(1)
	m.superstepsTotal.Add(int64(supersteps))
	m.switchesTotal.Add(attempted)
}

// snapshot assembles the wire document; the scheduler and pool
// contribute their own gauges.
func (m *serviceMetrics) snapshot(sched *scheduler, pool *enginePool) wire.Metrics {
	uptime := time.Since(m.start)
	out := wire.Metrics{
		RequestsTotal:    m.requestsTotal.Load(),
		RequestsInflight: m.requestsInflight.Load(),
		RequestsRejected: m.requestsRejected.Load(),
		RequestsFailed:   m.requestsFailed.Load(),
		QueueDepth:       sched.depth.Load(),
		WorkerBudget:     sched.budget,
		WorkersBusy:      sched.busy.Load(),
		Pool:             pool.metrics(),
		SamplesTotal:     m.samplesTotal.Load(),
		SuperstepsTotal:  m.superstepsTotal.Load(),
		SwitchesTotal:    m.switchesTotal.Load(),
		UptimeMS:         uptime.Milliseconds(),
		StartedAtMS:      m.start.UnixMilli(),
	}
	if secs := uptime.Seconds(); secs > 0 {
		out.SuperstepsPerSec = float64(out.SuperstepsTotal) / secs
	}
	return out
}
