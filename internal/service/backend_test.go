package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"gesmc/wire"
)

// collect runs one request through a Backend and returns the streamed
// lines plus the terminal error.
func collect(b Backend, req *wire.SampleRequest) ([]wire.Line, error) {
	var lines []wire.Line
	err := b.Sample(context.Background(), req, func(ln wire.Line) error {
		lines = append(lines, ln)
		return nil
	})
	return lines, err
}

// sameSamples compares the payload of two line streams: index, shape,
// and exact edge lists (Stats carry durations and backend identity, so
// they are excluded from bit-identity).
func sameSamples(a, b []wire.Line) error {
	if len(a) != len(b) {
		return fmt.Errorf("line counts %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Index != b[i].Index || a[i].Nodes != b[i].Nodes || a[i].Directed != b[i].Directed ||
			a[i].Error != b[i].Error || fmt.Sprint(a[i].Edges) != fmt.Sprint(b[i].Edges) {
			return fmt.Errorf("line %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	return nil
}

// TestLocalRemoteParity is the first leg of the differential
// acceptance gate: the same seeded request served in-process
// (LocalBackend) and over the wire (RemoteBackend against a fresh
// daemon) yields bit-identical sample lines.
func TestLocalRemoteParity(t *testing.T) {
	req := &wire.SampleRequest{Degrees: []int{4, 3, 3, 2, 2, 2, 1, 1}, Samples: 5, Seed: 7, Workers: 2}

	svcLocal := New(Config{WorkerBudget: 4})
	defer svcLocal.Shutdown(context.Background())
	localLines, err := collect(NewLocalBackend(svcLocal), req)
	if err != nil {
		t.Fatal(err)
	}

	svcRemote := New(Config{ID: "shard-r", WorkerBudget: 4})
	ts := httptest.NewServer(NewHandler(svcRemote))
	defer ts.Close()
	defer svcRemote.Shutdown(context.Background())
	remoteLines, err := collect(NewRemoteBackend(ts.URL, nil), req)
	if err != nil {
		t.Fatal(err)
	}

	if err := sameSamples(localLines, remoteLines); err != nil {
		t.Fatalf("local vs remote: %v", err)
	}
	if len(remoteLines) != 5 {
		t.Fatalf("%d lines", len(remoteLines))
	}
	for i, ln := range remoteLines {
		if ln.Stats == nil || ln.Stats.Backend != "shard-r" {
			t.Fatalf("line %d: backend identity not stamped: %+v", i, ln.Stats)
		}
	}
}

// fakeDaemon serves /v1/healthz ok and delegates /v1/sample to the
// given handler — the scaffolding for protocol-edge tests.
func fakeDaemon(sample http.HandlerFunc) *httptest.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sample", sample)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(wire.Health{Status: "ok"})
	})
	return httptest.NewServer(mux)
}

func TestRemoteBackendTypedErrors(t *testing.T) {
	req := &wire.SampleRequest{Degrees: []int{2, 1, 1}, Samples: 1, Seed: 1}

	// A real daemon's 400 resurfaces as ErrBadRequest.
	svc := New(Config{WorkerBudget: 2})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	defer svc.Shutdown(context.Background())
	if _, err := collect(NewRemoteBackend(ts.URL, nil), &wire.SampleRequest{Degrees: []int{3, 1}}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("non-graphical remote: %v, want ErrBadRequest", err)
	}

	// Synthetic statuses map back to their sentinels.
	statuses := []struct {
		code int
		want error
	}{
		{http.StatusTooManyRequests, ErrOverloaded},
		{http.StatusServiceUnavailable, ErrShuttingDown},
		{http.StatusBadRequest, ErrBadRequest},
		{http.StatusInternalServerError, ErrBackend},
	}
	for _, c := range statuses {
		fake := fakeDaemon(func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, c.code, wire.Error{Error: "synthetic", Code: "x"})
		})
		_, err := collect(NewRemoteBackend(fake.URL, nil), req)
		fake.Close()
		if !errors.Is(err, c.want) {
			t.Fatalf("status %d: err=%v, want %v", c.code, err, c.want)
		}
	}

	// An unreachable peer is a transport failure.
	dead := fakeDaemon(func(w http.ResponseWriter, r *http.Request) {})
	dead.Close()
	if _, err := collect(NewRemoteBackend(dead.URL, nil), req); !errors.Is(err, ErrBackend) {
		t.Fatalf("unreachable: %v, want ErrBackend", err)
	}
}

// TestRemoteBackendMidStreamCut: a backend that dies after its first
// lines yields the delivered prefix plus a typed ErrBackend — the
// signal the coordinator turns into an in-band error line.
func TestRemoteBackendMidStreamCut(t *testing.T) {
	fake := fakeDaemon(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for i := 0; i < 2; i++ {
			enc.Encode(wire.Line{Index: i, Nodes: 3, Edges: [][2]uint32{{0, 1}, {1, 2}}, Stats: &wire.Stats{}})
		}
		w.(http.Flusher).Flush()
		panic(http.ErrAbortHandler) // reset the connection mid-body
	})
	defer fake.Close()

	lines, err := collect(NewRemoteBackend(fake.URL, nil), &wire.SampleRequest{Degrees: []int{1, 1}, Samples: 5})
	if !errors.Is(err, ErrBackend) {
		t.Fatalf("err=%v, want ErrBackend", err)
	}
	if len(lines) != 2 {
		t.Fatalf("%d lines delivered before the cut, want 2", len(lines))
	}
}

// TestRemoteBackendInBandError: a backend-side in-band terminator is
// forwarded verbatim and reported as *StreamError, so a proxy knows
// not to append a second terminator.
func TestRemoteBackendInBandError(t *testing.T) {
	fake := fakeDaemon(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		enc.Encode(wire.Line{Index: 0, Nodes: 2, Edges: [][2]uint32{{0, 1}}, Stats: &wire.Stats{}})
		enc.Encode(wire.Line{Index: 1, Error: "engine exploded", Code: "internal"})
	})
	defer fake.Close()

	lines, err := collect(NewRemoteBackend(fake.URL, nil), &wire.SampleRequest{Degrees: []int{1, 1}, Samples: 2})
	var se *StreamError
	if !errors.As(err, &se) {
		t.Fatalf("err=%v, want *StreamError", err)
	}
	if se.Line.Error != "engine exploded" {
		t.Fatalf("stream error line: %+v", se.Line)
	}
	if len(lines) != 2 || lines[1].Error == "" {
		t.Fatalf("forwarded lines: %+v", lines)
	}
}

// TestBackendHandlerProxyChain stacks the HTTP layer on a
// RemoteBackend pointed at a real daemon: a two-hop proxy. Status
// codes and streams must round-trip unchanged — that is what lets
// coordinators stack transparently.
func TestBackendHandlerProxyChain(t *testing.T) {
	svc := New(Config{ID: "origin", WorkerBudget: 2})
	origin := httptest.NewServer(NewHandler(svc))
	defer origin.Close()
	defer svc.Shutdown(context.Background())

	proxy := httptest.NewServer(NewBackendHandler(NewRemoteBackend(origin.URL, nil)))
	defer proxy.Close()

	// Streaming round-trip through both hops.
	lines, err := collect(NewRemoteBackend(proxy.URL, nil), &wire.SampleRequest{Degrees: []int{3, 2, 2, 1}, Samples: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3 || lines[0].Stats == nil || lines[0].Stats.Backend != "origin" {
		t.Fatalf("proxied lines: %+v", lines)
	}
	// A 400 passes through with its code intact.
	resp, err := http.Post(proxy.URL+"/v1/sample", "application/json", jsonBody(t, wire.SampleRequest{Degrees: []int{3, 1}}))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("proxied status %d, want 400", resp.StatusCode)
	}
	// Health proxies too.
	hb := NewRemoteBackend(proxy.URL, nil)
	h, err := hb.Health(context.Background())
	if err != nil || h.Status != "ok" {
		t.Fatalf("proxied health %+v err %v", h, err)
	}
}

func jsonBody(t *testing.T, v any) io.Reader {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}

// PoolKey is the cluster routing contract: stable for identical
// requests, sensitive to every engine-identity field, and typed on
// invalid requests.
func TestPoolKey(t *testing.T) {
	base := wire.SampleRequest{Degrees: []int{3, 2, 2, 1}, Samples: 4, Seed: 7, Workers: 2}
	k1, err := PoolKey(&base)
	if err != nil {
		t.Fatal(err)
	}
	same := base
	same.Samples = 9 // ensemble size is not part of the engine identity
	k2, err := PoolKey(&same)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("ensemble size changed the pool key")
	}
	diff := base
	diff.Seed = 8
	k3, err := PoolKey(&diff)
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Fatal("seed change kept the pool key")
	}
	if _, err := PoolKey(&wire.SampleRequest{}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("empty request: %v, want ErrBadRequest", err)
	}
}
