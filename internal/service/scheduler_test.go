package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestSchedulerImmediateGrant(t *testing.T) {
	s := newScheduler(4, 2)
	if err := s.acquire(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	if err := s.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if got := s.busy.Load(); got != 4 {
		t.Fatalf("busy=%d", got)
	}
	s.release(3)
	s.release(1)
	if got := s.busy.Load(); got != 0 {
		t.Fatalf("busy=%d after release", got)
	}
}

func TestSchedulerRejectsOverBudgetRequest(t *testing.T) {
	s := newScheduler(2, 8)
	err := s.acquire(context.Background(), 3)
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("err=%v, want ErrBadRequest", err)
	}
}

func TestSchedulerOverload(t *testing.T) {
	s := newScheduler(1, 1)
	if err := s.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	// One waiter fits the queue.
	queued := make(chan error, 1)
	ready := make(chan struct{})
	go func() {
		close(ready)
		queued <- s.acquire(context.Background(), 1)
	}()
	<-ready
	waitFor(t, func() bool { return s.depth.Load() == 1 })
	// The queue is full: the next arrival is rejected immediately.
	if err := s.acquire(context.Background(), 1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err=%v, want ErrOverloaded", err)
	}
	s.release(1)
	if err := <-queued; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	s.release(1)
}

func TestSchedulerFIFOBlocksNarrowBehindWide(t *testing.T) {
	s := newScheduler(4, 8)
	if err := s.acquire(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	// A wide request (needs 4) queues; 1 token is still free, but the
	// narrow request behind it must NOT overtake.
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	grab := func(id, need int) {
		defer wg.Done()
		if err := s.acquire(context.Background(), need); err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		order = append(order, id)
		mu.Unlock()
	}
	wg.Add(1)
	go grab(1, 4)
	waitFor(t, func() bool { return s.depth.Load() == 1 })
	wg.Add(1)
	go grab(2, 1)
	waitFor(t, func() bool { return s.depth.Load() == 2 })

	s.release(3) // 4 free: the wide head runs first
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(order) == 1
	})
	mu.Lock()
	first := order[0]
	mu.Unlock()
	if first != 1 {
		t.Fatalf("narrow request overtook the wide head (order %v)", order)
	}
	s.release(4)
	wg.Wait()
	s.release(1)
}

func TestSchedulerCancelWhileQueued(t *testing.T) {
	s := newScheduler(1, 4)
	if err := s.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() { got <- s.acquire(ctx, 1) }()
	waitFor(t, func() bool { return s.depth.Load() == 1 })
	cancel()
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if s.depth.Load() != 0 {
		t.Fatalf("queue depth %d after cancellation", s.depth.Load())
	}
	// The canceled waiter must not leak its (never-granted) tokens.
	s.release(1)
	if err := s.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	s.release(1)
}

// waitFor polls cond for up to 5 seconds, which keeps the scheduler
// tests free of bare sleeps under -race on slow CI.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
