package core

import (
	"testing"

	"gesmc/internal/gen"
	"gesmc/internal/graph"
	"gesmc/internal/rng"
)

func TestPessimisticSchedulerSameResults(t *testing.T) {
	// Worst-case scheduling may only change round counts, never the
	// decided graph.
	src := rng.NewMT19937(7007)
	for trial := 0; trial < 20; trial++ {
		g, err := gen.SynPldGraph(128, 2.05, src)
		if err != nil {
			t.Fatal(err)
		}
		switches := globalSwitchBatch(g.M(), src)

		seqE, seqLegal := runSequentialReference(g, switches)

		c := g.Clone()
		r := NewSuperstepRunner(c.Edges(), max(len(switches), 1), 4)
		r.Pessimistic = true
		r.Run(switches)
		if r.Legal != seqLegal {
			t.Fatalf("pessimistic accepted %d, sequential %d", r.Legal, seqLegal)
		}
		for i := range seqE {
			if c.Edges()[i] != seqE[i] {
				t.Fatalf("pessimistic mode diverges at edge %d", i)
			}
		}
	}
}

func TestPessimisticRoundsAtLeastNatural(t *testing.T) {
	src := rng.NewMT19937(7008)
	g, err := gen.SynPldGraph(256, 2.05, src)
	if err != nil {
		t.Fatal(err)
	}
	switches := globalSwitchBatch(g.M(), src)

	nat := NewSuperstepRunner(g.Clone().Edges(), max(len(switches), 1), 1)
	nat.Run(switches)

	pes := NewSuperstepRunner(g.Clone().Edges(), max(len(switches), 1), 1)
	pes.Pessimistic = true
	pes.Run(switches)

	if pes.TotalRounds < nat.TotalRounds {
		t.Fatalf("pessimistic rounds %d < natural rounds %d", pes.TotalRounds, nat.TotalRounds)
	}
}

// measurePessimisticRounds runs several full global switches in
// pessimistic mode and returns the average rounds per superstep.
func measurePessimisticRounds(g *graph.Graph, src *rng.MT19937) float64 {
	c := g.Clone()
	m := c.M()
	r := NewSuperstepRunner(c.Edges(), m/2, 2)
	r.Pessimistic = true
	for step := 0; step < 8; step++ {
		perm := rng.Perm(src, m)
		r.Run(GlobalSwitches(perm, m/2, nil))
	}
	return float64(r.TotalRounds) / float64(r.InternalSupersteps)
}

func TestPessimisticRoundsShape(t *testing.T) {
	// Theorem 2 / Corollary 2 vs Theorem 3: a regular graph needs O(1)
	// rounds even under the worst-case scheduler; both stay in single
	// digits at these sizes, with the skewed graph at least comparable.
	src := rng.NewMT19937(7009)

	reg, err := gen.Regular(1024, 8)
	if err != nil {
		t.Fatal(err)
	}
	regRounds := measurePessimisticRounds(reg, src)

	pl, err := gen.SynPldGraph(1024, 2.01, src)
	if err != nil {
		t.Fatal(err)
	}
	plRounds := measurePessimisticRounds(pl, src)

	if regRounds > 6 {
		t.Fatalf("regular graph pessimistic rounds %.2f too high (Corollary 2)", regRounds)
	}
	if plRounds > 14 {
		t.Fatalf("power-law pessimistic rounds %.2f unreasonably high", plRounds)
	}
	if plRounds+0.51 < regRounds {
		t.Fatalf("skewed graph (%.2f) needed clearly fewer rounds than regular (%.2f)", plRounds, regRounds)
	}
}

func TestPessimisticViaRunConfig(t *testing.T) {
	// The config plumbing: results identical to the default scheduler.
	src := rng.NewMT19937(7010)
	base := gen.GNP(96, 0.12, src)
	a, b := base.Clone(), base.Clone()
	if _, err := Run(a, AlgParGlobalES, 5, Config{Workers: 3, Seed: 4}); err != nil {
		t.Fatal(err)
	}
	sb, err := Run(b, AlgParGlobalES, 5, Config{Workers: 3, Seed: 4, PessimisticRounds: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Edges() {
		if a.Edges()[i] != b.Edges()[i] {
			t.Fatal("pessimistic config changed results")
		}
	}
	if sb.TotalRounds < int64(sb.InternalSupersteps) {
		t.Fatal("round accounting broken in pessimistic mode")
	}
}
