package core

import (
	"errors"

	"gesmc/internal/constraint"
	"gesmc/internal/graph"
	"gesmc/internal/hashset"
)

// ErrConstraintUnsupported is returned by NewEngine when a constraint
// spec is configured for an algorithm outside the constrained set
// (SeqES, SeqGlobalES, ParES, ParGlobalES).
var ErrConstraintUnsupported = errors.New("core: algorithm does not support constraints")

// ErrDisconnected is returned by NewEngine when the connectivity
// constraint is configured over a graph that is not connected (alias
// of the constraint package's sentinel, so errors.Is classifies both).
var ErrDisconnected = constraint.ErrDisconnected

// supportsConstraint reports whether the algorithm participates in the
// constraint subsystem. The naive baseline is inexact by design, the
// adjacency-list baselines use a data path without the veto hook, and
// the bucket-sampling SeqES variant is likewise excluded (checked
// separately, since it is a Config flag rather than an Algorithm).
func (a Algorithm) supportsConstraint() bool {
	switch a {
	case AlgSeqES, AlgSeqGlobalES, AlgParES, AlgParGlobalES:
		return true
	}
	return false
}

// constrainedRuntime is the undirected instantiation of the shared
// constraint runtime (see constraint.Runtime), plus the set-adapter
// bindings for the two chain families.
type constrainedRuntime = constraint.Runtime[graph.Edge]

func newConstrainedRuntime(g *graph.Graph, spec *constraint.Spec) (*constrainedRuntime, error) {
	return constraint.NewRuntime(spec, g.N(), g.Edges())
}

// bindHashSet points the runtime's graph ops at a sequential chain's
// hash set.
func bindHashSet(c *constrainedRuntime, S *hashset.Set) {
	c.Ops = constraint.GraphOps[graph.Edge]{
		Contains: S.Contains,
		Insert:   func(e graph.Edge) { S.Insert(e) },
		Erase:    func(e graph.Edge) { S.Erase(e) },
	}
}

// bindRunner installs the local veto on a parallel chain's runner and
// points the graph ops at its concurrent edge set.
func bindRunner(c *constrainedRuntime, r *SuperstepRunner) {
	r.Veto = c.Veto
	c.Ops = constraint.GraphOps[graph.Edge]{
		Contains: r.Set.Contains,
		Insert:   r.Set.InsertUnique,
		Erase:    r.Set.EraseUnique,
	}
}

// addCounters folds one constrained execution's counters into the run
// statistics.
func addCounters(stats *RunStats, c *constraint.Counters) {
	stats.Legal += c.Legal
	stats.Vetoed += c.Vetoed
	stats.EscapeAttempts += c.EscapeAttempts
	stats.EscapeMoves += c.EscapeMoves
}
