package core

import (
	"sort"
	"testing"

	"gesmc/internal/gen"
	"gesmc/internal/graph"
	"gesmc/internal/hashset"
	"gesmc/internal/rng"
)

var allAlgorithms = []Algorithm{
	AlgSeqES, AlgSeqGlobalES, AlgNaiveParES, AlgParES, AlgParGlobalES,
	AlgAdjListES, AlgAdjSortES,
}

func TestAllAlgorithmsPreserveInvariants(t *testing.T) {
	src := rng.NewMT19937(11)
	base, err := gen.SynPldGraph(256, 2.2, src)
	if err != nil {
		t.Fatal(err)
	}
	wantDeg := base.Degrees()
	for _, alg := range allAlgorithms {
		for _, workers := range []int{1, 4} {
			g := base.Clone()
			stats, err := Run(g, alg, 4, Config{Workers: workers, Seed: 99})
			if err != nil {
				t.Fatalf("%v workers=%d: %v", alg, workers, err)
			}
			if err := g.CheckSimple(); err != nil {
				t.Fatalf("%v workers=%d broke simplicity: %v", alg, workers, err)
			}
			gotDeg := g.Degrees()
			for v := range wantDeg {
				if gotDeg[v] != wantDeg[v] {
					t.Fatalf("%v workers=%d changed degree of node %d: %d -> %d",
						alg, workers, v, wantDeg[v], gotDeg[v])
				}
			}
			if stats.Legal > stats.Attempted {
				t.Fatalf("%v: legal %d > attempted %d", alg, stats.Legal, stats.Attempted)
			}
			if stats.Legal == 0 {
				t.Fatalf("%v accepted nothing: suspicious", alg)
			}
		}
	}
}

func TestAllAlgorithmsActuallyRandomize(t *testing.T) {
	src := rng.NewMT19937(12)
	base := gen.GNP(128, 0.08, src)
	for _, alg := range allAlgorithms {
		g := base.Clone()
		if _, err := Run(g, alg, 6, Config{Workers: 2, Seed: 5}); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if graph.SameEdgeSet(base, g) {
			t.Fatalf("%v left the graph unchanged", alg)
		}
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	src := rng.NewMT19937(13)
	base := gen.GNP(64, 0.2, src)
	for _, alg := range []Algorithm{AlgSeqES, AlgSeqGlobalES, AlgParES, AlgParGlobalES} {
		a := base.Clone()
		b := base.Clone()
		if _, err := Run(a, alg, 3, Config{Workers: 4, Seed: 77}); err != nil {
			t.Fatal(err)
		}
		if _, err := Run(b, alg, 3, Config{Workers: 4, Seed: 77}); err != nil {
			t.Fatal(err)
		}
		for i := range a.Edges() {
			if a.Edges()[i] != b.Edges()[i] {
				t.Fatalf("%v not deterministic for fixed seed (edge %d)", alg, i)
			}
		}
	}
}

func TestAdjBaselinesMatchSeqESExactly(t *testing.T) {
	// SeqES, AdjListES and AdjSortES consume randomness identically and
	// implement the identical chain, so for one seed all three must
	// produce bit-identical edge lists.
	src := rng.NewMT19937(14)
	base := gen.GNP(100, 0.1, src)
	ref := base.Clone()
	if _, err := Run(ref, AlgSeqES, 5, Config{Seed: 31}); err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{AlgAdjListES, AlgAdjSortES} {
		g := base.Clone()
		if _, err := Run(g, alg, 5, Config{Seed: 31}); err != nil {
			t.Fatal(err)
		}
		for i := range ref.Edges() {
			if g.Edges()[i] != ref.Edges()[i] {
				t.Fatalf("%v diverges from SeqES at edge %d", alg, i)
			}
		}
	}
}

func TestSeqESBucketSamplingInvariants(t *testing.T) {
	src := rng.NewMT19937(15)
	base := gen.GNP(128, 0.1, src)
	wantDeg := base.Degrees()
	g := base.Clone()
	stats, err := Run(g, AlgSeqES, 5, Config{Seed: 3, SampleViaBuckets: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckSimple(); err != nil {
		t.Fatal(err)
	}
	for v, d := range g.Degrees() {
		if d != wantDeg[v] {
			t.Fatalf("bucket sampling changed degree of %d", v)
		}
	}
	if stats.Legal == 0 {
		t.Fatal("bucket sampling accepted nothing")
	}
}

func TestPrefetchVariantIdenticalResults(t *testing.T) {
	// Touching buckets must not change any decision.
	src := rng.NewMT19937(16)
	base := gen.GNP(80, 0.15, src)
	for _, alg := range []Algorithm{AlgSeqES, AlgSeqGlobalES} {
		a := base.Clone()
		b := base.Clone()
		if _, err := Run(a, alg, 4, Config{Seed: 8}); err != nil {
			t.Fatal(err)
		}
		if _, err := Run(b, alg, 4, Config{Seed: 8, Prefetch: true}); err != nil {
			t.Fatal(err)
		}
		for i := range a.Edges() {
			if a.Edges()[i] != b.Edges()[i] {
				t.Fatalf("%v: prefetch changed the outcome at edge %d", alg, i)
			}
		}
	}
}

func TestGlobalParallelMatchesGlobalSequential(t *testing.T) {
	// Inject identical (π, ℓ) into both implementations: bit-exact
	// equality required, across superstep boundaries.
	src := rng.NewMT19937(17)
	g, err := gen.SynPldGraph(200, 2.1, src)
	if err != nil {
		t.Fatal(err)
	}
	m := g.M()
	seq := g.Clone()
	seqSet := hashset.FromEdges(seq.Edges(), 0.5)
	par := g.Clone()
	runner := NewSuperstepRunner(par.Edges(), m/2, 4)
	var buf []Switch
	for step := 0; step < 12; step++ {
		perm, l := SampleGlobalSwitch(m, 0.01, src)
		_, buf = ExecuteGlobalSequential(seq.Edges(), seqSet, perm, l, buf)
		buf = ExecuteGlobalParallel(runner, perm, l, buf)
		for i := range seq.Edges() {
			if seq.Edges()[i] != par.Edges()[i] {
				t.Fatalf("step %d: divergence at edge %d", step, i)
			}
		}
	}
}

func TestParESMatchesSequentialReplay(t *testing.T) {
	// The full ParES pipeline (prefix detection + supersteps) over a
	// pre-sampled sequence must equal in-order Definition-1 execution.
	src := rng.NewMT19937(18)
	g := gen.GNP(50, 0.2, src)
	m := g.M()
	switches := SampleSwitches(m, 8*m, src)

	seqE, _ := runSequentialReference(g, switches)

	par := g.Clone()
	runner := NewSuperstepRunner(par.Edges(), m/2+1, 4)
	minIdx := make([]int32, m)
	for i := range minIdx {
		minIdx[i] = -1
	}
	pending := switches
	for len(pending) > 0 {
		tlen := FindCollisionFreePrefix(pending, 4, minIdx)
		for _, s := range pending {
			minIdx[s.I] = -1
			minIdx[s.J] = -1
		}
		runner.Run(pending[:tlen])
		pending = pending[tlen:]
	}
	for i := range seqE {
		if par.Edges()[i] != seqE[i] {
			t.Fatalf("ParES pipeline diverges from sequential replay at edge %d", i)
		}
	}
}

// enumeration-based uniformity: degree sequence (1,1,1,1,1,1) has
// exactly 15 states (perfect matchings of K6).
func matchingKey(g *graph.Graph) string {
	edges := append([]graph.Edge(nil), g.Edges()...)
	sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
	key := make([]byte, 0, len(edges)*2)
	for _, e := range edges {
		key = append(key, byte(e.U()), byte(e.V()))
	}
	return string(key)
}

func testUniformOverMatchings(t *testing.T, alg Algorithm, workers, runs, supersteps int, threshold float64) {
	t.Helper()
	base, err := graph.FromPairs(6, [][2]graph.Node{{0, 1}, {2, 3}, {4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for r := 0; r < runs; r++ {
		g := base.Clone()
		if _, err := Run(g, alg, supersteps, Config{Workers: workers, Seed: uint64(r)*2654435761 + 17, LoopProb: 0.05}); err != nil {
			t.Fatal(err)
		}
		counts[matchingKey(g)]++
	}
	if len(counts) != 15 {
		t.Fatalf("%v reached %d of 15 states", alg, len(counts))
	}
	expected := float64(runs) / 15
	var x2 float64
	for _, c := range counts {
		d := float64(c) - expected
		x2 += d * d / expected
	}
	if x2 > threshold {
		t.Fatalf("%v chi-square over states = %.1f (threshold %.1f, df=14)", alg, x2, threshold)
	}
}

func TestUniformitySeqES(t *testing.T) {
	testUniformOverMatchings(t, AlgSeqES, 1, 3000, 20, 60)
}

func TestUniformitySeqGlobalES(t *testing.T) {
	// Theorem 1: G-ES-MC converges to the uniform distribution.
	testUniformOverMatchings(t, AlgSeqGlobalES, 1, 3000, 30, 60)
}

func TestUniformityParES(t *testing.T) {
	testUniformOverMatchings(t, AlgParES, 2, 2000, 20, 60)
}

func TestUniformityParGlobalES(t *testing.T) {
	testUniformOverMatchings(t, AlgParGlobalES, 2, 2000, 30, 60)
}

func TestRunRejectsTinyGraph(t *testing.T) {
	g, err := graph.FromPairs(2, [][2]graph.Node{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range allAlgorithms {
		if _, err := Run(g.Clone(), alg, 1, Config{}); err == nil {
			t.Fatalf("%v accepted a 1-edge graph", alg)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	src := rng.NewMT19937(20)
	g := gen.GNP(64, 0.2, src)
	stats, err := Run(g, AlgParGlobalES, 7, Config{Workers: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Supersteps != 7 || stats.InternalSupersteps != 7 {
		t.Fatalf("superstep accounting: %d / %d", stats.Supersteps, stats.InternalSupersteps)
	}
	if stats.TotalRounds < int64(stats.InternalSupersteps) {
		t.Fatal("fewer rounds than supersteps")
	}
	if stats.MaxRounds < 1 || stats.AvgRounds() < 1 {
		t.Fatal("round stats empty")
	}
	if stats.Duration <= 0 {
		t.Fatal("duration not measured")
	}
	if stats.RejectionRate() < 0 || stats.RejectionRate() > 1 {
		t.Fatalf("rejection rate %v out of range", stats.RejectionRate())
	}
}
