package core_test

import (
	"context"
	"fmt"
	"testing"

	"gesmc/internal/core"
	"gesmc/internal/gen"
	"gesmc/internal/rng"
)

// TestEngineSuperstepAllocs is the engine-level allocation-regression
// gate: a steady-state ParGlobalES superstep — permutation draw, ℓ
// draw, switch construction, and the parallel kernel — must stay at
// (almost) zero heap allocations at every worker count. The historical
// regression lived exactly here, above the kernel: the per-superstep
// permutation allocated its scatter machinery on every call at
// workers > 1 (~66 objects/superstep at w=2), which the kernel-level
// test could not see. The graph is large enough (m >= 2^12) that the
// permutation takes the scatter path, not the sequential fallback.
func TestEngineSuperstepAllocs(t *testing.T) {
	src := rng.NewMT19937(99)
	g, err := gen.SynPldGraph(1<<12, 2.0, src)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() < 1<<12 {
		t.Fatalf("graph too small for the scatter path: m=%d", g.M())
	}
	ctx := context.Background()
	for _, alg := range []core.Algorithm{core.AlgParGlobalES, core.AlgParES} {
		for _, workers := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%v/workers=%d", alg, workers), func(t *testing.T) {
				eng, err := core.NewEngine(g.Clone(), alg, core.Config{
					Workers: workers,
					Seed:    7,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer eng.Close()
				// Warm-up: grow every reused buffer (switch buffer,
				// undecided list, delay buffers, compaction scratch)
				// and let worker stacks reach steady state.
				if _, err := eng.Steps(ctx, 8); err != nil {
					t.Fatal(err)
				}
				allocs := testing.AllocsPerRun(10, func() {
					if _, err := eng.Steps(ctx, 1); err != nil {
						t.Fatal(err)
					}
				})
				if allocs > 2 {
					t.Fatalf("superstep allocates %.1f objects in steady state, want <= 2", allocs)
				}
			})
		}
	}
}
