package core

import (
	"errors"

	"gesmc/internal/graph"
	"gesmc/internal/hashset"
	"gesmc/internal/rng"
)

// ErrTooSmall is returned for graphs with fewer than two edges, on which
// no switch is defined.
var ErrTooSmall = errors.New("core: graph has fewer than 2 edges")

// ExecuteSequential performs the given switches in order on edge list E
// with edge set S, exactly following Definition 1: a switch is rejected
// iff a target is a loop or already exists in E (sources included). It
// returns the number of accepted switches. It is the reference semantics
// against which the parallel algorithms are verified.
func ExecuteSequential(E []graph.Edge, S *hashset.Set, switches []Switch) int64 {
	var legal int64
	for _, sw := range switches {
		e1 := E[sw.I]
		e2 := E[sw.J]
		t3, t4 := graph.SwitchTargets(e1, e2, sw.G)
		if t3.IsLoop() || t4.IsLoop() {
			continue
		}
		// Sources are still in S, so own-target switches (possible when
		// e1 and e2 share a node) reject here, as do genuine conflicts.
		if S.Contains(t3) || S.Contains(t4) {
			continue
		}
		S.Erase(e1)
		S.Erase(e2)
		S.Insert(t3)
		S.Insert(t4)
		E[sw.I] = t3
		E[sw.J] = t4
		legal++
	}
	return legal
}

// pipelineDepth is the number of in-flight switches of the §5.4-style
// software pipeline: targets and hash buckets of the next switches are
// computed (and their buckets touched) ahead of execution.
const pipelineDepth = 4

// executeSequentialPrefetch is ExecuteSequential with the bucket
// pre-touch pipeline enabled. Touching is only a memory hint — staleness
// cannot affect correctness, exactly as with hardware prefetches.
func executeSequentialPrefetch(E []graph.Edge, S *hashset.Set, switches []Switch) int64 {
	var legal int64
	n := len(switches)
	for base := 0; base < n; base += pipelineDepth {
		hi := base + pipelineDepth
		if hi > n {
			hi = n
		}
		// Stage 1: touch the buckets the upcoming switches will probe.
		for k := base; k < hi; k++ {
			sw := switches[k]
			e1, e2 := E[sw.I], E[sw.J]
			t3, t4 := graph.SwitchTargets(e1, e2, sw.G)
			S.Touch(e1)
			S.Touch(e2)
			S.Touch(t3)
			S.Touch(t4)
		}
		// Stage 2: run them for real.
		legal += ExecuteSequential(E, S, switches[base:hi])
	}
	return legal
}

// seqES is the production sequential ES-MC: supersteps * floor(m/2)
// uniformly random switches, executed per Definition 1 (§5's SeqES).
func seqES(g *graph.Graph, supersteps int, cfg Config) (*RunStats, error) {
	m := g.M()
	if m < 2 {
		return nil, ErrTooSmall
	}
	src := rng.NewMT19937(cfg.Seed)
	E := g.Edges()
	S := hashset.FromEdges(E, 0.5)
	stats := &RunStats{}
	total := int64(supersteps) * int64(m/2)

	if cfg.SampleViaBuckets {
		return seqESBuckets(E, S, total, src, stats)
	}

	const chunk = 1 << 12
	buf := make([]Switch, 0, chunk)
	for done := int64(0); done < total; {
		take := total - done
		if take > chunk {
			take = chunk
		}
		buf = buf[:take]
		for k := range buf {
			i, j := rng.TwoDistinct(src, m)
			buf[k] = Switch{I: uint32(i), J: uint32(j), G: rng.Bool(src)}
		}
		if cfg.Prefetch {
			stats.Legal += executeSequentialPrefetch(E, S, buf)
		} else {
			stats.Legal += ExecuteSequential(E, S, buf)
		}
		done += take
	}
	stats.Attempted = total
	return stats, nil
}

// seqESBuckets runs ES-MC sampling the two edges directly from the hash
// set by random-bucket probing (§5.3 second option). The chain is
// equivalent: a switch is an unordered pair of distinct edges plus a
// direction bit, independent of edge-list indexing; the edge array is
// still maintained only implicitly via the set.
func seqESBuckets(E []graph.Edge, S *hashset.Set, total int64, src rng.Source, stats *RunStats) (*RunStats, error) {
	// Keep an index for final write-back: position of each edge in E.
	pos := make(map[graph.Edge]int, len(E))
	for i, e := range E {
		pos[e] = i
	}
	for k := int64(0); k < total; k++ {
		e1 := S.SampleBucket(src)
		e2 := S.SampleBucket(src)
		if e1 == e2 {
			continue // resample counts as rejection (prob 1/m)
		}
		t3, t4 := graph.SwitchTargets(e1, e2, rng.Bool(src))
		if t3.IsLoop() || t4.IsLoop() || S.Contains(t3) || S.Contains(t4) {
			continue
		}
		S.Erase(e1)
		S.Erase(e2)
		S.Insert(t3)
		S.Insert(t4)
		i, j := pos[e1], pos[e2]
		delete(pos, e1)
		delete(pos, e2)
		E[i], E[j] = t3, t4
		pos[t3], pos[t4] = i, j
		stats.Legal++
	}
	stats.Attempted = total
	return stats, nil
}
