package core

import (
	"errors"

	"gesmc/internal/constraint"
	"gesmc/internal/graph"
	"gesmc/internal/hashset"
	"gesmc/internal/rng"
)

// ErrTooSmall is returned for graphs with fewer than two edges, on which
// no switch is defined.
var ErrTooSmall = errors.New("core: graph has fewer than 2 edges")

// ExecuteSequential performs the given switches in order on edge list E
// with edge set S, exactly following Definition 1: a switch is rejected
// iff a target is a loop or already exists in E (sources included). It
// returns the number of accepted switches. It is the reference semantics
// against which the parallel algorithms are verified.
func ExecuteSequential(E []graph.Edge, S *hashset.Set, switches []Switch) int64 {
	var legal int64
	for _, sw := range switches {
		e1 := E[sw.I]
		e2 := E[sw.J]
		t3, t4 := graph.SwitchTargets(e1, e2, sw.G)
		if t3.IsLoop() || t4.IsLoop() {
			continue
		}
		// Sources are still in S, so own-target switches (possible when
		// e1 and e2 share a node) reject here, as do genuine conflicts.
		if S.Contains(t3) || S.Contains(t4) {
			continue
		}
		S.Erase(e1)
		S.Erase(e2)
		S.Insert(t3)
		S.Insert(t4)
		E[sw.I] = t3
		E[sw.J] = t4
		legal++
	}
	return legal
}

// pipelineDepth is the number of in-flight switches of the §5.4-style
// software pipeline: targets and hash buckets of the next switches are
// computed (and their buckets touched) ahead of execution.
const pipelineDepth = 4

// executeSequentialPrefetch is ExecuteSequential with the bucket
// pre-touch pipeline enabled. Touching is only a memory hint — staleness
// cannot affect correctness, exactly as with hardware prefetches.
func executeSequentialPrefetch(E []graph.Edge, S *hashset.Set, switches []Switch) int64 {
	var legal int64
	n := len(switches)
	for base := 0; base < n; base += pipelineDepth {
		hi := base + pipelineDepth
		if hi > n {
			hi = n
		}
		// Stage 1: touch the buckets the upcoming switches will probe.
		for k := base; k < hi; k++ {
			sw := switches[k]
			e1, e2 := E[sw.I], E[sw.J]
			t3, t4 := graph.SwitchTargets(e1, e2, sw.G)
			S.Touch(e1)
			S.Touch(e2)
			S.Touch(t3)
			S.Touch(t4)
		}
		// Stage 2: run them for real.
		legal += ExecuteSequential(E, S, switches[base:hi])
	}
	return legal
}

// seqESStepper is the production sequential ES-MC (§5's SeqES): per
// superstep, floor(m/2) uniformly random switches executed per
// Definition 1 on the persistent edge array plus hash set.
type seqESStepper struct {
	m        int
	E        []graph.Edge
	S        *hashset.Set
	src      rng.Source
	prefetch bool
	buf      []Switch
	cons     *constrainedRuntime
}

const seqChunk = 1 << 12

func newSeqESStepper(g *graph.Graph, cfg Config, cons *constrainedRuntime) stepper {
	E := g.Edges()
	S := hashset.FromEdges(E, 0.5)
	src := rng.NewMT19937(cfg.Seed)
	if cfg.SampleViaBuckets {
		// Keep an index for write-back: position of each edge in E.
		pos := make(map[graph.Edge]int, len(E))
		for i, e := range E {
			pos[e] = i
		}
		return &seqBucketsStepper{m: g.M(), E: E, S: S, src: src, pos: pos}
	}
	if cons != nil {
		bindHashSet(cons, S)
	}
	return &seqESStepper{
		m: g.M(), E: E, S: S, src: src,
		prefetch: cfg.Prefetch,
		buf:      make([]Switch, 0, seqChunk),
		cons:     cons,
	}
}

func (s *seqESStepper) step(stats *RunStats) {
	perStep := int64(s.m / 2)
	for done := int64(0); done < perStep; {
		take := perStep - done
		if take > seqChunk {
			take = seqChunk
		}
		buf := s.buf[:take]
		for k := range buf {
			i, j := rng.TwoDistinct(s.src, s.m)
			buf[k] = Switch{I: uint32(i), J: uint32(j), G: rng.Bool(s.src)}
		}
		switch {
		case s.cons != nil:
			var cc constraint.Counters
			s.cons.ExecuteSequential(s.E, buf, s.src, &cc)
			addCounters(stats, &cc)
		case s.prefetch:
			stats.Legal += executeSequentialPrefetch(s.E, s.S, buf)
		default:
			stats.Legal += ExecuteSequential(s.E, s.S, buf)
		}
		done += take
	}
	stats.Attempted += perStep
}

func (s *seqESStepper) finish() {}

// seqBucketsStepper runs ES-MC sampling the two edges directly from the
// hash set by random-bucket probing (§5.3 second option). The chain is
// equivalent: a switch is an unordered pair of distinct edges plus a
// direction bit, independent of edge-list indexing; the edge array is
// still maintained only implicitly via the set.
type seqBucketsStepper struct {
	m   int
	E   []graph.Edge
	S   *hashset.Set
	src rng.Source
	pos map[graph.Edge]int
}

func (s *seqBucketsStepper) step(stats *RunStats) {
	perStep := int64(s.m / 2)
	for k := int64(0); k < perStep; k++ {
		e1 := s.S.SampleBucket(s.src)
		e2 := s.S.SampleBucket(s.src)
		if e1 == e2 {
			continue // resample counts as rejection (prob 1/m)
		}
		t3, t4 := graph.SwitchTargets(e1, e2, rng.Bool(s.src))
		if t3.IsLoop() || t4.IsLoop() || s.S.Contains(t3) || s.S.Contains(t4) {
			continue
		}
		s.S.Erase(e1)
		s.S.Erase(e2)
		s.S.Insert(t3)
		s.S.Insert(t4)
		i, j := s.pos[e1], s.pos[e2]
		delete(s.pos, e1)
		delete(s.pos, e2)
		s.E[i], s.E[j] = t3, t4
		s.pos[t3], s.pos[t4] = i, j
		stats.Legal++
	}
	stats.Attempted += perStep
}

func (s *seqBucketsStepper) finish() {}
