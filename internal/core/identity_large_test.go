package core

import (
	"testing"

	"gesmc/internal/gen"
	"gesmc/internal/rng"
)

// TestParGlobalLargeWorkerIdentity asserts the bit-identity invariant
// at a size where the per-superstep permutation takes the parallel
// scatter path (m >= 2^12): the edge list after k supersteps must be
// byte-for-byte identical for every worker count and prefetch setting.
// The small differential suites hold this invariant below the scatter
// cutoff; this test pins it where the permutation, the fused phase
// dispatches, and the dynamic chunking actually run multi-worker code
// paths. It would have caught any worker-count dependence in the
// permutation generator.
func TestParGlobalLargeWorkerIdentity(t *testing.T) {
	src := rng.NewMT19937(5150)
	base, err := gen.SynPldGraph(1<<12, 2.0, src)
	if err != nil {
		t.Fatal(err)
	}
	if base.M() < 1<<12 {
		t.Fatalf("graph below scatter cutoff: m=%d", base.M())
	}
	type variant struct {
		workers  int
		prefetch bool
	}
	ref := base.Clone()
	if _, err := Run(ref, AlgParGlobalES, 3, Config{Workers: 1, Seed: 404}); err != nil {
		t.Fatal(err)
	}
	want := ref.Edges()
	for _, v := range []variant{{2, false}, {4, false}, {8, false}, {4, true}} {
		g := base.Clone()
		_, err := Run(g, AlgParGlobalES, 3, Config{
			Workers: v.workers, Seed: 404, Prefetch: v.prefetch,
		})
		if err != nil {
			t.Fatalf("workers=%d prefetch=%v: %v", v.workers, v.prefetch, err)
		}
		got := g.Edges()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d prefetch=%v: edge list diverges from w=1 at index %d",
					v.workers, v.prefetch, i)
			}
		}
	}
}
