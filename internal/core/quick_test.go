package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"gesmc/internal/gen"
	"gesmc/internal/graph"
	"gesmc/internal/rng"
)

// quickGraph is a generator for testing/quick: a random simple graph
// with at least 4 edges.
type quickGraph struct {
	G    *graph.Graph
	Seed uint64
}

// Generate implements quick.Generator.
func (quickGraph) Generate(r *rand.Rand, size int) reflect.Value {
	src := rng.NewSplitMix64(r.Uint64())
	for {
		n := 8 + rng.IntN(src, 60)
		p := 0.05 + 0.4*rng.Float64(src)
		g := gen.GNP(n, p, src)
		if g.M() >= 4 {
			return reflect.ValueOf(quickGraph{G: g, Seed: src.Uint64()})
		}
	}
}

// TestQuickSuperstepEquivalence is the property-based form of the
// differential test: for random graphs and random source-independent
// batches, parallel == sequential, bit-exact.
func TestQuickSuperstepEquivalence(t *testing.T) {
	property := func(qg quickGraph, workers8 uint8) bool {
		workers := int(workers8%8) + 1
		src := rng.NewSplitMix64(qg.Seed)
		switches := globalSwitchBatch(qg.G.M(), src)
		seqE, seqLegal := runSequentialReference(qg.G, switches)
		parE, parLegal, _ := runParallelSuperstep(qg.G, switches, workers)
		if seqLegal != parLegal {
			return false
		}
		for i := range seqE {
			if seqE[i] != parE[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDegreeAndSimplicityInvariant: any algorithm on any random
// graph preserves degrees and simplicity.
func TestQuickDegreeAndSimplicityInvariant(t *testing.T) {
	property := func(qg quickGraph, algPick uint8, workers8 uint8) bool {
		alg := allAlgorithms[int(algPick)%len(allAlgorithms)]
		workers := int(workers8%4) + 1
		g := qg.G.Clone()
		want := g.Degrees()
		if _, err := Run(g, alg, 2, Config{Workers: workers, Seed: qg.Seed}); err != nil {
			return false
		}
		if g.CheckSimple() != nil {
			return false
		}
		got := g.Degrees()
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGlobalSwitchesWellFormed: the switch sequence of any global
// switch touches each index at most once and derives direction bits
// from the permutation order.
func TestQuickGlobalSwitchesWellFormed(t *testing.T) {
	property := func(seed uint64, mRaw uint16, lRaw uint16) bool {
		m := int(mRaw%2000) + 2
		src := rng.NewSplitMix64(seed)
		perm := rng.Perm(src, m)
		l := int(lRaw) % (m/2 + 1)
		switches := GlobalSwitches(perm, l, nil)
		if len(switches) != l {
			return false
		}
		seen := map[uint32]bool{}
		for _, sw := range switches {
			if sw.I == sw.J || seen[sw.I] || seen[sw.J] {
				return false
			}
			seen[sw.I] = true
			seen[sw.J] = true
			if sw.G != (sw.I < sw.J) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSampleSwitchesWellFormed: sampled ES-MC switches use distinct
// in-range indices.
func TestQuickSampleSwitchesWellFormed(t *testing.T) {
	property := func(seed uint64, mRaw uint16, rRaw uint8) bool {
		m := int(mRaw%5000) + 2
		src := rng.NewSplitMix64(seed)
		switches := SampleSwitches(m, int(rRaw), src)
		for _, sw := range switches {
			if sw.I == sw.J || int(sw.I) >= m || int(sw.J) >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPrefixNeverSplitsCollisionFree: the returned prefix is
// always collision-free and maximal.
func TestQuickPrefixNeverSplitsCollisionFree(t *testing.T) {
	property := func(seed uint64, mRaw uint8, rRaw uint8) bool {
		m := int(mRaw%60) + 4
		src := rng.NewSplitMix64(seed)
		switches := SampleSwitches(m, int(rRaw%100)+1, src)
		minIdx := make([]int32, m)
		for i := range minIdx {
			minIdx[i] = -1
		}
		tlen := FindCollisionFreePrefix(switches, 3, minIdx)
		used := map[uint32]bool{}
		for k := 0; k < tlen; k++ {
			if used[switches[k].I] || used[switches[k].J] {
				return false // prefix not collision free
			}
			used[switches[k].I] = true
			used[switches[k].J] = true
		}
		if tlen < len(switches) {
			// Maximality: the next switch must collide.
			next := switches[tlen]
			if !used[next.I] && !used[next.J] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSuperstepDecide(b *testing.B) {
	// Microbenchmark of one full superstep on a mid-size power law.
	src := rng.NewMT19937(1)
	g, err := gen.SynPldGraph(1<<13, 2.1, src)
	if err != nil {
		b.Fatal(err)
	}
	m := g.M()
	r := NewSuperstepRunner(g.Edges(), m/2, 1)
	perm := rng.Perm(src, m)
	switches := GlobalSwitches(perm, m/2, nil)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Run(switches)
	}
	b.SetBytes(int64(len(switches)) * 16)
}

func BenchmarkFindCollisionFreePrefix(b *testing.B) {
	src := rng.NewMT19937(2)
	const m = 1 << 16
	switches := SampleSwitches(m, 4*256, src)
	minIdx := make([]int32, m)
	for i := range minIdx {
		minIdx[i] = -1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FindCollisionFreePrefix(switches, 2, minIdx)
		for _, s := range switches {
			minIdx[s.I] = -1
			minIdx[s.J] = -1
		}
	}
}
