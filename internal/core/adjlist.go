package core

import (
	"sort"

	"gesmc/internal/graph"
	"gesmc/internal/rng"
)

// adjListES is the sequential adjacency-list ES-MC baseline standing in
// for the external tools of Table 4 (see DESIGN.md): NetworKit-style
// (unsorted neighborhoods, linear-scan existence checks) when sorted is
// false, Gengraph-style (sorted neighborhoods, binary-search existence,
// shift-maintained order) when sorted is true. Both run the identical
// chain to SeqES, only on the slower data structure — which is exactly
// the comparison the paper's Table 4 makes.
func adjListES(g *graph.Graph, supersteps int, cfg Config, sorted bool) (*RunStats, error) {
	m := g.M()
	if m < 2 {
		return nil, ErrTooSmall
	}
	src := rng.NewMT19937(cfg.Seed)
	E := g.Edges()

	// Adjacency lists as Go slices per node.
	n := g.N()
	adj := make([][]graph.Node, n)
	deg := g.Degrees()
	for v := 0; v < n; v++ {
		adj[v] = make([]graph.Node, 0, deg[v])
	}
	for _, e := range E {
		adj[e.U()] = append(adj[e.U()], e.V())
		adj[e.V()] = append(adj[e.V()], e.U())
	}
	if sorted {
		for v := range adj {
			sort.Slice(adj[v], func(i, j int) bool { return adj[v][i] < adj[v][j] })
		}
	}

	has := func(u, v graph.Node) bool {
		// Query the smaller neighborhood.
		if len(adj[u]) > len(adj[v]) {
			u, v = v, u
		}
		nb := adj[u]
		if sorted {
			k := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
			return k < len(nb) && nb[k] == v
		}
		for _, w := range nb {
			if w == v {
				return true
			}
		}
		return false
	}
	remove := func(u, v graph.Node) {
		nb := adj[u]
		if sorted {
			k := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
			copy(nb[k:], nb[k+1:])
			adj[u] = nb[:len(nb)-1]
			return
		}
		for i, w := range nb {
			if w == v {
				nb[i] = nb[len(nb)-1]
				adj[u] = nb[:len(nb)-1]
				return
			}
		}
		panic("core: adjacency removal of absent edge")
	}
	insert := func(u, v graph.Node) {
		if sorted {
			nb := adj[u]
			k := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
			nb = append(nb, 0)
			copy(nb[k+1:], nb[k:])
			nb[k] = v
			adj[u] = nb
			return
		}
		adj[u] = append(adj[u], v)
	}

	stats := &RunStats{}
	total := int64(supersteps) * int64(m/2)
	for a := int64(0); a < total; a++ {
		i, j := rng.TwoDistinct(src, m)
		e1, e2 := E[i], E[j]
		t3, t4 := graph.SwitchTargets(e1, e2, rng.Bool(src))
		if t3.IsLoop() || t4.IsLoop() || has(t3.U(), t3.V()) || has(t4.U(), t4.V()) {
			continue
		}
		remove(e1.U(), e1.V())
		remove(e1.V(), e1.U())
		remove(e2.U(), e2.V())
		remove(e2.V(), e2.U())
		insert(t3.U(), t3.V())
		insert(t3.V(), t3.U())
		insert(t4.U(), t4.V())
		insert(t4.V(), t4.U())
		E[i], E[j] = t3, t4
		stats.Legal++
	}
	stats.Attempted = total
	return stats, nil
}
