package core

import (
	"sort"

	"gesmc/internal/graph"
	"gesmc/internal/rng"
)

// adjListStepper is the sequential adjacency-list ES-MC baseline
// standing in for the external tools of Table 4 (see DESIGN.md):
// NetworKit-style (unsorted neighborhoods, linear-scan existence checks)
// when sorted is false, Gengraph-style (sorted neighborhoods,
// binary-search existence, shift-maintained order) when sorted is true.
// Both run the identical chain to SeqES, only on the slower data
// structure — which is exactly the comparison the paper's Table 4 makes.
type adjListStepper struct {
	m      int
	E      []graph.Edge
	src    rng.Source
	adj    [][]graph.Node
	sorted bool
}

func newAdjListStepper(g *graph.Graph, cfg Config, sorted bool) stepper {
	E := g.Edges()
	n := g.N()
	adj := make([][]graph.Node, n)
	deg := g.Degrees()
	for v := 0; v < n; v++ {
		adj[v] = make([]graph.Node, 0, deg[v])
	}
	for _, e := range E {
		adj[e.U()] = append(adj[e.U()], e.V())
		adj[e.V()] = append(adj[e.V()], e.U())
	}
	if sorted {
		for v := range adj {
			sort.Slice(adj[v], func(i, j int) bool { return adj[v][i] < adj[v][j] })
		}
	}
	return &adjListStepper{
		m: g.M(), E: E,
		src:    rng.NewMT19937(cfg.Seed),
		adj:    adj,
		sorted: sorted,
	}
}

func (s *adjListStepper) step(stats *RunStats) {
	perStep := int64(s.m / 2)
	for a := int64(0); a < perStep; a++ {
		i, j := rng.TwoDistinct(s.src, s.m)
		e1, e2 := s.E[i], s.E[j]
		t3, t4 := graph.SwitchTargets(e1, e2, rng.Bool(s.src))
		if t3.IsLoop() || t4.IsLoop() || s.has(t3.U(), t3.V()) || s.has(t4.U(), t4.V()) {
			continue
		}
		s.remove(e1.U(), e1.V())
		s.remove(e1.V(), e1.U())
		s.remove(e2.U(), e2.V())
		s.remove(e2.V(), e2.U())
		s.insert(t3.U(), t3.V())
		s.insert(t3.V(), t3.U())
		s.insert(t4.U(), t4.V())
		s.insert(t4.V(), t4.U())
		s.E[i], s.E[j] = t3, t4
		stats.Legal++
	}
	stats.Attempted += perStep
}

func (s *adjListStepper) finish() {}

func (s *adjListStepper) has(u, v graph.Node) bool {
	// Query the smaller neighborhood.
	if len(s.adj[u]) > len(s.adj[v]) {
		u, v = v, u
	}
	nb := s.adj[u]
	if s.sorted {
		k := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
		return k < len(nb) && nb[k] == v
	}
	for _, w := range nb {
		if w == v {
			return true
		}
	}
	return false
}

func (s *adjListStepper) remove(u, v graph.Node) {
	nb := s.adj[u]
	if s.sorted {
		k := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
		copy(nb[k:], nb[k+1:])
		s.adj[u] = nb[:len(nb)-1]
		return
	}
	for i, w := range nb {
		if w == v {
			nb[i] = nb[len(nb)-1]
			s.adj[u] = nb[:len(nb)-1]
			return
		}
	}
	panic("core: adjacency removal of absent edge")
}

func (s *adjListStepper) insert(u, v graph.Node) {
	if s.sorted {
		nb := s.adj[u]
		k := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
		nb = append(nb, 0)
		copy(nb[k+1:], nb[k:])
		nb[k] = v
		s.adj[u] = nb
		return
	}
	s.adj[u] = append(s.adj[u], v)
}
