package core

import (
	"context"
	"errors"
	"time"

	"gesmc/internal/graph"
	"gesmc/internal/switching"
)

// ErrUnknownAlgorithm is returned by NewEngine for an Algorithm value
// outside the defined enum.
var ErrUnknownAlgorithm = errors.New("core: unknown algorithm")

// stepper is the per-algorithm resumable state behind an Engine. step
// advances exactly one superstep (⌊m/2⌋ switch attempts for ES-MC
// chains, one global switch for G-ES-MC chains), accumulating counters
// into stats; finish publishes any privately buffered edge state back to
// the graph's edge list (a no-op for algorithms that mutate it in
// place).
type stepper interface {
	step(stats *RunStats)
	finish()
}

// Engine is a resumable Markov-chain run: the graph is compiled once
// into the algorithm's working state (hash set, dependency table,
// adjacency lists, RNG streams) by NewEngine, after which Steps advances
// the chain in arbitrarily many increments without rebuilding anything.
// A single Steps(ctx, k) call is bit-identical to the one-shot
// Run(g, alg, k, cfg); splitting the same k across several calls yields
// the same final edge list for every algorithm, because the switch
// sequence drawn from the seed does not depend on the partitioning and
// every implementation realizes sequential Definition-1 semantics over
// that sequence.
type Engine struct {
	alg   Algorithm
	st    stepper
	stats RunStats
}

// NewEngine compiles the graph into the working state of the selected
// algorithm. The graph is retained and mutated in place by Steps.
func NewEngine(g *graph.Graph, alg Algorithm, cfg Config) (*Engine, error) {
	if g.M() < 2 {
		return nil, ErrTooSmall
	}
	var cons *constrainedRuntime
	if cfg.Constraint.Active() {
		if !alg.supportsConstraint() || cfg.SampleViaBuckets {
			return nil, ErrConstraintUnsupported
		}
		var err error
		cons, err = newConstrainedRuntime(g, cfg.Constraint)
		if err != nil {
			return nil, err
		}
	}
	var st stepper
	switch alg {
	case AlgSeqES:
		st = newSeqESStepper(g, cfg, cons)
	case AlgSeqGlobalES:
		st = newSeqGlobalStepper(g, cfg, cons)
	case AlgNaiveParES:
		st = newNaiveStepper(g, cfg)
	case AlgParES:
		st = newParESStepper(g, cfg, cons)
	case AlgParGlobalES:
		st = newParGlobalStepper(g, cfg, cons)
	case AlgAdjListES:
		st = newAdjListStepper(g, cfg, false)
	case AlgAdjSortES:
		st = newAdjListStepper(g, cfg, true)
	default:
		return nil, ErrUnknownAlgorithm
	}
	e := &Engine{alg: alg, st: st}
	e.stats.Algorithm = alg
	return e, nil
}

// releaser is implemented by steppers that own a persistent worker
// gang (parallel chains); Close parks the gang deterministically.
type releaser interface{ release() }

// Close releases the engine's persistent worker gang, if the selected
// algorithm owns one. The engine must not be used afterwards. Closing
// is optional — leaked gangs are reclaimed by a finalizer — but
// deterministic for callers that create many engines.
func (e *Engine) Close() {
	if r, ok := e.st.(releaser); ok {
		r.release()
	}
}

// Algorithm returns the algorithm the engine runs.
func (e *Engine) Algorithm() Algorithm { return e.alg }

// Stats returns the counters accumulated over the engine's lifetime.
func (e *Engine) Stats() RunStats { return e.stats }

// Steps advances the chain by k supersteps and returns the statistics of
// exactly this increment. Cancellation is honored at superstep
// boundaries: on ctx expiry the graph is left in the valid state after
// the last completed superstep and ctx.Err() is returned alongside the
// partial statistics.
func (e *Engine) Steps(ctx context.Context, k int) (RunStats, error) {
	start := time.Now()
	delta := RunStats{Algorithm: e.alg}
	var err error
	for i := 0; i < k; i++ {
		if cerr := ctx.Err(); cerr != nil {
			err = cerr
			break
		}
		e.st.step(&delta)
		delta.Supersteps++
	}
	e.st.finish()
	delta.Duration = time.Since(start)
	e.stats.Supersteps += delta.Supersteps
	e.stats.Attempted += delta.Attempted
	e.stats.Legal += delta.Legal
	e.stats.InternalSupersteps += delta.InternalSupersteps
	e.stats.TotalRounds += delta.TotalRounds
	if delta.MaxRounds > e.stats.MaxRounds {
		e.stats.MaxRounds = delta.MaxRounds
	}
	e.stats.FirstRoundTime += delta.FirstRoundTime
	e.stats.LaterRoundsTime += delta.LaterRoundsTime
	e.stats.Vetoed += delta.Vetoed
	e.stats.EscapeAttempts += delta.EscapeAttempts
	e.stats.EscapeMoves += delta.EscapeMoves
	e.stats.Duration += delta.Duration
	return delta, err
}

// runnerSnap tracks the last-seen kernel counters of a SuperstepRunner
// so that per-increment deltas can be carved out of its cumulative
// totals. MaxRounds stays cumulative (a maximum does not decompose into
// deltas).
type runnerSnap struct {
	prev switching.Stats
}

func (s *runnerSnap) flushDelta(r *SuperstepRunner, stats *RunStats) {
	d := r.Stats.Sub(s.prev)
	s.prev = r.Stats
	stats.Legal += d.Legal
	stats.InternalSupersteps += d.InternalSupersteps
	stats.TotalRounds += d.TotalRounds
	if d.MaxRounds > stats.MaxRounds {
		stats.MaxRounds = d.MaxRounds
	}
	stats.FirstRoundTime += d.FirstRoundTime
	stats.LaterRoundsTime += d.LaterRoundsTime
	// A rolled-back switch was ultimately rejected by the constraint
	// layer, same as a decide-phase veto.
	stats.Vetoed += d.Vetoed + d.RolledBack
}
