package core

import (
	"context"
	"testing"

	"gesmc/internal/gen"
	"gesmc/internal/rng"
)

// TestEngineSplitStepsMatchOneShot: advancing an Engine in increments
// must reproduce the one-shot Run edge list bit for bit, for every
// algorithm. This is the resumability contract the public Sampler
// builds on.
func TestEngineSplitStepsMatchOneShot(t *testing.T) {
	src := rng.NewMT19937(99)
	g, err := gen.SynPldGraph(1<<9, 2.3, src)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 12
	for _, alg := range []Algorithm{
		AlgSeqES, AlgSeqGlobalES, AlgParES, AlgParGlobalES, AlgAdjListES, AlgAdjSortES,
	} {
		cfg := Config{Seed: 7, Workers: 3}
		oneShot := g.Clone()
		rs, err := Run(oneShot, alg, steps, cfg)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}

		split := g.Clone()
		e, err := NewEngine(split, alg, cfg)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		var attempted, legal int64
		for _, k := range []int{1, 4, 7} {
			d, err := e.Steps(context.Background(), k)
			if err != nil {
				t.Fatalf("%v: %v", alg, err)
			}
			attempted += d.Attempted
			legal += d.Legal
		}
		a, b := oneShot.Edges(), split.Edges()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: split-steps edge list diverges at %d", alg, i)
			}
		}
		if attempted != rs.Attempted || legal != rs.Legal {
			t.Fatalf("%v: split stats (%d, %d) != one-shot (%d, %d)",
				alg, attempted, legal, rs.Attempted, rs.Legal)
		}
		if st := e.Stats(); st.Supersteps != steps || st.Attempted != attempted {
			t.Fatalf("%v: cumulative stats wrong: %+v", alg, st)
		}
	}
}

// TestEngineBucketsResumable: the §5.3 bucket-sampling variant carries a
// position index across increments; make sure it stays consistent.
func TestEngineBucketsResumable(t *testing.T) {
	g := gen.GNP(256, 0.08, rng.NewMT19937(5))
	cfg := Config{Seed: 3, SampleViaBuckets: true}
	oneShot := g.Clone()
	if _, err := Run(oneShot, AlgSeqES, 8, cfg); err != nil {
		t.Fatal(err)
	}
	split := g.Clone()
	e, err := NewEngine(split, AlgSeqES, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := e.Steps(context.Background(), 2); err != nil {
			t.Fatal(err)
		}
	}
	a, b := oneShot.Edges(), split.Edges()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("bucket-sampling engine diverges at %d", i)
		}
	}
	if err := split.CheckSimple(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineContextCancellation: a cancelled context stops the engine at
// a superstep boundary, returning partial stats and a valid graph.
func TestEngineContextCancellation(t *testing.T) {
	g := gen.GNP(256, 0.08, rng.NewMT19937(6))
	e, err := NewEngine(g, AlgParGlobalES, Config{Seed: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d, err := e.Steps(ctx, 10)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d.Supersteps != 0 {
		t.Fatalf("cancelled before start but ran %d supersteps", d.Supersteps)
	}
	if err := g.CheckSimple(); err != nil {
		t.Fatal(err)
	}
	// The engine remains usable after cancellation.
	if _, err := e.Steps(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Supersteps != 2 {
		t.Fatalf("supersteps after resume = %d, want 2", st.Supersteps)
	}
}

// TestEngineNaiveWriteBack: NaiveParES buffers edges privately; the
// graph must hold the current state after every Steps increment.
func TestEngineNaiveWriteBack(t *testing.T) {
	g := gen.GNP(256, 0.08, rng.NewMT19937(8))
	deg := g.Degrees()
	e, err := NewEngine(g, AlgNaiveParES, Config{Seed: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := e.Steps(context.Background(), 1); err != nil {
			t.Fatal(err)
		}
		if err := g.CheckSimple(); err != nil {
			t.Fatalf("increment %d: %v", i, err)
		}
		for v, d := range g.Degrees() {
			if d != deg[v] {
				t.Fatalf("increment %d changed degree of %d", i, v)
			}
		}
	}
}
