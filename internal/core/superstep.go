package core

import (
	"time"

	"gesmc/internal/conc"
	"gesmc/internal/graph"
)

// SuperstepRunner executes supersteps of source-independent switches in
// parallel (Algorithm 1, ParallelSuperstep). It owns the concurrent edge
// set and the dependency table, both reused across supersteps.
//
// Semantics refinement over the printed pseudocode (see DESIGN.md §2):
// a switch whose target coincides with one of its own source edges is
// decided illegal, matching Definition 1 exactly ("already exists in E").
// The printed Algorithm 1 would accept such switches as no-ops; both
// choices yield the same graphs, but ours additionally makes the edge
// list bit-identical to sequential execution, which the differential
// tests exploit.
type SuperstepRunner struct {
	E       []graph.Edge
	Set     *conc.EdgeSet
	table   *conc.DepTable
	workers int

	// Pessimistic simulates the worst-case scheduler of Theorems 2-3:
	// status writes become visible only at round barriers, so every
	// dependency on a same-round switch forces a delay. Rounds counted
	// in this mode are the quantity the paper's theory bounds
	// (expected <= 4*Delta^2/m, O(1) for regular graphs). The decided
	// graph is identical either way; only the round structure differs.
	Pessimistic bool

	undecided []int32
	delayed   [][]int32
	decisions [][]decision
	legalTot  []paddedCounter

	// Stats accumulated across supersteps.
	InternalSupersteps int
	TotalRounds        int64
	MaxRounds          int
	Legal              int64
	FirstRoundTime     time.Duration
	LaterRoundsTime    time.Duration
}

// paddedCounter is a per-worker counter padded to its own cache line.
type paddedCounter struct {
	v int64
	_ [7]int64
}

// decision is a deferred status store used by the pessimistic scheduler.
type decision struct {
	k  int32
	st uint32
}

// NewSuperstepRunner prepares a runner for graph edge list E, supporting
// supersteps of up to maxSwitches switches.
func NewSuperstepRunner(E []graph.Edge, maxSwitches, workers int) *SuperstepRunner {
	if workers < 1 {
		workers = 1
	}
	set := conc.NewEdgeSet(len(E) * 2)
	set.BuildFrom(E, workers)
	r := &SuperstepRunner{
		E:         E,
		Set:       set,
		table:     conc.NewDepTable(maxSwitches),
		workers:   workers,
		delayed:   make([][]int32, workers),
		decisions: make([][]decision, workers),
		legalTot:  make([]paddedCounter, workers),
	}
	return r
}

// Run performs one superstep: the switches must be free of source
// dependencies (each edge index appears at most once). The edge list and
// edge set are updated to the post-superstep state.
func (r *SuperstepRunner) Run(switches []Switch) {
	n := len(switches)
	if n == 0 {
		return
	}
	w := r.workers
	t := r.table
	t.Reset(n, w)

	// Phase 1 (Algorithm 1, lines 1-6): store the four dependency
	// tuples of every switch. Tuple slots are deterministic (4k..4k+3):
	// keys[4k]=e1, +1=e2, +2=e3, +3=e4, which decide() reads back.
	conc.Blocks(n, w, func(_, lo, hi int) {
		for k := lo; k < hi; k++ {
			sw := switches[k]
			e1 := r.E[sw.I]
			e2 := r.E[sw.J]
			t3, t4 := graph.SwitchTargets(e1, e2, sw.G)
			t.Store(k, 0, e1, conc.KindErase)
			t.Store(k, 1, e2, conc.KindErase)
			t.Store(k, 2, t3, conc.KindInsert)
			t.Store(k, 3, t4, conc.KindInsert)
		}
	})

	// Phase 2 (lines 7-35): decide switches in rounds.
	undecided := r.undecided[:0]
	for k := 0; k < n; k++ {
		undecided = append(undecided, int32(k))
	}
	rounds := 0
	for len(undecided) > 0 {
		roundStart := time.Now()
		rounds++
		for i := range r.delayed {
			r.delayed[i] = r.delayed[i][:0]
			r.decisions[i] = r.decisions[i][:0]
		}
		conc.Blocks(len(undecided), w, func(worker, lo, hi int) {
			var legal int64
			for _, k := range undecided[lo:hi] {
				st := r.decide(switches[k], int(k))
				switch st {
				case conc.StatusLegal:
					legal++
				case conc.StatusUndecided:
					r.delayed[worker] = append(r.delayed[worker], k)
				}
				if st != conc.StatusUndecided {
					if r.Pessimistic {
						// Defer visibility to the round barrier: the
						// worst-case scheduler of the analysis.
						r.decisions[worker] = append(r.decisions[worker], decision{k: k, st: st})
					} else {
						t.Status[int(k)].Store(st)
					}
				}
			}
			r.legalTot[worker].v += legal
		})
		if r.Pessimistic {
			for _, ds := range r.decisions {
				for _, d := range ds {
					t.Status[int(d.k)].Store(d.st)
				}
			}
		}
		undecided = undecided[:0]
		for _, d := range r.delayed {
			undecided = append(undecided, d...)
		}
		if rounds == 1 {
			r.FirstRoundTime += time.Since(roundStart)
		} else {
			r.LaterRoundsTime += time.Since(roundStart)
		}
	}
	r.undecided = undecided

	// Phase 3: apply the accepted switches to the edge set. Erasures
	// first, then insertions, so an edge that is erased by one switch
	// and re-inserted by another nets out present.
	conc.Blocks(n, w, func(_, lo, hi int) {
		for k := lo; k < hi; k++ {
			if t.Status[k].Load() != conc.StatusLegal {
				continue
			}
			base := 4 * k
			r.Set.EraseUnique(graph.Edge(t.Key(base)))
			r.Set.EraseUnique(graph.Edge(t.Key(base + 1)))
		}
	})
	conc.Blocks(n, w, func(_, lo, hi int) {
		for k := lo; k < hi; k++ {
			if t.Status[k].Load() != conc.StatusLegal {
				continue
			}
			base := 4 * k
			r.Set.InsertUnique(graph.Edge(t.Key(base + 2)))
			r.Set.InsertUnique(graph.Edge(t.Key(base + 3)))
		}
	})
	if r.Set.NeedsCompact() {
		r.Set.Compact(r.E, w)
	}

	for i := range r.legalTot {
		r.Legal += r.legalTot[i].v
		r.legalTot[i].v = 0
	}
	r.InternalSupersteps++
	r.TotalRounds += int64(rounds)
	if rounds > r.MaxRounds {
		r.MaxRounds = rounds
	}
}

// decide attempts to decide switch k (Algorithm 1, lines 10-33) and
// returns its resulting status. Legal switches rewire the edge list
// immediately; the caller publishes the status (immediately, or at the
// round barrier under the pessimistic scheduler), which is the
// linearization point observed by dependent switches.
func (r *SuperstepRunner) decide(sw Switch, k int) uint32 {
	t := r.table
	base := 4 * k
	e1 := graph.Edge(t.Key(base))
	e2 := graph.Edge(t.Key(base + 1))
	t3 := graph.Edge(t.Key(base + 2))
	t4 := graph.Edge(t.Key(base + 3))

	st := conc.StatusLegal
	if t3.IsLoop() || t4.IsLoop() || e1 == e2 ||
		t3 == e1 || t3 == e2 || t4 == e1 || t4 == e2 {
		// Loops, or targets equal to own sources ("already exists in
		// E" per Definition 1); e1 == e2 can only arise from a caller
		// bug but is rejected defensively.
		st = conc.StatusIllegal
	} else {
		delay := false
		for _, target := range [2]graph.Edge{t3, t4} {
			if p, ok := t.EraseTuple(target); ok {
				if p == k {
					// Own source: already handled above; unreachable.
					st = conc.StatusIllegal
					break
				}
				if k < p {
					// Erased only by a later switch: the target
					// exists at σ_k's turn (line 19, k < p).
					st = conc.StatusIllegal
					break
				}
				switch t.Status[p].Load() {
				case conc.StatusIllegal:
					// σ_p did not erase the target after all.
					st = conc.StatusIllegal
				case conc.StatusUndecided:
					delay = true // line 24
				}
				if st == conc.StatusIllegal {
					break
				}
			} else if r.Set.Contains(target) {
				// In the graph and not sourced by this superstep:
				// the implicit (e, ∞, erase, illegal) tuple.
				st = conc.StatusIllegal
				break
			}
			if q, sq, ok := t.MinInsert(target); ok && q < k {
				if sq == conc.StatusLegal {
					st = conc.StatusIllegal // line 21
					break
				}
				if sq == conc.StatusUndecided {
					delay = true // line 26
				}
			}
		}
		if st != conc.StatusIllegal && delay {
			return conc.StatusUndecided // re-examined next round
		}
	}

	if st == conc.StatusLegal {
		r.E[sw.I] = t3
		r.E[sw.J] = t4
	}
	return st
}
