package core

import (
	"gesmc/internal/graph"
	"gesmc/internal/switching"
)

// SuperstepRunner executes supersteps of source-independent switches in
// parallel (Algorithm 1, ParallelSuperstep). It is the undirected
// instantiation of the generic kernel in internal/switching, which owns
// the dependency-table phases, the round loop, the pessimistic
// worst-case scheduler (Theorems 2-3), and the per-worker padded
// counters; see that package and DESIGN.md for the shared machinery.
type SuperstepRunner = switching.Runner[graph.Edge]

// NewSuperstepRunner prepares a runner for graph edge list E, supporting
// supersteps of up to maxSwitches switches.
func NewSuperstepRunner(E []graph.Edge, maxSwitches, workers int) *SuperstepRunner {
	return switching.NewRunner(E, maxSwitches, workers)
}
