package core

import (
	"gesmc/internal/constraint"
	"gesmc/internal/graph"
	"gesmc/internal/rng"
)

// ExecuteGlobalParallel performs one global switch Γ = (π, ℓ) using the
// given runner. A global switch has no source dependencies by definition
// (each edge index occurs at most once in π), so it is exactly one
// ParallelSuperstep (Algorithm 3).
func ExecuteGlobalParallel(r *SuperstepRunner, perm []uint32, l int, buf []Switch) []Switch {
	buf = GlobalSwitches(perm, l, buf)
	r.Run(buf)
	return buf
}

// parGlobalStepper is the production ParGlobalES (Algorithm 3): per
// superstep, draw a parallel random permutation of the edge indices and
// ℓ ~ Binom(⌊m/2⌋, 1−P_L), then run one ParallelSuperstep. The
// per-superstep permutation seeds are drawn lazily from the same
// SplitMix64 stream the one-shot implementation pre-computed, so a
// resumed engine replays the identical chain.
type parGlobalStepper struct {
	m, w     int
	src      rng.Source      // binomial ℓ draws
	seedSrc  *rng.SplitMix64 // per-superstep permutation seeds
	runner   *SuperstepRunner
	perm     *rng.PermGen
	dispatch rng.Dispatch // runner's gang, stored once (alloc-free steps)
	buf      []Switch
	pl       float64
	snap     runnerSnap
	cons     *constrainedRuntime
}

func newParGlobalStepper(g *graph.Graph, cfg Config, cons *constrainedRuntime) stepper {
	m := g.M()
	w := cfg.workers()
	runner := NewSuperstepRunner(g.Edges(), m/2, w)
	runner.Pessimistic = cfg.PessimisticRounds
	runner.Prefetch = cfg.Prefetch
	if cfg.ChunkBytes > 0 {
		runner.Pool().SetChunkBytes(cfg.ChunkBytes)
	}
	if cons != nil {
		bindRunner(cons, runner)
	}
	return &parGlobalStepper{
		m: m, w: w,
		src:      rng.NewMT19937(cfg.Seed),
		seedSrc:  rng.NewSplitMix64(cfg.Seed ^ 0xA5A5A5A5A5A5A5A5),
		runner:   runner,
		perm:     rng.NewPermGen(m),
		dispatch: runner.Pool().Blocks,
		buf:      make([]Switch, 0, m/2),
		pl:       cfg.loopProb(),
		cons:     cons,
	}
}

func (s *parGlobalStepper) step(stats *RunStats) {
	perm := s.perm.Generate(s.seedSrc.Uint64(), s.dispatch)
	l := int(rng.BinomialComplementSmall(s.src, int64(s.m/2), s.pl))
	s.buf = ExecuteGlobalParallel(s.runner, perm, l, s.buf)
	stats.Attempted += int64(l)
	if s.cons != nil {
		var cc constraint.Counters
		s.cons.AfterSuperstep(s.runner, s.buf, s.src, &cc)
		addCounters(stats, &cc)
	}
	s.snap.flushDelta(s.runner, stats)
}

func (s *parGlobalStepper) finish() {}

func (s *parGlobalStepper) release() { s.runner.Release() }
