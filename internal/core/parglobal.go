package core

import (
	"gesmc/internal/graph"
	"gesmc/internal/rng"
)

// ExecuteGlobalParallel performs one global switch Γ = (π, ℓ) using the
// given runner. A global switch has no source dependencies by definition
// (each edge index occurs at most once in π), so it is exactly one
// ParallelSuperstep (Algorithm 3).
func ExecuteGlobalParallel(r *SuperstepRunner, perm []uint32, l int, buf []Switch) []Switch {
	buf = GlobalSwitches(perm, l, buf)
	r.Run(buf)
	return buf
}

// parGlobalES is the production ParGlobalES (Algorithm 3): per
// superstep, draw a parallel random permutation of the edge indices and
// ℓ ~ Binom(⌊m/2⌋, 1−P_L), then run one ParallelSuperstep.
func parGlobalES(g *graph.Graph, supersteps int, cfg Config) (*RunStats, error) {
	m := g.M()
	if m < 2 {
		return nil, ErrTooSmall
	}
	w := cfg.workers()
	src := rng.NewMT19937(cfg.Seed)
	seeds := rng.PerWorkerSeeds(cfg.Seed^0xA5A5A5A5A5A5A5A5, supersteps+1)
	runner := NewSuperstepRunner(g.Edges(), m/2, w)
	runner.Pessimistic = cfg.PessimisticRounds
	buf := make([]Switch, 0, m/2)
	pl := cfg.loopProb()
	stats := &RunStats{}

	for step := 0; step < supersteps; step++ {
		perm := rng.ParallelPerm(seeds[step], m, w)
		l := int(rng.BinomialComplementSmall(src, int64(m/2), pl))
		buf = ExecuteGlobalParallel(runner, perm, l, buf)
		stats.Attempted += int64(l)
	}
	runner.FlushStats(stats)
	return stats, nil
}

// FlushStats copies the runner's accumulated instrumentation into stats.
func (r *SuperstepRunner) FlushStats(stats *RunStats) {
	stats.Legal += r.Legal
	stats.InternalSupersteps += r.InternalSupersteps
	stats.TotalRounds += r.TotalRounds
	if r.MaxRounds > stats.MaxRounds {
		stats.MaxRounds = r.MaxRounds
	}
	stats.FirstRoundTime += r.FirstRoundTime
	stats.LaterRoundsTime += r.LaterRoundsTime
}
