// Package core implements the switching Markov chains of the paper:
//
//   - SeqES: fast sequential ES-MC (Definition 1) on an edge array plus
//     hash set (§5).
//   - SeqGlobalES: sequential G-ES-MC (Definition 3).
//   - NaiveParES: the inexact parallel baseline that only synchronizes
//     concurrent accesses to individual edges (§5.1).
//   - ParES: the exact parallelization of ES-MC (Algorithm 2).
//   - ParGlobalES: the exact parallelization of G-ES-MC (Algorithm 3).
//   - ParallelSuperstep (Algorithm 1), shared by ParES and ParGlobalES.
//   - Adjacency-list sequential baselines standing in for NetworKit and
//     Gengraph (see DESIGN.md).
//
// All implementations mutate the graph's edge list in place and preserve
// both the degree sequence and simplicity. The parallel implementations
// are exact: given the same switch sequence they produce bit-identical
// edge lists to sequential Definition-1 execution (see superstep.go for
// the one documented refinement over the paper's pseudocode).
package core

import (
	"context"
	"time"

	"gesmc/internal/constraint"
	"gesmc/internal/graph"
	"gesmc/internal/rng"
	"gesmc/internal/switching"
)

// Switch is one edge switch σ = (i, j, g): two edge-list indices and a
// direction bit (Definition 1). It is the kernel's switch type; core
// re-exports it so chain implementations and tests need not import the
// kernel package.
type Switch = switching.Switch

// Algorithm selects a Markov chain implementation.
type Algorithm int

const (
	// AlgSeqES is the sequential ES-MC implementation.
	AlgSeqES Algorithm = iota
	// AlgSeqGlobalES is the sequential G-ES-MC implementation.
	AlgSeqGlobalES
	// AlgNaiveParES is the inexact parallel ES-MC baseline.
	AlgNaiveParES
	// AlgParES is the exact parallel ES-MC (Algorithm 2).
	AlgParES
	// AlgParGlobalES is the exact parallel G-ES-MC (Algorithm 3).
	AlgParGlobalES
	// AlgAdjListES is the unsorted adjacency-list sequential baseline
	// ("NetworKit-style").
	AlgAdjListES
	// AlgAdjSortES is the sorted adjacency-list sequential baseline
	// ("Gengraph-style").
	AlgAdjSortES
)

// String returns the implementation name used in the paper.
func (a Algorithm) String() string {
	switch a {
	case AlgSeqES:
		return "SeqES"
	case AlgSeqGlobalES:
		return "SeqGlobalES"
	case AlgNaiveParES:
		return "NaiveParES"
	case AlgParES:
		return "ParES"
	case AlgParGlobalES:
		return "ParGlobalES"
	case AlgAdjListES:
		return "AdjListES"
	case AlgAdjSortES:
		return "AdjSortES"
	default:
		return "unknown"
	}
}

// IsGlobal reports whether the algorithm runs the G-ES-MC chain (one
// global switch per superstep) rather than ES-MC.
func (a Algorithm) IsGlobal() bool {
	return a == AlgSeqGlobalES || a == AlgParGlobalES
}

// DefaultLoopProb is the default loop-rejection probability P_L of
// G-ES-MC (Definition 3). It only needs to be strictly positive for
// aperiodicity; a tiny value wastes almost no switches.
const DefaultLoopProb = 1e-6

// Config carries the common tuning knobs.
type Config struct {
	// Workers is the number of goroutines for parallel algorithms
	// (P in the paper). Zero means 1.
	Workers int
	// Seed seeds all randomness; runs are deterministic per
	// (algorithm, graph, seed, workers).
	Seed uint64
	// LoopProb is P_L of G-ES-MC. Zero selects DefaultLoopProb.
	LoopProb float64
	// Prefetch enables the software pipeline that pre-touches hash
	// buckets (the Go analogue of §5.4's prefetch instructions).
	Prefetch bool
	// SampleViaBuckets switches SeqES edge sampling from the auxiliary
	// edge array to random-bucket probing of the hash set (§5.3's
	// memory/time trade-off).
	SampleViaBuckets bool
	// ChunkBytes overrides the topology-derived dynamic-chunk grain of
	// the parallel phases: each work-stealing claim covers about
	// ChunkBytes of edge data. Zero keeps the cache-aware default
	// (conc.Topology-derived). Results are bit-identical for any value.
	ChunkBytes int
	// PessimisticRounds makes ParallelSuperstep publish decisions only
	// at round barriers, simulating the worst-case scheduler analyzed
	// in Theorems 2-3. Results are identical; only round counts change.
	// Use for round-count experiments (Fig. 9) on machines where the
	// natural scheduler resolves everything in one round.
	PessimisticRounds bool
	// Constraint restricts the chain's state space (see the constraint
	// package): local vetoes run inside the decide phase, connectivity
	// via certificate + speculate-then-recertify. Supported by SeqES,
	// SeqGlobalES, ParES, and ParGlobalES; NewEngine rejects the
	// combination otherwise (ErrConstraintUnsupported). Nil or a spec
	// with nothing active constrains nothing.
	Constraint *constraint.Spec
}

func (c Config) workers() int {
	if c.Workers < 1 {
		return 1
	}
	return c.Workers
}

func (c Config) loopProb() float64 {
	if c.LoopProb <= 0 {
		return DefaultLoopProb
	}
	return c.LoopProb
}

// RunStats aggregates what happened during a run.
type RunStats struct {
	Algorithm  Algorithm
	Supersteps int   // supersteps performed (per paper's definition)
	Attempted  int64 // switches attempted
	Legal      int64 // switches accepted (graph modified)

	// Parallel superstep instrumentation (Fig. 9):
	InternalSupersteps int           // ParallelSuperstep invocations
	TotalRounds        int64         // rounds across all supersteps
	MaxRounds          int           // largest round count of any superstep
	FirstRoundTime     time.Duration // time spent in first rounds
	LaterRoundsTime    time.Duration // time spent in rounds 2+

	// Constraint instrumentation (zero without an active constraint):
	Vetoed         int64 // switches rejected by the constraint layer (vetoes + rollbacks)
	EscapeAttempts int64 // compound k-switch escape proposals
	EscapeMoves    int64 // accepted escape moves

	Duration time.Duration
}

// RejectionRate returns the fraction of attempted switches rejected.
func (s *RunStats) RejectionRate() float64 {
	if s.Attempted == 0 {
		return 0
	}
	return 1 - float64(s.Legal)/float64(s.Attempted)
}

// AvgRounds returns the mean rounds per ParallelSuperstep invocation.
func (s *RunStats) AvgRounds() float64 {
	if s.InternalSupersteps == 0 {
		return 0
	}
	return float64(s.TotalRounds) / float64(s.InternalSupersteps)
}

// SampleSwitches draws r uniform ES-MC switches for a graph with m
// edges: i != j uniform indices plus an unbiased direction bit.
func SampleSwitches(m int, r int, src rng.Source) []Switch {
	if m < 2 {
		return nil
	}
	out := make([]Switch, r)
	for k := range out {
		i, j := rng.TwoDistinct(src, m)
		out[k] = Switch{I: uint32(i), J: uint32(j), G: rng.Bool(src)}
	}
	return out
}

// GlobalSwitches converts a permutation prefix into the switch sequence
// of a global switch Γ = (π, ℓ): σ_k = (π(2k−1), π(2k), 1_{π(2k−1)<π(2k)})
// (Definition 3, 1-based; here 0-based pairs).
func GlobalSwitches(perm []uint32, l int, buf []Switch) []Switch {
	buf = buf[:0]
	for k := 0; k < l; k++ {
		i, j := perm[2*k], perm[2*k+1]
		buf = append(buf, Switch{I: i, J: j, G: i < j})
	}
	return buf
}

// SampleGlobalSwitch draws a full global switch: a uniform permutation of
// [m] and ℓ ~ Binom(⌊m/2⌋, 1−P_L).
func SampleGlobalSwitch(m int, loopProb float64, src rng.Source) ([]uint32, int) {
	perm := rng.Perm(src, m)
	l := int(rng.BinomialComplementSmall(src, int64(m/2), loopProb))
	return perm, l
}

// Run executes the selected algorithm for the given number of supersteps
// (one superstep = ⌊m/2⌋ switch attempts for ES-MC chains, one global
// switch for G-ES-MC chains, matching §6.1's normalization) and returns
// statistics. The graph is randomized in place. Run is the one-shot form
// of NewEngine + Steps; callers that draw many samples from one graph
// should hold on to an Engine instead so the edge-set/adjacency state is
// built only once.
func Run(g *graph.Graph, alg Algorithm, supersteps int, cfg Config) (*RunStats, error) {
	start := time.Now()
	e, err := NewEngine(g, alg, cfg)
	if err != nil {
		return nil, err
	}
	stats, err := e.Steps(context.Background(), supersteps)
	if err != nil {
		return nil, err
	}
	stats.Duration = time.Since(start)
	return &stats, nil
}
