package core

import (
	"testing"

	"gesmc/internal/gen"
	"gesmc/internal/graph"
	"gesmc/internal/rng"
)

// With a single worker there are no races and every ticket acquisition
// succeeds, so NaiveParES degenerates to exact ES-MC (with different
// randomness but the same chain) — its stationary distribution must be
// uniform too.
func TestNaiveParESUniformSingleWorker(t *testing.T) {
	testUniformOverMatchings(t, AlgNaiveParES, 1, 3000, 20, 60)
}

// Under real concurrency NaiveParES is inexact but must still preserve
// the hard invariants under stress: degrees, simplicity, and the
// consistency between the edge array and the concurrent set.
func TestNaiveParESStress(t *testing.T) {
	src := rng.NewMT19937(909)
	for _, build := range []func() *graph.Graph{
		func() *graph.Graph { g, _ := gen.SynPldGraph(512, 2.05, src); return g },
		func() *graph.Graph { return gen.GNP(256, 0.1, src) },
		func() *graph.Graph { g, _ := gen.Regular(256, 6); return g },
	} {
		g := build()
		if g == nil {
			t.Fatal("workload generation failed")
		}
		want := g.Degrees()
		stats, err := Run(g, AlgNaiveParES, 8, Config{Workers: 8, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := g.CheckSimple(); err != nil {
			t.Fatal(err)
		}
		for v, d := range g.Degrees() {
			if d != want[v] {
				t.Fatalf("degree of %d changed", v)
			}
		}
		if stats.Legal == 0 {
			t.Fatal("nothing accepted under contention")
		}
	}
}

// The worker cap: owner ids must fit the 8-bit lock byte.
func TestNaiveParESManyWorkers(t *testing.T) {
	src := rng.NewMT19937(910)
	g := gen.GNP(128, 0.2, src)
	if _, err := Run(g, AlgNaiveParES, 2, Config{Workers: 1000, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if err := g.CheckSimple(); err != nil {
		t.Fatal(err)
	}
}

// Acceptance-rate comparison: on the same graph, NaiveParES under
// contention must accept at most as many switches as exact sequential
// ES-MC accepts on average (conflicts only ever add rejections).
func TestNaiveParESRejectsMoreThanExact(t *testing.T) {
	src := rng.NewMT19937(911)
	g := gen.GNP(128, 0.15, src)

	exact, err := Run(g.Clone(), AlgSeqES, 10, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Run(g.Clone(), AlgNaiveParES, 10, Config{Workers: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	exactRate := float64(exact.Legal) / float64(exact.Attempted)
	naiveRate := float64(naive.Legal) / float64(naive.Attempted)
	if naiveRate > exactRate*1.05 {
		t.Fatalf("naive acceptance %.3f implausibly above exact %.3f", naiveRate, exactRate)
	}
}
