package core

import (
	"gesmc/internal/constraint"
	"gesmc/internal/graph"
	"gesmc/internal/hashset"
	"gesmc/internal/rng"
)

// ExecuteGlobalSequential performs one global switch Γ = (π, ℓ) on the
// edge list/set sequentially, per Definitions 1 and 3. Returns accepted
// switch count.
func ExecuteGlobalSequential(E []graph.Edge, S *hashset.Set, perm []uint32, l int, buf []Switch) (int64, []Switch) {
	buf = GlobalSwitches(perm, l, buf)
	return ExecuteSequential(E, S, buf), buf
}

// seqGlobalStepper is the production sequential G-ES-MC (§5's
// SeqGlobalES): each superstep shuffles the edge indices, draws ℓ, and
// executes the resulting switches in order.
type seqGlobalStepper struct {
	m        int
	E        []graph.Edge
	S        *hashset.Set
	src      rng.Source
	prefetch bool
	pl       float64
	buf      []Switch
	cons     *constrainedRuntime
}

func newSeqGlobalStepper(g *graph.Graph, cfg Config, cons *constrainedRuntime) stepper {
	E := g.Edges()
	S := hashset.FromEdges(E, 0.5)
	if cons != nil {
		bindHashSet(cons, S)
	}
	return &seqGlobalStepper{
		m: g.M(), E: E, S: S,
		src:      rng.NewMT19937(cfg.Seed),
		prefetch: cfg.Prefetch,
		pl:       cfg.loopProb(),
		buf:      make([]Switch, 0, g.M()/2),
		cons:     cons,
	}
}

func (s *seqGlobalStepper) step(stats *RunStats) {
	perm, l := SampleGlobalSwitch(s.m, s.pl, s.src)
	s.buf = GlobalSwitches(perm, l, s.buf)
	switch {
	case s.cons != nil:
		var cc constraint.Counters
		s.cons.ExecuteSequential(s.E, s.buf, s.src, &cc)
		addCounters(stats, &cc)
	case s.prefetch:
		stats.Legal += executeSequentialPrefetch(s.E, s.S, s.buf)
	default:
		stats.Legal += ExecuteSequential(s.E, s.S, s.buf)
	}
	stats.Attempted += int64(l)
}

func (s *seqGlobalStepper) finish() {}
