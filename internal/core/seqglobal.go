package core

import (
	"gesmc/internal/graph"
	"gesmc/internal/hashset"
	"gesmc/internal/rng"
)

// ExecuteGlobalSequential performs one global switch Γ = (π, ℓ) on the
// edge list/set sequentially, per Definitions 1 and 3. Returns accepted
// switch count.
func ExecuteGlobalSequential(E []graph.Edge, S *hashset.Set, perm []uint32, l int, buf []Switch) (int64, []Switch) {
	buf = GlobalSwitches(perm, l, buf)
	return ExecuteSequential(E, S, buf), buf
}

// seqGlobalES is the production sequential G-ES-MC (§5's SeqGlobalES):
// each superstep shuffles the edge indices, draws ℓ, and executes the
// resulting switches in order.
func seqGlobalES(g *graph.Graph, supersteps int, cfg Config) (*RunStats, error) {
	m := g.M()
	if m < 2 {
		return nil, ErrTooSmall
	}
	src := rng.NewMT19937(cfg.Seed)
	E := g.Edges()
	S := hashset.FromEdges(E, 0.5)
	stats := &RunStats{}
	buf := make([]Switch, 0, m/2)
	pl := cfg.loopProb()

	for step := 0; step < supersteps; step++ {
		perm, l := SampleGlobalSwitch(m, pl, src)
		buf = GlobalSwitches(perm, l, buf)
		if cfg.Prefetch {
			stats.Legal += executeSequentialPrefetch(E, S, buf)
		} else {
			stats.Legal += ExecuteSequential(E, S, buf)
		}
		stats.Attempted += int64(l)
	}
	return stats, nil
}
