package core

import (
	"sync/atomic"

	"gesmc/internal/conc"
	"gesmc/internal/graph"
	"gesmc/internal/rng"
)

// FindCollisionFreePrefix returns the length t of the longest prefix of
// switches such that no edge index occurs twice within switches[0:t]
// — the superstep boundary search of Algorithm 2 (lines 8-15). The
// returned prefix always contains at least one switch (a switch's own
// two indices are distinct by construction).
//
// The scan parallelizes with a concurrent min-index table: every switch
// publishes (index -> k) with CAS-min; the boundary is the smallest k
// whose indices were first published by a smaller switch.
func FindCollisionFreePrefix(switches []Switch, workers int, minIdx []int32) int {
	n := len(switches)
	if n <= 1 {
		return n
	}
	// minIdx[i] = smallest switch position using edge index i, or -1.
	casMin := func(slot *int32, k int32) {
		for {
			old := atomic.LoadInt32(slot)
			if old != -1 && old <= k {
				return
			}
			if atomic.CompareAndSwapInt32(slot, old, k) {
				return
			}
		}
	}
	conc.Blocks(n, workers, func(_, lo, hi int) {
		for k := lo; k < hi; k++ {
			casMin(&minIdx[switches[k].I], int32(k))
			casMin(&minIdx[switches[k].J], int32(k))
		}
	})
	// t = min k such that one of σ_k's indices was claimed by k' < k.
	results := make([]int32, workers)
	for i := range results {
		results[i] = int32(n) // workers without a block contribute "no collision"
	}
	conc.Blocks(n, workers, func(w, lo, hi int) {
		best := int32(n)
		for k := lo; k < hi; k++ {
			if int32(k) >= best {
				break
			}
			if atomic.LoadInt32(&minIdx[switches[k].I]) < int32(k) ||
				atomic.LoadInt32(&minIdx[switches[k].J]) < int32(k) {
				best = int32(k)
				break
			}
		}
		results[w] = best
	})
	t := int32(n)
	for _, b := range results {
		if b < t {
			t = b
		}
	}
	return int(t)
}

// parES is the production ParES (Algorithm 2): pre-sample the full
// switch sequence, then repeatedly locate the longest source-independent
// prefix (expected length Θ(√m)) and execute it with ParallelSuperstep.
func parES(g *graph.Graph, supersteps int, cfg Config) (*RunStats, error) {
	m := g.M()
	if m < 2 {
		return nil, ErrTooSmall
	}
	w := cfg.workers()
	src := rng.NewMT19937(cfg.Seed)
	total := int64(supersteps) * int64(m/2)

	stats := &RunStats{}

	// Window of pre-sampled switches; refilled as prefixes are consumed.
	// Supersteps are bounded by the window, so the dependency table is
	// sized to it (expected prefix length is Θ(√m), far below m/2).
	window := 4 * isqrt(m)
	if window < 256 {
		window = 256
	}
	if int64(window) > total {
		window = int(total)
	}
	if window > m/2 {
		window = m / 2
	}
	runner := NewSuperstepRunner(g.Edges(), window, w)
	runner.Pessimistic = cfg.PessimisticRounds
	pending := make([]Switch, 0, window)
	minIdx := make([]int32, m)
	for i := range minIdx {
		minIdx[i] = -1
	}
	var sampled int64

	resetMinIdx := func(sw []Switch) {
		for _, s := range sw {
			minIdx[s.I] = -1
			minIdx[s.J] = -1
		}
	}

	for sampled < total || len(pending) > 0 {
		// Refill the window.
		for len(pending) < window && sampled < total {
			i, j := rng.TwoDistinct(src, m)
			pending = append(pending, Switch{I: uint32(i), J: uint32(j), G: rng.Bool(src)})
			sampled++
		}
		t := FindCollisionFreePrefix(pending, w, minIdx)
		resetMinIdx(pending)
		runner.Run(pending[:t])
		stats.Attempted += int64(t)
		pending = pending[:copy(pending, pending[t:])]
	}
	runner.FlushStats(stats)
	return stats, nil
}

func isqrt(n int) int {
	if n <= 0 {
		return 0
	}
	x := n
	y := (x + 1) / 2
	for y < x {
		x = y
		y = (x + n/x) / 2
	}
	return x
}
