package core

import (
	"sync/atomic"

	"gesmc/internal/conc"
	"gesmc/internal/graph"
	"gesmc/internal/rng"
)

// FindCollisionFreePrefix returns the length t of the longest prefix of
// switches such that no edge index occurs twice within switches[0:t]
// — the superstep boundary search of Algorithm 2 (lines 8-15). The
// returned prefix always contains at least one switch (a switch's own
// two indices are distinct by construction).
//
// The scan parallelizes with a concurrent min-index table: every switch
// publishes (index -> k) with CAS-min; the boundary is the smallest k
// whose indices were first published by a smaller switch.
func FindCollisionFreePrefix(switches []Switch, workers int, minIdx []int32) int {
	n := len(switches)
	if n <= 1 {
		return n
	}
	// minIdx[i] = smallest switch position using edge index i, or -1.
	casMin := func(slot *int32, k int32) {
		for {
			old := atomic.LoadInt32(slot)
			if old != -1 && old <= k {
				return
			}
			if atomic.CompareAndSwapInt32(slot, old, k) {
				return
			}
		}
	}
	conc.Blocks(n, workers, func(_, lo, hi int) {
		for k := lo; k < hi; k++ {
			casMin(&minIdx[switches[k].I], int32(k))
			casMin(&minIdx[switches[k].J], int32(k))
		}
	})
	// t = min k such that one of σ_k's indices was claimed by k' < k.
	results := make([]int32, workers)
	for i := range results {
		results[i] = int32(n) // workers without a block contribute "no collision"
	}
	conc.Blocks(n, workers, func(w, lo, hi int) {
		best := int32(n)
		for k := lo; k < hi; k++ {
			if int32(k) >= best {
				break
			}
			if atomic.LoadInt32(&minIdx[switches[k].I]) < int32(k) ||
				atomic.LoadInt32(&minIdx[switches[k].J]) < int32(k) {
				best = int32(k)
				break
			}
		}
		results[w] = best
	})
	t := int32(n)
	for _, b := range results {
		if b < t {
			t = b
		}
	}
	return int(t)
}

// parESStepper is the production ParES (Algorithm 2): pre-sample the
// switch sequence of each superstep, then repeatedly locate the longest
// source-independent prefix (expected length Θ(√m)) and execute it with
// ParallelSuperstep. The window drains completely at every superstep
// boundary so the graph is always in the state after a whole number of
// supersteps; the decided edge list is identical to continuous
// execution because every prefix realizes sequential semantics over the
// same switch sequence.
type parESStepper struct {
	m, w    int
	src     rng.Source
	runner  *SuperstepRunner
	pending []Switch
	minIdx  []int32
	window  int
	snap    runnerSnap
}

func newParESStepper(g *graph.Graph, cfg Config) stepper {
	m := g.M()
	w := cfg.workers()
	// Window of pre-sampled switches; refilled as prefixes are consumed.
	// Supersteps are bounded by the window, so the dependency table is
	// sized to it (expected prefix length is Θ(√m), far below m/2).
	window := 4 * isqrt(m)
	if window < 256 {
		window = 256
	}
	if window > m/2 {
		window = m / 2
	}
	runner := NewSuperstepRunner(g.Edges(), window, w)
	runner.Pessimistic = cfg.PessimisticRounds
	minIdx := make([]int32, m)
	for i := range minIdx {
		minIdx[i] = -1
	}
	return &parESStepper{
		m: m, w: w,
		src:     rng.NewMT19937(cfg.Seed),
		runner:  runner,
		pending: make([]Switch, 0, window),
		minIdx:  minIdx,
		window:  window,
	}
}

func (s *parESStepper) step(stats *RunStats) {
	toSample := s.m / 2
	for toSample > 0 || len(s.pending) > 0 {
		// Refill the window.
		for len(s.pending) < s.window && toSample > 0 {
			i, j := rng.TwoDistinct(s.src, s.m)
			s.pending = append(s.pending, Switch{I: uint32(i), J: uint32(j), G: rng.Bool(s.src)})
			toSample--
		}
		t := FindCollisionFreePrefix(s.pending, s.w, s.minIdx)
		for _, sw := range s.pending {
			s.minIdx[sw.I] = -1
			s.minIdx[sw.J] = -1
		}
		s.runner.Run(s.pending[:t])
		stats.Attempted += int64(t)
		s.pending = s.pending[:copy(s.pending, s.pending[t:])]
	}
	s.snap.flushDelta(s.runner, stats)
}

func (s *parESStepper) finish() {}

func isqrt(n int) int {
	if n <= 0 {
		return 0
	}
	x := n
	y := (x + 1) / 2
	for y < x {
		x = y
		y = (x + n/x) / 2
	}
	return x
}
