package core

import (
	"sync/atomic"

	"gesmc/internal/conc"
	"gesmc/internal/constraint"
	"gesmc/internal/graph"
	"gesmc/internal/rng"
)

// prefixFinder locates the longest collision-free prefix of a switch
// window (Algorithm 2, lines 8-15) on a persistent worker gang. The
// scan parallelizes with a concurrent min-index table: every switch
// publishes (index -> k) with CAS-min; the boundary is the smallest k
// whose indices were first published by a smaller switch. The phase
// bodies are created once, so steady-state searches allocate nothing.
type prefixFinder struct {
	pool     *conc.Pool
	minIdx   []int32 // edge index -> smallest switch position, -1 if none
	results  []int32 // per-worker boundary candidates
	switches []Switch

	publishFn func(worker, lo, hi int)
	scanFn    func(worker, lo, hi int)
}

// newPrefixFinder prepares a finder over a graph with m edge indices,
// dispatching on the given gang (typically the runner's, so one gang
// serves the whole engine).
func newPrefixFinder(pool *conc.Pool, m int) *prefixFinder {
	minIdx := make([]int32, m)
	for i := range minIdx {
		minIdx[i] = -1
	}
	return newPrefixFinderWith(pool, minIdx)
}

// newPrefixFinderWith wires a finder over a caller-provided min-index
// table, which must be -1-initialized (one slot per edge index).
func newPrefixFinderWith(pool *conc.Pool, minIdx []int32) *prefixFinder {
	f := &prefixFinder{
		pool:    pool,
		minIdx:  minIdx,
		results: make([]int32, pool.Workers()),
	}
	f.publishFn = f.publish
	f.scanFn = f.scan
	return f
}

func casMin(slot *int32, k int32) {
	for {
		old := atomic.LoadInt32(slot)
		if old != -1 && old <= k {
			return
		}
		if atomic.CompareAndSwapInt32(slot, old, k) {
			return
		}
	}
}

func (f *prefixFinder) publish(_, lo, hi int) {
	for k := lo; k < hi; k++ {
		casMin(&f.minIdx[f.switches[k].I], int32(k))
		casMin(&f.minIdx[f.switches[k].J], int32(k))
	}
}

func (f *prefixFinder) scan(worker, lo, hi int) {
	best := f.results[worker]
	for k := lo; k < hi; k++ {
		if int32(k) >= best {
			break
		}
		if atomic.LoadInt32(&f.minIdx[f.switches[k].I]) < int32(k) ||
			atomic.LoadInt32(&f.minIdx[f.switches[k].J]) < int32(k) {
			best = int32(k)
			break
		}
	}
	f.results[worker] = best
}

// find returns the length t of the longest prefix of switches such
// that no edge index occurs twice within switches[0:t]. The returned
// prefix always contains at least one switch (a switch's own two
// indices are distinct by construction). It resets the min-index slots
// it used, so the table is clean for the next window.
func (f *prefixFinder) find(switches []Switch) int {
	n := len(switches)
	t := n
	if n > 1 {
		f.switches = switches
		f.pool.Blocks(n, f.publishFn)
		for i := range f.results {
			f.results[i] = int32(n) // workers without a block contribute "no collision"
		}
		f.pool.Blocks(n, f.scanFn)
		f.switches = nil
		for _, b := range f.results {
			if int(b) < t {
				t = int(b)
			}
		}
	}
	for _, sw := range switches {
		f.minIdx[sw.I] = -1
		f.minIdx[sw.J] = -1
	}
	return t
}

// FindCollisionFreePrefix is the one-shot form of prefixFinder over a
// transient gang, kept for tests and external callers. minIdx must
// have one -1-initialized slot per edge index; it is restored to all
// -1 before returning.
func FindCollisionFreePrefix(switches []Switch, workers int, minIdx []int32) int {
	pool := conc.NewPool(workers)
	defer pool.Close()
	return newPrefixFinderWith(pool, minIdx).find(switches)
}

// parESStepper is the production ParES (Algorithm 2): pre-sample the
// switch sequence of each superstep, then repeatedly locate the longest
// source-independent prefix (expected length Θ(√m)) and execute it with
// ParallelSuperstep. The window drains completely at every superstep
// boundary so the graph is always in the state after a whole number of
// supersteps; the decided edge list is identical to continuous
// execution because every prefix realizes sequential semantics over the
// same switch sequence. The prefix search shares the runner's worker
// gang, so the whole chain runs on one set of long-lived goroutines.
type parESStepper struct {
	m, w    int
	src     rng.Source
	runner  *SuperstepRunner
	finder  *prefixFinder
	pending []Switch
	window  int
	snap    runnerSnap
	cons    *constrainedRuntime
}

func newParESStepper(g *graph.Graph, cfg Config, cons *constrainedRuntime) stepper {
	m := g.M()
	w := cfg.workers()
	// Window of pre-sampled switches; refilled as prefixes are consumed.
	// Supersteps are bounded by the window, so the dependency table is
	// sized to it (expected prefix length is Θ(√m), far below m/2).
	window := 4 * isqrt(m)
	if window < 256 {
		window = 256
	}
	if window > m/2 {
		window = m / 2
	}
	runner := NewSuperstepRunner(g.Edges(), window, w)
	runner.Pessimistic = cfg.PessimisticRounds
	runner.Prefetch = cfg.Prefetch
	if cfg.ChunkBytes > 0 {
		runner.Pool().SetChunkBytes(cfg.ChunkBytes)
	}
	if cons != nil {
		bindRunner(cons, runner)
	}
	return &parESStepper{
		m: m, w: w,
		src:     rng.NewMT19937(cfg.Seed),
		runner:  runner,
		finder:  newPrefixFinder(runner.Pool(), m),
		pending: make([]Switch, 0, window),
		window:  window,
		cons:    cons,
	}
}

func (s *parESStepper) step(stats *RunStats) {
	toSample := s.m / 2
	for toSample > 0 || len(s.pending) > 0 {
		// Refill the window.
		for len(s.pending) < s.window && toSample > 0 {
			i, j := rng.TwoDistinct(s.src, s.m)
			s.pending = append(s.pending, Switch{I: uint32(i), J: uint32(j), G: rng.Bool(s.src)})
			toSample--
		}
		t := s.finder.find(s.pending)
		s.runner.Run(s.pending[:t])
		stats.Attempted += int64(t)
		if s.cons != nil {
			var cc constraint.Counters
			s.cons.AfterSuperstep(s.runner, s.pending[:t], s.src, &cc)
			addCounters(stats, &cc)
		}
		s.pending = s.pending[:copy(s.pending, s.pending[t:])]
	}
	s.snap.flushDelta(s.runner, stats)
}

func (s *parESStepper) finish() {}

func (s *parESStepper) release() { s.runner.Release() }

func isqrt(n int) int {
	if n <= 0 {
		return 0
	}
	x := n
	y := (x + 1) / 2
	for y < x {
		x = y
		y = (x + n/x) / 2
	}
	return x
}
