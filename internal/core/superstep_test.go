package core

import (
	"testing"

	"gesmc/internal/gen"
	"gesmc/internal/graph"
	"gesmc/internal/hashset"
	"gesmc/internal/rng"
)

// runSequentialReference executes switches on a clone of g per
// Definition 1 and returns the resulting edge list and accepted count.
func runSequentialReference(g *graph.Graph, switches []Switch) ([]graph.Edge, int64) {
	c := g.Clone()
	S := hashset.FromEdges(c.Edges(), 0.5)
	legal := ExecuteSequential(c.Edges(), S, switches)
	return c.Edges(), legal
}

// runParallelSuperstep executes switches on a clone of g via the
// SuperstepRunner and returns edge list, accepted count, and the runner
// (for edge-set inspection).
func runParallelSuperstep(g *graph.Graph, switches []Switch, workers int) ([]graph.Edge, int64, *SuperstepRunner) {
	c := g.Clone()
	r := NewSuperstepRunner(c.Edges(), max(len(switches), 1), workers)
	r.Run(switches)
	return c.Edges(), r.Legal, r
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// assertExactMatch verifies bit-exact equivalence of the parallel
// superstep against the sequential reference, including the edge set.
func assertExactMatch(t *testing.T, g *graph.Graph, switches []Switch, workers int) {
	t.Helper()
	seqE, seqLegal := runSequentialReference(g, switches)
	parE, parLegal, r := runParallelSuperstep(g, switches, workers)
	if seqLegal != parLegal {
		t.Fatalf("accepted count: sequential %d, parallel %d (workers=%d)", seqLegal, parLegal, workers)
	}
	for i := range seqE {
		if seqE[i] != parE[i] {
			t.Fatalf("edge list diverges at %d: sequential %v, parallel %v (workers=%d)",
				i, seqE[i], parE[i], workers)
		}
	}
	// The concurrent edge set must mirror the edge list.
	if r.Set.Len() != len(parE) {
		t.Fatalf("edge set size %d, edge list %d", r.Set.Len(), len(parE))
	}
	for _, e := range parE {
		if !r.Set.Contains(e) {
			t.Fatalf("edge set missing %v", e)
		}
	}
}

// globalSwitchBatch draws a random source-independent batch: a prefix of
// a permutation pairing (exactly the switches of a global switch).
func globalSwitchBatch(m int, src rng.Source) []Switch {
	perm := rng.Perm(src, m)
	l := rng.IntN(src, m/2+1)
	return GlobalSwitches(perm, l, nil)
}

func TestSuperstepMatchesSequentialGNP(t *testing.T) {
	src := rng.NewMT19937(1001)
	for trial := 0; trial < 40; trial++ {
		n := 10 + rng.IntN(src, 40)
		g := gen.GNP(n, 0.2, src)
		if g.M() < 4 {
			continue
		}
		switches := globalSwitchBatch(g.M(), src)
		for _, w := range []int{1, 2, 4, 8} {
			assertExactMatch(t, g, switches, w)
		}
	}
}

func TestSuperstepMatchesSequentialPowerLaw(t *testing.T) {
	// Heavy-tailed graphs maximize target collisions, exercising the
	// delay/round machinery.
	src := rng.NewMT19937(2002)
	for trial := 0; trial < 15; trial++ {
		g, err := gen.SynPldGraph(128, 2.01, src)
		if err != nil {
			t.Fatal(err)
		}
		switches := globalSwitchBatch(g.M(), src)
		for _, w := range []int{1, 3, 7} {
			assertExactMatch(t, g, switches, w)
		}
	}
}

func TestSuperstepMatchesSequentialDense(t *testing.T) {
	// Dense graphs reject most switches via the existence check.
	src := rng.NewMT19937(3003)
	g := gen.GNP(24, 0.8, src)
	for trial := 0; trial < 20; trial++ {
		switches := globalSwitchBatch(g.M(), src)
		assertExactMatch(t, g, switches, 4)
	}
}

func TestSuperstepEraseDependencyScenario(t *testing.T) {
	// σ0 erases {0,2}; σ1 re-inserts it. Sequentially both are legal;
	// the superstep must agree and net the edge present.
	g, err := graph.FromPairs(8, [][2]graph.Node{{0, 1}, {2, 3}, {0, 2}, {4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	switches := []Switch{
		{I: 2, J: 3, G: false}, // ({0,2},{4,5}) -> {0,4},{2,5}
		{I: 0, J: 1, G: false}, // ({0,1},{2,3}) -> {0,2},{1,3}
	}
	for _, w := range []int{1, 2, 4} {
		assertExactMatch(t, g, switches, w)
	}
	parE, legal, _ := runParallelSuperstep(g, switches, 4)
	if legal != 2 {
		t.Fatalf("expected both switches legal, got %d", legal)
	}
	want := map[graph.Edge]bool{
		graph.MakeEdge(0, 4): true, graph.MakeEdge(2, 5): true,
		graph.MakeEdge(0, 2): true, graph.MakeEdge(1, 3): true,
	}
	for _, e := range parE {
		if !want[e] {
			t.Fatalf("unexpected edge %v", e)
		}
	}
}

func TestSuperstepReversedEraseDependencyIsIllegal(t *testing.T) {
	// Same switches in the opposite order: now σ0 targets {0,2} which
	// is only erased by the LATER σ1, so σ0 must be illegal (k < p).
	g, err := graph.FromPairs(8, [][2]graph.Node{{0, 1}, {2, 3}, {0, 2}, {4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	switches := []Switch{
		{I: 0, J: 1, G: false}, // targets {0,2} (exists until σ1) and {1,3}
		{I: 2, J: 3, G: false}, // erases {0,2}
	}
	for _, w := range []int{1, 2, 4} {
		assertExactMatch(t, g, switches, w)
	}
	_, legal, _ := runParallelSuperstep(g, switches, 2)
	if legal != 1 {
		t.Fatalf("expected exactly the eraser legal, got %d", legal)
	}
}

func TestSuperstepInsertDependencyScenario(t *testing.T) {
	// Two switches race to insert {1,3}; only the first may win.
	g, err := graph.FromPairs(8, [][2]graph.Node{{0, 1}, {2, 3}, {1, 6}, {3, 7}})
	if err != nil {
		t.Fatal(err)
	}
	switches := []Switch{
		{I: 0, J: 1, G: false}, // ({0,1},{2,3}) -> {0,2},{1,3}
		{I: 2, J: 3, G: false}, // ({1,6},{3,7}) -> {1,3},{6,7}
	}
	for _, w := range []int{1, 2, 4} {
		assertExactMatch(t, g, switches, w)
	}
	_, legal, _ := runParallelSuperstep(g, switches, 2)
	if legal != 1 {
		t.Fatalf("expected exactly one inserter legal, got %d", legal)
	}
}

func TestSuperstepSharedNodeCasesRejected(t *testing.T) {
	// Switches over edges sharing a node either loop or reproduce their
	// own sources; Definition 1 rejects both, and the graph must be
	// unchanged in either representation.
	g, err := graph.FromPairs(6, [][2]graph.Node{{0, 1}, {0, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	for _, gbit := range []bool{false, true} {
		switches := []Switch{{I: 0, J: 1, G: gbit}}
		assertExactMatch(t, g, switches, 2)
		parE, legal, _ := runParallelSuperstep(g, switches, 2)
		if legal != 0 {
			t.Fatalf("shared-node switch g=%v accepted", gbit)
		}
		for i, e := range g.Edges() {
			if parE[i] != e {
				t.Fatalf("graph changed by rejected switch")
			}
		}
	}
}

func TestSuperstepEmptyBatch(t *testing.T) {
	g := gen.GNP(10, 0.3, rng.NewMT19937(7))
	_, legal, r := runParallelSuperstep(g, nil, 4)
	if legal != 0 || r.InternalSupersteps != 0 {
		t.Fatal("empty batch had effects")
	}
}

func TestSuperstepManyConsecutive(t *testing.T) {
	// Chained supersteps against chained sequential execution: state
	// must track bit-exactly across superstep boundaries (exercises the
	// set update + compaction path).
	src := rng.NewMT19937(4004)
	g := gen.GNP(60, 0.15, src)
	m := g.M()

	seq := g.Clone()
	S := hashset.FromEdges(seq.Edges(), 0.5)
	par := g.Clone()
	r := NewSuperstepRunner(par.Edges(), m/2, 4)

	for step := 0; step < 30; step++ {
		perm := rng.Perm(src, m)
		l := rng.IntN(src, m/2+1)
		switches := GlobalSwitches(perm, l, nil)
		ExecuteSequential(seq.Edges(), S, switches)
		r.Run(switches)
		for i := range seq.Edges() {
			if seq.Edges()[i] != par.Edges()[i] {
				t.Fatalf("step %d: divergence at edge %d", step, i)
			}
		}
	}
	if err := par.CheckSimple(); err != nil {
		t.Fatal(err)
	}
}

func TestFindCollisionFreePrefixBruteForce(t *testing.T) {
	src := rng.NewMT19937(5005)
	const m = 20
	for trial := 0; trial < 200; trial++ {
		r := 1 + rng.IntN(src, 40)
		switches := SampleSwitches(m, r, src)
		// Brute force: first k whose indices intersect any earlier switch.
		want := len(switches)
		used := map[uint32]bool{}
	outer:
		for k, sw := range switches {
			if used[sw.I] || used[sw.J] {
				want = k
				break outer
			}
			used[sw.I] = true
			used[sw.J] = true
		}
		minIdx := make([]int32, m)
		for i := range minIdx {
			minIdx[i] = -1
		}
		for _, w := range []int{1, 2, 4} {
			got := FindCollisionFreePrefix(switches, w, minIdx)
			for _, s := range switches {
				minIdx[s.I] = -1
				minIdx[s.J] = -1
			}
			if got != want {
				t.Fatalf("prefix = %d, want %d (workers=%d, switches=%v)", got, want, w, switches)
			}
		}
	}
}

func TestRegularGraphRoundsBounded(t *testing.T) {
	// Corollary 2: on regular graphs the expected rounds per global
	// switch is at most ~4 even under worst-case scheduling; our
	// scheduler typically needs 1-3. Assert a generous bound.
	g, err := gen.Regular(512, 8)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.NewMT19937(6006)
	r := NewSuperstepRunner(g.Edges(), g.M()/2, 4)
	for step := 0; step < 10; step++ {
		perm := rng.Perm(src, g.M())
		r.Run(GlobalSwitches(perm, g.M()/2, nil))
	}
	if avg := float64(r.TotalRounds) / float64(r.InternalSupersteps); avg > 6 {
		t.Fatalf("average rounds %.1f exceeds bound for regular graph", avg)
	}
}
