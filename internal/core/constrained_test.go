package core

import (
	"errors"
	"testing"

	"gesmc/internal/constraint"
	"gesmc/internal/gen"
	"gesmc/internal/graph"
)

// gridGraph builds a rows x cols grid (connected, bridge-free
// interior) for constrained differential tests.
func gridGraph(t *testing.T, rows, cols int) *graph.Graph {
	t.Helper()
	return gen.Grid2D(rows, cols)
}

func connectedSpec() *constraint.Spec {
	return &constraint.Spec{Connected: true}
}

func forbiddenSpec(edges ...graph.Edge) *constraint.Spec {
	packed := make([]uint64, len(edges))
	for i, e := range edges {
		packed[i] = uint64(e)
	}
	return &constraint.Spec{Locals: []constraint.Local{constraint.NewForbidden(packed)}}
}

// TestConstraintUnsupportedAlgorithms: the naive and adjacency-list
// chains and the bucket-sampling variant reject constraint specs.
func TestConstraintUnsupportedAlgorithms(t *testing.T) {
	g := gridGraph(t, 4, 4)
	for _, alg := range []Algorithm{AlgNaiveParES, AlgAdjListES, AlgAdjSortES} {
		_, err := NewEngine(g.Clone(), alg, Config{Constraint: connectedSpec()})
		if !errors.Is(err, ErrConstraintUnsupported) {
			t.Fatalf("%v: err = %v, want ErrConstraintUnsupported", alg, err)
		}
	}
	_, err := NewEngine(g.Clone(), AlgSeqES, Config{Constraint: connectedSpec(), SampleViaBuckets: true})
	if !errors.Is(err, ErrConstraintUnsupported) {
		t.Fatalf("SampleViaBuckets: err = %v, want ErrConstraintUnsupported", err)
	}
}

// TestConstraintDisconnectedTarget: the connectivity constraint rejects
// a disconnected start state.
func TestConstraintDisconnectedTarget(t *testing.T) {
	g, err := graph.FromPairs(6, [][2]graph.Node{{0, 1}, {1, 2}, {3, 4}, {4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{AlgSeqES, AlgSeqGlobalES, AlgParES, AlgParGlobalES} {
		if _, err := NewEngine(g.Clone(), alg, Config{Constraint: connectedSpec()}); !errors.Is(err, ErrDisconnected) {
			t.Fatalf("%v: err = %v, want ErrDisconnected", alg, err)
		}
	}
}

// TestLocalConstraintWorkerInvariance: with a forbidden-edge (local)
// constraint, the parallel chains are bit-identical for every worker
// count — and ParES additionally matches constrained SeqES exactly,
// since both realize sequential Definition-1 semantics over the same
// pre-sampled switch sequence.
func TestLocalConstraintWorkerInvariance(t *testing.T) {
	base := gridGraph(t, 6, 6)
	// Forbid a handful of non-edges so vetoes actually fire.
	spec := func() *constraint.Spec {
		return forbiddenSpec(
			graph.MakeEdge(0, 35), graph.MakeEdge(1, 30),
			graph.MakeEdge(2, 29), graph.MakeEdge(5, 6),
		)
	}
	const supersteps = 6

	for _, alg := range []Algorithm{AlgParES, AlgParGlobalES} {
		var ref []graph.Edge
		var refVetoed int64
		for _, w := range []int{1, 2, 4, 8} {
			g := base.Clone()
			stats, err := Run(g, alg, supersteps, Config{Workers: w, Seed: 99, Constraint: spec()})
			if err != nil {
				t.Fatal(err)
			}
			if err := g.CheckSimple(); err != nil {
				t.Fatalf("%v w=%d: %v", alg, w, err)
			}
			for _, e := range g.Edges() {
				switch e {
				case graph.MakeEdge(0, 35), graph.MakeEdge(1, 30), graph.MakeEdge(2, 29), graph.MakeEdge(5, 6):
					t.Fatalf("%v w=%d: forbidden edge %v present", alg, w, e)
				}
			}
			if w == 1 {
				ref = append([]graph.Edge(nil), g.Edges()...)
				refVetoed = stats.Vetoed
				if stats.Vetoed == 0 {
					t.Fatalf("%v: no vetoes fired; constraint untested", alg)
				}
				continue
			}
			if stats.Vetoed != refVetoed {
				t.Fatalf("%v w=%d: vetoed %d != %d at w=1", alg, w, stats.Vetoed, refVetoed)
			}
			for i := range ref {
				if g.Edges()[i] != ref[i] {
					t.Fatalf("%v w=%d: edge %d differs from w=1", alg, w, i)
				}
			}
		}
	}

	// ParES == SeqES under the same local constraint.
	gs := base.Clone()
	if _, err := Run(gs, AlgSeqES, supersteps, Config{Seed: 99, Constraint: spec()}); err != nil {
		t.Fatal(err)
	}
	gp := base.Clone()
	if _, err := Run(gp, AlgParES, supersteps, Config{Workers: 4, Seed: 99, Constraint: spec()}); err != nil {
		t.Fatal(err)
	}
	for i := range gs.Edges() {
		if gs.Edges()[i] != gp.Edges()[i] {
			t.Fatalf("constrained ParES diverges from constrained SeqES at edge %d", i)
		}
	}
}

// TestConnectedConstraintInvariants: with the connectivity constraint,
// every post-superstep state is connected for all four chains at
// workers {1, 2, 4, 8}, the degree sequence and simplicity hold, and
// runs are deterministic per (seed, workers).
func TestConnectedConstraintInvariants(t *testing.T) {
	// A bridge-heavy target makes connectivity rejections common: a
	// path of small cycles (each pair of consecutive 4-cycles joined
	// by a bridge).
	var pairs [][2]graph.Node
	const cycles = 5
	for c := 0; c < cycles; c++ {
		b := graph.Node(4 * c)
		pairs = append(pairs, [][2]graph.Node{{b, b + 1}, {b + 1, b + 2}, {b + 2, b + 3}, {b + 3, b}}...)
		if c+1 < cycles {
			pairs = append(pairs, [2]graph.Node{b + 2, b + 4})
		}
	}
	base, err := graph.FromPairs(4*cycles, pairs)
	if err != nil {
		t.Fatal(err)
	}
	wantDeg := base.Degrees()

	for _, alg := range []Algorithm{AlgSeqES, AlgSeqGlobalES, AlgParES, AlgParGlobalES} {
		for _, w := range []int{1, 2, 4, 8} {
			run := func() (*graph.Graph, *RunStats) {
				g := base.Clone()
				eng, err := NewEngine(g, alg, Config{Workers: w, Seed: 7, Constraint: connectedSpec()})
				if err != nil {
					t.Fatal(err)
				}
				defer eng.Close()
				// Step one superstep at a time so every intermediate
				// state is checked, not only the final one.
				for s := 0; s < 8; s++ {
					if _, err := eng.Steps(t.Context(), 1); err != nil {
						t.Fatal(err)
					}
					if c, _ := graph.ConnectedComponents(g); c != 1 {
						t.Fatalf("%v w=%d superstep %d: disconnected (%d components)", alg, w, s, c)
					}
					if err := g.CheckSimple(); err != nil {
						t.Fatalf("%v w=%d superstep %d: %v", alg, w, s, err)
					}
				}
				deg := g.Degrees()
				for v := range deg {
					if deg[v] != wantDeg[v] {
						t.Fatalf("%v w=%d: degree of %d changed", alg, w, v)
					}
				}
				st := eng.Stats()
				return g, &st
			}
			g1, st1 := run()
			g2, st2 := run()
			for i := range g1.Edges() {
				if g1.Edges()[i] != g2.Edges()[i] {
					t.Fatalf("%v w=%d: not deterministic per seed", alg, w)
				}
			}
			if st1.Vetoed != st2.Vetoed || st1.EscapeMoves != st2.EscapeMoves {
				t.Fatalf("%v w=%d: stats not deterministic", alg, w)
			}
			if alg == AlgSeqES && st1.Vetoed == 0 {
				t.Fatalf("no connectivity vetoes on a bridge-heavy graph: constraint untested")
			}
		}
	}
}

// TestParallelConnectedWorkerInvariance: the speculate-then-recertify
// mode is worker-count independent too — the accepted set and the
// rollback order both derive from the kernel's exact decisions.
func TestParallelConnectedWorkerInvariance(t *testing.T) {
	var pairs [][2]graph.Node
	for v := 0; v < 12; v++ {
		pairs = append(pairs, [2]graph.Node{graph.Node(v), graph.Node((v + 1) % 12)})
	}
	pairs = append(pairs, [2]graph.Node{0, 4}, [2]graph.Node{6, 10})
	base, err := graph.FromPairs(12, pairs)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{AlgParES, AlgParGlobalES} {
		var ref []graph.Edge
		var refStats RunStats
		for _, w := range []int{1, 2, 4, 8} {
			g := base.Clone()
			stats, err := Run(g, alg, 10, Config{Workers: w, Seed: 3, Constraint: connectedSpec()})
			if err != nil {
				t.Fatal(err)
			}
			if w == 1 {
				ref = append([]graph.Edge(nil), g.Edges()...)
				refStats = *stats
				continue
			}
			for i := range ref {
				if g.Edges()[i] != ref[i] {
					t.Fatalf("%v w=%d: edge %d differs from w=1", alg, w, i)
				}
			}
			if stats.Vetoed != refStats.Vetoed || stats.Legal != refStats.Legal ||
				stats.EscapeMoves != refStats.EscapeMoves {
				t.Fatalf("%v w=%d: stats differ from w=1 (vetoed %d/%d legal %d/%d)",
					alg, w, stats.Vetoed, refStats.Vetoed, stats.Legal, refStats.Legal)
			}
		}
	}
}

// cycleKey canonicalizes a 2-regular graph state for the uniformity
// test.
func cycleKey(g *graph.Graph) string {
	return g.CanonicalKey()
}

// TestUniformityConnectedHexagons: enumeration-based uniformity over
// the CONNECTED realizations of the all-2 degree sequence on 6 nodes.
// The realizations are disjoint unions of cycles: sixty 6-cycles
// (connected) and ten 3+3 pairs (disconnected). The constrained chain
// must visit exactly the 60 connected states, uniformly.
func TestUniformityConnectedHexagons(t *testing.T) {
	var pairs [][2]graph.Node
	for v := 0; v < 6; v++ {
		pairs = append(pairs, [2]graph.Node{graph.Node(v), graph.Node((v + 1) % 6)})
	}
	base, err := graph.FromPairs(6, pairs)
	if err != nil {
		t.Fatal(err)
	}
	const runs = 6000
	counts := map[string]int{}
	for r := 0; r < runs; r++ {
		g := base.Clone()
		if _, err := Run(g, AlgSeqES, 25, Config{Seed: uint64(r)*2654435761 + 17, Constraint: connectedSpec()}); err != nil {
			t.Fatal(err)
		}
		if c, _ := graph.ConnectedComponents(g); c != 1 {
			t.Fatal("constrained chain emitted a disconnected state")
		}
		counts[cycleKey(g)]++
	}
	if len(counts) != 60 {
		t.Fatalf("reached %d of 60 connected states", len(counts))
	}
	expected := float64(runs) / 60
	var x2 float64
	for _, c := range counts {
		d := float64(c) - expected
		x2 += d * d / expected
	}
	// df = 59: mean 59, sd ~10.9. 130 is ~6.5 sigma — loose enough for
	// a deterministic-seed test, tight enough to catch real bias.
	if x2 > 130 {
		t.Fatalf("chi-square over connected states = %.1f (threshold 130, df=59)", x2)
	}
}

// TestEscapeMovesFire: with an aggressive stall limit on a bridge-rich
// graph, the sequential constrained chain reaches the k-switch escape
// path and stays inside the constrained space throughout.
func TestEscapeMovesFire(t *testing.T) {
	var pairs [][2]graph.Node
	for v := 0; v < 14; v++ {
		pairs = append(pairs, [2]graph.Node{graph.Node(v), graph.Node(v + 1)})
	}
	base, err := graph.FromPairs(15, pairs) // path graph: all bridges
	if err != nil {
		t.Fatal(err)
	}
	spec := &constraint.Spec{Connected: true, Stall: 2}
	g := base.Clone()
	stats, err := Run(g, AlgSeqES, 30, Config{Seed: 5, Constraint: spec})
	if err != nil {
		t.Fatal(err)
	}
	if stats.EscapeAttempts == 0 {
		t.Fatal("stall limit 2 on a path graph never attempted an escape")
	}
	if c, _ := graph.ConnectedComponents(g); c != 1 {
		t.Fatal("escape left a disconnected graph")
	}
	if err := g.CheckSimple(); err != nil {
		t.Fatal(err)
	}
	deg := g.Degrees()
	want := base.Degrees()
	for v := range deg {
		if deg[v] != want[v] {
			t.Fatalf("degree of %d changed", v)
		}
	}
}
