package core

import (
	"sync/atomic"

	"gesmc/internal/conc"
	"gesmc/internal/graph"
	"gesmc/internal/rng"
)

// naiveStepper is the simplistic parallel ES-MC baseline of §5.1: every
// worker performs switches independently, synchronizing only through
// per-edge tickets (lock bytes) in the concurrent hash set. Conflicting
// attempts are rolled back and counted as rejections. The implementation
// ignores dependencies between switches and therefore does NOT faithfully
// implement ES-MC (the paper makes the same caveat); it exists as the
// performance baseline of Table 4.
type naiveStepper struct {
	g      *graph.Graph
	m, w   int
	E      []uint64 // edge array with atomic element access (racy reads by design)
	set    *conc.EdgeSet
	seeds  []uint64
	idx    int // supersteps performed so far (feeds the stream mixer)
	pool   *conc.Pool
	legals []int64
}

func newNaiveStepper(g *graph.Graph, cfg Config) stepper {
	w := cfg.workers()
	if w > 254 {
		w = 254 // owner ids must fit the 8-bit lock byte
	}
	m := g.M()
	E := make([]uint64, m)
	for i, e := range g.Edges() {
		E[i] = uint64(e)
	}
	set := conc.NewEdgeSet(2 * m)
	set.BuildFrom(g.Edges(), w)
	return &naiveStepper{
		g: g, m: m, w: w, E: E, set: set,
		seeds:  rng.PerWorkerSeeds(cfg.Seed, w),
		pool:   conc.NewPool(w),
		legals: make([]int64, w),
	}
}

func (s *naiveStepper) step(stats *RunStats) {
	perStep := int64(s.m / 2)
	legals := s.legals
	step := s.idx
	s.pool.Run(func(worker int) {
		// Decorrelate the (worker, step) streams through the full
		// mixer: a plain additive stride equal to SplitMix64's
		// gamma would make consecutive supersteps replay nearly
		// the same stream.
		src := rng.NewSplitMix64(rng.Mix64(s.seeds[worker] ^ (uint64(step)+1)*0xD1B54A32D192ED03))
		owner := uint8(worker)
		lo := perStep * int64(worker) / int64(s.w)
		hi := perStep * int64(worker+1) / int64(s.w)
		var legal int64
		for a := lo; a < hi; a++ {
			if naiveAttempt(s.E, s.set, s.m, owner, src) {
				legal++
			}
		}
		legals[worker] = legal
	})
	for i, l := range legals {
		stats.Legal += l
		legals[i] = 0
	}
	stats.Attempted += perStep
	s.idx++
	// Quiescent point: drop accumulated tombstones if needed.
	if s.set.NeedsCompact() {
		edges := s.g.Edges()
		for i := range edges {
			edges[i] = graph.Edge(atomic.LoadUint64(&s.E[i]))
		}
		s.set.Compact(edges, s.w)
	}
}

func (s *naiveStepper) release() { s.pool.Close() }

// finish writes the edge array back to the graph's edge list; the array
// remains the source of truth between increments.
func (s *naiveStepper) finish() {
	edges := s.g.Edges()
	for i := range edges {
		edges[i] = graph.Edge(s.E[i])
	}
}

// naiveAttempt performs one optimistic switch: sample indices, read the
// (possibly stale) edges, lock both sources, re-validate, insert-lock
// both targets, and commit. Any failure unwinds and counts as rejection.
func naiveAttempt(E []uint64, set *conc.EdgeSet, m int, owner uint8, src rng.Source) bool {
	i, j := rng.TwoDistinct(src, m)
	e1 := graph.Edge(atomic.LoadUint64(&E[i]))
	e2 := graph.Edge(atomic.LoadUint64(&E[j]))
	if e1 == e2 {
		return false
	}
	t3, t4 := graph.SwitchTargets(e1, e2, rng.Bool(src))
	if t3.IsLoop() || t4.IsLoop() {
		return false
	}

	// Acquire tickets on the source edges.
	if !set.TryLock(e1, owner) {
		return false
	}
	if !set.TryLock(e2, owner) {
		set.Unlock(e1, owner)
		return false
	}
	// Re-validate the edge array: the reads above were racy.
	if graph.Edge(atomic.LoadUint64(&E[i])) != e1 ||
		graph.Edge(atomic.LoadUint64(&E[j])) != e2 {
		set.Unlock(e2, owner)
		set.Unlock(e1, owner)
		return false
	}
	// Acquire tickets on the target edges by inserting them locked.
	// Own-source targets fail here (they exist, locked by us), exactly
	// like Definition 1's "already exists in E".
	if !set.TryInsertLock(t3, owner) {
		set.Unlock(e2, owner)
		set.Unlock(e1, owner)
		return false
	}
	if !set.TryInsertLock(t4, owner) {
		set.EraseLocked(t3, owner)
		set.Unlock(e2, owner)
		set.Unlock(e1, owner)
		return false
	}

	// Commit: rewire the array, drop the sources, publish the targets.
	atomic.StoreUint64(&E[i], uint64(t3))
	atomic.StoreUint64(&E[j], uint64(t4))
	set.EraseLocked(e1, owner)
	set.EraseLocked(e2, owner)
	set.Unlock(t3, owner)
	set.Unlock(t4, owner)
	return true
}
