package rng

import (
	"testing"
)

// fakeDispatch tiles [0, n) into odd-sized chunks handed to fn with
// rotating worker ids — an adversarial partitioning no real pool would
// produce, to prove the output is partition-independent.
func fakeDispatch(n int, fn func(worker, lo, hi int)) {
	step := 7
	w := 0
	for lo := 0; lo < n; {
		hi := lo + step
		if hi > n {
			hi = n
		}
		fn(w%3, lo, hi)
		lo = hi
		w++
		step++
	}
}

func TestPermGenIsPermutation(t *testing.T) {
	for _, n := range []int{0, 1, 2, 100, 1 << 12, 1<<14 + 7, 1 << 16} {
		g := NewPermGen(n)
		p := g.Generate(42, nil)
		if len(p) != n || !isPermutation(p) {
			t.Fatalf("PermGen(n=%d) not a permutation", n)
		}
	}
}

func TestPermGenDispatchIndependent(t *testing.T) {
	for _, n := range []int{1 << 12, 1<<15 + 13, 1 << 17} {
		serial := append([]uint32(nil), NewPermGen(n).Generate(99, nil)...)
		tiled := NewPermGen(n).Generate(99, fakeDispatch)
		for i := range serial {
			if serial[i] != tiled[i] {
				t.Fatalf("n=%d: dispatch-dependent output at index %d", n, i)
			}
		}
	}
}

func TestPermGenMatchesParallelPerm(t *testing.T) {
	for _, n := range []int{100, 1 << 13} {
		a := ParallelPerm(7, n, 4)
		b := NewPermGen(n).Generate(7, nil)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("n=%d: ParallelPerm disagrees with PermGen at %d", n, i)
			}
		}
	}
}

func TestPermGenReuseSmall(t *testing.T) {
	// The sub-cutoff path runs inside-out Fisher-Yates in the reused
	// buffer; regression guard for the implicit p[0] = 0 start state.
	g := NewPermGen(100)
	g.Generate(1, nil)
	if p := g.Generate(2, nil); !isPermutation(p) {
		t.Fatal("small-n reuse produced a non-permutation")
	}
}

func TestPermGenReuseAndDistinctSeeds(t *testing.T) {
	g := NewPermGen(1 << 13)
	a := append([]uint32(nil), g.Generate(1, nil)...)
	b := append([]uint32(nil), g.Generate(2, nil)...)
	if !isPermutation(a) || !isPermutation(b) {
		t.Fatal("reused generator produced a non-permutation")
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical permutations")
	}
	c := g.Generate(1, nil)
	for i := range a {
		if a[i] != c[i] {
			t.Fatal("same seed not reproducible after reuse")
		}
	}
}

// TestPermGenZeroAllocs is the point of the type: steady-state
// Generate calls must not touch the heap, with or without a dispatch.
func TestPermGenZeroAllocs(t *testing.T) {
	for _, n := range []int{1 << 10, 1 << 14} {
		g := NewPermGen(n)
		g.Generate(0, fakeDispatch)
		seed := uint64(1)
		allocs := testing.AllocsPerRun(10, func() {
			g.Generate(seed, fakeDispatch)
			seed++
		})
		if allocs != 0 {
			t.Fatalf("n=%d: Generate allocates %.1f per call, want 0", n, allocs)
		}
	}
}

// Bucket-position uniformity: element 0 should land anywhere in the
// output with roughly equal frequency across seeds (coarse chi-square
// guard against a mis-seeded scatter or shuffle stream).
func TestPermGenUniformPositions(t *testing.T) {
	const n = 1 << 13
	const trials = 400
	const cells = 8
	var hist [cells]int
	g := NewPermGen(n)
	for s := 0; s < trials; s++ {
		p := g.Generate(uint64(s)*2654435761+17, nil)
		for i, v := range p {
			if v == 0 {
				hist[i*cells/n]++
				break
			}
		}
	}
	expect := float64(trials) / cells
	chi2 := 0.0
	for _, h := range hist {
		d := float64(h) - expect
		chi2 += d * d / expect
	}
	// 7 dof; 24.3 is the 0.001 quantile.
	if chi2 > 24.3 {
		t.Fatalf("position histogram chi2=%.1f (hist=%v)", chi2, hist)
	}
}
