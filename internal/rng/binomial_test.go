package rng

import (
	"math"
	"testing"
)

// binomPMF returns the exact binomial probability mass at k.
func binomPMF(n int64, p float64, k int64) float64 {
	lg := lgammaP(float64(n+1)) - lgammaP(float64(k+1)) - lgammaP(float64(n-k+1))
	return math.Exp(lg + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p))
}

func lgammaP(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// checkBinomialMoments draws samples and compares mean and variance to the
// exact values within 5 standard errors.
func checkBinomialMoments(t *testing.T, n int64, p float64, samples int) {
	t.Helper()
	src := NewMT19937(uint64(n)*1000003 + uint64(p*1e9))
	var sum, sumsq float64
	for i := 0; i < samples; i++ {
		v := Binomial(src, n, p)
		if v < 0 || v > n {
			t.Fatalf("Binomial(%d,%v) = %d out of range", n, p, v)
		}
		f := float64(v)
		sum += f
		sumsq += f * f
	}
	mean := sum / float64(samples)
	variance := sumsq/float64(samples) - mean*mean
	wantMean := float64(n) * p
	wantVar := float64(n) * p * (1 - p)
	seMean := math.Sqrt(wantVar / float64(samples))
	if math.Abs(mean-wantMean) > 5*seMean+1e-9 {
		t.Errorf("Binomial(%d,%v): mean %.3f, want %.3f (se %.4f)", n, p, mean, wantMean, seMean)
	}
	if wantVar > 0 && math.Abs(variance-wantVar)/wantVar > 0.1 {
		t.Errorf("Binomial(%d,%v): variance %.3f, want %.3f", n, p, variance, wantVar)
	}
}

func TestBinomialMoments(t *testing.T) {
	cases := []struct {
		n int64
		p float64
	}{
		{10, 0.5},   // BINV
		{100, 0.05}, // BINV
		{1000, 0.5}, // BTPE
		{100000, 0.3},
		{1 << 20, 0.999}, // complement path
		{50, 0.9},
	}
	for _, c := range cases {
		checkBinomialMoments(t, c.n, c.p, 20000)
	}
}

func TestBinomialChiSquareSmall(t *testing.T) {
	// Exact goodness-of-fit for a small case covering the BINV path.
	const n = 12
	const p = 0.35
	const samples = 200000
	src := NewMT19937(424242)
	counts := make([]int, n+1)
	for i := 0; i < samples; i++ {
		counts[Binomial(src, n, p)]++
	}
	var x2 float64
	df := 0
	for k := int64(0); k <= n; k++ {
		exp := binomPMF(n, p, k) * samples
		if exp < 5 {
			continue
		}
		d := float64(counts[k]) - exp
		x2 += d * d / exp
		df++
	}
	// df around 11; very generous threshold (p < 1e-5).
	if x2 > 60 {
		t.Fatalf("binomial chi-square %.1f too large (df=%d)", x2, df)
	}
}

func TestBinomialChiSquareBTPE(t *testing.T) {
	// Goodness-of-fit across the central region of a BTPE case.
	const n = 400
	const p = 0.25
	const samples = 100000
	src := NewMT19937(777)
	counts := map[int64]int{}
	for i := 0; i < samples; i++ {
		counts[Binomial(src, n, p)]++
	}
	var x2 float64
	df := 0
	for k := int64(70); k <= 130; k++ {
		exp := binomPMF(n, p, k) * samples
		if exp < 10 {
			continue
		}
		d := float64(counts[k]) - exp
		x2 += d * d / exp
		df++
	}
	if float64(x2) > float64(df)+6*math.Sqrt(2*float64(df)) {
		t.Fatalf("BTPE chi-square %.1f too large for df=%d", x2, df)
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	src := NewSplitMix64(5)
	if v := Binomial(src, 0, 0.5); v != 0 {
		t.Fatalf("Binomial(0, .5) = %d", v)
	}
	if v := Binomial(src, 100, 0); v != 0 {
		t.Fatalf("Binomial(100, 0) = %d", v)
	}
	if v := Binomial(src, 100, 1); v != 100 {
		t.Fatalf("Binomial(100, 1) = %d", v)
	}
}

func TestBinomialComplementSmall(t *testing.T) {
	const n = 1 << 16
	const pl = 1e-3
	src := NewMT19937(31337)
	const samples = 5000
	var sum float64
	for i := 0; i < samples; i++ {
		v := BinomialComplementSmall(src, n, pl)
		if v < 0 || v > n {
			t.Fatalf("complement sample %d out of range", v)
		}
		sum += float64(v)
	}
	mean := sum / samples
	want := float64(n) * (1 - pl)
	se := math.Sqrt(float64(n)*pl*(1-pl)) / math.Sqrt(samples)
	if math.Abs(mean-want) > 6*se {
		t.Fatalf("complement mean %.2f, want %.2f (se %.3f)", mean, want, se)
	}
	if v := BinomialComplementSmall(src, 100, 0); v != 100 {
		t.Fatalf("pl=0 should execute all switches, got %d", v)
	}
	if v := BinomialComplementSmall(src, 100, 1); v != 0 {
		t.Fatalf("pl=1 should reject all switches, got %d", v)
	}
}
