package rng

import "testing"

// Reference output of the canonical mt19937-64 implementation seeded with
// init_by_array64({0x12345, 0x23456, 0x34567, 0x45678}) — the published
// test vector of Matsumoto & Nishimura (mt19937-64.out.txt).
var mtArrayRef = []uint64{
	7266447313870364031, 4946485549665804864, 16945909448695747420,
	16394063075524226720, 4873882236456199058, 14877448043947020171,
	6740343660852211943, 13857871200353263164, 5249110015610582907,
	10205081126064480383,
}

// Reference output for the single seed 5489 (the libstdc++ / reference
// default seed).
var mtSeedRef = []uint64{
	14514284786278117030, 4620546740167642908, 13109570281517897720,
	17462938647148434322, 355488278567739596, 7469126240319926998,
	4635995468481642529, 418970542659199878, 9604170989252516556,
	6358044926049913402,
}

func TestMT19937SeedBySliceReference(t *testing.T) {
	mt := &MT19937{}
	mt.SeedBySlice([]uint64{0x12345, 0x23456, 0x34567, 0x45678})
	for i, want := range mtArrayRef {
		if got := mt.Uint64(); got != want {
			t.Fatalf("output %d: got %d, want %d", i, got, want)
		}
	}
}

func TestMT19937SeedReference(t *testing.T) {
	mt := NewMT19937(5489)
	for i, want := range mtSeedRef {
		if got := mt.Uint64(); got != want {
			t.Fatalf("output %d: got %d, want %d", i, got, want)
		}
	}
}

func TestMT19937Reseed(t *testing.T) {
	mt := NewMT19937(12345)
	a := make([]uint64, 100)
	for i := range a {
		a[i] = mt.Uint64()
	}
	mt.Seed(12345)
	for i := range a {
		if got := mt.Uint64(); got != a[i] {
			t.Fatalf("re-seeded stream diverges at %d", i)
		}
	}
}

func TestSplitMix64Known(t *testing.T) {
	// Reference values for splitmix64 with seed 1234567.
	s := NewSplitMix64(1234567)
	want := []uint64{6457827717110365317, 3203168211198807973, 9817491932198370423}
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("splitmix output %d: got %d, want %d", i, got, w)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	s := NewSplitMix64(42)
	a := s.Split()
	b := s.Split()
	if a.Uint64() == b.Uint64() {
		t.Fatal("split streams start identically")
	}
}

func TestPerWorkerSeedsDeterministic(t *testing.T) {
	a := PerWorkerSeeds(99, 8)
	b := PerWorkerSeeds(99, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed %d differs between identical calls", i)
		}
	}
	seen := map[uint64]bool{}
	for _, s := range a {
		if seen[s] {
			t.Fatalf("duplicate worker seed %d", s)
		}
		seen[s] = true
	}
}
