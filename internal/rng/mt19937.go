// Package rng provides the pseudo-random machinery used throughout the
// repository: the MT19937-64 Mersenne Twister (the generator used by the
// paper's C++ implementation via libstdc++), SplitMix64 for cheap seeding
// and stream splitting, Lemire's unbiased bounded-integer method, exact
// binomial sampling, uniform random permutations (sequential Fisher-Yates
// and a parallel Rao-Sandelius scatter shuffle), and Vose alias tables for
// arbitrary discrete distributions.
//
// All generators implement Source, a minimal interface producing uniform
// 64-bit words. None of them are safe for concurrent use; parallel code
// derives one independent stream per worker via Split.
package rng

// Source produces uniformly distributed 64-bit words. Implementations are
// not safe for concurrent use.
type Source interface {
	// Uint64 returns the next pseudo-random 64-bit word.
	Uint64() uint64
}

const (
	mtN         = 312
	mtM         = 156
	mtMatrixA   = 0xB5026F5AA96619E9
	mtUpperMask = 0xFFFFFFFF80000000
	mtLowerMask = 0x7FFFFFFF
)

// MT19937 is the 64-bit Mersenne Twister of Matsumoto and Nishimura
// (MT19937-64). It matches the reference implementation bit for bit and
// therefore also libstdc++'s std::mt19937_64, the generator used by the
// paper's implementation.
type MT19937 struct {
	state [mtN]uint64
	index int
}

// NewMT19937 returns a generator seeded with seed using the reference
// initialization routine.
func NewMT19937(seed uint64) *MT19937 {
	mt := &MT19937{}
	mt.Seed(seed)
	return mt
}

// Seed resets the generator state from a single 64-bit seed.
func (mt *MT19937) Seed(seed uint64) {
	mt.state[0] = seed
	for i := 1; i < mtN; i++ {
		mt.state[i] = 6364136223846793005*(mt.state[i-1]^(mt.state[i-1]>>62)) + uint64(i)
	}
	mt.index = mtN
}

// SeedBySlice resets the state from a seed array using the reference
// init_by_array64 routine.
func (mt *MT19937) SeedBySlice(key []uint64) {
	mt.Seed(19650218)
	i, j := 1, 0
	k := len(key)
	if mtN > k {
		k = mtN
	}
	for ; k > 0; k-- {
		mt.state[i] = (mt.state[i] ^ ((mt.state[i-1] ^ (mt.state[i-1] >> 62)) * 3935559000370003845)) + key[j] + uint64(j)
		i++
		j++
		if i >= mtN {
			mt.state[0] = mt.state[mtN-1]
			i = 1
		}
		if j >= len(key) {
			j = 0
		}
	}
	for k = mtN - 1; k > 0; k-- {
		mt.state[i] = (mt.state[i] ^ ((mt.state[i-1] ^ (mt.state[i-1] >> 62)) * 2862933555777941757)) - uint64(i)
		i++
		if i >= mtN {
			mt.state[0] = mt.state[mtN-1]
			i = 1
		}
	}
	mt.state[0] = 1 << 63
	mt.index = mtN
}

func (mt *MT19937) generate() {
	for i := 0; i < mtN; i++ {
		x := (mt.state[i] & mtUpperMask) | (mt.state[(i+1)%mtN] & mtLowerMask)
		xa := x >> 1
		if x&1 != 0 {
			xa ^= mtMatrixA
		}
		mt.state[i] = mt.state[(i+mtM)%mtN] ^ xa
	}
	mt.index = 0
}

// Uint64 returns the next pseudo-random 64-bit word.
func (mt *MT19937) Uint64() uint64 {
	if mt.index >= mtN {
		mt.generate()
	}
	x := mt.state[mt.index]
	mt.index++
	x ^= (x >> 29) & 0x5555555555555555
	x ^= (x << 17) & 0x71D67FFFEDA60000
	x ^= (x << 37) & 0xFFF7EEE000000000
	x ^= x >> 43
	return x
}
