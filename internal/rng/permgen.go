package rng

// PermGen generates uniform random permutations of a fixed size into
// persistent buffers, so the per-superstep permutation of the global
// edge-switching kernels costs zero steady-state heap allocations (the
// original per-call scatter-shuffle allocated its bucket grid, its
// goroutines, and the output slice on every superstep — the measured
// w>1 allocation regression).
//
// The scheme is a counting variant of the Rao-Sandelius scatter
// shuffle: every element draws an independent uniform bucket, a
// counting pass sizes the buckets, a scatter pass places each element
// at its exact final slot, and each bucket is finished with a
// Fisher-Yates shuffle. Summing over bucket-size compositions shows
// the concatenation of independently shuffled uniform-scatter buckets
// is an exactly uniform permutation.
//
// Determinism: the element space is cut into permRanges fixed ranges —
// a partition of [0, n) that does NOT depend on the worker count — and
// every range (and every bucket shuffle) uses its own seed-derived
// SplitMix64 stream. The output is therefore a pure function of
// (seed, n): the same permutation for every parallelism degree and
// every dispatch interleaving. This is what lets the kernels stay
// bit-identical across worker counts at all graph sizes.
type PermGen struct {
	n        int
	nBuckets int
	seed     uint64

	bucketOf []uint16 // per-element bucket draw (classify -> scatter)
	counts   []uint32 // permRanges x nBuckets occupancy matrix
	cursor   []uint32 // write cursors, prefix-summed from counts
	out      []uint32

	classifyFn func(worker, lo, hi int)
	scatterFn  func(worker, lo, hi int)
	shuffleFn  func(worker, lo, hi int)
}

// Dispatch runs fn over a partition of [0, n) on some worker gang; a
// nil Dispatch means serial execution. conc.(*Pool).Blocks satisfies
// this signature, so engines pass a stored method value of their
// persistent pool (rng cannot import conc — conc depends on rng).
// Correctness and output do not depend on how the dispatch partitions:
// any tiling of [0, n) yields the same permutation.
type Dispatch func(n int, fn func(worker, lo, hi int))

// permRanges is the fixed number of classification/scatter ranges.
// It bounds the usable parallelism of a Generate call and is chosen
// comfortably above any sane worker count while keeping the counting
// matrix small (permRanges x maxPermBuckets x 4 bytes = 1 MiB).
const permRanges = 64

// Bucket sizing: power-of-two bucket count targeting ~16Ki elements
// (64 KiB) per bucket so every bucket shuffle is cache-resident,
// clamped to [minPermBuckets, maxPermBuckets] and to at least 16
// elements per bucket.
const (
	permBucketTarget = 1 << 14
	minPermBuckets   = 64
	maxPermBuckets   = 4096
)

// permGenCutoff is the size below which the scatter machinery is pure
// overhead and a sequential in-place Fisher-Yates is used instead.
const permGenCutoff = 1 << 12

func permBuckets(n int) int {
	b := minPermBuckets
	for b < maxPermBuckets && n/b > permBucketTarget {
		b <<= 1
	}
	for b > 1 && b*16 > n {
		b >>= 1
	}
	return b
}

// NewPermGen returns a generator of permutations of [0, n). All
// buffers are sized once here; Generate allocates nothing.
func NewPermGen(n int) *PermGen {
	if n < 0 || int64(n) > int64(^uint32(0)) {
		panic("rng: PermGen size out of range")
	}
	g := &PermGen{n: n, out: make([]uint32, n)}
	if n >= permGenCutoff {
		g.nBuckets = permBuckets(n)
		g.bucketOf = make([]uint16, n)
		g.counts = make([]uint32, permRanges*g.nBuckets)
		g.cursor = make([]uint32, permRanges*g.nBuckets)
	}
	g.classifyFn = g.classify
	g.scatterFn = g.scatter
	g.shuffleFn = g.shuffle
	return g
}

// N returns the permutation size the generator was built for.
func (g *PermGen) N() int { return g.n }

// rangeBounds returns element range r of the fixed partition.
func (g *PermGen) rangeBounds(r int) (int, int) {
	return g.n * r / permRanges, g.n * (r + 1) / permRanges
}

// rangeSeed derives the classification stream of range r; bucketSeed
// the shuffle stream of bucket b. The two domains are separated so no
// stream is reused across phases.
func (g *PermGen) rangeSeed(r int) uint64 {
	return Mix64(g.seed + uint64(r)*0x9E3779B97F4A7C15)
}

func (g *PermGen) bucketSeed(b int) uint64 {
	return Mix64((g.seed ^ 0xA3EC647659359ACD) + uint64(b)*0x9E3779B97F4A7C15)
}

// classify draws the bucket of every element in ranges [lo, hi) and
// counts per-(range, bucket) occupancy. Ranges are independent: no
// synchronization, no worker-dependent state.
func (g *PermGen) classify(_, lo, hi int) {
	mask := uint64(g.nBuckets - 1)
	for r := lo; r < hi; r++ {
		src := SplitMix64{state: g.rangeSeed(r)}
		counts := g.counts[r*g.nBuckets : (r+1)*g.nBuckets : (r+1)*g.nBuckets]
		elo, ehi := g.rangeBounds(r)
		for i := elo; i < ehi; i++ {
			b := uint16(src.Uint64() & mask)
			g.bucketOf[i] = b
			counts[b]++
		}
	}
}

// scatter writes every element of ranges [lo, hi) to its final slot
// using the prefix-summed cursors. Each (range, bucket) cell owns a
// disjoint slot interval, so writes are race-free and positions are
// exactly those of a sequential scatter (bucket-major, range-minor,
// in-range order preserved).
func (g *PermGen) scatter(_, lo, hi int) {
	nb := g.nBuckets
	for r := lo; r < hi; r++ {
		cursor := g.cursor[r*nb : (r+1)*nb : (r+1)*nb]
		elo, ehi := g.rangeBounds(r)
		for i := elo; i < ehi; i++ {
			b := g.bucketOf[i]
			g.out[cursor[b]] = uint32(i)
			cursor[b]++
		}
	}
}

// shuffle Fisher-Yates-shuffles buckets [lo, hi) in place. After the
// scatter, cursor[lastRange*nb + b] is bucket b's end offset.
func (g *PermGen) shuffle(_, lo, hi int) {
	base := (permRanges - 1) * g.nBuckets
	for b := lo; b < hi; b++ {
		end := int(g.cursor[base+b])
		start := 0
		if b > 0 {
			start = int(g.cursor[base+b-1])
		}
		src := SplitMix64{state: g.bucketSeed(b)}
		p := g.out[start:end]
		for i := len(p) - 1; i > 0; i-- {
			j := src.IntN(i + 1)
			p[i], p[j] = p[j], p[i]
		}
	}
}

// Generate fills and returns the persistent output buffer with a
// uniform permutation of [0, n) determined by seed alone. dispatch
// distributes the three internal passes (classify, scatter, shuffle)
// over a worker gang; nil runs them serially. The returned slice is
// owned by the generator and overwritten by the next call.
func (g *PermGen) Generate(seed uint64, dispatch Dispatch) []uint32 {
	n := g.n
	if n < permGenCutoff {
		// Inside-out Fisher-Yates into the persistent buffer, matching
		// Perm(NewSplitMix64(seed), n) exactly. The reused buffer must
		// restore the implicit p[0] = 0 the algorithm starts from.
		src := SplitMix64{state: seed}
		p := g.out
		if n > 0 {
			p[0] = 0
		}
		for i := 1; i < n; i++ {
			j := src.IntN(i + 1)
			p[i] = p[j]
			p[j] = uint32(i)
		}
		return p
	}
	g.seed = seed
	clear(g.counts)
	if dispatch == nil {
		g.classify(0, 0, permRanges)
	} else {
		dispatch(permRanges, g.classifyFn)
	}
	// Serial prefix sum over the (range, bucket) occupancy matrix in
	// bucket-major, range-minor order: cursor cells become start
	// offsets. permRanges*nBuckets is at most 256Ki cells — noise next
	// to the element passes.
	nb := g.nBuckets
	var running uint32
	for b := 0; b < nb; b++ {
		for r := 0; r < permRanges; r++ {
			g.cursor[r*nb+b] = running
			running += g.counts[r*nb+b]
		}
	}
	if dispatch == nil {
		g.scatter(0, 0, permRanges)
		g.shuffle(0, 0, nb)
	} else {
		dispatch(permRanges, g.scatterFn)
		dispatch(nb, g.shuffleFn)
	}
	return g.out
}
