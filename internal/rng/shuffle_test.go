package rng

import (
	"testing"
)

func isPermutation(p []uint32) bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if int(v) >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

func TestPermIsPermutation(t *testing.T) {
	src := NewMT19937(1)
	for _, n := range []int{0, 1, 2, 3, 17, 1000} {
		if p := Perm(src, n); !isPermutation(p) {
			t.Fatalf("Perm(%d) not a permutation", n)
		}
	}
}

// permIndex maps a permutation of [0,4) to a number in [0,24).
func permIndex(p []uint32) int {
	idx := 0
	fact := []int{6, 2, 1, 1}
	for i := 0; i < 4; i++ {
		smaller := 0
		for j := i + 1; j < 4; j++ {
			if p[j] < p[i] {
				smaller++
			}
		}
		idx += smaller * fact[i]
	}
	return idx
}

func TestPermUniform(t *testing.T) {
	src := NewMT19937(2024)
	counts := make([]int, 24)
	const samples = 240000
	for i := 0; i < samples; i++ {
		counts[permIndex(Perm(src, 4))]++
	}
	// df = 23; threshold ~ 65 gives p < 1e-5.
	if x2 := chiSquare(counts, samples); x2 > 65 {
		t.Fatalf("Perm(4) chi-square too large: %.1f", x2)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	src := NewMT19937(3)
	p := make([]uint32, 100)
	for i := range p {
		p[i] = uint32(i * 3)
	}
	q := make([]uint32, len(p))
	copy(q, p)
	Shuffle(src, q)
	sum := func(s []uint32) (t uint64) {
		for _, v := range s {
			t += uint64(v)
		}
		return
	}
	if sum(p) != sum(q) {
		t.Fatal("Shuffle changed the multiset of elements")
	}
}

func TestParallelPermIsPermutation(t *testing.T) {
	for _, n := range []int{0, 1, 100, 1 << 12, 1<<14 + 13} {
		for _, w := range []int{1, 2, 4, 7} {
			if p := ParallelPerm(12345, n, w); !isPermutation(p) {
				t.Fatalf("ParallelPerm(n=%d, w=%d) not a permutation", n, w)
			}
		}
	}
}

func TestParallelPermDeterministic(t *testing.T) {
	a := ParallelPerm(777, 1<<14, 4)
	b := ParallelPerm(777, 1<<14, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ParallelPerm not deterministic at index %d", i)
		}
	}
}

func TestParallelPermUniformPositions(t *testing.T) {
	// Marginal test: element 0 should land in every quarter of the
	// output equally often. Cheaper than a full permutation test but
	// catches bucket-concatenation bias, the realistic failure mode.
	const n = 1 << 13
	const samples = 2000
	counts := make([]int, 4)
	for s := 0; s < samples; s++ {
		p := ParallelPerm(uint64(s)*2654435761+1, n, 4)
		for pos, v := range p {
			if v == 0 {
				counts[pos*4/n]++
				break
			}
		}
	}
	if x2 := chiSquare(counts, samples); x2 > 22 { // df=3, p<1e-4
		t.Fatalf("element-0 position chi-square too large: %.1f (counts %v)", x2, counts)
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	weights := []float64{1, 2, 3, 4, 0, 10}
	a := NewAlias(weights)
	src := NewMT19937(55)
	const samples = 200000
	counts := make([]int, len(weights))
	for i := 0; i < samples; i++ {
		counts[a.Sample(src)]++
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	for i, w := range weights {
		want := float64(samples) * w / total
		got := float64(counts[i])
		if w == 0 {
			if got != 0 {
				t.Fatalf("zero-weight index %d sampled %d times", i, counts[i])
			}
			continue
		}
		se := 4 * sqrtF(want)
		if got < want-se-50 || got > want+se+50 {
			t.Fatalf("index %d: got %d draws, want about %.0f", i, counts[i], want)
		}
	}
}

func sqrtF(x float64) float64 {
	// Tiny wrapper to avoid importing math solely for the test above.
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 30; i++ {
		z = 0.5 * (z + x/z)
	}
	return z
}

func BenchmarkMT19937(b *testing.B) {
	src := NewMT19937(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += src.Uint64()
	}
	_ = sink
}

func BenchmarkSplitMix64(b *testing.B) {
	src := NewSplitMix64(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += src.Uint64()
	}
	_ = sink
}

func BenchmarkUintN(b *testing.B) {
	src := NewSplitMix64(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += UintN(src, 1000003)
	}
	_ = sink
}

func BenchmarkPermSequential(b *testing.B) {
	src := NewMT19937(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Perm(src, 1<<16)
	}
}

func BenchmarkPermParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = ParallelPerm(uint64(i), 1<<16, 4)
	}
}
