package rng

// Alias is a Vose alias table for sampling from an arbitrary discrete
// distribution in O(1) time per draw after O(k) construction. It backs
// the power-law degree-sequence generator (Pld of the paper's SynPld
// dataset).
type Alias struct {
	prob  []float64
	alias []uint32
}

// NewAlias builds an alias table for the given non-negative weights. The
// weights need not be normalized. At least one weight must be positive.
func NewAlias(weights []float64) *Alias {
	k := len(weights)
	if k == 0 {
		panic("rng: NewAlias with empty weights")
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("rng: NewAlias with negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: NewAlias with zero total weight")
	}

	a := &Alias{
		prob:  make([]float64, k),
		alias: make([]uint32, k),
	}
	scaled := make([]float64, k)
	small := make([]uint32, 0, k)
	large := make([]uint32, 0, k)
	for i, w := range weights {
		scaled[i] = w * float64(k) / total
		if scaled[i] < 1 {
			small = append(small, uint32(i))
		} else {
			large = append(large, uint32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = (scaled[l] + scaled[s]) - 1
		if scaled[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	// Numerical residue: remaining columns are full.
	for _, i := range large {
		a.prob[i] = 1
	}
	for _, i := range small {
		a.prob[i] = 1
	}
	return a
}

// Sample draws an index in [0, len(weights)) with probability
// proportional to its weight.
func (a *Alias) Sample(src Source) int {
	i := IntN(src, len(a.prob))
	if Float64(src) < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}
