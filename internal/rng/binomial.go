package rng

import "math"

// Binomial draws an exact sample from the binomial distribution with n
// trials and success probability p. G-ES-MC uses it to draw the number of
// executed switches per global switch, ℓ ~ Binom(⌊m/2⌋, 1−P_L)
// (Definition 3 of the paper).
//
// Small expectations use the BINV inversion algorithm; large expectations
// use the exact BTPE accept/reject algorithm of Kachitvichyanukul and
// Schmeiser (1988). Both are exact (no normal approximation).
func Binomial(src Source, n int64, p float64) int64 {
	switch {
	case n < 0 || math.IsNaN(p) || p < 0 || p > 1:
		panic("rng: Binomial with invalid parameters")
	case n == 0 || p == 0:
		return 0
	case p == 1:
		return n
	case p > 0.5:
		return n - Binomial(src, n, 1-p)
	}
	if float64(n)*p < 30 {
		return binomialInversion(src, n, p)
	}
	return binomialBTPE(src, n, p)
}

// binomialInversion is the BINV sequential-search algorithm. It is exact
// and efficient for n*p < ~30 (requires p <= 0.5 so that q^n does not
// underflow at the expectation cap used by Binomial).
func binomialInversion(src Source, n int64, p float64) int64 {
	q := 1 - p
	s := p / q
	a := float64(n+1) * s
	r := math.Pow(q, float64(n))
	for {
		x := int64(0)
		u := Float64(src)
		f := r
		for {
			if u < f {
				return x
			}
			if x > 110 {
				break // numerically exhausted tail; redraw
			}
			u -= f
			x++
			f *= a/float64(x) - s
		}
	}
}

// binomialBTPE implements the BTPE algorithm (triangle/parallelogram/
// exponential-tails envelope with squeeze acceptance). Requires p <= 0.5
// and n*p >= 30. The structure follows the published algorithm.
func binomialBTPE(src Source, n int64, p float64) int64 {
	r := p
	q := 1 - r
	fm := float64(n)*r + r
	m := int64(fm)
	nrq := float64(n) * r * q
	p1 := math.Floor(2.195*math.Sqrt(nrq)-4.6*q) + 0.5
	xm := float64(m) + 0.5
	xl := xm - p1
	xr := xm + p1
	c := 0.134 + 20.5/(15.3+float64(m))
	al := (fm - xl) / (fm - xl*r)
	lamL := al * (1 + 0.5*al)
	ar := (xr - fm) / (xr * q)
	lamR := ar * (1 + 0.5*ar)
	p2 := p1 * (1 + 2*c)
	p3 := p2 + c/lamL
	p4 := p3 + c/lamR

	var y int64
	for {
		u := Float64(src) * p4
		v := Float64(src)
		switch {
		case u <= p1:
			// Triangular central region: immediate acceptance.
			return int64(xm - p1*v + u)
		case u <= p2:
			// Parallelogram region.
			x := xl + (u-p1)/c
			v = v*c + 1 - math.Abs(xm-x)/p1
			if v > 1 {
				continue
			}
			y = int64(x)
		case u <= p3:
			// Left exponential tail.
			y = int64(xl + math.Log(v)/lamL)
			if y < 0 {
				continue
			}
			v *= (u - p2) * lamL
		default:
			// Right exponential tail.
			y = int64(xr - math.Log(v)/lamR)
			if y > n {
				continue
			}
			v *= (u - p3) * lamR
		}

		// Acceptance/rejection test of candidate y against f(y)/f(m).
		k := y - m
		if k < 0 {
			k = -k
		}
		if float64(k) <= 20 || float64(k) >= nrq/2-1 {
			// Explicit evaluation of the ratio by recurrence.
			s := r / q
			a := s * float64(n+1)
			f := 1.0
			switch {
			case m < y:
				for i := m + 1; i <= y; i++ {
					f *= a/float64(i) - s
				}
			case m > y:
				for i := y + 1; i <= m; i++ {
					f /= a/float64(i) - s
				}
			}
			if v <= f {
				return y
			}
			continue
		}

		// Squeeze using upper and lower bounds on log f(y)/f(m).
		rho := (float64(k) / nrq) * ((float64(k)*(float64(k)/3+0.625)+1.0/6)/nrq + 0.5)
		t := -float64(k) * float64(k) / (2 * nrq)
		alv := math.Log(v)
		if alv < t-rho {
			return y
		}
		if alv > t+rho {
			continue
		}

		// Final comparison using Stirling-corrected log factorials.
		x1 := float64(y + 1)
		f1 := float64(m + 1)
		z := float64(n + 1 - m)
		w := float64(n - y + 1)
		if alv <= xm*math.Log(f1/x1)+
			(float64(n-m)+0.5)*math.Log(z/w)+
			float64(y-m)*math.Log(w*r/(x1*q))+
			stirlingCorrection(f1)+stirlingCorrection(z)+
			stirlingCorrection(x1)+stirlingCorrection(w) {
			return y
		}
	}
}

// stirlingCorrection evaluates the truncated Stirling series used by the
// BTPE final test: (1/x)(1/12 - 1/360x^2 + 1/1260x^4 - ...), via the
// standard Horner form with a common denominator of 166320.
func stirlingCorrection(x float64) float64 {
	x2 := x * x
	return (13860 - (462-(132-(99-140/x2)/x2)/x2)/x2) / x / 166320
}

// BinomialComplementSmall draws n - Binom(n, pl) for small pl by counting
// failures with geometric skips, in O(n*pl + 1) expected time. It is the
// fast path for sampling ℓ when the loop-rejection probability P_L of
// G-ES-MC is tiny.
func BinomialComplementSmall(src Source, n int64, pl float64) int64 {
	if pl <= 0 {
		return n
	}
	if pl >= 1 {
		return 0
	}
	logq := math.Log1p(-pl)
	var failures int64
	pos := int64(0)
	for {
		u := Float64(src)
		skip := int64(math.Log1p(-u)/logq) + 1
		pos += skip
		if pos > n {
			break
		}
		failures++
	}
	return n - failures
}
