package rng

import "math/bits"

// SplitMix64 is Steele, Lea & Vigna's splittable generator. It is used to
// derive independent per-worker streams from a master seed and as a cheap
// high-quality generator where the full Mersenne Twister state would be
// wasteful (for example one generator per goroutine in a superstep).
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next pseudo-random 64-bit word.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Split returns a new generator whose stream is statistically independent
// of the receiver's future output.
func (s *SplitMix64) Split() *SplitMix64 {
	return &SplitMix64{state: s.Uint64()}
}

// IntN returns a uniformly distributed int in [0, n), consuming the
// stream exactly like the interface-based rng.IntN (same Lemire
// rejection pattern, so results are bit-identical). The concrete method
// exists for hot loops that create one generator per item: without the
// Source interface conversion the generator stays on the caller's
// stack instead of escaping to the heap.
func (s *SplitMix64) IntN(n int) int {
	if n <= 0 {
		panic("rng: IntN with n <= 0")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(s.Uint64(), un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			hi, lo = bits.Mul64(s.Uint64(), un)
		}
	}
	return int(hi)
}

// Mix64 applies the SplitMix64 finalizer to x. It is a strong 64-bit
// mixing function used both for seeding and as the hash function of the
// open-addressing edge sets (substituting for the paper's crc32
// instruction; see DESIGN.md).
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// PerWorkerSeeds expands a master seed into p decorrelated seeds, one per
// worker, using SplitMix64. The expansion is deterministic: the same
// (seed, p) always yields the same slice.
func PerWorkerSeeds(seed uint64, p int) []uint64 {
	src := NewSplitMix64(seed)
	out := make([]uint64, p)
	for i := range out {
		out[i] = src.Uint64()
	}
	return out
}
