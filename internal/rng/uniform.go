package rng

import "math/bits"

// UintN returns a uniformly distributed integer in [0, n) using Lemire's
// multiply-with-rejection method (Lemire, "Fast random integer generation
// in an interval", TOMACS 2019), the same bounded-integer method used by
// the paper's implementation. It consumes one 64-bit word in the common
// case. n must be positive.
func UintN(src Source, n uint64) uint64 {
	if n == 0 {
		panic("rng: UintN with n == 0")
	}
	hi, lo := bits.Mul64(src.Uint64(), n)
	if lo < n {
		// Rejection zone: recompute the threshold only on the rare
		// slow path.
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(src.Uint64(), n)
		}
	}
	return hi
}

// IntN returns a uniformly distributed int in [0, n). n must be positive.
func IntN(src Source, n int) int {
	if n <= 0 {
		panic("rng: IntN with n <= 0")
	}
	return int(UintN(src, uint64(n)))
}

// TwoDistinct returns two distinct uniformly distributed integers in
// [0, n). It matches the paper's edge-index sampling for ES-MC (two
// indices i != j). n must be at least 2.
func TwoDistinct(src Source, n int) (int, int) {
	if n < 2 {
		panic("rng: TwoDistinct with n < 2")
	}
	i := IntN(src, n)
	j := IntN(src, n-1)
	if j >= i {
		j++
	}
	return i, j
}

// Bool returns an unbiased random bit.
func Bool(src Source) bool {
	return src.Uint64()>>63 != 0
}

// Float64 returns a uniformly distributed float64 in [0, 1) with 53 bits
// of precision.
func Float64(src Source) float64 {
	return float64(src.Uint64()>>11) / (1 << 53)
}
