package rng

import (
	"math"
	"testing"
	"testing/quick"
)

// chiSquare returns the chi-square statistic of observed counts against a
// uniform expectation.
func chiSquare(counts []int, samples int) float64 {
	expected := float64(samples) / float64(len(counts))
	var x2 float64
	for _, c := range counts {
		d := float64(c) - expected
		x2 += d * d / expected
	}
	return x2
}

func TestUintNUniform(t *testing.T) {
	src := NewMT19937(7)
	const n = 13
	const samples = 130000
	counts := make([]int, n)
	for i := 0; i < samples; i++ {
		v := UintN(src, n)
		if v >= n {
			t.Fatalf("UintN returned %d >= %d", v, n)
		}
		counts[v]++
	}
	// df = 12; P(X2 > 40) < 1e-4.
	if x2 := chiSquare(counts, samples); x2 > 40 {
		t.Fatalf("UintN chi-square too large: %.1f", x2)
	}
}

func TestUintNRange(t *testing.T) {
	src := NewSplitMix64(3)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := UintN(src, n)
		return v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUintNPowerOfTwoBoundary(t *testing.T) {
	src := NewSplitMix64(11)
	for _, n := range []uint64{1, 2, 1 << 32, 1<<63 + 1, ^uint64(0)} {
		for i := 0; i < 100; i++ {
			if v := UintN(src, n); v >= n {
				t.Fatalf("UintN(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestTwoDistinct(t *testing.T) {
	src := NewMT19937(99)
	const n = 5
	counts := make([]int, n*n)
	const samples = 100000
	for i := 0; i < samples; i++ {
		a, b := TwoDistinct(src, n)
		if a == b {
			t.Fatal("TwoDistinct returned equal indices")
		}
		if a < 0 || a >= n || b < 0 || b >= n {
			t.Fatalf("TwoDistinct out of range: %d, %d", a, b)
		}
		counts[a*n+b]++
	}
	// All 20 ordered pairs should be uniform: df = 19, threshold ~ 55.
	pairs := make([]int, 0, n*(n-1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				pairs = append(pairs, counts[i*n+j])
			}
		}
	}
	if x2 := chiSquare(pairs, samples); x2 > 55 {
		t.Fatalf("TwoDistinct chi-square too large: %.1f", x2)
	}
}

func TestFloat64Range(t *testing.T) {
	src := NewMT19937(1)
	var sum float64
	const samples = 200000
	for i := 0; i < samples; i++ {
		f := Float64(src)
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / samples; math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestBoolUnbiased(t *testing.T) {
	src := NewMT19937(2)
	ones := 0
	const samples = 100000
	for i := 0; i < samples; i++ {
		if Bool(src) {
			ones++
		}
	}
	if math.Abs(float64(ones)-samples/2) > 4*math.Sqrt(samples/4) {
		t.Fatalf("Bool bias: %d ones of %d", ones, samples)
	}
}

func TestMix64Bijective(t *testing.T) {
	// Distinct inputs must produce distinct outputs on a sample (Mix64
	// is a bijection; collisions would indicate a porting bug).
	seen := map[uint64]uint64{}
	for i := uint64(0); i < 10000; i++ {
		h := Mix64(i * 0x9E3779B97F4A7C15)
		if prev, ok := seen[h]; ok {
			t.Fatalf("Mix64 collision between inputs %d and %d", prev, i)
		}
		seen[h] = i
	}
}
