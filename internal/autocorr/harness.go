package autocorr

import (
	"gesmc/internal/core"
	"gesmc/internal/graph"
	"gesmc/internal/hashset"
	"gesmc/internal/rng"
)

// Chain selects which Markov chain the harness drives.
type Chain int

const (
	// ChainES is ES-MC; one superstep = ⌊m/2⌋ uniform switches.
	ChainES Chain = iota
	// ChainGlobalES is G-ES-MC; one superstep = one global switch.
	ChainGlobalES
)

func (c Chain) String() string {
	if c == ChainGlobalES {
		return "G-ES-MC"
	}
	return "ES-MC"
}

// Result is the outcome of one analysis run.
type Result struct {
	Chain     Chain
	Thinnings []int
	// NonIndependent[i] is the fraction of tracked edges still
	// Markov-like at thinning Thinnings[i].
	NonIndependent []float64
}

// Analyze runs the chain for supersteps supersteps on a clone of g,
// tracking the edges of the initial graph (the paper's NetRep protocol;
// for tiny graphs this is nearly all information) and returns the
// fraction of non-independent edges per thinning value.
func Analyze(g *graph.Graph, chain Chain, supersteps int, thinnings []int, loopProb float64, seed uint64) Result {
	work := g.Clone()
	m := work.M()
	E := work.Edges()
	S := hashset.FromEdges(E, 0.5)
	src := rng.NewMT19937(seed)

	tracked := append([]graph.Edge(nil), g.Edges()...)
	col := NewCollector(len(tracked), thinnings)
	bits := make([]bool, len(tracked))

	record := func(t int) {
		bits = TrackedBits(tracked, S.Contains, bits)
		col.Record(t, bits)
	}
	record(0)

	var buf []core.Switch
	for t := 1; t <= supersteps; t++ {
		switch chain {
		case ChainES:
			sw := core.SampleSwitches(m, m/2, src)
			core.ExecuteSequential(E, S, sw)
		case ChainGlobalES:
			perm, l := core.SampleGlobalSwitch(m, loopProb, src)
			_, buf = core.ExecuteGlobalSequential(E, S, perm, l, buf)
		}
		record(t)
	}

	return Result{
		Chain:          chain,
		Thinnings:      col.Thinnings(),
		NonIndependent: col.FractionNonIndependent(),
	}
}

// FirstThinningBelow returns the smallest thinning value whose
// non-independent fraction is below tau, or 0 if none qualifies — the
// y-axis of Figure 3.
func (r Result) FirstThinningBelow(tau float64) int {
	for i, k := range r.Thinnings {
		if r.NonIndependent[i] < tau {
			return k
		}
	}
	return 0
}

// MeanResults averages the NonIndependent curves of several runs
// (same thinning schedule required).
func MeanResults(results []Result) Result {
	if len(results) == 0 {
		return Result{}
	}
	out := Result{
		Chain:          results[0].Chain,
		Thinnings:      results[0].Thinnings,
		NonIndependent: make([]float64, len(results[0].NonIndependent)),
	}
	for _, r := range results {
		for i, v := range r.NonIndependent {
			out.NonIndependent[i] += v
		}
	}
	for i := range out.NonIndependent {
		out.NonIndependent[i] /= float64(len(results))
	}
	return out
}
