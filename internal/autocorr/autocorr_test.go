package autocorr

import (
	"math"
	"testing"

	"gesmc/internal/gen"
	"gesmc/internal/graph"
	"gesmc/internal/rng"
)

func TestG2Degenerate(t *testing.T) {
	if s, n := g2([4]uint32{0, 0, 0, 0}); s != 0 || n != 0 {
		t.Fatalf("empty table: %v, %d", s, n)
	}
	// Constant series (always present): only n11 counts.
	if s, _ := g2([4]uint32{0, 0, 0, 100}); s != 0 {
		t.Fatalf("constant series G2 = %v, want 0", s)
	}
	// Perfectly independent 2x2 table: G2 = 0.
	if s, _ := g2([4]uint32{25, 25, 25, 25}); math.Abs(s) > 1e-9 {
		t.Fatalf("balanced table G2 = %v, want 0", s)
	}
}

func TestG2DetectsStrongDependence(t *testing.T) {
	// Deterministic alternation: heavily Markov-like.
	s, n := g2([4]uint32{0, 50, 50, 0})
	if n != 100 {
		t.Fatalf("n = %d", n)
	}
	if s <= math.Log(100) {
		t.Fatalf("alternating series not flagged: G2 = %v", s)
	}
}

func TestCollectorIndependentSeries(t *testing.T) {
	// Feed iid bits: virtually all edges should be deemed independent
	// at every thinning.
	src := rng.NewMT19937(42)
	const nEdges = 500
	col := NewCollector(nEdges, []int{1, 2, 4})
	bits := make([]bool, nEdges)
	for t0 := 0; t0 <= 400; t0++ {
		for i := range bits {
			bits[i] = rng.Bool(src)
		}
		col.Record(t0, bits)
	}
	fr := col.FractionNonIndependent()
	for i, f := range fr {
		if f > 0.05 {
			t.Fatalf("thinning %d: %.3f flagged dependent on iid input", col.Thinnings()[i], f)
		}
	}
}

func TestCollectorMarkovSeries(t *testing.T) {
	// Feed strongly sticky Markov bits (stay with prob 0.95): thinning
	// 1 must flag nearly everything; large thinnings much less.
	src := rng.NewMT19937(43)
	const nEdges = 300
	col := NewCollector(nEdges, []int{1, 32})
	state := make([]bool, nEdges)
	bits := make([]bool, nEdges)
	for t0 := 0; t0 <= 2000; t0++ {
		for i := range state {
			if rng.Float64(src) < 0.05 {
				state[i] = !state[i]
			}
			bits[i] = state[i]
		}
		col.Record(t0, bits)
	}
	fr := col.FractionNonIndependent()
	if fr[0] < 0.9 {
		t.Fatalf("thinning 1 flagged only %.3f of sticky series", fr[0])
	}
	if fr[1] > fr[0]/2 {
		t.Fatalf("thinning 32 (%.3f) should be far below thinning 1 (%.3f)", fr[1], fr[0])
	}
}

func TestCollectorThinningSchedule(t *testing.T) {
	col := NewCollector(1, []int{2})
	bits := []bool{true}
	for t0 := 0; t0 <= 10; t0++ {
		col.Record(t0, bits)
	}
	// Thinned series has entries at t=0,2,4,6,8,10 -> 5 transitions.
	if got := col.counts[0][3]; got != 5 {
		t.Fatalf("thinned transition count = %d, want 5", got)
	}
	if col.Samples(0) != 5 {
		t.Fatalf("Samples = %d", col.Samples(0))
	}
}

func TestDefaultThinnings(t *testing.T) {
	th := DefaultThinnings(50)
	if th[0] != 1 {
		t.Fatal("schedule must start at 1")
	}
	for i := 1; i < len(th); i++ {
		if th[i] <= th[i-1] || th[i] > 50 {
			t.Fatalf("bad schedule %v", th)
		}
	}
}

func TestAnalyzeBothChains(t *testing.T) {
	src := rng.NewMT19937(7)
	g, err := gen.SynPldGraph(128, 2.3, src)
	if err != nil {
		t.Fatal(err)
	}
	for _, chain := range []Chain{ChainES, ChainGlobalES} {
		res := Analyze(g, chain, 60, DefaultThinnings(16), 0.01, 99)
		if len(res.NonIndependent) != len(res.Thinnings) {
			t.Fatal("result length mismatch")
		}
		// At thinning 1 the chain is strongly autocorrelated.
		if res.NonIndependent[0] < 0.3 {
			t.Fatalf("%v: thinning 1 fraction %.3f suspiciously low", chain, res.NonIndependent[0])
		}
		// Fractions are probabilities.
		for _, f := range res.NonIndependent {
			if f < 0 || f > 1 {
				t.Fatalf("fraction %v out of range", f)
			}
		}
		// The curve should broadly decrease: final below initial.
		last := res.NonIndependent[len(res.NonIndependent)-1]
		if last >= res.NonIndependent[0] {
			t.Fatalf("%v: no decay: first %.3f, last %.3f", chain, res.NonIndependent[0], last)
		}
	}
}

func TestFirstThinningBelow(t *testing.T) {
	r := Result{
		Thinnings:      []int{1, 2, 4},
		NonIndependent: []float64{0.5, 0.2, 0.005},
	}
	if k := r.FirstThinningBelow(0.01); k != 4 {
		t.Fatalf("FirstThinningBelow(0.01) = %d", k)
	}
	if k := r.FirstThinningBelow(0.3); k != 2 {
		t.Fatalf("FirstThinningBelow(0.3) = %d", k)
	}
	if k := r.FirstThinningBelow(0.001); k != 0 {
		t.Fatalf("FirstThinningBelow(0.001) = %d", k)
	}
}

func TestMeanResults(t *testing.T) {
	a := Result{Thinnings: []int{1, 2}, NonIndependent: []float64{1, 0.5}}
	b := Result{Thinnings: []int{1, 2}, NonIndependent: []float64{0, 0.5}}
	m := MeanResults([]Result{a, b})
	if m.NonIndependent[0] != 0.5 || m.NonIndependent[1] != 0.5 {
		t.Fatalf("mean = %v", m.NonIndependent)
	}
	if MeanResults(nil).NonIndependent != nil {
		t.Fatal("empty mean should be zero value")
	}
}

func TestTrackedBits(t *testing.T) {
	edges := []graph.Edge{graph.MakeEdge(0, 1), graph.MakeEdge(2, 3)}
	present := map[graph.Edge]bool{graph.MakeEdge(0, 1): true}
	bits := TrackedBits(edges, func(e graph.Edge) bool { return present[e] }, nil)
	if !bits[0] || bits[1] {
		t.Fatalf("bits = %v", bits)
	}
}

func TestAnalyzeCurveball(t *testing.T) {
	src := rng.NewMT19937(8)
	g, err := gen.SynPldGraph(128, 2.4, src)
	if err != nil {
		t.Fatal(err)
	}
	for _, global := range []bool{false, true} {
		res := AnalyzeCurveball(g, global, 48, DefaultThinnings(8), 99)
		if len(res.NonIndependent) != len(res.Thinnings) {
			t.Fatal("malformed result")
		}
		for _, f := range res.NonIndependent {
			if f < 0 || f > 1 {
				t.Fatalf("fraction %v out of range", f)
			}
		}
		// Trades decorrelate over supersteps: the curve must decay.
		if res.NonIndependent[len(res.NonIndependent)-1] >= res.NonIndependent[0] {
			t.Fatalf("no decay (global=%v): %v", global, res.NonIndependent)
		}
	}
}
