package autocorr

import (
	"gesmc/internal/curveball"
	"gesmc/internal/graph"
	"gesmc/internal/rng"
)

// AnalyzeCurveball runs the autocorrelation diagnostic for the Curveball
// chains (one superstep = one global trade, or ⌊n/2⌋ single trades for
// the non-global variant — each node participating once per superstep,
// the same normalization spirit as §6.1's superstep). The paper's §7
// leaves the relation between Curveball and ES-MC mixing open; this
// harness produces the empirical comparison.
func AnalyzeCurveball(g *graph.Graph, global bool, supersteps int, thinnings []int, seed uint64) Result {
	st := curveball.NewState(g)
	src := rng.NewMT19937(seed)

	tracked := append([]graph.Edge(nil), g.Edges()...)
	col := NewCollector(len(tracked), thinnings)
	bits := make([]bool, len(tracked))

	record := func(t int) {
		for i, e := range tracked {
			bits[i] = st.Contains(e.U(), e.V())
		}
		col.Record(t, bits)
	}
	record(0)

	n := g.N()
	for t := 1; t <= supersteps; t++ {
		if global {
			st.GlobalTrade(src)
		} else {
			for k := 0; k < n/2; k++ {
				u, v := rng.TwoDistinct(src, n)
				st.Trade(graph.Node(u), graph.Node(v), src)
			}
		}
		record(t)
	}

	return Result{
		Chain:          ChainGlobalES, // reported under its own label by callers
		Thinnings:      col.Thinnings(),
		NonIndependent: col.FractionNonIndependent(),
	}
}
