// Package autocorr implements the empirical mixing-time methodology of
// §6.1 of the paper (after Ray, Pinar & Seshadhri): track, for every
// edge of interest, the binary time series of its existence across
// Markov chain supersteps; thin the series by k; and decide per edge
// whether the thinned series looks like independent draws or still like
// a first-order Markov chain, using the G²-statistic with a BIC penalty.
// The reported quantity is the fraction of non-independent edges as a
// function of the thinning value k.
//
// As in the paper, the collector aggregates transition counts on the fly
// for a fixed set of thinning values instead of storing the full series,
// keeping memory at Θ(|tracked| · |thinnings|).
package autocorr

import (
	"math"

	"gesmc/internal/graph"
)

// Collector accumulates thinned transition counts for a set of tracked
// edges.
type Collector struct {
	thinnings []int
	nEdges    int
	// Per (thinning, edge): transition counts n00, n01, n10, n11 of the
	// k-thinned series, plus the previous thinned observation.
	counts [][4]uint32
	prev   []uint8 // 0 = absent, 1 = present, 2 = unseen
	steps  int
}

// NewCollector prepares a collector for nEdges tracked edges and the
// given thinning values (each >= 1, typically small composites; compare
// Fig. 3's remark on thinning quantization).
func NewCollector(nEdges int, thinnings []int) *Collector {
	for _, k := range thinnings {
		if k < 1 {
			panic("autocorr: thinning value < 1")
		}
	}
	c := &Collector{
		thinnings: append([]int(nil), thinnings...),
		nEdges:    nEdges,
		counts:    make([][4]uint32, len(thinnings)*nEdges),
		prev:      make([]uint8, len(thinnings)*nEdges),
	}
	for i := range c.prev {
		c.prev[i] = 2
	}
	return c
}

// Thinnings returns the configured thinning values.
func (c *Collector) Thinnings() []int { return c.thinnings }

// Record ingests the chain state after superstep t (t = 0 is the initial
// graph; call with strictly increasing t). bits[e] must hold the
// existence bit of tracked edge e.
func (c *Collector) Record(t int, bits []bool) {
	if len(bits) != c.nEdges {
		panic("autocorr: bit vector length mismatch")
	}
	for ti, k := range c.thinnings {
		if t%k != 0 {
			continue
		}
		base := ti * c.nEdges
		for e, b := range bits {
			i := base + e
			var cur uint8
			if b {
				cur = 1
			}
			if p := c.prev[i]; p != 2 {
				c.counts[i][p<<1|cur]++
			}
			c.prev[i] = cur
		}
	}
	c.steps = t
}

// g2 computes the G²-statistic of the 2x2 transition table against the
// independence model. Zero cells contribute nothing (the MLE convention).
func g2(n [4]uint32) (float64, uint32) {
	n00, n01, n10, n11 := float64(n[0]), float64(n[1]), float64(n[2]), float64(n[3])
	total := n00 + n01 + n10 + n11
	if total == 0 {
		return 0, 0
	}
	r0 := n00 + n01
	r1 := n10 + n11
	c0 := n00 + n10
	c1 := n01 + n11
	var s float64
	add := func(nij, ri, cj float64) {
		if nij > 0 {
			s += nij * math.Log(nij*total/(ri*cj))
		}
	}
	add(n00, r0, c0)
	add(n01, r0, c1)
	add(n10, r1, c0)
	add(n11, r1, c1)
	return 2 * s, uint32(total)
}

// EdgeIndependent decides, for tracked edge e at thinning index ti,
// whether the thinned series is better explained by independent draws
// than by a first-order Markov chain: the Markov model spends one extra
// free parameter, so BIC prefers independence iff G² <= ln(N).
func (c *Collector) EdgeIndependent(ti, e int) bool {
	stat, n := g2(c.counts[ti*c.nEdges+e])
	if n == 0 {
		return true // no data: a constant edge is trivially independent
	}
	return stat <= math.Log(float64(n))
}

// FractionNonIndependent returns, for each thinning value (in the order
// of Thinnings), the fraction of tracked edges whose thinned series is
// still Markov-like — the y-axis of Figures 2 and 3.
func (c *Collector) FractionNonIndependent() []float64 {
	out := make([]float64, len(c.thinnings))
	for ti := range c.thinnings {
		bad := 0
		for e := 0; e < c.nEdges; e++ {
			if !c.EdgeIndependent(ti, e) {
				bad++
			}
		}
		out[ti] = float64(bad) / float64(c.nEdges)
	}
	return out
}

// Samples returns the number of thinned transitions available at
// thinning index ti for a full series of the recorded length.
func (c *Collector) Samples(ti int) int {
	return c.steps / c.thinnings[ti]
}

// DefaultThinnings returns the thinning schedule used by the experiment
// drivers: small composite-friendly values up to max (the paper likewise
// avoids large primes to keep the quantization even).
func DefaultThinnings(max int) []int {
	candidates := []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256}
	var out []int
	for _, k := range candidates {
		if k <= max {
			out = append(out, k)
		}
	}
	return out
}

// TrackedBits fills buf with the existence bit of every tracked edge,
// given a membership oracle.
func TrackedBits(tracked []graph.Edge, contains func(graph.Edge) bool, buf []bool) []bool {
	if cap(buf) < len(tracked) {
		buf = make([]bool, len(tracked))
	}
	buf = buf[:len(tracked)]
	for i, e := range tracked {
		buf[i] = contains(e)
	}
	return buf
}
