// Example exact: the exact-uniformity tier next to the MCMC tier.
// The same degree sequence is sampled twice — once with the provably
// uniform rejection sampler (Algorithm: Exact, i.i.d. draws, no
// burn-in or thinning to tune) and once with the default MCMC chain —
// and the per-draw cost of exactness is printed as the rejection
// ledger. A second, denser sequence shows the typed degradation path:
// ErrExactUnsupported names the fallback instead of silently serving
// an approximate chain, and the program falls back explicitly.
//
//	go run ./examples/exact
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"gesmc"
)

// ensemble draws count samples and returns the mean triangle count,
// a statistic sensitive enough to show both tiers agree.
func ensemble(s *gesmc.Sampler, count int) (float64, error) {
	var sum float64
	samples, err := s.Collect(context.Background(), count)
	if err != nil {
		return 0, err
	}
	for _, smp := range samples {
		sum += float64(smp.Graph.Triangles())
	}
	return sum / float64(count), nil
}

func main() {
	const draws = 500
	target, err := gesmc.GenerateRegular(24, 3)
	if err != nil {
		log.Fatal(err)
	}

	// Tier 1: provably uniform. Every draw is an independent uniform
	// realization of the degree sequence — no mixing-time assumption.
	exactS, err := gesmc.NewSampler(target.Clone(),
		gesmc.WithAlgorithm(gesmc.Exact), gesmc.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	defer exactS.Close()
	exactMean, err := ensemble(exactS, draws)
	if err != nil {
		log.Fatal(err)
	}
	st := exactS.Stats()
	fmt.Printf("exact: mean triangles %.3f over %d i.i.d. draws\n", exactMean, draws)
	fmt.Printf("exact: rejection ledger: %d attempts, %d restarts (%d loops, %d multi-edges)\n",
		st.Attempted, st.Restarts, st.LoopDefects, st.MultiDefects)

	// Tier 2: asymptotically uniform. Same sequence through the default
	// chain; the two means agree within sampling noise (the differential
	// test suite gates this with a chi-square against enumeration).
	mcmcS, err := gesmc.NewSampler(target.Clone(),
		gesmc.WithAlgorithm(gesmc.ParGlobalES), gesmc.WithSeed(2), gesmc.WithWorkers(2))
	if err != nil {
		log.Fatal(err)
	}
	defer mcmcS.Close()
	mcmcMean, err := ensemble(mcmcS, draws)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mcmc:  mean triangles %.3f over %d thinned chain samples\n", mcmcMean, draws)

	// Degradation: a dense sequence is outside the rejection regime.
	// The error is typed — the caller chooses the fallback; the library
	// never swaps tiers behind its back.
	dense := gesmc.GenerateGNP(128, 0.2, 3)
	if _, err := gesmc.NewSampler(dense.Clone(), gesmc.WithAlgorithm(gesmc.Exact)); errors.Is(err, gesmc.ErrExactUnsupported) {
		fmt.Printf("dense target refused by the exact tier:\n  %v\n", err)
		fallback, err := gesmc.NewSampler(dense.Clone(),
			gesmc.WithAlgorithm(gesmc.ParGlobalES), gesmc.WithSeed(4), gesmc.WithWorkers(2))
		if err != nil {
			log.Fatal(err)
		}
		defer fallback.Close()
		mean, err := ensemble(fallback, 20)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("explicit fallback to ParGlobalES: mean triangles %.1f\n", mean)
	} else {
		log.Fatalf("expected ErrExactUnsupported, got %v", err)
	}
}
