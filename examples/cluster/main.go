// Example cluster: the sharded sampling tier in one process. It boots
// two gesmcd-equivalent shards on loopback ports, puts a coordinator
// in front of them, and pushes a mix of requests through — printing,
// per request, which shard the consistent-hash ring placed it on and
// how the engine pools fill up. One target is requested repeatedly
// past the hot threshold, so the run also shows a key being promoted
// to replicated service across both shards.
//
//	go run ./examples/cluster
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"

	"gesmc/internal/cluster"
	"gesmc/internal/service"
	"gesmc/wire"
)

// bootShard starts one sampling daemon on an ephemeral loopback port
// and returns its URL plus a shutdown function.
func bootShard(id string) (string, func()) {
	svc := service.New(service.Config{ID: id, WorkerBudget: 4, PoolCapacity: 8})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: service.NewHandler(svc)}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String(), func() {
		srv.Shutdown(context.Background())
		svc.Shutdown(context.Background())
	}
}

func main() {
	urlA, stopA := bootShard("shard-a")
	defer stopA()
	urlB, stopB := bootShard("shard-b")
	defer stopB()

	coord, err := cluster.New(cluster.Config{
		Shards: []cluster.ShardConfig{
			{ID: "shard-a", URL: urlA},
			{ID: "shard-b", URL: urlB},
		},
		ID:             "coordinator",
		Replication:    2,
		HotThreshold:   4, // low, so the demo promotes quickly
		HealthInterval: -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()

	// A spread of cold targets: each seed is a distinct pool key, so
	// the ring scatters them across the shards deterministically.
	fmt.Println("cold keys (one ring owner each):")
	for seed := uint64(1); seed <= 6; seed++ {
		req := &wire.SampleRequest{Degrees: []int{4, 3, 3, 2, 2, 2, 1, 1}, Samples: 2, Seed: seed}
		backend, err := run(coord, req)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  seed=%d -> %s\n", seed, backend)
	}

	// One hot target: requested past HotThreshold, it round-robins
	// over the replica set instead of pinning to its single owner.
	fmt.Println("hot key (promoted to replicated service):")
	hot := &wire.SampleRequest{Degrees: []int{3, 2, 2, 1}, Samples: 1, Seed: 42}
	served := map[string]int{}
	for i := 0; i < 10; i++ {
		backend, err := run(coord, hot)
		if err != nil {
			log.Fatal(err)
		}
		served[backend]++
	}
	for id, n := range served {
		fmt.Printf("  %s served %d of 10\n", id, n)
	}

	m, err := coord.Metrics(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("routing: owner=%d replica=%d spill=%d\n",
		m.Cluster.RoutedOwner, m.Cluster.RoutedReplica, m.Cluster.RoutedSpill)
	for _, sh := range m.Cluster.Shards {
		fmt.Printf("shard %s: alive=%v requests=%d\n", sh.ID, sh.Alive, sh.Requests)
	}
	for _, hk := range m.Cluster.HotKeys {
		fmt.Printf("hot key %s: %d requests\n", hk.Key, hk.Hits)
	}
}

// run streams one request through the coordinator and returns the
// backend identity stamped on its lines.
func run(coord *cluster.Coordinator, req *wire.SampleRequest) (string, error) {
	backend := ""
	err := coord.Sample(context.Background(), req, func(ln wire.Line) error {
		if ln.Error != "" {
			return fmt.Errorf("stream terminated: %s (%s)", ln.Error, ln.Code)
		}
		if ln.Stats != nil {
			backend = ln.Stats.Backend
		}
		return nil
	})
	return backend, err
}
