// Scaling: compare all implementations on one graph and sweep the
// worker count of ParGlobalES — a miniature of the paper's Table 4 and
// Figure 6 through the public API. Every run goes through a Sampler,
// so the comparison covers exactly the code path production callers
// use; the algorithm sweep includes the Curveball trade chains, now
// first-class public algorithms.
package main

import (
	"fmt"
	"log"
	"runtime"

	"gesmc"
)

func main() {
	g, err := gesmc.GeneratePowerLaw(1<<15, 2.2, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: n=%d m=%d dmax=%d (20 supersteps each)\n\n", g.N(), g.M(), g.MaxDegree())

	run := func(alg gesmc.Algorithm, workers int) gesmc.Stats {
		s, err := gesmc.NewSampler(g.Clone(),
			gesmc.WithAlgorithm(alg),
			gesmc.WithWorkers(workers),
			gesmc.WithSeed(5),
		)
		if err != nil {
			log.Fatal(err)
		}
		stats, err := s.Step(20)
		if err != nil {
			log.Fatal(err)
		}
		return stats
	}

	fmt.Println("algorithm comparison (P=1):")
	for _, alg := range gesmc.Algorithms() {
		stats := run(alg, 1)
		fmt.Printf("  %-16s %10v  acceptance=%.3f\n",
			stats.Algorithm, stats.Duration.Round(10_000), float64(stats.Accepted)/float64(stats.Attempted))
	}

	fmt.Println("\nParGlobalES worker sweep:")
	var base float64
	maxP := runtime.GOMAXPROCS(0) * 4 // oversubscribe to show the trend even on small hosts
	for p := 1; p <= maxP; p *= 2 {
		stats := run(gesmc.ParGlobalES, p)
		secs := stats.Duration.Seconds()
		if p == 1 {
			base = secs
		}
		fmt.Printf("  P=%-3d %10v  self-speedup=%.2f  rounds(avg=%.2f,max=%d)\n",
			p, stats.Duration.Round(10_000), base/secs, stats.AvgRounds, stats.MaxRounds)
	}
	fmt.Printf("\n(%d hardware threads available; speed-up saturates there)\n", runtime.NumCPU())
}
