// Scaling: compare all implementations on one graph and sweep the
// worker count of every parallel chain — a miniature of the paper's
// Table 4 and Figure 6 through the public API. Every run goes through a
// Sampler, so the comparison covers exactly the code path production
// callers use. With the unified superstep kernel the sweep now covers
// undirected ParGlobalES, the directed/bipartite ParGlobalES, and the
// parallel Global Curveball: all three execute through the same kernel
// and report the same rounds instrumentation.
package main

import (
	"fmt"
	"log"
	"runtime"

	"gesmc"
)

func main() {
	g, err := gesmc.GeneratePowerLaw(1<<15, 2.2, 7)
	if err != nil {
		log.Fatal(err)
	}
	// A directed companion workload with the same scale: a 6-regular
	// bi-degree sequence realized as a bipartite digraph.
	dg, err := gesmc.FromBipartiteDegrees(repeat(6, 1<<12), repeat(6, 1<<12))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: n=%d m=%d dmax=%d; directed: n=%d m=%d (20 supersteps each)\n\n",
		g.N(), g.M(), g.MaxDegree(), dg.N(), dg.M())

	run := func(target gesmc.Target, alg gesmc.Algorithm, workers int) gesmc.Stats {
		s, err := gesmc.NewSampler(target,
			gesmc.WithAlgorithm(alg),
			gesmc.WithWorkers(workers),
			gesmc.WithSeed(5),
		)
		if err != nil {
			log.Fatal(err)
		}
		stats, err := s.Step(20)
		if err != nil {
			log.Fatal(err)
		}
		return stats
	}

	fmt.Println("algorithm comparison (P=1):")
	for _, alg := range gesmc.Algorithms() {
		stats := run(g.Clone(), alg, 1)
		fmt.Printf("  %-16s %10v  acceptance=%.3f\n",
			stats.Algorithm, stats.Duration.Round(10_000), float64(stats.Accepted)/float64(stats.Attempted))
	}

	maxP := runtime.GOMAXPROCS(0) * 4 // oversubscribe to show the trend even on small hosts
	sweep := func(label string, target func() gesmc.Target, alg gesmc.Algorithm) {
		fmt.Printf("\n%s worker sweep:\n", label)
		var base float64
		for p := 1; p <= maxP; p *= 2 {
			stats := run(target(), alg, p)
			secs := stats.Duration.Seconds()
			if p == 1 {
				base = secs
			}
			fmt.Printf("  P=%-3d %10v  self-speedup=%.2f  rounds(avg=%.2f,max=%d)\n",
				p, stats.Duration.Round(10_000), base/secs, stats.AvgRounds, stats.MaxRounds)
		}
	}
	sweep("ParGlobalES (undirected)", func() gesmc.Target { return g.Clone() }, gesmc.ParGlobalES)
	sweep("ParGlobalES (directed/bipartite)", func() gesmc.Target { return dg.Clone() }, gesmc.ParGlobalES)
	sweep("GlobalCurveball (parallel trades)", func() gesmc.Target { return g.Clone() }, gesmc.GlobalCurveball)

	fmt.Printf("\n(%d hardware threads available; speed-up saturates there)\n", runtime.NumCPU())
}

func repeat(v, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}
