// Null-model significance testing — the motivating application of the
// paper's introduction: is a structural property of an observed network
// (here: its triangle count) statistically significant, or explained by
// the degree sequence alone?
//
// We build an "observed" network with pronounced clustering, then draw
// null-model samples with identical degrees via G-ES-MC and report the
// empirical z-score of the observed triangle count.
package main

import (
	"fmt"
	"log"
	"math"

	"gesmc"
)

// observedNetwork builds a small-world-flavored graph: a ring of cliques
// with shortcut edges, giving far more triangles than its degree
// sequence alone explains.
func observedNetwork() (*gesmc.Graph, error) {
	const cliques = 40
	const size = 6
	n := cliques * size
	var edges [][2]uint32
	for c := 0; c < cliques; c++ {
		base := uint32(c * size)
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				edges = append(edges, [2]uint32{base + uint32(i), base + uint32(j)})
			}
		}
		// Link to the next clique.
		next := uint32(((c + 1) % cliques) * size)
		edges = append(edges, [2]uint32{base, next + 1})
	}
	return gesmc.NewGraph(n, edges)
}

func main() {
	observed, err := observedNetwork()
	if err != nil {
		log.Fatal(err)
	}
	obsTriangles := float64(observed.Triangles())
	fmt.Printf("observed: n=%d m=%d triangles=%.0f clustering=%.3f\n",
		observed.N(), observed.M(), obsTriangles, observed.ClusteringCoefficient())

	// Draw null-model samples: same degrees, otherwise uniform.
	const samples = 100
	var sum, sumsq float64
	for s := 0; s < samples; s++ {
		g := observed.Clone()
		if _, err := gesmc.Randomize(g, gesmc.Options{
			Algorithm:    gesmc.ParGlobalES,
			Workers:      2,
			SwapsPerEdge: 15,
			Seed:         uint64(s) + 1,
		}); err != nil {
			log.Fatal(err)
		}
		tr := float64(g.Triangles())
		sum += tr
		sumsq += tr * tr
	}
	mean := sum / samples
	sd := math.Sqrt(sumsq/samples - mean*mean)
	z := (obsTriangles - mean) / sd

	fmt.Printf("null model (%d samples): triangles mean=%.1f sd=%.1f\n", samples, mean, sd)
	fmt.Printf("z-score of observed triangle count: %.1f\n", z)
	if z > 3 {
		fmt.Println("=> clustering is NOT explained by the degree sequence (significant).")
	} else {
		fmt.Println("=> clustering is consistent with the degree-sequence null model.")
	}
}
