// Null-model significance testing — the motivating application of the
// paper's introduction: is a structural property of an observed network
// (here: its triangle count) statistically significant, or explained by
// the degree sequence alone?
//
// We build an "observed" network with pronounced clustering, then
// stream null-model samples with identical degrees from one reused
// Sampler (engine compiled once, burn-in once, a sample every thinning
// interval) and report the empirical z-score of the observed triangle
// count. This is the ensemble workload the Sampler API is shaped for:
// with the legacy one-shot Randomize every sample would pay engine
// construction plus a full burn-in.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"gesmc"
)

// observedNetwork builds a small-world-flavored graph: a ring of cliques
// with shortcut edges, giving far more triangles than its degree
// sequence alone explains.
func observedNetwork() (*gesmc.Graph, error) {
	const cliques = 40
	const size = 6
	n := cliques * size
	var edges [][2]uint32
	for c := 0; c < cliques; c++ {
		base := uint32(c * size)
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				edges = append(edges, [2]uint32{base + uint32(i), base + uint32(j)})
			}
		}
		// Link to the next clique.
		next := uint32(((c + 1) % cliques) * size)
		edges = append(edges, [2]uint32{base, next + 1})
	}
	return gesmc.NewGraph(n, edges)
}

func main() {
	observed, err := observedNetwork()
	if err != nil {
		log.Fatal(err)
	}
	obsTriangles := float64(observed.Triangles())
	fmt.Printf("observed: n=%d m=%d triangles=%.0f clustering=%.3f\n",
		observed.N(), observed.M(), obsTriangles, observed.ClusteringCoefficient())

	// Stream null-model samples: same degrees, otherwise uniform. The
	// burn-in decorrelates the first sample from the observed network;
	// the (shorter) thinning decorrelates consecutive samples.
	const samples = 100
	sampler, err := gesmc.NewSampler(observed.Clone(),
		gesmc.WithAlgorithm(gesmc.ParGlobalES),
		gesmc.WithWorkers(2),
		gesmc.WithSwapsPerEdge(15),
		gesmc.WithThinning(8),
		gesmc.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}
	var sum, sumsq float64
	for smp := range sampler.Ensemble(context.Background(), samples) {
		if smp.Err != nil {
			log.Fatal(smp.Err)
		}
		tr := float64(smp.Graph.Triangles())
		sum += tr
		sumsq += tr * tr
	}
	mean := sum / samples
	sd := math.Sqrt(sumsq/samples - mean*mean)
	z := (obsTriangles - mean) / sd

	fmt.Printf("null model (%d samples, %d supersteps total, engine built once):\n",
		sampler.Samples(), sampler.Supersteps())
	fmt.Printf("  triangles mean=%.1f sd=%.1f\n", mean, sd)
	fmt.Printf("z-score of observed triangle count: %.1f\n", z)
	if z > 3 {
		fmt.Println("=> clustering is NOT explained by the degree sequence (significant).")
	} else {
		fmt.Println("=> clustering is consistent with the degree-sequence null model.")
	}
}
