// Quickstart: sample a uniform random simple graph with the degree
// sequence of a power-law graph, using the paper's parallel global edge
// switching (ParGlobalES).
package main

import (
	"fmt"
	"log"
	"runtime"

	"gesmc"
)

func main() {
	// 1. Build a start graph with the wanted degrees. Any simple graph
	// with the right degree sequence works; here we sample a power-law
	// degree sequence and realize it deterministically (Havel-Hakimi).
	g, err := gesmc.GeneratePowerLaw(1<<14, 2.5, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("start graph: n=%d m=%d max-degree=%d\n", g.N(), g.M(), g.MaxDegree())

	// 2. Randomize it. The default performs 10 switch attempts per edge
	// (20 supersteps), the common practical choice.
	stats, err := gesmc.Randomize(g, gesmc.Options{
		Algorithm: gesmc.ParGlobalES,
		Workers:   runtime.GOMAXPROCS(0),
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("randomized with %s: %d/%d switches accepted in %v\n",
		stats.Algorithm, stats.Accepted, stats.Attempted, stats.Duration)

	// 3. The degrees are untouched; the topology is (approximately)
	// a uniform sample among all simple graphs with these degrees.
	if err := g.CheckSimple(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after: still simple, max-degree=%d, clustering=%.4f\n",
		g.MaxDegree(), g.ClusteringCoefficient())
}
