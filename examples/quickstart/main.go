// Quickstart: sample uniform random simple graphs with the degree
// sequence of a power-law graph, using the paper's parallel global edge
// switching (ParGlobalES) through the reusable Sampler API.
package main

import (
	"fmt"
	"log"
	"runtime"

	"gesmc"
)

func main() {
	// 1. Build a start graph with the wanted degrees. Any simple graph
	// with the right degree sequence works; here we sample a power-law
	// degree sequence and realize it deterministically (Havel-Hakimi).
	g, err := gesmc.GeneratePowerLaw(1<<14, 2.5, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("start graph: n=%d m=%d max-degree=%d\n", g.N(), g.M(), g.MaxDegree())

	// 2. Compile it once into a sampling engine. The default burn-in
	// performs 10 switch attempts per edge (20 supersteps), the common
	// practical choice.
	sampler, err := gesmc.NewSampler(g,
		gesmc.WithAlgorithm(gesmc.ParGlobalES),
		gesmc.WithWorkers(runtime.GOMAXPROCS(0)),
		gesmc.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Draw the first sample (runs the burn-in; g now holds it).
	stats, err := sampler.Sample()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("randomized with %s: %d/%d switches accepted in %v\n",
		stats.Algorithm, stats.Accepted, stats.Attempted, stats.Duration)

	// 4. The degrees are untouched; the topology is (approximately)
	// a uniform sample among all simple graphs with these degrees.
	if err := g.CheckSimple(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after: still simple, max-degree=%d, clustering=%.4f\n",
		g.MaxDegree(), g.ClusteringCoefficient())

	// 5. More samples reuse the compiled engine state — no rebuild,
	// only a thinning interval of extra supersteps each.
	for i := 0; i < 3; i++ {
		stats, err := sampler.Sample()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sample %d: %d more supersteps, clustering=%.4f\n",
			sampler.Samples(), stats.Supersteps, g.ClusteringCoefficient())
	}
}
