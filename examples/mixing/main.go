// Mixing diagnostics: how many supersteps does the chain need before
// samples decorrelate from the input graph? This example runs the
// paper's §6.1 autocorrelation/BIC analysis (Figure 2's methodology)
// through the public API, comparing ES-MC with G-ES-MC on one graph.
package main

import (
	"fmt"
	"log"

	"gesmc"
)

func main() {
	g, err := gesmc.GeneratePowerLaw(1<<10, 2.2, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d max-degree=%d\n\n", g.N(), g.M(), g.MaxDegree())

	const supersteps = 256
	es := gesmc.AnalyzeMixing(g, gesmc.ChainES, supersteps, 1)
	ges := gesmc.AnalyzeMixing(g, gesmc.ChainGlobalES, supersteps, 1)

	fmt.Println("fraction of edges still autocorrelated (lower = better mixed):")
	fmt.Printf("%-12s %-10s %-10s\n", "thinning k", "ES-MC", "G-ES-MC")
	for i, k := range es.Thinnings {
		fmt.Printf("%-12d %-10.4f %-10.4f\n", k, es.NonIndependent[i], ges.NonIndependent[i])
	}

	// The BIC decision has a small false-positive floor at finite run
	// lengths, so compare against a threshold above it.
	const tau = 0.05
	fmt.Printf("\nfirst thinning below %.2f: ES-MC at k=%d, G-ES-MC at k=%d\n",
		tau, es.FirstThinningBelow(tau), ges.FirstThinningBelow(tau))
	fmt.Println("(the paper's Figure 2/3 result: the global chain needs fewer supersteps)")
}
