// Mixing diagnostics: how many supersteps does the chain need before
// samples decorrelate from the input graph? This example runs the
// paper's §6.1 autocorrelation/BIC analysis (Figure 2's methodology)
// through the public API, comparing ES-MC with G-ES-MC on one graph,
// and then feeds the measured thinning straight into an ensemble
// Sampler — the intended division of labor: AnalyzeMixing calibrates,
// WithThinning applies.
package main

import (
	"context"
	"fmt"
	"log"

	"gesmc"
)

func main() {
	g, err := gesmc.GeneratePowerLaw(1<<10, 2.2, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d max-degree=%d\n\n", g.N(), g.M(), g.MaxDegree())

	const supersteps = 256
	es := gesmc.AnalyzeMixing(g, gesmc.ChainES, supersteps, 1)
	ges := gesmc.AnalyzeMixing(g, gesmc.ChainGlobalES, supersteps, 1)

	fmt.Println("fraction of edges still autocorrelated (lower = better mixed):")
	fmt.Printf("%-12s %-10s %-10s\n", "thinning k", "ES-MC", "G-ES-MC")
	for i, k := range es.Thinnings {
		fmt.Printf("%-12d %-10.4f %-10.4f\n", k, es.NonIndependent[i], ges.NonIndependent[i])
	}

	// The BIC decision has a small false-positive floor at finite run
	// lengths, so compare against a threshold above it.
	const tau = 0.05
	thinES, thinGES := es.FirstThinningBelow(tau), ges.FirstThinningBelow(tau)
	fmt.Printf("\nfirst thinning below %.2f: ES-MC at k=%d, G-ES-MC at k=%d\n", tau, thinES, thinGES)
	fmt.Println("(the paper's Figure 2/3 result: the global chain needs fewer supersteps)")

	// Apply the measurement: draw an ensemble thinned at exactly the
	// empirically sufficient interval instead of a full burn-in per
	// sample.
	if thinGES == 0 {
		log.Fatal("chain did not decorrelate within the analyzed window")
	}
	sampler, err := gesmc.NewSampler(g,
		gesmc.WithAlgorithm(gesmc.ParGlobalES),
		gesmc.WithWorkers(2),
		gesmc.WithThinning(thinGES),
		gesmc.WithSeed(7),
	)
	if err != nil {
		log.Fatal(err)
	}
	const count = 10
	samples, err := sampler.Collect(context.Background(), count)
	if err != nil {
		log.Fatal(err)
	}
	burnIn := sampler.BurnIn()
	fmt.Printf("\ndrew %d samples in %d supersteps (burn-in %d + %d x thinning %d)\n",
		len(samples), sampler.Supersteps(), burnIn, count-1, thinGES)
	fmt.Printf("vs %d supersteps for %d one-shot Randomize calls — %.1fx fewer\n",
		count*burnIn, count,
		float64(count*burnIn)/float64(sampler.Supersteps()))
}
