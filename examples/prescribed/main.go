// Prescribed-degree sampling: generate many graphs with one explicit
// degree sequence and verify empirically that the sampler is close to
// uniform, by exhaustively counting the visits to every realization of a
// tiny sequence.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strings"

	"gesmc"
)

func main() {
	// Part 1: a realistic sequence, via the one-call path.
	degrees := []int{7, 6, 5, 4, 4, 3, 3, 3, 2, 2, 2, 2, 2, 1, 1, 1}
	if !gesmc.IsGraphical(degrees) {
		log.Fatal("sequence is not graphical")
	}
	g, stats, err := gesmc.SampleFromDegrees(degrees, gesmc.Options{
		Algorithm: gesmc.ParGlobalES,
		Workers:   2,
		Seed:      3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sampled graph with degrees %v\n", g.Degrees())
	fmt.Printf("(%d/%d switches accepted, %v)\n\n", stats.Accepted, stats.Attempted, stats.Duration)

	// Part 2: empirical uniformity on the 15 perfect matchings of K6
	// (degree sequence 1,1,1,1,1,1) — the smallest state space where
	// uniformity is easy to see by eye. One Sampler streams the whole
	// ensemble: the matching is realized once (Havel-Hakimi) and the
	// chain never restarts, so the 25-superstep thinning between
	// samples is the entire per-sample cost.
	const runs = 6000
	start, err := gesmc.FromDegrees([]int{1, 1, 1, 1, 1, 1})
	if err != nil {
		log.Fatal(err)
	}
	sampler, err := gesmc.NewSampler(start,
		gesmc.WithAlgorithm(gesmc.SeqGlobalES),
		gesmc.WithBurnIn(25),
		gesmc.WithThinning(25),
		gesmc.WithLoopProb(0.05),
		gesmc.WithSeed(99),
	)
	if err != nil {
		log.Fatal(err)
	}
	counts := map[string]int{}
	for smp := range sampler.Ensemble(context.Background(), runs) {
		if smp.Err != nil {
			log.Fatal(smp.Err)
		}
		counts[key(smp.Graph)]++
	}
	fmt.Printf("distribution over the %d perfect matchings of K6 (%d runs, expect ~%.0f each):\n",
		len(counts), runs, float64(runs)/float64(len(counts)))
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %s : %d\n", k, counts[k])
	}
}

func key(g *gesmc.Graph) string {
	edges := g.Edges()
	parts := make([]string, len(edges))
	for i, e := range edges {
		parts[i] = fmt.Sprintf("%d-%d", e[0], e[1])
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}
