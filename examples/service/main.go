// Example service: a gesmcd client. It POSTs a degree-sequence
// sampling request to a running daemon and consumes the NDJSON stream
// incrementally — each sample line is decoded, rebuilt into a
// *gesmc.Graph, and summarized as it arrives, demonstrating that the
// server never buffers the ensemble. Afterwards it fetches the
// request's span dump from /v1/trace using the trace ID stamped on
// the streamed lines, showing where the request spent its time
// (queue wait, pool checkout, engine streaming).
//
// Run a daemon first:
//
//	go run ./cmd/gesmcd -addr 127.0.0.1:8742
//	go run ./examples/service -addr 127.0.0.1:8742 -samples 20
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"

	"gesmc/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8742", "gesmcd address")
	samples := flag.Int("samples", 20, "ensemble size")
	seed := flag.Uint64("seed", 7, "request seed")
	flag.Parse()

	// A small power-law-ish degree sequence; any graphical sequence
	// works.
	req := wire.SampleRequest{
		Degrees:   []int{6, 5, 4, 3, 3, 2, 2, 2, 2, 1, 1, 1},
		Samples:   *samples,
		Seed:      *seed,
		Algorithm: "ParGlobalES",
	}
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post("http://"+*addr+"/v1/sample", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		log.Fatalf("HTTP %d: %s", resp.StatusCode, msg)
	}

	var traceID string
	err = wire.DecodeLines(resp.Body, func(ln wire.Line) error {
		if ln.Error != "" {
			return fmt.Errorf("stream terminated: %s (%s)", ln.Error, ln.Code)
		}
		g, _, err := ln.Graph()
		if err != nil {
			return err
		}
		traceID = ln.Stats.TraceID
		fmt.Printf("sample %3d: m=%d triangles=%d clustering=%.3f (supersteps=%d)\n",
			ln.Index, g.M(), g.Triangles(), g.ClusteringCoefficient(), ln.Stats.Supersteps)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Every line carried the same trace ID; ask the daemon where that
	// request spent its time.
	if traceID == "" {
		return // daemon running with -no-telemetry
	}
	tr, err := http.Get("http://" + *addr + "/v1/trace?id=" + traceID)
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Body.Close()
	var dump struct {
		Spans []struct {
			Name       string `json:"name"`
			DurationNS int64  `json:"duration_ns"`
		} `json:"spans"`
	}
	if err := json.NewDecoder(tr.Body).Decode(&dump); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntrace %s:\n", traceID)
	for _, s := range dump.Spans {
		fmt.Printf("  %-16s %10.3fms\n", s.Name, float64(s.DurationNS)/1e6)
	}
}
