// Example service: a gesmcd client. It POSTs a degree-sequence
// sampling request to a running daemon and consumes the NDJSON stream
// incrementally — each sample line is decoded, rebuilt into a
// *gesmc.Graph, and summarized as it arrives, demonstrating that the
// server never buffers the ensemble.
//
// Run a daemon first:
//
//	go run ./cmd/gesmcd -addr 127.0.0.1:8742
//	go run ./examples/service -addr 127.0.0.1:8742 -samples 20
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"

	"gesmc/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8742", "gesmcd address")
	samples := flag.Int("samples", 20, "ensemble size")
	seed := flag.Uint64("seed", 7, "request seed")
	flag.Parse()

	// A small power-law-ish degree sequence; any graphical sequence
	// works.
	req := wire.SampleRequest{
		Degrees:   []int{6, 5, 4, 3, 3, 2, 2, 2, 2, 1, 1, 1},
		Samples:   *samples,
		Seed:      *seed,
		Algorithm: "ParGlobalES",
	}
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post("http://"+*addr+"/v1/sample", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		log.Fatalf("HTTP %d: %s", resp.StatusCode, msg)
	}

	err = wire.DecodeLines(resp.Body, func(ln wire.Line) error {
		if ln.Error != "" {
			return fmt.Errorf("stream terminated: %s (%s)", ln.Error, ln.Code)
		}
		g, _, err := ln.Graph()
		if err != nil {
			return err
		}
		fmt.Printf("sample %3d: m=%d triangles=%d clustering=%.3f (supersteps=%d)\n",
			ln.Index, g.M(), g.Triangles(), g.ClusteringCoefficient(), ln.Stats.Supersteps)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
