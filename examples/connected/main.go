// Connectivity-preserving null model — the constrained-sampling
// workload of Milo et al. and Tabourier et al.: when the observed
// network is connected by construction (an infrastructure network, a
// communication backbone), the honest null model fixes both the degree
// sequence AND connectedness. Sampling only the degrees overcounts
// disconnected realizations that could never be observed, biasing
// motif z-scores.
//
// We build a small-world network (ring lattice plus shortcuts — richly
// clustered and connected), then draw two ensembles with its degree
// sequence: unconstrained, and constrained with Connected(). The
// triangle z-score of the observed network is reported against both,
// along with the constrained chain's switch-rejection and
// k-switch-escape rates — the cost of staying inside the connected
// state space.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"gesmc"
)

// smallWorld builds a sparse small-world ring: n nodes on a cycle,
// with a triangle chord (v, v+2) every spacing nodes. Mostly degree-2
// with sprinkled degree-3 nodes — clustered (one triangle per chord),
// connected by construction, and fragile: almost every edge is a
// bridge or near-bridge, so the unconstrained null model routinely
// shatters into disjoint cycles while the constrained chain must veto
// its way around them. This is the regime where the connectivity
// constraint actually bites.
func smallWorld(n, spacing int) (*gesmc.Graph, error) {
	var edges [][2]uint32
	for v := 0; v < n; v++ {
		edges = append(edges, [2]uint32{uint32(v), uint32((v + 1) % n)})
	}
	for v := 0; v < n; v += spacing {
		edges = append(edges, [2]uint32{uint32(v), uint32((v + 2) % n)})
	}
	return gesmc.NewGraph(n, edges)
}

// ensembleTriangles draws count samples and returns the triangle-count
// mean and standard deviation, the fraction of connected samples, and
// the sampler's lifetime stats.
func ensembleTriangles(g *gesmc.Graph, count int, opts ...gesmc.Option) (mean, sd, connFrac float64, st gesmc.Stats, err error) {
	base := []gesmc.Option{
		gesmc.WithAlgorithm(gesmc.ParGlobalES),
		gesmc.WithWorkers(2),
		gesmc.WithSwapsPerEdge(15),
		gesmc.WithThinning(8),
		gesmc.WithSeed(42),
	}
	sampler, err := gesmc.NewSampler(g.Clone(), append(base, opts...)...)
	if err != nil {
		return 0, 0, 0, gesmc.Stats{}, err
	}
	defer sampler.Close()
	var sum, sumsq float64
	connectedSamples := 0
	for smp := range sampler.Ensemble(context.Background(), count) {
		if smp.Err != nil {
			return 0, 0, 0, gesmc.Stats{}, smp.Err
		}
		tr := float64(smp.Graph.Triangles())
		sum += tr
		sumsq += tr * tr
		if smp.Graph.IsConnected() {
			connectedSamples++
		}
	}
	mean = sum / float64(count)
	sd = math.Sqrt(sumsq/float64(count) - mean*mean)
	return mean, sd, float64(connectedSamples) / float64(count), sampler.Stats(), nil
}

func main() {
	observed, err := smallWorld(192, 8)
	if err != nil {
		log.Fatal(err)
	}
	obsTriangles := float64(observed.Triangles())
	fmt.Printf("observed small-world: n=%d m=%d triangles=%.0f clustering=%.3f connected=%v\n",
		observed.N(), observed.M(), obsTriangles,
		observed.ClusteringCoefficient(), observed.IsConnected())

	const samples = 100

	// Unconstrained null model: degrees only.
	mean, sd, connFrac, _, err := ensembleTriangles(observed, samples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nunconstrained ensemble (%d samples):\n", samples)
	fmt.Printf("  triangles mean=%.1f sd=%.1f  connected fraction=%.2f\n", mean, sd, connFrac)
	fmt.Printf("  z-score of observed triangles: %.1f\n", (obsTriangles-mean)/sd)

	// Connectivity-preserving null model: degrees + connectedness.
	cmean, csd, cconn, cst, err := ensembleTriangles(observed, samples,
		gesmc.WithConstraint(gesmc.Connected()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconnected ensemble (%d samples):\n", samples)
	fmt.Printf("  triangles mean=%.1f sd=%.1f  connected fraction=%.2f\n", cmean, csd, cconn)
	fmt.Printf("  z-score of observed triangles: %.1f\n", (obsTriangles-cmean)/csd)
	rejected := float64(cst.Attempted-cst.Accepted) / float64(cst.Attempted)
	vetoRate := float64(cst.ConstraintVetoes) / float64(cst.Attempted)
	fmt.Printf("  switch rejection rate=%.3f (connectivity vetoes=%.3f of attempts)\n", rejected, vetoRate)
	fmt.Printf("  k-switch escapes: %d accepted of %d attempted\n", cst.EscapeMoves, cst.EscapeAttempts)

	if cconn < 1 {
		log.Fatal("constrained ensemble emitted a disconnected sample")
	}
	fmt.Println("\nEvery constrained sample is connected; the unconstrained ensemble")
	fmt.Println("mixes in disconnected realizations the observed system rules out.")
}
