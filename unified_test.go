package gesmc

import (
	"context"
	"testing"
)

// The unified-kernel guarantees at the public surface: every parallel
// chain accepts WithWorkers, populates the rounds instrumentation, and
// the trade chains are bit-identical for every worker count.

func collectEdges(t *testing.T, g *Graph, alg Algorithm, workers, steps int) [][2]uint32 {
	t.Helper()
	s, err := NewSampler(g.Clone(), WithAlgorithm(alg), WithWorkers(workers), WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(steps); err != nil {
		t.Fatal(err)
	}
	edges := make([][2]uint32, 0)
	target := s.target.(*Graph)
	return append(edges, target.Edges()...)
}

// TestPrefetchParityAllChains: the §5.4 pre-touch pipeline now applies
// to every chain through the gang-scheduled kernel; it must be a pure
// memory hint, bit-identical on and off at every worker count.
func TestPrefetchParityAllChains(t *testing.T) {
	g := GenerateGNP(160, 0.08, 6)
	for _, alg := range []Algorithm{SeqES, ParES, ParGlobalES, Curveball, GlobalCurveball} {
		var want [][2]uint32
		for _, w := range []int{1, 2, 4, 8} {
			for _, prefetch := range []bool{false, true} {
				s, err := NewSampler(g.Clone(),
					WithAlgorithm(alg), WithWorkers(w), WithSeed(33), WithPrefetch(prefetch))
				if err != nil {
					t.Fatal(err)
				}
				if _, err := s.Step(4); err != nil {
					t.Fatal(err)
				}
				got := s.target.(*Graph).Edges()
				if want == nil {
					want = append([][2]uint32(nil), got...)
					s.Close()
					continue
				}
				if len(got) != len(want) {
					t.Fatalf("%v w=%d prefetch=%v: edge count %d, want %d", alg, w, prefetch, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%v w=%d prefetch=%v: edge list diverges at %d", alg, w, prefetch, i)
					}
				}
				s.Close()
			}
		}
	}
}

// TestPrefetchParityDirected mirrors the parity check for the directed
// parallel chain.
func TestPrefetchParityDirected(t *testing.T) {
	dg, err := FromBipartiteDegrees([]int{3, 2, 2, 1, 1, 1, 2}, []int{2, 2, 1, 2, 2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	var want [][2]uint32
	for _, w := range []int{1, 2, 4} {
		for _, prefetch := range []bool{false, true} {
			s, err := NewSampler(dg.Clone(),
				WithAlgorithm(ParGlobalES), WithWorkers(w), WithSeed(8), WithPrefetch(prefetch))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Step(6); err != nil {
				t.Fatal(err)
			}
			got := s.target.(*DiGraph).Arcs()
			if want == nil {
				want = append([][2]uint32(nil), got...)
				s.Close()
				continue
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("w=%d prefetch=%v: arc list diverges at %d", w, prefetch, i)
				}
			}
			s.Close()
		}
	}
}

// TestSamplerCloseThenTargetUsable: Close releases the gang but leaves
// the target's state intact and clonable.
func TestSamplerCloseThenTargetUsable(t *testing.T) {
	g := GenerateGNP(96, 0.1, 12)
	s, err := NewSampler(g, WithAlgorithm(ParGlobalES), WithWorkers(4), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(3); err != nil {
		t.Fatal(err)
	}
	before := g.M()
	s.Close()
	if g.M() != before || g.Clone().M() != before {
		t.Fatal("target state damaged by Close")
	}
}

func TestCurveballWorkersBitIdentical(t *testing.T) {
	g := GenerateGNP(160, 0.08, 4)
	for _, alg := range []Algorithm{Curveball, GlobalCurveball} {
		var want [][2]uint32
		for _, w := range []int{1, 2, 4, 8} {
			got := collectEdges(t, g, alg, w, 10)
			if want == nil {
				want = got
				continue
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v: workers=%d diverges at edge %d", alg, w, i)
				}
			}
		}
	}
}

func TestGlobalCurveballWithWorkersIsValidAndInstrumented(t *testing.T) {
	// The acceptance criterion of the unified kernel: GlobalCurveball +
	// WithWorkers is a valid combination and reports the same RunStats
	// shape as the parallel switching chains.
	g := GenerateGNP(256, 0.06, 7)
	s, err := NewSampler(g, WithAlgorithm(GlobalCurveball), WithWorkers(4), WithSeed(3))
	if err != nil {
		t.Fatalf("GlobalCurveball with workers rejected: %v", err)
	}
	stats, err := s.Step(6)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Attempted == 0 || stats.Accepted != stats.Attempted {
		t.Fatalf("trade accounting broken: %+v", stats)
	}
	if stats.AvgRounds < 1 {
		t.Fatalf("rounds instrumentation missing for the trade kernel: %+v", stats)
	}
	if err := s.target.(*Graph).CheckSimple(); err != nil {
		t.Fatal(err)
	}
}

func TestCurveballResumedSplitsBitIdentical(t *testing.T) {
	g := GenerateGNP(128, 0.1, 9)
	one, err := NewSampler(g.Clone(), WithAlgorithm(GlobalCurveball), WithWorkers(3), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := one.Step(9); err != nil {
		t.Fatal(err)
	}
	split, err := NewSampler(g.Clone(), WithAlgorithm(GlobalCurveball), WithWorkers(3), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 4, 0, 3} {
		if _, err := split.StepContext(context.Background(), k); err != nil {
			t.Fatal(err)
		}
	}
	a := one.target.(*Graph).Edges()
	b := split.target.(*Graph).Edges()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("resumed split diverges at edge %d", i)
		}
	}
	sa, sb := one.Stats(), split.Stats()
	if sa.Attempted != sb.Attempted || sa.Accepted != sb.Accepted {
		t.Fatalf("stats diverge: %+v vs %+v", sa, sb)
	}
}

func TestDirectedSamplerRoundTimesPopulated(t *testing.T) {
	// The directed runner now flows through the unified kernel, so the
	// first-round/later-rounds split (previously undirected-only)
	// reaches the public Stats for directed targets too.
	dg, err := FromInOutDegrees([]int{2, 2, 1, 1, 2}, []int{1, 2, 2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSampler(dg, WithAlgorithm(ParGlobalES), WithWorkers(2), WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := s.Step(8)
	if err != nil {
		t.Fatal(err)
	}
	if stats.AvgRounds < 1 {
		t.Fatalf("directed rounds instrumentation missing: %+v", stats)
	}
}
