// Package gesmc provides uniform sampling of simple graphs with a
// prescribed degree sequence via edge switching Markov chains,
// implementing the algorithms of Allendorf, Meyer, Penschuck and Tran,
// "Parallel Global Edge Switching for the Uniform Sampling of Simple
// Graphs with Prescribed Degrees" (IPDPS 2022 / JPDC 2023).
//
// The package is built around a reusable, stateful Sampler: NewSampler
// compiles a target graph once into the selected algorithm's working
// state (hash-based edge set, dependency table, RNG streams), after
// which Step, Sample, and Ensemble advance the same Markov chain
// without rebuilding anything. One Sampler drives all three supported
// target classes — undirected graphs (*Graph), directed graphs
// (*DiGraph), and bipartite graphs (FromBipartiteDegrees, represented
// as digraphs).
//
// Every parallel chain executes through one generic superstep kernel
// (dependency tuples, round-based decisions, pessimistic worst-case
// scheduling, identical rounds instrumentation — see DESIGN.md), so
// WithWorkers applies uniformly. The kernel runs on a persistent
// gang of worker goroutines owned by the sampler's engine: supersteps
// reuse the parked gang instead of spawning goroutines, and the kernel
// itself performs no steady-state heap allocations (chains still
// allocate a few objects per superstep for their random permutations).
// Call Sampler.Close to release the gang deterministically (a
// finalizer reclaims leaked ones).
// WithPrefetch enables the §5.4 pre-touch pipeline in every chain,
// sequential and parallel alike, without changing any result.
// The algorithms:
//
//	Algorithm        chain     targets              parallel  notes
//	SeqES            ES-MC     undirected+directed  no        §5 hash set + edge array
//	SeqGlobalES      G-ES-MC   undirected+directed  no        Definition 3
//	NaiveParES       ES-MC     undirected           inexact   §5.1 baseline, perf studies only
//	ParES            ES-MC     undirected           exact     Algorithm 2
//	ParGlobalES      G-ES-MC   all                  exact     Algorithm 3 — headline, default
//	AdjListES        ES-MC     undirected           no        NetworKit-style ablation
//	AdjSortES        ES-MC     undirected           no        Gengraph-style ablation
//	Curveball        trades    undirected           exact     batched disjoint trades
//	GlobalCurveball  trades    undirected           exact     superstep global trades
//	Exact            i.i.d.    undirected           no        provably uniform rejection sampler
//
// "Exact" parallel chains are bit-identical to their sequential
// references: given the same switch (or trade) sequence they produce
// the same edge list at every worker count, which the differential test
// suites verify for workers 1, 2, 4 and 8. The trade chains use the
// superstep formulation of DESIGN.md §4 (per-batch edge ownership), so
// their results are additionally invariant under the worker count.
//
// Quick start — one approximately uniform sample:
//
//	g, err := gesmc.GeneratePowerLaw(1<<16, 2.5, 1)
//	if err != nil { ... }
//	s, err := gesmc.NewSampler(g,
//		gesmc.WithAlgorithm(gesmc.ParGlobalES),
//		gesmc.WithWorkers(runtime.NumCPU()),
//		gesmc.WithSeed(1))
//	if err != nil { ... }
//	stats, err := s.Sample() // burn-in; g now holds the sample
//
// Ensembles — the null-model workload of hundreds of thinned samples
// per input graph — stream through the same engine:
//
//	for smp := range s.Ensemble(ctx, 100) {
//		if smp.Err != nil { ... }
//		use(smp.Graph) // deep copy; smp.Stats covers its supersteps
//	}
//
// The first sample pays the burn-in (default: 10 switch attempts per
// edge); each further sample only a thinning interval. AnalyzeMixing
// runs the paper's §6.1 autocorrelation/BIC diagnostic and its
// FirstThinningBelow result is the natural input to WithThinning:
// thinning measured this way is typically several times shorter than a
// full burn-in, which (together with engine reuse) is where the
// ensemble throughput win over repeated one-shot runs comes from.
//
// Constrained sampling restricts the state space beyond the degree
// sequence (the null models of Milo et al. and Tabourier et al.):
//
//	s, err := gesmc.NewSampler(g, gesmc.WithConstraint(gesmc.Connected()))
//
// samples only connected realizations — every Ensemble draw is
// connected, with disconnecting switches vetoed (sequential chains,
// via an incremental spanning-forest certificate) or rolled back
// (parallel chains, speculate-then-recertify), and compound k-switch
// escape moves keeping the chain irreducible when single switches
// stall. ForbiddenEdges, ProtectedEdges, and NodeClasses are local
// constraints evaluated inside the kernel's decide phase; they keep
// constrained parallel runs bit-identical across worker counts.
// Constraints apply to SeqES, SeqGlobalES, ParES, and ParGlobalES
// (plus all directed chains, where Connected means weakly connected);
// Stats reports ConstraintVetoes and the escape counters.
// Connectivity metrics back the same workload: Graph.IsConnected,
// Graph.LargestComponent, and their DiGraph counterparts.
//
// The Exact algorithm is not a Markov chain at all: it draws
// independent, provably uniform realizations of the target's degree
// sequence by pairing-model generation with rejection (DESIGN.md §14).
// Burn-in and thinning do not apply — passing WithBurnIn, WithThinning,
// or WithSwapsPerEdge returns ErrExactSchedule — and constraints are
// unsupported. Exactness is paid for in acceptance rate, so the tier
// gates on the regime λ+λ² ≤ 6 (λ = Σd(d-1)/(2Σd)) and returns
// ErrExactUnsupported beyond it; callers fall back to an MCMC chain
// explicitly. Stats reports the rejection ledger (Restarts,
// LoopDefects, MultiDefects). Over the wire, requests select the tier
// with "uniformity": "exact", and every streamed line's stats block
// is labeled with the tier that produced it.
//
// Functional options (WithAlgorithm, WithWorkers, WithSeed,
// WithThinning, WithBurnIn, WithLoopProb, WithConstraint,
// WithProgress, ...) validate eagerly and return the typed errors of
// errors.go; context cancellation is honored at superstep boundaries,
// always leaving the target a valid simple graph with the original
// degrees.
//
// Construction helpers cover edge lists (NewGraph, ReadGraph), degree
// sequences (FromDegrees via Havel-Hakimi, FromInOutDegrees via
// Kleitman-Wang, FromBipartiteDegrees), and generators (G(n,p),
// power-law, regular, grid). Graph I/O is part of the public API:
// WriteEdgeList/ReadEdgeList/ReadArcList exchange text edge lists for
// both target classes (directed files carry a "% directed" marker),
// and the gesmc/wire subpackage defines the JSON formats of the
// sampling service.
//
// The sampling service (internal/service, daemon cmd/gesmcd) serves
// ensembles over HTTP: POST /v1/sample streams one NDJSON line per
// sample as it is produced, requests share a bounded global worker
// budget with FIFO admission control, and an engine pool reuses
// compiled samplers — persistent worker gangs included — across
// requests with the same (target, algorithm, workers, seed,
// constraints) identity. Requests opt into constrained ensembles with
// "connected": true and "forbidden_edges"; the CLI mirrors the former
// as gesmc -connected.
// Sampler.Close is idempotent, and a closed sampler's methods return
// ErrClosed, so pooled engines evict safely. See DESIGN.md §9.
//
// Deprecated one-shot entry points: Randomize, RandomizeDirected, and
// SampleFromDegrees remain supported as thin wrappers that build a
// Sampler, run one Step, and throw the engine away — convenient for a
// single draw, wasteful for ensembles.
//
// All operations are deterministic for a fixed seed, algorithm, and
// worker count; the sequential chains and both Curveball chains are
// additionally independent of the worker count.
package gesmc
