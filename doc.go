// Package gesmc provides uniform sampling of simple undirected graphs
// with a prescribed degree sequence via edge switching Markov chains,
// implementing the algorithms of Allendorf, Meyer, Penschuck and Tran,
// "Parallel Global Edge Switching for the Uniform Sampling of Simple
// Graphs with Prescribed Degrees" (IPDPS 2022 / JPDC 2023).
//
// The package offers:
//
//   - Graph construction from edge lists, degree sequences (Havel-
//     Hakimi), and generators (G(n,p), power-law, regular, grid).
//   - Randomize: run one of seven switching implementations, from the
//     sequential baselines to the exact parallel ParGlobalES, which
//     performs global switches — batches of ⌊m/2⌋ source-independent
//     edge switches — in parallel supersteps.
//   - SampleFromDegrees: the one-call path from a degree sequence to an
//     approximately uniform sample.
//   - AnalyzeMixing: the autocorrelation/BIC mixing diagnostic of the
//     paper's §6.1.
//
// Quick start:
//
//	g, err := gesmc.GeneratePowerLaw(1<<16, 2.5, 1)
//	if err != nil { ... }
//	stats, err := gesmc.Randomize(g, gesmc.Options{
//		Algorithm: gesmc.ParGlobalES,
//		Workers:   runtime.NumCPU(),
//	})
//
// All operations are deterministic for a fixed seed and worker count.
package gesmc
