package gesmc

import (
	"bytes"
	"strings"
	"testing"
)

func TestNewGraphValidation(t *testing.T) {
	if _, err := NewGraph(3, [][2]uint32{{0, 0}}); err == nil {
		t.Fatal("loop accepted")
	}
	if _, err := NewGraph(3, [][2]uint32{{0, 1}, {1, 0}}); err == nil {
		t.Fatal("duplicate accepted")
	}
	g, err := NewGraph(3, [][2]uint32{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
}

func TestFromDegrees(t *testing.T) {
	g, err := FromDegrees([]int{3, 3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 6 {
		t.Fatalf("K4 should have 6 edges, got %d", g.M())
	}
	if _, err := FromDegrees([]int{3, 3, 1, 1}); err == nil {
		t.Fatal("non-graphical sequence accepted")
	}
	if !IsGraphical([]int{2, 2, 2}) || IsGraphical([]int{1, 1, 1}) {
		t.Fatal("IsGraphical wrong")
	}
}

func TestGenerators(t *testing.T) {
	g := GenerateGNP(100, 0.1, 1)
	if g.N() != 100 || g.M() == 0 {
		t.Fatal("GNP degenerate")
	}
	pl, err := GeneratePowerLaw(256, 2.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pl.MaxDegree() < 2 {
		t.Fatal("power law suspiciously flat")
	}
	reg, err := GenerateRegular(32, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range reg.Degrees() {
		if d != 4 {
			t.Fatal("not regular")
		}
	}
	grid := GenerateGrid(4, 4)
	if grid.N() != 16 || grid.ConnectedComponents() != 1 {
		t.Fatal("grid degenerate")
	}
}

func TestRandomizeAllAlgorithms(t *testing.T) {
	base := GenerateGNP(128, 0.08, 3)
	// The GNP target's degree tail lies outside the exact tier's
	// rejection regime (that boundary is pinned in exact_api_test.go),
	// so Exact exercises a bounded-degree target instead.
	regular, err := GenerateRegular(32, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range Algorithms() {
		g := base.Clone()
		if alg == Exact {
			g = regular.Clone()
		}
		wantDeg := g.Degrees()
		stats, err := Randomize(g, Options{Algorithm: alg, Workers: 2, Seed: 11, SwapsPerEdge: 2})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if err := g.CheckSimple(); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		for v, d := range g.Degrees() {
			if d != wantDeg[v] {
				t.Fatalf("%v changed degrees", alg)
			}
		}
		if stats.Accepted == 0 || stats.Attempted == 0 {
			t.Fatalf("%v: empty stats %+v", alg, stats)
		}
		if stats.Algorithm != alg.String() {
			t.Fatalf("stats name %q != %q", stats.Algorithm, alg.String())
		}
	}
}

func TestOptionsSuperstepDefaults(t *testing.T) {
	if s := (Options{}).supersteps(); s != 20 {
		t.Fatalf("default supersteps = %d, want 20 (10 swaps/edge)", s)
	}
	if s := (Options{SwapsPerEdge: 15}).supersteps(); s != 30 {
		t.Fatalf("15 swaps/edge -> %d supersteps, want 30", s)
	}
	if s := (Options{Supersteps: 7, SwapsPerEdge: 15}).supersteps(); s != 7 {
		t.Fatalf("explicit supersteps ignored: %d", s)
	}
}

func TestParseAlgorithmRoundTrip(t *testing.T) {
	for _, alg := range Algorithms() {
		got, err := ParseAlgorithm(alg.String())
		if err != nil || got != alg {
			t.Fatalf("round trip failed for %v: %v, %v", alg, got, err)
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Fatal("bogus name accepted")
	}
}

func TestSampleFromDegrees(t *testing.T) {
	deg := []int{4, 3, 3, 2, 2, 2, 2, 2, 2, 2}
	g, stats, err := SampleFromDegrees(deg, Options{Algorithm: SeqGlobalES, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for v, d := range g.Degrees() {
		if d != deg[v] {
			t.Fatalf("degree mismatch at %d", v)
		}
	}
	if stats.Accepted == 0 {
		t.Fatal("no switches accepted")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	g := GenerateGNP(40, 0.2, 9)
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != g.N() || h.M() != g.M() {
		t.Fatal("round trip changed size")
	}
}

func TestReadGraphCleansInput(t *testing.T) {
	g, err := ReadGraph(strings.NewReader("# c\n0 1\n1 0\n2 2\n1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("m = %d, want 2", g.M())
	}
}

func TestMetricsExposed(t *testing.T) {
	g, err := NewGraph(4, [][2]uint32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Triangles() != 4 {
		t.Fatalf("K4 triangles = %d", g.Triangles())
	}
	if g.ClusteringCoefficient() != 1 {
		t.Fatal("K4 transitivity != 1")
	}
	if g.Density() != 1 || g.AverageDegree() != 3 {
		t.Fatal("density/average degree wrong")
	}
	if !g.HasEdge(2, 3) || g.HasEdge(0, 0) {
		t.Fatal("HasEdge wrong")
	}
}

func TestAnalyzeMixingShape(t *testing.T) {
	g, err := GeneratePowerLaw(128, 2.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, chain := range []Chain{ChainES, ChainGlobalES} {
		res := AnalyzeMixing(g, chain, 40, 6)
		if len(res.Thinnings) == 0 || len(res.Thinnings) != len(res.NonIndependent) {
			t.Fatal("malformed mixing result")
		}
		if res.NonIndependent[0] < res.NonIndependent[len(res.NonIndependent)-1] {
			t.Fatal("autocorrelation did not decay with thinning")
		}
	}
}

func TestRandomizeDeterministic(t *testing.T) {
	base := GenerateGNP(64, 0.15, 13)
	a, b := base.Clone(), base.Clone()
	opt := Options{Algorithm: ParGlobalES, Workers: 4, Seed: 21, SwapsPerEdge: 3}
	if _, err := Randomize(a, opt); err != nil {
		t.Fatal(err)
	}
	if _, err := Randomize(b, opt); err != nil {
		t.Fatal(err)
	}
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatal("Randomize not deterministic for fixed options")
		}
	}
}
