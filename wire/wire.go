// Package wire defines the JSON wire format of the gesmc sampling
// service: the request body of POST /v1/sample, the NDJSON sample lines
// the server streams back, and the health/metrics documents. It is the
// shared vocabulary of the server (internal/service), the daemon
// (cmd/gesmcd), the CLI's -format ndjson mode (cmd/gesmc), and client
// code (examples/service); keeping it public lets external callers
// marshal requests and decode streams with the exact types the server
// uses.
//
// A sampling response is NDJSON ("application/x-ndjson"): one Line per
// drawn sample, encoded and flushed as the engine produces it, so a
// client can consume an ensemble incrementally and the server never
// buffers more than one sample. A terminal error mid-stream is one
// final Line carrying Error/Code and no edges.
package wire

import (
	"encoding/json"
	"io"

	"gesmc"
)

// SampleRequest is the body of POST /v1/sample. Exactly one target
// spec must be set:
//
//   - Degrees — an undirected degree sequence, realized with
//     Havel-Hakimi (gesmc.FromDegrees);
//   - OutDegrees+InDegrees — a directed bi-sequence, realized with
//     Kleitman-Wang (gesmc.FromInOutDegrees);
//   - BipartiteLeft+BipartiteRight — bipartite degree sequences
//     (gesmc.FromBipartiteDegrees);
//   - Edges (+Nodes, +Directed) — an explicit edge (or arc) list.
//
// The remaining fields mirror the Sampler options; zero values select
// the package defaults (ParGlobalES, 1 worker, burn-in from
// SwapsPerEdge, thinning = burn-in, 1 sample).
type SampleRequest struct {
	Degrees        []int `json:"degrees,omitempty"`
	OutDegrees     []int `json:"out_degrees,omitempty"`
	InDegrees      []int `json:"in_degrees,omitempty"`
	BipartiteLeft  []int `json:"bipartite_left,omitempty"`
	BipartiteRight []int `json:"bipartite_right,omitempty"`

	// Edges is an explicit target edge list; Nodes (optional) declares
	// the node count when isolated trailing nodes matter, and Directed
	// marks the pairs as (tail, head) arcs.
	Edges    [][2]uint32 `json:"edges,omitempty"`
	Nodes    int         `json:"nodes,omitempty"`
	Directed bool        `json:"directed,omitempty"`

	// Algorithm is a gesmc.ParseAlgorithm name ("" = ParGlobalES).
	Algorithm string `json:"algorithm,omitempty"`
	// Uniformity routes the request between the sampling tiers:
	// "exact" draws exactly uniform i.i.d. samples (gesmc.Exact —
	// undirected bounded-degree targets only; burn_in, thinning,
	// swaps_per_edge, and constraints must be unset, and a sequence
	// outside the tractable regime fails with a typed bad_request
	// rather than silently falling back), "mcmc" the asymptotically
	// uniform chains ("" = "mcmc"). Setting "exact" together with an
	// explicit non-Exact Algorithm is a contradiction and rejected.
	// Every streamed line reports the serving tier in
	// Stats.Uniformity.
	Uniformity string `json:"uniformity,omitempty"`
	// Workers is the parallelism degree P of the compiled engine; it
	// also counts against the service's global worker budget.
	Workers int `json:"workers,omitempty"`
	// Seed makes the request deterministic: against a cold engine, the
	// (target, options, seed) tuple fully determines every sample.
	Seed uint64 `json:"seed,omitempty"`
	// Samples is the ensemble size (0 = 1).
	Samples int `json:"samples,omitempty"`
	// BurnIn / Thinning / SwapsPerEdge resolve exactly like the
	// corresponding Sampler options.
	BurnIn       int     `json:"burn_in,omitempty"`
	Thinning     int     `json:"thinning,omitempty"`
	SwapsPerEdge float64 `json:"swaps_per_edge,omitempty"`
	// TimeoutMS bounds the whole request, including queue wait; 0
	// means no deadline beyond the server's own limits.
	TimeoutMS int `json:"timeout_ms,omitempty"`

	// ResumeFrom resumes the stream at this sample index: the response
	// carries lines ResumeFrom..Samples-1, bit-identical to the suffix
	// of the uninterrupted stream (given a seed, the whole stream is
	// deterministic in the request alone, so any backend can
	// reconstruct it by fast-forwarding a chain). Clients set it to
	// the Cursor of the last line they received to continue a broken
	// stream; the cluster coordinator sets it when failing a dying
	// backend's stream over to another shard. Must be < Samples.
	ResumeFrom int `json:"resume_from,omitempty"`

	// Connected constrains every sample to be connected (weakly
	// connected for directed targets); the realized target must be
	// connected or the request fails with 400. ForbiddenEdges
	// constrains every sample to avoid the given (u, v) pairs. Both
	// map to gesmc.WithConstraint on the compiled sampler.
	Connected      bool        `json:"connected,omitempty"`
	ForbiddenEdges [][2]uint32 `json:"forbidden_edges,omitempty"`
}

// Stats is the JSON form of gesmc.Stats.
type Stats struct {
	Algorithm string `json:"algorithm"`
	// Uniformity is the tier that produced the sample: "exact" for
	// gesmc.Exact (exactly uniform i.i.d. draws), "mcmc" for every
	// Markov chain.
	Uniformity         string  `json:"uniformity,omitempty"`
	Supersteps         int     `json:"supersteps"`
	Attempted          int64   `json:"attempted"`
	Accepted           int64   `json:"accepted"`
	AvgRounds          float64 `json:"avg_rounds,omitempty"`
	MaxRounds          int     `json:"max_rounds,omitempty"`
	LateRoundsFraction float64 `json:"late_rounds_fraction,omitempty"`
	// FirstRoundNS / LaterRoundsNS split the superstep wall time by
	// kernel phase (first dependency-free round vs. conflict-resolution
	// rounds); absent for sequential algorithms.
	FirstRoundNS  int64 `json:"first_round_ns,omitempty"`
	LaterRoundsNS int64 `json:"later_rounds_ns,omitempty"`
	// Constraint instrumentation (absent without constraints).
	ConstraintVetoes int64 `json:"constraint_vetoes,omitempty"`
	EscapeAttempts   int64 `json:"escape_attempts,omitempty"`
	EscapeMoves      int64 `json:"escape_moves,omitempty"`
	// Exact-tier instrumentation (absent on MCMC lines): rejected
	// configurations per draw, split by first defect found.
	Restarts     int64 `json:"restarts,omitempty"`
	LoopDefects  int64 `json:"loop_defects,omitempty"`
	MultiDefects int64 `json:"multi_defects,omitempty"`
	DurationNS   int64 `json:"duration_ns"`
	// Backend identifies the daemon (shard) whose engine produced this
	// sample: set by a server configured with an identity, and filled
	// in by the cluster coordinator for lines it proxies, so clients
	// can observe placement per sample.
	Backend string `json:"backend,omitempty"`
	// TraceID is the request trace this sample belongs to (%016x),
	// stamped by a telemetry-enabled server. All lines of one stream —
	// including a coordinated stream spliced across shard failovers —
	// carry the same ID; GET /v1/trace?id= dumps the trace's spans.
	TraceID string `json:"trace_id,omitempty"`
}

// FromStats converts sampler statistics to their wire form. The
// uniformity label is derived from the algorithm, so every producer —
// daemon, coordinator, and the CLI's local NDJSON mode — reports the
// serving tier without extra plumbing.
func FromStats(st gesmc.Stats) Stats {
	uniformity := "mcmc"
	if st.Algorithm == gesmc.Exact.String() {
		uniformity = "exact"
	}
	return Stats{
		Algorithm:          st.Algorithm,
		Uniformity:         uniformity,
		Supersteps:         st.Supersteps,
		Attempted:          st.Attempted,
		Accepted:           st.Accepted,
		AvgRounds:          st.AvgRounds,
		MaxRounds:          st.MaxRounds,
		LateRoundsFraction: st.LateRoundsFraction,
		FirstRoundNS:       st.FirstRoundTime.Nanoseconds(),
		LaterRoundsNS:      st.LaterRoundsTime.Nanoseconds(),
		ConstraintVetoes:   st.ConstraintVetoes,
		EscapeAttempts:     st.EscapeAttempts,
		EscapeMoves:        st.EscapeMoves,
		Restarts:           st.Restarts,
		LoopDefects:        st.LoopDefects,
		MultiDefects:       st.MultiDefects,
		DurationNS:         st.Duration.Nanoseconds(),
	}
}

// Line is one NDJSON line of a sampling response: either a drawn
// sample (Edges + Stats) or, terminally, an error marker (Error/Code
// set, no edges).
type Line struct {
	// Index is the sample's position in the ensemble, from 0.
	Index int `json:"index"`
	// Cursor is the resume point after this line: re-issue the request
	// with ResumeFrom = Cursor to continue the stream from the next
	// line. A sample line carries Index+1; an error line carries Index
	// (the failed sample is the one to retry). Zero on streams served
	// by pre-cursor backends.
	Cursor int `json:"cursor,omitempty"`
	// Nodes is the node count of the sampled graph.
	Nodes int `json:"nodes,omitempty"`
	// Directed marks Edges as (tail, head) arcs.
	Directed bool `json:"directed,omitempty"`
	// Edges is the sampled edge (or arc) list.
	Edges [][2]uint32 `json:"edges,omitempty"`
	// Stats covers the supersteps that produced this sample.
	Stats *Stats `json:"stats,omitempty"`
	// Error and Code report early termination (the stream ends after
	// an error line). Code is a stable machine-readable classifier
	// ("canceled", "deadline", "closed", "internal").
	Error string `json:"error,omitempty"`
	Code  string `json:"code,omitempty"`
	// TraceID ties an in-band error line to its request trace (sample
	// lines carry the ID inside Stats instead).
	TraceID string `json:"trace_id,omitempty"`
}

// FromSample converts one ensemble draw to its wire line. Terminal
// error samples map to error lines with an empty edge list.
func FromSample(smp gesmc.Sample) Line {
	ln := Line{Index: smp.Index}
	switch {
	case smp.Err != nil:
		ln.Error = smp.Err.Error()
	case smp.Graph != nil:
		ln.Nodes = smp.Graph.N()
		ln.Edges = smp.Graph.Edges()
	case smp.DiGraph != nil:
		ln.Nodes = smp.DiGraph.N()
		ln.Directed = true
		ln.Edges = smp.DiGraph.Arcs()
	}
	if smp.Err == nil {
		st := FromStats(smp.Stats)
		ln.Stats = &st
	}
	return ln
}

// Graph rebuilds the sample line's graph: (*gesmc.Graph, nil) for
// undirected lines, (nil, *gesmc.DiGraph) for directed ones.
func (ln *Line) Graph() (*gesmc.Graph, *gesmc.DiGraph, error) {
	if ln.Directed {
		dg, err := gesmc.NewDiGraph(ln.Nodes, ln.Edges)
		return nil, dg, err
	}
	g, err := gesmc.NewGraph(ln.Nodes, ln.Edges)
	return g, nil, err
}

// Error is the JSON body of a non-streaming error response (a request
// rejected before the first sample line): HTTP 400 for invalid
// requests, 429 when the admission queue is full, 503 during shutdown.
type Error struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// Health is the body of GET /v1/healthz.
type Health struct {
	Status   string `json:"status"` // "ok" | "draining"
	UptimeMS int64  `json:"uptime_ms"`
}

// PoolMetrics describes the engine pool.
type PoolMetrics struct {
	// Engines is the number of idle compiled samplers currently pooled.
	Engines int `json:"engines"`
	// Capacity is the eviction threshold.
	Capacity int `json:"capacity"`
	// Hits / Misses count checkouts that reused a pooled engine vs.
	// compiled a fresh one; Evictions counts LRU closes.
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// HitRate is Hits / (Hits + Misses), 0 when no checkouts happened.
	HitRate float64 `json:"hit_rate"`
	// HotKeys are the most-reused engine-pool keys (by hit count,
	// descending): the promotion signal a cluster coordinator uses to
	// replicate hot targets across shards.
	HotKeys []KeyHits `json:"hot_keys,omitempty"`
}

// KeyHits is one engine-pool key's reuse count. Key is the %016x form
// of the 64-bit pool-key digest (target digest + algorithm + workers +
// seed + schedule) — the same value the cluster coordinator hashes
// onto its shard ring.
type KeyHits struct {
	Key  string `json:"key"`
	Hits int64  `json:"hits"`
}

// ShardMetrics is one backend's entry in a coordinator's cluster view.
type ShardMetrics struct {
	ID    string `json:"id"`
	URL   string `json:"url"`
	Alive bool   `json:"alive"`
	// Breaker is the shard's circuit-breaker state: "closed" (serving),
	// "open" (tripped by consecutive failures, excluded from routing),
	// or "half_open" (cooled down, awaiting probe re-admission).
	Breaker string `json:"breaker,omitempty"`
	// Inflight is the number of requests this coordinator is currently
	// streaming through the shard; Requests counts attempts routed to
	// it (including failed ones), Errors the attempts that failed.
	Inflight int64 `json:"inflight"`
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
}

// ClusterMetrics is the coordinator's placement view, nested under
// Metrics.Cluster when the serving backend is a coordinator.
type ClusterMetrics struct {
	Shards []ShardMetrics `json:"shards"`
	// RoutedOwner counts requests served by the ring owner of their
	// pool key; RoutedReplica those served by another replica of a hot
	// key; RoutedSpill those that fell through to a non-owner because
	// the owner was dead, overloaded (429), or draining (503).
	RoutedOwner   int64 `json:"routed_owner"`
	RoutedReplica int64 `json:"routed_replica"`
	RoutedSpill   int64 `json:"routed_spill"`
	// MidstreamFailovers counts post-first-line backend failures that
	// were transparently failed over: the stream was re-issued to
	// another shard with ResumeFrom set to the delivered prefix, and
	// the client never saw an error line. MidstreamFailures counts the
	// streams whose failover attempts exhausted and were terminated
	// with an honest in-band error line.
	MidstreamFailovers int64 `json:"midstream_failovers"`
	MidstreamFailures  int64 `json:"midstream_failures"`
	// Evictions counts alive→dead shard transitions (health-check
	// failures and transport errors); Revivals the dead→alive ones.
	Evictions int64 `json:"evictions"`
	Revivals  int64 `json:"revivals"`
	// HotKeys are the most-routed pool keys with their request counts;
	// keys at or beyond the promotion threshold are served by up to R
	// replicas.
	HotKeys []KeyHits `json:"hot_keys,omitempty"`
}

// Metrics is the body of GET /v1/metrics.
type Metrics struct {
	// Backend is the identity of the serving process (daemon shard or
	// coordinator), when it has one.
	Backend string `json:"backend,omitempty"`

	// RequestsTotal counts accepted sampling requests; Rejected counts
	// admission-control overload rejections, Failed counts requests
	// terminated by validation or runtime errors (cancellation
	// included).
	RequestsTotal    int64 `json:"requests_total"`
	RequestsInflight int64 `json:"requests_inflight"`
	RequestsRejected int64 `json:"requests_rejected"`
	RequestsFailed   int64 `json:"requests_failed"`
	// QueueDepth is the number of requests waiting for worker-budget
	// tokens; WorkerBudget/WorkersBusy account those tokens.
	QueueDepth   int64 `json:"queue_depth"`
	WorkerBudget int   `json:"worker_budget"`
	WorkersBusy  int64 `json:"workers_busy"`

	Pool PoolMetrics `json:"pool"`

	// SamplesTotal counts streamed sample lines; SuperstepsTotal and
	// SwitchesTotal aggregate engine work across all requests, and
	// SuperstepsPerSec is SuperstepsTotal over the uptime.
	SamplesTotal     int64   `json:"samples_total"`
	SuperstepsTotal  int64   `json:"supersteps_total"`
	SwitchesTotal    int64   `json:"switches_total"`
	SuperstepsPerSec float64 `json:"supersteps_per_sec"`
	UptimeMS         int64   `json:"uptime_ms"`
	// StartedAtMS is the process-start wall clock (Unix milliseconds):
	// a scraper diffing counters across polls detects a restart (and
	// resets its deltas) when StartedAtMS changes, where UptimeMS alone
	// is ambiguous under clock skew between scrapes.
	StartedAtMS int64 `json:"started_at_ms,omitempty"`

	// Cluster is the coordinator's placement view; absent on plain
	// daemons.
	Cluster *ClusterMetrics `json:"cluster,omitempty"`
}

// EncodeLine writes one NDJSON line (json.Encoder terminates each
// Encode with '\n', which is exactly the framing).
func EncodeLine(w io.Writer, ln Line) error {
	return json.NewEncoder(w).Encode(ln)
}

// DecodeLines decodes an NDJSON stream, invoking fn per line until EOF,
// a malformed line, or a non-nil fn result. It is the client-side
// consumption loop: examples/service and the CLI tests use it.
func DecodeLines(r io.Reader, fn func(Line) error) error {
	dec := json.NewDecoder(r)
	for {
		var ln Line
		if err := dec.Decode(&ln); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		if err := fn(ln); err != nil {
			return err
		}
	}
}
