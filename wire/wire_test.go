package wire

import (
	"bytes"
	"strings"
	"testing"

	"gesmc"
)

func TestLineRoundTrip(t *testing.T) {
	g, err := gesmc.NewGraph(4, [][2]uint32{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	smp := gesmc.Sample{Index: 3, Graph: g, Stats: gesmc.Stats{Algorithm: "ParGlobalES", Supersteps: 7}}
	var buf bytes.Buffer
	if err := EncodeLine(&buf, FromSample(smp)); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != 1 {
		t.Fatalf("one line expected, got %d newlines", n)
	}
	var got []Line
	if err := DecodeLines(&buf, func(ln Line) error { got = append(got, ln); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Index != 3 || got[0].Stats == nil || got[0].Stats.Supersteps != 7 {
		t.Fatalf("decoded %+v", got)
	}
	back, _, err := got[0].Graph()
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 4 || back.M() != 3 {
		t.Fatalf("rebuilt n=%d m=%d", back.N(), back.M())
	}
}

func TestLineDirected(t *testing.T) {
	dg, err := gesmc.NewDiGraph(3, [][2]uint32{{0, 1}, {1, 0}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	ln := FromSample(gesmc.Sample{DiGraph: dg})
	if !ln.Directed || len(ln.Edges) != 3 {
		t.Fatalf("directed line: %+v", ln)
	}
	_, back, err := ln.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if back == nil || back.M() != 3 {
		t.Fatalf("rebuilt digraph: %+v", back)
	}
}

func TestLineError(t *testing.T) {
	ln := FromSample(gesmc.Sample{Index: 2, Err: gesmc.ErrClosed})
	if ln.Error == "" || ln.Stats != nil || len(ln.Edges) != 0 {
		t.Fatalf("error line: %+v", ln)
	}
}
