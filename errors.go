package gesmc

import "errors"

// Typed errors returned by option validation and sampler construction.
// All errors produced by this package wrap one of these sentinels, so
// callers can classify failures with errors.Is.
var (
	// ErrNilTarget is returned when NewSampler receives a nil graph.
	ErrNilTarget = errors.New("gesmc: nil sampling target")
	// ErrUnknownAlgorithm is returned for Algorithm values outside the
	// defined enum or unparseable algorithm names.
	ErrUnknownAlgorithm = errors.New("gesmc: unknown algorithm")
	// ErrUnsupportedAlgorithm is returned when the selected algorithm
	// cannot drive the selected target class (e.g. Curveball on a
	// digraph).
	ErrUnsupportedAlgorithm = errors.New("gesmc: algorithm not supported for this target")
	// ErrInvalidWorkers is returned for a negative or zero worker count
	// passed to WithWorkers.
	ErrInvalidWorkers = errors.New("gesmc: worker count must be at least 1")
	// ErrInvalidLoopProb is returned for a loop probability outside
	// [0, 1].
	ErrInvalidLoopProb = errors.New("gesmc: loop probability must lie in [0, 1]")
	// ErrInvalidSwapsPerEdge is returned for a non-positive or non-finite
	// swaps-per-edge target.
	ErrInvalidSwapsPerEdge = errors.New("gesmc: swaps per edge must be positive and finite")
	// ErrInvalidBurnIn is returned for a burn-in below one superstep.
	ErrInvalidBurnIn = errors.New("gesmc: burn-in must be at least 1 superstep")
	// ErrInvalidThinning is returned for a thinning below one superstep.
	ErrInvalidThinning = errors.New("gesmc: thinning must be at least 1 superstep")
	// ErrInvalidChunkBytes is returned for a negative WithChunkBytes
	// value.
	ErrInvalidChunkBytes = errors.New("gesmc: chunk bytes must be non-negative")
	// ErrInvalidSupersteps is returned when a negative superstep count is
	// requested from Step.
	ErrInvalidSupersteps = errors.New("gesmc: superstep count must be non-negative")
	// ErrInvalidCount is returned for a negative ensemble size.
	ErrInvalidCount = errors.New("gesmc: sample count must be non-negative")
	// ErrGraphTooSmall is returned for target graphs with fewer than two
	// edges, on which no switch (and no trade) is defined.
	ErrGraphTooSmall = errors.New("gesmc: graph has fewer than 2 edges")
	// ErrClosed is returned by Step, Sample, Ensemble, and Collect on a
	// Sampler whose Close has been called: the persistent worker gang is
	// released and the chain cannot advance. Close itself is idempotent,
	// so pooling layers may double-close defensively.
	ErrClosed = errors.New("gesmc: sampler is closed")
	// ErrResumeBehind is returned by FastForwardTo when the chain has
	// already advanced past the requested sample's superstep position.
	// Markov chains only run forward: a sampler that overshot the
	// resume point cannot serve it, and the caller must compile a
	// fresh chain instead.
	ErrResumeBehind = errors.New("gesmc: chain already past the resume point")
	// ErrInvalidConstraint is returned for malformed constraints: loop
	// or out-of-range edges in ForbiddenEdges/ProtectedEdges, a
	// NodeClasses array whose length differs from the node count, or a
	// zero Constraint value.
	ErrInvalidConstraint = errors.New("gesmc: invalid constraint")
	// ErrUnsupportedConstraint is returned when WithConstraint is
	// combined with an algorithm outside the constrained set (SeqES,
	// SeqGlobalES, ParES, ParGlobalES, and the directed chains) or with
	// WithSampleViaBuckets.
	ErrUnsupportedConstraint = errors.New("gesmc: constraint not supported for this algorithm")
	// ErrConstraintViolated is returned when the target graph itself
	// lies outside the constrained state space: it contains a forbidden
	// edge, misses a protected edge, or is disconnected under
	// Connected(). The chain must start inside the space it samples.
	ErrConstraintViolated = errors.New("gesmc: target violates constraint")
	// ErrExactUnsupported is returned by NewSampler with Algorithm
	// Exact when the target's degree sequence lies outside the exact
	// tier's tractable rejection regime (λ+λ² too large; see DESIGN.md
	// §14). The sampler never falls back to MCMC silently — callers
	// choose the degradation by retrying with an MCMC algorithm.
	ErrExactUnsupported = errors.New("gesmc: degree sequence outside the exact sampler's tractable regime")
	// ErrExactSchedule is returned when WithBurnIn, WithThinning, or
	// WithSwapsPerEdge is combined with Algorithm Exact: exact draws
	// are i.i.d., so a chain schedule has nothing to schedule and a
	// request carrying one is almost certainly a misdirected MCMC
	// request.
	ErrExactSchedule = errors.New("gesmc: exact draws are i.i.d.; burn-in/thinning/swaps-per-edge do not apply")
)
