// Command gesmcd is the gesmc sampling daemon: an HTTP server that
// draws ensembles of degree-preserving random graphs on request,
// multiplexing all requests over a bounded worker budget and a pool of
// compiled sampling engines (persistent worker gangs are reused across
// requests instead of rebuilt per call).
//
// API (JSON formats in package gesmc/wire):
//
//	POST /v1/sample   sample an ensemble; the response is NDJSON, one
//	                  line per sample, streamed as produced
//	GET  /v1/healthz  liveness
//	GET  /v1/metrics  request/queue/pool/throughput counters (JSON; with
//	                  "Accept: text/plain", Prometheus text exposition
//	                  including queue-wait and superstep-phase histograms)
//	GET  /v1/trace    span dump of one request trace (?id= from any
//	                  streamed line's stats.trace_id)
//
// -pprof additionally mounts net/http/pprof under /debug/pprof/; -log
// controls the structured request log (trace IDs included).
//
// Example:
//
//	gesmcd -addr 127.0.0.1:8742 &
//	curl -s http://127.0.0.1:8742/v1/sample -d '{
//	        "degrees": [3,3,2,2,2,1,1], "samples": 100, "seed": 7,
//	        "algorithm": "ParGlobalES"}' | jq .stats.supersteps
//
// With -coordinator, gesmcd serves the same API as the front tier of a
// sharded cluster instead of sampling itself: requests are
// consistent-hashed by engine-pool key onto the -backends daemons (so
// pooled burned-in engines are reused cluster-wide), hot keys are
// replicated across -replicate shards, dead backends are health-checked
// out of the ring, and overloaded owners spill to the least-loaded
// live shard:
//
//	gesmcd -addr :8742 &           # shard A
//	gesmcd -addr :8743 &           # shard B
//	gesmcd -addr :8740 -coordinator -backends 127.0.0.1:8742,127.0.0.1:8743 &
//	curl -s http://127.0.0.1:8740/v1/sample -d '{"degrees":[3,2,2,1],"samples":4,"seed":7}' \
//	        | jq .stats.backend
//
// On SIGINT/SIGTERM the daemon stops admitting work, drains in-flight
// streams (bounded by -drain), and parks every pooled worker gang.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"gesmc/internal/cluster"
	"gesmc/internal/faultinject"
	"gesmc/internal/service"
)

func main() {
	var (
		addr   = flag.String("addr", "127.0.0.1:8742", "listen address (host:port; port 0 picks a free port)")
		id     = flag.String("id", "", "backend identity stamped on streamed lines and metrics (default: the resolved listen address)")
		budget = flag.Int("budget", runtime.GOMAXPROCS(0), "global worker budget shared by all jobs")
		queue  = flag.Int("queue", 64, "admission queue depth; arrivals beyond it get HTTP 429")
		pool   = flag.Int("pool", 8, "engine pool capacity (0 disables pooling)")
		drain  = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")

		coordinator = flag.Bool("coordinator", false, "run as a cluster coordinator instead of a sampling shard")
		backends    = flag.String("backends", "", "comma-separated backend URLs (coordinator mode)")
		replicate   = flag.Int("replicate", 2, "replicas serving one hot key (coordinator mode)")
		hot         = flag.Int64("hot", 16, "requests per key before it is promoted to replicated service (coordinator mode)")
		health      = flag.Duration("health", 2*time.Second, "backend health-check interval (coordinator mode)")

		faults = flag.String("faults", "", "arm chaos fault points, e.g. server.stream:cut:after=5:hits=1,server.health:flap (testing only)")

		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ for live profiling")
		logLevel    = flag.String("log", "info", "structured request-log level: debug, info, warn, error, or off")
		noTelemetry = flag.Bool("no-telemetry", false, "disable tracing, latency histograms, and Prometheus exposition")
	)
	flag.Parse()

	// Structured request logging (slog, text format, stderr): one line
	// per request with its trace ID, plus failover and breaker-
	// transition events in coordinator mode.
	var logger *slog.Logger
	if *logLevel != "off" {
		var lv slog.Level
		if err := lv.UnmarshalText([]byte(*logLevel)); err != nil {
			log.Fatalf("gesmcd: -log: %v", err)
		}
		logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv}))
	}

	if *faults != "" {
		fs, err := faultinject.ParseSpec(*faults)
		if err != nil {
			log.Fatalf("gesmcd: %v", err)
		}
		for _, f := range fs {
			faultinject.Enable(f)
		}
		log.Printf("gesmcd: %d fault point(s) armed: %s", len(fs), *faults)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("gesmcd: %v", err)
	}
	if *id == "" {
		*id = ln.Addr().String()
	}

	var handler http.Handler
	var shutdownTier func(ctx context.Context)
	if *coordinator {
		var shards []cluster.ShardConfig
		for _, u := range strings.Split(*backends, ",") {
			if u = strings.TrimSpace(u); u != "" {
				shards = append(shards, cluster.ShardConfig{URL: u})
			}
		}
		coord, err := cluster.New(cluster.Config{
			Shards:         shards,
			ID:             *id,
			Replication:    *replicate,
			HotThreshold:   *hot,
			HealthInterval: *health,
			NoTelemetry:    *noTelemetry,
			Logger:         logger,
		})
		if err != nil {
			log.Fatalf("gesmcd: %v", err)
		}
		// One synchronous probe round so the first requests already
		// route around backends that were down at boot.
		coord.CheckHealth(context.Background())
		handler = service.NewBackendHandler(coord)
		shutdownTier = func(context.Context) { coord.Close() }
		// The "listening on" line is load-bearing: scripts (CI smoke,
		// the examples) scrape the resolved address when -addr used
		// port 0.
		fmt.Printf("gesmcd: listening on %s (coordinator over %d backends, replicate=%d hot=%d)\n",
			ln.Addr(), len(shards), *replicate, *hot)
	} else {
		svc := service.New(service.Config{
			ID:           *id,
			WorkerBudget: *budget,
			QueueLimit:   *queue,
			PoolCapacity: *pool,
			NoPooling:    *pool == 0,
			NoTelemetry:  *noTelemetry,
			Logger:       logger,
		})
		handler = service.NewHandler(svc)
		shutdownTier = func(ctx context.Context) {
			if err := svc.Shutdown(ctx); err != nil && !errors.Is(err, context.Canceled) {
				log.Printf("gesmcd: job drain: %v", err)
			}
		}
		fmt.Printf("gesmcd: listening on %s (budget=%d queue=%d pool=%d)\n",
			ln.Addr(), *budget, *queue, *pool)
	}

	if *pprofOn {
		// Mount the profiling endpoints beside the API: CPU/heap/
		// goroutine profiles on a live daemon, no restart needed.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}

	srv := &http.Server{Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		log.Printf("gesmcd: signal received, draining (timeout %v)", *drain)
	case err := <-errCh:
		log.Fatalf("gesmcd: %v", err)
	}

	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting connections and wait for handlers, then drain the
	// job layer (parking every pooled gang) or stop the coordinator's
	// health loop.
	if err := srv.Shutdown(dctx); err != nil {
		log.Printf("gesmcd: http shutdown: %v", err)
	}
	shutdownTier(dctx)
	log.Printf("gesmcd: bye")
}
