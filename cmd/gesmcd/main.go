// Command gesmcd is the gesmc sampling daemon: an HTTP server that
// draws ensembles of degree-preserving random graphs on request,
// multiplexing all requests over a bounded worker budget and a pool of
// compiled sampling engines (persistent worker gangs are reused across
// requests instead of rebuilt per call).
//
// API (JSON formats in package gesmc/wire):
//
//	POST /v1/sample   sample an ensemble; the response is NDJSON, one
//	                  line per sample, streamed as produced
//	GET  /v1/healthz  liveness
//	GET  /v1/metrics  request/queue/pool/throughput counters
//
// Example:
//
//	gesmcd -addr 127.0.0.1:8742 &
//	curl -s http://127.0.0.1:8742/v1/sample -d '{
//	        "degrees": [3,3,2,2,2,1,1], "samples": 100, "seed": 7,
//	        "algorithm": "ParGlobalES"}' | jq .stats.supersteps
//
// On SIGINT/SIGTERM the daemon stops admitting work, drains in-flight
// streams (bounded by -drain), and parks every pooled worker gang.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"gesmc/internal/service"
)

func main() {
	var (
		addr   = flag.String("addr", "127.0.0.1:8742", "listen address (host:port; port 0 picks a free port)")
		budget = flag.Int("budget", runtime.GOMAXPROCS(0), "global worker budget shared by all jobs")
		queue  = flag.Int("queue", 64, "admission queue depth; arrivals beyond it get HTTP 429")
		pool   = flag.Int("pool", 8, "engine pool capacity (0 disables pooling)")
		drain  = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
	)
	flag.Parse()

	svc := service.New(service.Config{
		WorkerBudget: *budget,
		QueueLimit:   *queue,
		PoolCapacity: *pool,
		NoPooling:    *pool == 0,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("gesmcd: %v", err)
	}
	srv := &http.Server{Handler: service.NewHandler(svc)}

	// The "listening on" line is load-bearing: scripts (CI smoke, the
	// examples) scrape the resolved address when -addr used port 0.
	fmt.Printf("gesmcd: listening on %s (budget=%d queue=%d pool=%d)\n",
		ln.Addr(), *budget, *queue, *pool)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		log.Printf("gesmcd: signal received, draining (timeout %v)", *drain)
	case err := <-errCh:
		log.Fatalf("gesmcd: %v", err)
	}

	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting connections and wait for handlers, then drain the
	// job layer and park every pooled gang.
	if err := srv.Shutdown(dctx); err != nil {
		log.Printf("gesmcd: http shutdown: %v", err)
	}
	if err := svc.Shutdown(dctx); err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("gesmcd: job drain: %v", err)
	}
	log.Printf("gesmcd: bye")
}
