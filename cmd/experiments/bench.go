package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"gesmc"
	"gesmc/internal/conc"
	"gesmc/internal/rng"
)

// bench is the reproducible performance-trajectory harness: it times the
// four parallel chains that now share the unified superstep kernel —
// ParES, ParGlobalES, directed ParGlobalES, and parallel Global
// Curveball — at P=1 and P=workers on a fixed synthetic workload, and
// writes the ns/switch numbers to BENCH_<date>.json so successive PRs
// can be compared. All runs go through the public Sampler API (the code
// path production callers use).
type benchResult struct {
	Name       string `json:"name"`
	Workers    int    `json:"workers"`
	Supersteps int    `json:"supersteps"`
	Attempted  int64  `json:"attempted"`
	// AllocsPerSuperstep is the steady-state heap allocation count per
	// superstep (runtime mallocs across the measured supersteps). The
	// kernel chains should stay near zero; regressions here show up
	// before they show up in ns/switch.
	AllocsPerSuperstep float64 `json:"allocs_per_superstep"`
	NsPerSwitch        float64 `json:"ns_per_switch"`
	// SpeedupVsW1 is emitted as null when the container cannot actually
	// run the requested workers in parallel (see CPUBound): a "speedup"
	// measured by time-slicing P goroutines on fewer cores is noise.
	SpeedupVsW1 *float64 `json:"speedup_vs_w1"`
	// CPUBound marks results whose worker count exceeds GOMAXPROCS.
	CPUBound bool `json:"cpu_bound,omitempty"`
}

// benchHardware records the machine the artifact was produced on, so
// cross-commit comparisons know when a shift is hardware rather than
// code. Cache sizes come from the same sysfs detection the kernels'
// chunk sizing uses (conc.Topology).
type benchHardware struct {
	NumCPU     int    `json:"num_cpu"`
	GoOS       string `json:"goos"`
	GoArch     string `json:"goarch"`
	L2Bytes    int    `json:"l2_bytes"`
	LLCBytes   int    `json:"llc_bytes"`
	LLCSharers int    `json:"llc_sharers"`
	// CacheDetected is false when the cache values are the conservative
	// fallbacks rather than OS-reported.
	CacheDetected bool `json:"cache_detected"`
}

type benchReport struct {
	Date       string        `json:"date"`
	GoMaxProcs int           `json:"go_max_procs"`
	Hardware   benchHardware `json:"hardware"`
	Nodes      int           `json:"nodes"`
	EdgesUndir int           `json:"edges_undirected"`
	ArcsDir    int           `json:"arcs_directed"`
	Quick      bool          `json:"quick"`
	Results    []benchResult `json:"results"`
	// ServiceThroughput compares R identical requests through the
	// service layer's pooled engines against cold per-request sampler
	// construction (see service_bench.go).
	ServiceThroughput *serviceThroughput `json:"service_throughput"`
	// ConstrainedOverhead measures the cost of the connectivity
	// constraint on ParGlobalES: per-superstep certification plus
	// occasional rollbacks, against the unconstrained chain on the
	// same (connected) workload.
	ConstrainedOverhead *constrainedOverhead `json:"constrained_overhead"`
	// TelemetryOverhead measures the observability tax: the same
	// request workload with tracing/histograms on vs off (see
	// telemetry_bench.go). Gated at <= 1.03 in CI.
	TelemetryOverhead *telemetryOverhead `json:"telemetry_overhead"`
}

// constrainedOverhead is the bench artifact of the constraint layer:
// ns/switch with and without Connected(), their ratio, and the
// constrained chain's rejection behaviour.
type constrainedOverhead struct {
	Nodes                    int     `json:"nodes"`
	Edges                    int     `json:"edges"`
	NsPerSwitchConstrained   float64 `json:"ns_per_switch_constrained"`
	NsPerSwitchUnconstrained float64 `json:"ns_per_switch_unconstrained"`
	// Overhead is constrained / unconstrained ns per switch.
	Overhead float64 `json:"overhead"`
	// RejectionRate is 1 - accepted/attempted of the constrained run;
	// ConstraintVetoes isolates the rejections charged to the
	// constraint layer (connectivity vetoes and rollbacks).
	RejectionRate    float64 `json:"rejection_rate"`
	ConstraintVetoes int64   `json:"constraint_vetoes"`
	EscapeMoves      int64   `json:"escape_moves"`
}

// benchConstrained times ParGlobalES with and without the connectivity
// constraint on a grid graph (connected, bridge-free interior — the
// constraint's fast path dominates, so this measures certification
// overhead rather than pathological rollback storms).
func benchConstrained(opt options, supersteps int) (*constrainedOverhead, error) {
	side := 96
	if opt.quick {
		side = 32
	}
	grid := gesmc.GenerateGrid(side, side)
	co := &constrainedOverhead{Nodes: grid.N(), Edges: grid.M()}

	run := func(connected bool) (float64, gesmc.Stats, error) {
		opts := []gesmc.Option{
			gesmc.WithAlgorithm(gesmc.ParGlobalES),
			gesmc.WithWorkers(1),
			gesmc.WithSeed(opt.seed),
		}
		if connected {
			opts = append(opts, gesmc.WithConstraint(gesmc.Connected()))
		}
		s, err := gesmc.NewSampler(grid.Clone(), opts...)
		if err != nil {
			return 0, gesmc.Stats{}, err
		}
		defer s.Close()
		if _, err := s.Step(1); err != nil {
			return 0, gesmc.Stats{}, err
		}
		best := 0.0
		for w := 0; w < benchWindows; w++ {
			st, err := s.Step(supersteps)
			if err != nil {
				return 0, gesmc.Stats{}, err
			}
			ns := float64(st.Duration.Nanoseconds()) / float64(st.Attempted)
			if w == 0 || ns < best {
				best = ns
			}
		}
		return best, s.Stats(), nil
	}

	var err error
	co.NsPerSwitchUnconstrained, _, err = run(false)
	if err != nil {
		return nil, err
	}
	var st gesmc.Stats
	co.NsPerSwitchConstrained, st, err = run(true)
	if err != nil {
		return nil, err
	}
	co.Overhead = co.NsPerSwitchConstrained / co.NsPerSwitchUnconstrained
	if st.Attempted > 0 {
		co.RejectionRate = 1 - float64(st.Accepted)/float64(st.Attempted)
	}
	co.ConstraintVetoes = st.ConstraintVetoes
	co.EscapeMoves = st.EscapeMoves
	fmt.Printf("\nconstrained overhead (ParGlobalES, %dx%d grid): %.1f -> %.1f ns/switch (%.2fx), rejection %.3f\n",
		side, side, co.NsPerSwitchUnconstrained, co.NsPerSwitchConstrained, co.Overhead, co.RejectionRate)
	return co, nil
}

// benchOut is overridable for tests.
var benchOut = ""

func bench(opt options) error {
	n := 1 << 15
	supersteps := 10
	if opt.quick {
		n = 1 << 11
		supersteps = 3
	}
	ug, err := gesmc.GeneratePowerLaw(n, 2.2, opt.seed)
	if err != nil {
		return err
	}
	dg, err := benchDigraph(n, ug.M(), opt.seed)
	if err != nil {
		return err
	}

	topo := conc.Topology()
	report := benchReport{
		Date:       time.Now().Format("2006-01-02"),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Hardware: benchHardware{
			NumCPU:        runtime.NumCPU(),
			GoOS:          runtime.GOOS,
			GoArch:        runtime.GOARCH,
			L2Bytes:       topo.L2Bytes,
			LLCBytes:      topo.LLCBytes,
			LLCSharers:    topo.LLCSharers,
			CacheDetected: topo.Detected,
		},
		Nodes:      n,
		EdgesUndir: ug.M(),
		ArcsDir:    dg.M(),
		Quick:      opt.quick,
	}

	type chain struct {
		name   string
		alg    gesmc.Algorithm
		target func() gesmc.Target
	}
	chains := []chain{
		{"ParES", gesmc.ParES, func() gesmc.Target { return ug.Clone() }},
		{"ParGlobalES", gesmc.ParGlobalES, func() gesmc.Target { return ug.Clone() }},
		{"ParGlobalES/directed", gesmc.ParGlobalES, func() gesmc.Target { return dg.Clone() }},
		{"GlobalCurveball", gesmc.GlobalCurveball, func() gesmc.Target { return ug.Clone() }},
	}

	// Powers of two up to the requested maximum (always including the
	// maximum itself), so the artifact carries a real speedup curve
	// rather than a single endpoint ratio.
	workerCounts := []int{1}
	for w := 2; w < opt.workers; w <<= 1 {
		workerCounts = append(workerCounts, w)
	}
	if opt.workers > 1 {
		workerCounts = append(workerCounts, opt.workers)
	}
	fmt.Printf("%-22s %-8s %12s %14s %16s %10s\n",
		"chain", "workers", "attempted", "ns/switch", "allocs/superstep", "speedup")
	for _, c := range chains {
		var base float64
		for _, w := range workerCounts {
			r, err := benchOne(c.name, c.alg, c.target(), w, supersteps, opt.seed)
			if err != nil {
				return err
			}
			if w == 1 {
				base = r.NsPerSwitch
			} else if w > report.GoMaxProcs {
				// Fewer cores than workers: the w-vs-1 ratio measures
				// scheduler time-slicing, not parallel speedup.
				r.CPUBound = true
			} else if base > 0 {
				sp := base / r.NsPerSwitch
				r.SpeedupVsW1 = &sp
			}
			report.Results = append(report.Results, r)
			speedup := "-"
			if r.SpeedupVsW1 != nil {
				speedup = fmt.Sprintf("%.2f", *r.SpeedupVsW1)
			} else if r.CPUBound {
				speedup = "cpu-bound"
			}
			fmt.Printf("%-22s %-8d %12d %14.1f %16.1f %10s\n",
				r.Name, r.Workers, r.Attempted, r.NsPerSwitch, r.AllocsPerSuperstep, speedup)
		}
	}

	st, err := benchService(opt)
	if err != nil {
		return err
	}
	report.ServiceThroughput = st

	co, err := benchConstrained(opt, supersteps)
	if err != nil {
		return err
	}
	report.ConstrainedOverhead = co

	to, err := benchTelemetry(opt)
	if err != nil {
		return err
	}
	report.TelemetryOverhead = to

	out := benchOut
	if out == "" {
		out = fmt.Sprintf("BENCH_%s.json", report.Date)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", out)
	return nil
}

// benchWindows is the number of measured windows per configuration.
// The reported ns/switch is the fastest window: on shared machines the
// minimum estimates intrinsic code speed, while means absorb neighbor
// load and make artifacts incomparable across commits (the reason this
// harness exists). Allocation counts are identical across windows in
// steady state, so they come from the last window.
const benchWindows = 3

// benchOne compiles the sampler once (setup excluded, as in §6's
// methodology), runs one warm-up superstep (which also grows all
// reusable scratch to steady state), then times benchWindows windows
// of the measured supersteps, counting heap allocations via
// runtime.MemStats and keeping the fastest window's ns/switch.
func benchOne(name string, alg gesmc.Algorithm, target gesmc.Target, workers, supersteps int, seed uint64) (benchResult, error) {
	s, err := gesmc.NewSampler(target,
		gesmc.WithAlgorithm(alg),
		gesmc.WithWorkers(workers),
		gesmc.WithSeed(seed))
	if err != nil {
		return benchResult{}, err
	}
	defer s.Close()
	if _, err := s.Step(1); err != nil {
		return benchResult{}, err
	}
	var r benchResult
	for w := 0; w < benchWindows; w++ {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		stats, err := s.Step(supersteps)
		if err != nil {
			return benchResult{}, err
		}
		runtime.ReadMemStats(&after)
		ns := 0.0
		if stats.Attempted > 0 {
			ns = float64(stats.Duration.Nanoseconds()) / float64(stats.Attempted)
		}
		if w == 0 || ns < r.NsPerSwitch {
			r.NsPerSwitch = ns
		}
		r.Name = name
		r.Workers = workers
		r.Supersteps = stats.Supersteps
		r.Attempted = stats.Attempted
		r.AllocsPerSuperstep = float64(after.Mallocs-before.Mallocs) / float64(supersteps)
	}
	return r, nil
}

// benchDigraph samples a simple digraph with exactly m arcs by
// rejection (duplicate and loop arcs are redrawn; m ≪ n² here, so
// collisions are rare).
func benchDigraph(n, m int, seed uint64) (*gesmc.DiGraph, error) {
	src := rng.NewMT19937(seed ^ 0xD16A)
	seen := make(map[[2]uint32]struct{}, m)
	arcs := make([][2]uint32, 0, m)
	for len(arcs) < m {
		u := uint32(rng.IntN(src, n))
		v := uint32(rng.IntN(src, n))
		if u == v {
			continue
		}
		a := [2]uint32{u, v}
		if _, dup := seen[a]; dup {
			continue
		}
		seen[a] = struct{}{}
		arcs = append(arcs, a)
	}
	return gesmc.NewDiGraph(n, arcs)
}
