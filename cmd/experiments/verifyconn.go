package main

import (
	"fmt"
	"io"

	"gesmc/wire"
)

// verifyConn consumes a sampling-service NDJSON stream and verifies
// every sample line decodes to a connected (weakly connected for
// directed lines), simple graph. It is the CI smoke check behind the
// connected-ensemble request: jq can count lines but cannot decide
// connectivity, so the check lives here, on the same public codecs
// clients use. Prints a one-line summary on success; any error line,
// undecodable line, or disconnected sample fails the run.
func verifyConn(r io.Reader, w io.Writer) error {
	lines := 0
	err := wire.DecodeLines(r, func(ln wire.Line) error {
		if ln.Error != "" {
			return fmt.Errorf("line %d: in-band error (%s): %s", lines, ln.Code, ln.Error)
		}
		g, dg, err := ln.Graph()
		if err != nil {
			return fmt.Errorf("line %d: %w", lines, err)
		}
		switch {
		case g != nil:
			if err := g.CheckSimple(); err != nil {
				return fmt.Errorf("line %d: %w", lines, err)
			}
			if !g.IsConnected() {
				size, comps := g.LargestComponent()
				return fmt.Errorf("line %d: disconnected sample (%d components, largest %d/%d nodes)",
					lines, comps, size, g.N())
			}
		case dg != nil:
			if err := dg.CheckSimple(); err != nil {
				return fmt.Errorf("line %d: %w", lines, err)
			}
			if !dg.IsConnected() {
				size, comps := dg.LargestComponent()
				return fmt.Errorf("line %d: weakly disconnected sample (%d components, largest %d/%d nodes)",
					lines, comps, size, dg.N())
			}
		}
		lines++
		return nil
	})
	if err != nil {
		return err
	}
	if lines == 0 {
		return fmt.Errorf("no sample lines on stdin")
	}
	fmt.Fprintf(w, "verifyconn: %d samples, all connected\n", lines)
	return nil
}
