package main

import (
	"fmt"
	"time"

	"gesmc/internal/core"
	"gesmc/internal/gen"
	"gesmc/internal/graph"
	"gesmc/internal/rng"
)

// timeRun clones g, runs the algorithm for the given supersteps, and
// returns the elapsed time and stats.
func timeRun(g *graph.Graph, alg core.Algorithm, supersteps int, cfg core.Config) (time.Duration, *core.RunStats, error) {
	c := g.Clone()
	start := time.Now()
	stats, err := core.Run(c, alg, supersteps, cfg)
	return time.Since(start), stats, err
}

// table4 reproduces Table 4 (Figure 4): absolute runtimes of all
// implementations for 20 supersteps on the corpus sample, at P=1 and
// P=max. The two adjacency-list baselines stand in for NetworKit and
// Gengraph (DESIGN.md).
func table4(opt options) error {
	supersteps := 20
	scale := opt.scale
	if opt.quick {
		supersteps = 4
		scale *= 0.25
	}
	corpus, err := gen.Table4Corpus(scale, opt.seed)
	if err != nil {
		return err
	}
	pMax := opt.workers

	seqAlgs := []core.Algorithm{
		core.AlgAdjListES, core.AlgAdjSortES, core.AlgSeqES, core.AlgSeqGlobalES,
	}
	parAlgs := []core.Algorithm{core.AlgNaiveParES, core.AlgParGlobalES}

	fmt.Printf("%-20s %-9s %-9s %-6s |", "graph", "n", "m", "dmax")
	for _, a := range seqAlgs {
		fmt.Printf(" %-10s", a)
	}
	for _, a := range parAlgs {
		fmt.Printf(" %-11s", fmt.Sprintf("%s/P1", shortName(a)))
	}
	for _, a := range parAlgs {
		fmt.Printf(" %-11s", fmt.Sprintf("%s/P%d", shortName(a), pMax))
	}
	fmt.Println()

	for _, c := range corpus {
		fmt.Printf("%-20s %-9d %-9d %-6d |", c.Name, c.G.N(), c.G.M(), c.G.MaxDegree())
		for _, a := range seqAlgs {
			d, _, err := timeRun(c.G, a, supersteps, core.Config{Seed: opt.seed, Prefetch: true})
			if err != nil {
				return err
			}
			fmt.Printf(" %-10s", fmtDur(d))
		}
		for _, a := range parAlgs {
			d, _, err := timeRun(c.G, a, supersteps, core.Config{Seed: opt.seed, Workers: 1})
			if err != nil {
				return err
			}
			fmt.Printf(" %-11s", fmtDur(d))
		}
		for _, a := range parAlgs {
			d, _, err := timeRun(c.G, a, supersteps, core.Config{Seed: opt.seed, Workers: pMax})
			if err != nil {
				return err
			}
			fmt.Printf(" %-11s", fmtDur(d))
		}
		fmt.Println()
	}
	fmt.Println("\npaper shape: hash-set implementations beat adjacency-list baselines by ~5-50x;")
	fmt.Println("SeqGlobalES ~ SeqES (faster on large graphs); exact ParGlobalES within 2x of NaiveParES.")
	return nil
}

func shortName(a core.Algorithm) string {
	switch a {
	case core.AlgNaiveParES:
		return "Naive"
	case core.AlgParGlobalES:
		return "ParGES"
	case core.AlgParES:
		return "ParES"
	default:
		return a.String()
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fus", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// fig5 reproduces Figure 5: runtimes of SeqES, SeqGlobalES (P=1) and
// ParGlobalES (P=max) over the corpus, and the speed-up of ParGlobalES
// over SeqGlobalES, with the prefetch pipeline off (left column) and on
// (right column).
func fig5(opt options) error {
	supersteps := 20
	minM := 5000
	maxM := 200000
	if opt.quick {
		supersteps = 4
		maxM = 20000
	}
	corpus, err := gen.SweepCorpus(minM, int(float64(maxM)*opt.scale), opt.seed)
	if err != nil {
		return err
	}

	fmt.Printf("%-18s %-9s | %-33s | %-33s\n", "", "", "prefetch OFF", "prefetch ON")
	fmt.Printf("%-18s %-9s | %-10s %-10s %-8s spdup | %-10s %-10s %-8s spdup\n",
		"graph", "m", "SeqES", "SeqGES", "ParGES", "SeqES", "SeqGES", "ParGES")
	for _, c := range corpus {
		row := fmt.Sprintf("%-18s %-9d |", c.Name, c.G.M())
		for _, prefetch := range []bool{false, true} {
			dSeq, _, err := timeRun(c.G, core.AlgSeqES, supersteps, core.Config{Seed: opt.seed, Prefetch: prefetch})
			if err != nil {
				return err
			}
			dSeqG, _, err := timeRun(c.G, core.AlgSeqGlobalES, supersteps, core.Config{Seed: opt.seed, Prefetch: prefetch})
			if err != nil {
				return err
			}
			dPar, _, err := timeRun(c.G, core.AlgParGlobalES, supersteps, core.Config{Seed: opt.seed, Workers: opt.workers, Prefetch: prefetch})
			if err != nil {
				return err
			}
			row += fmt.Sprintf(" %-10s %-10s %-8s %-5.2f |",
				fmtDur(dSeq), fmtDur(dSeqG), fmtDur(dPar), float64(dSeqG)/float64(dPar))
		}
		fmt.Println(row)
	}
	fmt.Println("\npaper shape: speed-up grows with graph size (paper: up to ~12x at P=32;")
	fmt.Printf("this host has %d hardware thread(s), so wall-clock speed-up is bounded accordingly).\n", opt.workers)
	return nil
}

// fig6 reproduces Figure 6: strong self-scaling of ParGlobalES over the
// corpus sample for P = 1 .. workers.
func fig6(opt options) error {
	supersteps := 20
	scale := opt.scale
	if opt.quick {
		supersteps = 4
		scale *= 0.25
	}
	corpus, err := gen.Table4Corpus(scale, opt.seed)
	if err != nil {
		return err
	}
	var ps []int
	for p := 1; p <= opt.workers; p *= 2 {
		ps = append(ps, p)
	}

	fmt.Printf("%-20s %-9s |", "graph", "m")
	for _, p := range ps {
		fmt.Printf(" P=%-7d", p)
	}
	fmt.Println(" (self speed-up vs P=1)")
	for _, c := range corpus {
		base, _, err := timeRun(c.G, core.AlgParGlobalES, supersteps, core.Config{Seed: opt.seed, Workers: 1})
		if err != nil {
			return err
		}
		fmt.Printf("%-20s %-9d |", c.Name, c.G.M())
		for _, p := range ps {
			d, _, err := timeRun(c.G, core.AlgParGlobalES, supersteps, core.Config{Seed: opt.seed, Workers: p})
			if err != nil {
				return err
			}
			fmt.Printf(" %-9.2f", float64(base)/float64(d))
		}
		fmt.Println()
	}
	fmt.Println("\npaper shape: speed-up 20-30x at 32-64 PUs on large graphs; flat on tiny graphs.")
	fmt.Printf("(this host has %d hardware thread(s); with 1, the sweep measures overhead only.)\n", opt.workers)
	return nil
}

// fig7 reproduces Figure 7: ParGlobalES runtime on G(n,p) graphs with a
// fixed edge budget as a function of the average degree 2m/n.
func fig7(opt options) error {
	supersteps := 20
	ms := []int{1 << 16, 1 << 18}
	if opt.quick {
		supersteps = 4
		ms = []int{1 << 14}
	}
	fmt.Printf("%-10s %-10s %-12s %-12s %-10s\n", "m", "n", "avg-degree", "runtime", "rounds/gs")
	for _, m0 := range ms {
		m := int(float64(m0) * opt.scale)
		for _, avg := range []float64{8, 32, 128, 512} {
			n := int(2 * float64(m) / avg)
			if n < 64 || n > graph.MaxNodes {
				continue
			}
			src := rng.NewMT19937(opt.seed + uint64(n))
			g := gen.GNPWithEdges(n, m, src)
			if g.M() < 2 {
				continue
			}
			d, stats, err := timeRun(g, core.AlgParGlobalES, supersteps, core.Config{Seed: opt.seed, Workers: opt.workers})
			if err != nil {
				return err
			}
			fmt.Printf("%-10d %-10d %-12.1f %-12s %-10.2f\n",
				g.M(), n, g.AverageDegree(), fmtDur(d), stats.AvgRounds())
		}
	}
	fmt.Println("\npaper shape: runtime depends on m, not on density/average degree (Theorem 2:")
	fmt.Println("G(n,p) is near-regular, so rounds per global switch stay constant).")
	return nil
}

// fig8 reproduces Figure 8: ParGlobalES runtime per edge on SynPld
// graphs as a function of the degree exponent gamma.
func fig8(opt options) error {
	supersteps := 20
	ns := []int{1 << 14, 1 << 16}
	if opt.quick {
		supersteps = 4
		ns = []int{1 << 12}
	}
	gammas := []float64{2.01, 2.2, 2.4, 2.6, 2.8, 3.0}
	fmt.Printf("%-10s %-6s %-10s %-14s %-10s\n", "n", "gamma", "m", "ns/edge", "rounds/gs")
	for _, n0 := range ns {
		n := int(float64(n0) * opt.scale)
		for _, gamma := range gammas {
			src := rng.NewMT19937(opt.seed*31 + uint64(gamma*100))
			g, err := gen.SynPldGraph(n, gamma, src)
			if err != nil {
				return err
			}
			d, stats, err := timeRun(g, core.AlgParGlobalES, supersteps, core.Config{Seed: opt.seed, Workers: opt.workers})
			if err != nil {
				return err
			}
			perEdge := float64(d.Nanoseconds()) / float64(g.M()) / float64(supersteps)
			fmt.Printf("%-10d %-6.2f %-10d %-14.1f %-10.2f\n", n, gamma, g.M(), perEdge, stats.AvgRounds())
		}
	}
	fmt.Println("\npaper shape: runtime/edge increases slightly as gamma -> 2 (more target")
	fmt.Println("dependencies, Theorem 3) and is otherwise flat in gamma.")
	return nil
}

// fig9 reproduces Figure 9: average rounds per global switch and the
// fraction of runtime spent beyond the first round, per corpus graph.
func fig9(opt options) error {
	globalSwitches := 20
	scale := opt.scale
	if opt.quick {
		globalSwitches = 5
		scale *= 0.25
	}
	corpus, err := gen.Table4Corpus(scale, opt.seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-20s %-9s %-9s %-12s %-10s %-16s\n",
		"graph", "m", "dmax", "avg rounds", "max", "late-round time")
	for _, c := range corpus {
		// PessimisticRounds measures the worst-case-scheduler rounds of
		// Theorems 2-3; with natural scheduling on few cores nearly all
		// switches decide in round 1.
		_, stats, err := timeRun(c.G, core.AlgParGlobalES, globalSwitches,
			core.Config{Seed: opt.seed, Workers: opt.workers, PessimisticRounds: true})
		if err != nil {
			return err
		}
		late := 0.0
		if tot := stats.FirstRoundTime + stats.LaterRoundsTime; tot > 0 {
			late = float64(stats.LaterRoundsTime) / float64(tot)
		}
		fmt.Printf("%-20s %-9d %-9d %-12.2f %-10d %-15.4f%%\n",
			c.Name, c.G.M(), c.G.MaxDegree(), stats.AvgRounds(), stats.MaxRounds, 100*late)
	}
	fmt.Println("\npaper shape: ~2.2 rounds per global switch on average, max ~8; rounds after")
	fmt.Println("the first account for <1% of runtime on graphs with >4M edges.")
	return nil
}
