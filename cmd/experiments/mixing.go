package main

import (
	"fmt"

	"gesmc/internal/autocorr"
	"gesmc/internal/gen"
	"gesmc/internal/rng"
)

// fig2 reproduces Figure 2: the mean fraction of non-independent edges
// as a function of the thinning value (in supersteps) for SynPld graphs,
// comparing ES-MC and G-ES-MC. The paper's grid is
// (n, gamma) in {2^7, 2^10, 2^13} x {2.01, 2.1, 2.2, 2.5} with 40 runs;
// the scaled default uses n in {2^7, 2^9}, 5 runs.
func fig2(opt options) error {
	ns := []int{1 << 7, 1 << 9, 1 << 11}
	runs := 10
	supersteps := 512
	if opt.quick {
		ns = []int{1 << 7}
		runs = 2
		supersteps = 32
	}
	gammas := []float64{2.01, 2.1, 2.2, 2.5}
	thinnings := autocorr.DefaultThinnings(supersteps / 6)

	fmt.Printf("%-8s %-6s %-8s | fraction of non-independent edges per thinning\n", "n", "gamma", "chain")
	header := "                          |"
	for _, k := range thinnings {
		header += fmt.Sprintf(" k=%-5d", k)
	}
	fmt.Println(header)

	for _, n := range ns {
		for _, gamma := range gammas {
			src := rng.NewMT19937(opt.seed ^ uint64(n)<<16 ^ uint64(gamma*1000))
			var esRuns, gesRuns []autocorr.Result
			for r := 0; r < runs; r++ {
				g, err := gen.SynPldGraph(int(float64(n)*opt.scale), gamma, src)
				if err != nil {
					return err
				}
				seed := src.Uint64()
				esRuns = append(esRuns, autocorr.Analyze(g, autocorr.ChainES, supersteps, thinnings, 1e-6, seed))
				gesRuns = append(gesRuns, autocorr.Analyze(g, autocorr.ChainGlobalES, supersteps, thinnings, 1e-6, seed))
			}
			printFig2Row(n, gamma, "ES-MC", autocorr.MeanResults(esRuns))
			printFig2Row(n, gamma, "G-ES-MC", autocorr.MeanResults(gesRuns))
		}
	}
	fmt.Println("\npaper shape: G-ES-MC <= ES-MC at every thinning; advantage grows with gamma.")
	return nil
}

func printFig2Row(n int, gamma float64, chain string, res autocorr.Result) {
	row := fmt.Sprintf("%-8d %-6.2f %-8s |", n, gamma, chain)
	for _, f := range res.NonIndependent {
		row += fmt.Sprintf(" %-7.4f", f)
	}
	fmt.Println(row)
}

// fig3 reproduces Figure 3: for every corpus graph, the first thinning
// value at which the mean fraction of non-independent edges drops below
// tau, for tau = 1e-2 and 1e-3, against edge count and density.
func fig3(opt options) error {
	minM, maxM := 500, 60000
	runs := 3
	supersteps := 256
	if opt.quick {
		maxM = 6000
		runs = 1
		supersteps = 48
	}
	corpus, err := gen.SweepCorpus(minM, int(float64(maxM)*opt.scale), opt.seed)
	if err != nil {
		return err
	}
	thinnings := autocorr.DefaultThinnings(supersteps / 4)

	fmt.Printf("%-18s %-8s %-10s | %-12s %-12s | %-12s %-12s\n",
		"graph", "m", "density", "ES k@1e-2", "GES k@1e-2", "ES k@1e-3", "GES k@1e-3")
	wins2, wins3, ties2, ties3, total2, total3 := 0, 0, 0, 0, 0, 0
	for _, c := range corpus {
		var es, ges []autocorr.Result
		for r := 0; r < runs; r++ {
			seed := opt.seed + uint64(r)*7919
			es = append(es, autocorr.Analyze(c.G, autocorr.ChainES, supersteps, thinnings, 1e-6, seed))
			ges = append(ges, autocorr.Analyze(c.G, autocorr.ChainGlobalES, supersteps, thinnings, 1e-6, seed))
		}
		esMean := autocorr.MeanResults(es)
		gesMean := autocorr.MeanResults(ges)
		e2, g2 := esMean.FirstThinningBelow(1e-2), gesMean.FirstThinningBelow(1e-2)
		e3, g3 := esMean.FirstThinningBelow(1e-3), gesMean.FirstThinningBelow(1e-3)
		fmt.Printf("%-18s %-8d %-10.2e | %-12s %-12s | %-12s %-12s\n",
			c.Name, c.G.M(), c.G.Density(), fmtThin(e2), fmtThin(g2), fmtThin(e3), fmtThin(g3))
		if e2 > 0 && g2 > 0 {
			total2++
			if g2 < e2 {
				wins2++
			} else if g2 == e2 {
				ties2++
			}
		}
		if e3 > 0 && g3 > 0 {
			total3++
			if g3 < e3 {
				wins3++
			} else if g3 == e3 {
				ties3++
			}
		}
	}
	fmt.Printf("\nG-ES-MC faster-or-equal at tau=1e-2 on %d+%d of %d comparable graphs; at tau=1e-3 on %d+%d of %d.\n",
		wins2, ties2, total2, wins3, ties3, total3)
	fmt.Println("paper shape: G-ES-MC outperforms ES-MC except on very dense graphs.")
	return nil
}

func fmtThin(k int) string {
	if k == 0 {
		return ">max"
	}
	return fmt.Sprintf("%d", k)
}
