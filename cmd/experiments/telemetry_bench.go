package main

import (
	"context"
	"fmt"
	"time"

	"gesmc"
	"gesmc/internal/service"
	"gesmc/wire"
)

// telemetryOverhead is the BENCH JSON record of the observability tax:
// the same pooled request workload driven through Service.Sample with
// telemetry on (spans, latency histograms, trace stamping — the
// default) versus off (Config.NoTelemetry), reported as wall-clock ns
// per switch attempt. The acceptance bar is Overhead <= 1.03: tracing
// a request must cost no more than 3% of its sampling work.
type telemetryOverhead struct {
	Requests int `json:"requests"`
	// Ns per switch is total wall time over total switch attempts, so
	// the per-request span/histogram bookkeeping is amortized exactly
	// the way production traffic amortizes it.
	NsPerSwitchOn  float64 `json:"ns_per_switch_on"`
	NsPerSwitchOff float64 `json:"ns_per_switch_off"`
	Overhead       float64 `json:"overhead"`
}

// benchTelemetry measures the telemetry-on/off request overhead with
// the same min-of-windows discipline as the kernel benches: each window
// replays the request batch, and the fastest window estimates intrinsic
// cost on a shared machine.
func benchTelemetry(opt options) (*telemetryOverhead, error) {
	n := 1 << 12
	requests := 8
	if opt.quick {
		n = 1 << 9
		requests = 4
	}
	g, err := gesmc.GeneratePowerLaw(n, 2.2, opt.seed)
	if err != nil {
		return nil, err
	}
	degrees := g.Degrees()

	run := func(telemetryOn bool) (float64, error) {
		svc := service.New(service.Config{
			WorkerBudget: max(opt.workers, 1),
			PoolCapacity: 4,
			NoTelemetry:  !telemetryOn,
		})
		defer svc.Shutdown(context.Background())
		window := func() (float64, error) {
			var attempted int64
			start := time.Now()
			for i := 0; i < requests; i++ {
				req, ferr := service.FromWire(&wire.SampleRequest{
					Degrees:  degrees,
					Samples:  2,
					Seed:     opt.seed,
					Workers:  max(opt.workers, 1),
					BurnIn:   20,
					Thinning: 4,
				})
				if ferr != nil {
					return 0, ferr
				}
				serr := svc.Sample(context.Background(), req, func(ln wire.Line) error {
					if ln.Stats != nil {
						attempted += ln.Stats.Attempted
					}
					return nil
				})
				if serr != nil {
					return 0, serr
				}
			}
			if attempted == 0 {
				return 0, fmt.Errorf("telemetry bench: no switches attempted")
			}
			return float64(time.Since(start).Nanoseconds()) / float64(attempted), nil
		}
		// Warm-up: the first batch pays pool misses and burn-in; the
		// measured windows replay warm pool hits, the steady state.
		if _, err := window(); err != nil {
			return 0, err
		}
		best := 0.0
		for w := 0; w < benchWindows; w++ {
			ns, err := window()
			if err != nil {
				return 0, err
			}
			if w == 0 || ns < best {
				best = ns
			}
		}
		return best, nil
	}

	to := &telemetryOverhead{Requests: requests}
	if to.NsPerSwitchOn, err = run(true); err != nil {
		return nil, err
	}
	if to.NsPerSwitchOff, err = run(false); err != nil {
		return nil, err
	}
	if to.NsPerSwitchOff > 0 {
		to.Overhead = to.NsPerSwitchOn / to.NsPerSwitchOff
	}
	fmt.Printf("\ntelemetry overhead (n=%d, %d requests/window): %.1f -> %.1f ns/switch (%.3fx)\n",
		n, requests, to.NsPerSwitchOff, to.NsPerSwitchOn, to.Overhead)
	return to, nil
}
