package main

import (
	"context"
	"fmt"
	"time"

	"gesmc"
	"gesmc/internal/service"
	"gesmc/wire"
)

// serviceThroughput is the BENCH JSON record of the service-layer
// comparison: R identical degree-sequence requests driven through
// Service.Sample with the engine pool on (warm requests reuse the
// compiled sampler and its persistent gang, paying only thinning)
// versus off (every request realizes the target, compiles a sampler,
// and pays a full burn-in — the cold NewSampler-per-request baseline).
type serviceThroughput struct {
	Requests          int     `json:"requests"`
	SamplesPerRequest int     `json:"samples_per_request"`
	Nodes             int     `json:"nodes"`
	PooledRPS         float64 `json:"pooled_rps"`
	ColdRPS           float64 `json:"cold_rps"`
	PooledNsPerSwitch float64 `json:"pooled_ns_per_switch"`
	ColdNsPerSwitch   float64 `json:"cold_ns_per_switch"`
	PoolHitRate       float64 `json:"pool_hit_rate"`
	// Speedup is ColdRPS-relative: pooled requests per second over
	// cold requests per second. The acceptance bar is >= 1.
	Speedup float64 `json:"speedup"`
}

// benchService measures the pooled-vs-cold request throughput.
func benchService(opt options) (*serviceThroughput, error) {
	n := 1 << 12
	requests := 16
	if opt.quick {
		n = 1 << 9
		requests = 6
	}
	g, err := gesmc.GeneratePowerLaw(n, 2.2, opt.seed)
	if err != nil {
		return nil, err
	}
	degrees := g.Degrees()

	run := func(pooled bool) (rps, nsPerSwitch, hitRate float64, err error) {
		svc := service.New(service.Config{
			WorkerBudget: max(opt.workers, 1),
			PoolCapacity: 4,
			NoPooling:    !pooled,
		})
		defer svc.Shutdown(context.Background())
		var attempted, totalNS int64
		start := time.Now()
		for i := 0; i < requests; i++ {
			// Burn-in 20 supersteps, thinning 4: the ensemble workload
			// with a mixing-informed thinning (AnalyzeMixing-style).
			// Cold requests pay the burn-in every time; a pool hit
			// resumes a burned-in chain and pays only thinning.
			req, ferr := service.FromWire(&wire.SampleRequest{
				Degrees:  degrees,
				Samples:  2,
				Seed:     opt.seed,
				Workers:  max(opt.workers, 1),
				BurnIn:   20,
				Thinning: 4,
			})
			if ferr != nil {
				return 0, 0, 0, ferr
			}
			serr := svc.Sample(context.Background(), req, func(ln wire.Line) error {
				if ln.Stats != nil {
					attempted += ln.Stats.Attempted
					totalNS += ln.Stats.DurationNS
				}
				return nil
			})
			if serr != nil {
				return 0, 0, 0, serr
			}
		}
		elapsed := time.Since(start)
		rps = float64(requests) / elapsed.Seconds()
		if attempted > 0 {
			nsPerSwitch = float64(totalNS) / float64(attempted)
		}
		return rps, nsPerSwitch, svc.Metrics().Pool.HitRate, nil
	}

	st := &serviceThroughput{Requests: requests, SamplesPerRequest: 2, Nodes: n}
	if st.PooledRPS, st.PooledNsPerSwitch, st.PoolHitRate, err = run(true); err != nil {
		return nil, err
	}
	if st.ColdRPS, st.ColdNsPerSwitch, _, err = run(false); err != nil {
		return nil, err
	}
	if st.ColdRPS > 0 {
		st.Speedup = st.PooledRPS / st.ColdRPS
	}
	fmt.Printf("\n%-22s %12s %12s %10s %10s\n", "service_throughput", "pooled rps", "cold rps", "speedup", "hit rate")
	fmt.Printf("%-22s %12.1f %12.1f %10.2f %10.2f\n", fmt.Sprintf("n=%d r=%d", n, requests),
		st.PooledRPS, st.ColdRPS, st.Speedup, st.PoolHitRate)
	return st, nil
}
