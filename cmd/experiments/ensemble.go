package main

import (
	"context"
	"fmt"
	"time"

	"gesmc"
)

// ensembleCmp is an extension experiment beyond the paper's figures: it
// measures the sample throughput of the null-model workload (draw many
// thinned samples with one degree sequence) through the two public
// paths — k independent one-shot Randomize calls, each rebuilding the
// engine state and paying a full burn-in, versus one reused Sampler
// streaming an Ensemble. This is the workload the Sampler API is shaped
// for; the reused engine amortizes exactly the §5 data-structure setup.
func ensembleCmp(opt options) error {
	n := int(float64(1<<14) * opt.scale)
	samples := 32
	if opt.quick {
		n = 1 << 10
		samples = 4
	}
	const (
		burnIn = 20
		thin   = 4
	)
	base, err := gesmc.GeneratePowerLaw(n, 2.2, opt.seed)
	if err != nil {
		return err
	}
	fmt.Printf("workload: n=%d m=%d, %d samples, burn-in %d supersteps, thinning %d\n\n",
		base.N(), base.M(), samples, burnIn, thin)

	oneShot := func() (time.Duration, error) {
		start := time.Now()
		for s := 0; s < samples; s++ {
			c := base.Clone()
			if _, err := gesmc.Randomize(c, gesmc.Options{
				Algorithm:  gesmc.ParGlobalES,
				Workers:    opt.workers,
				Supersteps: burnIn,
				Seed:       opt.seed + uint64(s),
			}); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	reused := func(thinning int) (time.Duration, error) {
		start := time.Now()
		s, err := gesmc.NewSampler(base.Clone(),
			gesmc.WithAlgorithm(gesmc.ParGlobalES),
			gesmc.WithWorkers(opt.workers),
			gesmc.WithSeed(opt.seed),
			gesmc.WithBurnIn(burnIn),
			gesmc.WithThinning(thinning))
		if err != nil {
			return 0, err
		}
		for smp := range s.Ensemble(context.Background(), samples) {
			if smp.Err != nil {
				return 0, smp.Err
			}
		}
		return time.Since(start), nil
	}

	tOne, err := oneShot()
	if err != nil {
		return err
	}
	tReused, err := reused(burnIn)
	if err != nil {
		return err
	}
	tThinned, err := reused(thin)
	if err != nil {
		return err
	}

	rate := func(d time.Duration) float64 {
		return float64(samples) / d.Seconds()
	}
	fmt.Printf("%-34s %12s %14s\n", "path", "total", "samples/s")
	fmt.Printf("%-34s %12v %14.2f\n", "one-shot Randomize x k", tOne.Round(time.Millisecond), rate(tOne))
	fmt.Printf("%-34s %12v %14.2f\n", "reused Sampler (thinning=burn-in)", tReused.Round(time.Millisecond), rate(tReused))
	fmt.Printf("%-34s %12v %14.2f\n", fmt.Sprintf("reused Sampler (thinning=%d)", thin), tThinned.Round(time.Millisecond), rate(tThinned))
	fmt.Printf("\nspeed-up from engine reuse alone: %.2fx; with mixing-informed thinning: %.2fx\n",
		tOne.Seconds()/tReused.Seconds(), tOne.Seconds()/tThinned.Seconds())
	return nil
}
