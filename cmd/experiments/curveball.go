package main

import (
	"fmt"

	"gesmc/internal/autocorr"
	"gesmc/internal/gen"
	"gesmc/internal/rng"
)

// curveballCmp is an extension experiment beyond the paper's figures:
// §7 notes that relating the mixing time of Curveball chains to ES-MC
// for undirected graphs is open; here we produce the empirical
// comparison with the same §6.1 methodology, normalizing one superstep
// as m/2 switches (ES-MC), one global switch (G-ES-MC), n/2 trades
// (Curveball), or one global trade (G-CB).
func curveballCmp(opt options) error {
	ns := []int{1 << 7, 1 << 9}
	gammas := []float64{2.1, 2.5}
	runs := 5
	supersteps := 256
	if opt.quick {
		ns = []int{1 << 7}
		gammas = []float64{2.5}
		runs = 2
		supersteps = 48
	}
	thinnings := autocorr.DefaultThinnings(supersteps / 6)

	fmt.Printf("%-8s %-6s %-10s | fraction of non-independent edges per thinning\n", "n", "gamma", "chain")
	header := "                            |"
	for _, k := range thinnings {
		header += fmt.Sprintf(" k=%-5d", k)
	}
	fmt.Println(header)

	for _, n := range ns {
		for _, gamma := range gammas {
			src := rng.NewMT19937(opt.seed ^ uint64(n*7) ^ uint64(gamma*500))
			var es, ges, cb, gcb []autocorr.Result
			for r := 0; r < runs; r++ {
				g, err := gen.SynPldGraph(int(float64(n)*opt.scale), gamma, src)
				if err != nil {
					return err
				}
				seed := src.Uint64()
				es = append(es, autocorr.Analyze(g, autocorr.ChainES, supersteps, thinnings, 1e-6, seed))
				ges = append(ges, autocorr.Analyze(g, autocorr.ChainGlobalES, supersteps, thinnings, 1e-6, seed))
				cb = append(cb, autocorr.AnalyzeCurveball(g, false, supersteps, thinnings, seed))
				gcb = append(gcb, autocorr.AnalyzeCurveball(g, true, supersteps, thinnings, seed))
			}
			printCurveballRow(n, gamma, "ES-MC", autocorr.MeanResults(es))
			printCurveballRow(n, gamma, "G-ES-MC", autocorr.MeanResults(ges))
			printCurveballRow(n, gamma, "Curveball", autocorr.MeanResults(cb))
			printCurveballRow(n, gamma, "G-CB", autocorr.MeanResults(gcb))
		}
	}
	fmt.Println("\nextension beyond the paper: §7 leaves the Curveball/ES-MC mixing relation open.")
	fmt.Println("Per superstep as normalized here (one global trade = each NODE trades once, vs")
	fmt.Println("one global switch = each EDGE switches once), G-ES-MC decorrelates fastest on")
	fmt.Println("these power-law workloads; note a global switch moves m/2 >= n/2 edge pairs,")
	fmt.Println("so the comparison is per-superstep, not per unit of work.")
	return nil
}

func printCurveballRow(n int, gamma float64, chain string, res autocorr.Result) {
	row := fmt.Sprintf("%-8d %-6.2f %-10s |", n, gamma, chain)
	for _, f := range res.NonIndependent {
		row += fmt.Sprintf(" %-7.4f", f)
	}
	fmt.Println(row)
}
