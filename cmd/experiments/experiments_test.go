package main

import (
	"os"
	"testing"
)

// Smoke tests: every experiment driver must run to completion on tiny
// parameters. The figures' numeric content is validated by the package
// tests (mixing behaviour, round bounds, equivalences); here we guard
// the drivers themselves against rot.
func quickOptions() options {
	return options{scale: 0.1, seed: 7, workers: 2, quick: true}
}

func TestFig2Driver(t *testing.T) {
	if err := fig2(quickOptions()); err != nil {
		t.Fatal(err)
	}
}

func TestFig3Driver(t *testing.T) {
	if testing.Short() {
		t.Skip("slow driver")
	}
	if err := fig3(quickOptions()); err != nil {
		t.Fatal(err)
	}
}

func TestTable4Driver(t *testing.T) {
	if testing.Short() {
		t.Skip("slow driver")
	}
	if err := table4(quickOptions()); err != nil {
		t.Fatal(err)
	}
}

func TestFig5Driver(t *testing.T) {
	if testing.Short() {
		t.Skip("slow driver")
	}
	opt := quickOptions()
	opt.scale = 0.05
	if err := fig5(opt); err != nil {
		t.Fatal(err)
	}
}

func TestFig6Driver(t *testing.T) {
	if err := fig6(quickOptions()); err != nil {
		t.Fatal(err)
	}
}

func TestFig7Driver(t *testing.T) {
	if err := fig7(quickOptions()); err != nil {
		t.Fatal(err)
	}
}

func TestFig8Driver(t *testing.T) {
	if err := fig8(quickOptions()); err != nil {
		t.Fatal(err)
	}
}

func TestFig9Driver(t *testing.T) {
	if err := fig9(quickOptions()); err != nil {
		t.Fatal(err)
	}
}

func TestEnsembleDriver(t *testing.T) {
	if err := ensembleCmp(quickOptions()); err != nil {
		t.Fatal(err)
	}
}

func TestBenchDriver(t *testing.T) {
	benchOut = t.TempDir() + "/bench.json"
	defer func() { benchOut = "" }()
	if err := bench(quickOptions()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(benchOut); err != nil {
		t.Fatalf("bench JSON not written: %v", err)
	}
}

func TestFmtHelpers(t *testing.T) {
	if s := fmtThin(0); s != ">max" {
		t.Fatalf("fmtThin(0) = %q", s)
	}
	if s := fmtThin(6); s != "6" {
		t.Fatalf("fmtThin(6) = %q", s)
	}
}
