// Command experiments regenerates every table and figure of the paper's
// evaluation (§6) on synthetic stand-in workloads; see DESIGN.md for the
// experiment index and EXPERIMENTS.md for recorded outcomes.
//
// Usage:
//
//	experiments <fig2|fig3|table4|fig5|fig6|fig7|fig8|fig9|curveball|ensemble|bench|all> [flags]
//
// Common flags:
//
//	-scale f    size multiplier for workloads (default 1.0)
//	-seed n     master seed (default 42)
//	-workers n  max parallelism P (default GOMAXPROCS)
//	-quick      much smaller parameters, for smoke testing
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"
)

type options struct {
	scale   float64
	seed    uint64
	workers int
	quick   bool
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	scale := fs.Float64("scale", 1.0, "workload size multiplier")
	seed := fs.Uint64("seed", 42, "master seed")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "maximum parallelism P")
	quick := fs.Bool("quick", false, "tiny parameters for smoke tests")
	out := fs.String("out", "", "output path for bench JSON (default BENCH_<date>.json)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the command to this file")
	memProfile := fs.String("memprofile", "", "write a post-run heap profile to this file")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	benchOut = *out
	opt := options{scale: *scale, seed: *seed, workers: *workers, quick: *quick}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	runOne := func(name string, fn func(options) error) {
		fmt.Printf("==== %s ====\n", name)
		start := time.Now()
		if err := fn(opt); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			pprof.StopCPUProfile()
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	switch cmd {
	case "fig2":
		runOne("Figure 2: mixing of ES-MC vs G-ES-MC on SynPld", fig2)
	case "fig3":
		runOne("Figure 3: first superstep below threshold on corpus", fig3)
	case "table4":
		runOne("Table 4: absolute runtimes", table4)
	case "fig5":
		runOne("Figure 5: runtimes and speed-ups, +/- prefetch", fig5)
	case "fig6":
		runOne("Figure 6: strong scaling of ParGlobalES", fig6)
	case "fig7":
		runOne("Figure 7: G(n,p) runtime vs average degree", fig7)
	case "fig8":
		runOne("Figure 8: SynPld runtime/edge vs degree exponent", fig8)
	case "fig9":
		runOne("Figure 9: rounds per global switch", fig9)
	case "curveball":
		runOne("Extension: Curveball vs edge-switching mixing", curveballCmp)
	case "ensemble":
		runOne("Extension: one-shot vs reused-sampler ensemble throughput", ensembleCmp)
	case "bench":
		runOne("Benchmark: ns/switch of the unified-kernel chains", bench)
	case "verifyconn":
		// Stream verifier (no banner: used in pipelines): reads the
		// sampling service's NDJSON from stdin and fails unless every
		// sample line decodes to a connected graph.
		if err := verifyConn(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "verifyconn: %v\n", err)
			os.Exit(1)
		}
		return
	case "all":
		runOne("Figure 2", fig2)
		runOne("Figure 3", fig3)
		runOne("Table 4", table4)
		runOne("Figure 5", fig5)
		runOne("Figure 6", fig6)
		runOne("Figure 7", fig7)
		runOne("Figure 8", fig8)
		runOne("Figure 9", fig9)
		runOne("Curveball comparison (extension)", curveballCmp)
		runOne("Ensemble throughput (extension)", ensembleCmp)
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: experiments <fig2|fig3|table4|fig5|fig6|fig7|fig8|fig9|curveball|ensemble|bench|verifyconn|all> [-scale f] [-seed n] [-workers n] [-quick] [-cpuprofile f] [-memprofile f]`)
}
