package main

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gesmc"
	"gesmc/internal/service"
	"gesmc/wire"
)

func TestGenerateSpecs(t *testing.T) {
	cases := []struct {
		spec    string
		wantN   int
		wantErr bool
	}{
		{"gnp:n=100,p=0.1", 100, false},
		{"pld:n=256,gamma=2.5", 256, false},
		{"reg:n=32,d=4", 32, false},
		{"grid:r=4,c=5", 20, false},
		{"gnp:n=100", 0, true},     // missing p
		{"pld:gamma=2.5", 0, true}, // missing n
		{"blah:n=10", 0, true},     // unknown generator
		{"gnp:n=abc,p=0.1", 0, true},
		{"gnp:n", 0, true}, // malformed kv
	}
	for _, c := range cases {
		g, err := generate(c.spec, 1)
		if c.wantErr {
			if err == nil {
				t.Errorf("generate(%q) accepted", c.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("generate(%q): %v", c.spec, err)
			continue
		}
		if g.N() != c.wantN {
			t.Errorf("generate(%q): n=%d, want %d", c.spec, g.N(), c.wantN)
		}
	}
}

func TestLoadTargetFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tg, err := loadTarget(path, "", 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if g := tg.(*gesmc.Graph); g.M() != 2 {
		t.Fatalf("m=%d", g.M())
	}
	if _, err := loadTarget(path, "gnp:n=10,p=0.1", 1, false); err == nil {
		t.Fatal("-in and -gen together accepted")
	}
	if _, err := loadTarget("", "", 1, false); err == nil {
		t.Fatal("no input accepted")
	}
	if _, err := loadTarget(filepath.Join(dir, "missing.txt"), "", 1, false); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestRemoteRequestShape: the -server path ships the loaded target as
// an explicit edge list and mirrors the local flag semantics
// (-supersteps overrides -swaps, directed targets ship arcs).
func TestRemoteRequestShape(t *testing.T) {
	g := gesmc.GenerateGrid(2, 3)
	req := remoteRequest(g, "ParGlobalES", "mcmc", 2, 7, 4, 0, 3, 10, false)
	if req.Nodes != g.N() || len(req.Edges) != g.M() || req.Directed {
		t.Fatalf("undirected request: %+v", req)
	}
	if req.Samples != 4 || req.Seed != 7 || req.Workers != 2 || req.Thinning != 3 || req.SwapsPerEdge != 10 {
		t.Fatalf("flags lost: %+v", req)
	}
	// Explicit burn-in zeroes SwapsPerEdge, exactly like the local path.
	req = remoteRequest(g, "SeqES", "mcmc", 1, 1, 1, 50, 0, 10, true)
	if req.BurnIn != 50 || req.SwapsPerEdge != 0 || !req.Connected {
		t.Fatalf("burn-in override: %+v", req)
	}

	// -uniformity exact ships the uniformity field and strips the chain
	// schedule (the CLI defaults would otherwise read as a schedule).
	req = remoteRequest(g, "Exact", "exact", 1, 7, 4, 0, 3, 10, false)
	if req.Uniformity != "exact" || req.BurnIn != 0 || req.Thinning != 0 || req.SwapsPerEdge != 0 {
		t.Fatalf("exact request shape: %+v", req)
	}

	dg, err := gesmc.NewDiGraph(3, [][2]uint32{{0, 1}, {1, 2}, {2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	req = remoteRequest(dg, "AdjListES", "mcmc", 1, 1, 1, 0, 0, 10, false)
	if !req.Directed || req.Nodes != 3 || len(req.Edges) != 3 {
		t.Fatalf("directed request: %+v", req)
	}

	// The shipped request round-trips through request validation: a
	// daemon accepts what the CLI sends.
	if _, err := service.PoolKey(remoteRequest(g, "ParGlobalES", "mcmc", 2, 7, 4, 0, 0, 10, false)); err != nil {
		t.Fatalf("daemon rejects CLI request: %v", err)
	}
}

// TestRunRemoteAgainstDaemon drives the full -server path against a
// real in-process daemon: NDJSON out, edge-list out with a %d pattern,
// and the bit-identity of remote samples with an in-process run of the
// same seeded request.
func TestRunRemoteAgainstDaemon(t *testing.T) {
	svc := service.New(service.Config{ID: "d0", WorkerBudget: 4})
	defer svc.Shutdown(context.Background())
	ts := httptest.NewServer(service.NewHandler(svc))
	defer ts.Close()

	g := gesmc.GenerateGrid(3, 3)
	req := remoteRequest(g, "ParGlobalES", "mcmc", 2, 7, 3, 0, 0, 10, false)

	// NDJSON sink: one line per sample, backend identity stamped.
	dir := t.TempDir()
	ndPath := filepath.Join(dir, "out.ndjson")
	if err := runRemote(ts.URL, req, "ndjson", ndPath, false, 2); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(ndPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var remote []wire.Line
	if err := wire.DecodeLines(f, func(ln wire.Line) error {
		remote = append(remote, ln)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(remote) != 3 {
		t.Fatalf("%d ndjson lines", len(remote))
	}
	for _, ln := range remote {
		if ln.Stats == nil || ln.Stats.Backend != "d0" {
			t.Fatalf("line without backend identity: %+v", ln)
		}
	}

	// Bit-identity with the in-process engine for the same request.
	sampler, err := gesmc.NewSampler(g, gesmc.WithAlgorithm(gesmc.ParGlobalES),
		gesmc.WithWorkers(2), gesmc.WithSeed(7), gesmc.WithSwapsPerEdge(10))
	if err != nil {
		t.Fatal(err)
	}
	defer sampler.Close()
	i := 0
	for smp := range sampler.Ensemble(context.Background(), 3) {
		if smp.Err != nil {
			t.Fatal(smp.Err)
		}
		want := wire.FromSample(smp)
		got := remote[i]
		if got.Index != want.Index || got.Nodes != want.Nodes ||
			len(got.Edges) != len(want.Edges) {
			t.Fatalf("sample %d differs: %+v vs %+v", i, got, want)
		}
		for j := range want.Edges {
			if got.Edges[j] != want.Edges[j] {
				t.Fatalf("sample %d edge %d: %v vs %v", i, j, got.Edges[j], want.Edges[j])
			}
		}
		i++
	}

	// Edge-list sink with a %d pattern writes one file per sample.
	pat := filepath.Join(dir, "s-%d.txt")
	if err := runRemote(ts.URL, req, "edgelist", pat, false, 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		b, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("s-%d.txt", i)))
		if err != nil {
			t.Fatal(err)
		}
		if len(strings.TrimSpace(string(b))) == 0 {
			t.Fatalf("sample file %d empty", i)
		}
	}
	// Multi-sample edge lists without %d are rejected up front.
	if err := runRemote(ts.URL, req, "edgelist", filepath.Join(dir, "flat.txt"), false, 2); err == nil {
		t.Fatal("multi-sample edgelist without an index pattern accepted")
	}
	// A server-side rejection surfaces as an error, not a silent exit.
	bad := remoteRequest(g, "ParGlobalES", "mcmc", 1, 1, 1, 0, 0, 10, false)
	bad.Degrees = []int{3, 1} // conflicting specs → 400
	if err := runRemote(ts.URL, bad, "ndjson", filepath.Join(dir, "bad.ndjson"), false, 2); err == nil {
		t.Fatal("invalid request accepted")
	}
}

func TestLoadTargetDirected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.txt")
	// Both orientations survive in a directed read.
	if err := os.WriteFile(path, []byte("% directed\n0 1\n1 0\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tg, err := loadTarget(path, "", 1, true)
	if err != nil {
		t.Fatal(err)
	}
	dg, ok := tg.(*gesmc.DiGraph)
	if !ok || dg.M() != 3 {
		t.Fatalf("directed load: %T m=%d", tg, dg.M())
	}
	if _, err := loadTarget("", "gnp:n=10,p=0.1", 1, true); err == nil {
		t.Fatal("-directed with -gen accepted")
	}
	if _, err := loadTarget("", "", 1, true); err == nil {
		t.Fatal("-directed without input accepted")
	}
}

// TestExitCodes pins the -server exit-code contract: 2 = fix the
// request, 3 = backend fault, 4 = backpressure, 5 = the caller's own
// deadline, 1 = anything else.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{&service.RequestError{Field: "degrees", Reason: "odd sum"}, 2},
		{&service.BackendError{Backend: "x", Op: "stream", Err: fmt.Errorf("cut")}, 3},
		{service.ErrOverloaded, 4},
		{service.ErrShuttingDown, 4},
		{context.DeadlineExceeded, 5},
		{context.Canceled, 5},
		{fmt.Errorf("mystery"), 1},
		{&service.StreamError{Line: wire.Line{Error: "x", Code: "bad_request"}}, 2},
		{&service.StreamError{Line: wire.Line{Error: "x", Code: "backend"}}, 3},
		{&service.StreamError{Line: wire.Line{Error: "x", Code: "overloaded"}}, 4},
		{&service.StreamError{Line: wire.Line{Error: "x", Code: "deadline"}}, 5},
	}
	for _, tc := range cases {
		if got := exitCode(tc.err); got != tc.want {
			t.Errorf("exitCode(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}
