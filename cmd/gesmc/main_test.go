package main

import (
	"os"
	"path/filepath"
	"testing"

	"gesmc"
)

func TestGenerateSpecs(t *testing.T) {
	cases := []struct {
		spec    string
		wantN   int
		wantErr bool
	}{
		{"gnp:n=100,p=0.1", 100, false},
		{"pld:n=256,gamma=2.5", 256, false},
		{"reg:n=32,d=4", 32, false},
		{"grid:r=4,c=5", 20, false},
		{"gnp:n=100", 0, true},     // missing p
		{"pld:gamma=2.5", 0, true}, // missing n
		{"blah:n=10", 0, true},     // unknown generator
		{"gnp:n=abc,p=0.1", 0, true},
		{"gnp:n", 0, true}, // malformed kv
	}
	for _, c := range cases {
		g, err := generate(c.spec, 1)
		if c.wantErr {
			if err == nil {
				t.Errorf("generate(%q) accepted", c.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("generate(%q): %v", c.spec, err)
			continue
		}
		if g.N() != c.wantN {
			t.Errorf("generate(%q): n=%d, want %d", c.spec, g.N(), c.wantN)
		}
	}
}

func TestLoadTargetFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tg, err := loadTarget(path, "", 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if g := tg.(*gesmc.Graph); g.M() != 2 {
		t.Fatalf("m=%d", g.M())
	}
	if _, err := loadTarget(path, "gnp:n=10,p=0.1", 1, false); err == nil {
		t.Fatal("-in and -gen together accepted")
	}
	if _, err := loadTarget("", "", 1, false); err == nil {
		t.Fatal("no input accepted")
	}
	if _, err := loadTarget(filepath.Join(dir, "missing.txt"), "", 1, false); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadTargetDirected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.txt")
	// Both orientations survive in a directed read.
	if err := os.WriteFile(path, []byte("% directed\n0 1\n1 0\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tg, err := loadTarget(path, "", 1, true)
	if err != nil {
		t.Fatal(err)
	}
	dg, ok := tg.(*gesmc.DiGraph)
	if !ok || dg.M() != 3 {
		t.Fatalf("directed load: %T m=%d", tg, dg.M())
	}
	if _, err := loadTarget("", "gnp:n=10,p=0.1", 1, true); err == nil {
		t.Fatal("-directed with -gen accepted")
	}
	if _, err := loadTarget("", "", 1, true); err == nil {
		t.Fatal("-directed without input accepted")
	}
}
