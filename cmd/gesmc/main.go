// Command gesmc randomizes a simple graph while preserving its degree
// sequence, using the switching Markov chains of the paper. With
// -samples it streams a whole thinned ensemble through one reusable
// sampling engine (the null-model workload). Input is a text edge list
// (undirected, or a directed arc list with -directed), read via the
// public gesmc.ReadEdgeList/ReadArcList codecs; output is either text
// edge lists or, with -format ndjson, the sampling service's NDJSON
// stream (one wire.Line per sample).
//
// Examples:
//
//	gesmc -gen pld:n=65536,gamma=2.5 -algo ParGlobalES -workers 8 -out random.txt
//	gesmc -in graph.txt -swaps 30 -seed 7 -out shuffled.txt -metrics
//	gesmc -in arcs.txt -directed -samples 10 -format ndjson
//	gesmc -in graph.txt -samples 100 -thinning 4 -out 'sample-%d.txt'
//	gesmc -in graph.txt -connected -samples 50 -format ndjson -stats
//	cat graph.txt | gesmc -in - -samples 5 -format ndjson | jq .stats.attempted
//	gesmc -in graph.txt -samples 20 -server 127.0.0.1:8742 -format ndjson
//	gesmc -in graph.txt -uniformity exact -samples 100 -format ndjson
//
// With -uniformity exact, samples are exactly uniform i.i.d. draws
// (the rejection tier, undirected bounded-degree targets only) instead
// of Markov-chain states: -swaps/-supersteps/-thinning/-connected do
// not apply, and a degree sequence outside the tractable regime exits
// with code 2 and a message naming the -uniformity mcmc fallback —
// the CLI never reroutes silently.
//
// With -server URL, sampling runs on a gesmcd daemon (or cluster
// coordinator) instead of in-process: the loaded target ships as an
// explicit edge list in a wire.SampleRequest and the NDJSON stream
// comes back line by line, so the pooled burned-in engines (and, via a
// coordinator, the whole shard ring) serve the CLI too.
//
// With -connected, sampling is restricted to connected graphs (the
// connectivity-preserving null model): the input must be connected,
// and every emitted sample is.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"gesmc"
	"gesmc/internal/service"
	"gesmc/wire"
)

func main() {
	var (
		inPath    = flag.String("in", "", "input edge list file ('-' for stdin)")
		directed  = flag.Bool("directed", false, "treat -in as a directed arc list (tail head pairs)")
		genSpec   = flag.String("gen", "", "generate input: gnp:n=..,p=.. | pld:n=..,gamma=.. | reg:n=..,d=.. | grid:r=..,c=..")
		outPath   = flag.String("out", "", "write result to file ('-' for stdout); with -samples > 1 and -format edgelist, a pattern containing %d")
		format    = flag.String("format", "edgelist", "output format: edgelist | ndjson (one wire.Line per sample)")
		algoName  = flag.String("algo", "ParGlobalES", "algorithm: SeqES|SeqGlobalES|NaiveParES|ParES|ParGlobalES|AdjListES|AdjSortES|Curveball|GlobalCurveball|Exact")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel workers P")
		swaps     = flag.Float64("swaps", 10, "switch attempts per edge (burn-in)")
		steps     = flag.Int("supersteps", 0, "explicit burn-in superstep count (overrides -swaps)")
		samples   = flag.Int("samples", 1, "number of thinned samples to draw through one reused engine")
		thinning  = flag.Int("thinning", 0, "supersteps between samples (0 = same as burn-in)")
		seed      = flag.Uint64("seed", 1, "random seed")
		stats     = flag.Bool("stats", false, "print run statistics")
		metrics   = flag.Bool("metrics", false, "print graph metrics before and after (undirected targets)")
		prefetch  = flag.Bool("prefetch", true, "enable hash-bucket pre-touch pipeline")
		connected = flag.Bool("connected", false, "constrain sampling to connected graphs (the input must be connected)")
		server    = flag.String("server", "", "forward sampling to a gesmcd daemon or coordinator at this URL instead of sampling in-process")
		retries   = flag.Int("retries", 2, "with -server: retries for transient failures (0 disables); a stream cut mid-way resumes from the last delivered sample")

		uniformity = flag.String("uniformity", "mcmc", "sampling tier: mcmc (asymptotically uniform chains) | exact (exactly uniform i.i.d. draws; undirected bounded-degree targets)")
	)
	flag.Parse()

	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	if *format != "edgelist" && *format != "ndjson" {
		fatal(fmt.Errorf("unknown -format %q (want edgelist or ndjson)", *format))
	}
	// -algo Exact and -uniformity exact are the same request; normalize
	// to one path so both spellings get the same validation.
	if *algoName == "Exact" {
		*uniformity = "exact"
	}
	switch *uniformity {
	case "mcmc":
	case "exact":
		if explicit["algo"] && *algoName != "Exact" {
			fatal(fmt.Errorf("-uniformity exact contradicts -algo %s", *algoName))
		}
		*algoName = "Exact"
		// Exact draws are i.i.d.: a chain schedule on the command line
		// is a misdirected MCMC invocation, not something to ignore.
		for _, name := range []string{"swaps", "supersteps", "thinning"} {
			if explicit[name] {
				fatal(fmt.Errorf("-%s does not apply to -uniformity exact (draws are i.i.d.)", name))
			}
		}
		if *connected {
			fatal(fmt.Errorf("-connected is not supported by -uniformity exact; use the MCMC tier"))
		}
	default:
		fatal(fmt.Errorf("unknown -uniformity %q (want exact or mcmc)", *uniformity))
	}
	target, err := loadTarget(*inPath, *genSpec, *seed, *directed)
	if err != nil {
		fatal(err)
	}
	alg, err := gesmc.ParseAlgorithm(*algoName)
	if err != nil {
		fatal(err)
	}

	if *server != "" {
		req := remoteRequest(target, *algoName, *uniformity, max(*workers, 1), *seed, *samples, *steps, *thinning, *swaps, *connected)
		if err := runRemote(*server, req, *format, *outPath, *stats, *retries); err != nil {
			fmt.Fprintln(os.Stderr, "gesmc:", err)
			os.Exit(exitCode(err))
		}
		return
	}

	opts := []gesmc.Option{
		gesmc.WithAlgorithm(alg),
		gesmc.WithWorkers(max(*workers, 1)),
		gesmc.WithSeed(*seed),
		gesmc.WithPrefetch(*prefetch),
	}
	if *uniformity != "exact" {
		opts = append(opts, gesmc.WithSwapsPerEdge(*swaps))
	}
	if *steps > 0 {
		opts = append(opts, gesmc.WithBurnIn(*steps))
	}
	if *thinning > 0 {
		opts = append(opts, gesmc.WithThinning(*thinning))
	}
	if *connected {
		opts = append(opts, gesmc.WithConstraint(gesmc.Connected()))
	}
	sampler, err := gesmc.NewSampler(target, opts...)
	if err != nil {
		fatal(err)
	}
	defer sampler.Close()

	ug, _ := target.(*gesmc.Graph) // nil for directed targets
	dg, _ := target.(*gesmc.DiGraph)
	if *metrics && ug != nil {
		printMetrics("before", ug)
	}

	ndjsonOut, closeNDJSON, err := openNDJSON(*outPath, *format)
	if err != nil {
		fatal(err)
	}
	finishNDJSON := func() {
		// Deferred write errors (full disk, NFS) surface at Close; an
		// unchecked close would exit 0 with a truncated stream.
		if err := closeNDJSON(); err != nil {
			fatal(err)
		}
	}

	if *samples <= 1 {
		st, err := sampler.Sample()
		if err != nil {
			fatal(err)
		}
		if *metrics && ug != nil {
			printMetrics("after", ug)
		}
		if *stats {
			printStats(st)
		}
		switch {
		case ndjsonOut != nil:
			smp := gesmc.Sample{Graph: ug, DiGraph: dg, Stats: st}
			if err := wire.EncodeLine(ndjsonOut, wire.FromSample(smp)); err != nil {
				fatal(err)
			}
			finishNDJSON()
		case *outPath != "":
			if err := writeTarget(*outPath, target); err != nil {
				fatal(err)
			}
		}
		return
	}

	if ndjsonOut == nil && *outPath != "" && !strings.Contains(*outPath, "%d") {
		fatal(fmt.Errorf("-samples %d needs an -out pattern containing %%d (or -format ndjson)", *samples))
	}
	for smp := range sampler.Ensemble(context.Background(), *samples) {
		if smp.Err != nil {
			fatal(smp.Err)
		}
		if *stats {
			printStats(smp.Stats)
		}
		switch {
		case ndjsonOut != nil:
			if err := wire.EncodeLine(ndjsonOut, wire.FromSample(smp)); err != nil {
				fatal(err)
			}
		case *outPath != "":
			var t gesmc.Target
			if smp.Graph != nil {
				t = smp.Graph
			} else {
				t = smp.DiGraph
			}
			if err := writeTarget(strings.ReplaceAll(*outPath, "%d", strconv.Itoa(smp.Index)), t); err != nil {
				fatal(err)
			}
		}
	}
	if ndjsonOut != nil {
		finishNDJSON()
	}
	if *metrics && ug != nil {
		printMetrics("after", ug)
	}
	if *stats {
		total := sampler.Stats()
		fmt.Fprintf(os.Stderr, "ensemble: %d samples in %d supersteps (engine built once), total time=%v\n",
			sampler.Samples(), sampler.Supersteps(), total.Duration)
	}
}

// remoteRequest converts the loaded target plus the sampling flags
// into the wire request a daemon executes. The target always ships as
// an explicit edge (or arc) list: that is the one spec every loaded or
// generated input reduces to.
func remoteRequest(target gesmc.Target, algo, uniformity string, workers int, seed uint64,
	samples, burnIn, thinning int, swaps float64, connected bool) *wire.SampleRequest {
	req := &wire.SampleRequest{
		Algorithm:    algo,
		Workers:      workers,
		Seed:         seed,
		Samples:      max(samples, 1),
		Thinning:     thinning,
		SwapsPerEdge: swaps,
		Connected:    connected,
	}
	if burnIn > 0 {
		// -supersteps overrides -swaps, exactly like the local path.
		req.BurnIn = burnIn
		req.SwapsPerEdge = 0
	}
	if uniformity == "exact" {
		// The exact tier rejects chain schedules; the remaining
		// nonzero values here are CLI defaults, not user choices
		// (explicit ones were refused before dialing out).
		req.Uniformity = "exact"
		req.BurnIn, req.Thinning, req.SwapsPerEdge = 0, 0, 0
	}
	switch t := target.(type) {
	case *gesmc.Graph:
		req.Nodes, req.Edges = t.N(), t.Edges()
	case *gesmc.DiGraph:
		req.Nodes, req.Edges, req.Directed = t.N(), t.Arcs(), true
	}
	return req
}

// runRemote streams the request through a RemoteBackend and writes the
// samples in the chosen format, mirroring the in-process output paths.
// retries > 0 enables the backend's retry policy with resume: transient
// pre-stream failures back off and re-issue, and a stream cut mid-way
// continues from the cursor of the last delivered sample.
func runRemote(serverURL string, req *wire.SampleRequest, format, outPath string, stats bool, retries int) error {
	if format == "edgelist" && req.Samples > 1 && outPath != "" && !strings.Contains(outPath, "%d") {
		return fmt.Errorf("-samples %d needs an -out pattern containing %%d (or -format ndjson)", req.Samples)
	}
	ndjsonOut, closeNDJSON, err := openNDJSON(outPath, format)
	if err != nil {
		return err
	}
	remote := service.NewRemoteBackend(serverURL, nil)
	if retries > 0 {
		remote = remote.WithRetry(service.RetryPolicy{MaxAttempts: retries + 1, Resume: true})
	}
	err = remote.Sample(context.Background(), req, func(ln wire.Line) error {
		if ln.Error != "" {
			// A terminal in-band marker: the backend reports it as a
			// *StreamError once the stream ends, which carries the typed
			// failure out of this function — don't abort the decode here.
			if ndjsonOut != nil {
				return wire.EncodeLine(ndjsonOut, ln)
			}
			return nil
		}
		if stats && ln.Stats != nil {
			printWireStats(ln.Stats)
		}
		switch {
		case ndjsonOut != nil:
			return wire.EncodeLine(ndjsonOut, ln)
		case outPath != "":
			g, dg, err := ln.Graph()
			if err != nil {
				return err
			}
			var t gesmc.Target
			if g != nil {
				t = g
			} else {
				t = dg
			}
			path := outPath
			if req.Samples > 1 {
				path = strings.ReplaceAll(outPath, "%d", strconv.Itoa(ln.Index))
			}
			return writeTarget(path, t)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if ndjsonOut != nil {
		return closeNDJSON()
	}
	return nil
}

func printWireStats(st *wire.Stats) {
	fmt.Fprintf(os.Stderr,
		"algorithm=%s supersteps=%d attempted=%d accepted=%d acceptance=%.3f time=%v",
		st.Algorithm, st.Supersteps, st.Attempted, st.Accepted,
		float64(st.Accepted)/float64(st.Attempted), time.Duration(st.DurationNS))
	if st.Uniformity != "" {
		fmt.Fprintf(os.Stderr, " uniformity=%s", st.Uniformity)
	}
	if st.Backend != "" {
		fmt.Fprintf(os.Stderr, " backend=%s", st.Backend)
	}
	fmt.Fprintln(os.Stderr)
}

// openNDJSON resolves the NDJSON sink: stdout by default, or -out as a
// single stream file, with a close function that reports deferred
// write errors. Returns a nil writer for -format edgelist.
func openNDJSON(outPath, format string) (io.Writer, func() error, error) {
	if format != "ndjson" {
		return nil, nil, nil
	}
	if outPath == "" || outPath == "-" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(outPath)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

func printStats(st gesmc.Stats) {
	fmt.Fprintf(os.Stderr,
		"algorithm=%s supersteps=%d attempted=%d accepted=%d acceptance=%.3f rounds(avg=%.2f,max=%d) time=%v",
		st.Algorithm, st.Supersteps, st.Attempted, st.Accepted,
		float64(st.Accepted)/float64(st.Attempted), st.AvgRounds, st.MaxRounds, st.Duration)
	if st.ConstraintVetoes > 0 || st.EscapeAttempts > 0 {
		fmt.Fprintf(os.Stderr, " constraint(vetoed=%d escapes=%d/%d)",
			st.ConstraintVetoes, st.EscapeMoves, st.EscapeAttempts)
	}
	if st.Algorithm == gesmc.Exact.String() {
		fmt.Fprintf(os.Stderr, " exact(restarts=%d loops=%d multis=%d)",
			st.Restarts, st.LoopDefects, st.MultiDefects)
	}
	fmt.Fprintln(os.Stderr)
}

func writeTarget(path string, t gesmc.Target) error {
	if path == "-" {
		return gesmc.WriteEdgeList(os.Stdout, t)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := gesmc.WriteEdgeList(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// loadTarget reads or generates the sampling target. Directed targets
// come only from arc-list input (-in); the generators are undirected.
func loadTarget(inPath, genSpec string, seed uint64, directed bool) (gesmc.Target, error) {
	if directed {
		switch {
		case genSpec != "":
			return nil, fmt.Errorf("-directed requires -in (the generators are undirected)")
		case inPath == "":
			return nil, fmt.Errorf("no input: pass -in FILE with -directed")
		case inPath == "-":
			return gesmc.ReadArcList(os.Stdin)
		default:
			f, err := os.Open(inPath)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			return gesmc.ReadArcList(f)
		}
	}
	switch {
	case inPath != "" && genSpec != "":
		return nil, fmt.Errorf("use either -in or -gen, not both")
	case inPath == "-":
		return gesmc.ReadEdgeList(os.Stdin)
	case inPath != "":
		f, err := os.Open(inPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return gesmc.ReadEdgeList(f)
	case genSpec != "":
		return generate(genSpec, seed)
	default:
		return nil, fmt.Errorf("no input: pass -in FILE or -gen SPEC")
	}
}

func generate(spec string, seed uint64) (*gesmc.Graph, error) {
	kind, args, _ := strings.Cut(spec, ":")
	params := map[string]string{}
	if args != "" {
		for _, kv := range strings.Split(args, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("bad generator parameter %q", kv)
			}
			params[k] = v
		}
	}
	getInt := func(key string, def int) (int, error) {
		s, ok := params[key]
		if !ok {
			if def >= 0 {
				return def, nil
			}
			return 0, fmt.Errorf("generator %q requires %s=", kind, key)
		}
		return strconv.Atoi(s)
	}
	getFloat := func(key string) (float64, error) {
		s, ok := params[key]
		if !ok {
			return 0, fmt.Errorf("generator %q requires %s=", kind, key)
		}
		return strconv.ParseFloat(s, 64)
	}

	switch kind {
	case "gnp":
		n, err := getInt("n", -1)
		if err != nil {
			return nil, err
		}
		p, err := getFloat("p")
		if err != nil {
			return nil, err
		}
		return gesmc.GenerateGNP(n, p, seed), nil
	case "pld":
		n, err := getInt("n", -1)
		if err != nil {
			return nil, err
		}
		gamma, err := getFloat("gamma")
		if err != nil {
			return nil, err
		}
		return gesmc.GeneratePowerLaw(n, gamma, seed)
	case "reg":
		n, err := getInt("n", -1)
		if err != nil {
			return nil, err
		}
		d, err := getInt("d", -1)
		if err != nil {
			return nil, err
		}
		return gesmc.GenerateRegular(n, d)
	case "grid":
		r, err := getInt("r", -1)
		if err != nil {
			return nil, err
		}
		c, err := getInt("c", -1)
		if err != nil {
			return nil, err
		}
		return gesmc.GenerateGrid(r, c), nil
	default:
		return nil, fmt.Errorf("unknown generator %q (want gnp, pld, reg, grid)", kind)
	}
}

func printMetrics(label string, g *gesmc.Graph) {
	fmt.Fprintf(os.Stderr,
		"%s: n=%d m=%d dmax=%d density=%.2e triangles=%d clustering=%.4f assortativity=%.4f components=%d\n",
		label, g.N(), g.M(), g.MaxDegree(), g.Density(),
		g.Triangles(), g.ClusteringCoefficient(), g.Assortativity(), g.ConnectedComponents())
}

func fatal(err error) {
	// Library errors already carry the "gesmc: " prefix; don't stutter.
	msg := strings.TrimPrefix(err.Error(), "gesmc: ")
	if errors.Is(err, gesmc.ErrExactUnsupported) {
		// bad_request family, same as the server's 400: the request
		// must change, and the fallback is named rather than taken.
		fmt.Fprintln(os.Stderr, "gesmc:", msg, "— retry with -uniformity mcmc for an asymptotically uniform chain")
		os.Exit(2)
	}
	fmt.Fprintln(os.Stderr, "gesmc:", msg)
	os.Exit(1)
}

// exitCode maps a -server failure to a typed exit code, so scripts can
// tell a request they must fix (2) from a backend outage worth
// retrying later (3), backpressure (4), and their own timeout (5).
// In-band stream terminators (*service.StreamError) are classified by
// the wire code they carried.
func exitCode(err error) int {
	var se *service.StreamError
	if errors.As(err, &se) {
		switch se.Line.Code {
		case "bad_request":
			return 2
		case "overloaded", "shutting_down":
			return 4
		case "deadline", "canceled":
			return 5
		default: // "backend", "closed", "internal"
			return 3
		}
	}
	switch {
	case errors.Is(err, service.ErrBadRequest), errors.Is(err, gesmc.ErrExactUnsupported):
		return 2
	case errors.Is(err, service.ErrOverloaded), errors.Is(err, service.ErrShuttingDown):
		return 4
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return 5
	case errors.Is(err, service.ErrBackend):
		return 3
	}
	return 1
}
