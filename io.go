package gesmc

import (
	"fmt"
	"io"

	"gesmc/internal/digraph"
	"gesmc/internal/graph"
)

// WriteEdgeList writes a sampling target as a plain text edge list, the
// package's wire format for graphs on disk and between processes
// (cmd/gesmc, cmd/gesmcd, and the service layer all speak it).
// Undirected graphs are written as an "n m" header followed by one
// "u v" line per edge; directed graphs additionally lead with a
// "% directed" marker line and list (tail, head) pairs, so files are
// self-describing. The round-trip partners are ReadEdgeList and
// ReadArcList.
func WriteEdgeList(w io.Writer, t Target) error {
	switch g := t.(type) {
	case *Graph:
		return graph.WriteEdgeList(w, g.g)
	case *DiGraph:
		return digraph.WriteArcList(w, g.g)
	default:
		return fmt.Errorf("%w: WriteEdgeList target %T", ErrNilTarget, t)
	}
}

// ReadEdgeList parses an undirected text edge list (the format written
// by WriteEdgeList for *Graph). It tolerates the common loose variants:
// '#'/'%' comment lines, a missing "n m" header (node count inferred),
// directed duplicates, loops and multi-edges — the latter are dropped,
// mirroring the paper's preprocessing of network-repository graphs.
// A file leading with the "% directed" marker is rejected (it is an
// arc list; read it with ReadArcList — collapsing it silently would
// preserve the wrong degree sequence). ReadEdgeList is the function
// form of ReadGraph; both share one parser.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	return ReadGraph(r)
}

// ReadArcList parses a directed text arc list (the format written by
// WriteEdgeList for *DiGraph), with the same tolerance for comments,
// missing headers, loops and duplicate arcs. Unlike ReadEdgeList,
// (u,v) and (v,u) are distinct arcs and both survive.
func ReadArcList(r io.Reader) (*DiGraph, error) {
	g, err := digraph.ReadArcList(r)
	if err != nil {
		return nil, err
	}
	return &DiGraph{g: g}, nil
}

// Write writes the digraph as a text arc list with a "% directed"
// marker and an "n m" header, the directed counterpart of
// (*Graph).Write.
func (g *DiGraph) Write(w io.Writer) error {
	return digraph.WriteArcList(w, g.g)
}
